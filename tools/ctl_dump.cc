// ctl_dump: run a Yoda scenario file and dump the control plane's history —
// the ControlState changelog (every epoch-stamped desired-state mutation) and
// the FleetActuator's reconcile timeline (every executed plan step, with
// replay/skip flags), plus the reconcile counters.
//
//   ctl_dump <scenario-file>               # changelog + reconcile timeline
//   ctl_dump <scenario-file> --from-trace  # rebuild the changelog from the
//                                          # flight recorder's kConfigChange
//                                          # events instead of live state,
//                                          # proving a trace alone suffices
//   ctl_dump <scenario-file> --epoch N     # limit output to epoch N
//   ctl_dump <scenario-file> --ha          # controller-HA timeline: lease
//                                          # transitions, fenced writes,
//                                          # resumed plans, stalled steps
//
// See src/workload/scenario.h for the scenario DSL.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/controller.h"
#include "src/obs/analyzer.h"
#include "src/workload/scenario.h"

namespace {

void PrintChangelog(const workload::Testbed& tb, std::uint64_t only_epoch) {
  const auto& log = tb.controller->state().changelog();
  std::printf("control-state changelog (%zu records, newest epoch %llu):\n", log.size(),
              static_cast<unsigned long long>(tb.controller->state().epoch()));
  for (const yoda::ChangeRecord& rec : log) {
    if (only_epoch != 0 && rec.epoch != only_epoch) {
      continue;
    }
    std::printf("  epoch %-5llu %10.3f ms  %-18s %-15s detail=%llu\n",
                static_cast<unsigned long long>(rec.epoch), sim::ToMillis(rec.at),
                yoda::ChangeKindName(rec.kind), obs::FormatIp(rec.subject).c_str(),
                static_cast<unsigned long long>(rec.detail));
  }
}

// The changelog again, but rebuilt purely from kConfigChange system events:
// detail packs (change kind << 32) | (epoch & 0xffffffff).
void PrintChangelogFromTrace(const workload::Testbed& tb, std::uint64_t only_epoch) {
  std::size_t records = 0;
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    records += ev.type == obs::EventType::kConfigChange ? 1 : 0;
  }
  std::printf("control-state changelog rebuilt from trace (%zu kConfigChange events):\n",
              records);
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    if (ev.type != obs::EventType::kConfigChange) {
      continue;
    }
    const auto kind = static_cast<yoda::ChangeKind>(ev.detail >> 32);
    const std::uint64_t epoch = ev.detail & 0xffffffffULL;
    if (only_epoch != 0 && epoch != only_epoch) {
      continue;
    }
    std::printf("  epoch %-5llu %10.3f ms  %-18s %-15s\n",
                static_cast<unsigned long long>(epoch), sim::ToMillis(ev.at),
                yoda::ChangeKindName(kind), obs::FormatIp(ev.where).c_str());
  }
}

// Per-VIP store contract (PR "stateless fast path"): which mode each VIP runs
// and the epoch its cookies are minted against (stale-epoch cookies fall back
// to the takeover journal).
void PrintStoreModes(const workload::Testbed& tb) {
  std::printf("\nvip store modes:\n");
  for (const auto& [vip, desired] : tb.controller->state().vips()) {
    std::printf("  %-15s %-9s install-epoch=%llu\n", obs::FormatIp(vip).c_str(),
                yoda::StoreModeName(desired.store_mode),
                static_cast<unsigned long long>(desired.store_mode_epoch));
  }
}

void PrintReconcileTimeline(workload::Testbed& tb, std::uint64_t only_epoch) {
  const auto& journal = tb.controller->actuator().journal();
  std::printf("\nreconcile timeline (%zu executed steps):\n", journal.size());
  std::uint64_t last_epoch = 0;
  for (const yoda::ExecutedStep& e : journal) {
    if (only_epoch != 0 && e.epoch != only_epoch) {
      continue;
    }
    if (e.epoch != last_epoch) {
      std::printf("  -- epoch %llu --\n", static_cast<unsigned long long>(e.epoch));
      last_epoch = e.epoch;
    }
    std::printf("  %10.3f ms  %-18s vip=%-15s inst=%-15s%s\n", sim::ToMillis(e.at),
                yoda::ExecStepKindName(e.step.kind), obs::FormatIp(e.step.vip).c_str(),
                obs::FormatIp(e.step.instance).c_str(),
                e.replayed ? "  [replayed/skipped]" : "");
  }
  std::printf("\nreconcile counters:\n");
  for (const char* name :
       {"controller.reconcile.plans", "controller.reconcile.steps",
        "controller.reconcile.replayed_steps", "controller.reconcile.convergence_waits",
        "controller.rule_updates", "controller.pool_updates"}) {
    std::printf("  %-40s %llu\n", name,
                static_cast<unsigned long long>(tb.metrics.GetCounter(name).value()));
  }
  if (tb.controller->actuator().plans_in_flight() != 0) {
    std::printf("  WARNING: %d plan(s) still in flight at end of run\n",
                tb.controller->actuator().plans_in_flight());
  }
}

// Controller-HA view, rebuilt purely from the flight recorder: who held the
// leader lease when (and under which fencing token), which stale writes the
// fleet fenced off, and how in-flight rollouts fared across failovers.
void PrintHaTimeline(const workload::Testbed& tb) {
  std::size_t events = 0;
  std::printf("controller-HA timeline:\n");
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    switch (ev.type) {
      case obs::EventType::kLeaseAcquired:
        std::printf("  %10.3f ms  LEASE ACQUIRED   %-15s token=%llu\n", sim::ToMillis(ev.at),
                    obs::FormatIp(ev.where).c_str(),
                    static_cast<unsigned long long>(ev.detail));
        break;
      case obs::EventType::kLeaseLost:
        std::printf("  %10.3f ms  LEASE LOST       %-15s token=%llu\n", sim::ToMillis(ev.at),
                    obs::FormatIp(ev.where).c_str(),
                    static_cast<unsigned long long>(ev.detail));
        break;
      case obs::EventType::kFencedWrite:
        std::printf("  %10.3f ms  FENCED WRITE     %-15s offered=%llu watermark=%llu\n",
                    sim::ToMillis(ev.at), obs::FormatIp(ev.where).c_str(),
                    static_cast<unsigned long long>(ev.detail >> 32),
                    static_cast<unsigned long long>(ev.detail & 0xffffffffULL));
        break;
      case obs::EventType::kPlanResumed:
        std::printf("  %10.3f ms  PLAN RESUMED     epoch=%llu plan=%llu already-applied=%llu\n",
                    sim::ToMillis(ev.at), static_cast<unsigned long long>(ev.where),
                    static_cast<unsigned long long>(ev.detail & 0xffffffffULL),
                    static_cast<unsigned long long>(ev.detail >> 32));
        break;
      case obs::EventType::kReconcileStalled:
        std::printf("  %10.3f ms  STEP STALLED     vip=%-15s inst=%s\n", sim::ToMillis(ev.at),
                    obs::FormatIp(ev.where).c_str(),
                    obs::FormatIp(static_cast<net::IpAddr>(ev.detail & 0xffffffffULL)).c_str());
        break;
      case obs::EventType::kReconcileAbort:
        std::printf("  %10.3f ms  PLAN ABORTED     epoch=%llu steps-unrun=%llu\n",
                    sim::ToMillis(ev.at), static_cast<unsigned long long>(ev.where),
                    static_cast<unsigned long long>(ev.detail));
        break;
      default:
        continue;
    }
    ++events;
  }
  if (events == 0) {
    std::printf("  (no lease events — run a controller-HA scenario, or the trace predates "
                "the HA control plane)\n");
  }
  // Renewals are high-volume; summarize instead of listing.
  std::size_t renewals = 0;
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    renewals += ev.type == obs::EventType::kLeaseRenewed ? 1 : 0;
  }
  std::printf("  (%zu lease renewals omitted)\n", renewals);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool from_trace = false;
  bool ha = false;
  std::uint64_t only_epoch = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--from-trace") {
      from_trace = true;
    } else if (arg == "--ha") {
      ha = true;
    } else if (arg == "--epoch" && i + 1 < argc) {
      only_epoch = std::strtoull(argv[++i], nullptr, 10);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s <scenario-file> [--from-trace] [--epoch N] [--ha]\n", argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <scenario-file> [--from-trace] [--epoch N] [--ha]\n", argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto scenario = workload::ParseScenario(buf.str(), &error);
  if (!scenario) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  workload::RunScenario(*scenario, nullptr, [&](workload::Testbed& tb) {
    if (ha) {
      PrintHaTimeline(tb);
      return;
    }
    if (from_trace) {
      PrintChangelogFromTrace(tb, only_epoch);
    } else {
      PrintChangelog(tb, only_epoch);
    }
    PrintStoreModes(tb);
    PrintReconcileTimeline(tb, only_epoch);
  });
  return 0;
}
