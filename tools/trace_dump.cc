// trace_dump: run a Yoda scenario file and dump the flight recorder.
//
//   trace_dump <scenario-file>             # human-readable flow timelines
//   trace_dump <scenario-file> --json      # raw trace JSON lines
//   trace_dump <scenario-file> --metrics   # registry snapshot (text table)
//   trace_dump <scenario-file> --flows N   # limit timeline output to N flows
//   trace_dump <scenario-file> --shard N   # intra-cell runs: only shard N's lane
//
// The human-readable view prints each recorded flow's event timeline, the
// controller's system events, the reconstructed Fig 9 latency decomposition
// and the takeover timeline — everything derived from obs:: trace events,
// not from workload-side timers. For placed (`intra-threads`) scenarios the
// recorder is per-shard: each lane is dumped under a "shard N" heading, every
// event is annotated with the shard that owns its `where` address, and
// `--shard N` restricts the dump to one lane. See src/workload/scenario.h
// for the DSL.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/analyzer.h"
#include "src/workload/scenario.h"

namespace {

// One flight-recorder lane to dump: the shared recorder (shard -1, legacy
// runs) or a placed testbed's per-shard lane.
struct Lane {
  int shard;
  const obs::FlightRecorder* rec;
};

std::vector<Lane> SelectLanes(workload::Testbed& tb, int only_shard) {
  std::vector<Lane> lanes;
  if (tb.lane_count() == 0) {
    lanes.push_back(Lane{-1, &tb.flight});
    return lanes;
  }
  for (int s = 0; s < tb.lane_count(); ++s) {
    if (only_shard >= 0 && s != only_shard) {
      continue;
    }
    lanes.push_back(Lane{s, &tb.flight_lane(s)});
  }
  return lanes;
}

// " s3" when the testbed is placed and the event names a node, else "".
std::string OwnerTag(const workload::Testbed& tb, const obs::TraceEvent& ev) {
  if (!tb.placed() || ev.where == 0) {
    return "";
  }
  return "  s" + std::to_string(tb.OwnerShardOf(ev.where));
}

void PrintFlowTimelines(workload::Testbed& tb, const std::vector<Lane>& lanes,
                        std::size_t max_flows) {
  std::size_t shown = 0;
  std::size_t total = 0;
  for (const Lane& lane : lanes) {
    total += lane.rec->flow_count();
    lane.rec->ForEachFlow(
        [&](const obs::FlowId& id, const std::vector<obs::TraceEvent>& events) {
          if (shown >= max_flows) {
            return;
          }
          ++shown;
          std::printf("flow %s:%u -> %s:%u", obs::FormatIp(id.client_ip).c_str(),
                      id.client_port, obs::FormatIp(id.vip).c_str(), id.vip_port);
          if (lane.shard >= 0) {
            std::printf("  [recorded on shard %d]", lane.shard);
          }
          std::printf("\n");
          for (const obs::TraceEvent& ev : events) {
            std::printf("  %10.3f ms  %-18s", sim::ToMillis(ev.at),
                        obs::EventTypeName(ev.type));
            if (ev.where != 0) {
              std::printf("  @%s%s", obs::FormatIp(ev.where).c_str(),
                          OwnerTag(tb, ev).c_str());
            }
            if (ev.detail != 0) {
              std::printf("  detail=%llu", static_cast<unsigned long long>(ev.detail));
            }
            std::printf("\n");
          }
        });
  }
  if (total > shown) {
    std::printf("... %zu more flows (raise --flows)\n", total - shown);
  }
}

void PrintSystemEvents(workload::Testbed& tb, const std::vector<Lane>& lanes) {
  for (const Lane& lane : lanes) {
    if (lane.rec->system_events().empty()) {
      continue;
    }
    if (lane.shard >= 0) {
      std::printf("\nsystem events (shard %d):\n", lane.shard);
    } else {
      std::printf("\nsystem events:\n");
    }
    for (const obs::TraceEvent& ev : lane.rec->system_events()) {
      std::printf("  %10.3f ms  %-18s  @%s%s  detail=%llu\n", sim::ToMillis(ev.at),
                  obs::EventTypeName(ev.type), obs::FormatIp(ev.where).c_str(),
                  OwnerTag(tb, ev).c_str(), static_cast<unsigned long long>(ev.detail));
    }
  }
}

void PrintAnalysis(const Lane& lane) {
  const obs::BreakdownReport br = obs::ReconstructBreakdown(*lane.rec);
  if (br.flows_seen == 0) {
    return;
  }
  if (lane.shard >= 0) {
    std::printf("\nreconstructed breakdown, shard %d (%llu flows, %llu established):\n",
                lane.shard, static_cast<unsigned long long>(br.flows_seen),
                static_cast<unsigned long long>(br.flows_established));
  } else {
    std::printf("\nreconstructed breakdown (%llu flows, %llu established):\n",
                static_cast<unsigned long long>(br.flows_seen),
                static_cast<unsigned long long>(br.flows_established));
  }
  if (!br.connection_ms.empty()) {
    std::printf("  connection: P50 %.2f ms  P99 %.2f ms\n", br.connection_ms.Percentile(50),
                br.connection_ms.Percentile(99));
    std::printf("  storage:    P50 %.2f ms  P99 %.2f ms\n", br.storage_ms.Percentile(50),
                br.storage_ms.Percentile(99));
    std::printf("  rule scan:  P50 %.2f ms  P99 %.2f ms\n", br.rule_scan_ms.Percentile(50),
                br.rule_scan_ms.Percentile(99));
  }
  const auto takeovers = obs::TakeoverTimeline(*lane.rec);
  if (!takeovers.empty()) {
    std::printf("\ntakeover timeline (%zu adoptions):\n", takeovers.size());
    for (const obs::TakeoverRecord& t : takeovers) {
      std::printf("  %10.3f ms  %-14s  flow %s:%u  adopter %s\n",
                  sim::ToMillis(t.event.at), obs::EventTypeName(t.event.type),
                  obs::FormatIp(t.flow.client_ip).c_str(), t.flow.client_port,
                  obs::FormatIp(t.event.where).c_str());
    }
  }
  if (lane.rec->dropped_flows() > 0 || lane.rec->overwritten_events() > 0) {
    std::printf("\nrecorder bounds hit: %llu flows dropped, %llu events overwritten\n",
                static_cast<unsigned long long>(lane.rec->dropped_flows()),
                static_cast<unsigned long long>(lane.rec->overwritten_events()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  bool metrics = false;
  std::size_t max_flows = 10;
  int only_shard = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--flows" && i + 1 < argc) {
      max_flows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--shard" && i + 1 < argc) {
      only_shard = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s <scenario-file> [--json] [--metrics] [--flows N] [--shard N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [--json] [--metrics] [--flows N] [--shard N]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto scenario = workload::ParseScenario(buf.str(), &error);
  if (!scenario) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  // --json with --shard exports one lane; otherwise the report string
  // carries the full dump (with {"shard":N} markers for placed runs).
  std::string shard_json;
  workload::ScenarioReport report =
      workload::RunScenario(*scenario, nullptr, [&](workload::Testbed& tb) {
        const std::vector<Lane> lanes = SelectLanes(tb, only_shard);
        if (json) {
          if (only_shard >= 0 && tb.lane_count() > 0) {
            std::ostringstream out;
            for (const Lane& lane : lanes) {
              lane.rec->ExportJsonLines(out);
            }
            shard_json = out.str();
          }
          return;
        }
        PrintFlowTimelines(tb, lanes, max_flows);
        PrintSystemEvents(tb, lanes);
        for (const Lane& lane : lanes) {
          PrintAnalysis(lane);
        }
        if (metrics) {
          if (tb.lane_count() == 0) {
            std::printf("\n--- metrics registry ---\n%s", tb.metrics.TextTable().c_str());
          } else {
            for (const Lane& lane : lanes) {
              std::printf("\n--- metrics registry (shard %d) ---\n%s", lane.shard,
                          tb.metrics_lane(lane.shard).TextTable().c_str());
            }
          }
        }
      });
  if (json) {
    if (only_shard >= 0 && !shard_json.empty()) {
      std::fputs(shard_json.c_str(), stdout);
    } else {
      std::fputs(report.traces_jsonl.c_str(), stdout);
    }
    if (metrics) {
      std::fputs(report.metrics_jsonl.c_str(), stdout);
    }
  }
  return 0;
}
