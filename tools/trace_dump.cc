// trace_dump: run a Yoda scenario file and dump the flight recorder.
//
//   trace_dump <scenario-file>             # human-readable flow timelines
//   trace_dump <scenario-file> --json      # raw trace JSON lines
//   trace_dump <scenario-file> --metrics   # registry snapshot (text table)
//   trace_dump <scenario-file> --flows N   # limit timeline output to N flows
//
// The human-readable view prints each recorded flow's event timeline, the
// controller's system events, the reconstructed Fig 9 latency decomposition
// and the takeover timeline — everything derived from obs:: trace events,
// not from workload-side timers. See src/workload/scenario.h for the DSL.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/analyzer.h"
#include "src/workload/scenario.h"

namespace {

void PrintFlowTimelines(const workload::Testbed& tb, std::size_t max_flows) {
  std::size_t shown = 0;
  tb.flight.ForEachFlow([&](const obs::FlowId& id, const std::vector<obs::TraceEvent>& events) {
    if (shown >= max_flows) {
      return;
    }
    ++shown;
    std::printf("flow %s:%u -> %s:%u\n", obs::FormatIp(id.client_ip).c_str(), id.client_port,
                obs::FormatIp(id.vip).c_str(), id.vip_port);
    for (const obs::TraceEvent& ev : events) {
      std::printf("  %10.3f ms  %-18s", sim::ToMillis(ev.at), obs::EventTypeName(ev.type));
      if (ev.where != 0) {
        std::printf("  @%s", obs::FormatIp(ev.where).c_str());
      }
      if (ev.detail != 0) {
        std::printf("  detail=%llu", static_cast<unsigned long long>(ev.detail));
      }
      std::printf("\n");
    }
  });
  if (tb.flight.flow_count() > shown) {
    std::printf("... %zu more flows (raise --flows)\n", tb.flight.flow_count() - shown);
  }
}

void PrintSystemEvents(const workload::Testbed& tb) {
  if (tb.flight.system_events().empty()) {
    return;
  }
  std::printf("\nsystem events:\n");
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    std::printf("  %10.3f ms  %-18s  @%s  detail=%llu\n", sim::ToMillis(ev.at),
                obs::EventTypeName(ev.type), obs::FormatIp(ev.where).c_str(),
                static_cast<unsigned long long>(ev.detail));
  }
}

void PrintAnalysis(const workload::Testbed& tb) {
  const obs::BreakdownReport br = obs::ReconstructBreakdown(tb.flight);
  std::printf("\nreconstructed breakdown (%llu flows, %llu established):\n",
              static_cast<unsigned long long>(br.flows_seen),
              static_cast<unsigned long long>(br.flows_established));
  if (!br.connection_ms.empty()) {
    std::printf("  connection: P50 %.2f ms  P99 %.2f ms\n", br.connection_ms.Percentile(50),
                br.connection_ms.Percentile(99));
    std::printf("  storage:    P50 %.2f ms  P99 %.2f ms\n", br.storage_ms.Percentile(50),
                br.storage_ms.Percentile(99));
    std::printf("  rule scan:  P50 %.2f ms  P99 %.2f ms\n", br.rule_scan_ms.Percentile(50),
                br.rule_scan_ms.Percentile(99));
  }
  const auto takeovers = obs::TakeoverTimeline(tb.flight);
  if (!takeovers.empty()) {
    std::printf("\ntakeover timeline (%zu adoptions):\n", takeovers.size());
    for (const obs::TakeoverRecord& t : takeovers) {
      std::printf("  %10.3f ms  %-14s  flow %s:%u  adopter %s\n",
                  sim::ToMillis(t.event.at), obs::EventTypeName(t.event.type),
                  obs::FormatIp(t.flow.client_ip).c_str(), t.flow.client_port,
                  obs::FormatIp(t.event.where).c_str());
    }
  }
  if (tb.flight.dropped_flows() > 0 || tb.flight.overwritten_events() > 0) {
    std::printf("\nrecorder bounds hit: %llu flows dropped, %llu events overwritten\n",
                static_cast<unsigned long long>(tb.flight.dropped_flows()),
                static_cast<unsigned long long>(tb.flight.overwritten_events()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  bool metrics = false;
  std::size_t max_flows = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--flows" && i + 1 < argc) {
      max_flows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s <scenario-file> [--json] [--metrics] [--flows N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <scenario-file> [--json] [--metrics] [--flows N]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto scenario = workload::ParseScenario(buf.str(), &error);
  if (!scenario) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  workload::ScenarioReport report =
      workload::RunScenario(*scenario, nullptr, [&](workload::Testbed& tb) {
        if (json) {
          return;  // The report string carries the full dump.
        }
        PrintFlowTimelines(tb, max_flows);
        PrintSystemEvents(tb);
        PrintAnalysis(tb);
        if (metrics) {
          std::printf("\n--- metrics registry ---\n%s", tb.metrics.TextTable().c_str());
        }
      });
  if (json) {
    std::fputs(report.traces_jsonl.c_str(), stdout);
    if (metrics) {
      std::fputs(report.metrics_jsonl.c_str(), stdout);
    }
  }
  return 0;
}
