// yodasim: run a Yoda scenario file in the simulator and print a report.
//
//   yodasim <scenario-file>
//   yodasim --example       # prints a starter scenario to stdout
//
// See src/workload/scenario.h for the DSL reference.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/workload/scenario.h"

namespace {

const char kExample[] = R"(# yodasim starter scenario
seed 7
instances 4
spares 1
backends 6
kv-servers 3
clients 4

vip 10.200.0.1
rule 10.200.0.1 name=r-all priority=1 url=* split=10.3.0.1,10.3.0.2,10.3.0.3,10.3.0.4

at 0ms load 10.200.0.1 rate 150 duration 12s
at 4s fail-instance 0
at 8s add-instance

# Uncomment to run as 8 independent cells on 4 worker threads (results are
# identical for any thread count; see scenarios/sharded-failover.yoda):
# threads 4
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--example") {
    std::fputs(kExample, stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario-file> | --example\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto scenario = workload::ParseScenario(buf.str(), &error);
  if (!scenario) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  std::printf("running scenario %s (%d instances, %d backends, %zu VIPs, %zu events)\n",
              argv[1], scenario->testbed.yoda_instances, scenario->testbed.backends,
              scenario->vips.size(), scenario->events.size());
  workload::ScenarioReport report = workload::RunScenario(*scenario, &std::cout);

  std::printf("\n--- report ---\n");
  if (report.cells > 1) {
    std::printf("cells: %d (aggregated; %d worker thread(s))\n", report.cells,
                scenario->threads);
  }
  std::printf("requests: %llu ok, %llu failed\n",
              static_cast<unsigned long long>(report.requests_ok),
              static_cast<unsigned long long>(report.requests_failed));
  if (!report.latency_ms.empty()) {
    std::printf("latency:  P50 %.0f ms, P90 %.0f ms, P99 %.0f ms, max %.0f ms\n",
                report.latency_ms.Percentile(50), report.latency_ms.Percentile(90),
                report.latency_ms.Percentile(99), report.latency_ms.Max());
  }
  std::printf("takeovers: %llu | re-switches: %llu | failures detected: %d\n",
              static_cast<unsigned long long>(report.takeovers),
              static_cast<unsigned long long>(report.reswitches), report.failures_detected);
  std::printf("controller log:\n");
  for (const auto& ev : report.controller_events) {
    std::printf("  %8.0f ms  %s\n", sim::ToMillis(ev.when), ev.what.c_str());
  }
  return report.requests_failed == 0 ? 0 : 1;
}
