// §7.1 "CPU overhead": instance CPU utilization of the user-space Yoda
// driver vs the kernel-splicing HAProxy baseline on the same workload.
//
// Paper: Yoda saturates one VM at ~12K small req/s where HAProxy sits at
// 46% (i.e. user/kernel packet copies cost ~2x CPU); for 2 MB flows Yoda is
// at 80% for 90K pkts/s vs 34% for HAProxy. An in-kernel Yoda is projected
// to match HAProxy (the Memcached client was measured to be negligible).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/workload/browser_client.h"
#include "src/workload/testbed.h"

namespace {

struct CpuRun {
  double cpu_pct = 0;
  std::uint64_t completed = 0;
  std::string metrics_table;  // Registry snapshot of the run's testbed.
};

CpuRun Run(bool use_yoda, double rate, std::size_t object_size, sim::Duration duration) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 1;
  cfg.baseline_proxies = 1;
  cfg.backends = 6;
  cfg.clients = 6;
  cfg.catalog.objects = 40;
  cfg.catalog.median_size = object_size;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = object_size - 100;
  cfg.catalog.max_size = object_size + 100;
  // Scale the CPU model 20x (rates are 20x below the paper's testbed),
  // calibrated so 600 req/s saturates the user-space instance (= the paper's
  // 12K req/s on one VM) with HAProxy near 46% there.
  cfg.instance_template.cpu_costs.per_connection = sim::Usec(340);
  cfg.instance_template.cpu_costs.per_packet = sim::Usec(40);
  cfg.proxy_template.cpu_costs.per_connection = sim::Usec(230);
  cfg.proxy_template.cpu_costs.per_packet = sim::Usec(22);
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();
  tb.InstallProxyRules(tb.EqualSplitRules(0, cfg.backends));

  sim::Rng rng(17);
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  std::uint64_t completed = 0;
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > duration) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client = tb.clients[static_cast<std::size_t>(
                                    rng.UniformInt(0, static_cast<std::int64_t>(
                                                          tb.clients.size()) - 1))].get();
      const net::IpAddr target = use_yoda ? tb.vip() : tb.proxy_ip(0);
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(target, 80, url, {}, [&](const workload::FetchResult& r) {
        completed += r.ok ? 1 : 0;
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / rate)));
    });
  };
  tb.instances[0]->cpu().ResetWindow(0);
  tb.proxies[0]->cpu().ResetWindow(0);
  schedule(sim::Msec(1));
  tb.sim.Run();

  CpuRun out;
  out.completed = completed;
  out.cpu_pct = 100.0 * (use_yoda ? tb.instances[0]->cpu().Utilization(duration)
                                  : tb.proxies[0]->cpu().Utilization(duration));
  out.metrics_table = tb.metrics.TextTable();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Section 7.1: LB instance CPU — user-space Yoda vs kernel HAProxy ===\n");
  std::printf("Paper: Yoda 100%% at 12K small req/s, HAProxy 46%% there (~2x CPU);\n");
  std::printf("       large flows: Yoda 80%% vs HAProxy 34%%. Rates scaled 20x down.\n\n");

  const sim::Duration kDuration = sim::Sec(6);
  std::printf("%-26s %-12s %-12s %-8s\n", "workload", "yoda cpu%", "haproxy cpu%", "ratio");
  struct Case {
    const char* name;
    double rate;
    std::size_t size;
  };
  std::string last_yoda_table;
  for (const Case& c : {Case{"small (10 KB), 300 r/s", 300, 10'000},
                        Case{"small (10 KB), 600 r/s", 600, 10'000},
                        Case{"large (300 KB), 40 r/s", 40, 300'000}}) {
    CpuRun yoda = Run(true, c.rate, c.size, kDuration);
    CpuRun haproxy = Run(false, c.rate, c.size, kDuration);
    last_yoda_table = std::move(yoda.metrics_table);
    std::printf("%-26s %-12.1f %-12.1f %-8.2f   (ok: %llu/%llu)\n", c.name, yoda.cpu_pct,
                haproxy.cpu_pct, yoda.cpu_pct / haproxy.cpu_pct,
                static_cast<unsigned long long>(yoda.completed),
                static_cast<unsigned long long>(haproxy.completed));
  }
  std::printf("\npaper ratio: ~2.2x on small requests (user/kernel copies); the Memcached\n");
  std::printf("client is negligible, so an in-kernel Yoda is projected at HAProxy's CPU.\n");
  std::printf("\n--- metrics registry snapshot (large-flow Yoda run) ---\n%s",
              last_yoda_table.c_str());
  return 0;
}
