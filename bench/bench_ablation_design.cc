// Ablation studies of Yoda's design choices (beyond the paper's figures):
//
//  A. Monitor interval vs recovery time — the 600 ms failure-detection
//     period (§6) directly bounds how long affected flows stall.
//  B. TCPStore replication factor — the paper stores every flow on K=2
//     memcached servers; K=1 loses flows when a memcached server dies
//     together with (or before) the LB instance; K=2 survives.
//  C. SNAT return-path pinning — without the L4 SNAT pin, every server->VIP
//     packet can land on a non-owner instance and trigger TCPStore lookups;
//     with it, lookups happen only at failures.
//  D. Deterministic SYN-ACK ISN — modeled: storing the SYN-ACK state instead
//     would add one storage write on the SYN path (latency + TCPStore load).

#include <cstdio>
#include <functional>

#include "src/workload/testbed.h"

namespace {

const workload::WebObject* BigObject(const workload::Testbed& tb, std::size_t min_size) {
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > min_size) {
      return &o;
    }
  }
  return nullptr;
}

int FindOwner(const workload::Testbed& tb) {
  for (std::size_t i = 0; i < tb.instances.size(); ++i) {
    if (tb.instances[i]->active_flows() > 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// --- A: monitor interval sweep -------------------------------------------

void MonitorIntervalSweep() {
  std::printf("--- A. failure-detection interval vs recovery cost ---\n");
  std::printf("%-18s %-16s %-16s %-10s\n", "interval (ms)", "no-fail (ms)", "with-fail (ms)",
              "added");
  for (sim::Duration interval :
       {sim::Msec(200), sim::Msec(600), sim::Msec(1200), sim::Msec(2400)}) {
    double base_ms = 0;
    double fail_ms = 0;
    for (int with_failure = 0; with_failure <= 1; ++with_failure) {
      workload::TestbedConfig cfg;
      cfg.yoda_instances = 4;
      cfg.controller.monitor_interval = interval;
      workload::Testbed tb(cfg);
      tb.DefineDefaultVipAndStart();
      const workload::WebObject* obj = BigObject(tb, 150'000);
      bool ok = false;
      sim::Duration latency = 0;
      tb.clients[0]->FetchObject(tb.vip(), 80, obj->url, {},
                                 [&](const workload::FetchResult& r) {
                                   ok = r.ok;
                                   latency = r.latency;
                                 });
      if (with_failure != 0) {
        tb.sim.RunUntil(sim::Msec(180));
        const int owner = FindOwner(tb);
        if (owner >= 0) {
          tb.FailInstance(owner);
        }
      }
      tb.sim.Run();
      if (!ok) {
        std::printf("%-18lld BROKEN FLOW\n",
                    static_cast<long long>(sim::ToMillis(interval)));
        continue;
      }
      (with_failure != 0 ? fail_ms : base_ms) = sim::ToMillis(latency);
    }
    std::printf("%-18.0f %-16.0f %-16.0f +%.0f ms\n", sim::ToMillis(interval), base_ms,
                fail_ms, fail_ms - base_ms);
  }
  std::printf("(recovery = retransmission backoff + detection; the paper's 600 ms monitor\n"
              " keeps it within one extra RTO cycle)\n\n");
}

// --- B: TCPStore replication factor --------------------------------------

void ReplicationFactorStudy() {
  std::printf("--- B. TCPStore replication vs double failure ---\n");
  std::printf("%-12s %-34s\n", "replicas", "flow outcome (kv + LB die mid-flow)");
  for (int replicas : {1, 2, 3}) {
    workload::TestbedConfig cfg;
    cfg.yoda_instances = 4;
    cfg.kv_servers = 4;
    cfg.kv_replicas = replicas;
    workload::Testbed tb(cfg);
    tb.DefineDefaultVipAndStart();
    const workload::WebObject* obj = BigObject(tb, 150'000);
    bool done = false;
    bool ok = false;
    tb.clients[0]->FetchObject(tb.vip(), 80, obj->url, {},
                               [&](const workload::FetchResult& r) {
                                 done = true;
                                 ok = r.ok;
                               });
    tb.sim.RunUntil(sim::Msec(180));
    // Kill the kv server holding the flow's first replica, then the LB.
    const std::string ckey = yoda::ClientFlowKey(
        tb.vip(), 80, tb.client_ip(0),
        0);  // Key unknown without the port; kill by scanning instead.
    // Find the replica(s) holding any flow state and kill the first.
    for (auto& kv : tb.kv_servers) {
      if (kv->item_count() > 0) {
        kv->Fail();
        break;
      }
    }
    const int owner = FindOwner(tb);
    if (owner >= 0) {
      tb.FailInstance(owner);
    }
    tb.sim.Run();
    std::printf("%-12d %-34s\n", replicas,
                !done ? "no result (hung)" : (ok ? "survived" : "BROKEN (state lost)"));
  }
  std::printf("(K=1 has no copy left once the holding memcached dies; K>=2 recovers —\n"
              " exactly why TCPStore replicates client-side)\n\n");
}

// --- C: SNAT pinning ------------------------------------------------------

void SnatPinningStudy() {
  std::printf("--- C. SNAT return-path pinning ---\n");
  std::printf("%-10s %-22s %-22s\n", "pinning", "TCPStore lookups", "server-side takeovers");
  for (int enabled = 1; enabled >= 0; --enabled) {
    workload::TestbedConfig cfg;
    cfg.yoda_instances = 4;
    workload::Testbed tb(cfg);
    tb.fabric.set_snat_enabled(enabled != 0);
    tb.DefineDefaultVipAndStart();
    int ok = 0;
    int done = 0;
    for (int i = 0; i < 20; ++i) {
      tb.clients[static_cast<std::size_t>(i) % tb.clients.size()]->FetchObject(
          tb.vip(), 80, tb.catalog->objects()[static_cast<std::size_t>(i)].url, {},
          [&](const workload::FetchResult& r) {
            ++done;
            ok += r.ok ? 1 : 0;
          });
    }
    tb.sim.Run();
    std::uint64_t takeovers = 0;
    for (auto& inst : tb.instances) {
      takeovers += inst->stats().takeovers_server_side;
    }
    std::printf("%-10s %-22llu %-22llu (%d/%d ok)\n", enabled != 0 ? "on" : "off",
                static_cast<unsigned long long>(tb.store->stats().lookups),
                static_cast<unsigned long long>(takeovers), ok, done);
    if (enabled == 0) {
      tb.PrintMetricsSnapshot("metrics registry snapshot (SNAT-off run)");
    }
  }
  std::printf("(without the pin the server's SYN-ACK sprays to instances that cannot yet\n"
              " find the flow — the reverse key only exists after storage-b, which the\n"
              " initiating instance can't reach without the SYN-ACK. Most connections\n"
              " fail: pinning is essential to the design, not an optimization)\n\n");
}

// --- D: deterministic ISN (modeled) ---------------------------------------

void DeterministicIsnModel() {
  std::printf("--- D. deterministic SYN-ACK ISN (modeled) ---\n");
  // With the hash-derived ISN, the SYN path performs 1 blocking write
  // (storage-a). Storing a random ISN would add a second blocking write
  // before the SYN-ACK and a third key on takeover.
  const double set_ms = 0.42;  // Measured median (Fig 10 bench).
  std::printf("%-34s %-16s %-16s\n", "metric", "deterministic", "stored ISN");
  std::printf("%-34s %-16.2f %-16.2f\n", "SYN-path blocking writes", 1.0, 2.0);
  std::printf("%-34s %-16.2f %-16.2f\n", "SYN-ACK delay from storage (ms)", set_ms,
              2 * set_ms);
  std::printf("%-34s %-16.0f %-16.0f\n", "TCPStore ops per request", 3.0, 4.0);
  std::printf("%-34s %-16.1f %-16.1f\n", "Yoda instances per kv server",
              80'000.0 / (3 * 12'000.0) * 3, 80'000.0 / (4 * 12'000.0) * 3);
  std::printf("(hashing the client tuple removes a third of the TCPStore load and half the\n"
              " pre-SYN-ACK storage latency)\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations of Yoda design choices ===\n\n");
  MonitorIntervalSweep();
  ReplicationFactorStudy();
  SnatPinningStudy();
  DeterministicIsnModel();
  return 0;
}
