// Figure 6: HAProxy-style rule-lookup latency vs number of installed rules.
//
// Two views:
//   1. google-benchmark micro-measurements of the actual linear-scan
//      classifier in this repo (wall-clock ns per lookup);
//   2. the calibrated latency model used by the simulator (base + per-rule),
//      which reproduces the paper's shape: P90 at 10K rules ~= 3x P90 at 1K,
//      and ~5 ms at the R_y = 2K operating point the evaluation uses.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/http/message.h"
#include "src/rules/rule_table.h"
#include "src/sim/random.h"

namespace {

rules::RuleTable BuildTable(int n_rules, sim::Rng& rng) {
  rules::RuleTable table;
  for (int i = 0; i < n_rules; ++i) {
    rules::Rule r;
    r.name = "r" + std::to_string(i);
    r.priority = static_cast<int>(rng.UniformInt(0, 9));
    // Distinct URL prefixes so most rules do not match most requests.
    r.match.url_glob = "/svc" + std::to_string(i) + "/*";
    r.action.type = rules::ActionType::kWeightedSplit;
    r.action.backends = {{net::MakeIp(10, 3, 0, static_cast<std::uint8_t>(i % 30 + 1)), 80, 1.0}};
    table.Add(std::move(r));
  }
  // Catch-all at the lowest priority (every lookup scans the full chain, the
  // worst case the paper's Fig 6 measures).
  rules::Rule fallback;
  fallback.name = "default";
  fallback.priority = -1;
  fallback.match.url_glob = "*";
  fallback.action.type = rules::ActionType::kWeightedSplit;
  fallback.action.backends = {{net::MakeIp(10, 3, 0, 1), 80, 1.0}};
  table.Add(std::move(fallback));
  return table;
}

void BM_RuleLookup(benchmark::State& state) {
  sim::Rng rng(7);
  rules::RuleTable table = BuildTable(static_cast<int>(state.range(0)), rng);
  rules::SelectionContext ctx;
  ctx.rng = &rng;
  http::Request req = http::MakeGet("/no-such-service/object.jpg", "mysite.com");
  for (auto _ : state) {
    auto sel = table.Select(req, ctx);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleLookup)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)->Arg(5000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 6: rule-lookup latency vs number of rules ===\n");
  std::printf("Paper: P90 grows ~linearly; 10K rules ~3x the latency of 1K rules;\n");
  std::printf("       the 5 ms latency target corresponds to R_y = 2K rules.\n\n");

  // Simulator latency model (base 3.18 ms + 0.9 us per rule scanned), fitted
  // to the two anchors above.
  const double base_ms = 3.18;
  const double per_rule_us = 0.91;
  std::printf("%-10s %-22s\n", "#rules", "modelled P90 latency (ms)");
  double at_1k = 0;
  double at_10k = 0;
  for (int n : {100, 500, 1000, 2000, 5000, 10000}) {
    const double ms = base_ms + per_rule_us * n / 1000.0;
    if (n == 1000) {
      at_1k = ms;
    }
    if (n == 10000) {
      at_10k = ms;
    }
    std::printf("%-10d %-22.2f\n", n, ms);
  }
  std::printf("\n%-34s %-10s %-10s\n", "metric", "paper", "model");
  std::printf("%-34s %-10s %-10.2f\n", "latency(10K) / latency(1K)", "~3x", at_10k / at_1k);
  std::printf("%-34s %-10s %-10.2f\n", "latency at R_y=2K rules (ms)", "5",
              base_ms + per_rule_us * 2.0);
  std::printf("\n--- micro-benchmark of the actual classifier ---\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
