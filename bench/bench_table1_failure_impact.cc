// Table 1: impact of a proxy failure that breaks ONE established connection,
// on six emulated websites.
//
// The paper emulated a proxy failure against real sites and observed either
// "page timed-out" (browser HTTP timeout, e.g. 5 min default in Firefox) or
// "session reset". We reproduce the mechanism: a browser loads a page (or
// holds a session connection) through an HAProxy-style proxy; the proxy dies
// mid-connection; the outcome and the user-visible delay are recorded.

#include <cstdio>
#include <string>
#include <vector>

#include "src/workload/testbed.h"

namespace {

struct SiteProfile {
  const char* name;
  bool session_oriented;        // Streaming/session sites see resets.
  sim::Duration http_timeout;   // Browser timeout for this site's client.
  const char* paper_impact;
};

struct Outcome {
  bool ok = false;
  bool timed_out = false;
  bool reset = false;
  double latency_s = 0;
  double baseline_s = 0;
  std::string metrics_table;  // Registry snapshot of the site's testbed.
  std::string fault_timeline;  // kFaultInjected/kFaultCleared system events.
};

std::string FaultTimeline(const workload::Testbed& tb) {
  std::string out;
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    if (ev.type != obs::EventType::kFaultInjected &&
        ev.type != obs::EventType::kFaultCleared) {
      continue;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "  t=%8.1f ms  %s  %-12s @ %s\n", sim::ToMillis(ev.at),
                  ev.type == obs::EventType::kFaultInjected ? "apply" : "clear",
                  fault::FaultKindName(static_cast<fault::FaultKind>(ev.detail)),
                  obs::FormatIp(ev.where).c_str());
    out += line;
  }
  return out;
}

Outcome RunSite(const SiteProfile& site) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 1;
  cfg.baseline_proxies = 1;
  cfg.backends = 3;
  workload::Testbed tb(cfg);
  tb.InstallProxyRules(tb.EqualSplitRules(0, cfg.backends));

  // Pick a page with several embedded objects.
  const workload::Page& page = tb.catalog->PageAt(3);

  workload::FetchOptions opts;
  opts.http_timeout = site.http_timeout;
  opts.retries = 0;

  Outcome out;

  // Baseline load (no failure) for reference.
  {
    bool done = false;
    tb.clients[0]->FetchPage(tb.proxy_ip(0), 80, page.html_url, page.embedded, opts,
                             [&](const workload::FetchResult& r) {
                               out.baseline_s = sim::ToSeconds(r.latency);
                               done = true;
                             });
    tb.sim.Run();
    if (!done) {
      out.metrics_table = tb.metrics.TextTable();
      return out;
    }
  }

  // The failure run: kill the proxy while one connection is established.
  bool done = false;
  workload::FetchResult result;
  if (site.session_oriented) {
    // Session sites hold one long-lived connection; a big object stands in
    // for the stream. The proxy restarts quickly (supervisor), so the
    // client's next packets meet a state-less proxy -> RST -> session reset.
    const workload::WebObject* big = nullptr;
    for (const auto& o : tb.catalog->objects()) {
      if (o.size > 200'000) {
        big = &o;
        break;
      }
    }
    tb.clients[0]->FetchObject(tb.proxy_ip(0), 80, big->url, opts,
                               [&](const workload::FetchResult& r) {
                                 result = r;
                                 done = true;
                               });
    tb.sim.RunUntil(tb.sim.now() + sim::Msec(160));
    // Through the fault plane: crash then immediate cold restart — the
    // supervisor brings the process back with its TCP state gone.
    tb.faults->CrashNode(tb.proxy_ip(0));
    tb.faults->RestartNode(tb.proxy_ip(0), fault::FaultPlane::RestartMode::kCold);
  } else {
    tb.clients[0]->FetchPage(tb.proxy_ip(0), 80, page.html_url, page.embedded, opts,
                             [&](const workload::FetchResult& r) {
                               result = r;
                               done = true;
                             });
    // Kill mid-page (one object's connection is established and in flight);
    // the proxy host stays down: packets blackhole until the HTTP timeout.
    tb.sim.RunUntil(tb.sim.now() + sim::Msec(400));
    tb.faults->CrashNode(tb.proxy_ip(0));
  }
  tb.sim.Run();
  if (!done) {
    out.metrics_table = tb.metrics.TextTable();
    return out;
  }
  out.ok = result.ok;
  out.timed_out = result.timed_out;
  out.reset = result.reset;
  out.latency_s = sim::ToSeconds(result.latency);
  out.metrics_table = tb.metrics.TextTable();
  out.fault_timeline = FaultTimeline(tb);
  return out;
}

// Controller-failure class: the same page load, but the component that dies
// is the LEADER CONTROLLER of an HA Yoda control plane rather than the proxy
// carrying the connection. The connection rides through untouched — the
// data plane serves from its last programmed state while a standby recovers
// the lease — so the user-visible impact is "unaffected".
Outcome RunControllerFailure() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 2;
  cfg.backends = 3;
  cfg.controller_ha = true;
  cfg.controllers = 3;
  workload::Testbed tb(cfg);
  tb.StartAllControllers();
  yoda::Controller* leader = tb.AwaitLeader();
  Outcome out;
  if (leader == nullptr) {
    return out;
  }
  leader->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, cfg.backends));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));

  const workload::Page& page = tb.catalog->PageAt(3);
  workload::FetchOptions opts;
  opts.http_timeout = sim::Minutes(5);
  opts.retries = 0;

  // Baseline (no failure).
  {
    bool done = false;
    tb.clients[0]->FetchPage(tb.vip(), 80, page.html_url, page.embedded, opts,
                             [&](const workload::FetchResult& r) {
                               out.baseline_s = sim::ToSeconds(r.latency);
                               done = true;
                             });
    tb.sim.Run();
    if (!done) {
      return out;
    }
  }

  // The failure run: kill the lease holder while the page is in flight.
  bool done = false;
  workload::FetchResult result;
  tb.clients[0]->FetchPage(tb.vip(), 80, page.html_url, page.embedded, opts,
                           [&](const workload::FetchResult& r) {
                             result = r;
                             done = true;
                           });
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(400));
  for (int i = 0; i < tb.controller_count(); ++i) {
    yoda::Controller* c = tb.ControllerAt(i);
    if (!c->crashed() && c->ActingLeader()) {
      tb.CrashController(i);
      break;
    }
  }
  tb.sim.Run();
  if (!done) {
    return out;
  }
  out.ok = result.ok;
  out.timed_out = result.timed_out;
  out.reset = result.reset;
  out.latency_s = sim::ToSeconds(result.latency);
  return out;
}

}  // namespace

int main() {
  std::printf("=== Table 1: impact of proxy failure on emulated websites ===\n");
  std::printf("Paper: one broken connection => page timed-out (nytimes, reddit, stanford)\n");
  std::printf("       or session reset (vimeo, soundcloud, email service).\n\n");

  const std::vector<SiteProfile> sites = {
      {"nytimes", false, sim::Minutes(5), "page timed-out"},
      {"reddit", false, sim::Minutes(5), "page timed-out"},
      {"stanford", false, sim::Minutes(5), "page timed-out"},
      {"vimeo", true, sim::Minutes(5), "session reset"},
      {"soundcloud", true, sim::Minutes(5), "session reset"},
      {"email service", true, sim::Minutes(5), "session reset"},
  };

  std::printf("%-16s %-18s %-20s %-14s %-12s\n", "website", "paper impact",
              "measured impact", "load time (s)", "baseline (s)");
  std::string last_table;
  std::string last_faults;
  for (const SiteProfile& site : sites) {
    Outcome out = RunSite(site);
    last_table = std::move(out.metrics_table);
    last_faults = std::move(out.fault_timeline);
    std::string impact;
    if (out.reset) {
      impact = "session reset";
    } else if (out.timed_out) {
      impact = "page timed-out";
    } else if (out.ok) {
      impact = "unaffected";
    } else {
      impact = "failed";
    }
    std::printf("%-16s %-18s %-20s %-14.1f %-12.2f\n", site.name, site.paper_impact,
                impact.c_str(), out.latency_s, out.baseline_s);
  }
  // The contrast row: kill the Yoda HA control plane's leader instead of the
  // proxy. No connection breaks; the page loads at baseline speed.
  {
    Outcome out = RunControllerFailure();
    std::string impact;
    if (out.reset) {
      impact = "session reset";
    } else if (out.timed_out) {
      impact = "page timed-out";
    } else if (out.ok) {
      impact = "unaffected";
    } else {
      impact = "failed";
    }
    std::printf("%-16s %-18s %-20s %-14.1f %-12.2f\n", "yoda-ctl-crash", "unaffected (Yoda)",
                impact.c_str(), out.latency_s, out.baseline_s);
  }

  std::printf("\nMechanism check: page sites hang for the full browser HTTP timeout\n");
  std::printf("(blackholed proxy); session sites see an immediate RST from the\n");
  std::printf("restarted, state-less proxy process.\n");
  std::printf("\n--- fault-plane timeline (last site's run, from the flight recorder) ---\n%s",
              last_faults.c_str());
  std::printf("\n--- metrics registry snapshot (last site's run) ---\n%s", last_table.c_str());
  return 0;
}
