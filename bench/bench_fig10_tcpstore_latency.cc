// Figure 10: TCPStore operation latency (get/set/delete) under load,
// default memcached (1 replica) vs Yoda's persistent TCPStore (2 replicas).
//
// Setup mirrors §7.1: 10 memcached servers; aggregate load of 40K / 200K /
// 400K ops/s (= 4K / 20K / 40K per server). Paper: at 40K req/s/server the
// default median is ~0.75 ms and persistence adds <24% (~0.18 ms), thanks to
// issuing replica ops in parallel.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace {

struct RunResult {
  double get_ms = 0;
  double set_ms = 0;
  double del_ms = 0;
};

RunResult RunLoad(int replicas, double ops_per_server, int servers_n, sim::Duration duration,
                  obs::Registry* registry = nullptr) {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  for (int i = 0; i < servers_n; ++i) {
    servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
  }
  std::vector<kv::KvServer*> ptrs;
  for (auto& s : servers) {
    ptrs.push_back(s.get());
  }
  kv::ReplicatingClientConfig cfg;
  cfg.replicas = replicas;
  cfg.registry = registry;
  kv::ReplicatingClient client(&simulator, ptrs, cfg);
  sim::Rng rng(1234);

  // Open-loop op stream: total rate = per-server rate * N. Each "request"
  // cycles set -> get -> delete on a fresh key, like a flow's lifetime.
  const double total_rate = ops_per_server * servers_n / (replicas == 2 ? 1.0 : 1.0);
  const double gap_s = 1.0 / total_rate;
  std::uint64_t issued = 0;
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > duration) {
      return;
    }
    simulator.At(when, [&, when]() {
      const std::string key = "flow-" + std::to_string(issued++);
      switch (issued % 3) {
        case 0:
          client.Set(key, std::string(64, 's'), [](bool) {});
          break;
        case 1:
          client.Get(key, [](std::optional<std::string>) {});
          break;
        default:
          client.Delete(key, [](bool) {});
          break;
      }
      schedule(simulator.now() + sim::FromSeconds(rng.Exponential(gap_s)));
    });
  };
  schedule(0);
  simulator.Run();

  RunResult r;
  r.get_ms = client.stats().get_latency_us.Percentile(50) / 1000.0;
  r.set_ms = client.stats().set_latency_us.Percentile(50) / 1000.0;
  r.del_ms = client.stats().delete_latency_us.Percentile(50) / 1000.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: TCPStore latency, default (1 replica) vs YODA (2 replicas) ===\n");
  std::printf("Paper: median ~0.75 ms at 40K req/s/server; persistence overhead <24%%.\n\n");

  const int kServers = 10;
  const sim::Duration kDuration = sim::Sec(3);  // Paper used 60 s; scaled for 1-core sim.

  std::printf("%-18s %-10s %-10s %-10s %-10s %-10s %-10s\n", "ops/s/server",
              "get-1r", "get-2r", "set-1r", "set-2r", "del-1r", "del-2r");
  double set_1r_40k = 0;
  double set_2r_40k = 0;
  obs::Registry metrics;  // Captures the 2-replica run at the top rate.
  for (double rate : {4'000.0, 20'000.0, 40'000.0}) {
    RunResult one = RunLoad(1, rate, kServers, kDuration);
    RunResult two = RunLoad(2, rate, kServers, kDuration,
                            rate == 40'000.0 ? &metrics : nullptr);
    std::printf("%-18.0f %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n", rate, one.get_ms,
                two.get_ms, one.set_ms, two.set_ms, one.del_ms, two.del_ms);
    if (rate == 40'000.0) {
      set_1r_40k = one.set_ms;
      set_2r_40k = two.set_ms;
    }
  }
  std::printf("\n(median latency in ms; '1r' = default memcached, '2r' = TCPStore persistence)\n");
  std::printf("\n%-44s %-10s %-10s\n", "metric", "paper", "measured");
  std::printf("%-44s %-10s %-10.3f\n", "median set at 40K ops/s/server, default (ms)", "~0.75",
              set_1r_40k);
  std::printf("%-44s %-10s %-10.1f\n", "persistence overhead at 40K (%)", "<24",
              100.0 * (set_2r_40k - set_1r_40k) / set_1r_40k);
  std::printf("\n--- metrics registry snapshot (2-replica run at 40K ops/s/server) ---\n%s",
              metrics.TextTable().c_str());
  return 0;
}
