// Store-mode comparison bench: the same Fig 13-shaped testbed under the same
// open-loop load, once per store mode, measuring what the stateless fast
// path buys:
//
//   sets_per_request_{stateful,stateless}  — synchronous TCPStore ops per
//       completed request (the paper's tax is 3: storage-a, storage-b,
//       remove; the stateless contract is EXACTLY 0);
//   e2e_flows_per_sec_{stateful,stateless} — wall-clock throughput;
//   journal_flushes_stateless              — write-behind batches that
//       replaced the demoted ACK-point writes.
//
// With --scale10 it adds the Fig 11-style headroom runs (10x request rate)
// and reports cpu_headroom_x10 = stateless/stateful wall-clock throughput at
// 10x — the CPU the store tax was costing.
//
// Results land in BENCH_store_modes.json. `--baseline FILE` turns the binary
// into a CI gate:
//   - sets_per_request_stateless must be exactly 0 (hard contract, baseline
//     or not);
//   - e2e_flows_per_sec_stateless must stay above 1/2 the checked-in
//     baseline value.
//
// Flags: --out FILE | --baseline FILE | --scale10

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/flow_state.h"
#include "src/workload/testbed.h"

namespace {

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

workload::TestbedConfig Fig13Config() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 6;
  cfg.backends = 10;
  cfg.clients = 10;
  cfg.kv_servers = 4;
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 10'000;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = 9'800;
  cfg.catalog.max_size = 10'200;
  return cfg;
}

struct ModeRun {
  double flows_per_sec = 0;
  double flows = 0;
  double sync_ops = 0;          // ACK-point writes + synchronous removes.
  double sets_per_request = 0;  // sync_ops / completed flows.
  double journal_appends = 0;
  double journal_flushes = 0;
};

// One open-loop run at `scale` x 1500 req/s with the VIP in `mode`.
ModeRun RunMode(yoda::StoreMode mode, int scale) {
  workload::Testbed tb(Fig13Config());
  tb.DefineDefaultVipAndStart();
  if (mode == yoda::StoreMode::kStateless) {
    tb.controller->SetStoreMode(tb.vip(), yoda::StoreMode::kStateless);
    tb.sim.RunUntil(tb.sim.now() + sim::Msec(300));  // Make-before-break rollout.
  }

  sim::Rng rng(5);
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  const double rate = 1500.0 * scale;
  const sim::Time end = tb.sim.now() + sim::Sec(5);
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > end) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client =
          tb.clients[static_cast<std::size_t>(rng.UniformInt(
                         0, static_cast<std::int64_t>(tb.clients.size()) - 1))].get();
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(tb.vip(), 80, url, {}, [&](const workload::FetchResult& r) {
        if (r.ok) {
          ++ok;
        } else {
          ++failed;
        }
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / rate)));
    });
  };
  const auto t0 = std::chrono::steady_clock::now();
  schedule(tb.sim.now() + sim::Msec(1));
  tb.sim.Run();
  const double wall = WallSeconds(t0);

  ModeRun r;
  r.flows = static_cast<double>(ok + failed);
  r.flows_per_sec = r.flows / wall;
  for (const auto& inst : tb.instances) {
    const yoda::StoreSessionStats& st = inst->store_session().stats();
    r.sync_ops += static_cast<double>(st.ack_point_writes + st.sync_removes);
    r.journal_appends += static_cast<double>(st.journal_appends);
    r.journal_flushes += static_cast<double>(st.journal_flushes);
  }
  r.sets_per_request = r.flows > 0 ? r.sync_ops / r.flows : 0;
  std::printf(
      "  %s (x%d): %.0f flows (%llu ok) in %.3f s -> %.0f flows/s | "
      "%.0f sync store ops (%.2f sets/request), %.0f journal appends in %.0f flushes\n",
      yoda::StoreModeName(mode), scale, r.flows, static_cast<unsigned long long>(ok), wall,
      r.flows_per_sec, r.sync_ops, r.sets_per_request, r.journal_appends, r.journal_flushes);
  return r;
}

void WriteJson(const std::string& path, const std::map<std::string, double>& metrics) {
  std::ofstream out(path);
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    out << "  \"" << key << "\": " << buf;
  }
  out << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

std::map<std::string, double> ReadJson(const std::string& path) {
  std::map<std::string, double> m;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto q1 = line.find('"');
    if (q1 == std::string::npos) {
      continue;
    }
    const auto q2 = line.find('"', q1 + 1);
    const auto colon = line.find(':', q2);
    if (q2 == std::string::npos || colon == std::string::npos) {
      continue;
    }
    m[line.substr(q1 + 1, q2 - q1 - 1)] = std::atof(line.c_str() + colon + 1);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_store_modes.json";
  std::string baseline_path;
  bool scale10 = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale10") == 0) {
      scale10 = true;
    } else {
      std::printf("usage: %s [--out FILE] [--baseline FILE] [--scale10]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== store_modes: stateful (3 sets/request) vs stateless fast path ===\n");
  std::map<std::string, double> metrics;
  const ModeRun stateful = RunMode(yoda::StoreMode::kStateful, 1);
  const ModeRun stateless = RunMode(yoda::StoreMode::kStateless, 1);
  metrics["e2e_flows_per_sec_stateful"] = stateful.flows_per_sec;
  metrics["e2e_flows_per_sec_stateless"] = stateless.flows_per_sec;
  metrics["sets_per_request_stateful"] = stateful.sets_per_request;
  metrics["sets_per_request_stateless"] = stateless.sets_per_request;
  metrics["journal_flushes_stateless"] = stateless.journal_flushes;
  metrics["sync_store_ops_stateless"] = stateless.sync_ops;

  if (scale10) {
    // Fig 11 angle: at 10x the store tax is the difference between keeping up
    // and falling behind; the ratio is the reclaimed CPU headroom.
    const ModeRun stateful10 = RunMode(yoda::StoreMode::kStateful, 10);
    const ModeRun stateless10 = RunMode(yoda::StoreMode::kStateless, 10);
    metrics["e2e_flows_per_sec_x10_stateful"] = stateful10.flows_per_sec;
    metrics["e2e_flows_per_sec_x10_stateless"] = stateless10.flows_per_sec;
    metrics["cpu_headroom_x10"] = stateful10.flows_per_sec > 0
                                      ? stateless10.flows_per_sec / stateful10.flows_per_sec
                                      : 0;
    std::printf("  cpu_headroom_x10: %.2fx\n", metrics["cpu_headroom_x10"]);
  }

  WriteJson(out_path, metrics);

  int failures = 0;
  // The tentpole contract gates unconditionally: the stateless fast path
  // issues ZERO synchronous store writes, not "few".
  if (stateless.sync_ops != 0) {
    std::printf("REGRESSION sets_per_request_stateless: %.0f sync store ops (want exactly 0)\n",
                stateless.sync_ops);
    ++failures;
  }
  if (stateful.sets_per_request < 2.5) {
    // Sanity: the stateful path still pays the paper's tax; ~3 modulo flows
    // cut off by end-of-run teardown batching.
    std::printf("REGRESSION sets_per_request_stateful: %.2f (want ~3)\n",
                stateful.sets_per_request);
    ++failures;
  }
  if (!baseline_path.empty()) {
    const auto base = ReadJson(baseline_path);
    auto it = base.find("e2e_flows_per_sec_stateless");
    if (it != base.end() && it->second > 0 &&
        stateless.flows_per_sec < it->second / 2.0) {
      std::printf("REGRESSION e2e_flows_per_sec_stateless: now %.1f vs baseline %.1f (<1/2)\n",
                  stateless.flows_per_sec, it->second);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("store-mode gate: OK (0 sync writes stateless, stateful tax intact)\n");
  }
  return failures == 0 ? 0 : 1;
}
