// Figure 15: max-to-average traffic ratio per VIP over the 24-hour trace.
//
// Paper result: ratios span 1.07x-50.3x with an average of 3.7x across all
// VIPs — that average is the L7 LB cost reduction of Yoda-as-a-service,
// because standalone deployments provision for the peak while the shared
// service bills the average.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/sim/random.h"
#include "src/workload/trace.h"

int main() {
  std::printf("=== Figure 15: per-VIP max-to-average traffic ratio (24 h trace) ===\n");
  std::printf("Paper: ratios 1.07x-50.3x, average 3.7x => 3.7x cost reduction.\n\n");

  sim::Rng rng(2016);
  workload::Trace trace = workload::GenerateTrace(rng);
  std::printf("trace: %zu VIPs, %zu 10-min bins, %d total rules\n\n", trace.vips.size(),
              trace.bins(), trace.TotalRules());

  std::vector<double> ratios;
  for (const auto& vip : trace.vips) {
    ratios.push_back(vip.MaxToAvgRatio());
  }

  std::printf("%-8s %-14s %-14s %-10s\n", "VIP", "avg(req/s)", "max(req/s)", "max/avg");
  // VIPs are sorted by traffic volume (Fig 15's x-axis); print a decimated
  // series so the whole curve is visible.
  for (std::size_t i = 0; i < trace.vips.size(); i += trace.vips.size() / 20) {
    const auto& vip = trace.vips[i];
    std::printf("%-8zu %-14.3f %-14.3f %-10.2f\n", i, vip.AvgRate(), vip.MaxRate(),
                vip.MaxToAvgRatio());
  }

  double total = 0;
  for (double r : ratios) {
    total += r;
  }
  const double avg = total / static_cast<double>(ratios.size());
  std::sort(ratios.begin(), ratios.end());

  std::printf("\n%-34s %-12s %-12s\n", "metric", "paper", "measured");
  std::printf("%-34s %-12s %-12.2f\n", "min max-to-avg ratio", "1.07x", ratios.front());
  std::printf("%-34s %-12s %-12.2f\n", "max max-to-avg ratio", "50.3x", ratios.back());
  std::printf("%-34s %-12s %-12.2f\n", "avg ratio (= cost reduction)", "3.7x", avg);
  std::printf("%-34s %-12s %-12.2f\n", "median ratio", "-", ratios[ratios.size() / 2]);
  return 0;
}
