// Core fast-path microbenchmarks: the substrate every experiment funnels
// through. Four suites measure the simulator and fabric hot paths directly:
//
//   timer_schedule_fire  — self-rescheduling event chains (the dominant
//                          packet-delivery pattern: schedule from a callback,
//                          fire, repeat) across mixed near/far horizons;
//   timer_cancel_churn   — RTO-style arm/cancel/re-arm where ~90% of timers
//                          never fire (the TCP retransmit pattern);
//   fabric_pps           — packet deliveries/sec through Network::Send with a
//                          512 B payload bouncing between two nodes;
//   e2e_flows            — full-testbed open-loop HTTP fetches at Fig 13
//                          scale, wall-clock flows/sec.
//
// Results are emitted as machine-readable JSON (BENCH_perf_core.json) so the
// perf trajectory has data, and `--baseline FILE` turns the binary into a CI
// regression gate: any throughput metric below 1/2 the checked-in baseline
// (or peak RSS above 2x) fails the run.
//
// Flags:
//   --out FILE        JSON output path (default BENCH_perf_core.json)
//   --baseline FILE   compare against a baseline JSON; exit 1 on >2x regression
//   --scale10         additionally run the ~10x Fig 13 scale-up; also records
//                     peak_rss_mb_x10 (taken right after the x10 run, which
//                     dominates the process high-water mark)
//   --threads N       additionally run the e2e sections cell-sharded (8 cells
//                     on N worker threads, same aggregate rate) and emit
//                     e2e_flows_per_sec_sharded[_x10], plus intra-cell
//                     sharded (ONE testbed placed across 8 shards, every
//                     inter-component hop crossing shards) and emit
//                     e2e_flows_per_sec_intra[_x10]

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/workload/browser_client.h"
#include "src/workload/parallel_load.h"
#include "src/workload/testbed.h"

namespace {

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double PeakRssMb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KB on Linux.
}

// Scheduling noise on a shared machine easily swings a sub-second microbench
// by +-15%; report the best of three runs — the one least disturbed by
// neighbors — so regression checks compare signal, not scheduler luck.
template <typename Fn>
double BestOf3(Fn&& bench) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, bench());
  }
  return best;
}

// --- timer_schedule_fire ----------------------------------------------------
// 1000 independent chains; each fired event re-schedules itself with a delta
// cycling through the latency scales the real fabric uses. Exercises
// schedule-from-callback + fire, the dominant simulator pattern, through the
// raw calling convention — the one packet delivery actually uses (the
// pre-overhaul core had only the closure path, so the before/after ratio is
// exactly the win the fabric's events see). The std::function control-plane
// path is measured separately as timer_schedule_fire_fn.
struct RawChains {
  sim::Simulator* sim;
  const sim::Duration* deltas;
  std::uint64_t fired = 0;
  std::uint64_t limit = 0;
  std::uint64_t chains = 0;

  static void Fire(void* ctx, std::uint64_t c) {
    auto* s = static_cast<RawChains*>(ctx);
    ++s->fired;
    if (s->fired + s->chains <= s->limit) {
      s->sim->AfterRaw(s->deltas[(s->fired + c) % 4], &RawChains::Fire, ctx, c);
    }
  }
};

double BenchTimerScheduleFire(std::uint64_t total_events) {
  sim::Simulator sim;
  const sim::Duration deltas[] = {sim::Usec(50), sim::Usec(250), sim::Msec(1), sim::Msec(33)};
  constexpr std::uint64_t kChains = 1000;
  RawChains state{&sim, deltas, 0, total_events, kChains};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < kChains; ++c) {
    sim.AfterRaw(deltas[c % 4], &RawChains::Fire, &state, c);
  }
  sim.Run();
  const double wall = WallSeconds(t0);
  std::printf("  timer_schedule_fire: %llu events in %.3f s -> %.0f events/s\n",
              static_cast<unsigned long long>(state.fired), wall,
              static_cast<double>(state.fired) / wall);
  return static_cast<double>(state.fired) / wall;
}

// Same chain shape through the std::function path (control-plane work:
// monitor ticks, RTO arms, client think-time).
double BenchTimerScheduleFireFn(std::uint64_t total_events) {
  sim::Simulator sim;
  const sim::Duration deltas[] = {sim::Usec(50), sim::Usec(250), sim::Msec(1), sim::Msec(33)};
  constexpr int kChains = 1000;
  std::uint64_t fired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::function<void(int)> chain = [&](int c) {
    ++fired;
    if (fired + kChains <= total_events) {
      sim.After(deltas[(fired + static_cast<std::uint64_t>(c)) % 4], [&chain, c]() { chain(c); });
    }
  };
  for (int c = 0; c < kChains; ++c) {
    sim.After(deltas[static_cast<std::size_t>(c) % 4], [&chain, c]() { chain(c); });
  }
  sim.Run();
  const double wall = WallSeconds(t0);
  std::printf("  timer_schedule_fire_fn: %llu events in %.3f s -> %.0f events/s\n",
              static_cast<unsigned long long>(fired), wall, static_cast<double>(fired) / wall);
  return static_cast<double>(fired) / wall;
}

// --- timer_cancel_churn -----------------------------------------------------
// Arm timers far in the future, cancel 90% of them immediately (the RTO that
// the ACK beat), let the survivors fire. Ops = arms + cancels + fires.
double BenchTimerCancelChurn(std::uint64_t timers) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::uint64_t cancels = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<sim::TimerHandle> handles;
  handles.reserve(10000);
  for (std::uint64_t i = 0; i < timers; ++i) {
    handles.push_back(
        sim.At(sim::Msec(200) + sim::Usec(static_cast<sim::Duration>(i % 50000)),
               [&fired]() { ++fired; }));
    if (handles.size() == 10000) {
      // Cancel 9 of every 10 (the ACK arrived before the RTO).
      for (std::size_t k = 0; k < handles.size(); ++k) {
        if (k % 10 != 0) {
          handles[k].Cancel();
          ++cancels;
        }
      }
      handles.clear();
    }
  }
  sim.Run();
  const double wall = WallSeconds(t0);
  const double ops = static_cast<double>(timers + cancels + fired);
  std::printf("  timer_cancel_churn: %llu arms, %llu cancels, %llu fired in %.3f s -> %.0f ops/s\n",
              static_cast<unsigned long long>(timers), static_cast<unsigned long long>(cancels),
              static_cast<unsigned long long>(fired), wall, ops / wall);
  return ops / wall;
}

// --- fabric_pps -------------------------------------------------------------
// Two nodes bounce a 512 B payload through Network::Send until `total`
// deliveries have happened. Measures the per-packet fabric cost: verdict
// evaluation, latency draw, event scheduling, delivery dispatch.
class Bouncer : public net::Node {
 public:
  Bouncer(net::Network* network, net::IpAddr self, net::IpAddr peer, std::uint64_t limit,
          const std::string& payload)
      : net_(network), self_(self), peer_(peer), limit_(limit), payload_(payload) {}

  void Kick() { SendOne(); }

  void HandlePacket(const net::Packet& packet) override {
    (void)packet;
    if (net_->stats().delivered < limit_) {
      SendOne();
    }
  }

 private:
  void SendOne() {
    net::Packet p;
    p.src = self_;
    p.dst = peer_;
    p.sport = 1000;
    p.dport = 80;
    p.flags = net::kAck;
    p.payload = payload_;
    net_->Send(std::move(p));
  }

  net::Network* net_;
  net::IpAddr self_;
  net::IpAddr peer_;
  std::uint64_t limit_;
  // A Payload so per-packet sends share one refcounted buffer instead of
  // copying 512 bytes each time — the fabric is what's under test here.
  net::Payload payload_;
};

double BenchFabricPps(std::uint64_t total) {
  sim::Simulator sim;
  net::Network network(&sim, /*seed=*/1);
  network.SetLatency(net::Region::kDatacenter, net::Region::kDatacenter, sim::Usec(250), 0);
  const net::IpAddr a = net::MakeIp(10, 0, 0, 1);
  const net::IpAddr b = net::MakeIp(10, 0, 0, 2);
  const std::string payload(512, 'x');
  Bouncer na(&network, a, b, total, payload);
  Bouncer nb(&network, b, a, total, payload);
  network.Attach(a, &na);
  network.Attach(b, &nb);
  const auto t0 = std::chrono::steady_clock::now();
  // 64 packets in flight keeps the event queue realistically busy.
  for (int i = 0; i < 64; ++i) {
    na.Kick();
  }
  sim.Run();
  const double wall = WallSeconds(t0);
  const double pps = static_cast<double>(network.stats().delivered) / wall;
  std::printf("  fabric_pps: %llu deliveries in %.3f s -> %.0f packets/s\n",
              static_cast<unsigned long long>(network.stats().delivered), wall, pps);
  return pps;
}

// --- e2e_flows --------------------------------------------------------------

workload::TestbedConfig Fig13Config() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 6;
  cfg.backends = 10;
  cfg.clients = 10;
  cfg.kv_servers = 4;
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 10'000;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = 9'800;
  cfg.catalog.max_size = 10'200;
  return cfg;
}

// Fig 13-shaped testbed under open-loop load; wall-clock flows/sec. `scale`
// multiplies the request rate (scale=10 is the "10x Fig 13" headroom run).
double BenchE2eFlows(int scale, double* out_flows) {
  workload::TestbedConfig cfg = Fig13Config();
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  sim::Rng rng(5);
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  const double rate = 1500.0 * scale;  // Fig 13 pre-step aggregate is 1500 req/s.
  const sim::Duration kEnd = sim::Sec(5);
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > kEnd) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client =
          tb.clients[static_cast<std::size_t>(rng.UniformInt(
                         0, static_cast<std::int64_t>(tb.clients.size()) - 1))].get();
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(tb.vip(), 80, url, {}, [&](const workload::FetchResult& r) {
        if (r.ok) {
          ++ok;
        } else {
          ++failed;
        }
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / rate)));
    });
  };
  const auto t0 = std::chrono::steady_clock::now();
  schedule(sim::Msec(1));
  tb.sim.Run();
  const double wall = WallSeconds(t0);
  const double flows = static_cast<double>(ok + failed);
  const double fps = flows / wall;
  std::printf("  e2e_flows (x%d): %.0f flows (%llu ok, %llu failed) in %.3f s -> %.0f flows/s\n",
              scale, flows, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed), wall, fps);
  if (out_flows != nullptr) {
    *out_flows = flows;
  }
  return fps;
}

// Same workload cell-sharded: 8 cells on `threads` workers, each cell serving
// 1/8 of the aggregate rate. On a multi-core host this is where the parallel
// engine's headroom shows; flow totals are worker-count-invariant.
double BenchE2eFlowsSharded(int scale, int threads, double* out_flows) {
  const double rate = 1500.0 * scale;
  const auto t0 = std::chrono::steady_clock::now();
  const workload::ParallelLoadResult r =
      workload::RunShardedFetchLoad(Fig13Config(), rate, sim::Sec(5), threads);
  const double wall = WallSeconds(t0);
  const double flows = static_cast<double>(r.ok + r.failed);
  const double fps = flows / wall;
  std::printf(
      "  e2e_flows_sharded (x%d, %d cells, %d workers): %.0f flows (%llu ok, %llu failed) in "
      "%.3f s -> %.0f flows/s\n",
      scale, r.cells, r.workers, flows, static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.failed), wall, fps);
  if (out_flows != nullptr) {
    *out_flows = flows;
  }
  return fps;
}

// Same workload intra-cell sharded: ONE Fig 13 testbed placed across 8
// shards (round-robin: instances, backends, KV servers and clients each on
// their owning shard) on `threads` workers. Unlike the cell-sharded run the
// shards talk to each other constantly — every fetch crosses client ->
// fabric -> instance -> backend shard boundaries — so this measures the
// cross-shard delivery path under load. Flow totals are worker-count-
// invariant.
double BenchE2eFlowsIntra(int scale, int threads, double* out_flows) {
  sim::ShardedSim::Config ecfg;
  ecfg.shards = 8;
  ecfg.workers = threads;
  sim::ShardedSim engine(ecfg);
  workload::TestbedConfig cfg = Fig13Config();
  cfg.engine = &engine;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  // Per-client open-loop generators, each on its client's own shard with its
  // own RNG (a function of the client index only).
  struct ClientLoad {
    explicit ClientLoad(std::uint64_t seed) : rng(seed) {}
    sim::Rng rng;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::vector<std::shared_ptr<std::function<void()>>> loops;
  };
  std::vector<std::unique_ptr<ClientLoad>> loads;
  const double rate = 1500.0 * scale / static_cast<double>(tb.clients.size());
  const sim::Duration kEnd = sim::Sec(5);
  for (std::size_t i = 0; i < tb.clients.size(); ++i) {
    loads.push_back(std::make_unique<ClientLoad>(5 + 0x9e3779b97f4a7c15ULL * i));
    ClientLoad* cl = loads.back().get();
    workload::BrowserClient* client = tb.clients[i].get();
    sim::Simulator* csim = tb.SimFor(tb.OwnerShardOf(client->ip()));
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [cl, client, csim, &urls, &tb, rate, kEnd, weak_tick]() {
      if (csim->now() > kEnd) {
        return;
      }
      const std::string& url = urls[static_cast<std::size_t>(
          cl->rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(tb.vip(), 80, url, {}, [cl](const workload::FetchResult& r) {
        if (r.ok) {
          ++cl->ok;
        } else {
          ++cl->failed;
        }
      });
      if (auto self = weak_tick.lock()) {
        csim->After(sim::FromSeconds(cl->rng.Exponential(1.0 / rate)), *self);
      }
    };
    cl->loops.push_back(tick);
    csim->At(std::max<sim::Time>(sim::Msec(1), csim->now()), [tick]() { (*tick)(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.Run();
  const double wall = WallSeconds(t0);
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (const auto& cl : loads) {
    ok += cl->ok;
    failed += cl->failed;
  }
  const double flows = static_cast<double>(ok + failed);
  const double fps = flows / wall;
  std::printf(
      "  e2e_flows_intra (x%d, 8 shards, %d workers): %.0f flows (%llu ok, %llu failed) in "
      "%.3f s -> %.0f flows/s\n",
      scale, engine.workers(), flows, static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(failed), wall, fps);
  if (out_flows != nullptr) {
    *out_flows = flows;
  }
  return fps;
}

// --- JSON plumbing ----------------------------------------------------------

void WriteJson(const std::string& path, const std::map<std::string, double>& metrics) {
  std::ofstream out(path);
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    out << "  \"" << key << "\": " << buf;
  }
  out << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

// Minimal flat-JSON reader for our own `"key": number` format.
std::map<std::string, double> ReadJson(const std::string& path) {
  std::map<std::string, double> m;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto q1 = line.find('"');
    if (q1 == std::string::npos) {
      continue;
    }
    const auto q2 = line.find('"', q1 + 1);
    const auto colon = line.find(':', q2);
    if (q2 == std::string::npos || colon == std::string::npos) {
      continue;
    }
    m[line.substr(q1 + 1, q2 - q1 - 1)] = std::atof(line.c_str() + colon + 1);
  }
  return m;
}

// Throughput metrics must stay above 1/2 baseline; RSS below 2x baseline.
int CheckBaseline(const std::map<std::string, double>& now,
                  const std::map<std::string, double>& base) {
  int failures = 0;
  for (const auto& [key, base_value] : base) {
    auto it = now.find(key);
    if (it == now.end() || base_value <= 0) {
      continue;
    }
    const bool lower_is_better = key.find("rss") != std::string::npos;
    const double ratio = lower_is_better ? it->second / base_value : base_value / it->second;
    if (ratio > 2.0) {
      std::printf("REGRESSION %s: now %.1f vs baseline %.1f (>2x)\n", key.c_str(), it->second,
                  base_value);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("baseline check: OK (no metric regressed >2x)\n");
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_perf_core.json";
  std::string baseline_path;
  bool scale10 = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale10") == 0) {
      scale10 = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::printf("usage: %s [--out FILE] [--baseline FILE] [--scale10] [--threads N]\n",
                  argv[0]);
      return 2;
    }
  }

  std::printf("=== perf_core: event/packet fast-path microbenchmarks ===\n");
  std::map<std::string, double> metrics;
  // Sizes chosen for a few hundred ms of wall per suite: long enough that
  // scheduler noise stops dominating, short enough for a per-PR CI job.
  metrics["timer_schedule_fire_events_per_sec"] =
      BestOf3([] { return BenchTimerScheduleFire(8'000'000); });
  metrics["timer_schedule_fire_fn_events_per_sec"] =
      BestOf3([] { return BenchTimerScheduleFireFn(8'000'000); });
  metrics["timer_cancel_churn_ops_per_sec"] =
      BestOf3([] { return BenchTimerCancelChurn(4'000'000); });
  metrics["fabric_packets_per_sec"] = BestOf3([] { return BenchFabricPps(4'000'000); });
  double flows = 0;
  metrics["e2e_flows_per_sec"] = BenchE2eFlows(1, &flows);
  metrics["e2e_flows_completed"] = flows;
  // Sample before the x10/sharded sections: maxrss is a monotonic high-water
  // mark, so this is the only point where the reading still means "x1
  // footprint" when the bigger runs are enabled.
  metrics["peak_rss_mb"] = PeakRssMb();
  std::printf("  peak_rss_mb: %.1f\n", metrics["peak_rss_mb"]);
  if (scale10) {
    double flows10 = 0;
    metrics["e2e_flows_per_sec_x10"] = BenchE2eFlows(10, &flows10);
    metrics["e2e_flows_completed_x10"] = flows10;
    // The x10 run dominates the process high-water mark, so sampling right
    // after it attributes the figure to that scale (the x1 peak is ~10x
    // smaller). This is the footprint-regression gate for the big run.
    metrics["peak_rss_mb_x10"] = PeakRssMb();
    std::printf("  peak_rss_mb_x10: %.1f\n", metrics["peak_rss_mb_x10"]);
  }
  if (threads > 0) {
    metrics["threads"] = threads;
    double sflows = 0;
    metrics["e2e_flows_per_sec_sharded"] = BenchE2eFlowsSharded(1, threads, &sflows);
    metrics["e2e_flows_completed_sharded"] = sflows;
    if (scale10) {
      double sflows10 = 0;
      metrics["e2e_flows_per_sec_x10_sharded"] = BenchE2eFlowsSharded(10, threads, &sflows10);
      metrics["e2e_flows_completed_x10_sharded"] = sflows10;
    }
    double iflows = 0;
    metrics["e2e_flows_per_sec_intra"] = BenchE2eFlowsIntra(1, threads, &iflows);
    metrics["e2e_flows_completed_intra"] = iflows;
    if (scale10) {
      double iflows10 = 0;
      metrics["e2e_flows_per_sec_x10_intra"] = BenchE2eFlowsIntra(10, threads, &iflows10);
      metrics["e2e_flows_completed_x10_intra"] = iflows10;
    }
  }

  WriteJson(out_path, metrics);
  if (!baseline_path.empty()) {
    const auto base = ReadJson(baseline_path);
    if (base.empty()) {
      std::printf("baseline %s missing or empty\n", baseline_path.c_str());
      return 1;
    }
    if (CheckBaseline(metrics, base) != 0) {
      return 1;
    }
  }
  return 0;
}
