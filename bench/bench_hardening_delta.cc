// Hardening delta: quantifies the two failure-path mitigations this repo
// adds on top of the paper's design, each against its un-hardened baseline.
//
// (1) Monitor hysteresis on a lossy probe path. An instance whose packets
//     drop with p=0.20 (a gray, lossy NIC — not a dead host) is monitored
//     with fail-after-1-miss (paper default) vs fail-after-3-misses.
//     Hysteresis keeps the instance pooled almost all of the time; the
//     trigger-happy monitor flaps it in and out continuously.
//
// (2) Hedged reads against a degraded TCPStore replica. Keys whose primary
//     replica is dead (or merely slow) pay the full op timeout under
//     sequential reads; a hedge after a few ms of silence cuts the tail
//     to roughly the hedge delay. Fan-out reads bound the tail too but pay
//     double the request load on every read, degraded or not.

#include <cstdio>
#include <string>
#include <vector>

#include "src/fault/fault_plane.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/workload/testbed.h"

namespace {

// --- Section 1: hysteresis vs flapping on a lossy instance. ---

struct LossyResult {
  std::uint64_t failures = 0;
  std::uint64_t readmissions = 0;
  int pooled_samples = 0;
  int samples = 0;
};

LossyResult RunLossyInstance(int fail_after_misses) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.backends = 4;
  cfg.controller.monitor_interval = sim::Msec(100);
  cfg.controller.fail_after_misses = fail_after_misses;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 2;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  // Instance 0's NIC goes gray: every packet (health probes included) is
  // dropped with p=0.20. The host is NOT dead — most requests still succeed.
  tb.faults->SetNodeLoss(tb.instance_ip(0), 0.20);

  LossyResult out;
  const net::IpAddr lossy = tb.instance_ip(0);
  for (int s = 0; s < 300; ++s) {
    tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));
    ++out.samples;
    for (yoda::YodaInstance* inst : tb.controller->ActiveInstances()) {
      if (inst->ip() == lossy) {
        ++out.pooled_samples;
        break;
      }
    }
  }
  out.failures = tb.controller->detected_failures();
  out.readmissions = tb.controller->readmissions();
  return out;
}

// --- Section 2: degraded-mode TCPStore reads. ---

struct ReadResult {
  sim::Histogram latency_ms;
  kv::ClientOpStats stats;
};

// `degradation`: 0 = replica 0 dead, otherwise replica 0 answers late by
// this duration (still within the op timeout).
ReadResult RunDegradedReads(kv::ReadMode mode, sim::Duration degradation) {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  std::vector<kv::KvServer*> raw;
  for (int i = 0; i < 5; ++i) {
    servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
    raw.push_back(servers.back().get());
  }
  kv::ReplicatingClientConfig wcfg;
  wcfg.replicas = 2;
  kv::ReplicatingClient writer(&simulator, raw, wcfg);
  const int kKeys = 400;
  for (int i = 0; i < kKeys; ++i) {
    writer.Set("obj-" + std::to_string(i), "v", [](bool) {});
  }
  simulator.Run();

  if (degradation == 0) {
    servers[0]->Fail();  // Dead: never answers (contents are gone with it).
  } else {
    servers[0]->set_response_delay(degradation);  // Slow: answers, but late.
  }

  kv::ReplicatingClientConfig rcfg;
  rcfg.replicas = 2;
  rcfg.op_timeout = sim::Msec(30);
  rcfg.read_mode = mode;
  rcfg.hedge_delay = sim::Msec(3);
  kv::ReplicatingClient reader(&simulator, raw, rcfg);

  ReadResult out;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    // Staggered issue so each Get's latency is measured in isolation.
    simulator.After(sim::Msec(i), [&, key]() {
      const sim::Time start = simulator.now();
      reader.Get(key, [&, start](std::optional<std::string> v) {
        if (v) {
          out.latency_ms.Add(sim::ToMillis(simulator.now() - start));
        }
      });
    });
  }
  simulator.Run();
  out.stats = reader.stats();
  return out;
}

const char* ModeName(kv::ReadMode mode) {
  switch (mode) {
    case kv::ReadMode::kSingle:
      return "single (timeout-only)";
    case kv::ReadMode::kHedged:
      return "hedged (3 ms)";
    case kv::ReadMode::kFanout:
      return "fanout";
  }
  return "?";
}

void PrintReadRow(kv::ReadMode mode, ReadResult& r) {
  std::printf("%-22s %8.2f %8.2f %8.2f | hedged %4llu  wins %4llu  replica-timeouts %4llu\n",
              ModeName(mode), r.latency_ms.Percentile(50), r.latency_ms.Percentile(99),
              r.latency_ms.Max(), static_cast<unsigned long long>(r.stats.hedged_gets),
              static_cast<unsigned long long>(r.stats.hedge_wins),
              static_cast<unsigned long long>(r.stats.replica_timeouts));
}

}  // namespace

int main() {
  std::printf("=== Hardening delta 1: monitor hysteresis on a 20%%-lossy instance ===\n");
  std::printf("30 s of 100 ms monitor ticks; instance 0's packets drop with p=0.20.\n\n");
  std::printf("%-24s %10s %12s %16s\n", "monitor", "failures", "readmissions",
              "pooled (of 300)");
  for (int misses : {1, 3}) {
    LossyResult r = RunLossyInstance(misses);
    std::printf("fail after %d miss%-7s %10llu %12llu %11d/%d\n", misses,
                misses == 1 ? "" : "es", static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.readmissions), r.pooled_samples, r.samples);
  }
  std::printf("\n(expected: 1-miss flaps the instance a dozen times; 3-miss hysteresis\n"
              " requires three consecutive 20%% losses per removal, ~0.8%% per tick, and the\n"
              " flap-suppression penalty stretches each readmission streak.)\n");

  std::printf("\n=== Hardening delta 2: degraded-mode TCPStore reads (400 keys, 2 replicas) ===\n");
  std::printf("\n--- replica kv-0 DEAD (never answers; op timeout 30 ms) ---\n");
  std::printf("%-22s %8s %8s %8s\n", "read mode", "p50 ms", "p99 ms", "max ms");
  for (kv::ReadMode mode :
       {kv::ReadMode::kSingle, kv::ReadMode::kHedged, kv::ReadMode::kFanout}) {
    ReadResult r = RunDegradedReads(mode, 0);
    PrintReadRow(mode, r);
  }
  std::printf("\n--- replica kv-0 SLOW (answers after 20 ms; op timeout 30 ms) ---\n");
  std::printf("%-22s %8s %8s %8s\n", "read mode", "p50 ms", "p99 ms", "max ms");
  for (kv::ReadMode mode :
       {kv::ReadMode::kSingle, kv::ReadMode::kHedged, kv::ReadMode::kFanout}) {
    ReadResult r = RunDegradedReads(mode, sim::Msec(20));
    PrintReadRow(mode, r);
  }
  std::printf("\n(expected: single-read tails sit at the timeout/slowness; hedging cuts the\n"
              " tail to ~hedge-delay + RTT while only hedging the degraded keys; fanout\n"
              " matches the hedged tail but doubles read load on every key.)\n");
  return 0;
}
