// Figure 14: safe user-policy updates (make-before-break server swap).
//
// Timeline (paper §7.4): 0-10 s equal split across Srv-1..3; at 10 s the
// operator adds Srv-4 (make); at 20 s removes Srv-1 (break); at 30 s sets
// weights Srv-2:Srv-3:Srv-4 = 1:1:2. Traffic shares must track each change,
// and no client flow may break — existing connections keep their backend.

#include <cstdio>
#include <functional>
#include <vector>

#include "src/workload/testbed.h"

namespace {

std::vector<rules::Rule> SplitOver(workload::Testbed& tb, std::vector<int> backends,
                                   std::vector<double> weights) {
  rules::Rule r;
  r.name = "r-split";
  r.priority = 1;
  r.match.url_glob = "*";
  r.action.type = rules::ActionType::kWeightedSplit;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    r.action.backends.push_back({tb.backend_ip(backends[i]), 80, weights[i]});
  }
  return {r};
}

}  // namespace

int main() {
  std::printf("=== Figure 14: make-before-break policy update ===\n");
  std::printf("Paper: equal 3-way -> +Srv4 (4-way) -> -Srv1 (3-way) -> weights 1:1:2;\n");
  std::printf("       every phase's traffic shares follow the policy; zero broken flows.\n\n");

  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.backends = 4;
  cfg.clients = 8;
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 12'000;
  cfg.catalog.sigma = 0.05;
  cfg.catalog.min_size = 10'000;
  cfg.catalog.max_size = 15'000;
  workload::Testbed tb(cfg);
  tb.controller->DefineVip(tb.vip(), 80, SplitOver(tb, {0, 1, 2}, {1, 1, 1}));
  tb.controller->Start();

  // Policy timeline.
  tb.sim.At(sim::Sec(10), [&]() {
    tb.controller->UpdateVipRules(tb.vip(), SplitOver(tb, {0, 1, 2, 3}, {1, 1, 1, 1}));
  });
  tb.sim.At(sim::Sec(20), [&]() {
    tb.controller->UpdateVipRules(tb.vip(), SplitOver(tb, {1, 2, 3}, {1, 1, 1}));
  });
  tb.sim.At(sim::Sec(30), [&]() {
    tb.controller->UpdateVipRules(tb.vip(), SplitOver(tb, {1, 2, 3}, {1, 1, 2}));
  });

  // Load: open loop, 400 req/s.
  sim::Rng rng(3);
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  const sim::Duration kEnd = sim::Sec(40);
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > kEnd) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client = tb.clients[static_cast<std::size_t>(
                                    rng.UniformInt(0, static_cast<std::int64_t>(
                                                          tb.clients.size()) - 1))].get();
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(tb.vip(), 80, url, {}, [&](const workload::FetchResult& r) {
        if (r.ok) {
          ++ok;
        } else {
          ++failed;
        }
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / 400.0)));
    });
  };
  schedule(sim::Msec(1));

  // Sample per-server request shares each second.
  std::printf("%-8s %-8s %-8s %-8s %-8s   %s\n", "t (s)", "Srv-1", "Srv-2", "Srv-3", "Srv-4",
              "(fraction of requests in the last second)");
  std::function<void(int)> sample = [&](int second) {
    if (second > 40) {
      return;
    }
    tb.sim.At(sim::Sec(second), [&, second]() {
      std::uint64_t counts[4];
      std::uint64_t total = 0;
      for (int s = 0; s < 4; ++s) {
        counts[s] = tb.servers[static_cast<std::size_t>(s)]->DrainRequestCounter();
        total += counts[s];
      }
      if (second % 2 == 0 && total > 0) {
        std::printf("%-8d %-8.2f %-8.2f %-8.2f %-8.2f\n", second,
                    static_cast<double>(counts[0]) / total,
                    static_cast<double>(counts[1]) / total,
                    static_cast<double>(counts[2]) / total,
                    static_cast<double>(counts[3]) / total);
      }
      sample(second + 1);
    });
  };
  sample(1);

  tb.sim.Run();

  std::printf("\nexpected shares: 0-10 s: .33/.33/.33/0 | 10-20 s: .25 each |\n");
  std::printf("                 20-30 s: 0/.33/.33/.33 | 30-40 s: 0/.25/.25/.50\n");
  std::printf("\n%-40s %-10s %-10s\n", "metric", "paper", "measured");
  std::printf("%-40s %-10s %llu/%llu\n", "broken flows across 3 policy updates", "0",
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(ok + failed));
  tb.PrintMetricsSnapshot();
  return 0;
}
