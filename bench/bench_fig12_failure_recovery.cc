// Figure 12: failure recovery. Two sections:
//
// (a) CDF of request latency when 2 of 10 LB instances fail mid-run, for
//     HAProxy-noretry (24% of affected flows break), HAProxy-retry (the
//     retried objects pay the 30 s HTTP timeout) and Yoda (no broken flows,
//     0.6-3 s of added latency on affected flows only).
//
// (b) The per-flow packet timeline at the backend for a Yoda flow that
//     lives through the failure: packets drop at the failure point, the
//     backend retransmits at ~300 ms (still routed to the dead instance,
//     mapping not yet updated), retransmits again at ~600 ms — by then the
//     600 ms monitor removed the instance, the packet lands on a survivor,
//     TCPStore supplies the flow state, and the transfer resumes.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/analyzer.h"
#include "src/workload/testbed.h"

namespace {

workload::TestbedConfig Fig12Config(int proxies) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 10;
  cfg.baseline_proxies = proxies;
  cfg.backends = 12;
  cfg.clients = 8;
  cfg.kv_servers = 4;
  cfg.catalog.objects = 400;
  return cfg;
}

struct ScenarioResult {
  sim::Histogram latency_s;
  int broken = 0;
  int completed = 0;
  int inflight_at_failure = 0;
  // Yoda only: per-takeover recovery delay (crash -> survivor adoption),
  // reconstructed from the flight recorder after the run.
  sim::Histogram recovery_ms;
};

// Closed-loop processes fetching objects; 2 LB instances (or proxies) are
// failed at `fail_at`. For the HAProxy modes, a "DNS update" redirects each
// process's next attempt to a surviving proxy.
ScenarioResult RunScenario(bool use_yoda, bool browser_retry, int processes,
                           sim::Duration duration, sim::Duration fail_at) {
  workload::Testbed tb(Fig12Config(use_yoda ? 0 : 10));
  tb.DefineDefaultVipAndStart();
  if (!use_yoda) {
    tb.InstallProxyRules(tb.EqualSplitRules(0, tb.cfg.backends));
  }
  sim::Rng rng(42);
  ScenarioResult result;
  std::vector<bool> proxy_dead(static_cast<std::size_t>(std::max(tb.cfg.baseline_proxies, 1)),
                               false);

  std::function<void(int)> next_fetch = [](int) {};
  // One attempt of one object; on failure in retry mode the browser
  // re-issues the request through the (by then updated) DNS mapping, and the
  // recorded latency includes the wasted HTTP timeout.
  auto do_fetch = std::make_shared<
      std::function<void(int, std::string, sim::Time, int)>>();
  *do_fetch = [&, do_fetch](int proc, std::string url, sim::Time started, int attempt) {
    auto* client = tb.clients[static_cast<std::size_t>(proc) % tb.clients.size()].get();
    net::IpAddr target = tb.vip();
    if (!use_yoda) {
      // DNS-style split: pick a proxy the "DNS" still advertises.
      int p = (proc + attempt) % tb.cfg.baseline_proxies;
      while (proxy_dead[static_cast<std::size_t>(p)]) {
        p = (p + 1) % tb.cfg.baseline_proxies;
      }
      target = tb.proxy_ip(p);
    }
    workload::FetchOptions opts;
    opts.http_timeout = sim::Sec(30);
    client->FetchObject(
        target, 80, url, opts,
        [&, do_fetch, proc, url, started, attempt](const workload::FetchResult& r) {
          if (!r.ok && browser_retry && attempt == 0) {
            (*do_fetch)(proc, url, started, 1);  // Browser retry via fresh DNS.
            return;
          }
          const bool spanned_failure = started <= fail_at && tb.sim.now() > fail_at;
          if (r.ok) {
            ++result.completed;
          } else {
            ++result.broken;
          }
          result.latency_s.Add(sim::ToSeconds(tb.sim.now() - started));
          if (spanned_failure) {
            ++result.inflight_at_failure;
          }
          next_fetch(proc);
        });
  };
  next_fetch = [&, do_fetch](int proc) {
    if (tb.sim.now() > duration) {
      return;
    }
    const auto& obj = tb.catalog->objects()[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(tb.catalog->objects().size()) - 1))];
    (*do_fetch)(proc, obj.url, tb.sim.now(), 0);
  };
  for (int p = 0; p < processes; ++p) {
    tb.sim.After(sim::Msec(10 * p), [&next_fetch, p]() { next_fetch(p); });
  }

  tb.sim.After(fail_at, [&]() {
    if (use_yoda) {
      // Through the fault plane: routes the crash to the instance AND the
      // network, and stamps kFaultInjected into the flight recorder so the
      // recovery timeline below has an anchor.
      tb.CrashInstance(0);
      tb.CrashInstance(1);
    } else {
      tb.FailProxy(0);
      tb.FailProxy(1);
      proxy_dead[0] = proxy_dead[1] = true;  // DNS updated (async in reality).
    }
  });
  tb.sim.Run();
  if (use_yoda) {
    // Recovery time per affected flow: crash instant -> the survivor's
    // TCPStore adoption, straight from the trace.
    for (const obs::TakeoverRecord& rec : obs::TakeoverTimeline(tb.flight)) {
      if (rec.event.at >= fail_at) {
        result.recovery_ms.Add(sim::ToMillis(rec.event.at - fail_at));
      }
    }
  }
  return result;
}

void PrintCdfRow(const char* name, ScenarioResult& r) {
  std::printf("%-18s %6d ok %5d broken | P50 %6.2fs  P75 %6.2fs  P90 %6.2fs  P99 %6.2fs  max %6.2fs\n",
              name, r.completed, r.broken, r.latency_s.Percentile(50),
              r.latency_s.Percentile(75), r.latency_s.Percentile(90),
              r.latency_s.Percentile(99), r.latency_s.Max());
}

void PacketTimelineSection() {
  std::printf("\n--- Fig 12(b): backend packet timeline across a Yoda failure ---\n");
  workload::TestbedConfig cfg = Fig12Config(0);
  cfg.yoda_instances = 4;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  const workload::WebObject* big = nullptr;
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > 250'000) {
      big = &o;
      break;
    }
  }
  struct Event {
    double t_ms;
    std::uint32_t seq;
    bool retransmit;
  };
  std::vector<Event> events;
  std::uint32_t max_seq = 0;
  // Tap server->VIP data packets (the stream the figure plots). Count each
  // transmission once: at its first hop (before mux encapsulation).
  tb.network.set_tap([&](sim::Time t, const net::Packet& p) {
    if (p.encap_dst != 0) {
      return;
    }
    bool from_backend = false;
    for (int i = 0; i < tb.cfg.backends; ++i) {
      from_backend = from_backend || p.src == tb.backend_ip(i);
    }
    if (from_backend && !p.payload.empty()) {
      const bool rtx = net::SeqLt(p.seq, max_seq);
      max_seq = std::max(max_seq, p.seq);
      events.push_back({sim::ToMillis(t), p.seq, rtx});
    }
  });

  bool ok = false;
  sim::Duration latency = 0;
  tb.clients[0]->FetchObject(tb.vip(), 80, big->url, {}, [&](const workload::FetchResult& r) {
    ok = r.ok;
    latency = r.latency;
  });
  sim::Time fail_time = 0;
  tb.sim.RunUntil(sim::Msec(200));
  for (std::size_t i = 0; i < tb.instances.size(); ++i) {
    if (tb.instances[i]->active_flows() > 0) {
      tb.CrashInstance(static_cast<int>(i));
      fail_time = tb.sim.now();
      break;
    }
  }
  tb.sim.Run();

  std::printf("flow %s (%zu bytes): failure injected at %.0f ms; completed ok=%d in %.0f ms\n",
              big->url.c_str(), big->size, sim::ToMillis(fail_time), ok,
              sim::ToMillis(latency));
  std::printf("%-12s %-14s %-12s\n", "time (ms)", "seq (rel)", "note");
  const std::uint32_t base_seq = events.empty() ? 0 : events.front().seq;
  const double fail_ms = sim::ToMillis(fail_time);
  double last_printed = -1000;
  for (const Event& e : events) {
    // Dense around the failure/recovery window, sparse elsewhere.
    const bool in_window = e.t_ms > fail_ms - 60 && e.t_ms < fail_ms + 900;
    if (!in_window && e.t_ms - last_printed < 250) {
      continue;
    }
    last_printed = e.t_ms;
    const char* note = "";
    if (e.retransmit) {
      note = "retransmission";
    }
    if (in_window && e.t_ms <= fail_ms) {
      note = "last before failure";
    }
    std::printf("%-12.1f %-14u %-12s\n", e.t_ms, e.seq - base_seq, note);
  }
  std::printf("(expected shape: gap at the failure; server retransmits ~+300 ms to the dead\n"
              " instance; ~+600 ms retransmit lands on a survivor via TCPStore; stream resumes)\n");
  tb.PrintMetricsSnapshot("metrics registry snapshot (timeline run)");
}

// Controller-failure class: the LEADER CONTROLLER dies mid-rollout (instead
// of a data-plane instance). Measured from the traces: time to a new leader
// (crash -> next kLeaseAcquired), time to rollout completion (rollout issue
// -> the resumed plan's last reconcile step), and how many requests the
// control-plane failover impacted. The same schedule runs once WITHOUT the
// crash as the control: rollout migration itself perturbs a few flows, and
// only the delta is attributable to the failover — the paper's availability
// claim is that the delta is zero, because muxes and instances keep serving
// from their last programmed state while the standby restores the journal.
struct CtlFailoverResult {
  int completed = 0;
  int broken = 0;
  sim::Time rollout_at = 0;
  sim::Time crash_at = 0;
  sim::Time new_leader_at = 0;
  sim::Time resumed_at = 0;
  sim::Time rollout_done_at = 0;
};

CtlFailoverResult RunCtlFailover(bool crash_leader) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.backends = 6;
  cfg.clients = 6;
  cfg.controller_ha = true;
  cfg.controllers = 3;
  workload::Testbed tb(cfg);
  tb.StartAllControllers();
  yoda::Controller* leader = tb.AwaitLeader();
  CtlFailoverResult out;
  if (leader == nullptr) {
    return out;
  }
  // Two VIPs so the second assignment round both grows one pool and shrinks
  // the other — that mix is what produces a make/barrier/break plan whose
  // break phase is still parked when the leader dies.
  leader->DefineVip(tb.vip(0), 80, tb.EqualSplitRules(0, 3, "r0"));
  leader->DefineVip(tb.vip(1), 80, tb.EqualSplitRules(3, 3, "r1"));

  // Closed-loop load so "impacted" is well-defined per request.
  sim::Rng rng(42);
  const sim::Duration load_until = sim::Sec(12);
  std::function<void(int)> next_fetch = [](int) {};
  next_fetch = [&](int proc) {
    if (tb.sim.now() > load_until) {
      return;
    }
    const auto& obj = tb.catalog->objects()[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(tb.catalog->objects().size()) - 1))];
    auto* client = tb.clients[static_cast<std::size_t>(proc) % tb.clients.size()].get();
    workload::FetchOptions opts;
    opts.http_timeout = sim::Sec(30);
    client->FetchObject(tb.vip(0), 80, obj.url, opts,
                        [&, proc](const workload::FetchResult& r) {
                          out.completed += r.ok ? 1 : 0;
                          out.broken += r.ok ? 0 : 1;
                          next_fetch(proc);
                        });
  };
  for (int p = 0; p < 24; ++p) {
    tb.sim.After(sim::Msec(10 * p), [&next_fetch, p]() { next_fetch(p); });
  }

  // Round 1 establishes the assignment; round 2 shifts it (vip0 grows, vip1
  // shrinks) and the leader dies 10 ms in, break phase still parked.
  std::map<net::IpAddr, yoda::Controller::VipDemand> demand;
  tb.sim.At(sim::Sec(2), [&] {
    demand[tb.vip(0)] = {0.4, 2, 0};
    demand[tb.vip(1)] = {0.4, 2, 0};
    tb.LeaderController()->ApplyManyToMany(demand, 1.0, 2000);
  });
  tb.sim.At(sim::Sec(5), [&] {
    demand[tb.vip(0)] = {0.4, 3, 0};
    demand[tb.vip(1)] = {0.4, 1, 0};
    tb.LeaderController()->ApplyManyToMany(demand, 1.0, 2000, /*migration_limit=*/1.0);
    out.rollout_at = tb.sim.now();
  });
  if (crash_leader) {
    tb.sim.At(sim::Sec(5) + sim::Msec(10), [&] {
      for (int i = 0; i < tb.controller_count(); ++i) {
        yoda::Controller* c = tb.ControllerAt(i);
        if (!c->crashed() && c->ActingLeader()) {
          tb.CrashController(i);
          out.crash_at = tb.sim.now();
          return;
        }
      }
    });
  }
  tb.sim.RunUntil(load_until + sim::Sec(31));

  // Reconstruct the failover from the flight recorder.
  for (const obs::TraceEvent& ev : tb.flight.system_events()) {
    if (ev.type == obs::EventType::kLeaseAcquired && out.crash_at != 0 &&
        ev.at > out.crash_at && out.new_leader_at == 0) {
      out.new_leader_at = ev.at;
    }
    if (ev.type == obs::EventType::kPlanResumed && out.resumed_at == 0) {
      out.resumed_at = ev.at;
    }
  }
  // Rollout completion: the last reconcile step the surviving leader executed
  // (its actuator journal is time-ordered).
  yoda::Controller* survivor = tb.LeaderController();
  if (survivor != nullptr) {
    for (const yoda::ExecutedStep& es : survivor->actuator().journal()) {
      out.rollout_done_at = std::max(out.rollout_done_at, es.at);
    }
  }
  return out;
}

void ControllerFailoverSection() {
  std::printf("\n=== Fig 12(c): leader-controller failure during an assignment rollout ===\n");
  const CtlFailoverResult crashed = RunCtlFailover(/*crash_leader=*/true);
  const CtlFailoverResult control = RunCtlFailover(/*crash_leader=*/false);

  std::printf("%-46s %-14s\n", "metric", "measured");
  std::printf("%-46s %-14.1f\n", "time to new leader (ms, crash->lease)",
              crashed.new_leader_at > crashed.crash_at
                  ? sim::ToMillis(crashed.new_leader_at - crashed.crash_at)
                  : -1.0);
  std::printf("%-46s %-14.1f\n", "time to rollout complete (ms, crash->done)",
              crashed.rollout_done_at > crashed.crash_at
                  ? sim::ToMillis(crashed.rollout_done_at - crashed.crash_at)
                  : -1.0);
  std::printf("%-46s %-14.1f\n", "  rollout issued->done, with failover (ms)",
              crashed.rollout_done_at > crashed.rollout_at
                  ? sim::ToMillis(crashed.rollout_done_at - crashed.rollout_at)
                  : -1.0);
  std::printf("%-46s %-14.1f\n", "  rollout issued->done, no failure (ms)",
              control.rollout_done_at > control.rollout_at
                  ? sim::ToMillis(control.rollout_done_at - control.rollout_at)
                  : -1.0);
  std::printf("%-46s %s\n", "in-flight plan resumed by standby",
              crashed.resumed_at != 0 ? "yes" : "no");
  std::printf("%-46s %d of %d\n", "requests broken, with leader crash", crashed.broken,
              crashed.broken + crashed.completed);
  std::printf("%-46s %d of %d\n", "requests broken, same rollout no crash", control.broken,
              control.broken + control.completed);
  std::printf("%-46s %d\n", "requests impacted by the failover (delta)",
              crashed.broken - control.broken);
  std::printf("(expected: new leader within one lease TTL (300 ms) + restore; the broken-\n"
              " request delta is 0 — the data plane serves from its last programmed state\n"
              " throughout the failover, and only rollout migration itself perturbs flows)\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 12(a): request latency CDF under 2/10 LB instance failures ===\n");
  std::printf("Paper: HAProxy-noretry breaks 24%% of affected flows; HAProxy-retry adds >30 s;\n");
  std::printf("       Yoda breaks none and adds 0.6-3 s to affected flows.\n\n");

  const int kProcesses = 40;
  const sim::Duration kDuration = sim::Sec(20);
  const sim::Duration kFailAt = sim::Sec(5);

  ScenarioResult yoda = RunScenario(/*use_yoda=*/true, /*browser_retry=*/false, kProcesses,
                                    kDuration, kFailAt);
  ScenarioResult ha_noretry = RunScenario(false, false, kProcesses, kDuration, kFailAt);
  ScenarioResult ha_retry = RunScenario(false, true, kProcesses, kDuration, kFailAt);

  PrintCdfRow("Yoda-noretry", yoda);
  PrintCdfRow("HAProxy-noretry", ha_noretry);
  PrintCdfRow("HAProxy-retry", ha_retry);

  std::printf("\n--- Yoda takeover recovery time (crash -> survivor adoption, from traces) ---\n");
  std::printf("takeovers %d | P50 %7.0f ms  P90 %7.0f ms  P99 %7.0f ms  max %7.0f ms\n",
              static_cast<int>(yoda.recovery_ms.count()), yoda.recovery_ms.Percentile(50),
              yoda.recovery_ms.Percentile(90), yoda.recovery_ms.Percentile(99),
              yoda.recovery_ms.Max());
  std::printf("(paper: 0.6-3 s — one 600 ms monitor round plus TCP retransmission backoff)\n");

  std::printf("\n%-44s %-14s %-14s\n", "metric", "paper", "measured");
  std::printf("%-44s %-14s %d/%d\n", "Yoda broken flows", "0",
              yoda.broken, yoda.broken + yoda.completed);
  std::printf("%-44s %-14s %-14.2f\n", "Yoda max added latency (s)", "0.6-3",
              yoda.latency_s.Max());
  std::printf("%-44s %-14s %d of %d\n", "HAProxy-noretry broken (affected flows)", "24%",
              ha_noretry.broken, ha_noretry.inflight_at_failure);
  std::printf("%-44s %-14s %-14.2f\n", "HAProxy-retry max latency (s)", ">30",
              ha_retry.latency_s.Max());

  PacketTimelineSection();
  ControllerFailoverSection();
  return 0;
}
