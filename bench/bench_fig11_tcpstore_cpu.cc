// Figure 11: memcached CPU utilization, default vs TCPStore persistence.
//
// Paper: issuing each operation to 2 replica servers doubles the average CPU
// utilization; a single server handles ~80K client req/s at 90% CPU, so one
// TCPStore server supports ~6.6 Yoda instances (12K req/s each).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace {

double RunAndMeasureCpu(int replicas, double ops_per_server, int servers_n,
                        sim::Duration duration, obs::Registry* registry = nullptr) {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  for (int i = 0; i < servers_n; ++i) {
    servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
  }
  std::vector<kv::KvServer*> ptrs;
  for (auto& s : servers) {
    ptrs.push_back(s.get());
  }
  kv::ReplicatingClientConfig cfg;
  cfg.replicas = replicas;
  cfg.registry = registry;
  kv::ReplicatingClient client(&simulator, ptrs, cfg);
  sim::Rng rng(99);

  const double total_rate = ops_per_server * servers_n;
  const double gap_s = 1.0 / total_rate;
  std::uint64_t issued = 0;
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > duration) {
      return;
    }
    simulator.At(when, [&]() {
      client.Set("flow-" + std::to_string(issued++), std::string(64, 's'), [](bool) {});
      schedule(simulator.now() + sim::FromSeconds(rng.Exponential(gap_s)));
    });
  };
  schedule(0);
  simulator.Run();

  double total_util = 0;
  for (auto& s : servers) {
    total_util += s->CpuUtilization(duration);
  }
  return 100.0 * total_util / servers_n;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: TCPStore CPU utilization, default vs 2-replica persistence ===\n");
  std::printf("Paper: persistence doubles average CPU; ~80K ops/s/server at 90%% CPU.\n\n");

  const int kServers = 10;
  const sim::Duration kDuration = sim::Sec(3);

  std::printf("%-18s %-16s %-16s %-10s\n", "client ops/s/srv", "cpu%% default",
              "cpu%% 2-replica", "ratio");
  obs::Registry metrics;  // Captures the 2-replica run at the top rate.
  for (double rate : {4'000.0, 20'000.0, 40'000.0}) {
    const double one = RunAndMeasureCpu(1, rate, kServers, kDuration);
    const double two = RunAndMeasureCpu(2, rate, kServers, kDuration,
                                        rate == 40'000.0 ? &metrics : nullptr);
    std::printf("%-18.0f %-16.2f %-16.2f %-10.2f\n", rate, one, two, two / one);
  }

  // Saturation check: at what per-server rate does CPU hit ~90%?
  const double util_80k = RunAndMeasureCpu(1, 80'000.0, kServers, sim::Sec(1));
  std::printf("\n%-44s %-10s %-10s\n", "metric", "paper", "measured");
  std::printf("%-44s %-10s %-10.1f\n", "CPU at 80K ops/s/server, default (%)", "~90",
              util_80k);
  std::printf("%-44s %-10s %-10s\n", "persistence CPU ratio", "~2x", "see table");
  std::printf("%-44s %-10s %-10.1f\n", "Yoda instances per TCPStore server",
              "6.6", 80'000.0 / 12'000.0);
  std::printf("\n--- metrics registry snapshot (2-replica run at 40K ops/s/server) ---\n%s",
              metrics.TextTable().c_str());
  return 0;
}
