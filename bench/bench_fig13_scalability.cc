// Figure 13: elastic scale-out under a load step.
//
// Paper: 6 Yoda instances at 5K req/s each (~40% CPU); at t=10 s the load
// doubles to 10K req/s each (~80% CPU); the controller adds 3 instances,
// bringing per-instance load to ~6.7K req/s and CPU to ~60%. No client flow
// breaks at any point, and latency stays flat (queues only build once CPU
// saturates).
//
// Rates are scaled 20x down for the single-core simulator; the CPU cost
// model is scaled up by the same factor so the utilization percentages land
// where the paper's do.

// With --x100 an additional section runs the same per-cell topology as
// workload::kScenarioCells independent cells at 100x the Fig 13 aggregate
// rate (cell-sharded across --threads N worker threads, default 1). Flow
// totals are worker-count-invariant; only wall-clock changes with N.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "src/workload/browser_client.h"
#include "src/workload/parallel_load.h"
#include "src/workload/scenario.h"
#include "src/workload/testbed.h"

namespace {

workload::TestbedConfig Fig13CellConfig() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 6;
  cfg.spare_instances = 3;
  cfg.backends = 10;
  cfg.clients = 10;
  cfg.kv_servers = 4;
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 10'000;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = 9'800;
  cfg.catalog.max_size = 10'200;
  cfg.instance_template.cpu_costs.per_connection = sim::Usec(500);
  cfg.instance_template.cpu_costs.per_packet = sim::Usec(18);
  cfg.controller.auto_scale = true;
  cfg.controller.scale_out_cpu = 0.70;
  cfg.controller.scale_out_step = 3;
  cfg.controller.scale_out_ticks = 3;
  return cfg;
}

// 100x the steady-state Fig 13 aggregate (6 instances x 250 req/s), spread
// across the cells; 3 simulated seconds keeps the flow count (~450K) within
// a couple of minutes of wall-clock on one core.
void RunX100(int threads) {
  std::printf("\n=== x100 section: %d cells, %d worker thread(s) ===\n",
              workload::kScenarioCells, threads);
  const double aggregate_rate = 100.0 * 6 * 250;
  const auto wall0 = std::chrono::steady_clock::now();
  const workload::ParallelLoadResult r = workload::RunShardedFetchLoad(
      Fig13CellConfig(), aggregate_rate, sim::Sec(3), threads);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  std::printf("  x100: %llu ok, %llu failed across %d cells (%d workers) in %.1f s"
              " -> %.0f flows/s\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.failed), r.cells, r.workers, wall,
              static_cast<double>(r.ok + r.failed) / wall);
}

}  // namespace

int main(int argc, char** argv) {
  bool x100 = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--x100") == 0) {
      x100 = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::printf("usage: %s [--x100] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Figure 13: scale-out under a 2x load step ===\n");
  std::printf("Paper: CPU 40%% -> 80%% at the step -> 60%% after +3 instances; no broken flows.\n\n");

  workload::TestbedConfig cfg;
  cfg.yoda_instances = 6;
  cfg.spare_instances = 3;
  cfg.backends = 10;
  cfg.clients = 10;
  cfg.kv_servers = 4;
  // Small objects; CPU model scaled so 250 req/s/instance ~= 40% CPU.
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 10'000;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = 9'800;
  cfg.catalog.max_size = 10'200;
  cfg.instance_template.cpu_costs.per_connection = sim::Usec(500);
  cfg.instance_template.cpu_costs.per_packet = sim::Usec(18);
  cfg.controller.auto_scale = true;
  cfg.controller.scale_out_cpu = 0.70;
  cfg.controller.scale_out_step = 3;
  cfg.controller.scale_out_ticks = 3;  // ~2 s of sustained overload, as in Fig 13.
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  sim::Rng rng(5);
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;

  // Open-loop load: 250 req/s per initial instance, doubling at t=10 s.
  double per_instance_rate = 250;
  auto total_rate = [&]() { return per_instance_rate * 6; };
  const sim::Duration kEnd = sim::Sec(30);
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > kEnd) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client = tb.clients[static_cast<std::size_t>(
                                    rng.UniformInt(0, static_cast<std::int64_t>(
                                                          tb.clients.size()) - 1))].get();
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(tb.vip(), 80, url, {}, [&](const workload::FetchResult& r) {
        if (r.ok) {
          ++ok;
        } else {
          ++failed;
        }
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / total_rate())));
    });
  };
  schedule(sim::Msec(1));
  tb.sim.At(sim::Sec(10), [&]() { per_instance_rate = 500; });

  // Per-second sampler: requests landed per active instance + CPU.
  std::printf("%-8s %-12s %-14s %-12s %-10s\n", "t (s)", "#instances", "req/s/instance",
              "avg CPU %", "failed");
  std::uint64_t last_flows = 0;
  std::function<void(int)> sample = [&](int second) {
    if (second > 30) {
      return;
    }
    tb.sim.At(sim::Sec(second), [&, second]() {
      const auto active = tb.controller->ActiveInstances();
      std::uint64_t flows = 0;
      double cpu = 0;
      for (auto* inst : active) {
        flows += inst->stats().flows_started;
        cpu += inst->cpu().Utilization(tb.sim.now());
        inst->cpu().ResetWindow(tb.sim.now());
      }
      const double rate = static_cast<double>(flows - last_flows) /
                          static_cast<double>(active.size());
      last_flows = flows;
      if (second % 2 == 0) {
        std::printf("%-8d %-12zu %-14.0f %-12.1f %-10llu\n", second, active.size(), rate,
                    100.0 * cpu / static_cast<double>(active.size()),
                    static_cast<unsigned long long>(failed));
      }
      sample(second + 1);
    });
  };
  sample(1);

  tb.sim.Run();

  std::printf("\n%-44s %-12s %-12s\n", "metric", "paper", "measured");
  std::printf("%-44s %-12s %-12zu\n", "instances after scale-out", "9",
              tb.controller->ActiveInstances().size());
  std::printf("%-44s %-12s %llu/%llu\n", "broken flows during scaling", "0",
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(ok + failed));
  tb.PrintMetricsSnapshot();

  if (x100) {
    RunX100(threads);
  }
  return 0;
}
