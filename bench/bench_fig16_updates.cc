// Figure 16(b)-(e): the VIP-assignment algorithm over the 24-hour trace.
//
// Every 10 minutes (we sample every 30 minutes to bound runtime) the
// controller recomputes the VIP->instance assignment. We compare:
//   all-to-all      — every VIP on every instance (rule-count reference);
//   YODA-no-limit   — many-to-many, no update constraints;
//   YODA-limit      — adds Eq 4,5 (transient traffic) and Eq 6,7 (migration
//                     budget delta=10%, relaxed +10% when infeasible).
//
// Both modes are driven through AssignmentEngine::PlanRound — the same round
// artifact the controller executes — so every number below (instances,
// transient overload, migrated flows) is read off a returned Round's
// SolveResult/UpdatePlan rather than recomputed bench-side. Each engine
// instance remembers its own previous round; the no-limit engine passes the
// previous assignment for the PLAN but solves unconstrained.
//
// Paper results: rules/instance median ~1% of all-to-all (b); no-limit needs
// 4.6-73% (avg 27%) more instances than all-to-all, limit within ~1.3% of
// no-limit (c); transient overload median 5.3% of instances under no-limit,
// ~0 under limit (d); flows migrated median 44.9% (no-limit) vs <=30%,
// median 8.3% (limit) (e).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/assign/update_planner.h"
#include "src/assign/validator.h"
#include "src/core/assignment_engine.h"
#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/workload/trace.h"

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  std::printf("=== Figure 16: VIP assignment over the 24 h trace ===\n\n");
  sim::Rng rng(2016);
  workload::Trace trace = workload::GenerateTrace(rng);
  workload::BinProblemConfig bin_cfg;  // R_y = 2K rules (5 ms target, Fig 6).
  std::printf("trace: %zu VIPs, %d rules total, T_y=1.0, R_y=%d, n_v=4*t_v/T_y, delta=10%%\n\n",
              trace.vips.size(), trace.TotalRules(), bin_cfg.rule_capacity);

  // Local registry so this bench dumps the same uniform snapshot as the
  // testbed-backed ones (the engine has no simulator to report into).
  obs::Registry metrics;
  obs::Counter& rounds_ctr = metrics.GetCounter("assign.rounds");
  obs::Counter& infeasible_ctr = metrics.GetCounter("assign.infeasible_rounds");
  obs::Counter& order_violations_ctr = metrics.GetCounter("assign.order_violations");
  sim::Histogram& solve_ms_hist = metrics.GetHistogram("assign.solve_ms");
  sim::Histogram& migrated_hist =
      metrics.GetHistogram("assign.migrated_pct", obs::Labels{{"mode", "limit"}});

  // One engine per mode: each carries its own previous-round memory.
  yoda::AssignmentEngine no_limit_engine;
  yoda::AssignmentEngine limit_engine;
  bool have_prev = false;

  std::vector<double> rules_frac_of_a2a;
  std::vector<double> nolimit_over_a2a;
  std::vector<double> limit_over_nolimit;
  std::vector<double> overload_nolimit_pct;
  std::vector<double> overload_limit_pct;
  std::vector<double> migrated_nolimit_pct;
  std::vector<double> migrated_limit_pct;
  std::vector<double> solve_ms;

  std::printf("%-6s %-8s %-10s %-10s %-12s %-12s %-12s %-12s\n", "bin", "a2a", "no-limit",
              "limit", "ovl-nolim%", "ovl-lim%", "mig-nolim%", "mig-lim%");

  const std::size_t step = 3;  // Every 30 min.
  for (std::size_t bin = 0; bin < trace.bins(); bin += step) {
    assign::Problem p = workload::ProblemForBin(trace, bin, bin_cfg);
    const int a2a_instances = assign::MinInstancesByTraffic(p);

    const auto t0 = std::chrono::steady_clock::now();
    // YODA-no-limit solves unconstrained (the heavy flow churn of Fig 16(e));
    // its Round still carries the UpdatePlan against ITS previous round, which
    // is where the migration/overload numbers come from.
    auto no_limit = no_limit_engine.PlanRound(p, /*limit_transient=*/false,
                                              /*limit_migration=*/false);
    auto limit = limit_engine.PlanRound(p, /*limit_transient=*/true,
                                        /*limit_migration=*/true);
    const auto t1 = std::chrono::steady_clock::now();
    solve_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    rounds_ctr.Inc();
    solve_ms_hist.Add(solve_ms.back());

    if (!no_limit.feasible || !limit.feasible) {
      infeasible_ctr.Inc();
      std::printf("%-6zu INFEASIBLE (%s)\n", bin,
                  (no_limit.feasible ? limit.note : no_limit.note).c_str());
      continue;
    }
    auto check = assign::Validate(p, no_limit.result.assignment);
    auto check2 = assign::Validate(p, limit.result.assignment);
    if (!check.ok || !check2.ok) {
      std::printf("%-6zu VALIDATION FAILED\n", bin);
      continue;
    }
    // Every round's execution order must be make-before-break.
    if (!assign::IsMakeBeforeBreak(no_limit.steps) ||
        !assign::IsMakeBeforeBreak(limit.steps)) {
      order_violations_ctr.Inc();
    }

    // (b) rules per instance vs all-to-all.
    {
      auto rules = limit.result.assignment.InstanceRules(p);
      std::vector<double> per_instance;
      for (int r : rules) {
        if (r > 0) {
          per_instance.push_back(static_cast<double>(r) / p.TotalRules() * 100.0);
        }
      }
      rules_frac_of_a2a.push_back(Median(per_instance));
    }
    // (c) instance counts.
    nolimit_over_a2a.push_back(
        100.0 * (no_limit.result.instances_used - a2a_instances) / a2a_instances);
    limit_over_nolimit.push_back(100.0 *
                                 (limit.result.instances_used - no_limit.result.instances_used) /
                                 no_limit.result.instances_used);

    // (d)+(e) straight off each mode's executed UpdatePlan.
    double ovl_nolim = 0;
    double ovl_lim = 0;
    double mig_nolim = 0;
    double mig_lim = 0;
    if (have_prev) {
      const int insts_nolim = std::max(1, no_limit.result.instances_used);
      const int insts_lim = std::max(1, limit.result.instances_used);
      ovl_nolim = 100.0 *
                  static_cast<double>(no_limit.plan.overloaded_instances.size()) / insts_nolim;
      ovl_lim =
          100.0 * static_cast<double>(limit.plan.overloaded_instances.size()) / insts_lim;
      mig_nolim = 100.0 * no_limit.plan.migrated_fraction;
      mig_lim = 100.0 * limit.plan.migrated_fraction;
      overload_nolimit_pct.push_back(ovl_nolim);
      overload_limit_pct.push_back(ovl_lim);
      migrated_nolimit_pct.push_back(mig_nolim);
      migrated_limit_pct.push_back(mig_lim);
      migrated_hist.Add(mig_lim);
    }

    if (bin % (step * 4) == 0) {
      std::printf("%-6zu %-8d %-10d %-10d %-12.1f %-12.1f %-12.1f %-12.1f\n", bin,
                  a2a_instances, no_limit.result.instances_used, limit.result.instances_used,
                  ovl_nolim, ovl_lim, mig_nolim, mig_lim);
    }
    have_prev = true;
  }

  std::printf("\n%-52s %-14s %-14s\n", "metric", "paper", "measured");
  std::printf("%-52s %-14s %-14.2f\n",
              "(b) median rules/instance, %% of all-to-all", "~1% (0.5-3.7)",
              Median(rules_frac_of_a2a));
  std::printf("%-52s %-14s %-14.1f\n", "(c) no-limit extra instances vs all-to-all %%",
              "avg 27 (4.6-73)",
              Median(nolimit_over_a2a));
  std::printf("%-52s %-14s %-14.1f\n", "(c) limit extra instances vs no-limit %%",
              "median 1.3", Median(limit_over_nolimit));
  std::printf("%-52s %-14s %-14.1f\n", "(d) transient overloaded instances, no-limit %%",
              "median 5.3", Median(overload_nolimit_pct));
  std::printf("%-52s %-14s %-14.1f\n", "(d) transient overloaded instances, limit %%",
              "~0", Median(overload_limit_pct));
  std::printf("%-52s %-14s %-14.1f\n", "(e) flows migrated, no-limit %%", "median 44.9",
              Median(migrated_nolimit_pct));
  std::printf("%-52s %-14s %-14.1f\n", "(e) flows migrated, limit %%", "median 8.3 (<=30)",
              Median(migrated_limit_pct));
  std::printf("%-52s %-14s %-14.1f\n", "solver time per round (ms)", "3920 (CPLEX)",
              Median(solve_ms));
  std::printf("\n--- metrics registry snapshot ---\n%s", metrics.TextTable().c_str());
  return 0;
}
