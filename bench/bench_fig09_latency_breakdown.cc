// Figure 9: end-to-end latency breakdown for small (10 KB) objects.
//
// Paper (median, 50K req/s aggregate): baseline 133 ms; HAProxy 144 ms
// (connection 8 ms, LB 5.23 ms... minus baseline + rounding); Yoda 151 ms
// (connection 10.4 ms, storage 0.89 ms, LB 8.2 ms). Yoda's extra few ms come
// from the user-space packet driver; the *storage* cost of decoupling flow
// state is under 1 ms.
//
// We run the same workload three ways — clients direct to a backend, through
// the Yoda service (VIP), and through the HAProxy-style proxy — and
// decompose the medians the same way the paper does.

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/workload/browser_client.h"
#include "src/workload/testbed.h"

namespace {

// Merges one named stage histogram across every instance label in the
// registry (resampled through the per-instance CDFs).
sim::Histogram MergedHistogram(const obs::Registry& reg, const std::string& name) {
  sim::Histogram merged;
  reg.ForEach([&](const obs::Registry::Row& row) {
    if (row.histogram == nullptr || *row.name != name) {
      return;
    }
    for (auto [value, frac] : row.histogram->Cdf(200)) {
      merged.Add(value);
    }
  });
  return merged;
}

std::uint64_t SummedCounter(const obs::Registry& reg, const std::string& name) {
  std::uint64_t total = 0;
  reg.ForEach([&](const obs::Registry::Row& row) {
    if (row.counter != nullptr && *row.name == name) {
      total += row.counter->value();
    }
  });
  return total;
}

workload::TestbedConfig SmallObjectConfig() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.baseline_proxies = 4;
  cfg.backends = 8;
  cfg.clients = 8;
  cfg.kv_servers = 3;
  // 10 KB objects only (the paper's stress case for connection machinery).
  cfg.catalog.objects = 60;
  cfg.catalog.median_size = 10'000;
  cfg.catalog.sigma = 0.02;
  cfg.catalog.min_size = 9'800;
  cfg.catalog.max_size = 10'200;
  return cfg;
}

struct Run {
  double e2e_ms = 0;
  double connection_ms = 0;
  double storage_ms = 0;
  double rule_scan_ms = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t flows_recorded = 0;
  std::string metrics_table;  // Registry snapshot (Yoda run only).
};

enum class Mode { kBaseline, kYoda, kHaproxy };

Run RunMode(Mode mode, double rate, sim::Duration duration) {
  workload::Testbed tb(SmallObjectConfig());
  tb.DefineDefaultVipAndStart();
  tb.InstallProxyRules(tb.EqualSplitRules(0, tb.cfg.backends));

  sim::Rng rng(77);
  sim::Histogram e2e;
  std::uint64_t failed = 0;
  std::uint64_t completed = 0;
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    urls.push_back(o.url);
  }

  // Open-loop request stream; each request picks its target by mode.
  std::function<void(sim::Time)> schedule = [&](sim::Time when) {
    if (when > duration) {
      return;
    }
    tb.sim.At(when, [&]() {
      auto* client =
          tb.clients[static_cast<std::size_t>(rng.UniformInt(
                         0, static_cast<std::int64_t>(tb.clients.size()) - 1))].get();
      net::IpAddr target = 0;
      switch (mode) {
        case Mode::kBaseline:
          target = tb.backend_ip(static_cast<int>(rng.UniformInt(0, tb.cfg.backends - 1)));
          break;
        case Mode::kYoda:
          target = tb.vip();
          break;
        case Mode::kHaproxy:
          target = tb.proxy_ip(
              static_cast<int>(rng.UniformInt(0, tb.cfg.baseline_proxies - 1)));
          break;
      }
      const std::string& url = urls[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(urls.size()) - 1))];
      client->FetchObject(target, 80, url, {}, [&](const workload::FetchResult& r) {
        if (r.ok) {
          ++completed;
          e2e.Add(sim::ToMillis(r.latency));
        } else {
          ++failed;
        }
      });
      schedule(tb.sim.now() + sim::FromSeconds(rng.Exponential(1.0 / rate)));
    });
  };
  schedule(sim::Msec(1));
  tb.sim.Run();

  Run out;
  out.e2e_ms = e2e.Percentile(50);
  out.completed = completed;
  out.failed = failed;
  if (mode == Mode::kYoda) {
    // The decomposition comes from the pipeline's own stage histograms,
    // recorded at stage boundaries inside the instances (no bench-local
    // timers, no trace reconstruction): connection is the dispatcher's
    // selection -> request-forwarded window, storage is the blocking
    // ACK-point TCPStore waits timed by StoreSession, rule scan is the
    // header-complete -> server-SYN dispatch window.
    out.connection_ms = MergedHistogram(tb.metrics, "yoda.connection_phase_ms").Percentile(50);
    out.storage_ms = MergedHistogram(tb.metrics, "yoda.stage.store_ms").Percentile(50);
    out.rule_scan_ms = MergedHistogram(tb.metrics, "yoda.stage.dispatch_ms").Percentile(50);
    out.flows_recorded = SummedCounter(tb.metrics, "yoda.flows_completed");
    out.metrics_table = tb.metrics.TextTable();
  } else if (mode == Mode::kHaproxy) {
    sim::Histogram conn;
    for (auto& p : tb.proxies) {
      for (auto [v, f] : p->connection_phase_ms().Cdf(200)) {
        conn.Add(v);
      }
    }
    out.connection_ms = conn.Percentile(50);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: latency breakdown, 10 KB objects ===\n");
  std::printf("Paper medians: baseline 133 ms | HAProxy 144 ms (conn 8) | "
              "Yoda 151 ms (conn 10.4, storage 0.89, LB 8.2)\n\n");

  // 50K req/s across 10 instances in the paper; scaled to this testbed.
  const double kRate = 300.0;
  const sim::Duration kDuration = sim::Sec(8);

  Run base = RunMode(Mode::kBaseline, kRate, kDuration);
  Run yoda = RunMode(Mode::kYoda, kRate, kDuration);
  Run haproxy = RunMode(Mode::kHaproxy, kRate, kDuration);

  const double yoda_lb = yoda.e2e_ms - base.e2e_ms - yoda.connection_ms - yoda.storage_ms;
  const double ha_lb = haproxy.e2e_ms - base.e2e_ms - haproxy.connection_ms;

  std::printf("%-26s %-10s %-10s %-10s\n", "component (median ms)", "baseline", "haproxy",
              "yoda");
  std::printf("%-26s %-10.1f %-10.1f %-10.1f\n", "end-to-end", base.e2e_ms, haproxy.e2e_ms,
              yoda.e2e_ms);
  std::printf("%-26s %-10s %-10.2f %-10.2f\n", "connection", "-", haproxy.connection_ms,
              yoda.connection_ms);
  std::printf("%-26s %-10s %-10s %-10.2f\n", "storage (TCPStore)", "-", "0", yoda.storage_ms);
  std::printf("%-26s %-10s %-10s %-10.2f\n", "rule scan (in connection)", "-", "-",
              yoda.rule_scan_ms);
  std::printf("%-26s %-10s %-10.2f %-10.2f\n", "LB processing (derived)", "-", ha_lb, yoda_lb);
  std::printf("\ncompleted: base=%llu yoda=%llu haproxy=%llu | failed: %llu/%llu/%llu\n",
              static_cast<unsigned long long>(base.completed),
              static_cast<unsigned long long>(yoda.completed),
              static_cast<unsigned long long>(haproxy.completed),
              static_cast<unsigned long long>(base.failed),
              static_cast<unsigned long long>(yoda.failed),
              static_cast<unsigned long long>(haproxy.failed));

  std::printf("\n(components from the pipeline stage histograms across %llu completed flows)\n",
              static_cast<unsigned long long>(yoda.flows_recorded));

  std::printf("\n%-44s %-10s %-10s\n", "headline metric", "paper", "measured");
  std::printf("%-44s %-10s %-10.2f\n", "storage overhead of decoupling (ms)", "0.89",
              yoda.storage_ms);
  std::printf("%-44s %-10s %-10.1f\n", "Yoda extra latency vs HAProxy (ms)", "~7",
              yoda.e2e_ms - haproxy.e2e_ms);

  std::printf("\n--- metrics registry snapshot (Yoda run) ---\n%s",
              yoda.metrics_table.c_str());
  return 0;
}
