// Failover demo: the paper's headline behaviour, narrated.
//
// Twenty clients download large objects through the Yoda service; halfway
// through we crash two of the four LB instances. Watch the controller detect
// the failure (600 ms monitor), the L4 fabric re-ECMP the flows, and the
// surviving instances adopt every flow from TCPStore. All downloads finish;
// none is reset; nobody retries.
//
// Build & run:  ./build/examples/failover_demo

#include <cstdio>
#include <vector>

#include "src/workload/testbed.h"

int main() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.backends = 6;
  cfg.kv_servers = 3;
  cfg.clients = 10;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  // Pick beefy objects so transfers are in flight at the crash.
  std::vector<std::string> urls;
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > 120'000 && urls.size() < 20) {
      urls.push_back(o.url);
    }
  }

  int ok = 0;
  int broken = 0;
  sim::Histogram latency_ms;
  for (std::size_t i = 0; i < urls.size(); ++i) {
    tb.clients[i % tb.clients.size()]->FetchObject(
        tb.vip(), 80, urls[i], {}, [&](const workload::FetchResult& r) {
          if (r.ok) {
            ++ok;
            latency_ms.Add(sim::ToMillis(r.latency));
          } else {
            ++broken;
          }
        });
  }

  tb.sim.RunUntil(sim::Msec(180));
  std::printf("t=%.0f ms: %zu transfers in flight across instances:", sim::ToMillis(tb.sim.now()),
              urls.size());
  for (auto& inst : tb.instances) {
    std::printf(" %zu", inst->active_flows());
  }
  std::printf("\n");

  std::printf("t=%.0f ms: CRASHING instances %s and %s\n", sim::ToMillis(tb.sim.now()),
              net::IpToString(tb.instance_ip(0)).c_str(),
              net::IpToString(tb.instance_ip(1)).c_str());
  tb.FailInstance(0);
  tb.FailInstance(1);

  tb.sim.Run();

  std::printf("\ncontroller log:\n");
  for (const auto& ev : tb.controller->events()) {
    std::printf("  %8.0f ms  %s\n", sim::ToMillis(ev.when), ev.what.c_str());
  }

  std::uint64_t client_takeovers = 0;
  std::uint64_t server_takeovers = 0;
  for (auto& inst : tb.instances) {
    client_takeovers += inst->stats().takeovers_client_side;
    server_takeovers += inst->stats().takeovers_server_side;
  }
  std::printf("\nresults: %d/%zu transfers completed, %d broken\n", ok, urls.size(), broken);
  std::printf("latency: P50 %.0f ms, max %.0f ms (failure adds retransmit+detection time "
              "only to affected flows)\n",
              latency_ms.Percentile(50), latency_ms.Max());
  std::printf("TCPStore takeovers: %llu client-side, %llu server-side\n",
              static_cast<unsigned long long>(client_takeovers),
              static_cast<unsigned long long>(server_takeovers));
  tb.PrintMetricsSnapshot();
  return broken == 0 ? 0 : 1;
}
