// Quickstart: stand up the whole Yoda service and push one HTTP request
// through it, printing every packet so the two-phase data path (connection
// phase, then L3 tunneling with sequence translation) is visible.
//
//   clients --(VIP)--> L4 muxes --> Yoda instances <--> TCPStore
//                                        |
//                                   backend pool
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/workload/testbed.h"

int main() {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 2;
  cfg.backends = 3;
  cfg.kv_servers = 2;
  cfg.clients = 1;
  cfg.catalog.objects = 20;
  cfg.catalog.median_size = 4'000;
  cfg.catalog.min_size = 2'000;
  cfg.catalog.max_size = 8'000;
  workload::Testbed tb(cfg);

  // One VIP, equal split across the three backends, monitor running.
  tb.DefineDefaultVipAndStart();

  std::printf("topology: VIP %s -> %d Yoda instances -> %d backends; %d TCPStore servers\n\n",
              net::IpToString(tb.vip()).c_str(), cfg.yoda_instances, cfg.backends,
              cfg.kv_servers);

  // Print the packet flow (skip bare ACKs to keep it readable).
  tb.network.set_tap([](sim::Time t, const net::Packet& p) {
    if (p.flags == net::kAck && p.payload.empty()) {
      return;
    }
    std::printf("%9.2f ms  %s%s\n", sim::ToMillis(t), p.ToString().c_str(),
                p.encap_dst != 0 ? "  [via L4 mux]" : "");
  });

  const workload::WebObject& obj = tb.catalog->objects()[0];
  std::printf("client fetches http://mysite.com%s (%zu bytes)\n\n", obj.url.c_str(), obj.size);

  tb.clients[0]->FetchObject(tb.vip(), 80, obj.url, {}, [&](const workload::FetchResult& r) {
    std::printf("\nresult: ok=%d status=%d bytes=%zu latency=%.1f ms\n", r.ok, r.status,
                r.bytes, sim::ToMillis(r.latency));
  });
  tb.sim.Run();

  // Show where the flow state lived while the flow was active.
  std::printf("\nTCPStore activity: %llu connection writes, %llu tunneling writes, "
              "%llu lookups\n",
              static_cast<unsigned long long>(tb.store->stats().connection_writes),
              static_cast<unsigned long long>(tb.store->stats().tunneling_writes),
              static_cast<unsigned long long>(tb.store->stats().lookups));
  for (auto& inst : tb.instances) {
    std::printf("instance %s: %llu flows, %llu packets tunneled\n",
                net::IpToString(inst->ip()).c_str(),
                static_cast<unsigned long long>(inst->stats().flows_started),
                static_cast<unsigned long long>(inst->stats().packets_tunneled));
  }
  tb.PrintMetricsSnapshot();
  return 0;
}
