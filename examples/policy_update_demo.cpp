// Policy-update demo (§5.1/§7.4): the operator expresses Table 3 style
// policies — weighted split, primary/backup, sticky sessions — and updates
// them live while traffic flows. Existing connections keep their backends;
// only new connections follow the new policy.
//
// Build & run:  ./build/examples/policy_update_demo

#include <cstdio>
#include <functional>

#include "src/rules/policy.h"
#include "src/workload/testbed.h"

namespace {

void Banner(const char* msg) { std::printf("\n--- %s ---\n", msg); }

}  // namespace

int main() {
  workload::TestbedConfig cfg;
  // One instance: sticky tables are per-instance (HAProxy semantics), so a
  // single-instance demo shows the binding cleanly.
  cfg.yoda_instances = 1;
  cfg.backends = 4;
  cfg.clients = 4;
  cfg.catalog.objects = 40;
  cfg.catalog.median_size = 8'000;
  cfg.catalog.min_size = 4'000;
  cfg.catalog.max_size = 16'000;
  workload::Testbed tb(cfg);

  Banner("policy 1: weighted split 1:1:2 over backends 0,1,2");
  rules::WeightedSplitPolicy split;
  split.name = "w";
  split.backends = {{tb.backend_ip(0), 80, 1.0}, {tb.backend_ip(1), 80, 1.0},
                    {tb.backend_ip(2), 80, 2.0}};
  tb.controller->DefineVip(tb.vip(), 80, rules::Compile(split));
  tb.controller->Start();

  auto burst = [&tb](int n) {
    sim::Rng rng(9);
    int done = 0;
    for (int i = 0; i < n; ++i) {
      const auto& obj = tb.catalog->objects()[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(tb.catalog->objects().size()) - 1))];
      tb.clients[static_cast<std::size_t>(i) % tb.clients.size()]->FetchObject(
          tb.vip(), 80, obj.url, {}, [&done](const workload::FetchResult& r) {
            if (r.ok) {
              ++done;
            }
          });
    }
    tb.sim.Run();
    return done;
  };
  auto shares = [&tb]() {
    std::uint64_t counts[4];
    std::uint64_t total = 0;
    for (int s = 0; s < 4; ++s) {
      counts[s] = tb.servers[static_cast<std::size_t>(s)]->DrainRequestCounter();
      total += counts[s];
    }
    for (int s = 0; s < 4; ++s) {
      std::printf("  Srv-%d: %5.1f%%", s + 1,
                  total ? 100.0 * static_cast<double>(counts[s]) / total : 0.0);
    }
    std::printf("\n");
  };

  std::printf("completed %d requests\n", burst(120));
  shares();

  Banner("policy 2: primary/backup — backend 3 primary, 0 backup");
  rules::PrimaryBackupPolicy pb;
  pb.name = "pb";
  pb.priority = 5;
  pb.primaries = {{tb.backend_ip(3), 80, 1.0}};
  pb.backups = {{tb.backend_ip(0), 80, 1.0}};
  tb.controller->UpdateVipRules(tb.vip(), rules::Compile(pb));
  std::printf("completed %d requests (all should hit Srv-4)\n", burst(40));
  shares();

  std::printf("killing the primary backend...\n");
  tb.FailBackend(3);
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(2));  // Monitor marks it down.
  std::printf("completed %d requests (all should fail over to Srv-1)\n", burst(40));
  shares();

  Banner("policy 3: sticky sessions on cookie 'sid'");
  tb.RecoverBackend(3);
  rules::StickySessionPolicy ss;
  ss.name = "ss";
  ss.cookie = "sid";
  ss.fallback = {{tb.backend_ip(0), 80, 1.0}, {tb.backend_ip(1), 80, 1.0},
                 {tb.backend_ip(2), 80, 1.0}};
  tb.controller->UpdateVipRules(tb.vip(), rules::Compile(ss));
  workload::FetchOptions alice;
  alice.cookie = "sid=alice";
  for (int round = 0; round < 4; ++round) {
    tb.clients[static_cast<std::size_t>(round) % tb.clients.size()]->FetchObject(
        tb.vip(), 80, tb.catalog->objects()[0].url, alice,
        [](const workload::FetchResult&) {});
    tb.sim.Run();
  }
  std::printf("4 requests with cookie sid=alice (one backend should own all 4):\n");
  shares();
  tb.PrintMetricsSnapshot();
  return 0;
}
