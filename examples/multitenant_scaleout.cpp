// Multi-tenant demo: Yoda-as-a-service economics (§8).
//
// Generates the 24-hour multi-tenant trace, runs the VIP-assignment engine
// round by round, and contrasts three deployments:
//   standalone  — each tenant provisions its own HAProxy fleet for its peak;
//   all-to-all  — one shared fleet, every VIP on every instance;
//   yoda-limit  — the paper's many-to-many assignment with congestion-free
//                 updates (Eq 4-7).
//
// Build & run:  ./build/examples/multitenant_scaleout

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/assign/greedy_solver.h"
#include "src/assign/update_planner.h"
#include "src/assign/validator.h"
#include "src/obs/registry.h"
#include "src/sim/random.h"
#include "src/workload/trace.h"

int main() {
  sim::Rng rng(7);
  workload::TraceConfig tcfg;
  tcfg.vips = 60;  // Smaller than the bench for a quick demo.
  workload::Trace trace = workload::GenerateTrace(rng, tcfg);
  workload::BinProblemConfig bcfg;

  std::printf("trace: %zu tenants (VIPs), %zu bins of 10 min, %d rules total\n\n",
              trace.vips.size(), trace.bins(), trace.TotalRules());

  // Standalone cost: every tenant holds its 24 h peak, all day.
  double standalone_instances = 0;
  for (const auto& vip : trace.vips) {
    standalone_instances += std::ceil(vip.MaxRate() / bcfg.traffic_capacity);
  }

  obs::Registry metrics;
  obs::Counter& rounds_ctr = metrics.GetCounter("assign.rounds");
  sim::Histogram& instances_hist = metrics.GetHistogram("assign.instances_used");
  sim::Histogram& migrated_hist =
      metrics.GetHistogram("assign.migrated_pct", obs::Labels{{"mode", "limit"}});

  assign::GreedySolver solver;
  assign::Assignment prev;
  bool have_prev = false;
  double yoda_instance_hours = 0;
  double a2a_instance_hours = 0;
  int rounds = 0;
  double migrated_total = 0;

  for (std::size_t bin = 0; bin < trace.bins(); bin += 6) {  // Hourly rounds.
    assign::Problem p = workload::ProblemForBin(trace, bin, bcfg);
    assign::SolveOptions opts;
    opts.previous = have_prev ? &prev : nullptr;
    opts.limit_transient = have_prev;
    opts.limit_migration = have_prev;
    auto result = solver.Solve(p, opts);
    if (!result.feasible) {
      std::printf("bin %zu infeasible: %s\n", bin, result.note.c_str());
      continue;
    }
    auto check = assign::Validate(p, result.assignment);
    if (!check.ok) {
      std::printf("bin %zu validation failure: %s\n", bin, check.violations[0].c_str());
      return 1;
    }
    if (have_prev) {
      const double migrated = assign::MigratedTrafficFraction(p, prev, result.assignment);
      migrated_total += migrated;
      migrated_hist.Add(100.0 * migrated);
    }
    rounds_ctr.Inc();
    instances_hist.Add(result.instances_used);
    yoda_instance_hours += result.instances_used;
    a2a_instance_hours += assign::MinInstancesByTraffic(p);
    prev = std::move(result.assignment);
    have_prev = true;
    ++rounds;
    if (bin % 24 == 0) {
      std::printf("hour %2zu: demand %6.1f capacity-units -> %3d yoda instances "
                  "(all-to-all floor %3d)\n",
                  bin / 6, p.TotalTraffic(), result.instances_used,
                  assign::MinInstancesByTraffic(p));
    }
  }

  const double yoda_avg = yoda_instance_hours / rounds;
  std::printf("\n%-46s %10.1f instances (held all day)\n",
              "standalone per-tenant provisioning (peak):", standalone_instances);
  std::printf("%-46s %10.1f instances (average over rounds)\n",
              "shared all-to-all floor:", a2a_instance_hours / rounds);
  std::printf("%-46s %10.1f instances (average over rounds)\n",
              "yoda many-to-many (limit):", yoda_avg);
  std::printf("%-46s %10.2fx\n", "cost reduction vs standalone:",
              standalone_instances / yoda_avg);
  std::printf("%-46s %10.1f%% per round (delta=10%% budget)\n",
              "average flow migration:", 100.0 * migrated_total / std::max(1, rounds - 1));
  std::printf("\n--- metrics registry snapshot ---\n%s", metrics.TextTable().c_str());
  return 0;
}
