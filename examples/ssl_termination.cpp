// SSL termination demo (§5.2): an HTTPS service behind the Yoda VIP.
//
// The Yoda instances hold the certificate, answer the (deterministic)
// handshake, decrypt the request to pick a backend, hand the session to the
// backend with a sealed ticket, and then tunnel ciphertext at L3. The demo
// kills the terminating instance right after it sends the certificate —
// the survivor replays the identical flight and the download still works.
//
// Build & run:  ./build/examples/ssl_termination

#include <cstdio>

#include "src/workload/testbed.h"

int main() {
  constexpr std::uint64_t kServiceKey = 0x7ea1;
  const char kCert[] = "-----BEGIN CERT shop.example.com-----";

  workload::TestbedConfig cfg;
  cfg.yoda_instances = 3;
  cfg.backends = 4;
  cfg.server_template.tls_service_key = kServiceKey;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();
  for (auto& inst : tb.instances) {
    inst->InstallVipTls(tb.vip(), kCert, kServiceKey);
  }

  // Show that nothing readable crosses the wire after the handshake.
  long encrypted_payloads = 0;
  long plaintext_sightings = 0;
  tb.network.set_tap([&](sim::Time, const net::Packet& p) {
    if (p.payload.empty() || p.encap_dst != 0) {
      return;
    }
    if (p.payload.find("HTTP/1.") != std::string::npos) {
      ++plaintext_sightings;
    } else {
      ++encrypted_payloads;
    }
  });

  const workload::WebObject* obj = nullptr;
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > 100'000) {
      obj = &o;
      break;
    }
  }
  workload::FetchOptions opts;
  opts.use_tls = true;
  workload::FetchResult result;
  bool done = false;
  std::printf("HTTPS GET https://shop.example.com%s (%zu bytes) via VIP %s\n\n", obj->url.c_str(),
              obj->size, net::IpToString(tb.vip()).c_str());
  tb.clients[0]->FetchObject(tb.vip(), 80, obj->url, opts,
                             [&](const workload::FetchResult& r) {
                               result = r;
                               done = true;
                             });

  // Kill the terminating instance just after the certificate goes out.
  tb.sim.RunUntil(sim::Msec(101));
  for (std::size_t i = 0; i < tb.instances.size(); ++i) {
    if (tb.instances[i]->active_flows() > 0) {
      std::printf("t=%.0f ms: certificate in flight — CRASHING instance %s\n",
                  sim::ToMillis(tb.sim.now()),
                  net::IpToString(tb.instances[i]->ip()).c_str());
      tb.FailInstance(static_cast<int>(i));
      break;
    }
  }
  tb.sim.Run();

  std::printf("\nresult: ok=%d bytes=%zu latency=%.0f ms retries=%d\n", result.ok, result.bytes,
              sim::ToMillis(result.latency), result.retries_used);
  std::printf("certificate presented: %s\n", result.tls_certificate.c_str());
  std::printf("wire audit: %ld encrypted data packets, %ld plaintext HTTP sightings\n",
              encrypted_payloads, plaintext_sightings);
  tb.PrintMetricsSnapshot();
  return result.ok && plaintext_sightings == 0 ? 0 : 1;
}
