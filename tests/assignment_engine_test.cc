// AssignmentEngine tests: index-space rounds with previous-round alignment,
// fleet rounds against the desired ControlState (bootstrap all-to-all
// removal, solver continuity), and the failure-headroom repair path.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/core/assignment_engine.h"
#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

TEST(AssignmentEngineRound, BootstrapRoundIsAddsOnlyAndBecomesBaseline) {
  AssignmentEngine engine;
  assign::Problem p;
  p.max_instances = 4;
  p.traffic_capacity = 1.0;
  p.vips.push_back({1, 0.4, 10, 2, 0});
  p.vips.push_back({2, 0.4, 10, 2, 0});

  const auto r1 = engine.PlanRound(p, true, true);
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(r1.plan.instances_before, 0);
  for (const assign::VipDelta& d : r1.plan.deltas) {
    EXPECT_TRUE(d.removed_instances.empty());
  }
  EXPECT_TRUE(assign::IsMakeBeforeBreak(r1.steps));

  // Same problem again: continuity holds, nothing migrates.
  const auto r2 = engine.PlanRound(p, true, true);
  ASSERT_TRUE(r2.feasible);
  EXPECT_TRUE(r2.plan.deltas.empty());
  EXPECT_EQ(r2.plan.migrated_fraction, 0.0);
}

class AssignmentEngineFleetTest : public ::testing::Test {
 protected:
  void Build(int instances = 4) {
    TestbedConfig cfg;
    cfg.yoda_instances = instances;
    cfg.build_catalog = false;
    tb = std::make_unique<Testbed>(cfg);
    state = std::make_unique<ControlState>(&tb->sim);
  }

  std::vector<YodaInstance*> Active() const {
    std::vector<YodaInstance*> out;
    for (auto& i : tb->instances) {
      out.push_back(i.get());
    }
    return out;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ControlState> state;
  AssignmentEngine engine;
};

TEST_F(AssignmentEngineFleetTest, FirstFleetRoundRemovesBootstrapMembers) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  // Desired state is all-to-all (bootstrap): the executed plan must remove
  // the bootstrap members the solver does not keep, behind a barrier.
  std::map<net::IpAddr, VipDemand> demand;
  demand[vip] = {0.4, 2, 0};
  const auto fr = engine.PlanFleetRound(*state, Active(), demand, {});
  ASSERT_TRUE(fr.round.feasible);
  ASSERT_EQ(fr.pools.size(), 1u);
  EXPECT_EQ(fr.pools.at(vip).size(), 2u);

  bool any_remove = false;
  bool any_add = false;
  for (const assign::PlanStep& s : fr.round.steps) {
    any_remove = any_remove || s.kind == assign::PlanStepKind::kRemovePoolMember;
    any_add = any_add || s.kind == assign::PlanStepKind::kAddPoolMember;
  }
  EXPECT_TRUE(any_remove) << "bootstrap all-to-all members were not removed";
  // Shrinking out of all-to-all is pure-remove: the kept members already
  // serve, so no adds and no convergence barrier.
  EXPECT_FALSE(any_add);
  EXPECT_TRUE(assign::IsMakeBeforeBreak(fr.round.steps));
  // The executed plan honestly reports the bootstrap shrink as migration
  // (half the fleet stops serving) — and the fact that this EXCEEDS the
  // default 10% migration limit proves the solver was not migration-
  // constrained by the bootstrap pool (it would have been infeasible).
  EXPECT_GT(fr.round.plan.migrated_fraction, AssignmentRoundConfig{}.migration_limit);
}

TEST_F(AssignmentEngineFleetTest, SecondRoundReconcilesAgainstDesiredPools) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  std::map<net::IpAddr, VipDemand> demand;
  demand[vip] = {0.4, 2, 0};
  const auto r1 = engine.PlanFleetRound(*state, Active(), demand, {});
  ASSERT_TRUE(r1.round.feasible);
  state->SetAssignments(r1.pools);

  // Unchanged demand: the next round is a no-op plan.
  const auto r2 = engine.PlanFleetRound(*state, Active(), demand, {});
  ASSERT_TRUE(r2.round.feasible);
  EXPECT_TRUE(r2.round.plan.deltas.empty());
  EXPECT_TRUE(r2.round.steps.empty());
}

TEST_F(AssignmentEngineFleetTest, UnderHeadroomAndRepairAfterScrub) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  std::map<net::IpAddr, VipDemand> demand;
  demand[vip] = {0.4, 2, 0};
  const auto r1 = engine.PlanFleetRound(*state, Active(), demand, {});
  ASSERT_TRUE(r1.round.feasible);
  state->SetAssignments(r1.pools);
  EXPECT_TRUE(engine.UnderHeadroom(*state).empty());

  // An assigned instance dies: n_v = 2, f_v = 0 -> below headroom.
  const net::IpAddr dead = r1.pools.at(vip)[0];
  state->ScrubInstance(dead);
  EXPECT_EQ(engine.UnderHeadroom(*state), (std::vector<net::IpAddr>{vip}));

  std::vector<YodaInstance*> survivors;
  for (auto& i : tb->instances) {
    if (i->ip() != dead) {
      survivors.push_back(i.get());
    }
  }
  const auto repair = engine.PlanRepair(*state, survivors);
  ASSERT_TRUE(repair.round.feasible);
  ASSERT_EQ(repair.pools.size(), 1u);
  EXPECT_EQ(repair.pools.at(vip).size(), 2u);
  EXPECT_EQ(std::count(repair.pools.at(vip).begin(), repair.pools.at(vip).end(), dead), 0);
  // Adds-only: a repair never shrinks a pool and never needs a barrier.
  for (const assign::PlanStep& s : repair.round.steps) {
    EXPECT_NE(s.kind, assign::PlanStepKind::kRemovePoolMember);
    EXPECT_NE(s.kind, assign::PlanStepKind::kAwaitConvergence);
    EXPECT_NE(s.kind, assign::PlanStepKind::kScrubRules);
  }
}

TEST_F(AssignmentEngineFleetTest, DemandFromCountersFloorsIdleVips) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  const auto demand =
      AssignmentEngine::DemandFromCounters(*state, Active(), /*interval_seconds=*/10.0, {});
  ASSERT_TRUE(demand.contains(vip));
  // No traffic flowed: demand floors at 1% of capacity with one replica.
  EXPECT_DOUBLE_EQ(demand.at(vip).traffic, 0.01);
  EXPECT_EQ(demand.at(vip).replicas, 1);
  EXPECT_EQ(demand.at(vip).failures, 0);
}

}  // namespace
}  // namespace yoda
