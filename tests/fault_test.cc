// Unit tests for the fault-injection plane: overlay verdicts, partitions,
// gray failures, crash/restart routing, timed scripts and the seeded-RNG
// determinism of randomized chaos schedules.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/fault/chaos.h"
#include "src/fault/fault_plane.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace fault {
namespace {

class Sink : public net::Node {
 public:
  void HandlePacket(const net::Packet& p) override { received.push_back(p); }
  void OnColdRestart() override {
    received.clear();
    ++cold_restarts;
  }
  std::vector<net::Packet> received;
  int cold_restarts = 0;
};

class FaultPlaneTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  net::Network network{&simulator, 1};
  FaultPlane plane{&simulator, &network, 99};
  Sink a, b, c;
  const net::IpAddr ip_a = net::MakeIp(10, 0, 0, 1);
  const net::IpAddr ip_b = net::MakeIp(10, 0, 0, 2);
  const net::IpAddr ip_c = net::MakeIp(10, 0, 0, 3);

  void SetUp() override {
    network.Attach(ip_a, &a);
    network.Attach(ip_b, &b);
    network.Attach(ip_c, &c);
    network.SetLatency(net::Region::kDatacenter, net::Region::kDatacenter, sim::Usec(100), 0);
  }

  net::Packet Make(net::IpAddr src, net::IpAddr dst, std::uint8_t flags = net::kAck) {
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.flags = flags;
    return p;
  }

  void SendAndRun(net::IpAddr src, net::IpAddr dst, int n = 1) {
    for (int i = 0; i < n; ++i) {
      network.Send(Make(src, dst));
    }
    simulator.Run();
  }
};

TEST_F(FaultPlaneTest, NoOverlaysPassesEverything) {
  SendAndRun(ip_a, ip_b, 10);
  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_EQ(plane.stats().dropped, 0u);
  EXPECT_EQ(network.stats().dropped_fault, 0u);
}

TEST_F(FaultPlaneTest, LinkLossAtOneDropsAllAndClearRestores) {
  plane.SetLinkLoss(ip_a, ip_b, 1.0);
  SendAndRun(ip_a, ip_b, 5);
  SendAndRun(ip_b, ip_a, 5);  // Symmetric: both directions die.
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(network.stats().dropped_fault, 10u);
  SendAndRun(ip_a, ip_c, 1);  // Other links unaffected.
  EXPECT_EQ(c.received.size(), 1u);

  plane.SetLinkLoss(ip_a, ip_b, 0);
  SendAndRun(ip_a, ip_b, 5);
  EXPECT_EQ(b.received.size(), 5u);
}

TEST_F(FaultPlaneTest, LinkLossIsApproximatelyBernoulli) {
  plane.SetLinkLoss(ip_a, ip_b, 0.5);
  SendAndRun(ip_a, ip_b, 2000);
  EXPECT_NEAR(static_cast<double>(b.received.size()), 1000, 120);
}

TEST_F(FaultPlaneTest, LinkDelaySpikesDeliveryTime) {
  plane.SetLinkDelay(ip_a, ip_b, sim::Msec(20));
  sim::Time at = -1;
  network.set_tap([&at](sim::Time t, const net::Packet&) { at = t; });
  SendAndRun(ip_a, ip_b);
  EXPECT_EQ(at, sim::Msec(20) + sim::Usec(100));
  EXPECT_EQ(plane.stats().delayed, 1u);
}

TEST_F(FaultPlaneTest, PartitionCutsBothDirectionsAndHealRestores) {
  plane.Partition(ip_a, ip_b);
  SendAndRun(ip_a, ip_b, 3);
  SendAndRun(ip_b, ip_a, 3);
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(plane.stats().dropped, 6u);
  // The partitioned pair still reaches third parties.
  SendAndRun(ip_a, ip_c, 1);
  SendAndRun(ip_b, ip_c, 1);
  EXPECT_EQ(c.received.size(), 2u);

  plane.Heal(ip_a, ip_b);
  SendAndRun(ip_a, ip_b, 3);
  EXPECT_EQ(b.received.size(), 3u);
}

TEST_F(FaultPlaneTest, PartitionBlindsProbesButGraySynFilterDoesNot) {
  EXPECT_TRUE(network.ProbePath(ip_a, ip_b));
  plane.Partition(ip_a, ip_b);
  EXPECT_FALSE(network.ProbePath(ip_a, ip_b));
  plane.Heal(ip_a, ip_b);

  plane.SetGray("syn-filter",
                [](const net::Packet& p) { return p.syn() && !p.ack_flag(); }, 1.0);
  // Probes are kAck-shaped: the gray node still looks healthy to the monitor.
  EXPECT_TRUE(network.ProbePath(ip_a, ip_b));
  // ...while real connection attempts die.
  network.Send(Make(ip_a, ip_b, net::kSyn));
  network.Send(Make(ip_a, ip_b, net::kAck));
  simulator.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_FALSE(b.received[0].syn());
}

TEST_F(FaultPlaneTest, NodeLossAppliesToAndFromTheNode) {
  plane.SetNodeLoss(ip_b, 1.0);
  SendAndRun(ip_a, ip_b, 2);  // Toward the node.
  SendAndRun(ip_b, ip_c, 2);  // From the node.
  SendAndRun(ip_a, ip_c, 2);  // Unrelated traffic flows.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 2u);
}

TEST_F(FaultPlaneTest, NodeDelayChargedOncePerPacket) {
  plane.SetNodeDelay(ip_b, sim::Msec(3));
  sim::Time at = -1;
  network.set_tap([&at](sim::Time t, const net::Packet&) { at = t; });
  SendAndRun(ip_a, ip_b);
  EXPECT_EQ(at, sim::Msec(3) + sim::Usec(100));
}

TEST_F(FaultPlaneTest, GrayRuleWithProbabilityOneSkipsRngDraw) {
  plane.SetGray("all", [](const net::Packet&) { return true; }, 1.0);
  SendAndRun(ip_a, ip_b, 50);
  EXPECT_TRUE(b.received.empty());
  // p >= 1 fires without consuming a draw: the plane's RNG is still at its
  // seed position, in lockstep with a fresh same-seed plane.
  sim::Simulator sim2;
  net::Network net2(&sim2, 1);
  FaultPlane fresh(&sim2, &net2, 99);
  EXPECT_EQ(plane.rng().UniformInt(0, 1 << 30), fresh.rng().UniformInt(0, 1 << 30));
}

TEST_F(FaultPlaneTest, ClearGrayRemovesOnlyThatRule) {
  plane.SetGray("syns", [](const net::Packet& p) { return p.syn(); }, 1.0);
  plane.SetGray("to-b", [this](const net::Packet& p) { return p.dst == ip_b; }, 1.0);
  plane.ClearGray("syns");
  network.Send(Make(ip_a, ip_b, net::kSyn));
  network.Send(Make(ip_a, ip_c, net::kSyn));
  simulator.Run();
  EXPECT_TRUE(b.received.empty());        // "to-b" still live.
  EXPECT_EQ(c.received.size(), 1u);       // "syns" gone.
}

TEST_F(FaultPlaneTest, CrashDefaultsToNodeDownAndRestartModesDiffer) {
  SendAndRun(ip_a, ip_b);
  ASSERT_EQ(b.received.size(), 1u);

  plane.CrashNode(ip_b);
  EXPECT_TRUE(network.IsDown(ip_b));
  SendAndRun(ip_a, ip_b);
  EXPECT_EQ(b.received.size(), 1u);  // Blackholed.

  plane.RestartNode(ip_b, FaultPlane::RestartMode::kWarm);
  EXPECT_FALSE(network.IsDown(ip_b));
  EXPECT_EQ(b.received.size(), 1u);  // Warm: state intact.
  EXPECT_EQ(b.cold_restarts, 0);

  plane.CrashNode(ip_b);
  plane.RestartNode(ip_b, FaultPlane::RestartMode::kCold);
  EXPECT_FALSE(network.IsDown(ip_b));
  EXPECT_TRUE(b.received.empty());  // Cold: volatile state gone.
  EXPECT_EQ(b.cold_restarts, 1);
}

TEST_F(FaultPlaneTest, HandlersOverrideDefaultCrashRouting) {
  net::IpAddr crashed = 0;
  net::IpAddr restarted = 0;
  bool cold = false;
  plane.set_crash_handler([&crashed](net::IpAddr ip) { crashed = ip; });
  plane.set_restart_handler([&](net::IpAddr ip, FaultPlane::RestartMode mode) {
    restarted = ip;
    cold = mode == FaultPlane::RestartMode::kCold;
  });
  plane.CrashNode(ip_c);
  plane.RestartNode(ip_c, FaultPlane::RestartMode::kCold);
  EXPECT_EQ(crashed, ip_c);
  EXPECT_EQ(restarted, ip_c);
  EXPECT_TRUE(cold);
  EXPECT_FALSE(network.IsDown(ip_c));  // Handler replaced the default.
}

TEST_F(FaultPlaneTest, ScheduleFiresAtAbsoluteTimeAsDaemon) {
  plane.Schedule(sim::Msec(10), [this](FaultPlane& fp) { fp.Partition(ip_a, ip_b); });
  plane.Schedule(sim::Msec(20), [this](FaultPlane& fp) { fp.Heal(ip_a, ip_b); });
  // Daemon events alone must not keep the simulation alive.
  simulator.Run();
  EXPECT_EQ(simulator.now(), 0);

  // With real traffic bracketing the window, the script fires on time.
  simulator.At(sim::Msec(15), [this]() { network.Send(Make(ip_a, ip_b)); });
  simulator.At(sim::Msec(25), [this]() { network.Send(Make(ip_a, ip_b)); });
  simulator.Run();
  EXPECT_EQ(b.received.size(), 1u);  // Mid-partition send died, later one passed.
  EXPECT_EQ(plane.stats().events_applied, 2u);
}

TEST_F(FaultPlaneTest, FaultEventsMirroredIntoRecorder) {
  obs::FlightRecorder recorder;
  FaultPlane recorded(&simulator, &network, 7, FaultPlaneConfig{&recorder});
  recorded.SetLinkLoss(ip_a, ip_b, 0.5);
  recorded.Partition(ip_a, ip_c);
  recorded.Heal(ip_a, ip_c);
  recorded.SetLinkLoss(ip_a, ip_b, 0);
  const auto& events = recorder.system_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, obs::EventType::kFaultInjected);
  EXPECT_EQ(events[0].detail, static_cast<std::uint64_t>(FaultKind::kLinkLoss));
  EXPECT_EQ(events[1].type, obs::EventType::kFaultInjected);
  EXPECT_EQ(events[1].detail, static_cast<std::uint64_t>(FaultKind::kPartition));
  EXPECT_EQ(events[2].type, obs::EventType::kFaultCleared);
  EXPECT_EQ(events[3].type, obs::EventType::kFaultCleared);
}

TEST(FaultKindNames, AllNamed) {
  EXPECT_STREQ(FaultKindName(FaultKind::kLinkLoss), "LinkLoss");
  EXPECT_STREQ(FaultKindName(FaultKind::kGray), "Gray");
  EXPECT_STREQ(FaultKindName(FaultKind::kKvSlow), "KvSlow");
}

// ---------------------------------------------------------------------------
// Randomized chaos schedules.
// ---------------------------------------------------------------------------

ChaosOptions SmallOptions() {
  ChaosOptions opts;
  opts.episodes = 12;
  opts.instances = {net::MakeIp(10, 1, 0, 1), net::MakeIp(10, 1, 0, 2)};
  opts.kv_nodes = {net::MakeIp(10, 2, 0, 1)};
  opts.links = {{net::MakeIp(10, 1, 0, 1), net::MakeIp(10, 2, 0, 1)}};
  return opts;
}

TEST(ChaosSchedule, SameSeedSameTimeline) {
  auto draw = [](std::uint64_t seed) {
    sim::Simulator simulator;
    net::Network network(&simulator, 1);
    FaultPlane plane(&simulator, &network, 1);
    sim::Rng rng(seed);
    std::vector<std::string> described;
    for (const ChaosEpisode& ep : RandomSchedule(plane, rng, SmallOptions())) {
      described.push_back(ep.Describe());
    }
    return described;
  };
  EXPECT_EQ(draw(1234), draw(1234));
  EXPECT_NE(draw(1234), draw(4321));
}

TEST(ChaosSchedule, EpisodesStayInsideWindowAndDurations) {
  sim::Simulator simulator;
  net::Network network(&simulator, 1);
  FaultPlane plane(&simulator, &network, 1);
  sim::Rng rng(9);
  ChaosOptions opts = SmallOptions();
  const auto episodes = RandomSchedule(plane, rng, opts);
  ASSERT_EQ(episodes.size(), static_cast<std::size_t>(opts.episodes));
  for (const ChaosEpisode& ep : episodes) {
    EXPECT_GE(ep.at, opts.window_start);
    // Crash episodes may be shifted right to avoid overlapping an earlier
    // crash of the same target; everything else stays inside the window.
    if (ep.kind != FaultKind::kCrash) {
      EXPECT_LE(ep.at, opts.window_end);
    }
    EXPECT_GE(ep.until - ep.at, opts.min_duration);
    EXPECT_LE(ep.until - ep.at, opts.max_duration);
  }
}

TEST(ChaosSchedule, CrashEpisodesNeverOverlapPerTarget) {
  sim::Simulator simulator;
  net::Network network(&simulator, 1);
  FaultPlane plane(&simulator, &network, 1);
  ChaosOptions opts = SmallOptions();
  opts.episodes = 40;  // Plenty of crash draws on two targets.
  sim::Rng rng(77);
  std::map<net::IpAddr, sim::Time> last_until;
  for (const ChaosEpisode& ep : RandomSchedule(plane, rng, opts)) {
    if (ep.kind != FaultKind::kCrash) {
      continue;
    }
    auto it = last_until.find(ep.target);
    if (it != last_until.end()) {
      EXPECT_GT(ep.at, it->second) << ep.Describe();
    }
    last_until[ep.target] = ep.until;
  }
}

TEST(ChaosSchedule, EmptyCandidateListsYieldNoEpisodes) {
  sim::Simulator simulator;
  net::Network network(&simulator, 1);
  FaultPlane plane(&simulator, &network, 1);
  sim::Rng rng(3);
  EXPECT_TRUE(RandomSchedule(plane, rng, ChaosOptions{}).empty());
}

// ---------------------------------------------------------------------------
// Soak invariant checker (on synthetic traces).
// ---------------------------------------------------------------------------

obs::FlowId FlowN(std::uint16_t n) {
  return obs::FlowId{net::MakeIp(10, 200, 0, 1), 80, net::MakeIp(10, 9, 0, 1), n};
}

TEST(SoakInvariants, CleanTraceHasNoViolations) {
  obs::FlightRecorder rec;
  const obs::FlowId f = FlowN(1);
  rec.Record(f, sim::Msec(1), obs::EventType::kClientSyn, 1);
  rec.Record(f, sim::Msec(2), obs::EventType::kBackendPinned, 1, 42);
  rec.Record(f, sim::Msec(3), obs::EventType::kCleanup, 1);
  const SoakReport report = CheckSoakInvariants(rec, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.flows_checked, 1u);
  EXPECT_EQ(report.terminated, 1u);
}

TEST(SoakInvariants, FlagsUnterminatedFlow) {
  obs::FlightRecorder rec;
  rec.Record(FlowN(1), sim::Msec(1), obs::EventType::kClientSyn, 1);
  const SoakReport report = CheckSoakInvariants(rec, {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("never terminated"), std::string::npos);
}

TEST(SoakInvariants, CrashExemptsUnterminatedFlow) {
  obs::FlightRecorder rec;
  const std::uint32_t inst = net::MakeIp(10, 1, 0, 2);
  rec.Record(FlowN(1), sim::Msec(1), obs::EventType::kClientSyn, inst);
  SoakExpectations expect;
  expect.crashed.insert(inst);
  const SoakReport report = CheckSoakInvariants(rec, expect);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.exempted, 1u);
}

TEST(SoakInvariants, FlagsSilentPinChange) {
  obs::FlightRecorder rec;
  const obs::FlowId f = FlowN(1);
  rec.Record(f, sim::Msec(1), obs::EventType::kBackendPinned, 1, 42);
  rec.Record(f, sim::Msec(2), obs::EventType::kBackendPinned, 1, 43);  // No ReSwitch!
  rec.Record(f, sim::Msec(3), obs::EventType::kCleanup, 1);
  const SoakReport report = CheckSoakInvariants(rec, {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("pin changed"), std::string::npos);
}

TEST(SoakInvariants, PinChangeAfterReSwitchIsLegal) {
  obs::FlightRecorder rec;
  const obs::FlowId f = FlowN(1);
  rec.Record(f, sim::Msec(1), obs::EventType::kBackendPinned, 1, 42);
  rec.Record(f, sim::Msec(2), obs::EventType::kReSwitch, 1, 43);
  rec.Record(f, sim::Msec(3), obs::EventType::kBackendPinned, 1, 43);
  rec.Record(f, sim::Msec(4), obs::EventType::kCleanup, 1);
  EXPECT_TRUE(CheckSoakInvariants(rec, {}).ok());
}

}  // namespace
}  // namespace fault
