// StoreSession tests: the ACK-point writes are counted and timed into the
// stage histogram, write-behind refreshes coalesce instead of stacking
// overlapping writes, and teardown drops a queued refresh so it can never
// resurrect a deleted key.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/core/store_session.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"

namespace yoda {
namespace {

class StoreSessionTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  std::unique_ptr<kv::ReplicatingClient> client;
  std::unique_ptr<TcpStore> store;
  sim::Histogram store_wait_ms;
  std::unique_ptr<StoreSession> session;

  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<kv::KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    kv::ReplicatingClientConfig cfg;
    cfg.replicas = 2;
    client = std::make_unique<kv::ReplicatingClient>(&simulator, ptrs, cfg);
    store = std::make_unique<TcpStore>(client.get());
    session = std::make_unique<StoreSession>(store.get(), &simulator, &store_wait_ms);
  }

  FlowState Tunneling() {
    FlowState s;
    s.stage = FlowStage::kTunneling;
    s.client_ip = net::MakeIp(9, 9, 9, 9);
    s.client_port = 40'000;
    s.vip = net::MakeIp(10, 200, 0, 1);
    s.vip_port = 80;
    s.client_isn = 100;
    s.lb_isn = 200;
    s.backend_ip = net::MakeIp(10, 3, 0, 2);
    s.backend_port = 80;
    s.server_isn = 300;
    s.seq_delta_s2c = s.lb_isn - s.server_isn;
    return s;
  }

  std::optional<FlowState> LookupNow(const FlowState& s) {
    std::optional<FlowState> got;
    session->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                            [&got](std::optional<FlowState> v) { got = std::move(v); });
    simulator.Run();
    return got;
  }
};

TEST_F(StoreSessionTest, AckPointWritesAreCountedAndTimed) {
  FlowState a = Tunneling();
  a.stage = FlowStage::kConnection;
  bool a_done = false;
  session->WriteSynState(a, [&a_done](bool ok) { a_done = ok; });
  simulator.Run();
  ASSERT_TRUE(a_done);
  EXPECT_EQ(session->stats().ack_point_writes, 1u);
  EXPECT_EQ(store_wait_ms.count(), 1u);

  FlowState b = Tunneling();
  bool b_done = false;
  session->WriteEstablishedState(b, [&b_done](bool ok) { b_done = ok; });
  simulator.Run();
  ASSERT_TRUE(b_done);
  EXPECT_EQ(session->stats().ack_point_writes, 2u);
  EXPECT_EQ(store_wait_ms.count(), 2u);
  // The blocking wait crosses the simulated kv round trip, so it is > 0 and
  // lands in the histogram in milliseconds.
  EXPECT_GT(store_wait_ms.Min(), 0.0);

  std::optional<FlowState> got = LookupNow(b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, b);
}

TEST_F(StoreSessionTest, RefreshesCoalesceWhileOneIsInFlight) {
  FlowState v1 = Tunneling();
  session->Refresh(v1);  // Issues immediately.
  FlowState v2 = Tunneling();
  v2.backend_ip = net::MakeIp(10, 3, 0, 3);
  session->Refresh(v2);  // Queues behind the in-flight write.
  FlowState v3 = Tunneling();
  v3.backend_ip = net::MakeIp(10, 3, 0, 4);
  session->Refresh(v3);  // Replaces the queued v2 — never hits the wire.

  EXPECT_EQ(session->stats().refreshes, 3u);
  EXPECT_EQ(session->stats().refreshes_coalesced, 2u);
  EXPECT_EQ(session->pending_refreshes(), 1u);

  simulator.Run();
  EXPECT_EQ(session->pending_refreshes(), 0u);
  // The store holds the newest state: v1 landed, then queued v3 (not v2).
  std::optional<FlowState> got = LookupNow(v1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->backend_ip, v3.backend_ip);
  // Exactly two tunneling writes went out for the three refreshes.
  EXPECT_EQ(store->stats().tunneling_writes, 2u);

  // Refreshes never gate protocol progress, so they are not ACK-point writes.
  EXPECT_EQ(session->stats().ack_point_writes, 0u);
  EXPECT_EQ(store_wait_ms.count(), 0u);
}

TEST_F(StoreSessionTest, RemoveDropsQueuedRefresh) {
  FlowState v1 = Tunneling();
  session->Refresh(v1);  // In flight.
  FlowState v2 = Tunneling();
  v2.backend_ip = net::MakeIp(10, 3, 0, 3);
  session->Refresh(v2);  // Queued.
  session->Remove(v1);   // Must cancel the queued v2 before deleting.
  EXPECT_EQ(session->stats().removes, 1u);

  simulator.Run();
  // The queued v2 never reached the store: only v1's in-flight write issued.
  EXPECT_EQ(store->stats().tunneling_writes, 1u);
  // And the deleted key stays deleted — nothing resurrected it.
  std::optional<FlowState> got = LookupNow(v1);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(session->pending_refreshes(), 0u);
}

TEST_F(StoreSessionTest, SequentialRefreshesDoNotCoalesce) {
  FlowState v1 = Tunneling();
  session->Refresh(v1);
  simulator.Run();
  FlowState v2 = Tunneling();
  v2.backend_ip = net::MakeIp(10, 3, 0, 3);
  session->Refresh(v2);
  simulator.Run();
  EXPECT_EQ(session->stats().refreshes, 2u);
  EXPECT_EQ(session->stats().refreshes_coalesced, 0u);
  std::optional<FlowState> got = LookupNow(v1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->backend_ip, v2.backend_ip);
}

TEST_F(StoreSessionTest, ServerSideLookupResolvesTunnelingState) {
  FlowState s = Tunneling();
  bool done = false;
  session->WriteEstablishedState(s, [&done](bool ok) { done = ok; });
  simulator.Run();
  ASSERT_TRUE(done);
  std::optional<FlowState> got;
  session->LookupByServer(s.backend_ip, s.backend_port, s.vip, s.client_port,
                          [&got](std::optional<FlowState> v) { got = std::move(v); });
  simulator.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, s);
}

}  // namespace
}  // namespace yoda
