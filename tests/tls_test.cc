// TLS-lite tests: record framing, handshake determinism, tickets, cipher —
// and end-to-end SSL termination through the Yoda service (§5.2), including
// the failure-during-certificate-transfer case the paper calls out.

#include <gtest/gtest.h>

#include "src/tls/tls.h"
#include "src/workload/testbed.h"

namespace tls {
namespace {

TEST(Record, EncodeDecodeRoundTrip) {
  Record r{RecordType::kApplicationData, "hello records"};
  RecordReader reader;
  reader.Feed(EncodeRecord(r));
  auto got = reader.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, RecordType::kApplicationData);
  EXPECT_EQ(got->payload, "hello records");
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(Record, ByteAtATimeFraming) {
  Record r{RecordType::kClientHello, std::string(100, 'x')};
  const std::string wire = EncodeRecord(r);
  RecordReader reader;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Feed(std::string_view(&wire[i], 1));
    EXPECT_FALSE(reader.Next().has_value());
  }
  reader.Feed(std::string_view(&wire.back(), 1));
  auto got = reader.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 100u);
}

TEST(Record, MultipleRecordsInOneFeed) {
  RecordReader reader;
  reader.Feed(EncodeRecord({RecordType::kClientHello, "a"}) +
              EncodeRecord({RecordType::kClientFinished, ""}) +
              EncodeRecord({RecordType::kApplicationData, "bb"}));
  EXPECT_EQ(reader.Next()->type, RecordType::kClientHello);
  EXPECT_EQ(reader.Next()->type, RecordType::kClientFinished);
  EXPECT_EQ(reader.Next()->payload, "bb");
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(Handshake, HelloAndCertificateRoundTrip) {
  ClientHello hello{0xdeadbeefcafef00dULL};
  auto parsed = ClientHello::Parse(hello.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->client_random, hello.client_random);

  ServerCertificate cert;
  cert.server_random = 42;
  cert.certificate = std::string(2'000, 'C');
  auto parsed_cert = ServerCertificate::Parse(cert.Serialize());
  ASSERT_TRUE(parsed_cert.has_value());
  EXPECT_EQ(parsed_cert->server_random, 42u);
  EXPECT_EQ(parsed_cert->certificate, cert.certificate);
  EXPECT_FALSE(ClientHello::Parse("short").has_value());
  EXPECT_FALSE(ServerCertificate::Parse("junk").has_value());
}

TEST(Handshake, DeterministicAcrossInstances) {
  // The property Yoda's takeover relies on: same cert + same hello => same
  // server random and same session key, on ANY instance.
  const std::string cert = "----CERT mysite.com----";
  const std::uint64_t client_random = 777;
  const std::uint64_t sr1 = DeriveServerRandom(cert, client_random);
  const std::uint64_t sr2 = DeriveServerRandom(cert, client_random);
  EXPECT_EQ(sr1, sr2);
  EXPECT_EQ(DeriveSessionKey(client_random, sr1), DeriveSessionKey(client_random, sr2));
  EXPECT_NE(DeriveServerRandom(cert, 778), sr1);
  EXPECT_NE(DeriveServerRandom("other cert", client_random), sr1);
}

TEST(Ticket, SealOpenRoundTrip) {
  const std::uint64_t service_key = 0x5e1ec7ed;
  auto opened = OpenTicket(SealTicket(0xabcdef, service_key), service_key);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, 0xabcdefULL);
}

TEST(Ticket, WrongServiceKeyRejected) {
  EXPECT_FALSE(OpenTicket(SealTicket(1, 100), 101).has_value());
  EXPECT_FALSE(OpenTicket("garbage", 100).has_value());
}

TEST(Cipher, SymmetricRoundTrip) {
  const std::string msg = "GET /secret HTTP/1.1\r\n\r\n";
  const std::string enc = Crypt(99, 0, msg);
  EXPECT_NE(enc, msg);
  EXPECT_EQ(Crypt(99, 0, enc), msg);
}

TEST(Cipher, OffsetsMatter) {
  const std::string msg = "aaaaaaaa";
  EXPECT_NE(Crypt(7, 0, msg), Crypt(7, 8, msg));
  EXPECT_NE(Crypt(7, 0, msg), Crypt(8, 0, msg));
}

TEST(Cipher, StreamChunkingEquivalentToWhole) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  CipherStream whole(5);
  const std::string enc_whole = whole.Process(msg);
  CipherStream chunked(5);
  std::string enc_chunks;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    enc_chunks += chunked.Process(std::string_view(msg).substr(i, 7));
  }
  EXPECT_EQ(enc_whole, enc_chunks);
}

// ---------------------------------------------------------------------------
// End-to-end SSL termination through Yoda.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kServiceKey = 0xfee1900d;
const char kCert[] = "-----BEGIN CERT mysite.com (2048-bit, sim)-----";

class TlsE2E : public ::testing::Test {
 protected:
  std::unique_ptr<workload::Testbed> tb;

  void Build(int instances = 4) {
    workload::TestbedConfig cfg;
    cfg.yoda_instances = instances;
    cfg.server_template.tls_service_key = kServiceKey;
    tb = std::make_unique<workload::Testbed>(cfg);
    tb->DefineDefaultVipAndStart();
    for (auto& inst : tb->instances) {
      inst->InstallVipTls(tb->vip(), kCert, kServiceKey);
    }
  }
};

TEST_F(TlsE2E, HttpsFetchRoundTrips) {
  Build();
  const workload::WebObject& obj = tb->catalog->objects()[0];
  workload::FetchOptions opts;
  opts.use_tls = true;
  workload::FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, obj.url, opts,
                              [&](const workload::FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, obj.size);
  EXPECT_EQ(result.tls_certificate, kCert);
}

TEST_F(TlsE2E, RequestIsEncryptedOnTheWire) {
  Build();
  bool saw_plaintext_request = false;
  bool saw_client_payload = false;
  tb->network.set_tap([&](sim::Time, const net::Packet& p) {
    if (p.src == tb->client_ip(0) && !p.payload.empty()) {
      saw_client_payload = true;
      if (p.payload.find("GET /") != std::string::npos) {
        saw_plaintext_request = true;
      }
    }
  });
  workload::FetchOptions opts;
  opts.use_tls = true;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, tb->catalog->objects()[0].url, opts,
                              [&](const workload::FetchResult& r) {
                                EXPECT_TRUE(r.ok);
                                done = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(saw_client_payload);
  EXPECT_FALSE(saw_plaintext_request);  // SSL means no cleartext HTTP.
}

TEST_F(TlsE2E, FailureDuringCertificateTransferResendsFlight) {
  // Paper §5.2: "On failure during certificate transfer, another YODA
  // instance resends the entire certificate (TCP buffer at the client will
  // remove duplicate packets)."
  Build();
  workload::FetchOptions opts;
  opts.use_tls = true;
  workload::FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, tb->catalog->objects()[0].url, opts,
                              [&](const workload::FetchResult& r) {
                                result = r;
                                done = true;
                              });
  // SYN ~33 ms, SYN-ACK ~67, hello ~100 arrives, cert flight goes out
  // ~100.5: kill the instance while the flight is in the air.
  tb->sim.RunUntil(sim::Msec(101));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "timed_out=" << result.timed_out;
  EXPECT_EQ(result.tls_certificate, kCert);
  EXPECT_EQ(result.retries_used, 0);  // Transparent: no browser retry.
}

TEST_F(TlsE2E, FailureDuringEncryptedTransferIsTransparent) {
  Build();
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);
  workload::FetchOptions opts;
  opts.use_tls = true;
  workload::FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, opts,
                              [&](const workload::FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(sim::Msec(200));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, big->size);
}

TEST_F(TlsE2E, PlaintextVipStillWorksAlongsideTlsVip) {
  Build();
  // vip(1) has no TLS config: plain HTTP continues to work.
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(0, tb->cfg.backends, "r-v1"));
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(1), 80, tb->catalog->objects()[0].url, {},
                              [&](const workload::FetchResult& r) {
                                EXPECT_TRUE(r.ok);
                                EXPECT_TRUE(r.tls_certificate.empty());
                                done = true;
                              });
  tb->sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(TlsE2E, ForgedTicketIsRejectedByBackend) {
  Build();
  // Reconfigure one instance with the wrong service key: its tickets are
  // garbage and the backend aborts the connection.
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 1;
  cfg.server_template.tls_service_key = kServiceKey;
  workload::Testbed tb2(cfg);
  tb2.DefineDefaultVipAndStart();
  tb2.instances[0]->InstallVipTls(tb2.vip(), kCert, kServiceKey + 1);  // Wrong key.
  workload::FetchOptions opts;
  opts.use_tls = true;
  opts.http_timeout = sim::Sec(5);
  bool done = false;
  workload::FetchResult result;
  tb2.clients[0]->FetchObject(tb2.vip(), 80, tb2.catalog->objects()[0].url, opts,
                              [&](const workload::FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb2.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace tls
