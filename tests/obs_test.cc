// Unit + integration tests for the observability layer: metrics registry,
// flow flight recorder, trace analyzer, and the end-to-end guarantee that a
// takeover leaves a coherent trace behind.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/analyzer.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/workload/testbed.h"

namespace obs {
namespace {

// --- Registry -------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableInstrument) {
  Registry reg;
  Counter& a = reg.GetCounter("x.count");
  a.Inc();
  Counter& b = reg.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, LabelsAreCanonicalizedBySortOrder) {
  Registry reg;
  Counter& a = reg.GetCounter("x", Labels{{"b", "2"}, {"a", "1"}});
  Counter& b = reg.GetCounter("x", Labels{{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  // Different label values are different instruments.
  Counter& c = reg.GetCounter("x", Labels{{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, CounterGaugeHistogramCoexistUnderDifferentNames) {
  Registry reg;
  reg.GetCounter("c").Add(5);
  reg.GetGauge("g").Set(2.5);
  reg.GetHistogram("h").Add(1.0);
  EXPECT_EQ(reg.size(), 3u);
  int rows = 0;
  reg.ForEach([&](const Registry::Row& row) {
    ++rows;
    EXPECT_NE(row.name, nullptr);
    EXPECT_EQ((row.counter != nullptr) + (row.gauge != nullptr) + (row.histogram != nullptr),
              1);
  });
  EXPECT_EQ(rows, 3);
}

TEST(Registry, GaugeProviderIsEvaluatedAtReadTime) {
  Registry reg;
  double source = 1.0;
  reg.GetGauge("live").SetProvider([&source]() { return source; });
  EXPECT_DOUBLE_EQ(reg.GetGauge("live").value(), 1.0);
  source = 42.0;
  EXPECT_DOUBLE_EQ(reg.GetGauge("live").value(), 42.0);
}

TEST(Registry, TextTableListsEveryInstrument) {
  Registry reg;
  reg.GetCounter("flows", Labels{{"instance", "10.1.0.1"}}).Add(7);
  reg.GetGauge("depth").Set(3);
  reg.GetHistogram("lat_ms").Add(1.5);
  const std::string table = reg.TextTable();
  EXPECT_NE(table.find("flows"), std::string::npos);
  EXPECT_NE(table.find("instance=10.1.0.1"), std::string::npos);
  EXPECT_NE(table.find("depth"), std::string::npos);
  EXPECT_NE(table.find("lat_ms"), std::string::npos);
  EXPECT_NE(table.find("7"), std::string::npos);
}

TEST(Registry, JsonLinesEmitsOneObjectPerInstrument) {
  Registry reg;
  reg.GetCounter("a").Inc();
  reg.GetGauge("b").Set(1);
  reg.GetHistogram("c").Add(2);
  const std::string jsonl = reg.JsonLines();
  int lines = 0;
  std::istringstream is(jsonl);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3);
}

TEST(Registry, FormatIpRendersDottedQuad) {
  EXPECT_EQ(FormatIp(0x0A010002u), "10.1.0.2");
}

// --- FlightRecorder -------------------------------------------------------

FlowId TestFlow(std::uint16_t client_port = 40'000) {
  return FlowId{/*vip=*/0x0AC80001u, /*vip_port=*/80, /*client_ip=*/0x0A090001u, client_port};
}

TEST(FlightRecorder, RecordsEventsInOrder) {
  FlightRecorder rec;
  const FlowId flow = TestFlow();
  rec.Record(flow, 10, EventType::kClientSyn, 1);
  rec.Record(flow, 20, EventType::kSynAckSent, 1);
  rec.Record(flow, 30, EventType::kEstablished, 1);
  ASSERT_TRUE(rec.Has(flow));
  const auto events = rec.Events(flow);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kClientSyn);
  EXPECT_EQ(events[2].type, EventType::kEstablished);
  EXPECT_TRUE(TimestampsMonotonic(events));
}

TEST(FlightRecorder, RingWrapKeepsNewestEventsAndCountsLoss) {
  FlightRecorderConfig cfg;
  cfg.events_per_flow = 4;
  FlightRecorder rec(cfg);
  const FlowId flow = TestFlow();
  for (int i = 0; i < 10; ++i) {
    rec.Record(flow, i, EventType::kMuxForward, 1, static_cast<std::uint64_t>(i));
  }
  const auto events = rec.Events(flow);
  ASSERT_EQ(events.size(), 4u);
  // The newest 4 events survive, oldest-first.
  EXPECT_EQ(events.front().detail, 6u);
  EXPECT_EQ(events.back().detail, 9u);
  EXPECT_TRUE(TimestampsMonotonic(events));
  EXPECT_EQ(rec.overwritten_events(), 6u);
}

TEST(FlightRecorder, FlowCapDropsLaterFlowsButCountsThem) {
  FlightRecorderConfig cfg;
  cfg.max_flows = 2;
  FlightRecorder rec(cfg);
  rec.Record(TestFlow(1), 0, EventType::kClientSyn, 1);
  rec.Record(TestFlow(2), 1, EventType::kClientSyn, 1);
  rec.Record(TestFlow(3), 2, EventType::kClientSyn, 1);
  rec.Record(TestFlow(3), 3, EventType::kFin, 1);
  EXPECT_EQ(rec.flow_count(), 2u);
  EXPECT_FALSE(rec.Has(TestFlow(3)));
  EXPECT_EQ(rec.dropped_flows(), 2u);
  // Existing flows still record.
  rec.Record(TestFlow(1), 4, EventType::kFin, 1);
  EXPECT_EQ(rec.Events(TestFlow(1)).size(), 2u);
}

TEST(FlightRecorder, SystemEventLogIsBounded) {
  FlightRecorderConfig cfg;
  cfg.max_system_events = 3;
  FlightRecorder rec(cfg);
  for (int i = 0; i < 5; ++i) {
    rec.RecordSystem(i, EventType::kPoolUpdate, 7, 4);
  }
  EXPECT_EQ(rec.system_events().size(), 3u);
  EXPECT_EQ(rec.dropped_system_events(), 2u);
}

TEST(FlightRecorder, ExportJsonLinesCoversFlowsAndSystem) {
  FlightRecorder rec;
  rec.Record(TestFlow(), 1'000, EventType::kClientSyn, 0x0A010001u);
  rec.RecordSystem(2'000, EventType::kInstanceDown, 0x0A010002u);
  std::ostringstream os;
  rec.ExportJsonLines(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ClientSyn"), std::string::npos);
  EXPECT_NE(out.find("InstanceDown"), std::string::npos);
  EXPECT_NE(out.find("\"system\""), std::string::npos);
}

// --- Analyzer -------------------------------------------------------------

std::vector<TraceEvent> SyntheticConnectionTrace() {
  // Times in ns; the phases below are 1 ms storage-a, 2 ms selection->SYN,
  // 3 ms storage-b, request forwarded 10 ms after selection.
  return {
      {sim::Msec(0), EventType::kClientSyn, 1, 0},
      {sim::Msec(1), EventType::kStorageAWriteStart, 1, 0},
      {sim::Msec(2), EventType::kStorageAWriteDone, 1, 1},
      {sim::Msec(2), EventType::kSynAckSent, 1, 0},
      {sim::Msec(3), EventType::kBackendSelected, 1, 12},
      {sim::Msec(5), EventType::kServerSyn, 1, 1},
      {sim::Msec(6), EventType::kStorageBWriteStart, 1, 0},
      {sim::Msec(9), EventType::kStorageBWriteDone, 1, 1},
      {sim::Msec(9), EventType::kEstablished, 1, 0},
      {sim::Msec(13), EventType::kRequestForwarded, 1, 0},
  };
}

TEST(Analyzer, ReconstructsPhaseDurationsFromEvents) {
  const FlowBreakdown b = AnalyzeFlow(SyntheticConnectionTrace());
  EXPECT_TRUE(b.established);
  EXPECT_DOUBLE_EQ(b.storage_a_ms, 1.0);
  EXPECT_DOUBLE_EQ(b.storage_b_ms, 3.0);
  EXPECT_DOUBLE_EQ(b.storage_ms, 4.0);
  EXPECT_DOUBLE_EQ(b.connection_ms, 10.0);  // Selection -> request forwarded.
  EXPECT_DOUBLE_EQ(b.rule_scan_ms, 2.0);    // Selection -> server SYN.
  EXPECT_EQ(b.rules_scanned, 12);
  EXPECT_EQ(b.takeovers, 0);
}

TEST(Analyzer, CountsTakeoversAndReswitches) {
  auto events = SyntheticConnectionTrace();
  events.push_back({sim::Msec(20), EventType::kTakeoverClient, 2, 0});
  events.push_back({sim::Msec(25), EventType::kReSwitch, 2, 0x0A030002u});
  const FlowBreakdown b = AnalyzeFlow(events);
  EXPECT_EQ(b.takeovers, 1);
  EXPECT_EQ(b.reswitches, 1);
}

TEST(Analyzer, BreakdownAggregatesAcrossFlows) {
  FlightRecorder rec;
  for (std::uint16_t port = 1; port <= 3; ++port) {
    for (const TraceEvent& ev : SyntheticConnectionTrace()) {
      rec.Record(TestFlow(port), ev.at, ev.type, ev.where, ev.detail);
    }
  }
  const BreakdownReport report = ReconstructBreakdown(rec);
  EXPECT_EQ(report.flows_seen, 3u);
  EXPECT_EQ(report.flows_established, 3u);
  ASSERT_EQ(report.connection_ms.count(), 3u);
  EXPECT_DOUBLE_EQ(report.connection_ms.Percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(report.storage_ms.Percentile(50), 4.0);
}

TEST(Analyzer, TimestampsMonotonicDetectsRegression) {
  std::vector<TraceEvent> events = {
      {sim::Msec(2), EventType::kClientSyn, 1, 0},
      {sim::Msec(1), EventType::kSynAckSent, 1, 0},
  };
  EXPECT_FALSE(TimestampsMonotonic(events));
  EXPECT_TRUE(TimestampsMonotonic({}));
}

// --- End-to-end: a takeover leaves a coherent recording -------------------

TEST(ObsE2E, TakeoverFlowTraceIsCoherent) {
  workload::TestbedConfig cfg;
  cfg.yoda_instances = 4;
  workload::Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  const workload::WebObject* big = nullptr;
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);

  bool done = false;
  bool ok = false;
  tb.clients[0]->FetchObject(tb.vip(), 80, big->url, {},
                             [&](const workload::FetchResult& r) {
                               done = true;
                               ok = r.ok;
                             });
  tb.sim.RunUntil(sim::Msec(160));
  int owner = -1;
  for (std::size_t i = 0; i < tb.instances.size(); ++i) {
    if (tb.instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  const std::uint32_t failed_ip = tb.instance_ip(owner);
  tb.FailInstance(owner);
  tb.sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(ok);

  // The flight recorder saw the flow; its trace contains a client-side
  // takeover recorded by a *surviving* instance, and timestamps never
  // run backwards.
  bool saw_takeover = false;
  std::size_t flows_checked = 0;
  tb.flight.ForEachFlow([&](const FlowId& id, const std::vector<TraceEvent>& events) {
    ++flows_checked;
    EXPECT_TRUE(TimestampsMonotonic(events)) << "flow " << FormatIp(id.client_ip);
    for (const TraceEvent& ev : events) {
      if (ev.type == EventType::kTakeoverClient) {
        saw_takeover = true;
        EXPECT_NE(ev.where, failed_ip);
        EXPECT_NE(ev.where, 0u);
      }
    }
  });
  EXPECT_GE(flows_checked, 1u);
  EXPECT_TRUE(saw_takeover);

  // The controller's system log recorded the instance removal.
  bool saw_instance_down = false;
  for (const TraceEvent& ev : tb.flight.system_events()) {
    if (ev.type == EventType::kInstanceDown && ev.where == failed_ip) {
      saw_instance_down = true;
    }
  }
  EXPECT_TRUE(saw_instance_down);

  // And the registry's takeover counter agrees with the recording.
  std::uint64_t takeovers = 0;
  for (auto& inst : tb.instances) {
    takeovers += inst->stats().takeovers_client_side;
  }
  EXPECT_GE(takeovers, 1u);
}

TEST(ObsE2E, RegistryCountersMatchInstanceStats) {
  workload::Testbed tb;
  tb.DefineDefaultVipAndStart();
  bool done = false;
  tb.clients[0]->FetchObject(tb.vip(), 80, tb.catalog->objects()[0].url, {},
                             [&](const workload::FetchResult&) { done = true; });
  tb.sim.Run();
  ASSERT_TRUE(done);

  // The per-instance counters in the shared registry are the same storage the
  // stats() snapshot is built from.
  std::uint64_t started = 0;
  for (auto& inst : tb.instances) {
    started += inst->stats().flows_started;
    const Labels labels{{"instance", FormatIp(inst->ip())}};
    EXPECT_EQ(tb.metrics.GetCounter("yoda.flows_started", labels).value(),
              inst->stats().flows_started);
  }
  EXPECT_EQ(started, 1u);

  // TCPStore counters mirrored into the registry.
  EXPECT_EQ(tb.metrics.GetCounter("tcpstore.connection_writes").value(),
            tb.store->stats().connection_writes);
  EXPECT_GE(tb.store->stats().connection_writes, 1u);

  // Simulator gauges are live.
  EXPECT_GT(tb.metrics.GetGauge("sim.events_executed").value(), 0.0);
  EXPECT_GT(tb.metrics.GetGauge("sim.queue_depth_high_water").value(), 0.0);
}

}  // namespace
}  // namespace obs
