// Scenario DSL tests: parsing, error reporting, and end-to-end runs.

#include <gtest/gtest.h>

#include "src/workload/scenario.h"

namespace workload {
namespace {

TEST(ParseDuration, Units) {
  EXPECT_EQ(ParseDuration("250ms"), sim::Msec(250));
  EXPECT_EQ(ParseDuration("5s"), sim::Sec(5));
  EXPECT_EQ(ParseDuration("2m"), sim::Minutes(2));
  EXPECT_EQ(ParseDuration("7us"), sim::Usec(7));
  EXPECT_EQ(ParseDuration("9"), sim::Sec(9));
  EXPECT_FALSE(ParseDuration("ms").has_value());
  EXPECT_FALSE(ParseDuration("5h").has_value());
  EXPECT_FALSE(ParseDuration("abc").has_value());
}

TEST(ParseIp, DottedQuads) {
  EXPECT_EQ(ParseIp("10.200.0.1"), net::MakeIp(10, 200, 0, 1));
  EXPECT_EQ(ParseIp("0.0.0.0"), 0u);
  EXPECT_EQ(ParseIp("255.255.255.255"), 0xffffffffu);
  EXPECT_FALSE(ParseIp("10.0.0").has_value());
  EXPECT_FALSE(ParseIp("10.0.0.0.1").has_value());
  EXPECT_FALSE(ParseIp("10.0.0.256").has_value());
  EXPECT_FALSE(ParseIp("ten.0.0.1").has_value());
}

TEST(ParseScenario, MinimalScenario) {
  std::string error;
  auto sc = ParseScenario(R"(
    # comment
    seed 9
    instances 3
    backends 4
    vip 10.200.0.1
    rule 10.200.0.1 name=r priority=1 url=* split=10.3.0.1,10.3.0.2
    at 0ms load 10.200.0.1 rate 50 duration 2s
    at 1s fail-instance 0
  )", &error);
  ASSERT_TRUE(sc.has_value()) << error;
  EXPECT_EQ(sc->testbed.seed, 9u);
  EXPECT_EQ(sc->testbed.yoda_instances, 3);
  EXPECT_EQ(sc->testbed.backends, 4);
  ASSERT_EQ(sc->vips.size(), 1u);
  EXPECT_EQ(sc->vips[0].vip_rules.size(), 1u);
  ASSERT_EQ(sc->events.size(), 2u);
  EXPECT_EQ(sc->events[1].action, "fail-instance");
  EXPECT_EQ(sc->events[1].at, sim::Sec(1));
}

TEST(ParseScenario, TlsDirective) {
  std::string error;
  auto sc = ParseScenario(R"(
    vip 10.200.0.1
    rule 10.200.0.1 name=r split=10.3.0.1
    tls 10.200.0.1 cert MY-CERT key 99
  )", &error);
  ASSERT_TRUE(sc.has_value()) << error;
  ASSERT_TRUE(sc->vips[0].tls_cert.has_value());
  EXPECT_EQ(*sc->vips[0].tls_cert, "MY-CERT");
  EXPECT_EQ(sc->vips[0].tls_key, 99u);
}

TEST(ParseScenario, ErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(ParseScenario("vip 10.0.0.1\nbogus-directive 1\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseScenario("rule 10.0.0.1 name=r split=10.3.0.1\n", &error).has_value());
  EXPECT_NE(error.find("undefined vip"), std::string::npos);
  EXPECT_FALSE(ParseScenario("vip not-an-ip\n", &error).has_value());
  EXPECT_FALSE(ParseScenario("vip 10.0.0.1\nrule 10.0.0.1 nonsense\n", &error).has_value());
  EXPECT_FALSE(ParseScenario("instances abc\n", &error).has_value());
  EXPECT_FALSE(ParseScenario("# only comments\n", &error).has_value());  // No vip.
}

TEST(RunScenario, PlainLoadCompletes) {
  auto sc = ParseScenario(R"(
    seed 5
    instances 2
    backends 3
    vip 10.200.0.1
    rule 10.200.0.1 name=r priority=1 url=* split=10.3.0.1,10.3.0.2,10.3.0.3
    at 0ms load 10.200.0.1 rate 40 duration 2s
  )");
  ASSERT_TRUE(sc.has_value());
  ScenarioReport report = RunScenario(*sc);
  EXPECT_GT(report.requests_ok, 50u);
  EXPECT_EQ(report.requests_failed, 0u);
  EXPECT_GT(report.latency_ms.Percentile(50), 50.0);
}

TEST(RunScenario, FailureEventIsTransparent) {
  auto sc = ParseScenario(R"(
    seed 6
    instances 4
    backends 4
    vip 10.200.0.1
    rule 10.200.0.1 name=r priority=1 url=* split=10.3.0.1,10.3.0.2
    at 0ms load 10.200.0.1 rate 60 duration 4s
    at 1s fail-instance 0
  )");
  ASSERT_TRUE(sc.has_value());
  ScenarioReport report = RunScenario(*sc);
  EXPECT_EQ(report.requests_failed, 0u);
  EXPECT_EQ(report.failures_detected, 1);
  EXPECT_FALSE(report.controller_events.empty());
}

TEST(RunScenario, TlsLoadWorks) {
  auto sc = ParseScenario(R"(
    seed 8
    instances 2
    backends 3
    vip 10.200.0.1
    rule 10.200.0.1 name=r priority=1 url=* split=10.3.0.1,10.3.0.2
    tls 10.200.0.1 cert TESTCERT key 77
    at 0ms load 10.200.0.1 rate 30 duration 2s tls
  )");
  ASSERT_TRUE(sc.has_value());
  ScenarioReport report = RunScenario(*sc);
  EXPECT_GT(report.requests_ok, 30u);
  EXPECT_EQ(report.requests_failed, 0u);
}

TEST(RunScenario, UpdateRulesMidRun) {
  auto sc = ParseScenario(R"(
    seed 10
    instances 2
    backends 3
    vip 10.200.0.1
    rule 10.200.0.1 name=r priority=1 url=* split=10.3.0.1
    at 0ms load 10.200.0.1 rate 40 duration 3s
    at 1s update-rules 10.200.0.1 name=r2 priority=2 url=* split=10.3.0.2
  )");
  ASSERT_TRUE(sc.has_value());
  ScenarioReport report = RunScenario(*sc);
  EXPECT_EQ(report.requests_failed, 0u);
  bool updated = false;
  for (const auto& ev : report.controller_events) {
    updated = updated || ev.what.find("update rules") != std::string::npos;
  }
  EXPECT_TRUE(updated);
}

}  // namespace
}  // namespace workload
