// TcpStore facade tests: storage-a / storage-b semantics, reverse lookup,
// removal and persistence across memcached failures.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/tcp_store.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"

namespace yoda {
namespace {

class TcpStoreTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  std::unique_ptr<kv::ReplicatingClient> client;
  std::unique_ptr<TcpStore> store;

  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<kv::KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    kv::ReplicatingClientConfig cfg;
    cfg.replicas = 2;
    client = std::make_unique<kv::ReplicatingClient>(&simulator, ptrs, cfg);
    store = std::make_unique<TcpStore>(client.get());
  }

  FlowState Tunneling() {
    FlowState s;
    s.stage = FlowStage::kTunneling;
    s.client_ip = net::MakeIp(9, 9, 9, 9);
    s.client_port = 40'000;
    s.vip = net::MakeIp(10, 200, 0, 1);
    s.vip_port = 80;
    s.client_isn = 100;
    s.lb_isn = 200;
    s.backend_ip = net::MakeIp(10, 3, 0, 2);
    s.backend_port = 80;
    s.server_isn = 300;
    s.seq_delta_s2c = s.lb_isn - s.server_isn;
    return s;
  }
};

TEST_F(TcpStoreTest, ConnectionStateRoundTrip) {
  FlowState s = Tunneling();
  s.stage = FlowStage::kConnection;
  bool stored = false;
  store->StoreConnectionState(s, [&stored](bool ok) { stored = ok; });
  simulator.Run();
  ASSERT_TRUE(stored);
  std::optional<FlowState> got;
  store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                        [&got](std::optional<FlowState> v) { got = std::move(v); });
  simulator.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, s);
  EXPECT_EQ(store->stats().connection_writes, 1u);
  EXPECT_EQ(store->stats().lookup_hits, 1u);
}

TEST_F(TcpStoreTest, TunnelingStateReachableFromBothSides) {
  FlowState s = Tunneling();
  bool stored = false;
  store->StoreTunnelingState(s, [&stored](bool ok) { stored = ok; });
  simulator.Run();
  ASSERT_TRUE(stored);

  std::optional<FlowState> by_client;
  store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                        [&by_client](std::optional<FlowState> v) { by_client = std::move(v); });
  std::optional<FlowState> by_server;
  store->LookupByServer(s.backend_ip, s.backend_port, s.vip, s.client_port,
                        [&by_server](std::optional<FlowState> v) { by_server = std::move(v); });
  simulator.Run();
  ASSERT_TRUE(by_client.has_value());
  ASSERT_TRUE(by_server.has_value());
  EXPECT_EQ(*by_client, s);
  EXPECT_EQ(*by_server, s);
}

TEST_F(TcpStoreTest, LookupMissReportsNullopt) {
  std::optional<FlowState> got;
  bool answered = false;
  store->LookupByClient(1, 80, 2, 3, [&](std::optional<FlowState> v) {
    got = std::move(v);
    answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(answered);
  EXPECT_FALSE(got.has_value());
}

TEST_F(TcpStoreTest, ServerLookupMissWhenOnlyConnectionState) {
  FlowState s = Tunneling();
  s.stage = FlowStage::kConnection;
  store->StoreConnectionState(s, [](bool) {});
  simulator.Run();
  std::optional<FlowState> got;
  bool answered = false;
  store->LookupByServer(s.backend_ip, s.backend_port, s.vip, s.client_port,
                        [&](std::optional<FlowState> v) {
                          got = std::move(v);
                          answered = true;
                        });
  simulator.Run();
  EXPECT_TRUE(answered);
  EXPECT_FALSE(got.has_value());  // storage-b never happened.
}

TEST_F(TcpStoreTest, RemoveDeletesBothKeys) {
  FlowState s = Tunneling();
  store->StoreTunnelingState(s, [](bool) {});
  simulator.Run();
  bool removed = false;
  store->Remove(s, [&removed](bool ok) { removed = ok; });
  simulator.Run();
  EXPECT_TRUE(removed);
  std::optional<FlowState> by_client = Tunneling();
  store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                        [&by_client](std::optional<FlowState> v) { by_client = std::move(v); });
  std::optional<FlowState> by_server = Tunneling();
  store->LookupByServer(s.backend_ip, s.backend_port, s.vip, s.client_port,
                        [&by_server](std::optional<FlowState> v) { by_server = std::move(v); });
  simulator.Run();
  EXPECT_FALSE(by_client.has_value());
  EXPECT_FALSE(by_server.has_value());
}

TEST_F(TcpStoreTest, SurvivesSingleMemcachedFailure) {
  // The whole point of TCPStore: flow state outlives one kv server.
  FlowState s = Tunneling();
  store->StoreTunnelingState(s, [](bool) {});
  simulator.Run();
  const std::string ckey = ClientFlowKey(s.vip, s.vip_port, s.client_ip, s.client_port);
  client->ReplicasFor(ckey)[0]->Fail();
  std::optional<FlowState> got;
  store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                        [&got](std::optional<FlowState> v) { got = std::move(v); });
  simulator.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, s);
}

TEST_F(TcpStoreTest, ManyConcurrentFlowsRoundTrip) {
  // A burst of flows written at the same instant, then looked up — the fan
  // out must never cross-wire callbacks or keys.
  std::vector<FlowState> states;
  for (int i = 0; i < 200; ++i) {
    FlowState s = Tunneling();
    s.client_ip = net::MakeIp(9, 9, 0, static_cast<std::uint8_t>(i % 250));
    s.client_port = static_cast<net::Port>(40'000 + i);
    s.client_isn = static_cast<std::uint32_t>(1000 + i);
    states.push_back(s);
    store->StoreTunnelingState(s, [](bool) {});
  }
  simulator.Run();
  int hits = 0;
  for (const FlowState& s : states) {
    store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                          [&hits, expect = s](std::optional<FlowState> got) {
                            ASSERT_TRUE(got.has_value());
                            EXPECT_EQ(*got, expect);
                            ++hits;
                          });
  }
  simulator.Run();
  EXPECT_EQ(hits, 200);
}

TEST_F(TcpStoreTest, OverwriteUpgradesConnectionToTunneling) {
  FlowState s = Tunneling();
  FlowState conn = s;
  conn.stage = FlowStage::kConnection;
  conn.backend_ip = 0;
  conn.server_isn = 0;
  store->StoreConnectionState(conn, [](bool) {});
  simulator.Run();
  store->StoreTunnelingState(s, [](bool) {});
  simulator.Run();
  std::optional<FlowState> got;
  store->LookupByClient(s.vip, s.vip_port, s.client_ip, s.client_port,
                        [&got](std::optional<FlowState> v) { got = std::move(v); });
  simulator.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, FlowStage::kTunneling);
  EXPECT_EQ(got->backend_ip, s.backend_ip);
}

TEST_F(TcpStoreTest, StorageBIssuesTwoWrites) {
  // Tunneling state = full state under client key + reverse server key.
  FlowState s = Tunneling();
  store->StoreTunnelingState(s, [](bool) {});
  simulator.Run();
  EXPECT_EQ(client->stats().sets, 2u);
  EXPECT_EQ(store->stats().tunneling_writes, 1u);
}

}  // namespace
}  // namespace yoda
