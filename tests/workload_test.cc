// Workload-layer tests: catalog statistics, server node, browser client
// behaviours (timeout/retry), trace generation and per-bin problems.

#include <gtest/gtest.h>

#include "src/assign/validator.h"
#include "src/workload/browser_client.h"
#include "src/workload/http_server_node.h"
#include "src/workload/object_catalog.h"
#include "src/workload/testbed.h"
#include "src/workload/trace.h"

namespace workload {
namespace {

TEST(ObjectCatalog, MatchesPaperSetup) {
  sim::Rng rng(1);
  ObjectCatalog catalog(rng);
  EXPECT_GE(catalog.objects().size(), 10'000u);
  std::size_t min_size = SIZE_MAX;
  std::size_t max_size = 0;
  for (const auto& o : catalog.objects()) {
    min_size = std::min(min_size, o.size);
    max_size = std::max(max_size, o.size);
  }
  EXPECT_GE(min_size, 1'000u);
  EXPECT_LE(max_size, 442'000u);
  // Median ~46 KB.
  EXPECT_NEAR(static_cast<double>(catalog.MedianSize()), 46'000.0, 6'000.0);
}

TEST(ObjectCatalog, LookupAndBody) {
  sim::Rng rng(2);
  CatalogConfig cfg;
  cfg.objects = 100;
  cfg.pages = 10;
  ObjectCatalog catalog(rng, cfg);
  const WebObject& obj = catalog.objects()[5];
  const WebObject* found = catalog.Find(obj.url);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->url, obj.url);
  EXPECT_EQ(catalog.BodyFor(obj).size(), obj.size);
  EXPECT_EQ(catalog.Find("/no/such/object"), nullptr);
}

TEST(ObjectCatalog, PagesReferenceRealObjects) {
  sim::Rng rng(3);
  CatalogConfig cfg;
  cfg.objects = 200;
  cfg.pages = 50;
  ObjectCatalog catalog(rng, cfg);
  EXPECT_EQ(catalog.pages().size(), 50u);
  for (const Page& page : catalog.pages()) {
    EXPECT_NE(catalog.Find(page.html_url), nullptr);
    EXPECT_GE(page.embedded.size(), 2u);
    EXPECT_LE(page.embedded.size(), 12u);
    for (const std::string& url : page.embedded) {
      EXPECT_NE(catalog.Find(url), nullptr);
    }
  }
}

// Direct client<->server fetch (no LB): exercises server node + client.
class DirectFetchTest : public ::testing::Test {
 protected:
  TestbedConfig cfg;
  std::unique_ptr<Testbed> tb;
  void SetUp() override {
    cfg.yoda_instances = 1;
    cfg.backends = 2;
    tb = std::make_unique<Testbed>(cfg);
  }
};

TEST_F(DirectFetchTest, FetchObjectDirectlyFromServer) {
  const WebObject& obj = tb->catalog->objects()[0];
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->backend_ip(0), 80, obj.url, {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, obj.size);
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u);
}

TEST_F(DirectFetchTest, UnknownUrlIs404) {
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->backend_ip(0), 80, "/missing.html", {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.status, 404);
}

TEST_F(DirectFetchTest, TimeoutWhenServerDown) {
  tb->FailBackend(0);
  FetchResult result;
  bool done = false;
  FetchOptions opts;
  opts.http_timeout = sim::Sec(5);
  tb->clients[0]->FetchObject(tb->backend_ip(0), 80, "/x", opts, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.timed_out);
  EXPECT_GE(result.latency, sim::Sec(5));
}

TEST_F(DirectFetchTest, RetrySucceedsAfterServerRecovers) {
  tb->FailBackend(0);
  FetchResult result;
  bool done = false;
  FetchOptions opts;
  opts.http_timeout = sim::Sec(3);
  opts.retries = 1;
  tb->clients[0]->FetchObject(tb->backend_ip(0), 80, tb->catalog->objects()[0].url, opts,
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(sim::Sec(2));
  tb->RecoverBackend(0);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.retries_used, 1);
}

TEST_F(DirectFetchTest, FetchPageAggregatesObjects) {
  const Page& page = tb->catalog->PageAt(0);
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchPage(tb->backend_ip(0), 80, page.html_url, page.embedded, {},
                            [&](const FetchResult& r) {
                              result = r;
                              done = true;
                            });
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u + page.embedded.size());
  std::size_t expected = tb->catalog->Find(page.html_url)->size;
  for (const auto& url : page.embedded) {
    expected += tb->catalog->Find(url)->size;
  }
  EXPECT_EQ(result.bytes, expected);
}

TEST_F(DirectFetchTest, DrainRequestCounterResets) {
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->backend_ip(0), 80, tb->catalog->objects()[0].url, {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.Run();
  EXPECT_EQ(tb->servers[0]->DrainRequestCounter(), 1u);
  EXPECT_EQ(tb->servers[0]->DrainRequestCounter(), 0u);
}

TEST(OpenLoop, GeneratesApproximatelyTargetRate) {
  TestbedConfig cfg;
  cfg.yoda_instances = 2;
  Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();
  OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 200;
  gcfg.duration = sim::Sec(5);
  gcfg.target = tb.vip();
  gcfg.urls = {tb.catalog->objects()[0].url};
  std::vector<BrowserClient*> clients;
  for (auto& c : tb.clients) {
    clients.push_back(c.get());
  }
  OpenLoopGenerator gen(&tb.sim, clients, 3, gcfg);
  gen.Start();
  tb.sim.Run();
  EXPECT_NEAR(static_cast<double>(gen.issued()), 1000.0, 120.0);
  EXPECT_GT(gen.completed(), gen.issued() * 95 / 100);
  EXPECT_GT(gen.latency_ms().Mean(), 50.0);
}

TEST(TraceGen, MatchesPaperScale) {
  sim::Rng rng(11);
  Trace trace = GenerateTrace(rng);
  EXPECT_GE(trace.vips.size(), 100u);
  EXPECT_EQ(trace.bins(), 144u);
  EXPECT_GE(trace.TotalRules(), 30'000);
  for (const auto& v : trace.vips) {
    for (double rate : v.series) {
      EXPECT_GT(rate, 0.0);
    }
    EXPECT_GE(v.MaxToAvgRatio(), 1.0);
  }
}

TEST(TraceGen, MaxToAvgSpreadMatchesFig15) {
  sim::Rng rng(12);
  Trace trace = GenerateTrace(rng);
  double total_ratio = 0;
  double max_ratio = 0;
  double min_ratio = 1e9;
  for (const auto& v : trace.vips) {
    const double r = v.MaxToAvgRatio();
    total_ratio += r;
    max_ratio = std::max(max_ratio, r);
    min_ratio = std::min(min_ratio, r);
  }
  const double avg = total_ratio / static_cast<double>(trace.vips.size());
  // Paper: 1.07x-50.3x, average 3.7x. Accept a band around that shape.
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 6.5);
  EXPECT_GT(max_ratio, 15.0);
  EXPECT_LT(min_ratio, 1.6);
}

TEST(TraceGen, SortedByVolumeDescending) {
  sim::Rng rng(13);
  Trace trace = GenerateTrace(rng);
  for (std::size_t i = 1; i < trace.vips.size(); ++i) {
    EXPECT_GE(trace.vips[i - 1].TotalVolume(), trace.vips[i].TotalVolume());
  }
}

TEST(TraceGen, ProblemForBinIsSolvable) {
  sim::Rng rng(14);
  Trace trace = GenerateTrace(rng);
  assign::Problem p = ProblemForBin(trace, 12);
  EXPECT_EQ(p.vips.size(), trace.vips.size());
  for (const auto& v : p.vips) {
    EXPECT_GE(v.replicas, 1);
    EXPECT_LT(v.failures, v.replicas);
    EXPECT_LE(v.ShareAfterFailures(), p.traffic_capacity + 1e-9);
    EXPECT_LE(v.rules, p.rule_capacity);
  }
}

TEST(TraceGen, DeterministicForSeed) {
  sim::Rng a(15);
  sim::Rng b(15);
  Trace ta = GenerateTrace(a);
  Trace tb_trace = GenerateTrace(b);
  ASSERT_EQ(ta.vips.size(), tb_trace.vips.size());
  for (std::size_t i = 0; i < ta.vips.size(); ++i) {
    EXPECT_EQ(ta.vips[i].series, tb_trace.vips[i].series);
    EXPECT_EQ(ta.vips[i].rules, tb_trace.vips[i].rules);
  }
}

}  // namespace
}  // namespace workload
