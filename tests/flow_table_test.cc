// FlowTable tests: CRUD + reverse index behavior, the idle/VIP collection
// sweeps, and — the reason the table is sharded at all — the guarantee that
// ShardOf spreads realistic 5-tuple populations evenly enough that a future
// per-shard worker split cannot be pathologically imbalanced.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/flow_table.h"
#include "src/net/packet.h"

namespace yoda {
namespace {

FlowKey Key(std::uint32_t client_lo, net::Port client_port = 40'000,
            net::IpAddr vip = net::MakeIp(10, 200, 0, 1)) {
  FlowKey k;
  k.vip = vip;
  k.vip_port = 80;
  k.client_ip = net::MakeIp(9, 0, 0, 0) + client_lo;
  k.client_port = client_port;
  return k;
}

TEST(FlowTable, InsertFindErase) {
  FlowTable table(4);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(Key(1)), nullptr);

  LocalFlow& f = table.Insert(Key(1), std::make_unique<LocalFlow>());
  f.st.client_isn = 123;
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find(Key(1)), nullptr);
  EXPECT_EQ(table.Find(Key(1))->st.client_isn, 123u);

  // Insert on an existing key replaces (port-wrap reuse), size stays 1.
  LocalFlow& g = table.Insert(Key(1), std::make_unique<LocalFlow>());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(g.st.client_isn, 0u);

  table.Erase(Key(1));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(Key(1)), nullptr);
  table.Erase(Key(1));  // Erasing a missing key is a no-op.
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ShardDistributionWithinTwiceUniform) {
  // 10k distinct realistic 5-tuples: a block of client IPs, several
  // ephemeral ports each, two VIPs — every shard must hold between half and
  // twice the uniform share.
  const int kShards = 8;
  FlowTable table(kShards);
  const int kFlows = 10'000;
  int inserted = 0;
  for (std::uint32_t ip = 0; inserted < kFlows; ++ip) {
    for (net::Port port = 32'768; port < 32'768 + 10 && inserted < kFlows; ++port) {
      const net::IpAddr vip =
          net::MakeIp(10, 200, 0, inserted % 2 == 0 ? 1 : 2);
      table.Insert(Key(ip, port, vip), std::make_unique<LocalFlow>());
      ++inserted;
    }
  }
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kFlows));

  const double uniform = static_cast<double>(kFlows) / kShards;
  std::size_t total = 0;
  for (int s = 0; s < kShards; ++s) {
    const std::size_t n = table.shard_size(s);
    total += n;
    EXPECT_GE(static_cast<double>(n), uniform / 2.0) << "shard " << s << " underloaded";
    EXPECT_LE(static_cast<double>(n), uniform * 2.0) << "shard " << s << " overloaded";
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kFlows));
}

TEST(FlowTable, ShardOfIsStableAndInRange) {
  FlowTable table(8);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const int s = table.ShardOf(Key(i));
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(s, FlowTable::ShardOf(Key(i), 8));  // Static and member agree.
  }
  // One shard degenerates gracefully.
  FlowTable single(1);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(single.ShardOf(Key(i)), 0);
  }
}

TEST(FlowTable, ForEachVisitsEveryFlow) {
  FlowTable table(4);
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.Insert(Key(i), std::make_unique<LocalFlow>());
  }
  std::size_t seen = 0;
  table.ForEach([&](const FlowKey&, LocalFlow&) { ++seen; });
  EXPECT_EQ(seen, 100u);
}

TEST(FlowTable, CollectIdleSkipsActiveAndLookupPendingFlows) {
  FlowTable table(4);
  LocalFlow& idle = table.Insert(Key(1), std::make_unique<LocalFlow>());
  idle.last_packet = sim::Msec(10);
  LocalFlow& fresh = table.Insert(Key(2), std::make_unique<LocalFlow>());
  fresh.last_packet = sim::Msec(900);
  // A takeover lookup in flight pins the flow even when it looks idle.
  LocalFlow& pending =
      table.Insert(Key(3), std::make_unique<LocalFlow>(FlowPhase::kTakeoverLookup));
  pending.last_packet = sim::Msec(10);

  const std::vector<FlowKey> collected = table.CollectIdle(sim::Msec(500));
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0], Key(1));
}

TEST(FlowTable, CollectVipSelectsOnlyThatVip) {
  FlowTable table(4);
  const net::IpAddr vip_a = net::MakeIp(10, 200, 0, 1);
  const net::IpAddr vip_b = net::MakeIp(10, 200, 0, 2);
  for (std::uint32_t i = 0; i < 10; ++i) {
    table.Insert(Key(i, 40'000, i % 2 == 0 ? vip_a : vip_b),
                 std::make_unique<LocalFlow>());
  }
  const std::vector<FlowKey> drained = table.CollectVip(vip_a);
  EXPECT_EQ(drained.size(), 5u);
  for (const FlowKey& k : drained) {
    EXPECT_EQ(k.vip, vip_a);
  }
  EXPECT_TRUE(table.CollectVip(net::MakeIp(10, 200, 0, 3)).empty());
}

TEST(FlowTable, ServerIndexRoundTrip) {
  FlowTable table(4);
  const FlowKey key = Key(7);
  table.Insert(key, std::make_unique<LocalFlow>());
  const net::FiveTuple server_side{net::MakeIp(10, 3, 0, 2), key.vip, 80, key.client_port};

  EXPECT_FALSE(table.HasServer(server_side));
  EXPECT_EQ(table.FindServer(server_side), nullptr);

  table.BindServer(server_side, key);
  EXPECT_TRUE(table.HasServer(server_side));
  ASSERT_NE(table.FindServer(server_side), nullptr);
  EXPECT_EQ(*table.FindServer(server_side), key);
  EXPECT_EQ(table.server_index_size(), 1u);

  table.UnbindServer(server_side);
  EXPECT_FALSE(table.HasServer(server_side));
  EXPECT_EQ(table.server_index_size(), 0u);
}

TEST(FlowTable, ClearDropsFlowsAndIndex) {
  FlowTable table(4);
  for (std::uint32_t i = 0; i < 20; ++i) {
    const FlowKey key = Key(i);
    table.Insert(key, std::make_unique<LocalFlow>());
    table.BindServer({net::MakeIp(10, 3, 0, 2), key.vip, 80, key.client_port}, key);
  }
  EXPECT_EQ(table.size(), 20u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.server_index_size(), 0u);
  EXPECT_EQ(table.Find(Key(0)), nullptr);
  std::size_t seen = 0;
  table.ForEach([&](const FlowKey&, LocalFlow&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}

}  // namespace
}  // namespace yoda
