// HealthMonitor tests: probe hysteresis, readmission streaks, flap
// suppression and backend edge-triggered transitions — as pure transitions,
// independent of the reconciler that consumes them.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/health_monitor.h"
#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

class HealthMonitorTest : public ::testing::Test {
 protected:
  void Build(HealthMonitorConfig mcfg, int instances = 3) {
    TestbedConfig cfg;
    cfg.yoda_instances = instances;
    cfg.build_catalog = false;
    tb = std::make_unique<Testbed>(cfg);
    monitor = std::make_unique<HealthMonitor>(&tb->network, mcfg);
    for (auto& inst : tb->instances) {
      monitor->AddActive(inst.get());
    }
  }

  std::vector<HealthTransition> TickKinds(HealthTransition::Kind kind) {
    std::vector<HealthTransition> out;
    for (const HealthTransition& t : monitor->Tick()) {
      if (t.kind == kind) {
        out.push_back(t);
      }
    }
    return out;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<HealthMonitor> monitor;
};

TEST_F(HealthMonitorTest, HysteresisSuspectsBeforeDeclaringDead) {
  Build({.fail_after_misses = 3});
  tb->FailInstance(0);

  auto suspected = TickKinds(HealthTransition::Kind::kInstanceSuspected);
  ASSERT_EQ(suspected.size(), 1u);
  EXPECT_EQ(suspected[0].addr, tb->instance_ip(0));
  EXPECT_EQ(suspected[0].detail, 1);
  EXPECT_EQ(monitor->active().size(), 3u);  // Still pooled during hysteresis.

  EXPECT_EQ(TickKinds(HealthTransition::Kind::kInstanceSuspected).size(), 1u);
  auto failed = TickKinds(HealthTransition::Kind::kInstanceFailed);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].addr, tb->instance_ip(0));
  EXPECT_EQ(monitor->active().size(), 2u);
  EXPECT_EQ(monitor->detected_failures(), 1);
  EXPECT_TRUE(monitor->suspended().empty());  // Readmission disabled.
}

TEST_F(HealthMonitorTest, RecoveryBetweenMissesResetsTheStreak) {
  Build({.fail_after_misses = 2});
  tb->FailInstance(0);
  EXPECT_EQ(TickKinds(HealthTransition::Kind::kInstanceSuspected).size(), 1u);
  tb->RecoverInstance(0);
  EXPECT_TRUE(monitor->Tick().empty());
  tb->FailInstance(0);
  // The earlier miss no longer counts: suspected again, not failed.
  EXPECT_EQ(TickKinds(HealthTransition::Kind::kInstanceFailed).size(), 0u);
  EXPECT_EQ(monitor->active().size(), 3u);
}

TEST_F(HealthMonitorTest, ReadmissionAfterHealthyStreak) {
  Build({.fail_after_misses = 1, .readmit_instances = true, .readmit_after_successes = 2});
  tb->FailInstance(0);
  ASSERT_EQ(TickKinds(HealthTransition::Kind::kInstanceFailed).size(), 1u);
  EXPECT_EQ(monitor->suspended().size(), 1u);

  tb->RecoverInstance(0);
  EXPECT_TRUE(monitor->Tick().empty());  // Streak 1 of 2.
  auto readmitted = TickKinds(HealthTransition::Kind::kInstanceReadmitted);
  ASSERT_EQ(readmitted.size(), 1u);
  EXPECT_EQ(readmitted[0].detail, 2);  // Required streak reported.
  EXPECT_EQ(monitor->active().size(), 3u);
  EXPECT_TRUE(monitor->suspended().empty());
  EXPECT_EQ(monitor->readmissions(), 1);
}

TEST_F(HealthMonitorTest, FlapSuppressionDoublesRequiredStreakUpToCap) {
  Build({.fail_after_misses = 1,
         .readmit_instances = true,
         .readmit_after_successes = 2,
         .readmit_penalty_cap = 4});
  // First failure: 2 healthy probes readmit.
  tb->FailInstance(0);
  monitor->Tick();
  tb->RecoverInstance(0);
  monitor->Tick();
  ASSERT_EQ(TickKinds(HealthTransition::Kind::kInstanceReadmitted).size(), 1u);

  // Second failure (a flap): the requirement doubles to 4 = the cap.
  tb->FailInstance(0);
  monitor->Tick();
  tb->RecoverInstance(0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(TickKinds(HealthTransition::Kind::kInstanceReadmitted).empty()) << i;
  }
  auto readmitted = TickKinds(HealthTransition::Kind::kInstanceReadmitted);
  ASSERT_EQ(readmitted.size(), 1u);
  EXPECT_EQ(readmitted[0].detail, 4);
}

TEST_F(HealthMonitorTest, BackendTransitionsAreEdgeTriggered) {
  Build({.fail_after_misses = 1});
  monitor->AddBackend(tb->backend_ip(0));
  EXPECT_TRUE(monitor->IsBackendUp(tb->backend_ip(0)));
  EXPECT_TRUE(monitor->Tick().empty());  // No edge while healthy.

  tb->network.SetNodeDown(tb->backend_ip(0), true);
  auto down = TickKinds(HealthTransition::Kind::kBackendDown);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].addr, tb->backend_ip(0));
  EXPECT_FALSE(monitor->IsBackendUp(tb->backend_ip(0)));
  EXPECT_TRUE(monitor->Tick().empty());  // Level does not re-fire.

  tb->network.SetNodeDown(tb->backend_ip(0), false);
  EXPECT_EQ(TickKinds(HealthTransition::Kind::kBackendUp).size(), 1u);
  EXPECT_TRUE(monitor->IsBackendUp(tb->backend_ip(0)));
}

}  // namespace
}  // namespace yoda
