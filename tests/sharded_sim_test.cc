// Engine-level tests for the parallel sharded simulator: mailbox FIFO and
// ordering, epoch-window clamping, barrier semantics of CallOn/Broadcast,
// and — the load-bearing property — identical event interleavings for any
// worker count, checked against a recorded execution trace.

#include "src/sim/sharded_sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/spsc_queue.h"

namespace {

TEST(SpscQueueTest, FifoAcrossSegments) {
  sim::SpscQueue<int, 4> q;  // Tiny segments to exercise the linking path.
  for (int i = 0; i < 1000; ++i) {
    q.Push(int{i});
  }
  EXPECT_EQ(q.pushed(), 1000u);
  int v = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_EQ(q.popped(), 1000u);
}

TEST(SpscQueueTest, InterleavedPushPop) {
  sim::SpscQueue<std::string, 8> q;
  std::string s;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) {
      q.Push("r" + std::to_string(round) + "-" + std::to_string(i));
    }
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(q.Pop(&s));
      EXPECT_EQ(s, "r" + std::to_string(round) + "-" + std::to_string(i));
    }
    EXPECT_FALSE(q.Pop(&s));
  }
}

TEST(ShardedSimTest, SingleShardMatchesPlainSimulator) {
  sim::ShardedSim ss({.shards = 1, .workers = 1, .window = sim::Usec(100)});
  std::vector<int> order;
  ss.shard(0).At(sim::Msec(2), [&]() { order.push_back(2); });
  ss.shard(0).At(sim::Msec(1), [&]() { order.push_back(1); });
  ss.shard(0).At(sim::Msec(3), [&]() { order.push_back(3); });
  ss.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // The engine's clock parks at the final epoch barrier, at most one window
  // past the last event.
  EXPECT_GE(ss.now(), sim::Msec(3));
  EXPECT_LE(ss.now(), sim::Msec(3) + sim::Usec(100));
}

TEST(ShardedSimTest, CrossShardMailDeliversAtStampedTime) {
  sim::ShardedSim ss({.shards = 2, .workers = 2, .window = sim::Usec(200)});
  sim::Time delivered_at = -1;
  ss.shard(0).At(sim::Msec(1), [&]() {
    // Shard 0 sends to shard 1 with 250us latency (>= window).
    ss.Post(1, sim::Msec(1) + sim::Usec(250), [&]() { delivered_at = ss.shard(1).now(); });
  });
  ss.Run();
  EXPECT_EQ(delivered_at, sim::Msec(1) + sim::Usec(250));
}

TEST(ShardedSimTest, CallOnLandsWithinOneWindow) {
  sim::ShardedSim ss({.shards = 4, .workers = 2, .window = sim::Usec(200)});
  sim::Time sent_at = 0;
  sim::Time applied_at = -1;
  ss.shard(0).At(sim::Msec(5), [&]() {
    sent_at = ss.shard(0).now();
    ss.CallOn(3, [&]() { applied_at = ss.shard(3).now(); });
  });
  // Keep shard 3 alive past the barrier so the mail can fire.
  ss.shard(3).At(sim::Msec(6), []() {});
  ss.Run();
  ASSERT_GE(applied_at, sent_at);
  EXPECT_LE(applied_at - sent_at, sim::Usec(200));
}

TEST(ShardedSimTest, BroadcastReachesEveryShard) {
  sim::ShardedSim ss({.shards = 4, .workers = 4, .window = sim::Usec(200)});
  std::vector<int> hits;
  ss.shard(1).At(sim::Msec(1), [&]() {
    ss.Broadcast([&](int shard) {
      // Runs on each shard at the barrier; record under the engine's own
      // determinism guarantee (one worker per shard, but hits is shared —
      // serialize by funnelling through shard 0 mail).
      ss.Post(0, ss.shard(shard).now() + sim::Usec(200), [&hits, shard]() { hits.push_back(shard); });
    });
  });
  ss.shard(0).At(sim::Msec(2), []() {});
  ss.Run();
  EXPECT_EQ(hits, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedSimTest, RunUntilAdvancesAllClocks) {
  sim::ShardedSim ss({.shards = 3, .workers = 1, .window = sim::Usec(200)});
  int fired = 0;
  ss.shard(1).At(sim::Msec(1), [&]() { ++fired; });
  ss.shard(2).At(sim::Msec(9), [&]() { ++fired; });
  ss.RunUntil(sim::Msec(4));
  EXPECT_EQ(fired, 1);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(ss.shard(s).now(), sim::Msec(4));
  }
  ss.RunUntil(sim::Msec(10));
  EXPECT_EQ(fired, 2);
}

// The determinism workload: a ring of shards exchanging timestamped messages
// with per-shard RNG streams, self-rescheduling local work, and cross-shard
// sends at latencies >= the window. Records a full (shard, time, tag) trace.
std::string RingTrace(int shards, int workers, std::uint64_t seed) {
  sim::ShardedSim ss(
      {.shards = shards, .workers = workers, .window = sim::Usec(200)});
  std::ostringstream trace;
  // One recorder per shard, merged at the end in shard order, so recording
  // itself is race-free under any worker count.
  std::vector<std::ostringstream> per_shard(static_cast<std::size_t>(shards));
  std::vector<sim::Rng> rngs;
  std::vector<std::int64_t> credits(static_cast<std::size_t>(shards), 40);
  rngs.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    rngs.emplace_back(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s + 1)));
  }
  std::function<void(int, int)> hop = [&](int shard, int hops) {
    auto& rec = per_shard[static_cast<std::size_t>(shard)];
    rec << shard << ":" << ss.shard(shard).now() << ":" << hops << "\n";
    if (hops <= 0 || credits[static_cast<std::size_t>(shard)]-- <= 0) {
      return;
    }
    auto& rng = rngs[static_cast<std::size_t>(shard)];
    // Local follow-up work inside the window.
    const sim::Duration local = sim::Nsec(rng.UniformInt(10, 50'000));
    ss.shard(shard).After(local, [&hop, shard, hops]() { hop(shard, hops - 1); });
    // Cross-shard message to the next ring member, latency >= window.
    const int dst = (shard + 1) % ss.shards();
    const sim::Duration latency = sim::Usec(200) + sim::Nsec(rng.UniformInt(0, 300'000));
    ss.Post(dst, ss.shard(shard).now() + latency,
            [&hop, dst, hops]() { hop(dst, hops - 1); });
  };
  for (int s = 0; s < shards; ++s) {
    const int shard = s;
    ss.shard(shard).At(sim::Usec(10 * (s + 1)), [&hop, shard]() { hop(shard, 12); });
  }
  ss.Run();
  for (int s = 0; s < shards; ++s) {
    trace << per_shard[static_cast<std::size_t>(s)].str();
  }
  return trace.str();
}

TEST(ShardedSimTest, TraceIdenticalAcrossWorkerCounts) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const std::string w1 = RingTrace(8, 1, seed);
    ASSERT_FALSE(w1.empty());
    for (int workers : {2, 4, 8}) {
      EXPECT_EQ(w1, RingTrace(8, workers, seed))
          << "divergence at workers=" << workers << " seed=" << seed;
    }
  }
}

TEST(ShardedSimTest, ReusesWorkerPoolAcrossRuns) {
  sim::ShardedSim ss({.shards = 4, .workers = 4, .window = sim::Usec(200)});
  // Atomic: the four shards' events run on distinct workers concurrently, so
  // a shared counter is the one thing here that is NOT shard-local state.
  std::atomic<int> fired{0};
  for (int round = 0; round < 5; ++round) {
    for (int s = 0; s < 4; ++s) {
      ss.shard(s).At(ss.shard(s).now() + sim::Msec(1), [&fired]() { ++fired; });
    }
    ss.Run();
  }
  EXPECT_EQ(fired.load(), 20);
}

TEST(SimulatorTest, SlabTrimReleasesBurstMemory) {
  sim::Simulator s;
  // Burst: a large batch of far-out timers, then cancel them all.
  std::vector<sim::TimerHandle> handles;
  constexpr int kBurst = 200'000;
  handles.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    handles.push_back(s.At(sim::Msec(100) + sim::Usec(i), []() {}));
  }
  const std::size_t peak = s.slab_capacity();
  ASSERT_GE(peak, static_cast<std::size_t>(kBurst));
  for (auto& h : handles) {
    h.Cancel();
  }
  // Churn schedule/cancel pairs past the trim probe stride so the trigger
  // (inside Free) fires with a small live set.
  for (int i = 0; i < 8192; ++i) {
    s.At(sim::Usec(i + 1), []() {}).Cancel();
  }
  EXPECT_LT(s.slab_capacity(), peak / 4) << "slab did not trim after burst";
  // The simulator stays fully functional after trimming (and re-grows).
  int fired = 0;
  for (int i = 0; i < 50'000; ++i) {
    s.At(sim::Usec(i + 1), [&fired]() { ++fired; });
  }
  s.Run();
  EXPECT_EQ(fired, 50'000);
  EXPECT_TRUE(s.AuditConsistency());
}

TEST(SimulatorTest, StaleHandleInertAfterTrimAndRegrow) {
  sim::Simulator s;
  std::vector<sim::TimerHandle> handles;
  for (int i = 0; i < 100'000; ++i) {
    handles.push_back(s.At(sim::Msec(10) + sim::Usec(i), []() {}));
  }
  // Keep handles to events in the high chunks, then cancel everything (the
  // cancels free the records; the trim drops the tail chunks).
  for (auto& h : handles) {
    h.Cancel();
  }
  for (int i = 0; i < 8192; ++i) {
    s.At(sim::Usec(i + 1), []() {}).Cancel();
  }
  // Re-grow and verify the stale handles cannot touch fresh events.
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    s.At(sim::Msec(20) + sim::Usec(i), [&fired]() { ++fired; });
  }
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    h.Cancel();  // Must be a no-op.
  }
  s.Run();
  EXPECT_EQ(fired, 100'000);
}

}  // namespace
