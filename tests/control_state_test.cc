// ControlState tests: epoch monotonicity, changelog records, desired-pool
// semantics (all-to-all vs assigned), instance scrubbing, and the flight-
// recorder mirror that makes the changelog replayable from a trace.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/control_state.h"
#include "src/sim/simulator.h"

namespace yoda {
namespace {

std::vector<rules::Rule> OneRule() {
  rules::Rule r;
  r.name = "r0";
  return {r};
}

TEST(ControlStateTest, EveryMutationBumpsTheEpochOnce) {
  sim::Simulator sim;
  ControlState state(&sim);
  EXPECT_EQ(state.epoch(), 0u);
  const net::IpAddr vip = net::MakeIp(10, 200, 0, 1);

  EXPECT_EQ(state.DefineVip(vip, 80, OneRule()), 1u);
  EXPECT_EQ(state.UpdateRules(vip, OneRule()), 2u);
  EXPECT_EQ(state.SetAssignments({{vip, {net::MakeIp(10, 1, 0, 1)}}}), 3u);
  EXPECT_EQ(state.NoteInstance(ChangeKind::kInstanceAdmitted, net::MakeIp(10, 1, 0, 2)), 4u);
  EXPECT_EQ(state.RemoveVip(vip), 5u);
  // Updating rules for an unknown VIP mutates nothing.
  EXPECT_EQ(state.UpdateRules(vip, OneRule()), 5u);
  EXPECT_EQ(state.changelog().size(), 5u);
}

TEST(ControlStateTest, DesiredPoolDistinguishesAllToAllFromAssigned) {
  sim::Simulator sim;
  ControlState state(&sim);
  const net::IpAddr vip = net::MakeIp(10, 200, 0, 1);
  const net::IpAddr a = net::MakeIp(10, 1, 0, 1);
  const net::IpAddr b = net::MakeIp(10, 1, 0, 2);
  state.DefineVip(vip, 80, OneRule());

  // Bootstrap: no assignment entry = all-to-all = contains every instance.
  EXPECT_EQ(state.DesiredPool(vip), nullptr);
  EXPECT_TRUE(state.PoolContains(vip, a));
  EXPECT_TRUE(state.PoolContains(vip, b));

  state.SetAssignments({{vip, {a}}});
  ASSERT_NE(state.DesiredPool(vip), nullptr);
  EXPECT_EQ(*state.DesiredPool(vip), (std::vector<net::IpAddr>{a}));
  EXPECT_TRUE(state.PoolContains(vip, a));
  EXPECT_FALSE(state.PoolContains(vip, b));

  state.RemoveVip(vip);
  EXPECT_FALSE(state.HasVip(vip));
  EXPECT_EQ(state.DesiredPool(vip), nullptr);
}

TEST(ControlStateTest, ScrubInstanceShrinksEveryPoolAndBumpsOnce) {
  sim::Simulator sim;
  ControlState state(&sim);
  const net::IpAddr vip1 = net::MakeIp(10, 200, 0, 1);
  const net::IpAddr vip2 = net::MakeIp(10, 200, 0, 2);
  const net::IpAddr dead = net::MakeIp(10, 1, 0, 1);
  const net::IpAddr ok = net::MakeIp(10, 1, 0, 2);
  state.DefineVip(vip1, 80, OneRule());
  state.DefineVip(vip2, 80, OneRule());
  state.SetAssignments({{vip1, {dead, ok}}, {vip2, {ok}}});
  const std::uint64_t before = state.epoch();

  const std::vector<net::IpAddr> affected = state.ScrubInstance(dead);
  EXPECT_EQ(affected, (std::vector<net::IpAddr>{vip1}));
  EXPECT_EQ(state.epoch(), before + 1);
  EXPECT_EQ(*state.DesiredPool(vip1), (std::vector<net::IpAddr>{ok}));
  EXPECT_EQ(*state.DesiredPool(vip2), (std::vector<net::IpAddr>{ok}));

  // Scrubbing an instance in no pool changes nothing.
  EXPECT_TRUE(state.ScrubInstance(dead).empty());
  EXPECT_EQ(state.epoch(), before + 1);
}

TEST(ControlStateTest, ChangelogMirrorsIntoFlightRecorder) {
  sim::Simulator sim;
  obs::FlightRecorder recorder;
  ControlState state(&sim, &recorder);
  const net::IpAddr vip = net::MakeIp(10, 200, 0, 1);
  state.DefineVip(vip, 80, OneRule());
  state.SetAssignments({{vip, {net::MakeIp(10, 1, 0, 1)}}});

  const auto& events = recorder.system_events();
  ASSERT_EQ(events.size(), 2u);
  for (const obs::TraceEvent& e : events) {
    EXPECT_EQ(e.type, obs::EventType::kConfigChange);
  }
  // detail packs (kind << 32) | epoch, so the changelog can be rebuilt from
  // a trace alone (tools/ctl_dump does exactly this).
  EXPECT_EQ(events[0].detail >> 32,
            static_cast<std::uint64_t>(ChangeKind::kVipDefined));
  EXPECT_EQ(events[0].detail & 0xffffffffULL, 1u);
  EXPECT_EQ(events[1].detail >> 32,
            static_cast<std::uint64_t>(ChangeKind::kAssignmentSet));
  EXPECT_EQ(events[1].detail & 0xffffffffULL, 2u);

  const auto& log = state.changelog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, ChangeKind::kVipDefined);
  EXPECT_EQ(log[0].epoch, 1u);
  EXPECT_EQ(log[1].kind, ChangeKind::kAssignmentSet);
  EXPECT_EQ(log[1].subject, vip);
}

}  // namespace
}  // namespace yoda
