// PipelineContext tests: the engines' shared context is exercised as a unit,
// away from YodaInstance — the Advance guard turns an illegal packet-driven
// FSM edge into the explicit kFlowReset path (counter bumped, RST emitted,
// flow state fully dropped) instead of undefined behavior, and CleanupFlow
// releases every side table a flow touches.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/pipeline.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/l4lb/fabric.h"
#include "src/net/network.h"
#include "src/obs/registry.h"

namespace yoda {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  net::Network network{&simulator, /*seed=*/1};
  l4lb::L4Fabric fabric{&simulator, &network, /*num_muxes=*/1};
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  std::unique_ptr<kv::ReplicatingClient> client;
  std::unique_ptr<TcpStore> store;
  std::unique_ptr<StoreSession> session;

  YodaInstanceConfig cfg;
  sim::Rng rng{7};
  CpuModel cpu{CpuCosts{}};
  bool failed = false;
  FlowTable flows{4};
  std::unordered_map<net::IpAddr, VipState> vips;
  std::unordered_map<net::IpAddr, bool> backend_health;
  std::unordered_map<net::IpAddr, int> backend_load;
  obs::Registry registry;
  PipelineCounters ctr;
  PipelineStageMetrics stage;
  PipelineContext pipe;

  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      servers.push_back(std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<kv::KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    client = std::make_unique<kv::ReplicatingClient>(&simulator, ptrs,
                                                     kv::ReplicatingClientConfig{});
    store = std::make_unique<TcpStore>(client.get());
    session = std::make_unique<StoreSession>(store.get(), &simulator);

    ctr.packets_tunneled = &registry.GetCounter("yoda.packets_tunneled");
    ctr.bad_transition_resets = &registry.GetCounter("yoda.bad_transition_resets");

    pipe.sim = &simulator;
    pipe.net = &network;
    pipe.fabric = &fabric;
    pipe.store = session.get();
    pipe.rng = &rng;
    pipe.cpu = &cpu;
    pipe.cfg = &cfg;
    pipe.self_ip = net::MakeIp(10, 1, 0, 1);
    pipe.failed = &failed;
    pipe.flows = &flows;
    pipe.vips = &vips;
    pipe.backend_health = &backend_health;
    pipe.backend_load = &backend_load;
    pipe.ctr = &ctr;
    pipe.stage = &stage;
  }

  FlowKey DefaultKey() {
    FlowKey k;
    k.vip = net::MakeIp(10, 200, 0, 1);
    k.vip_port = 80;
    k.client_ip = net::MakeIp(9, 0, 0, 1);
    k.client_port = 40'000;
    return k;
  }

  LocalFlow& MakeFlow(const FlowKey& key, FlowPhase phase) {
    LocalFlow& f = flows.Insert(key, std::make_unique<LocalFlow>(phase));
    f.st.vip = key.vip;
    f.st.vip_port = key.vip_port;
    f.st.client_ip = key.client_ip;
    f.st.client_port = key.client_port;
    return f;
  }
};

TEST_F(PipelineTest, AdvanceTakesLegalEdge) {
  const FlowKey key = DefaultKey();
  LocalFlow& f = MakeFlow(key, FlowPhase::kServerSynSent);
  EXPECT_TRUE(pipe.Advance(key, f, FlowPhase::kStorageBWait));
  EXPECT_EQ(f.phase(), FlowPhase::kStorageBWait);
  EXPECT_EQ(ctr.bad_transition_resets->value(), 0u);
  EXPECT_NE(flows.Find(key), nullptr);
}

TEST_F(PipelineTest, AdvanceIllegalEdgeResetsInsteadOfCorrupting) {
  // A server SYN-ACK arriving for a flow still assembling its client header
  // is an illegal kSynAckSent -> kEstablished edge: the pipeline must count
  // it, RST the client and drop the flow — and tell the caller to stop.
  const FlowKey key = DefaultKey();
  LocalFlow& f = MakeFlow(key, FlowPhase::kSynAckSent);
  f.st.lb_isn = 5'000;

  const std::uint64_t sent_before = network.stats().sent;
  EXPECT_FALSE(pipe.Advance(key, f, FlowPhase::kEstablished));
  EXPECT_EQ(ctr.bad_transition_resets->value(), 1u);
  EXPECT_EQ(flows.Find(key), nullptr);
  EXPECT_EQ(flows.size(), 0u);
  // The client got an explicit RST rather than a silent drop.
  EXPECT_EQ(network.stats().sent, sent_before + 1);
  simulator.Run();  // Any queued store removal settles without touching the flow.
}

TEST_F(PipelineTest, ResetFlowSurvivesMissingFlow) {
  // Resetting a key with no local state still RSTs the client (e.g. a
  // takeover miss after the lookup already dropped the placeholder).
  const FlowKey key = DefaultKey();
  const std::uint64_t sent_before = network.stats().sent;
  pipe.ResetFlowToClient(key, obs::FlowResetReason::kTakeoverMiss);
  EXPECT_EQ(network.stats().sent, sent_before + 1);
  EXPECT_EQ(flows.size(), 0u);
}

TEST_F(PipelineTest, CleanupReleasesServerIndexAndBackendLoad) {
  const FlowKey key = DefaultKey();
  LocalFlow& f = MakeFlow(key, FlowPhase::kEstablished);
  f.st.stage = FlowStage::kTunneling;
  f.st.backend_ip = net::MakeIp(10, 3, 0, 2);
  f.st.backend_port = 80;
  const net::FiveTuple server_side{f.st.backend_ip, key.vip, f.st.backend_port,
                                   key.client_port};
  flows.BindServer(server_side, key);
  fabric.RegisterSnat(server_side, pipe.self_ip);
  backend_load[f.st.backend_ip] = 1;

  const net::IpAddr backend = f.st.backend_ip;
  pipe.CleanupFlow(key, /*remove_from_store=*/true);
  EXPECT_EQ(flows.Find(key), nullptr);
  EXPECT_FALSE(flows.HasServer(server_side));
  EXPECT_EQ(backend_load[backend], 0);
  simulator.Run();
}

TEST_F(PipelineTest, CleanupConnectionPhaseFlowLeavesBackendLoadAlone) {
  const FlowKey key = DefaultKey();
  MakeFlow(key, FlowPhase::kSynAckSent);  // No backend selected yet.
  backend_load[net::MakeIp(10, 3, 0, 2)] = 1;
  pipe.CleanupFlow(key, /*remove_from_store=*/false);
  EXPECT_EQ(flows.Find(key), nullptr);
  EXPECT_EQ(backend_load[net::MakeIp(10, 3, 0, 2)], 1);
}

}  // namespace
}  // namespace yoda
