// ControlJournal durability tests (controller HA): serializer round-trips,
// snapshot + changelog-tail restore equivalence against the live state, open
// plans with applied-step markers, log truncation at a lost entry, and
// restore under a slow KV replica.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/control_journal.h"
#include "src/core/control_state.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/sim/simulator.h"

namespace yoda {
namespace {

rules::Rule FancyRule() {
  rules::Rule r;
  r.name = "api v2 (50%)";  // Spaces + specials: exercises percent-escaping.
  r.priority = 7;
  r.match.url_glob = "/api/*";
  r.match.host_glob = "example.com";
  r.match.header_name = "X-Canary";
  r.match.header_value_glob = "on";
  // cookie_name/cookie_value/method left unset: optionals must round-trip
  // as absent, not as empty strings.
  r.action.type = rules::ActionType::kWeightedSplit;
  r.action.backends.push_back(rules::Backend{net::MakeIp(10, 3, 0, 1), 8080, 1.0 / 3.0});
  r.action.backends.push_back(rules::Backend{net::MakeIp(10, 3, 0, 2), 80, 2.0 / 3.0});
  r.action.sticky_cookie = "session=sticky; Path=/";
  return r;
}

TEST(JournalSerializers, RuleRoundTripsExactly) {
  const rules::Rule r = FancyRule();
  const std::string line = ControlJournal::EncodeRule(r);
  const std::optional<rules::Rule> back = ControlJournal::DecodeRule(line);
  ASSERT_TRUE(back.has_value());
  // Re-encoding the decoded rule must be byte-identical — this catches any
  // field (weights included: %.17g) that failed to round-trip exactly.
  EXPECT_EQ(ControlJournal::EncodeRule(*back), line);
  EXPECT_EQ(back->name, r.name);
  EXPECT_EQ(back->match.host_glob, r.match.host_glob);
  EXPECT_FALSE(back->match.cookie_name.has_value());
  ASSERT_EQ(back->action.backends.size(), 2u);
  EXPECT_EQ(back->action.backends[0].weight, 1.0 / 3.0);
  EXPECT_EQ(back->action.sticky_cookie, r.action.sticky_cookie);
}

TEST(JournalSerializers, ChangeRoundTripsWithPayload) {
  DurableChange c;
  c.epoch = 42;
  c.at = sim::Msec(123);
  c.kind = ChangeKind::kVipDefined;
  c.subject = net::MakeIp(10, 200, 0, 1);
  c.detail = 1;
  c.port = 443;
  c.rules.push_back(FancyRule());
  const std::string text = ControlJournal::EncodeChange(c);
  const std::optional<DurableChange> back = ControlJournal::DecodeChange(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(ControlJournal::EncodeChange(*back), text);
  EXPECT_EQ(back->epoch, 42u);
  EXPECT_EQ(back->at, sim::Msec(123));
  EXPECT_EQ(back->kind, ChangeKind::kVipDefined);
  EXPECT_EQ(back->port, 443);
  ASSERT_EQ(back->rules.size(), 1u);
}

TEST(JournalSerializers, AssignmentChangeCarriesWholeRound) {
  DurableChange c;
  c.kind = ChangeKind::kAssignmentSet;
  c.epoch = 9;
  c.pools[net::MakeIp(10, 200, 0, 1)] = {net::MakeIp(10, 1, 0, 1), net::MakeIp(10, 1, 0, 2)};
  c.pools[net::MakeIp(10, 200, 0, 2)] = {net::MakeIp(10, 1, 0, 3)};
  const std::optional<DurableChange> back =
      ControlJournal::DecodeChange(ControlJournal::EncodeChange(c));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pools, c.pools);
}

TEST(JournalSerializers, PlanRoundTripsStepsAndStamps) {
  ExecPlan plan;
  plan.epoch = 17;
  plan.plan_id = 5;
  plan.fencing_token = 3;
  plan.staggered = true;
  plan.reason = "assignment rollout";
  plan.steps.push_back(
      {ExecStepKind::kInstallRules, net::MakeIp(10, 200, 0, 1), net::MakeIp(10, 1, 0, 1)});
  ExecStep pool_step;
  pool_step.kind = ExecStepKind::kProgramPool;
  pool_step.vip = net::MakeIp(10, 200, 0, 1);
  pool_step.pool = {net::MakeIp(10, 1, 0, 1), net::MakeIp(10, 1, 0, 2)};
  plan.steps.push_back(pool_step);
  ExecStep health;
  health.kind = ExecStepKind::kSetBackendHealth;
  health.instance = net::MakeIp(10, 3, 0, 1);
  health.healthy = false;
  plan.steps.push_back(health);
  plan.steps.push_back({ExecStepKind::kAwaitConvergence});

  const std::string text = ControlJournal::EncodePlan(plan);
  const std::optional<ExecPlan> back = ControlJournal::DecodePlan(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(ControlJournal::EncodePlan(*back), text);
  EXPECT_EQ(back->epoch, 17u);
  EXPECT_EQ(back->plan_id, 5u);
  EXPECT_EQ(back->fencing_token, 3u);
  EXPECT_TRUE(back->staggered);
  EXPECT_EQ(back->reason, "assignment rollout");
  ASSERT_EQ(back->steps.size(), 4u);
  EXPECT_EQ(back->steps[1].pool, pool_step.pool);
  EXPECT_FALSE(back->steps[2].healthy);
}

// ---------------------------------------------------------------------------
// Live journal -> restore equivalence.
// ---------------------------------------------------------------------------

class ControlJournalTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  std::vector<std::unique_ptr<kv::KvServer>> servers;
  std::unique_ptr<kv::ReplicatingClient> client;

  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      servers.push_back(
          std::make_unique<kv::KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<kv::KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    kv::ReplicatingClientConfig cfg;
    cfg.replicas = 2;
    client = std::make_unique<kv::ReplicatingClient>(&simulator, ptrs, cfg);
  }

  // Drives a live ControlState journaling through `journal` with a spread of
  // mutations; returns the state for comparison.
  std::unique_ptr<ControlState> DriveLiveState(ControlJournal& journal) {
    auto state = std::make_unique<ControlState>(&simulator);
    state->SetChangeSink(
        [&journal, s = state.get()](const DurableChange& c) { journal.OnChange(*s, c); });
    state->DefineVip(net::MakeIp(10, 200, 0, 1), 80, {FancyRule()});
    state->DefineVip(net::MakeIp(10, 200, 0, 2), 443, {FancyRule()});
    state->NoteInstance(ChangeKind::kInstanceAdmitted, net::MakeIp(10, 1, 0, 1));
    std::map<net::IpAddr, std::vector<net::IpAddr>> pools;
    pools[net::MakeIp(10, 200, 0, 1)] = {net::MakeIp(10, 1, 0, 1), net::MakeIp(10, 1, 0, 2)};
    pools[net::MakeIp(10, 200, 0, 2)] = {net::MakeIp(10, 1, 0, 2)};
    state->SetAssignments(pools);
    state->UpdateRules(net::MakeIp(10, 200, 0, 1), {FancyRule(), FancyRule()});
    state->NoteInstance(ChangeKind::kInstanceFailed, net::MakeIp(10, 1, 0, 2));
    state->ScrubInstance(net::MakeIp(10, 1, 0, 2));
    state->RemoveVip(net::MakeIp(10, 200, 0, 2));
    simulator.Run();  // Let every journal write land.
    return state;
  }

  RestoredControlPlane RestoreVia(ControlJournal& journal) {
    RestoredControlPlane out;
    bool done = false;
    journal.Restore([&](RestoredControlPlane r) {
      out = std::move(r);
      done = true;
    });
    simulator.Run();
    EXPECT_TRUE(done);
    return out;
  }

  static void ExpectStateEqual(const ControlState& a, const ControlState& b) {
    EXPECT_EQ(a.epoch(), b.epoch());
    EXPECT_EQ(a.assignment(), b.assignment());
    ASSERT_EQ(a.vips().size(), b.vips().size());
    for (const auto& [vip, desired] : a.vips()) {
      const ControlState::VipDesired* other = b.Desired(vip);
      ASSERT_NE(other, nullptr) << net::IpToString(vip);
      EXPECT_EQ(other->port, desired.port);
      ASSERT_EQ(other->rules.size(), desired.rules.size());
      for (std::size_t i = 0; i < desired.rules.size(); ++i) {
        EXPECT_EQ(ControlJournal::EncodeRule(other->rules[i]),
                  ControlJournal::EncodeRule(desired.rules[i]));
      }
    }
  }
};

TEST_F(ControlJournalTest, RestoreRebuildsLiveStateExactly) {
  ControlJournal journal(&simulator, client.get(), {/*snapshot_every=*/4});
  auto live = DriveLiveState(journal);
  EXPECT_GT(journal.stats().snapshots_written, 0u);

  const RestoredControlPlane restored = RestoreVia(journal);
  ASSERT_TRUE(restored.found);
  ControlState rebuilt(&simulator);
  rebuilt.LoadSnapshot(restored.epoch, restored.vips, restored.assignment);
  for (const DurableChange& c : restored.tail) {
    rebuilt.ApplyDurable(c);
  }
  ExpectStateEqual(*live, rebuilt);
}

TEST_F(ControlJournalTest, ChangelogReplayMatchesLiveSuffix) {
  // A cadence that does NOT divide the number of mutations DriveLiveState
  // makes, so the final snapshot leaves a non-empty tail to replay.
  ControlJournal journal(&simulator, client.get(), {/*snapshot_every=*/5});
  auto live = DriveLiveState(journal);

  const RestoredControlPlane restored = RestoreVia(journal);
  ASSERT_TRUE(restored.found);
  ControlState rebuilt(&simulator);
  rebuilt.LoadSnapshot(restored.epoch, restored.vips, restored.assignment);
  for (const DurableChange& c : restored.tail) {
    rebuilt.ApplyDurable(c);
  }
  // Replayed changelog records must equal the live changelog's records for
  // the same epochs — original epoch, timestamp, kind, subject and detail.
  ASSERT_FALSE(rebuilt.changelog().empty());
  std::map<std::uint64_t, std::vector<ChangeRecord>> live_by_epoch;
  for (const ChangeRecord& r : live->changelog()) {
    live_by_epoch[r.epoch].push_back(r);
  }
  std::map<std::uint64_t, std::vector<ChangeRecord>> replay_by_epoch;
  for (const ChangeRecord& r : rebuilt.changelog()) {
    replay_by_epoch[r.epoch].push_back(r);
  }
  for (const auto& [epoch, records] : replay_by_epoch) {
    const auto it = live_by_epoch.find(epoch);
    ASSERT_NE(it, live_by_epoch.end()) << "epoch " << epoch;
    ASSERT_EQ(it->second.size(), records.size()) << "epoch " << epoch;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].at, it->second[i].at);
      EXPECT_EQ(records[i].kind, it->second[i].kind);
      EXPECT_EQ(records[i].subject, it->second[i].subject);
      EXPECT_EQ(records[i].detail, it->second[i].detail);
    }
  }
}

TEST_F(ControlJournalTest, TightSnapshotCadenceShortensTheTail) {
  ControlJournal every1(&simulator, client.get(), {/*snapshot_every=*/1});
  DriveLiveState(every1);
  const RestoredControlPlane restored = RestoreVia(every1);
  ASSERT_TRUE(restored.found);
  // A snapshot after every change leaves nothing to replay.
  EXPECT_TRUE(restored.tail.empty());
}

TEST_F(ControlJournalTest, LostLogEntryTruncatesTheTailConsistently) {
  ControlJournal journal(&simulator, client.get(), {/*snapshot_every=*/100});
  auto live = DriveLiveState(journal);
  // Simulate a log write lost with the crashed leader: delete one entry in
  // the middle of the tail. Restore must stop at the gap — a shorter but
  // consistent prefix, never a state with a hole in its history.
  client->Delete("ctl/log/3", [](bool) {});
  simulator.Run();
  const RestoredControlPlane restored = RestoreVia(journal);
  ASSERT_TRUE(restored.found);
  for (const DurableChange& c : restored.tail) {
    EXPECT_LT(c.epoch, 3u);
  }
  EXPECT_LT(restored.epoch + restored.tail.size(), live->epoch());
}

TEST_F(ControlJournalTest, RestoreSurvivesSlowKvReplica) {
  ControlJournal journal(&simulator, client.get(), {/*snapshot_every=*/4});
  auto live = DriveLiveState(journal);
  servers[0]->set_response_delay(sim::Msec(15));  // Sick disk on one replica.
  servers[1]->set_response_delay(sim::Msec(5));
  const sim::Time before = simulator.now();
  const RestoredControlPlane restored = RestoreVia(journal);
  ASSERT_TRUE(restored.found);
  EXPECT_GT(simulator.now(), before);  // The slowness was actually paid.
  ControlState rebuilt(&simulator);
  rebuilt.LoadSnapshot(restored.epoch, restored.vips, restored.assignment);
  for (const DurableChange& c : restored.tail) {
    rebuilt.ApplyDurable(c);
  }
  ExpectStateEqual(*live, rebuilt);
}

TEST_F(ControlJournalTest, OpenPlansRestoreWithAppliedMarkers) {
  ControlJournal journal(&simulator, client.get(), {/*snapshot_every=*/4});
  DriveLiveState(journal);

  ExecPlan plan;
  plan.epoch = 3;
  plan.plan_id = journal.NextPlanId();
  plan.fencing_token = 1;
  plan.reason = "mid-flight rollout";
  plan.steps.push_back(
      {ExecStepKind::kInstallRules, net::MakeIp(10, 200, 0, 1), net::MakeIp(10, 1, 0, 1)});
  plan.steps.push_back(
      {ExecStepKind::kAddPoolMember, net::MakeIp(10, 200, 0, 1), net::MakeIp(10, 1, 0, 1)});
  plan.steps.push_back({ExecStepKind::kAwaitConvergence});
  plan.steps.push_back(
      {ExecStepKind::kRemovePoolMember, net::MakeIp(10, 200, 0, 1), net::MakeIp(10, 1, 0, 2)});
  journal.PutPlan(plan);
  journal.PutApplied(plan, plan.steps[0]);  // Crashed after the make phase...
  journal.PutApplied(plan, plan.steps[1]);  // ...with the break phase parked.

  ExecPlan finished = plan;
  finished.plan_id = journal.NextPlanId();
  journal.PutPlan(finished);
  journal.PutDone(finished);  // Completed plans must NOT be restored.
  simulator.Run();

  const RestoredControlPlane restored = RestoreVia(journal);
  ASSERT_TRUE(restored.found);
  EXPECT_EQ(restored.plan_seq, 2u);
  ASSERT_EQ(restored.open_plans.size(), 1u);
  const RestoredPlan& open = restored.open_plans[0];
  EXPECT_EQ(open.plan.plan_id, plan.plan_id);
  EXPECT_EQ(open.plan.fencing_token, 1u);
  ASSERT_EQ(open.plan.steps.size(), 4u);
  EXPECT_EQ(open.applied.size(), 2u);
  EXPECT_TRUE(open.applied.contains(ControlJournal::StepKey(plan.steps[0])));
  EXPECT_TRUE(open.applied.contains(ControlJournal::StepKey(plan.steps[1])));
  EXPECT_FALSE(open.applied.contains(ControlJournal::StepKey(plan.steps[3])));
}

TEST_F(ControlJournalTest, EmptyStoreRestoresCold) {
  ControlJournal journal(&simulator, client.get(), {});
  const RestoredControlPlane restored = RestoreVia(journal);
  EXPECT_FALSE(restored.found);
  EXPECT_TRUE(restored.open_plans.empty());
}

}  // namespace
}  // namespace yoda
