// UpdatePlanner edge cases and the make-before-break ordering contract
// (paper §4.5): empty previous assignments, VIPs disappearing between
// rounds, pre-overloaded fleets, and a property check that ExecutionOrder
// always yields a valid make-before-break sequence with adds preceding
// removes for every VIP.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/assign/update_planner.h"
#include "src/core/assignment_engine.h"
#include "src/sim/random.h"

namespace assign {
namespace {

Problem TwoVipProblem() {
  Problem p;
  p.max_instances = 4;
  p.traffic_capacity = 1.0;
  p.vips.push_back({/*id=*/1, /*traffic=*/0.4, /*rules=*/10, /*replicas=*/2, /*failures=*/0});
  p.vips.push_back({/*id=*/2, /*traffic=*/0.4, /*rules=*/10, /*replicas=*/2, /*failures=*/0});
  return p;
}

TEST(UpdatePlannerEdge, EmptyOldAssignmentIsAddsOnlyWithoutBarrier) {
  Problem p = TwoVipProblem();
  Assignment old_a;  // Nothing programmed yet (bootstrap round).
  old_a.vip_instances.resize(p.vips.size());
  Assignment new_a;
  new_a.vip_instances = {{0, 1}, {2, 3}};

  const UpdatePlan plan = PlanUpdate(p, old_a, new_a);
  ASSERT_EQ(plan.deltas.size(), 2u);
  for (const VipDelta& d : plan.deltas) {
    EXPECT_EQ(d.added_instances.size(), 2u);
    EXPECT_TRUE(d.removed_instances.empty());
  }
  EXPECT_EQ(plan.migrated_fraction, 0.0);
  EXPECT_EQ(plan.instances_before, 0);

  // Adds-only: no transient window, so no convergence barrier is emitted.
  const std::vector<PlanStep> steps = ExecutionOrder(plan);
  for (const PlanStep& s : steps) {
    EXPECT_NE(s.kind, PlanStepKind::kAwaitConvergence);
    EXPECT_NE(s.kind, PlanStepKind::kRemovePoolMember);
    EXPECT_NE(s.kind, PlanStepKind::kScrubRules);
  }
  EXPECT_TRUE(IsMakeBeforeBreak(steps));
}

TEST(UpdatePlannerEdge, VipRemovedBetweenRoundsDoesNotPoisonAlignment) {
  // Round 1 solves for VIPs {1, 2}; VIP 1 disappears before round 2. The
  // engine aligns the remembered previous assignment BY VIP ID, so VIP 2
  // keeps its continuity row and the vanished VIP contributes no deltas.
  yoda::AssignmentEngine engine;
  Problem p1 = TwoVipProblem();
  const auto r1 = engine.PlanRound(p1, /*limit_transient=*/true, /*limit_migration=*/true);
  ASSERT_TRUE(r1.feasible);

  Problem p2;
  p2.max_instances = 4;
  p2.traffic_capacity = 1.0;
  p2.vips.push_back(p1.vips[1]);  // Only VIP id 2 survives.
  const auto r2 = engine.PlanRound(p2, true, true);
  ASSERT_TRUE(r2.feasible);
  for (const VipDelta& d : r2.plan.deltas) {
    EXPECT_EQ(d.vip_id, 2);  // No delta may reference the removed VIP.
  }
  // Continuity: VIP 2 did not need to move, so nothing migrated.
  EXPECT_EQ(r2.plan.migrated_fraction, 0.0);
  EXPECT_TRUE(r2.plan.deltas.empty());
}

TEST(UpdatePlannerEdge, AllInstancesPreOverloadedAreReported) {
  Problem p;
  p.max_instances = 2;
  p.traffic_capacity = 1.0;
  // Each VIP alone exceeds one instance's capacity.
  p.vips.push_back({1, 1.6, 10, 1, 0});
  p.vips.push_back({2, 1.6, 10, 1, 0});
  Assignment old_a;
  old_a.vip_instances = {{0}, {1}};
  Assignment new_a;
  new_a.vip_instances = {{1}, {0}};

  const UpdatePlan plan = PlanUpdate(p, old_a, new_a);
  EXPECT_EQ(plan.pre_overloaded_instances, (std::vector<int>{0, 1}));
  // The swap makes the transient union worse, never better.
  EXPECT_EQ(plan.overloaded_instances, (std::vector<int>{0, 1}));
}

TEST(UpdatePlannerProperty, ExecutionOrderAddsPrecedeRemovesPerVip) {
  sim::Rng rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    const int vips = static_cast<int>(rng.UniformInt(1, 5));
    const int instances = static_cast<int>(rng.UniformInt(2, 7));
    Problem p;
    p.max_instances = instances;
    Assignment old_a;
    Assignment new_a;
    for (int v = 0; v < vips; ++v) {
      p.vips.push_back({v + 1, 0.1, 1, 1, 0});
      std::vector<int> old_row;
      std::vector<int> new_row;
      for (int y = 0; y < instances; ++y) {
        if (rng.UniformInt(0, 1) == 0) {
          old_row.push_back(y);
        }
        if (rng.UniformInt(0, 1) == 0) {
          new_row.push_back(y);
        }
      }
      old_a.vip_instances.push_back(old_row);
      new_a.vip_instances.push_back(new_row);
    }
    const UpdatePlan plan = PlanUpdate(p, old_a, new_a);
    const std::vector<PlanStep> steps = ExecutionOrder(plan);
    ASSERT_TRUE(IsMakeBeforeBreak(steps)) << "iter " << iter;

    // Property: for any VIP, every add-side step precedes every remove-side
    // step (strict make-before-break per VIP, not just globally).
    std::map<int, std::size_t> last_add;
    std::map<int, std::size_t> first_remove;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const PlanStep& s = steps[i];
      if (s.kind == PlanStepKind::kInstallRules || s.kind == PlanStepKind::kAddPoolMember) {
        last_add[s.vip_id] = i;
      }
      if ((s.kind == PlanStepKind::kRemovePoolMember || s.kind == PlanStepKind::kScrubRules) &&
          !first_remove.contains(s.vip_id)) {
        first_remove[s.vip_id] = i;
      }
    }
    for (const auto& [vip, add_at] : last_add) {
      auto it = first_remove.find(vip);
      if (it != first_remove.end()) {
        EXPECT_LT(add_at, it->second) << "vip " << vip << " iter " << iter;
      }
    }
  }
}

TEST(UpdatePlannerProperty, IsMakeBeforeBreakRejectsViolations) {
  // Pooled before rules.
  EXPECT_FALSE(IsMakeBeforeBreak({{PlanStepKind::kAddPoolMember, 1, 0}}));
  // Remove overlapping un-converged adds (no barrier).
  EXPECT_FALSE(IsMakeBeforeBreak({{PlanStepKind::kInstallRules, 1, 0},
                                  {PlanStepKind::kAddPoolMember, 1, 0},
                                  {PlanStepKind::kRemovePoolMember, 1, 1}}));
  // Scrubbing rules a pool still routes to.
  EXPECT_FALSE(IsMakeBeforeBreak({{PlanStepKind::kInstallRules, 1, 0},
                                  {PlanStepKind::kAddPoolMember, 1, 0},
                                  {PlanStepKind::kScrubRules, 1, 0}}));
  // A barrier with nothing to fence.
  EXPECT_FALSE(IsMakeBeforeBreak({{PlanStepKind::kAwaitConvergence, 0, 0}}));
  // The canonical valid sequence.
  EXPECT_TRUE(IsMakeBeforeBreak({{PlanStepKind::kInstallRules, 1, 0},
                                 {PlanStepKind::kAddPoolMember, 1, 0},
                                 {PlanStepKind::kAwaitConvergence, 0, 0},
                                 {PlanStepKind::kRemovePoolMember, 1, 1},
                                 {PlanStepKind::kScrubRules, 1, 1}}));
}

}  // namespace
}  // namespace assign
