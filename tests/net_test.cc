// Unit tests for packets, sequence arithmetic, the wire codec and the fabric.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/wire.h"
#include "src/sim/random.h"

namespace net {
namespace {

TEST(IpAddr, MakeAndFormat) {
  IpAddr ip = MakeIp(10, 1, 0, 7);
  EXPECT_EQ(ip, 0x0a010007u);
  EXPECT_EQ(IpToString(ip), "10.1.0.7");
  EXPECT_EQ(IpToString(MakeIp(255, 255, 255, 255)), "255.255.255.255");
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t{MakeIp(1, 2, 3, 4), MakeIp(5, 6, 7, 8), 100, 200};
  FiveTuple r = t.Reversed();
  EXPECT_EQ(r.src, t.dst);
  EXPECT_EQ(r.dst, t.src);
  EXPECT_EQ(r.sport, t.dport);
  EXPECT_EQ(r.dport, t.sport);
  EXPECT_EQ(r.Reversed(), t);
}

TEST(FiveTuple, HashDistinguishesPorts) {
  FiveTupleHash h;
  FiveTuple a{1, 2, 10, 20};
  FiveTuple b{1, 2, 10, 21};
  EXPECT_NE(h(a), h(b));
}

TEST(Packet, FlagsAndSeqSpace) {
  Packet p;
  p.flags = kSyn;
  EXPECT_TRUE(p.syn());
  EXPECT_FALSE(p.ack_flag());
  EXPECT_EQ(p.SeqSpace(), 1u);
  p.flags = kFin | kAck;
  p.payload = "abc";
  EXPECT_EQ(p.SeqSpace(), 4u);
  p.flags = kAck;
  EXPECT_EQ(p.SeqSpace(), 3u);
}

TEST(SeqArithmetic, HandlesWraparound) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // Wrapped comparison.
  EXPECT_TRUE(SeqGt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLeq(5u, 5u));
  EXPECT_TRUE(SeqGeq(5u, 5u));
  EXPECT_FALSE(SeqLt(5u, 5u));
  EXPECT_TRUE(SeqLt(1u, 2u));
}

TEST(PacketFactories, SynSynAckAckRst) {
  Packet syn = MakeSyn(1, 10, 2, 80, 1000);
  EXPECT_TRUE(syn.syn());
  EXPECT_FALSE(syn.ack_flag());
  EXPECT_EQ(syn.seq, 1000u);

  Packet synack = MakeSynAck(syn, 5000);
  EXPECT_TRUE(synack.syn());
  EXPECT_TRUE(synack.ack_flag());
  EXPECT_EQ(synack.ack, 1001u);
  EXPECT_EQ(synack.src, syn.dst);
  EXPECT_EQ(synack.dport, syn.sport);

  Packet ack = MakeAck(1, 10, 2, 80, 1001, 5001);
  EXPECT_TRUE(ack.ack_flag());
  EXPECT_FALSE(ack.syn());

  Packet rst = MakeRst(syn);
  EXPECT_TRUE(rst.rst());
  EXPECT_EQ(rst.dst, syn.src);
}

TEST(Wire, RoundTripPlainPacket) {
  Packet p;
  p.src = MakeIp(10, 0, 0, 1);
  p.dst = MakeIp(10, 0, 0, 2);
  p.sport = 12345;
  p.dport = 80;
  p.seq = 0xdeadbeef;
  p.ack = 0xfeedface;
  p.flags = kAck | kPsh;
  p.window = 4096;
  p.payload = "GET / HTTP/1.0\r\n\r\n";
  auto bytes = SerializePacket(p);
  std::string error;
  auto parsed = ParsePacket(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->src, p.src);
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->sport, p.sport);
  EXPECT_EQ(parsed->dport, p.dport);
  EXPECT_EQ(parsed->seq, p.seq);
  EXPECT_EQ(parsed->ack, p.ack);
  EXPECT_EQ(parsed->flags, p.flags);
  EXPECT_EQ(parsed->window, p.window);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Wire, RoundTripEmptyPayload) {
  Packet p = MakeSyn(MakeIp(1, 1, 1, 1), 1, MakeIp(2, 2, 2, 2), 2, 42);
  auto parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, "");
  EXPECT_TRUE(parsed->syn());
}

TEST(Wire, DetectsCorruptedPayload) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload = "hello world";
  auto bytes = SerializePacket(p);
  bytes[45] ^= 0xff;  // Flip a payload byte.
  std::string error;
  EXPECT_FALSE(ParsePacket(bytes, &error).has_value());
  EXPECT_EQ(error, "bad TCP checksum");
}

TEST(Wire, DetectsCorruptedIpHeader) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  auto bytes = SerializePacket(p);
  bytes[12] ^= 0x01;  // Source IP byte.
  std::string error;
  EXPECT_FALSE(ParsePacket(bytes, &error).has_value());
  EXPECT_EQ(error, "bad IPv4 header checksum");
}

TEST(Wire, RejectsTruncatedDatagram) {
  std::vector<std::uint8_t> bytes(10, 0);
  std::string error;
  EXPECT_FALSE(ParsePacket(bytes, &error).has_value());
  EXPECT_EQ(error, "datagram too short");
}

TEST(Wire, RejectsLengthMismatch) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload = "abc";
  auto bytes = SerializePacket(p);
  bytes.push_back(0);  // Trailing garbage.
  std::string error;
  EXPECT_FALSE(ParsePacket(bytes, &error).has_value());
  EXPECT_EQ(error, "IP total length mismatch");
}

TEST(Wire, ChecksumOfZeroesIsAllOnes) {
  std::uint8_t zeroes[8] = {0};
  EXPECT_EQ(InternetChecksum(zeroes, 8), 0xffff);
}

// Property: random packets round-trip byte-exactly through the wire codec.
class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, RandomPacketRoundTrip) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  Packet p;
  p.src = static_cast<IpAddr>(rng.UniformInt(0, 0xffffffffLL));
  p.dst = static_cast<IpAddr>(rng.UniformInt(0, 0xffffffffLL));
  p.sport = static_cast<Port>(rng.UniformInt(0, 65535));
  p.dport = static_cast<Port>(rng.UniformInt(0, 65535));
  p.seq = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  p.ack = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  p.flags = static_cast<std::uint8_t>(rng.UniformInt(0, 31));
  p.window = static_cast<std::uint16_t>(rng.UniformInt(0, 65535));
  const auto len = static_cast<std::size_t>(rng.UniformInt(0, 1400));
  std::string bytes;
  bytes.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  p.payload = std::move(bytes);
  auto parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, p.src);
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->sport, p.sport);
  EXPECT_EQ(parsed->dport, p.dport);
  EXPECT_EQ(parsed->seq, p.seq);
  EXPECT_EQ(parsed->ack, p.ack);
  EXPECT_EQ(parsed->flags, p.flags);
  EXPECT_EQ(parsed->payload, p.payload);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, WireFuzz, ::testing::Range(0, 20));

TEST(Wire, EverySingleByteFlipIsDetected) {
  Packet p;
  p.src = MakeIp(10, 0, 0, 1);
  p.dst = MakeIp(10, 0, 0, 2);
  p.sport = 1234;
  p.dport = 80;
  p.seq = 42;
  p.flags = kAck | kPsh;
  p.payload = "integrity matters";
  const auto bytes = SerializePacket(p);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x01;
    auto parsed = ParsePacket(corrupted);
    // Either rejected outright, or (for non-covered fields like TTL) the
    // parse differs... but our codec covers everything with one of the two
    // checksums, so every flip must be caught.
    EXPECT_FALSE(parsed.has_value()) << "flip at byte " << i << " went undetected";
  }
}

TEST(Wire, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.Str("hello");
  auto data = w.Take();
  ByteReader r(data);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.U8().has_value());  // Past the end.
}

// ---------------------------------------------------------------------------
// Network fabric.
// ---------------------------------------------------------------------------

class Collector : public Node {
 public:
  void HandlePacket(const Packet& p) override { received.push_back(p); }
  std::vector<Packet> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  Network network{&simulator, 99};
  Collector a, b;
  const IpAddr ip_a = MakeIp(10, 0, 0, 1);
  const IpAddr ip_b = MakeIp(10, 0, 0, 2);

  void SetUp() override {
    network.Attach(ip_a, &a);
    network.Attach(ip_b, &b);
  }

  Packet PacketAB() {
    Packet p;
    p.src = ip_a;
    p.dst = ip_b;
    p.payload = "x";
    return p;
  }
};

TEST_F(NetworkTest, DeliversToAttachedNode) {
  network.Send(PacketAB());
  simulator.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].payload, "x");
  EXPECT_EQ(network.stats().delivered, 1u);
}

TEST_F(NetworkTest, AppliesRegionLatency) {
  network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Msec(5), 0);
  sim::Time delivered_at = -1;
  network.set_tap([&delivered_at](sim::Time t, const Packet&) { delivered_at = t; });
  network.Send(PacketAB());
  simulator.Run();
  EXPECT_EQ(delivered_at, sim::Msec(5));
}

TEST_F(NetworkTest, CrossRegionLatencyDiffers) {
  Collector c;
  const IpAddr ip_c = MakeIp(10, 9, 0, 1);
  network.Attach(ip_c, &c, Region::kInternet);
  network.SetLatency(Region::kDatacenter, Region::kInternet, sim::Msec(33), 0);
  network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Usec(250), 0);
  Packet p = PacketAB();
  p.dst = ip_c;
  network.Send(std::move(p));
  simulator.Run();
  EXPECT_EQ(simulator.now(), sim::Msec(33));
}

TEST_F(NetworkTest, DownNodeBlackholes) {
  network.SetNodeDown(ip_b, true);
  network.Send(PacketAB());
  simulator.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.stats().dropped_down, 1u);
  network.SetNodeDown(ip_b, false);
  network.Send(PacketAB());
  simulator.Run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, UnroutableDropsSilently) {
  Packet p = PacketAB();
  p.dst = MakeIp(99, 99, 99, 99);
  network.Send(std::move(p));
  simulator.Run();
  EXPECT_EQ(network.stats().dropped_unroutable, 1u);
}

TEST_F(NetworkTest, LossRateDropsApproximately) {
  network.set_loss_rate(0.5);
  for (int i = 0; i < 2000; ++i) {
    network.Send(PacketAB());
  }
  simulator.Run();
  EXPECT_NEAR(static_cast<double>(b.received.size()), 1000, 120);
}

TEST_F(NetworkTest, EncapRoutesOnOuterDestination) {
  Packet p = PacketAB();
  p.encap_dst = ip_a;  // Inner dst is b, outer says deliver to a.
  network.Send(std::move(p));
  simulator.Run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received[0].dst, ip_b);  // Inner header preserved.
}

TEST_F(NetworkTest, DetachMakesUnroutable) {
  network.Detach(ip_b);
  EXPECT_FALSE(network.IsAttached(ip_b));
  network.Send(PacketAB());
  simulator.Run();
  EXPECT_EQ(network.stats().dropped_unroutable, 1u);
}

TEST_F(NetworkTest, TraceIdsAssignedMonotonically) {
  network.Send(PacketAB());
  network.Send(PacketAB());
  simulator.Run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_LT(b.received[0].trace_id, b.received[1].trace_id);
}

// ---------------------------------------------------------------------------
// RNG draw contract + restart semantics.
// ---------------------------------------------------------------------------

// A no-op fault observer: never drops, never delays, draws nothing.
class NoOpFaultObserver : public FaultObserver {
 public:
  FaultVerdict OnSend(const Packet&, IpAddr) override { return FaultVerdict{}; }
};

// Regression for the determinism contract (network.h): the network's own RNG
// draws are conditional — loss only when loss_rate_ > 0, jitter only when the
// region pair's jitter > 0 — so installing a fault observer that never drops
// or delays anything must leave a same-seed run's delivery times bit-identical.
TEST(NetworkDeterminism, NoOpFaultObserverLeavesDeliveryTimesIdentical) {
  auto run = [](bool with_hook) {
    sim::Simulator simulator;
    Network network(&simulator, 2024);
    Collector a, b;
    network.Attach(MakeIp(10, 0, 0, 1), &a);
    network.Attach(MakeIp(10, 0, 0, 2), &b);
    // Jitter > 0 and loss > 0: both conditional draws are live.
    network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Usec(250),
                       sim::Usec(100));
    network.set_loss_rate(0.1);
    NoOpFaultObserver noop;
    if (with_hook) {
      network.set_fault_observer(&noop);
    }
    std::vector<sim::Time> times;
    network.set_tap([&times](sim::Time t, const Packet&) { times.push_back(t); });
    for (int i = 0; i < 200; ++i) {
      Packet p;
      p.src = MakeIp(10, 0, 0, 1);
      p.dst = MakeIp(10, 0, 0, 2);
      p.payload = "x";
      network.Send(std::move(p));
    }
    simulator.Run();
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

// A node with volatile state, for restart-semantics tests.
class StatefulNode : public Node {
 public:
  void HandlePacket(const Packet&) override { ++packets; }
  void OnColdRestart() override {
    packets = 0;
    ++cold_restarts;
  }
  int packets = 0;
  int cold_restarts = 0;
};

TEST(NetworkRestart, WarmReviveKeepsNodeState) {
  sim::Simulator simulator;
  Network network(&simulator, 7);
  StatefulNode node;
  Collector peer;
  const IpAddr ip = MakeIp(10, 0, 0, 9);
  network.Attach(ip, &node);
  network.Attach(MakeIp(10, 0, 0, 1), &peer);

  Packet p;
  p.src = MakeIp(10, 0, 0, 1);
  p.dst = ip;
  network.Send(Packet(p));
  simulator.Run();
  ASSERT_EQ(node.packets, 1);

  network.SetNodeDown(ip, true);
  EXPECT_TRUE(network.IsDown(ip));
  network.SetNodeDown(ip, false);  // Warm revive: healed partition.
  EXPECT_FALSE(network.IsDown(ip));
  EXPECT_EQ(node.packets, 1);        // State intact.
  EXPECT_EQ(node.cold_restarts, 0);  // No reboot happened.

  network.Send(std::move(p));
  simulator.Run();
  EXPECT_EQ(node.packets, 2);
}

TEST(NetworkRestart, ColdRestartClearsStateAndRevives) {
  sim::Simulator simulator;
  Network network(&simulator, 7);
  StatefulNode node;
  Collector peer;
  const IpAddr ip = MakeIp(10, 0, 0, 9);
  network.Attach(ip, &node);
  network.Attach(MakeIp(10, 0, 0, 1), &peer);

  Packet p;
  p.src = MakeIp(10, 0, 0, 1);
  p.dst = ip;
  network.Send(Packet(p));
  simulator.Run();
  ASSERT_EQ(node.packets, 1);

  network.SetNodeDown(ip, true);
  network.RestartNode(ip);  // Cold: rebooted VM, volatile state gone.
  EXPECT_FALSE(network.IsDown(ip));
  EXPECT_EQ(node.packets, 0);
  EXPECT_EQ(node.cold_restarts, 1);

  network.Send(std::move(p));  // The attachment survived the reboot.
  simulator.Run();
  EXPECT_EQ(node.packets, 1);
}

TEST(NetworkRestart, RestartOfUnattachedAddressIsNoOp) {
  sim::Simulator simulator;
  Network network(&simulator, 7);
  network.RestartNode(MakeIp(99, 0, 0, 1));  // Must not crash.
  EXPECT_FALSE(network.IsDown(MakeIp(99, 0, 0, 1)));
}

TEST(NetworkProbe, ProbePathSeesDownAndHookButDrawsNothing) {
  sim::Simulator simulator;
  Network network(&simulator, 11);
  Collector a, b;
  const IpAddr ip_a = MakeIp(10, 0, 0, 1);
  const IpAddr ip_b = MakeIp(10, 0, 0, 2);
  network.Attach(ip_a, &a);
  network.Attach(ip_b, &b);

  EXPECT_TRUE(network.ProbePath(ip_a, ip_b));
  EXPECT_FALSE(network.ProbePath(ip_a, MakeIp(99, 0, 0, 1)));  // Unattached.

  network.SetNodeDown(ip_b, true);
  EXPECT_FALSE(network.ProbePath(ip_a, ip_b));
  network.SetNodeDown(ip_b, false);

  // An observer that drops everything blinds the probe; probes are
  // kAck-shaped so a SYN-only filter does not.
  class SynFilter : public FaultObserver {
   public:
    FaultVerdict OnSend(const Packet& p, IpAddr) override {
      return FaultVerdict{/*drop=*/p.syn() && !p.ack_flag(), 0};
    }
  } syn_filter;
  class DropAll : public FaultObserver {
   public:
    FaultVerdict OnSend(const Packet&, IpAddr) override { return FaultVerdict{true, 0}; }
  } drop_all;
  network.set_fault_observer(&syn_filter);
  EXPECT_TRUE(network.ProbePath(ip_a, ip_b));
  network.set_fault_observer(&drop_all);
  EXPECT_FALSE(network.ProbePath(ip_a, ip_b));
}

// ---------------------------------------------------------------------------
// Packet pool.
// ---------------------------------------------------------------------------

TEST_F(NetworkTest, PacketPoolReusesSlotsAcrossDeliveries) {
  // Sequential sends never overlap in flight, so the pool should stabilize
  // at one slot and reuse it for every delivery.
  for (int i = 0; i < 100; ++i) {
    network.Send(PacketAB());
    simulator.Run();
  }
  EXPECT_EQ(b.received.size(), 100u);
  EXPECT_EQ(network.packet_pool_slots(), 1u);
  EXPECT_EQ(network.packets_in_flight(), 0u);
}

TEST_F(NetworkTest, PacketPoolGrowsToConcurrentInFlight) {
  for (int i = 0; i < 64; ++i) {
    network.Send(PacketAB());
  }
  EXPECT_EQ(network.packets_in_flight(), 64u);
  simulator.Run();
  // All slots returned after delivery; a second burst reuses them.
  EXPECT_EQ(network.packet_pool_slots(), 64u);
  EXPECT_EQ(network.packet_pool_free(), 64u);
  for (int i = 0; i < 64; ++i) {
    network.Send(PacketAB());
  }
  EXPECT_EQ(network.packet_pool_slots(), 64u);  // No growth.
  simulator.Run();
  EXPECT_EQ(network.packets_in_flight(), 0u);
}

TEST_F(NetworkTest, PacketPoolReturnsSlotOnEveryDropPath) {
  // Unroutable drop (decided at delivery time).
  Packet p = PacketAB();
  p.dst = MakeIp(99, 99, 99, 99);
  network.Send(std::move(p));
  simulator.Run();
  EXPECT_EQ(network.stats().dropped_unroutable, 1u);
  EXPECT_EQ(network.packets_in_flight(), 0u);

  // Down-node drop (decided at delivery time).
  network.SetNodeDown(ip_b, true);
  network.Send(PacketAB());
  simulator.Run();
  EXPECT_EQ(network.stats().dropped_down, 1u);
  EXPECT_EQ(network.packets_in_flight(), 0u);
  network.SetNodeDown(ip_b, false);

  // Loss drop (decided at send time).
  network.set_loss_rate(1.0);
  network.Send(PacketAB());
  EXPECT_EQ(network.stats().dropped_loss, 1u);
  EXPECT_EQ(network.packets_in_flight(), 0u);
  network.set_loss_rate(0.0);

  // Fault-observer drop (decided at send time).
  class DropAll : public FaultObserver {
   public:
    FaultVerdict OnSend(const Packet&, IpAddr) override { return FaultVerdict{true, 0}; }
  } drop_all;
  network.set_fault_observer(&drop_all);
  network.Send(PacketAB());
  EXPECT_EQ(network.stats().dropped_fault, 1u);
  EXPECT_EQ(network.packets_in_flight(), 0u);
  network.set_fault_observer(nullptr);

  simulator.Run();
  EXPECT_EQ(network.stats().delivered, 0u);
}

}  // namespace
}  // namespace net
