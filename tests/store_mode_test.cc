// Stateless fast path (signed SYN-cookie flow tokens): the cookie codec
// units (round-trip, forgery, stale epoch), the zero-synchronous-write
// contract, the scenario DSL's `store-mode` directive, and the Table 1 /
// Fig 12 takeover matrix parameterized over BOTH store modes plus a mid-run
// make-before-break flip.

#include <gtest/gtest.h>

#include <set>

#include "src/core/flow_state.h"
#include "src/workload/scenario.h"
#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::FetchResult;
using workload::Testbed;
using workload::TestbedConfig;

// --- cookie codec units -----------------------------------------------------

constexpr std::uint64_t kSecret = 0x59eda11c00c1e5ecULL;
constexpr net::IpAddr kVip = (10u << 24) | (200u << 16) | 1u;
constexpr net::IpAddr kClient = (10u << 24) | (2u << 16) | 7u;
constexpr net::IpAddr kBackend1 = (10u << 24) | (3u << 16) | 1u;
constexpr net::IpAddr kBackend2 = (10u << 24) | (3u << 16) | 2u;
constexpr net::Port kClientPort = 40'001;

FlowState TunnelingFlow() {
  FlowState st;
  st.stage = FlowStage::kTunneling;
  st.client_ip = kClient;
  st.client_port = kClientPort;
  st.vip = kVip;
  st.vip_port = 80;
  st.client_isn = 123'456;
  st.lb_isn = DeterministicLbIsn(kVip, 80, kClient, kClientPort);
  st.backend_ip = kBackend1;
  st.backend_port = 80;
  st.seq_delta_s2c = 777;
  st.server_isn = st.lb_isn - st.seq_delta_s2c;
  return st;
}

TEST(CookieCodec, RoundTripsTunnelingClaimsAndRebuildsFlowState) {
  const FlowState st = TunnelingFlow();
  const std::uint64_t cookie = MintFlowCookie(st, /*store_epoch=*/5, kSecret);
  ASSERT_NE(cookie, 0u);

  CookieClaims claims;
  ASSERT_EQ(DecodeCookie(cookie, kVip, 80, kClient, kClientPort, kSecret, 5, &claims),
            CookieVerdict::kOk);
  EXPECT_TRUE(claims.tunneling);
  EXPECT_EQ(claims.store_epoch, 5);
  EXPECT_EQ(claims.backend_id, 1);  // Last octet of 10.3.0.1.
  EXPECT_EQ(claims.offset, st.seq_delta_s2c);

  auto rebuilt = FlowStateFromCookie(claims, kVip, 80, kClient, kClientPort,
                                     {kBackend1, kBackend2}, 80);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->stage, FlowStage::kTunneling);
  EXPECT_EQ(rebuilt->backend_ip, st.backend_ip);
  EXPECT_EQ(rebuilt->lb_isn, st.lb_isn);
  EXPECT_EQ(rebuilt->server_isn, st.server_isn);
  EXPECT_EQ(rebuilt->seq_delta_s2c, st.seq_delta_s2c);
}

TEST(CookieCodec, EveryBitFlipIsRejected) {
  const std::uint64_t cookie = MintFlowCookie(TunnelingFlow(), 5, kSecret);
  CookieClaims claims;
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NE(DecodeCookie(cookie ^ (1ULL << bit), kVip, 80, kClient, kClientPort, kSecret, 5,
                           &claims),
              CookieVerdict::kOk)
        << "forged bit " << bit << " was accepted";
  }
}

TEST(CookieCodec, WrongIdentityOrSecretIsForged) {
  const std::uint64_t cookie = MintFlowCookie(TunnelingFlow(), 5, kSecret);
  CookieClaims claims;
  EXPECT_EQ(DecodeCookie(cookie, kVip, 80, kClient + 1, kClientPort, kSecret, 5, &claims),
            CookieVerdict::kBadMac);
  EXPECT_EQ(DecodeCookie(cookie, kVip, 80, kClient, kClientPort + 1, kSecret, 5, &claims),
            CookieVerdict::kBadMac);
  EXPECT_EQ(DecodeCookie(cookie, kVip + 1, 80, kClient, kClientPort, kSecret, 5, &claims),
            CookieVerdict::kBadMac);
  EXPECT_EQ(DecodeCookie(cookie, kVip, 80, kClient, kClientPort, kSecret ^ 1, 5, &claims),
            CookieVerdict::kBadMac);
  EXPECT_EQ(DecodeCookie(0, kVip, 80, kClient, kClientPort, kSecret, 5, &claims),
            CookieVerdict::kBadMac);
}

TEST(CookieCodec, CookieMintedBeforeModeFlipIsStaleNotForged) {
  const std::uint64_t cookie = MintFlowCookie(TunnelingFlow(), 5, kSecret);
  CookieClaims claims;
  // The VIP re-installed its store mode (epoch bumped): the MAC still
  // verifies, so the verdict distinguishes "stale" (fall back to the
  // journal) from "forged" (drop).
  EXPECT_EQ(DecodeCookie(cookie, kVip, 80, kClient, kClientPort, kSecret, 6, &claims),
            CookieVerdict::kStaleEpoch);
}

TEST(CookieCodec, ReSwitchedFlowMintsJournalPinnedToken) {
  FlowState st = TunnelingFlow();
  st.seq_delta_c2s = 42;  // Re-switch displacement: not cookie-codable.
  const std::uint64_t cookie = MintFlowCookie(st, 5, kSecret);
  CookieClaims claims;
  ASSERT_EQ(DecodeCookie(cookie, kVip, 80, kClient, kClientPort, kSecret, 5, &claims),
            CookieVerdict::kOk);
  EXPECT_EQ(claims.backend_id, 0);  // Journal-pinned: adopter skips rebuild.
  EXPECT_FALSE(FlowStateFromCookie(claims, kVip, 80, kClient, kClientPort,
                                   {kBackend1, kBackend2}, 80)
                   .has_value());
}

// --- scenario DSL -----------------------------------------------------------

TEST(StoreModeDsl, GlobalAndPerVipDirectivesParse) {
  const char* text =
      "instances 2\n"
      "vip 10.200.0.1\n"
      "rule 10.200.0.1 name=r1 priority=1 url=* split=10.3.0.1\n"
      "store-mode stateless\n"
      "vip 10.200.0.2\n"
      "rule 10.200.0.2 name=r2 priority=1 url=* split=10.3.0.1\n"
      "store-mode 10.200.0.2 stateful\n"
      "at 1s store-mode 10.200.0.1 stateful\n"
      "run-until 2s\n";
  std::string error;
  auto sc = workload::ParseScenario(text, &error);
  ASSERT_TRUE(sc.has_value()) << error;
  ASSERT_EQ(sc->vips.size(), 2u);
  EXPECT_EQ(sc->vips[0].store_mode, StoreMode::kStateless);  // Global sweep.
  EXPECT_EQ(sc->vips[1].store_mode, StoreMode::kStateful);   // Per-VIP override.
  ASSERT_EQ(sc->events.size(), 1u);
  EXPECT_EQ(sc->events[0].action, "store-mode");
}

TEST(StoreModeDsl, BadModeIsAParseError) {
  std::string error;
  EXPECT_FALSE(workload::ParseScenario("vip 10.200.0.1\nstore-mode 10.200.0.1 turbo\n", &error)
                   .has_value());
  EXPECT_NE(error.find("store-mode"), std::string::npos);
}

// --- end-to-end: both modes through the full testbed ------------------------

class StoreModeE2E : public ::testing::TestWithParam<StoreMode> {
 protected:
  std::unique_ptr<Testbed> tb;

  void Build(TestbedConfig cfg = {}) {
    tb = std::make_unique<Testbed>(cfg);
    tb->DefineDefaultVipAndStart();
    if (GetParam() == StoreMode::kStateless) {
      // Install through the controller so the make-before-break plan
      // (instances -> convergence barrier -> muxes) is what flips the mode.
      tb->controller->SetStoreMode(tb->vip(), StoreMode::kStateless);
      tb->sim.RunUntil(tb->sim.now() + sim::Msec(300));
      for (auto& inst : tb->instances) {
        ASSERT_EQ(inst->VipStoreMode(tb->vip()), StoreMode::kStateless);
      }
    }
  }

  const workload::WebObject* BigObject() const {
    for (const auto& o : tb->catalog->objects()) {
      if (o.size > 150'000) {
        return &o;
      }
    }
    return nullptr;
  }

  int OwnerWithActiveFlows() const {
    int owner = -1;
    for (std::size_t i = 0; i < tb->instances.size(); ++i) {
      if (tb->instances[i]->active_flows() > 0) {
        owner = static_cast<int>(i);
      }
    }
    return owner;
  }

  std::uint64_t TotalTakeovers() const {
    std::uint64_t n = 0;
    for (auto& inst : tb->instances) {
      n += inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
    }
    return n;
  }

  std::uint64_t TotalCookieTakeovers() const {
    std::uint64_t n = 0;
    for (auto& inst : tb->instances) {
      n += inst->stats().takeovers_cookie;
    }
    return n;
  }

  std::uint64_t TotalSyncWrites() const {
    std::uint64_t n = 0;
    for (auto& inst : tb->instances) {
      const StoreSessionStats& st = inst->store_session().stats();
      n += st.ack_point_writes + st.sync_removes;
    }
    return n;
  }
};

// Fig 12 / Table 1 row "failure during data transfer": kill the owner mid-
// transfer; a survivor adopts the flow — from the cookie echo in stateless
// mode, from TCPStore in stateful mode — and the fetch completes byte-exact.
TEST_P(StoreModeE2E, FlowSurvivesInstanceFailureDuringTunneling) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Build(cfg);
  const workload::WebObject* big = BigObject();
  ASSERT_NE(big, nullptr);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(160));
  const int owner = OwnerWithActiveFlows();
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "timed_out=" << result.timed_out << " reset=" << result.reset;
  EXPECT_EQ(result.bytes, big->size);
  EXPECT_GE(TotalTakeovers(), 1u);
  if (GetParam() == StoreMode::kStateless) {
    // The adoption was served by the signed cookie, not a store lookup.
    EXPECT_GE(TotalCookieTakeovers(), 1u);
  }
}

// Table 1 row "failure in connection phase" (Fig 5a): crash after the
// SYN-ACK but before the server handshake completes.
TEST_P(StoreModeE2E, FlowSurvivesFailureInConnectionPhase) {
  TestbedConfig cfg;
  cfg.instance_template.rule_scan_base_delay = sim::Msec(250);
  Build(cfg);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, tb->catalog->objects()[0].url, {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(170));
  const int owner = OwnerWithActiveFlows();
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_GE(TotalTakeovers(), 1u);
}

// Table 1 row "concurrent failures": 2 of 6 instances die at once.
TEST_P(StoreModeE2E, SimultaneousDoubleFailureStillRecovers) {
  TestbedConfig cfg;
  cfg.yoda_instances = 6;
  Build(cfg);
  const workload::WebObject* big = BigObject();
  ASSERT_NE(big, nullptr);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(160));
  tb->FailInstance(0);
  tb->FailInstance(1);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
}

// Teardown leaves no residue in either mode: sync removes (stateful) and
// journaled tombstones (stateless) both drain the store to empty.
TEST_P(StoreModeE2E, FlowStateRemovedAfterTeardown) {
  Build();
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, tb->catalog->objects()[0].url, {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok);
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(10));
  std::size_t items = 0;
  for (auto& s : tb->kv_servers) {
    items += s->item_count();
  }
  EXPECT_EQ(items, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, StoreModeE2E,
                         ::testing::Values(StoreMode::kStateful, StoreMode::kStateless),
                         [](const ::testing::TestParamInfo<StoreMode>& info) {
                           return std::string(StoreModeName(info.param));
                         });

// --- the headline contract: write counts per mode ---------------------------

class StoreWriteContract : public ::testing::Test {
 protected:
  std::unique_ptr<Testbed> tb;

  void Build(StoreMode mode) {
    tb = std::make_unique<Testbed>();
    tb->DefineDefaultVipAndStart();
    if (mode == StoreMode::kStateless) {
      tb->controller->SetStoreMode(tb->vip(), StoreMode::kStateless);
      tb->sim.RunUntil(tb->sim.now() + sim::Msec(300));
    }
  }

  int FetchMany(int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      const auto& obj = tb->catalog->objects()[static_cast<std::size_t>(i * 7) %
                                               tb->catalog->objects().size()];
      tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
          tb->vip(), 80, obj.url, {}, [&ok](const FetchResult& r) { ok += r.ok ? 1 : 0; });
    }
    tb->sim.Run();
    tb->sim.RunUntil(tb->sim.now() + sim::Sec(10));  // Teardowns + final flush.
    return ok;
  }
};

// The paper's tax (Fig 3): storage-a before the SYN-ACK, storage-b before
// ACKing the server SYN-ACK, a remove at teardown — 3 synchronous sets per
// request, unchanged by this PR.
TEST_F(StoreWriteContract, StatefulIssuesThreeSyncWritesPerRequest) {
  Build(StoreMode::kStateful);
  const int ok = FetchMany(20);
  EXPECT_EQ(ok, 20);
  std::uint64_t writes = 0;
  std::uint64_t removes = 0;
  std::uint64_t journal_appends = 0;
  for (auto& inst : tb->instances) {
    const StoreSessionStats& st = inst->store_session().stats();
    writes += st.ack_point_writes;
    removes += st.sync_removes;
    journal_appends += st.journal_appends;
  }
  EXPECT_EQ(writes, 40u);   // 2 ACK-point writes per flow.
  EXPECT_EQ(removes, 20u);  // 1 sync remove per flow.
  EXPECT_EQ(journal_appends, 0u);
}

// The tentpole: the stateless fast path issues ZERO synchronous store writes
// — every ACK point completes inline and the journal absorbs the state.
TEST_F(StoreWriteContract, StatelessIssuesZeroSyncWrites) {
  Build(StoreMode::kStateless);
  const int ok = FetchMany(20);
  EXPECT_EQ(ok, 20);
  std::uint64_t sync = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_flushes = 0;
  for (auto& inst : tb->instances) {
    const StoreSessionStats& st = inst->store_session().stats();
    sync += st.ack_point_writes + st.sync_removes;
    journal_appends += st.journal_appends;
    journal_flushes += st.journal_flushes;
  }
  EXPECT_EQ(sync, 0u);
  EXPECT_GE(journal_appends, 20u);  // The state still reaches the journal...
  EXPECT_GE(journal_flushes, 1u);   // ...and the journal reaches the store.
  // The per-instance gauge agrees and is visible through the registry.
  EXPECT_NE(tb->metrics.TextTable().find("yoda.store.sets_per_request"), std::string::npos);
}

// --- mid-run flip (make-before-break) ---------------------------------------

TEST_F(StoreWriteContract, MidRunFlipKeepsInFlightFlowsAlive) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  tb = std::make_unique<Testbed>(cfg);
  tb->DefineDefaultVipAndStart();
  tb->controller->SetStoreMode(tb->vip(), StoreMode::kStateless);
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(300));

  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);

  // A long transfer latches kStateless at creation...
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(160));

  // ...then the VIP flips back to stateful mid-flight (epoch bump: the
  // in-flight flow's cookies go stale) and the owner dies.
  tb->controller->SetStoreMode(tb->vip(), StoreMode::kStateful);
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(300));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "timed_out=" << result.timed_out << " reset=" << result.reset;
  EXPECT_EQ(result.bytes, big->size);

  // New flows after the flip pay the paper's synchronous writes again.
  const std::uint64_t sync_before = [&] {
    std::uint64_t n = 0;
    for (auto& inst : tb->instances) {
      const StoreSessionStats& st = inst->store_session().stats();
      n += st.ack_point_writes + st.sync_removes;
    }
    return n;
  }();
  int ok = 0;
  bool fetched = false;
  tb->clients[1]->FetchObject(tb->vip(), 80, tb->catalog->objects()[0].url, {},
                              [&](const FetchResult& r) {
                                ok = r.ok ? 1 : 0;
                                fetched = true;
                              });
  tb->sim.Run();
  ASSERT_TRUE(fetched);
  EXPECT_EQ(ok, 1);
  std::uint64_t sync_after = 0;
  for (auto& inst : tb->instances) {
    const StoreSessionStats& st = inst->store_session().stats();
    sync_after += st.ack_point_writes + st.sync_removes;
  }
  EXPECT_GT(sync_after, sync_before);
}

}  // namespace
}  // namespace yoda
