// FlowFsm tests: the transition table is enumerated in full against an
// independently spelled-out golden edge set, and the packet-driven
// TryTransition path is checked to fail closed (phase unchanged, caller
// resets) instead of corrupting state on an illegal edge.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "src/core/flow_fsm.h"

namespace yoda {
namespace {

using P = FlowPhase;

constexpr P kAllPhases[] = {
    P::kSynReceived, P::kSynAckSent,  P::kTlsHandshake,   P::kSelecting, P::kServerSynSent,
    P::kStorageBWait, P::kEstablished, P::kDraining, P::kTakeoverLookup, P::kClosed,
};

// The legal edge set, written out by hand (NOT derived from the production
// table) so a table regression cannot hide from this test.
std::set<std::pair<P, P>> GoldenEdges() {
  std::set<std::pair<P, P>> e;
  // Every live phase may close (RST, reset, VIP removal, idle GC, crash).
  for (P from : kAllPhases) {
    if (from != P::kClosed) {
      e.emplace(from, P::kClosed);
    }
  }
  // storage-a completion: plain HTTP vs SSL-terminating VIP.
  e.emplace(P::kSynReceived, P::kSynAckSent);
  e.emplace(P::kSynReceived, P::kTlsHandshake);
  // Header complete (decrypted request for TLS) -> rule scan.
  e.emplace(P::kSynAckSent, P::kSelecting);
  e.emplace(P::kTlsHandshake, P::kSelecting);
  // Selection committed -> server handshake -> storage-b -> tunneling.
  e.emplace(P::kSelecting, P::kServerSynSent);
  e.emplace(P::kServerSynSent, P::kStorageBWait);
  e.emplace(P::kStorageBWait, P::kEstablished);
  // Both FINs tunneled -> delayed cleanup.
  e.emplace(P::kEstablished, P::kDraining);
  // HTTP/1.1 re-switch re-opens the server leg mid-stream.
  e.emplace(P::kEstablished, P::kServerSynSent);
  // Takeover adoption: tunneling flows land established, connection-phase
  // flows resume header assembly (TLS VIPs in the handshake phase).
  e.emplace(P::kTakeoverLookup, P::kEstablished);
  e.emplace(P::kTakeoverLookup, P::kSynAckSent);
  e.emplace(P::kTakeoverLookup, P::kTlsHandshake);
  return e;
}

TEST(FlowFsmTable, MatchesGoldenEdgeSetExactly) {
  const std::set<std::pair<P, P>> golden = GoldenEdges();
  for (P from : kAllPhases) {
    for (P to : kAllPhases) {
      const bool want = golden.contains({from, to});
      EXPECT_EQ(FlowTransitionLegal(from, to), want)
          << FlowPhaseName(from) << " -> " << FlowPhaseName(to);
    }
  }
}

TEST(FlowFsmTable, TerminalPhasesHaveNoExits) {
  for (P to : kAllPhases) {
    EXPECT_FALSE(FlowTransitionLegal(P::kClosed, to))
        << "kClosed must be terminal, leaked edge to " << FlowPhaseName(to);
    if (to != P::kClosed) {
      EXPECT_FALSE(FlowTransitionLegal(P::kDraining, to))
          << "kDraining may only close, leaked edge to " << FlowPhaseName(to);
    }
  }
}

TEST(FlowFsmTable, NoSelfLoops) {
  for (P p : kAllPhases) {
    EXPECT_FALSE(FlowTransitionLegal(p, p)) << FlowPhaseName(p);
  }
}

TEST(FlowFsm, HappyPathPlainHttp) {
  FlowFsm fsm;
  EXPECT_EQ(fsm.phase(), P::kSynReceived);
  EXPECT_TRUE(fsm.TryTransition(P::kSynAckSent));
  EXPECT_TRUE(fsm.TryTransition(P::kSelecting));
  EXPECT_TRUE(fsm.TryTransition(P::kServerSynSent));
  EXPECT_TRUE(fsm.TryTransition(P::kStorageBWait));
  EXPECT_TRUE(fsm.TryTransition(P::kEstablished));
  EXPECT_TRUE(fsm.established());
  EXPECT_TRUE(fsm.TryTransition(P::kDraining));
  EXPECT_TRUE(fsm.established());  // Draining still counts as established.
  EXPECT_TRUE(fsm.TryTransition(P::kClosed));
}

TEST(FlowFsm, HappyPathTlsVip) {
  FlowFsm fsm;
  EXPECT_TRUE(fsm.TryTransition(P::kTlsHandshake));
  EXPECT_TRUE(fsm.awaiting_header());
  EXPECT_TRUE(fsm.TryTransition(P::kSelecting));
  EXPECT_TRUE(fsm.selection_committed());
}

TEST(FlowFsm, TakeoverEntryEdges) {
  for (P target : {P::kEstablished, P::kSynAckSent, P::kTlsHandshake}) {
    FlowFsm fsm(P::kTakeoverLookup);
    EXPECT_TRUE(fsm.lookup_pending());
    EXPECT_FALSE(fsm.syn_state_stored());  // Nothing local written yet.
    EXPECT_TRUE(fsm.TryTransition(target)) << FlowPhaseName(target);
    EXPECT_FALSE(fsm.lookup_pending());
  }
}

TEST(FlowFsm, ReSwitchReopensServerLeg) {
  FlowFsm fsm(P::kEstablished);
  EXPECT_TRUE(fsm.TryTransition(P::kServerSynSent));
  EXPECT_FALSE(fsm.established());
  EXPECT_TRUE(fsm.TryTransition(P::kStorageBWait));
  EXPECT_TRUE(fsm.TryTransition(P::kEstablished));
}

TEST(FlowFsm, IllegalTryTransitionLeavesPhaseUntouched) {
  // A stray server SYN-ACK for a flow still assembling its header must not
  // move the FSM: the pipeline routes this to the kFlowReset path.
  FlowFsm fsm(P::kSynAckSent);
  EXPECT_FALSE(fsm.TryTransition(P::kStorageBWait));
  EXPECT_EQ(fsm.phase(), P::kSynAckSent);
  EXPECT_FALSE(fsm.TryTransition(P::kEstablished));
  EXPECT_EQ(fsm.phase(), P::kSynAckSent);
  // Still usable afterwards: the legal edge continues to work.
  EXPECT_TRUE(fsm.TryTransition(P::kSelecting));
}

TEST(FlowFsm, IllegalEdgesAllRejected) {
  const std::set<std::pair<P, P>> golden = GoldenEdges();
  for (P from : kAllPhases) {
    for (P to : kAllPhases) {
      if (golden.contains({from, to})) {
        continue;
      }
      FlowFsm fsm(from);
      EXPECT_FALSE(fsm.TryTransition(to))
          << FlowPhaseName(from) << " -> " << FlowPhaseName(to);
      EXPECT_EQ(fsm.phase(), from) << "phase moved on an illegal edge";
    }
  }
}

TEST(FlowFsm, PredicatesMatchPhases) {
  struct Want {
    P phase;
    bool stored, header, committed, established;
  };
  const Want wants[] = {
      {P::kSynReceived, false, false, false, false},
      {P::kSynAckSent, true, true, false, false},
      {P::kTlsHandshake, true, true, false, false},
      {P::kSelecting, true, false, true, false},
      {P::kServerSynSent, true, false, true, false},
      {P::kStorageBWait, true, false, true, false},
      {P::kEstablished, true, false, true, true},
      {P::kDraining, true, false, true, true},
      {P::kTakeoverLookup, false, false, false, false},
      {P::kClosed, true, false, false, false},
  };
  for (const Want& w : wants) {
    FlowFsm fsm(w.phase);
    EXPECT_EQ(fsm.syn_state_stored(), w.stored) << FlowPhaseName(w.phase);
    EXPECT_EQ(fsm.awaiting_header(), w.header) << FlowPhaseName(w.phase);
    EXPECT_EQ(fsm.selection_committed(), w.committed) << FlowPhaseName(w.phase);
    EXPECT_EQ(fsm.established(), w.established) << FlowPhaseName(w.phase);
  }
}

TEST(FlowFsm, PhaseNamesAreUnique) {
  std::set<std::string> names;
  for (P p : kAllPhases) {
    EXPECT_TRUE(names.insert(FlowPhaseName(p)).second) << FlowPhaseName(p);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kFlowPhaseCount));
}

}  // namespace
}  // namespace yoda
