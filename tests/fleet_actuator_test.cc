// FleetActuator tests: idempotent plan-step replay, make-before-break
// execution ordering with the mux-convergence barrier, the stale-scrub
// guard, and epoch gating of pool writes on the muxes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/control_state.h"
#include "src/core/fleet_actuator.h"
#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

// Builds a bare testbed plus a private ControlState/FleetActuator pair over
// its fabric and instances, so plans can be executed directly.
class FleetActuatorTest : public ::testing::Test {
 protected:
  void Build(int instances = 4) {
    TestbedConfig cfg;
    cfg.yoda_instances = instances;
    cfg.build_catalog = false;
    tb = std::make_unique<Testbed>(cfg);
    state = std::make_unique<ControlState>(&tb->sim, &tb->flight);
    FleetActuatorConfig acfg;
    acfg.mux_stagger = sim::Msec(50);
    acfg.registry = &tb->metrics;
    acfg.recorder = &tb->flight;
    actuator = std::make_unique<FleetActuator>(&tb->sim, &tb->fabric, state.get(), acfg);
    for (auto& inst : tb->instances) {
      actuator->RegisterInstance(inst.get());
    }
  }

  bool MuxPoolHas(int mux, net::IpAddr vip, net::IpAddr instance) const {
    const std::vector<net::IpAddr>* pool = tb->fabric.mux(mux).PoolFor(vip);
    return pool != nullptr &&
           std::find(pool->begin(), pool->end(), instance) != pool->end();
  }

  int MuxPoolCount(int mux, net::IpAddr vip, net::IpAddr instance) const {
    const std::vector<net::IpAddr>* pool = tb->fabric.mux(mux).PoolFor(vip);
    return pool == nullptr
               ? 0
               : static_cast<int>(std::count(pool->begin(), pool->end(), instance));
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ControlState> state;
  std::unique_ptr<FleetActuator> actuator;
};

TEST_F(FleetActuatorTest, ReplayedStepIsNotReappliedAndNotRecounted) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  const net::IpAddr a = tb->instance_ip(0);
  const net::IpAddr b = tb->instance_ip(1);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  tb->fabric.AttachVip(vip);
  const std::uint64_t epoch = state->SetAssignments({{vip, {a, b}}});

  ExecPlan plan{epoch, "test add", /*staggered=*/false, {}};
  plan.steps.push_back({ExecStepKind::kInstallRules, vip, b});
  plan.steps.push_back({ExecStepKind::kAddPoolMember, vip, b});

  actuator->Execute(plan);
  const std::uint64_t pool_updates_once =
      tb->metrics.GetCounter("controller.pool_updates").value();
  EXPECT_EQ(MuxPoolCount(0, vip, b), 1);
  EXPECT_EQ(tb->metrics.GetCounter("controller.reconcile.replayed_steps").value(), 0u);

  // Replaying the SAME epoch's plan must be a no-op: no duplicate pool
  // member, no counter double-bump, journal entries flagged as replayed.
  actuator->Execute(plan);
  EXPECT_EQ(MuxPoolCount(0, vip, b), 1);
  EXPECT_EQ(tb->metrics.GetCounter("controller.pool_updates").value(), pool_updates_once);
  EXPECT_EQ(tb->metrics.GetCounter("controller.reconcile.replayed_steps").value(), 2u);
  ASSERT_EQ(actuator->journal().size(), 4u);
  EXPECT_FALSE(actuator->journal()[0].replayed);
  EXPECT_FALSE(actuator->journal()[1].replayed);
  EXPECT_TRUE(actuator->journal()[2].replayed);
  EXPECT_TRUE(actuator->journal()[3].replayed);

  // A NEW epoch touching the same pair applies again.
  const std::uint64_t epoch2 = state->SetAssignments({{vip, {a, b}}});
  ExecPlan plan2 = plan;
  plan2.epoch = epoch2;
  actuator->Execute(plan2);
  EXPECT_EQ(MuxPoolCount(0, vip, b), 1);  // AddMember itself dedups.
  EXPECT_GT(tb->metrics.GetCounter("controller.pool_updates").value(), pool_updates_once);
}

TEST_F(FleetActuatorTest, StaggeredPlanDefersBreakPhaseUntilConvergence) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  const net::IpAddr old_member = tb->instance_ip(0);
  const net::IpAddr new_member = tb->instance_ip(1);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  tb->fabric.AttachVip(vip);
  tb->instances[0]->InstallVip(vip, 80, tb->EqualSplitRules(0, 2));
  tb->fabric.SetVipPool(vip, {old_member});
  const std::uint64_t epoch = state->SetAssignments({{vip, {new_member}}});

  ExecPlan plan{epoch, "swap member", /*staggered=*/true, {}};
  plan.steps.push_back({ExecStepKind::kInstallRules, vip, new_member});
  plan.steps.push_back({ExecStepKind::kAddPoolMember, vip, new_member});
  plan.steps.push_back({ExecStepKind::kAwaitConvergence, 0, 0});
  plan.steps.push_back({ExecStepKind::kRemovePoolMember, vip, old_member});
  plan.steps.push_back({ExecStepKind::kScrubRules, vip, old_member});

  const sim::Time start = tb->sim.now();
  actuator->Execute(plan);
  EXPECT_EQ(actuator->plans_in_flight(), 1);
  // Make phase ran; break phase has not: the first mux pools BOTH members.
  tb->sim.RunUntil(start + sim::Msec(1));
  EXPECT_TRUE(MuxPoolHas(0, vip, new_member));
  EXPECT_TRUE(MuxPoolHas(0, vip, old_member));
  EXPECT_TRUE(tb->instances[0]->ServesVip(vip));

  // Mid-window: some muxes have the add, the last one does not yet.
  tb->sim.RunUntil(start + sim::Msec(60));
  EXPECT_TRUE(MuxPoolHas(1, vip, new_member));
  EXPECT_FALSE(MuxPoolHas(3, vip, new_member));
  EXPECT_TRUE(MuxPoolHas(3, vip, old_member));  // Old member serves throughout.

  // After convergence the break phase runs: old member unpooled + scrubbed.
  tb->sim.RunUntil(start + sim::Sec(1));
  EXPECT_EQ(actuator->plans_in_flight(), 0);
  for (int m = 0; m < tb->fabric.mux_count(); ++m) {
    EXPECT_TRUE(MuxPoolHas(m, vip, new_member));
    EXPECT_FALSE(MuxPoolHas(m, vip, old_member));
  }
  EXPECT_FALSE(tb->instances[0]->ServesVip(vip));

  // Journal ordering: every make step precedes the barrier, every break step
  // follows it, and break steps carry a strictly later timestamp.
  const auto& journal = actuator->journal();
  ASSERT_EQ(journal.size(), 5u);
  EXPECT_EQ(journal[2].step.kind, ExecStepKind::kAwaitConvergence);
  EXPECT_LT(journal[1].at, journal[3].at);
  EXPECT_EQ(journal[3].step.kind, ExecStepKind::kRemovePoolMember);
  EXPECT_EQ(journal[4].step.kind, ExecStepKind::kScrubRules);
}

TEST_F(FleetActuatorTest, StaleScrubGuardSparesReaddedInstance) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  const net::IpAddr x = tb->instance_ip(0);
  const net::IpAddr y = tb->instance_ip(1);
  state->DefineVip(vip, 80, tb->EqualSplitRules(0, 2));
  tb->fabric.AttachVip(vip);
  tb->instances[0]->InstallVip(vip, 80, tb->EqualSplitRules(0, 2));
  tb->fabric.SetVipPool(vip, {x, y});

  // Epoch E: move the VIP off instance X (staggered, so the scrub waits).
  const std::uint64_t epoch = state->SetAssignments({{vip, {y}}});
  ExecPlan plan{epoch, "drop x", /*staggered=*/true, {}};
  plan.steps.push_back({ExecStepKind::kInstallRules, vip, y});
  plan.steps.push_back({ExecStepKind::kAddPoolMember, vip, y});
  plan.steps.push_back({ExecStepKind::kAwaitConvergence, 0, 0});
  plan.steps.push_back({ExecStepKind::kRemovePoolMember, vip, x});
  plan.steps.push_back({ExecStepKind::kScrubRules, vip, x});
  actuator->Execute(plan);

  // Before the break phase lands, a NEWER epoch re-adds X to the desired
  // pool. The in-flight scrub must notice and decline.
  state->SetAssignments({{vip, {x, y}}});
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(1));

  EXPECT_TRUE(tb->instances[0]->ServesVip(vip)) << "stale scrub stripped re-added rules";
  const auto& journal = actuator->journal();
  ASSERT_FALSE(journal.empty());
  EXPECT_EQ(journal.back().step.kind, ExecStepKind::kScrubRules);
  EXPECT_TRUE(journal.back().replayed);  // Recorded as skipped.
}

TEST_F(FleetActuatorTest, BackendHealthStepsAreExemptFromReplayLedger) {
  Build();
  const net::IpAddr backend = tb->backend_ip(0);
  const net::IpAddr inst = tb->instance_ip(0);
  state->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2));
  tb->instances[0]->InstallVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2));

  // Same epoch, down then up: both must apply (health is actual state, not
  // desired state — the ledger must not swallow the second flip).
  const std::uint64_t epoch = state->epoch();
  ExecPlan down{epoch, "backend down", false, {{ExecStepKind::kSetBackendHealth, backend, inst, false}}};
  ExecPlan up{epoch, "backend up", false, {{ExecStepKind::kSetBackendHealth, backend, inst, true}}};
  actuator->Execute(down);
  actuator->Execute(up);
  EXPECT_EQ(tb->metrics.GetCounter("controller.reconcile.replayed_steps").value(), 0u);
  ASSERT_EQ(actuator->journal().size(), 2u);
  EXPECT_FALSE(actuator->journal()[1].replayed);
}

TEST_F(FleetActuatorTest, MuxRejectsWritesFromOlderEpochs) {
  Build();
  const net::IpAddr vip = tb->vip(0);
  const net::IpAddr a = tb->instance_ip(0);
  const net::IpAddr b = tb->instance_ip(1);
  l4lb::Mux& mux = tb->fabric.mux(0);

  EXPECT_TRUE(mux.SetPool(vip, {a}, /*epoch=*/5));
  EXPECT_EQ(mux.PoolEpoch(vip), 5u);
  // A straggler from an overtaken rollout: rejected, pool unchanged.
  EXPECT_FALSE(mux.AddMember(vip, b, /*epoch=*/3));
  EXPECT_FALSE(mux.SetPool(vip, {b}, /*epoch=*/4));
  const std::vector<net::IpAddr>* pool = mux.PoolFor(vip);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(*pool, (std::vector<net::IpAddr>{a}));
  // Epoch 0 is the unversioned escape hatch and always applies.
  EXPECT_TRUE(mux.AddMember(vip, b, /*epoch=*/0));
  // Newer epochs apply and advance the watermark.
  EXPECT_TRUE(mux.RemoveMember(vip, b, /*epoch=*/6));
  EXPECT_EQ(mux.PoolEpoch(vip), 6u);
}

}  // namespace
}  // namespace yoda
