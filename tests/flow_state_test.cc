// FlowState codec, keys and deterministic ISN tests.

#include <gtest/gtest.h>

#include "src/core/flow_state.h"
#include "src/sim/random.h"

namespace yoda {
namespace {

FlowState Sample() {
  FlowState s;
  s.stage = FlowStage::kTunneling;
  s.client_ip = net::MakeIp(93, 184, 216, 34);
  s.client_port = 51'234;
  s.vip = net::MakeIp(10, 200, 0, 1);
  s.vip_port = 80;
  s.client_isn = 0x12345678;
  s.lb_isn = 0x9abcdef0;
  s.backend_ip = net::MakeIp(10, 3, 0, 7);
  s.backend_port = 80;
  s.server_isn = 0x55aa55aa;
  s.seq_delta_s2c = s.lb_isn - s.server_isn;
  s.seq_delta_c2s = 0;
  s.pipeline_request_ends = {120, 240};
  return s;
}

TEST(FlowStateCodec, RoundTripsTunnelingState) {
  FlowState s = Sample();
  auto parsed = FlowState::Parse(s.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
}

TEST(FlowStateCodec, RoundTripsConnectionState) {
  FlowState s;
  s.stage = FlowStage::kConnection;
  s.client_ip = 1;
  s.client_port = 2;
  s.vip = 3;
  s.vip_port = 4;
  s.client_isn = 5;
  s.lb_isn = 6;
  auto parsed = FlowState::Parse(s.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(parsed->stage, FlowStage::kConnection);
}

TEST(FlowStateCodec, RejectsGarbage) {
  EXPECT_FALSE(FlowState::Parse("").has_value());
  EXPECT_FALSE(FlowState::Parse("short").has_value());
  EXPECT_FALSE(FlowState::Parse(std::string(100, '\xff')).has_value());
}

TEST(FlowStateCodec, RejectsTruncation) {
  const std::string wire = Sample().Serialize();
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(FlowState::Parse(wire.substr(0, wire.size() - cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(FlowStateCodec, RejectsTrailingBytes) {
  EXPECT_FALSE(FlowState::Parse(Sample().Serialize() + "x").has_value());
}

TEST(FlowStateCodec, RejectsWrongVersion) {
  std::string wire = Sample().Serialize();
  wire[0] = 99;
  EXPECT_FALSE(FlowState::Parse(wire).has_value());
}

// Property: random states round-trip exactly.
class FlowStateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FlowStateFuzz, RandomRoundTrip) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  FlowState s;
  s.stage = rng.Bernoulli(0.5) ? FlowStage::kTunneling : FlowStage::kConnection;
  s.client_ip = static_cast<net::IpAddr>(rng.UniformInt(0, 0xffffffffLL));
  s.client_port = static_cast<net::Port>(rng.UniformInt(0, 65535));
  s.vip = static_cast<net::IpAddr>(rng.UniformInt(0, 0xffffffffLL));
  s.vip_port = static_cast<net::Port>(rng.UniformInt(0, 65535));
  s.client_isn = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  s.lb_isn = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  s.backend_ip = static_cast<net::IpAddr>(rng.UniformInt(0, 0xffffffffLL));
  s.backend_port = static_cast<net::Port>(rng.UniformInt(0, 65535));
  s.server_isn = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  s.seq_delta_s2c = s.lb_isn - s.server_isn;
  s.seq_delta_c2s = static_cast<std::uint32_t>(rng.UniformInt(0, 0xffffffffLL));
  const int pipeline = static_cast<int>(rng.UniformInt(0, 5));
  for (int i = 0; i < pipeline; ++i) {
    s.pipeline_request_ends.push_back(static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30)));
  }
  auto parsed = FlowState::Parse(s.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FlowStateFuzz, ::testing::Range(0, 25));

TEST(FlowKeys, ClientAndServerKeysAreDistinctNamespaces) {
  const std::string c = ClientFlowKey(1, 80, 2, 3);
  const std::string s = ServerFlowKey(1, 80, 2, 3);
  EXPECT_NE(c, s);
  EXPECT_EQ(c[0], 'c');
  EXPECT_EQ(s[0], 's');
}

TEST(FlowKeys, DistinctFlowsDistinctKeys) {
  EXPECT_NE(ClientFlowKey(1, 80, 2, 3), ClientFlowKey(1, 80, 2, 4));
  EXPECT_NE(ClientFlowKey(1, 80, 2, 3), ClientFlowKey(1, 81, 2, 3));
  EXPECT_NE(ServerFlowKey(9, 80, 1, 3), ServerFlowKey(9, 80, 1, 4));
}

TEST(DeterministicIsn, SameInputsSameIsn) {
  // The paper's core trick: every instance generates the same SYN-ACK ISN
  // for a given client, so SYN-ACK state never needs storing.
  const std::uint32_t a = DeterministicLbIsn(10, 80, 1234, 5678);
  const std::uint32_t b = DeterministicLbIsn(10, 80, 1234, 5678);
  EXPECT_EQ(a, b);
}

TEST(DeterministicIsn, DifferentClientsDiffer) {
  const std::uint32_t base = DeterministicLbIsn(10, 80, 1234, 5678);
  EXPECT_NE(base, DeterministicLbIsn(10, 80, 1234, 5679));
  EXPECT_NE(base, DeterministicLbIsn(10, 80, 1235, 5678));
  EXPECT_NE(base, DeterministicLbIsn(11, 80, 1234, 5678));
}

TEST(DeterministicIsn, ReasonablySpreadOverSeqSpace) {
  sim::Rng rng(3);
  std::uint32_t min = 0xffffffff;
  std::uint32_t max = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t isn =
        DeterministicLbIsn(static_cast<net::IpAddr>(rng.UniformInt(0, 0xffffffffLL)), 80,
                           static_cast<net::IpAddr>(rng.UniformInt(0, 0xffffffffLL)),
                           static_cast<net::Port>(rng.UniformInt(0, 65535)));
    min = std::min(min, isn);
    max = std::max(max, isn);
  }
  EXPECT_LT(min, 0x10000000u);
  EXPECT_GT(max, 0xf0000000u);
}

TEST(FlowStateToString, MentionsStageAndEndpoints) {
  const std::string s = Sample().ToString();
  EXPECT_NE(s.find("TUNNEL"), std::string::npos);
  EXPECT_NE(s.find("10.200.0.1"), std::string::npos);
  EXPECT_NE(s.find("10.3.0.7"), std::string::npos);
}

}  // namespace
}  // namespace yoda
