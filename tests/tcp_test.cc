// TcpEndpoint state-machine tests: two endpoints talking across the
// simulated fabric, including loss, reordering-by-jitter, teardown and abort.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/net/network.h"
#include "src/net/tcp_endpoint.h"

namespace net {
namespace {

class EndpointNode : public Node {
 public:
  void HandlePacket(const Packet& p) override {
    if (ep != nullptr) {
      ep->HandlePacket(p);
    }
  }
  TcpEndpoint* ep = nullptr;
};

class TcpTest : public ::testing::Test {
 protected:
  static constexpr IpAddr kClientIp = MakeIp(10, 0, 0, 1);
  static constexpr IpAddr kServerIp = MakeIp(10, 0, 0, 2);

  sim::Simulator simulator;
  Network network{&simulator, 17};
  EndpointNode client_node, server_node;
  std::unique_ptr<TcpEndpoint> client, server;
  std::string client_received, server_received;
  bool client_connected = false, server_connected = false;
  bool client_closed = false, server_closed = false;
  bool client_reset = false, client_failed = false;

  void SetUp() override {
    network.Attach(kClientIp, &client_node);
    network.Attach(kServerIp, &server_node);
    network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Msec(1), 0);

    TcpConfig cfg;
    client = std::make_unique<TcpEndpoint>(
        &simulator, [this](Packet p) { network.Send(std::move(p)); }, cfg);
    server = std::make_unique<TcpEndpoint>(
        &simulator, [this](Packet p) { network.Send(std::move(p)); }, cfg);
    client_node.ep = client.get();
    server_node.ep = server.get();

    client->set_on_data([this](std::string_view d) { client_received.append(d); });
    server->set_on_data([this](std::string_view d) { server_received.append(d); });
    client->set_on_connected([this]() { client_connected = true; });
    server->set_on_connected([this]() { server_connected = true; });
    client->set_on_closed([this]() { client_closed = true; });
    server->set_on_closed([this]() { server_closed = true; });
    client->set_on_reset([this]() { client_reset = true; });
    client->set_on_failed([this]() { client_failed = true; });

    // Server adopts the first SYN it sees.
    server_node.ep = nullptr;
    server_syn_hook_.ep = server.get();
    network.Attach(kServerIp, &server_syn_hook_);
  }

  // Wrapper node that passively opens on SYN, then delegates.
  class AcceptingNode : public Node {
   public:
    void HandlePacket(const Packet& p) override {
      if (p.syn() && !p.ack_flag() && ep->state() == TcpState::kClosed) {
        ep->AcceptFrom(p, 777'000);
        return;
      }
      ep->HandlePacket(p);
    }
    TcpEndpoint* ep = nullptr;
  };
  AcceptingNode server_syn_hook_;

  void Connect() { client->Connect(kClientIp, 5555, kServerIp, 80, 111'000); }
};

TEST_F(TcpTest, ThreeWayHandshake) {
  Connect();
  simulator.Run();
  EXPECT_TRUE(client_connected);
  EXPECT_TRUE(server_connected);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(client->snd_isn(), 111'000u);
  EXPECT_EQ(client->rcv_isn(), 777'000u);
}

TEST_F(TcpTest, ClientToServerData) {
  Connect();
  client->Send("hello tcp");
  simulator.Run();
  EXPECT_EQ(server_received, "hello tcp");
}

TEST_F(TcpTest, ServerToClientDataAfterConnect) {
  server->set_on_connected([this]() { server->Send("welcome"); });
  Connect();
  simulator.Run();
  EXPECT_EQ(client_received, "welcome");
}

TEST_F(TcpTest, BidirectionalEcho) {
  server->set_on_data([this](std::string_view d) {
    server_received.append(d);
    server->Send("echo:" + std::string(d));
  });
  Connect();
  client->Send("ping");
  simulator.Run();
  EXPECT_EQ(server_received, "ping");
  EXPECT_EQ(client_received, "echo:ping");
}

TEST_F(TcpTest, LargeTransferSegmentsAndReassembles) {
  Connect();
  std::string big(100'000, 'a');
  for (std::size_t i = 0; i < big.size(); i += 1000) {
    big[i] = static_cast<char>('A' + (i / 1000) % 26);
  }
  client->Send(big);
  simulator.Run();
  EXPECT_EQ(server_received, big);
  EXPECT_GT(client->stats().segments_sent, big.size() / 1400);
}

TEST_F(TcpTest, SendBeforeEstablishedIsBuffered) {
  Connect();
  client->Send("early");  // Still in SYN_SENT.
  simulator.Run();
  EXPECT_EQ(server_received, "early");
}

TEST_F(TcpTest, SurvivesHeavyLoss) {
  network.set_loss_rate(0.15);
  Connect();
  std::string payload(30'000, 'z');
  client->Send(payload);
  simulator.Run();
  EXPECT_EQ(server_received, payload);
  EXPECT_GT(client->stats().retransmits, 0u);
}

TEST_F(TcpTest, GracefulCloseFromClient) {
  Connect();
  client->Send("bye");
  simulator.RunUntil(sim::Msec(100));
  client->Close();
  simulator.Run();
  EXPECT_EQ(server_received, "bye");
  // Server saw the FIN and closed; client cycled through TIME_WAIT.
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server->state(), TcpState::kCloseWait);
  server->Close();
  simulator.Run();
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(TcpTest, CloseWithPendingDataDrainsFirst) {
  Connect();
  std::string payload(20'000, 'q');
  client->Send(payload);
  client->Close();  // FIN must trail the data.
  simulator.Run();
  EXPECT_EQ(server_received, payload);
  EXPECT_TRUE(server_closed);
}

TEST_F(TcpTest, ServerInitiatedClose) {
  server->set_on_connected([this]() {
    server->Send("done");
    server->Close();
  });
  Connect();
  simulator.Run();
  EXPECT_EQ(client_received, "done");
  EXPECT_TRUE(client_closed);
  client->Close();
  simulator.Run();
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST_F(TcpTest, AbortSendsRst) {
  Connect();
  simulator.RunUntil(sim::Msec(50));
  ASSERT_TRUE(server_connected);
  server->Abort();
  simulator.Run();
  EXPECT_TRUE(client_reset);
  EXPECT_EQ(client->state(), TcpState::kReset);
}

TEST_F(TcpTest, SynRetransmitsWhenServerUnreachable) {
  network.SetNodeDown(kServerIp, true);
  Connect();
  simulator.RunUntil(sim::Sec(4));
  EXPECT_EQ(client->state(), TcpState::kSynSent);
  EXPECT_GT(client->stats().retransmits, 0u);
  // Recover before retries exhaust: the connection completes.
  network.SetNodeDown(kServerIp, false);
  simulator.Run();
  EXPECT_TRUE(client_connected);
}

TEST_F(TcpTest, ConnectFailsAfterRetriesExhaust) {
  network.SetNodeDown(kServerIp, true);
  Connect();
  simulator.Run();
  EXPECT_TRUE(client_failed);
  EXPECT_EQ(client->state(), TcpState::kReset);
}

TEST_F(TcpTest, DataRetransmitGivesUpEventually) {
  Connect();
  simulator.RunUntil(sim::Msec(50));
  ASSERT_TRUE(client_connected);
  network.SetNodeDown(kServerIp, true);
  client->Send("lost into the void");
  simulator.Run();
  EXPECT_TRUE(client_failed);
}

TEST_F(TcpTest, RetransmissionTimelineFollows300msBackoff) {
  // Fig 12(b): first data retransmit ~300 ms after the drop, next ~600 ms.
  Connect();
  simulator.RunUntil(sim::Msec(50));
  network.SetNodeDown(kServerIp, true);
  const sim::Time sent_at = simulator.now();
  std::vector<sim::Time> tx_times;
  network.set_tap([&tx_times](sim::Time, const Packet&) {});
  client->Send("x");
  simulator.RunUntil(sent_at + sim::Msec(1000));
  // stats.timeouts counts RTO fires: ~2 within the first second (300+600).
  EXPECT_GE(client->stats().timeouts, 2u);
  EXPECT_LE(client->stats().timeouts, 3u);
}

TEST_F(TcpTest, DuplicateSynAckIsReAcked) {
  Connect();
  simulator.RunUntil(sim::Msec(100));
  ASSERT_TRUE(client_connected);
  // Replay the server's SYN-ACK at the client.
  Packet dup;
  dup.src = kServerIp;
  dup.dst = kClientIp;
  dup.sport = 80;
  dup.dport = 5555;
  dup.seq = 777'000;
  dup.ack = 111'001;
  dup.flags = kSyn | kAck;
  client->HandlePacket(dup);
  simulator.Run();
  EXPECT_EQ(client->state(), TcpState::kEstablished);
}

TEST_F(TcpTest, StatsCountBytes) {
  Connect();
  client->Send("12345");
  simulator.Run();
  EXPECT_EQ(server->stats().bytes_delivered, 5u);
  EXPECT_GE(client->stats().bytes_sent, 5u);
}

TEST_F(TcpTest, StateNamesAreStable) {
  EXPECT_STREQ(TcpStateName(TcpState::kClosed), "CLOSED");
  EXPECT_STREQ(TcpStateName(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(TcpStateName(TcpState::kTimeWait), "TIME_WAIT");
  EXPECT_STREQ(TcpStateName(TcpState::kReset), "RESET");
}

// Jitter shuffles delivery order; reassembly must still produce the stream.
TEST_F(TcpTest, ReorderingToleratedViaJitter) {
  network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Usec(100), sim::Usec(900));
  Connect();
  std::string payload;
  for (int i = 0; i < 5000; ++i) {
    payload += static_cast<char>('a' + i % 26);
  }
  client->Send(payload);
  simulator.Run();
  EXPECT_EQ(server_received, payload);
}

// Property sweep: the byte stream survives any loss rate / seed combination.
struct LossCase {
  double loss;
  int seed;
};

class TcpLossSweep : public ::testing::TestWithParam<LossCase> {};

TEST_P(TcpLossSweep, StreamIntegrityUnderLoss) {
  const LossCase c = GetParam();
  sim::Simulator simulator;
  Network network(&simulator, static_cast<std::uint64_t>(c.seed));
  network.SetLatency(Region::kDatacenter, Region::kDatacenter, sim::Msec(1), sim::Usec(500));
  network.set_loss_rate(c.loss);

  EndpointNode a_node, b_node;
  network.Attach(MakeIp(10, 0, 0, 1), &a_node);
  TcpEndpoint a(&simulator, [&network](Packet p) { network.Send(std::move(p)); }, {});
  TcpEndpoint b(&simulator, [&network](Packet p) { network.Send(std::move(p)); }, {});
  a_node.ep = &a;
  std::string received;
  b.set_on_data([&received](std::string_view d) { received.append(d); });
  // Accept-on-SYN shim.
  class Acceptor : public Node {
   public:
    void HandlePacket(const Packet& p) override {
      if (p.syn() && !p.ack_flag() && ep->state() == TcpState::kClosed) {
        ep->AcceptFrom(p, 1'000'000);
        return;
      }
      ep->HandlePacket(p);
    }
    TcpEndpoint* ep = nullptr;
  } acceptor;
  acceptor.ep = &b;
  network.Attach(MakeIp(10, 0, 0, 2), &acceptor);

  a.Connect(MakeIp(10, 0, 0, 1), 999, MakeIp(10, 0, 0, 2), 80, 5'000);
  std::string payload;
  sim::Rng rng(static_cast<std::uint64_t>(c.seed) + 1);
  for (int i = 0; i < 40'000; ++i) {
    payload.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
  }
  a.Send(payload);
  simulator.Run();
  EXPECT_EQ(received, payload) << "loss=" << c.loss << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TcpLossSweep,
                         ::testing::Values(LossCase{0.01, 1}, LossCase{0.05, 2},
                                           LossCase{0.10, 3}, LossCase{0.20, 4},
                                           LossCase{0.30, 5}, LossCase{0.10, 6},
                                           LossCase{0.10, 7}, LossCase{0.05, 8}));

TEST_F(TcpTest, FastRetransmitOnDupAcks) {
  // Lossy enough to trigger dup-acks on a long transfer.
  network.set_loss_rate(0.03);
  Connect();
  std::string payload(200'000, 'f');
  client->Send(payload);
  simulator.Run();
  EXPECT_EQ(server_received, payload);
  EXPECT_GT(client->stats().fast_retransmits + client->stats().timeouts, 0u);
}

}  // namespace
}  // namespace net
