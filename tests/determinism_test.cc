// Determinism suite for the sharded scenario runners (ctest label
// "determinism").
//
// Three properties are pinned:
//
//   1. Worker-count invariance, cell-sharded: a `threads N` scenario produces
//      a trace digest that is byte-identical for any worker count N in
//      {1, 2, 4, 8}, across many seeds. The cell partitioning is fixed
//      (kScenarioCells); N only picks how many OS threads execute the epoch
//      loop, so the interleaving the workload observes never changes.
//
//   2. Worker-count invariance, intra-cell: an `intra-threads N` scenario —
//      ONE testbed whose components are placed across the engine's shards,
//      with every inter-component hop crossing shards through the fabric /
//      shard-aware network — is likewise byte-identical for any N. This is
//      the stronger property: here the concurrent shards actually talk to
//      each other mid-run, so it pins that cross-shard delivery times are a
//      function of the virtual clocks only, never of the worker schedule.
//
//   3. Golden reproduction: the legacy single-simulator path reproduces the
//      checked-in trace digests for the repo's scenario files. These goldens
//      were captured from the pre-parallelism build, so they also pin that
//      the multi-core engine and intra-cell placement work did not perturb
//      single-threaded traces.

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/workload/scenario.h"

namespace {

using workload::ParseScenario;
using workload::RunScenario;
using workload::Scenario;
using workload::ScenarioReport;

// FNV-1a over the report's flow traces. Metrics are digested separately where
// a test wants them: trace bytes are the behavior contract, while the metrics
// registry also carries engine-internal gauges (e.g. events executed) that
// may legitimately move when engine internals change.
std::uint64_t TraceDigest(const ScenarioReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : r.traces_jsonl) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

std::uint64_t FullDigest(const ScenarioReport& r) {
  std::uint64_t h = TraceDigest(r);
  for (unsigned char c : r.metrics_jsonl) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

// A small but non-trivial sharded scenario: open-loop load, an instance and a
// backend failure with recovery, and a spare activation, all conducted over
// cross-shard mail.
std::string ShardedScenarioText(std::uint64_t seed, int threads) {
  std::ostringstream out;
  out << "seed " << seed << "\n"
      << "instances 2\nspares 1\nbackends 3\nkv-servers 3\nclients 2\n"
      << "threads " << threads << "\n"
      << "vip 10.200.0.1\n"
      << "rule 10.200.0.1 name=r-all priority=1 url=* split=10.3.0.1,10.3.0.2,10.3.0.3\n"
      << "at 0ms load 10.200.0.1 rate 40 duration 1200ms\n"
      << "at 400ms fail-instance 0\n"
      << "at 700ms fail-backend 1\n"
      << "at 900ms recover-instance 0\n"
      << "at 1000ms recover-backend 1\n"
      << "at 1100ms add-instance\n";
  return out.str();
}

// The intra-cell counterpart: ONE placed testbed over kScenarioCells shards.
// Same fleet and timeline as the sharded text, plus `place` overrides so the
// override path (not just round-robin defaults) is under test. Every fetch
// here crosses shards several times: client shard -> fabric -> instance
// shard -> backend shard and back, with the instance's KV ops hopping to the
// kv shards.
std::string IntraScenarioText(std::uint64_t seed, int threads) {
  std::ostringstream out;
  out << "seed " << seed << "\n"
      << "instances 2\nspares 1\nbackends 3\nkv-servers 3\nclients 2\n"
      << "intra-threads " << threads << "\n"
      << "place controller 0\n"
      << "place fabric 0\n"
      << "place instance 0 5\n"
      << "place backend 2 5\n"
      << "vip 10.200.0.1\n"
      << "rule 10.200.0.1 name=r-all priority=1 url=* split=10.3.0.1,10.3.0.2,10.3.0.3\n"
      << "at 0ms load 10.200.0.1 rate 40 duration 1200ms\n"
      << "at 400ms fail-instance 0\n"
      << "at 700ms fail-backend 1\n"
      << "at 900ms recover-instance 0\n"
      << "at 1000ms recover-backend 1\n"
      << "at 1100ms add-instance\n";
  return out.str();
}

// The intra-cell timeline again, with the VIP on the stateless fast path and
// a mid-run store-mode flip: cookie minting, journal flush timers and the
// make-before-break rollout must all stay worker-count-invariant.
std::string IntraStatelessScenarioText(std::uint64_t seed, int threads) {
  std::ostringstream out;
  out << "seed " << seed << "\n"
      << "instances 2\nspares 1\nbackends 3\nkv-servers 3\nclients 2\n"
      << "intra-threads " << threads << "\n"
      << "place controller 0\n"
      << "place fabric 0\n"
      << "place instance 0 5\n"
      << "place backend 2 5\n"
      << "vip 10.200.0.1\n"
      << "rule 10.200.0.1 name=r-all priority=1 url=* split=10.3.0.1,10.3.0.2,10.3.0.3\n"
      << "store-mode stateless\n"
      << "at 0ms load 10.200.0.1 rate 40 duration 1200ms\n"
      << "at 400ms fail-instance 0\n"
      << "at 700ms fail-backend 1\n"
      << "at 900ms recover-instance 0\n"
      << "at 1000ms store-mode 10.200.0.1 stateful\n"
      << "at 1100ms add-instance\n";
  return out.str();
}

ScenarioReport RunText(const std::string& text) {
  std::string error;
  auto scenario = ParseScenario(text, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return RunScenario(*scenario, nullptr);
}

TEST(Determinism, ShardedDigestInvariantAcrossWorkerCounts) {
  const std::uint64_t seeds[] = {1, 7, 42, 1337, 4242, 90210, 271828, 3141592};
  for (std::uint64_t seed : seeds) {
    std::uint64_t want = 0;
    std::uint64_t want_ok = 0;
    for (int threads : {1, 2, 4, 8}) {
      const ScenarioReport r = RunText(ShardedScenarioText(seed, threads));
      EXPECT_EQ(r.cells, workload::kScenarioCells);
      EXPECT_GT(r.requests_ok, 0u) << "seed " << seed;
      const std::uint64_t got = FullDigest(r);
      if (threads == 1) {
        want = got;
        want_ok = r.requests_ok;
        continue;
      }
      EXPECT_EQ(got, want) << "seed " << seed << " threads " << threads
                           << ": digest diverged from the single-worker run";
      EXPECT_EQ(r.requests_ok, want_ok) << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Determinism, IntraCellDigestInvariantAcrossWorkerCounts) {
  const std::uint64_t seeds[] = {1, 7, 42, 1337, 4242, 90210, 271828, 3141592};
  for (std::uint64_t seed : seeds) {
    std::uint64_t want = 0;
    std::uint64_t want_ok = 0;
    for (int threads : {1, 2, 4, 8}) {
      const ScenarioReport r = RunText(IntraScenarioText(seed, threads));
      EXPECT_EQ(r.cells, 1);
      EXPECT_GT(r.requests_ok, 0u) << "seed " << seed;
      const std::uint64_t got = FullDigest(r);
      if (threads == 1) {
        want = got;
        want_ok = r.requests_ok;
        continue;
      }
      EXPECT_EQ(got, want) << "seed " << seed << " threads " << threads
                           << ": intra-cell digest diverged from the single-worker run";
      EXPECT_EQ(r.requests_ok, want_ok) << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Determinism, IntraCellStatelessDigestInvariantAcrossWorkerCounts) {
  const std::uint64_t seeds[] = {7, 1337, 90210};
  for (std::uint64_t seed : seeds) {
    std::uint64_t want = 0;
    std::uint64_t want_ok = 0;
    for (int threads : {1, 2, 4, 8}) {
      const ScenarioReport r = RunText(IntraStatelessScenarioText(seed, threads));
      EXPECT_EQ(r.cells, 1);
      EXPECT_GT(r.requests_ok, 0u) << "seed " << seed;
      const std::uint64_t got = FullDigest(r);
      if (threads == 1) {
        want = got;
        want_ok = r.requests_ok;
        continue;
      }
      EXPECT_EQ(got, want) << "seed " << seed << " threads " << threads
                           << ": placed stateless digest diverged from the single-worker run";
      EXPECT_EQ(r.requests_ok, want_ok) << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Determinism, IntraCellRepeatRunIsStable) {
  const std::string text = IntraScenarioText(99, 4);
  EXPECT_EQ(FullDigest(RunText(text)), FullDigest(RunText(text)));
}

TEST(Determinism, ShardedRepeatRunIsStable) {
  // Same seed, same worker count, fresh engine: byte-identical output (no
  // leakage of host state — wall clock, thread ids, allocator layout — into
  // the simulation).
  const std::string text = ShardedScenarioText(99, 4);
  EXPECT_EQ(FullDigest(RunText(text)), FullDigest(RunText(text)));
}

TEST(Determinism, LegacyScenariosReproduceGoldenTraceDigests) {
  // Captured from the pre-parallelism build (traces were verified
  // byte-identical before hardcoding). A mismatch means single-threaded
  // behavior changed: deliberate behavior changes must re-capture these.
  const std::map<std::string, std::uint64_t> kGolden = {
      {"failover.yoda", 0x15ee93c5dac597ddull},
      {"ha-failover.yoda", 0xa775421462113401ull},
      {"https.yoda", 0x9b5a6f8f145fdeceull},
  };
  for (const auto& [name, want] : kGolden) {
    const std::string path = std::string(YODA_SOURCE_DIR) + "/scenarios/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    const ScenarioReport r = RunText(buf.str());
    EXPECT_EQ(TraceDigest(r), want) << name;
  }
}

}  // namespace
