// Baseline (HAProxy-style) proxy tests: normal proxying works, and —
// the paper's Problem 1 — an instance crash breaks every flow it carried.

#include <gtest/gtest.h>

#include "src/workload/testbed.h"

namespace baseline {
namespace {

using workload::FetchOptions;
using workload::FetchResult;
using workload::Testbed;
using workload::TestbedConfig;

class BaselineTest : public ::testing::Test {
 protected:
  std::unique_ptr<Testbed> tb;

  void Build() {
    TestbedConfig cfg;
    cfg.yoda_instances = 1;  // Unused here.
    cfg.baseline_proxies = 3;
    tb = std::make_unique<Testbed>(cfg);
    tb->InstallProxyRules(tb->EqualSplitRules(0, tb->cfg.backends));
  }

  FetchResult FetchVia(int proxy, const std::string& url, FetchOptions opts = {}) {
    FetchResult out;
    bool done = false;
    tb->clients[0]->FetchObject(tb->proxy_ip(proxy), 80, url, opts,
                                [&](const FetchResult& r) {
                                  out = r;
                                  done = true;
                                });
    tb->sim.Run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST_F(BaselineTest, ProxiesRequestEndToEnd) {
  Build();
  const workload::WebObject& obj = tb->catalog->objects()[0];
  FetchResult r = FetchVia(0, obj.url);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, obj.size);
  EXPECT_EQ(tb->proxies[0]->stats().requests_proxied, 1u);
}

TEST_F(BaselineTest, SpreadsBackendsViaRules) {
  Build();
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    tb->clients[0]->FetchObject(tb->proxy_ip(0), 80, tb->catalog->objects()[0].url, {},
                                [&done](const FetchResult& r) {
                                  EXPECT_TRUE(r.ok);
                                  ++done;
                                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 30);
  int used = 0;
  for (auto& s : tb->servers) {
    used += s->stats().requests > 0 ? 1 : 0;
  }
  EXPECT_GE(used, 2);
}

TEST_F(BaselineTest, CrashBreaksInFlightFlowWithoutRetry) {
  Build();
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);
  FetchResult result;
  bool done = false;
  FetchOptions opts;
  opts.http_timeout = sim::Sec(30);
  opts.retries = 0;  // HAProxy-noretry mode.
  tb->clients[0]->FetchObject(tb->proxy_ip(0), 80, big->url, opts,
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(sim::Msec(150));  // Mid-transfer.
  tb->FailProxy(0);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);  // The flow broke: the paper's Problem 1.
  // The client waited out its HTTP timeout (or close to it), not a quick
  // transparent failover.
  EXPECT_GE(result.latency, sim::Sec(29));
}

TEST_F(BaselineTest, RetryModeRecoversAfterHttpTimeout) {
  Build();
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  FetchResult result;
  bool done = false;
  FetchOptions opts;
  opts.http_timeout = sim::Sec(30);
  opts.retries = 1;  // HAProxy-retry mode: browser re-issues the request.
  tb->clients[0]->FetchObject(tb->proxy_ip(1), 80, big->url, opts,
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(sim::Msec(150));
  tb->FailProxy(1);
  // "DNS"/L4 is updated: the retry goes to a live proxy. Emulate by
  // recovering the address onto proxy 2's handler? Simpler: the retry
  // targets the same address, so bring the address back up, backed by a
  // fresh (state-less) proxy process.
  tb->sim.RunUntil(sim::Sec(2));
  tb->proxies[1]->Recover();
  tb->network.SetNodeDown(tb->proxy_ip(1), false);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.retries_used, 1);
  EXPECT_GE(result.latency, sim::Sec(30));  // Paid the full HTTP timeout.
}

TEST_F(BaselineTest, FreshProxyResetsUnknownFlows) {
  Build();
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->proxy_ip(2), 80, big->url, {},
                              [&](const FetchResult& r) {
                                result = r;
                                done = true;
                              });
  tb->sim.RunUntil(sim::Msec(150));
  // Crash and immediately restart: the new process has no TCP state, so
  // in-flight packets get RST (visible connection reset at the client).
  tb->proxies[2]->Fail();
  tb->proxies[2]->Recover();
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.reset);
}

TEST_F(BaselineTest, NoBackendRuleAborts) {
  Build();
  rules::Rule r;
  r.name = "none";
  r.priority = 1;
  r.match.url_glob = "/nowhere/*";
  r.action.backends = {};
  tb->proxies[0]->InstallRules({r});
  FetchOptions opts;
  opts.http_timeout = sim::Sec(5);
  FetchResult result = FetchVia(0, "/nowhere/x");
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace baseline
