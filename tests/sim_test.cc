// Unit tests for the discrete-event simulator core, RNG and metrics.

#include <gtest/gtest.h>

#include <vector>

#include "src/obs/registry.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(Usec(1), 1'000);
  EXPECT_EQ(Msec(1), 1'000'000);
  EXPECT_EQ(Sec(1), 1'000'000'000);
  EXPECT_EQ(Minutes(2), Sec(120));
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_DOUBLE_EQ(ToSeconds(Sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Msec(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMicros(Usec(9)), 9.0);
  EXPECT_EQ(FromSeconds(1.5), Msec(1500));
  EXPECT_EQ(FromMillis(2.5), Usec(2500));
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Msec(30), [&order]() { order.push_back(3); });
  sim.At(Msec(10), [&order]() { order.push_back(1); });
  sim.At(Msec(20), [&order]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Msec(30));
}

TEST(Simulator, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Msec(5), [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  Time fired_at = -1;
  sim.At(Msec(10), [&sim, &fired_at]() {
    sim.After(Msec(5), [&sim, &fired_at]() { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Msec(15));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.After(-Msec(5), [&fired]() { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.At(Msec(10), [&fired]() { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsSafe) {
  Simulator sim;
  TimerHandle h = sim.At(Msec(1), []() {});
  sim.Run();
  EXPECT_FALSE(h.pending());
  h.Cancel();  // No crash.
}

TEST(Simulator, DefaultHandleIsSafe) {
  TimerHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(Msec(10), [&fired]() { ++fired; });
  sim.At(Msec(50), [&fired]() { ++fired; });
  sim.RunUntil(Msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Msec(20));
  sim.RunUntil(Msec(60));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.At(Msec(20), [&fired]() { fired = true; });
  sim.RunUntil(Msec(20));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesBoundedEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.At(Msec(i), [&fired]() { ++fired; });
  }
  EXPECT_EQ(sim.Step(2), 2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Step(10), 3);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Step(), 0);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.After(Msec(1), recurse);
    }
  };
  sim.After(Msec(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, DaemonEventsDoNotKeepRunAlive) {
  Simulator sim;
  int daemon_ticks = 0;
  // A self-rescheduling daemon (like the controller's health monitor). The
  // closure captures `loop` by reference so each firing can schedule a fresh
  // copy without owning itself (no shared_ptr cycle).
  std::function<void()> loop = [&sim, &daemon_ticks, &loop]() {
    ++daemon_ticks;
    sim.After(Msec(100), loop, /*daemon=*/true);
  };
  sim.After(Msec(100), loop, /*daemon=*/true);
  bool work_done = false;
  sim.At(Msec(450), [&work_done]() { work_done = true; });
  sim.Run();  // Must terminate despite the immortal daemon.
  EXPECT_TRUE(work_done);
  EXPECT_EQ(daemon_ticks, 4);  // 100, 200, 300, 400 ms fired before 450 ms.
  EXPECT_EQ(sim.now(), Msec(450));
}

TEST(Simulator, RunUntilExecutesDaemonEventsInWindow) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> loop = [&sim, &ticks, &loop]() {
    ++ticks;
    sim.After(Msec(100), loop, /*daemon=*/true);
  };
  sim.After(Msec(100), loop, /*daemon=*/true);
  sim.RunUntil(Msec(1000));  // RunUntil drives daemons up to the deadline.
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), Msec(1000));
}

TEST(Simulator, CancelledNonDaemonEventDoesNotBlockTermination) {
  Simulator sim;
  TimerHandle h = sim.At(Msec(10), []() { FAIL() << "cancelled event ran"; });
  h.Cancel();
  sim.Run();  // Terminates immediately.
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, QueueHighWaterTracksDeepestQueue) {
  Simulator sim;
  EXPECT_EQ(sim.queue_high_water(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.At(Msec(i), []() {});
  }
  EXPECT_EQ(sim.queue_high_water(), 5u);
  sim.Run();
  // Draining the queue does not lower the high-water mark.
  EXPECT_EQ(sim.queue_high_water(), 5u);
  EXPECT_EQ(sim.queued_events(), 0u);
}

TEST(Simulator, CancelImmediatelyShrinksQueuedEvents) {
  // Regression for the tombstone era: cancelled events used to linger in the
  // queue (and inflate the gauges) until their timestamp was reached. The
  // wheel frees the record on Cancel, so the gauge drops at once.
  Simulator sim;
  std::vector<TimerHandle> handles;
  handles.reserve(100);
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.At(Msec(10 + i), []() {}));
  }
  EXPECT_EQ(sim.queued_events(), 100u);
  for (int i = 0; i < 60; ++i) {
    handles[static_cast<std::size_t>(i)].Cancel();
    EXPECT_EQ(sim.queued_events(), static_cast<std::size_t>(100 - i - 1));
  }
  // High-water reflects the true maximum, not the tombstone-inflated one.
  EXPECT_EQ(sim.queue_high_water(), 100u);
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 40u);
  EXPECT_EQ(sim.queued_events(), 0u);
}

TEST(Simulator, RawEventsFireWithContextAndArg) {
  Simulator sim;
  struct Ctx {
    std::vector<std::uint64_t> args;
    Time last_at = -1;
    Simulator* sim = nullptr;
  } ctx;
  ctx.sim = &sim;
  auto fn = [](void* c, std::uint64_t arg) {
    auto* s = static_cast<Ctx*>(c);
    s->args.push_back(arg);
    s->last_at = s->sim->now();
  };
  sim.AtRaw(Msec(5), fn, &ctx, 7);
  sim.AfterRaw(Msec(10), fn, &ctx, 9);
  TimerHandle cancelled = sim.AtRaw(Msec(7), fn, &ctx, 8);
  cancelled.Cancel();
  sim.Run();
  EXPECT_EQ(ctx.args, (std::vector<std::uint64_t>{7, 9}));
  EXPECT_EQ(ctx.last_at, Msec(10));
}

// Property: equal-timestamp events fire in insertion order even when they are
// admitted from very different states — some directly due, some from level-0
// slots, some cascaded down from high wheel levels, some from the overflow
// list — interleaved with timers at other timestamps.
TEST(Simulator, EqualTimestampFifoHoldsAcrossWheelLevels) {
  Simulator sim;
  std::vector<int> order;
  int next_tag = 0;
  // Schedule bursts at a common timestamp from nested horizons: each burst
  // is admitted at a different sim-time distance from the target, so the
  // records traverse different wheel levels (and the overflow list for the
  // farthest) before converging on the same due tick.
  const Time target = Hours(60 * 24);  // 60 days: beyond the ~52-day wheel horizon at t=0.
  for (int burst = 0; burst < 6; ++burst) {
    // Admission points walk toward the target: 0, T/32, T/16 ... so deltas
    // shrink from "overflow" range down to "level 0" range.
    const Time admit_at = burst == 0 ? 0 : target - target / (1 << (burst * 2));
    sim.At(admit_at, [&sim, &order, &next_tag, target]() {
      for (int i = 0; i < 4; ++i) {
        const int tag = next_tag++;
        sim.At(target, [&order, tag]() { order.push_back(tag); });
      }
    });
    // Noise at unrelated timestamps must not perturb the FIFO.
    sim.At(admit_at + Msec(1), []() {});
  }
  sim.Run();
  ASSERT_EQ(order.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "FIFO violated at position " << i;
  }
}

// 1M-timer stress: schedule/cancel/fire interleave with deterministic
// pseudo-random deltas spanning every wheel level, verifying exact gauge
// accounting and that every survivor fires exactly once in (when, seq) order.
TEST(Simulator, MillionTimerScheduleCancelFireStress) {
  Simulator sim;
  Rng rng(4242);
  constexpr int kTimers = 1'000'000;
  std::vector<TimerHandle> handles;
  handles.reserve(kTimers);
  std::uint64_t expected_fires = 0;
  std::uint64_t fired = 0;
  Time last_when = 0;
  auto body = [&sim, &fired, &last_when]() {
    EXPECT_GE(sim.now(), last_when);
    last_when = sim.now();
    ++fired;
  };
  for (int i = 0; i < kTimers; ++i) {
    // Deltas from sub-tick to ~17 minutes: exercises due-path, all wheel
    // levels and slot cascades.
    const auto shift = static_cast<int>(rng.UniformInt(0, 40));
    const Time when = 1 + rng.UniformInt(0, (1LL << shift));
    handles.push_back(sim.At(when, body));
    ++expected_fires;
    // Cancel roughly every third previously scheduled timer.
    if (i % 3 == 0) {
      const auto victim = static_cast<std::size_t>(rng.UniformInt(0, i));
      if (handles[victim].pending()) {
        handles[victim].Cancel();
        --expected_fires;
      }
    }
  }
  EXPECT_EQ(sim.queued_events(), expected_fires);
  sim.Run();
  EXPECT_EQ(fired, expected_fires);
  EXPECT_EQ(sim.queued_events(), 0u);
  for (const TimerHandle& h : handles) {
    EXPECT_FALSE(h.pending());
  }
}

// Randomized schedule/cancel/step/run-until mix with a full structural audit
// after every operation. This is the net that caught a real wheel bug during
// development: a cascaded slot can hold next-lap records (same slot index,
// one ring turn ahead) that re-enter the very slot being redistributed.
TEST(Simulator, RandomizedOpsKeepWheelStructurallyConsistent) {
  for (const std::uint64_t seed : {1ull, 7ull, 4242ull}) {
    Simulator sim;
    Rng rng(seed);
    std::vector<TimerHandle> handles;
    for (int op = 0; op < 60'000; ++op) {
      const int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind <= 4) {
        const auto shift = static_cast<int>(rng.UniformInt(0, 34));
        const auto delay = static_cast<Duration>(rng.UniformInt(0, 1LL << shift));
        handles.push_back(sim.After(delay, []() {}, rng.UniformInt(0, 4) == 0));
      } else if (kind <= 6 && !handles.empty()) {
        const auto i =
            static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(handles.size()) - 1));
        handles[i].Cancel();
        handles[i] = handles.back();
        handles.pop_back();
      } else if (kind == 7) {
        sim.Step(static_cast<int>(rng.UniformInt(1, 50)));
      } else if (kind == 8) {
        sim.RunUntil(sim.now() + static_cast<Duration>(rng.UniformInt(0, 1 << 20)));
      }
      // Audit every 64 ops (every op would make the test quadratic).
      if ((op & 63) == 0) {
        ASSERT_TRUE(sim.AuditConsistency()) << "seed " << seed << " op " << op;
      }
    }
    sim.Run();
    ASSERT_TRUE(sim.AuditConsistency()) << "seed " << seed << " after drain";
  }
}

TEST(Simulator, EventLoopGaugesReadLiveThroughRegistry) {
  Simulator sim;
  obs::Registry reg;
  obs::BindSimulatorGauges(reg, sim);
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.events_executed").value(), 0.0);
  for (int i = 0; i < 3; ++i) {
    sim.At(Msec(i), []() {});
  }
  sim.Run();
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.events_executed").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.queue_depth_high_water").value(), 3.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(3);
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    total += rng.Exponential(4.0);
  }
  EXPECT_NEAR(total / n, 4.0, 0.1);
}

TEST(Rng, LogNormalMedianApproximatelyCorrect) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 50'001; ++i) {
    v.push_back(rng.LogNormalFromMedian(46'000, 1.1));
  }
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  EXPECT_NEAR(v[v.size() / 2], 46'000, 2'500);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40'000; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Zipf, MostPopularRankDominates) {
  Rng rng(7);
  ZipfDistribution zipf(100, 1.2);
  int rank0 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 0) {
      ++rank0;
    }
  }
  EXPECT_NEAR(static_cast<double>(rank0) / n, zipf.Pmf(0), 0.02);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.9);
  double total = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.Pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, MeanMinMax) {
  Histogram h;
  h.Add(1);
  h.Add(5);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Mean(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  EXPECT_NEAR(h.Percentile(0), 1, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 100, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(90), 90.1, 0.2);
}

TEST(Histogram, PercentileSingleSampleIsThatSample) {
  Histogram h;
  h.Add(7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.5);
}

TEST(Histogram, PercentileEndpointsAreMinAndMax) {
  Histogram h;
  h.Add(3);
  h.Add(1);
  h.Add(2);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3);
}

TEST(Histogram, PercentileClampsOutOfRangeRequests) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.Percentile(-10), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(250), 3);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    h.Add(rng.UniformDouble());
  }
  auto cdf = h.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(1);
  h.Clear();
  EXPECT_TRUE(h.empty());
}

TEST(WindowedRate, ComputesPerSecondRates) {
  WindowedRate rate(Sec(1));
  for (int i = 0; i < 10; ++i) {
    rate.Record(Msec(i * 100));  // 10 events in the first second.
  }
  rate.Record(Msec(1500));  // 1 event in the second second.
  rate.FlushUpTo(Sec(3));
  ASSERT_GE(rate.Windows().size(), 2u);
  EXPECT_DOUBLE_EQ(rate.Windows()[0].second, 10.0);
  EXPECT_DOUBLE_EQ(rate.Windows()[1].second, 1.0);
  EXPECT_DOUBLE_EQ(rate.Windows()[2].second, 0.0);
}

TEST(UtilizationTracker, ComputesBusyFraction) {
  UtilizationTracker t(1.0);
  t.Reset(0);
  t.AddBusy(Msec(250));
  EXPECT_NEAR(t.Utilization(Sec(1)), 0.25, 1e-9);
}

TEST(UtilizationTracker, MultiCoreCapacityScales) {
  UtilizationTracker t(4.0);
  t.Reset(0);
  t.AddBusy(Sec(2));
  EXPECT_NEAR(t.Utilization(Sec(1)), 0.5, 1e-9);
}

TEST(UtilizationTracker, ResetStartsNewWindow) {
  UtilizationTracker t(1.0);
  t.AddBusy(Msec(500));
  t.Reset(Sec(1));
  EXPECT_NEAR(t.Utilization(Sec(2)), 0.0, 1e-9);
}

TEST(FormatDouble, Formats) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace sim
