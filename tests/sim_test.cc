// Unit tests for the discrete-event simulator core, RNG and metrics.

#include <gtest/gtest.h>

#include <vector>

#include "src/obs/registry.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(Usec(1), 1'000);
  EXPECT_EQ(Msec(1), 1'000'000);
  EXPECT_EQ(Sec(1), 1'000'000'000);
  EXPECT_EQ(Minutes(2), Sec(120));
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_DOUBLE_EQ(ToSeconds(Sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Msec(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMicros(Usec(9)), 9.0);
  EXPECT_EQ(FromSeconds(1.5), Msec(1500));
  EXPECT_EQ(FromMillis(2.5), Usec(2500));
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Msec(30), [&order]() { order.push_back(3); });
  sim.At(Msec(10), [&order]() { order.push_back(1); });
  sim.At(Msec(20), [&order]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Msec(30));
}

TEST(Simulator, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Msec(5), [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  Time fired_at = -1;
  sim.At(Msec(10), [&sim, &fired_at]() {
    sim.After(Msec(5), [&sim, &fired_at]() { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Msec(15));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.After(-Msec(5), [&fired]() { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.At(Msec(10), [&fired]() { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsSafe) {
  Simulator sim;
  TimerHandle h = sim.At(Msec(1), []() {});
  sim.Run();
  EXPECT_FALSE(h.pending());
  h.Cancel();  // No crash.
}

TEST(Simulator, DefaultHandleIsSafe) {
  TimerHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(Msec(10), [&fired]() { ++fired; });
  sim.At(Msec(50), [&fired]() { ++fired; });
  sim.RunUntil(Msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Msec(20));
  sim.RunUntil(Msec(60));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.At(Msec(20), [&fired]() { fired = true; });
  sim.RunUntil(Msec(20));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesBoundedEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.At(Msec(i), [&fired]() { ++fired; });
  }
  EXPECT_EQ(sim.Step(2), 2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Step(10), 3);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Step(), 0);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.After(Msec(1), recurse);
    }
  };
  sim.After(Msec(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, DaemonEventsDoNotKeepRunAlive) {
  Simulator sim;
  int daemon_ticks = 0;
  // A self-rescheduling daemon (like the controller's health monitor).
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&sim, &daemon_ticks, loop]() {
    ++daemon_ticks;
    sim.After(Msec(100), *loop, /*daemon=*/true);
  };
  sim.After(Msec(100), *loop, /*daemon=*/true);
  bool work_done = false;
  sim.At(Msec(450), [&work_done]() { work_done = true; });
  sim.Run();  // Must terminate despite the immortal daemon.
  EXPECT_TRUE(work_done);
  EXPECT_EQ(daemon_ticks, 4);  // 100, 200, 300, 400 ms fired before 450 ms.
  EXPECT_EQ(sim.now(), Msec(450));
}

TEST(Simulator, RunUntilExecutesDaemonEventsInWindow) {
  Simulator sim;
  int ticks = 0;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&sim, &ticks, loop]() {
    ++ticks;
    sim.After(Msec(100), *loop, /*daemon=*/true);
  };
  sim.After(Msec(100), *loop, /*daemon=*/true);
  sim.RunUntil(Msec(1000));  // RunUntil drives daemons up to the deadline.
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), Msec(1000));
}

TEST(Simulator, CancelledNonDaemonEventDoesNotBlockTermination) {
  Simulator sim;
  TimerHandle h = sim.At(Msec(10), []() { FAIL() << "cancelled event ran"; });
  h.Cancel();
  sim.Run();  // Terminates immediately.
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, QueueHighWaterTracksDeepestQueue) {
  Simulator sim;
  EXPECT_EQ(sim.queue_high_water(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.At(Msec(i), []() {});
  }
  EXPECT_EQ(sim.queue_high_water(), 5u);
  sim.Run();
  // Draining the queue does not lower the high-water mark.
  EXPECT_EQ(sim.queue_high_water(), 5u);
  EXPECT_EQ(sim.queued_events(), 0u);
}

TEST(Simulator, EventLoopGaugesReadLiveThroughRegistry) {
  Simulator sim;
  obs::Registry reg;
  obs::BindSimulatorGauges(reg, sim);
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.events_executed").value(), 0.0);
  for (int i = 0; i < 3; ++i) {
    sim.At(Msec(i), []() {});
  }
  sim.Run();
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.events_executed").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("sim.queue_depth_high_water").value(), 3.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(3);
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    total += rng.Exponential(4.0);
  }
  EXPECT_NEAR(total / n, 4.0, 0.1);
}

TEST(Rng, LogNormalMedianApproximatelyCorrect) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 50'001; ++i) {
    v.push_back(rng.LogNormalFromMedian(46'000, 1.1));
  }
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  EXPECT_NEAR(v[v.size() / 2], 46'000, 2'500);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40'000; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Zipf, MostPopularRankDominates) {
  Rng rng(7);
  ZipfDistribution zipf(100, 1.2);
  int rank0 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 0) {
      ++rank0;
    }
  }
  EXPECT_NEAR(static_cast<double>(rank0) / n, zipf.Pmf(0), 0.02);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.9);
  double total = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.Pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, MeanMinMax) {
  Histogram h;
  h.Add(1);
  h.Add(5);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Mean(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  EXPECT_NEAR(h.Percentile(0), 1, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 100, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(90), 90.1, 0.2);
}

TEST(Histogram, PercentileSingleSampleIsThatSample) {
  Histogram h;
  h.Add(7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.5);
}

TEST(Histogram, PercentileEndpointsAreMinAndMax) {
  Histogram h;
  h.Add(3);
  h.Add(1);
  h.Add(2);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3);
}

TEST(Histogram, PercentileClampsOutOfRangeRequests) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.Percentile(-10), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(250), 3);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    h.Add(rng.UniformDouble());
  }
  auto cdf = h.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(1);
  h.Clear();
  EXPECT_TRUE(h.empty());
}

TEST(WindowedRate, ComputesPerSecondRates) {
  WindowedRate rate(Sec(1));
  for (int i = 0; i < 10; ++i) {
    rate.Record(Msec(i * 100));  // 10 events in the first second.
  }
  rate.Record(Msec(1500));  // 1 event in the second second.
  rate.FlushUpTo(Sec(3));
  ASSERT_GE(rate.Windows().size(), 2u);
  EXPECT_DOUBLE_EQ(rate.Windows()[0].second, 10.0);
  EXPECT_DOUBLE_EQ(rate.Windows()[1].second, 1.0);
  EXPECT_DOUBLE_EQ(rate.Windows()[2].second, 0.0);
}

TEST(UtilizationTracker, ComputesBusyFraction) {
  UtilizationTracker t(1.0);
  t.Reset(0);
  t.AddBusy(Msec(250));
  EXPECT_NEAR(t.Utilization(Sec(1)), 0.25, 1e-9);
}

TEST(UtilizationTracker, MultiCoreCapacityScales) {
  UtilizationTracker t(4.0);
  t.Reset(0);
  t.AddBusy(Sec(2));
  EXPECT_NEAR(t.Utilization(Sec(1)), 0.5, 1e-9);
}

TEST(UtilizationTracker, ResetStartsNewWindow) {
  UtilizationTracker t(1.0);
  t.AddBusy(Msec(500));
  t.Reset(Sec(1));
  EXPECT_NEAR(t.Utilization(Sec(2)), 0.0, 1e-9);
}

TEST(FormatDouble, Formats) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace sim
