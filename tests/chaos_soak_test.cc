// Chaos soak (ctest label: "soak"): randomized-but-deterministic fault
// timelines against the full testbed under open-loop load, with post-hoc
// invariant checking over the flight-recorder traces.
//
// Invariants asserted per seed:
//   - every flow admitted by an instance reaches an explicit terminal event
//     (kCleanup or kFlowReset), unless its instance crashed mid-run;
//   - per-flow backend pinning never changes without a re-switch/promote;
//   - event timestamps are monotone within each flow;
//   - no flow is silently stuck past the run deadline (the invariant above,
//     applied after a post-load drain window that exceeds the idle GC);
//   - same-seed runs export byte-identical JSONL traces.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/chaos.h"
#include "src/workload/testbed.h"

namespace workload {
namespace {

struct SoakOutcome {
  fault::SoakReport report;
  std::vector<fault::ChaosEpisode> episodes;
  std::string jsonl;
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
};

SoakOutcome RunSoak(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.yoda_instances = 3;
  cfg.backends = 4;
  cfg.clients = 4;
  // Soak-speed GC so "stuck" is observable within the run (a flow alive past
  // idle_timeout after the load stops would fail the terminate invariant).
  cfg.instance_template.flow_idle_timeout = sim::Msec(400);
  cfg.instance_template.idle_scan_interval = sim::Msec(100);
  cfg.instance_template.server_syn_timeout = sim::Msec(150);
  // Failure-path hardening under test: monitor hysteresis + readmission,
  // KV retries + hedged reads, bounded takeover re-fetch (on by default).
  cfg.controller.monitor_interval = sim::Msec(50);
  cfg.controller.fail_after_misses = 3;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 2;
  cfg.kv_client.max_retries = 2;
  cfg.kv_client.read_mode = kv::ReadMode::kHedged;
  cfg.kv_client.hedge_delay = sim::Msec(2);
  cfg.kv_client.op_timeout = sim::Msec(20);
  Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  // Fault timeline: drawn up front, entirely from this seeded Rng.
  fault::ChaosOptions opts;
  opts.window_start = sim::Msec(100);
  opts.window_end = sim::Msec(900);
  opts.episodes = 8;
  opts.min_duration = sim::Msec(10);
  opts.max_duration = sim::Msec(100);
  for (int i = 0; i < cfg.yoda_instances; ++i) {
    opts.instances.push_back(tb.instance_ip(i));
  }
  for (int i = 0; i < cfg.kv_servers; ++i) {
    opts.kv_nodes.push_back(tb.kv_ip(i));
  }
  opts.links = {{tb.instance_ip(0), tb.backend_ip(0)},
                {tb.instance_ip(1), tb.backend_ip(1)}};
  sim::Rng chaos_rng(seed ^ 0xc4a05c4a05ULL);
  SoakOutcome out;
  out.episodes = fault::RandomSchedule(*tb.faults, chaos_rng, opts);

  // Open-loop load across the fault window. Small objects keep per-fetch
  // latency a few RTTs so the 2 s browser timeout marks genuinely dead flows,
  // not slow transfers.
  OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 250;
  gcfg.duration = sim::Msec(1000);
  gcfg.target = tb.vip();
  gcfg.fetch.http_timeout = sim::Sec(2);
  gcfg.fetch.retries = 1;
  for (const WebObject& o : tb.catalog->objects()) {
    if (o.size <= 40'000) {
      gcfg.urls.push_back(o.url);
    }
    if (gcfg.urls.size() == 8) {
      break;
    }
  }
  EXPECT_FALSE(gcfg.urls.empty());
  std::vector<BrowserClient*> clients;
  for (auto& c : tb.clients) {
    clients.push_back(c.get());
  }
  OpenLoopGenerator gen(&tb.sim, clients, seed ^ 0x10adULL, gcfg);
  gen.Start();

  // Drain: run well past load end + client timeouts + idle GC, so every
  // still-open flow either terminates or counts as stuck.
  tb.sim.RunUntil(sim::Msec(1000) + sim::Sec(2) * 2 + sim::Sec(4));

  fault::SoakExpectations expect;
  for (const fault::ChaosEpisode& ep : out.episodes) {
    if (ep.kind == fault::FaultKind::kCrash) {
      expect.crashed.insert(ep.target);
    }
  }
  out.report = fault::CheckSoakInvariants(tb.flight, expect);
  std::ostringstream os;
  tb.flight.ExportJsonLines(os);
  out.jsonl = os.str();
  out.completed = gen.completed();
  out.issued = gen.issued();
  return out;
}

std::string DescribeEpisodes(const std::vector<fault::ChaosEpisode>& episodes) {
  std::string s;
  for (const auto& ep : episodes) {
    s += "  " + ep.Describe() + "\n";
  }
  return s;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, InvariantsHoldUnderRandomFaults) {
  const SoakOutcome out = RunSoak(GetParam());
  ASSERT_FALSE(out.episodes.empty());
  EXPECT_GT(out.issued, 100u);
  // The run must have made real progress despite the faults.
  EXPECT_GT(out.completed, out.issued / 2);
  EXPECT_GT(out.report.flows_checked, 0u);
  std::string violations;
  for (const auto& v : out.report.violations) {
    violations += "  " + v + "\n";
  }
  EXPECT_TRUE(out.report.ok()) << "violations:\n"
                               << violations << "fault timeline:\n"
                               << DescribeEpisodes(out.episodes);
}

// Seeds 1..8: the ISSUE's >= 8-seed soak matrix.
INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::Range<std::uint64_t>(1, 9));

// Crash an assigned instance while an assignment rollout is in flight: the
// make phase's staggered mux writes have not converged and the break phase is
// parked behind the convergence barrier when the instance dies. The failure
// reconcile (scrub + evict + headroom repair) overtakes the rollout; epoch
// gating must make the overtaken plan's stragglers harmless, and no VIP may
// ever see an empty mux pool along the way.
TEST(ChaosRolloutCrash, MidRolloutCrashNeverEmptiesAPool) {
  TestbedConfig cfg;
  cfg.seed = 11;
  cfg.yoda_instances = 4;
  cfg.backends = 4;
  cfg.clients = 2;
  cfg.controller.monitor_interval = sim::Msec(50);
  cfg.controller.fail_after_misses = 2;
  cfg.instance_template.flow_idle_timeout = sim::Msec(400);
  cfg.instance_template.idle_scan_interval = sim::Msec(100);
  cfg.instance_template.server_syn_timeout = sim::Msec(150);
  Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();

  OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 200;
  gcfg.duration = sim::Msec(1000);
  gcfg.target = tb.vip();
  gcfg.fetch.http_timeout = sim::Sec(2);
  gcfg.fetch.retries = 1;
  for (const WebObject& o : tb.catalog->objects()) {
    if (o.size <= 40'000) {
      gcfg.urls.push_back(o.url);
    }
    if (gcfg.urls.size() == 8) {
      break;
    }
  }
  ASSERT_FALSE(gcfg.urls.empty());
  std::vector<BrowserClient*> clients;
  for (auto& c : tb.clients) {
    clients.push_back(c.get());
  }
  OpenLoopGenerator gen(&tb.sim, clients, cfg.seed ^ 0x10adULL, gcfg);
  gen.Start();

  // Round 1 shrinks the bootstrap all-to-all pool to 2 instances; round 2
  // grows it to 3 — a genuine make/barrier/break rollout whose staggered
  // writes span hundreds of ms. The crash lands 30 ms into round 2.
  std::map<net::IpAddr, yoda::Controller::VipDemand> demand;
  tb.sim.At(sim::Msec(200), [&] {
    demand[tb.vip()] = {0.4, 2, 0};
    ASSERT_TRUE(tb.controller->ApplyManyToMany(demand, 1.0, 2000));
  });
  net::IpAddr victim = 0;
  tb.sim.At(sim::Msec(400), [&] {
    demand[tb.vip()] = {0.6, 3, 0};
    ASSERT_TRUE(tb.controller->ApplyManyToMany(demand, 1.0, 2000));
  });
  tb.sim.At(sim::Msec(430), [&] {
    const auto assigned = tb.controller->AssignedInstances(tb.vip());
    ASSERT_FALSE(assigned.empty());
    victim = assigned[0];
    tb.faults->CrashNode(victim);
  });

  tb.sim.RunUntil(sim::Msec(1000) + sim::Sec(2) * 2 + sim::Sec(4));
  ASSERT_NE(victim, 0u);

  // The rollout-crash interleaving settled: no plan still in flight, the dead
  // instance is gone from the assignment, and the repair kept n_v replicas.
  EXPECT_EQ(tb.controller->actuator().plans_in_flight(), 0);
  const auto settled = tb.controller->AssignedInstances(tb.vip());
  EXPECT_EQ(std::count(settled.begin(), settled.end(), victim), 0);
  EXPECT_EQ(settled.size(), 3u);
  EXPECT_EQ(tb.controller->detected_failures(), 1);

  fault::SoakExpectations expect;
  expect.crashed.insert(victim);
  const fault::SoakReport report = fault::CheckSoakInvariants(tb.flight, expect);
  std::string violations;
  for (const auto& v : report.violations) {
    violations += "  " + v + "\n";
  }
  EXPECT_TRUE(report.ok()) << "violations:\n" << violations;
  EXPECT_GT(gen.completed(), gen.issued() / 2);

  // No VIP with >= 1 pool member ever dropped to zero members mid-update.
  const fault::PoolContinuityReport pools = fault::CheckPoolContinuity(tb.flight);
  EXPECT_GE(pools.vips_checked, 1u);
  std::string pool_violations;
  for (const auto& v : pools.violations) {
    pool_violations += "  " + v + "\n";
  }
  EXPECT_TRUE(pools.ok()) << "pool continuity violations:\n" << pool_violations;
  // The overtaken rollout really did leave stragglers for the gating to eat.
  EXPECT_GT(pools.stale_skipped, 0u);
}

// --- controller-HA chaos soak -----------------------------------------------
//
// Same harness, but the control plane runs as 3 lease-contending replicas and
// the fault timeline additionally draws leader-kill episodes (crash + warm
// restart of a random controller replica — which may hit a standby; that is
// part of the chaos). Extra invariants on top of the data-plane set:
//   - at most one valid lease holder per fencing token, ever (token strictly
//     increases across acquisitions — checked by CheckSoakInvariants);
//   - pool continuity: no VIP blacks out across controller failovers;
//   - the fleet ends with exactly one acting leader.

SoakOutcome RunHaSoak(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.yoda_instances = 3;
  cfg.backends = 4;
  cfg.clients = 4;
  cfg.controller_ha = true;
  cfg.controllers = 3;
  cfg.instance_template.flow_idle_timeout = sim::Msec(400);
  cfg.instance_template.idle_scan_interval = sim::Msec(100);
  cfg.instance_template.server_syn_timeout = sim::Msec(150);
  cfg.controller.monitor_interval = sim::Msec(50);
  cfg.controller.fail_after_misses = 3;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 2;
  cfg.kv_client.max_retries = 2;
  cfg.kv_client.read_mode = kv::ReadMode::kHedged;
  cfg.kv_client.hedge_delay = sim::Msec(2);
  cfg.kv_client.op_timeout = sim::Msec(20);
  Testbed tb(cfg);
  tb.StartAllControllers();
  yoda::Controller* leader = tb.AwaitLeader();
  EXPECT_NE(leader, nullptr);
  leader->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, cfg.backends));

  fault::ChaosOptions opts;
  opts.window_start = sim::Msec(100);
  opts.window_end = sim::Msec(900);
  opts.episodes = 6;
  opts.min_duration = sim::Msec(10);
  opts.max_duration = sim::Msec(100);
  for (int i = 0; i < cfg.yoda_instances; ++i) {
    opts.instances.push_back(tb.instance_ip(i));
  }
  for (int i = 0; i < cfg.kv_servers; ++i) {
    opts.kv_nodes.push_back(tb.kv_ip(i));
  }
  for (int i = 0; i < cfg.controllers; ++i) {
    opts.controllers.push_back(tb.controller_ip(i));
  }
  opts.leader_kills = 2;
  sim::Rng chaos_rng(seed ^ 0xc4a05c4a05ULL);
  SoakOutcome out;
  out.episodes = fault::RandomSchedule(*tb.faults, chaos_rng, opts);

  OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 250;
  gcfg.duration = sim::Msec(1000);
  gcfg.target = tb.vip();
  gcfg.fetch.http_timeout = sim::Sec(2);
  gcfg.fetch.retries = 1;
  for (const WebObject& o : tb.catalog->objects()) {
    if (o.size <= 40'000) {
      gcfg.urls.push_back(o.url);
    }
    if (gcfg.urls.size() == 8) {
      break;
    }
  }
  EXPECT_FALSE(gcfg.urls.empty());
  std::vector<BrowserClient*> clients;
  for (auto& c : tb.clients) {
    clients.push_back(c.get());
  }
  OpenLoopGenerator gen(&tb.sim, clients, seed ^ 0x10adULL, gcfg);
  gen.Start();

  tb.sim.RunUntil(sim::Msec(1000) + sim::Sec(2) * 2 + sim::Sec(4));

  fault::SoakExpectations expect;
  for (const fault::ChaosEpisode& ep : out.episodes) {
    if (ep.kind == fault::FaultKind::kCrash) {
      expect.crashed.insert(ep.target);
    }
  }
  out.report = fault::CheckSoakInvariants(tb.flight, expect);
  std::ostringstream os;
  tb.flight.ExportJsonLines(os);
  out.jsonl = os.str();
  out.completed = gen.completed();
  out.issued = gen.issued();

  // Post-run control-plane sanity: after all warm restarts, exactly one
  // replica is the acting leader and no rollout is stuck in flight.
  int acting = 0;
  for (int i = 0; i < tb.controller_count(); ++i) {
    if (!tb.ControllerAt(i)->crashed() && tb.ControllerAt(i)->ActingLeader()) {
      ++acting;
    }
  }
  EXPECT_EQ(acting, 1);
  const fault::PoolContinuityReport pools = fault::CheckPoolContinuity(tb.flight);
  EXPECT_TRUE(pools.ok()) << (pools.violations.empty() ? "" : pools.violations.front());
  return out;
}

class ChaosHaSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosHaSoak, InvariantsHoldUnderLeaderKills) {
  const SoakOutcome out = RunHaSoak(GetParam());
  ASSERT_FALSE(out.episodes.empty());
  EXPECT_GT(out.issued, 100u);
  EXPECT_GT(out.completed, out.issued / 2);
  // The lease-safety invariant ran over at least the initial acquisition.
  EXPECT_GE(out.report.lease_acquisitions, 1u);
  std::string violations;
  for (const auto& v : out.report.violations) {
    violations += "  " + v + "\n";
  }
  EXPECT_TRUE(out.report.ok()) << "violations:\n"
                               << violations << "fault timeline:\n"
                               << DescribeEpisodes(out.episodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosHaSoak, ::testing::Range<std::uint64_t>(1, 5));

TEST(ChaosHaSoakDeterminism, SameSeedProducesByteIdenticalTraces) {
  const SoakOutcome first = RunHaSoak(2);
  const SoakOutcome second = RunHaSoak(2);
  ASSERT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.completed, second.completed);
}

// Deliberate worst case: kill the leader mid-run, then kill its successor as
// well — a double failover under load. Every acquisition must carry a
// strictly larger fencing token, the fleet must keep serving, and the cluster
// must end with one leader and settled pools.
TEST(ChaosHaDoubleKill, BackToBackLeaderKillsNeverSplitTheBrain) {
  TestbedConfig cfg;
  cfg.seed = 17;
  cfg.yoda_instances = 3;
  cfg.backends = 4;
  cfg.clients = 4;
  cfg.controller_ha = true;
  cfg.controllers = 3;
  cfg.instance_template.flow_idle_timeout = sim::Msec(400);
  cfg.instance_template.idle_scan_interval = sim::Msec(100);
  cfg.instance_template.server_syn_timeout = sim::Msec(150);
  cfg.controller.monitor_interval = sim::Msec(50);
  cfg.controller.fail_after_misses = 3;
  Testbed tb(cfg);
  tb.StartAllControllers();
  yoda::Controller* boot_leader = tb.AwaitLeader();
  ASSERT_NE(boot_leader, nullptr);
  boot_leader->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, cfg.backends));

  OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 200;
  gcfg.duration = sim::Msec(1500);
  gcfg.target = tb.vip();
  gcfg.fetch.http_timeout = sim::Sec(2);
  gcfg.fetch.retries = 1;
  for (const WebObject& o : tb.catalog->objects()) {
    if (o.size <= 40'000) {
      gcfg.urls.push_back(o.url);
    }
    if (gcfg.urls.size() == 8) {
      break;
    }
  }
  ASSERT_FALSE(gcfg.urls.empty());
  std::vector<BrowserClient*> clients;
  for (auto& c : tb.clients) {
    clients.push_back(c.get());
  }
  OpenLoopGenerator gen(&tb.sim, clients, cfg.seed ^ 0x10adULL, gcfg);
  gen.Start();

  // Kill whoever leads at 300 ms; kill the successor at 800 ms (past the
  // 300 ms lease TTL, so a new leader exists to kill).
  auto kill_current_leader = [&tb] {
    for (int i = 0; i < tb.controller_count(); ++i) {
      yoda::Controller* c = tb.ControllerAt(i);
      if (!c->crashed() && c->ActingLeader()) {
        tb.CrashController(i);
        return;
      }
    }
    FAIL() << "no acting leader to kill";
  };
  tb.sim.At(sim::Msec(300), kill_current_leader);
  tb.sim.At(sim::Msec(800), kill_current_leader);

  tb.sim.RunUntil(sim::Msec(1500) + sim::Sec(2) * 2 + sim::Sec(4));

  // Three acquisitions (boot + two failovers), tokens strictly increasing.
  fault::SoakExpectations expect;
  const fault::SoakReport report = fault::CheckSoakInvariants(tb.flight, expect);
  EXPECT_GE(report.lease_acquisitions, 3u);
  std::string violations;
  for (const auto& v : report.violations) {
    violations += "  " + v + "\n";
  }
  EXPECT_TRUE(report.ok()) << "violations:\n" << violations;

  // The data plane rode through both failovers.
  EXPECT_GT(gen.completed(), gen.issued() / 2);
  const fault::PoolContinuityReport pools = fault::CheckPoolContinuity(tb.flight);
  EXPECT_GE(pools.vips_checked, 1u);
  EXPECT_TRUE(pools.ok()) << (pools.violations.empty() ? "" : pools.violations.front());

  // One acting leader among the two survivors; both kills found their mark.
  int acting = 0;
  int dead = 0;
  for (int i = 0; i < tb.controller_count(); ++i) {
    yoda::Controller* c = tb.ControllerAt(i);
    acting += (!c->crashed() && c->ActingLeader()) ? 1 : 0;
    dead += c->crashed() ? 1 : 0;
  }
  EXPECT_EQ(acting, 1);
  EXPECT_EQ(dead, 2);
  EXPECT_EQ(tb.LeaderController()->actuator().plans_in_flight(), 0);
}

TEST(ChaosSoakDeterminism, SameSeedProducesByteIdenticalTraces) {
  const SoakOutcome first = RunSoak(3);
  const SoakOutcome second = RunSoak(3);
  ASSERT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.completed, second.completed);
  ASSERT_EQ(first.episodes.size(), second.episodes.size());
  for (std::size_t i = 0; i < first.episodes.size(); ++i) {
    EXPECT_EQ(first.episodes[i].Describe(), second.episodes[i].Describe());
  }
}

TEST(ChaosSoakDeterminism, DifferentSeedsProduceDifferentTimelines) {
  const SoakOutcome a = RunSoak(5);
  const SoakOutcome b = RunSoak(6);
  EXPECT_NE(DescribeEpisodes(a.episodes), DescribeEpisodes(b.episodes));
}

}  // namespace
}  // namespace workload
