// End-to-end tests of the Yoda L7 LB on the full simulated testbed:
// normal operation, every failure window of Fig 3/5, elastic scaling,
// policy updates and the §5.x feature set.

#include <gtest/gtest.h>

#include <map>

#include "src/kv/hash_ring.h"
#include "src/rules/policy.h"
#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::FetchOptions;
using workload::FetchResult;
using workload::Testbed;
using workload::TestbedConfig;

class YodaE2E : public ::testing::Test {
 protected:
  std::unique_ptr<Testbed> tb;

  void Build(TestbedConfig cfg = {}) {
    tb = std::make_unique<Testbed>(cfg);
    tb->DefineDefaultVipAndStart();
  }

  // Fetches one URL through the VIP, running the sim to completion.
  FetchResult FetchAndRun(const std::string& url, FetchOptions opts = {}, int client = 0) {
    FetchResult out;
    bool done = false;
    tb->clients[static_cast<std::size_t>(client)]->FetchObject(
        tb->vip(), 80, url, opts, [&out, &done](const FetchResult& r) {
          out = r;
          done = true;
        });
    tb->sim.Run();
    EXPECT_TRUE(done);
    return out;
  }

  std::string AnyUrl() const { return tb->catalog->objects()[0].url; }
};

TEST_F(YodaE2E, SingleRequestRoundTrips) {
  Build();
  const workload::WebObject& obj = tb->catalog->objects()[0];
  FetchResult r = FetchAndRun(obj.url);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, obj.size);
  EXPECT_EQ(r.status, 200);
  // End-to-end latency is 2 RTTs + processing: tens of ms, not seconds.
  EXPECT_GT(r.latency, sim::Msec(60));
  EXPECT_LT(r.latency, sim::Sec(2));
}

TEST_F(YodaE2E, ResponseBodyIsByteExact) {
  Build();
  const workload::WebObject& obj = tb->catalog->objects()[3];
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, obj.url, {},
                              [&](const FetchResult& r) {
                                EXPECT_TRUE(r.ok);
                                EXPECT_EQ(r.bytes, obj.size);
                                done = true;
                              });
  tb->sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(YodaE2E, ServerOnlySeesVipAsPeer) {
  Build();
  bool server_side_checked = false;
  tb->network.set_tap([&](sim::Time, const net::Packet& p) {
    // Any packet arriving at a backend must come from the VIP.
    for (int i = 0; i < tb->cfg.backends; ++i) {
      if (p.encap_dst == 0 && p.dst == tb->backend_ip(i)) {
        EXPECT_EQ(p.src, tb->vip()) << p.ToString();
        server_side_checked = true;
      }
    }
  });
  FetchAndRun(AnyUrl());
  EXPECT_TRUE(server_side_checked);
}

TEST_F(YodaE2E, ClientOnlySeesVipAsPeer) {
  Build();
  bool client_side_checked = false;
  tb->network.set_tap([&](sim::Time, const net::Packet& p) {
    if (p.dst == tb->client_ip(0)) {
      EXPECT_EQ(p.src, tb->vip()) << p.ToString();
      client_side_checked = true;
    }
  });
  FetchAndRun(AnyUrl());
  EXPECT_TRUE(client_side_checked);
}

TEST_F(YodaE2E, ManyConcurrentRequestsAllSucceed) {
  Build();
  int ok = 0;
  int done = 0;
  const int kRequests = 60;
  for (int i = 0; i < kRequests; ++i) {
    const auto& obj = tb->catalog->objects()[static_cast<std::size_t>(i * 7) %
                                             tb->catalog->objects().size()];
    tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
        tb->vip(), 80, obj.url, {}, [&](const FetchResult& r) {
          ++done;
          if (r.ok) {
            ++ok;
          }
        });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kRequests);
  EXPECT_EQ(ok, kRequests);
  // The L4 LB spread flows over multiple instances.
  int active_instances = 0;
  for (auto& inst : tb->instances) {
    if (inst->stats().flows_started > 0) {
      ++active_instances;
    }
  }
  EXPECT_GE(active_instances, 2);
}

TEST_F(YodaE2E, FlowStateRemovedAfterTeardown) {
  Build();
  FetchAndRun(AnyUrl());
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(10));
  std::size_t items = 0;
  for (auto& s : tb->kv_servers) {
    items += s->item_count();
  }
  EXPECT_EQ(items, 0u);
}

// --- The headline property: flows survive instance failure. ---

TEST_F(YodaE2E, FlowSurvivesInstanceFailureDuringTunneling) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Build(cfg);
  // A large object so the transfer is still in flight when we kill the LB.
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  // Let the transfer get going, then kill whichever instance owns the flow.
  tb->sim.RunUntil(sim::Msec(160));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "timed_out=" << result.timed_out << " reset=" << result.reset;
  EXPECT_EQ(result.bytes, big->size);
  EXPECT_EQ(result.retries_used, 0);  // No browser retry was needed.
  // Recovery is sub-5s (retransmit + 600 ms detection), not an HTTP timeout.
  EXPECT_LT(result.latency, sim::Sec(6));
  // Some survivor performed a TCPStore takeover.
  std::uint64_t takeovers = 0;
  for (auto& inst : tb->instances) {
    takeovers += inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
  }
  EXPECT_GE(takeovers, 1u);
}

TEST_F(YodaE2E, FlowSurvivesFailureInConnectionPhase) {
  // Fig 5(a): crash after storage-a / SYN-ACK but before the server
  // connection. We force this window by delaying the rule-scan so the
  // instance sits in the connection phase when it dies.
  TestbedConfig cfg;
  cfg.instance_template.rule_scan_base_delay = sim::Msec(250);
  Build(cfg);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, AnyUrl(), {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  // SYN at ~0, SYN-ACK ~66ms, HTTP header ~133 ms, server SYN at ~383 ms.
  tb->sim.RunUntil(sim::Msec(170));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  EXPECT_EQ(tb->instances[static_cast<std::size_t>(owner)]->stats().flows_completed, 0u);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.retries_used, 0);
  std::uint64_t takeovers = 0;
  for (auto& inst : tb->instances) {
    takeovers += inst->stats().takeovers_client_side;
  }
  EXPECT_GE(takeovers, 1u);
}

TEST_F(YodaE2E, SynBeforeStorageFailureFallsBackToNewFlow) {
  // Crash before the SYN-ACK goes out: the retransmitted SYN is simply a new
  // flow on a survivor (paper: SYN timeout 3 s > 600 ms failover).
  Build();
  // Fail the flow's owner the moment the SYN arrives: emulate by killing
  // all-but-one instance *before* the fetch so we know the owner, then kill
  // the owner right after the SYN is in flight.
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, AnyUrl(), {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(sim::Msec(40));  // SYN is mid-flight to the DC.
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->stats().flows_started > 0) {
      owner = static_cast<int>(i);
    }
  }
  if (owner >= 0) {
    tb->FailInstance(owner);
  }
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
}

TEST_F(YodaE2E, SimultaneousDoubleFailureStillRecovers) {
  // The paper's §7.2 scenario: 2 of 10 instances fail at once.
  TestbedConfig cfg;
  cfg.yoda_instances = 6;
  Build(cfg);
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);
  int ok = 0;
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
        tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
          ++done;
          ok += r.ok ? 1 : 0;
        });
  }
  tb->sim.RunUntil(sim::Msec(200));
  tb->FailInstance(0);
  tb->FailInstance(1);
  tb->sim.Run();
  EXPECT_EQ(done, 12);
  EXPECT_EQ(ok, 12);
}

TEST_F(YodaE2E, ControllerDetectsFailureWithinMonitorInterval) {
  Build();
  tb->FailInstance(2);
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(1300));
  EXPECT_EQ(tb->controller->detected_failures(), 1);
  EXPECT_EQ(tb->controller->ActiveInstances().size(), 3u);
  // The fabric no longer routes to the dead instance.
  const auto* pool = tb->fabric.mux(0).PoolFor(tb->vip());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 3u);
}

// --- Scalability and policy dynamics. ---

TEST_F(YodaE2E, InstanceAdditionDoesNotBreakExistingFlows) {
  TestbedConfig cfg;
  cfg.yoda_instances = 2;
  cfg.spare_instances = 2;
  cfg.controller.auto_scale = false;  // We add manually mid-flow.
  Build(cfg);
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(sim::Msec(150));
  // Manually activate both spares and reprogram pools (staggered).
  tb->controller->AddInstance(tb->spares[0].get());
  tb->controller->AddInstance(tb->spares[1].get());
  std::vector<net::IpAddr> pool;
  for (yoda::YodaInstance* inst : tb->controller->ActiveInstances()) {
    pool.push_back(inst->ip());
  }
  tb->fabric.SetVipPoolStaggered(tb->vip(), pool, sim::Msec(50));
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, big->size);
}

TEST_F(YodaE2E, AutoScaleActivatesSparesUnderLoad) {
  TestbedConfig cfg;
  cfg.yoda_instances = 2;
  cfg.spare_instances = 2;
  cfg.controller.auto_scale = true;
  cfg.controller.scale_out_cpu = 0.05;  // Trip easily in a small test.
  cfg.controller.scale_out_step = 2;
  Build(cfg);
  workload::OpenLoopGenerator::Config gcfg;
  gcfg.requests_per_second = 400;
  gcfg.duration = sim::Sec(3);
  gcfg.target = tb->vip();
  std::vector<std::string> urls;
  for (int i = 0; i < 10; ++i) {
    urls.push_back(tb->catalog->objects()[static_cast<std::size_t>(i)].url);
  }
  gcfg.urls = urls;
  std::vector<workload::BrowserClient*> clients;
  for (auto& c : tb->clients) {
    clients.push_back(c.get());
  }
  workload::OpenLoopGenerator gen(&tb->sim, clients, 7, gcfg);
  gen.Start();
  tb->sim.Run();
  EXPECT_EQ(tb->controller->ActiveInstances().size(), 4u);
  EXPECT_GT(gen.completed(), gen.issued() * 9 / 10);
}

TEST_F(YodaE2E, PolicyUpdateShiftsNewTrafficOnly) {
  Build();
  // Start with all traffic on backend 0.
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(0, 1, "r-only0"));
  FetchResult r1 = FetchAndRun(AnyUrl());
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u);
  // Shift to backend 1 for new connections.
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(1, 1, "r-only1"));
  FetchResult r2 = FetchAndRun(AnyUrl());
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(tb->servers[1]->stats().requests, 1u);
}

TEST_F(YodaE2E, InFlightFlowSurvivesRuleUpdateRemovingItsBackend) {
  // §5.2: "Packets on existing connections continue to be forwarded to their
  // prior assigned server even during soft server removal."
  Build();
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(0, 1, "r-only0"));
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(sim::Msec(200));  // Transfer from backend 0 in flight.
  // The operator softly removes backend 0: new policy only lists backend 1.
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(1, 1, "r-only1"));
  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, big->size);
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u);  // Old flow stayed put.
  // A fresh request follows the new policy.
  FetchResult fresh = FetchAndRun(AnyUrl());
  EXPECT_TRUE(fresh.ok);
  EXPECT_EQ(tb->servers[1]->stats().requests, 1u);
}

TEST_F(YodaE2E, WeightedSplitFollowsConfiguredRatio) {
  Build();
  rules::Rule r;
  r.name = "weighted";
  r.priority = 1;
  r.match.url_glob = "*";
  r.action.type = rules::ActionType::kWeightedSplit;
  r.action.backends = {{tb->backend_ip(0), 80, 1.0}, {tb->backend_ip(1), 80, 1.0},
                       {tb->backend_ip(2), 80, 2.0}};
  tb->controller->UpdateVipRules(tb->vip(), {r});
  int done = 0;
  const int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
        tb->vip(), 80, AnyUrl(), {}, [&done](const FetchResult& rr) {
          EXPECT_TRUE(rr.ok);
          ++done;
        });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kRequests);
  const double s2 = static_cast<double>(tb->servers[2]->stats().requests);
  const double s01 =
      static_cast<double>(tb->servers[0]->stats().requests + tb->servers[1]->stats().requests);
  EXPECT_NEAR(s2 / (s2 + s01), 0.5, 0.12);
}

TEST_F(YodaE2E, StickySessionsPinAcrossConnections) {
  // Sticky tables are per-instance (as in HAProxy); use one instance so all
  // connections consult the same table.
  TestbedConfig cfg;
  cfg.yoda_instances = 1;
  Build(cfg);
  rules::StickySessionPolicy policy;
  policy.name = "ss";
  policy.cookie = "sid";
  for (int i = 0; i < tb->cfg.backends; ++i) {
    policy.fallback.push_back({tb->backend_ip(i), 80, 1.0});
  }
  tb->controller->UpdateVipRules(tb->vip(), rules::Compile(policy));
  FetchOptions opts;
  opts.cookie = "sid=alice";
  // First request binds; subsequent requests must hit the same backend.
  FetchResult first = FetchAndRun(AnyUrl(), opts);
  ASSERT_TRUE(first.ok);
  int bound = -1;
  for (int i = 0; i < tb->cfg.backends; ++i) {
    if (tb->servers[static_cast<std::size_t>(i)]->stats().requests > 0) {
      bound = i;
    }
  }
  ASSERT_GE(bound, 0);
  for (int round = 0; round < 5; ++round) {
    FetchResult r = FetchAndRun(AnyUrl(), opts, round % tb->cfg.clients);
    EXPECT_TRUE(r.ok);
  }
  EXPECT_EQ(tb->servers[static_cast<std::size_t>(bound)]->stats().requests, 6u);
}

TEST_F(YodaE2E, PrimaryBackupFailsOverOnBackendDeath) {
  Build();
  rules::PrimaryBackupPolicy policy;
  policy.name = "pb";
  policy.priority = 5;
  policy.primaries = {{tb->backend_ip(0), 80, 1.0}};
  policy.backups = {{tb->backend_ip(1), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), rules::Compile(policy));
  FetchResult r1 = FetchAndRun(AnyUrl());
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u);
  // Kill the primary; after the monitor notices, traffic goes to the backup.
  tb->FailBackend(0);
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(2));
  FetchResult r2 = FetchAndRun(AnyUrl());
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(tb->servers[1]->stats().requests, 1u);
}

TEST_F(YodaE2E, LeastLoadedSpreadsActiveConnections) {
  Build();
  rules::LeastLoadedPolicy policy;
  policy.name = "ll";
  policy.backends = {{tb->backend_ip(0), 80, 1.0}, {tb->backend_ip(1), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), rules::Compile(policy));
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
        tb->vip(), 80, AnyUrl(), {}, [&done](const FetchResult& r) {
          EXPECT_TRUE(r.ok);
          ++done;
        });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 40);
  const auto s0 = tb->servers[0]->stats().requests;
  const auto s1 = tb->servers[1]->stats().requests;
  EXPECT_GT(s0, 5u);
  EXPECT_GT(s1, 5u);
  EXPECT_EQ(s0 + s1, 40u);
}

// --- HTTP/1.1 (§5.2). ---

TEST_F(YodaE2E, Http11KeepAliveServesMultipleRequests) {
  Build();
  std::vector<std::string> urls;
  for (int i = 0; i < 3; ++i) {
    urls.push_back(tb->catalog->objects()[static_cast<std::size_t>(i)].url);
  }
  std::vector<FetchResult> results;
  bool done = false;
  tb->clients[0]->FetchSequence(tb->vip(), 80, urls, {}, [&](std::vector<FetchResult> rs) {
    results = std::move(rs);
    done = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(results[i].ok) << i;
    EXPECT_EQ(results[i].bytes, tb->catalog->objects()[i].size);
  }
}

TEST_F(YodaE2E, Http11PipelinedRequestsReturnInOrder) {
  // §5.2: pipelined responses must come back in request order — sizes of the
  // three objects differ, so misordering would be visible in the results.
  Build();
  // Pin all traffic to one backend so ordering is the LB's responsibility.
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(0, 1, "r-one"));
  std::vector<std::string> urls;
  for (int i = 0; i < 4; ++i) {
    urls.push_back(tb->catalog->objects()[static_cast<std::size_t>(i)].url);
  }
  FetchOptions opts;
  opts.pipeline = true;
  std::vector<FetchResult> results;
  bool done = false;
  tb->clients[0]->FetchSequence(tb->vip(), 80, urls, opts,
                                [&](std::vector<FetchResult> rs) {
                                  results = std::move(rs);
                                  done = true;
                                });
  tb->sim.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(results[i].ok) << i;
    EXPECT_EQ(results[i].bytes, tb->catalog->objects()[i].size) << i;
  }
  // All pipelined requests were served on the single connection.
  EXPECT_EQ(tb->servers[0]->stats().requests, 4u);
  EXPECT_EQ(tb->servers[0]->stats().connections, 1u);
}

TEST_F(YodaE2E, PipelinedResponsesStayInOrderAcrossFailure) {
  // §5.2: "YODA instances have to ensure that the responses are sent
  // in-order ... even during YODA failures."
  Build();
  tb->controller->UpdateVipRules(tb->vip(), tb->EqualSplitRules(0, 1, "r-one"));
  std::vector<std::string> urls;
  std::vector<std::size_t> sizes;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 60'000 && urls.size() < 3) {
      urls.push_back(o.url);
      sizes.push_back(o.size);
    }
  }
  ASSERT_EQ(urls.size(), 3u);
  FetchOptions opts;
  opts.pipeline = true;
  std::vector<FetchResult> results;
  bool done = false;
  tb->clients[0]->FetchSequence(tb->vip(), 80, urls, opts,
                                [&](std::vector<FetchResult> rs) {
                                  results = std::move(rs);
                                  done = true;
                                });
  tb->sim.RunUntil(sim::Msec(220));  // Mid-way through the response stream.
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  tb->sim.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(results[i].ok) << i;
    EXPECT_EQ(results[i].bytes, sizes[i]) << "response " << i << " out of order or corrupt";
  }
}

TEST_F(YodaE2E, Http11ReSwitchesBackendsAcrossRequests) {
  Build();
  // .css -> backend 0; everything else -> backend 1.
  rules::Rule css;
  css.name = "css";
  css.priority = 5;
  css.match.url_glob = "*.css";
  css.action.backends = {{tb->backend_ip(0), 80, 1.0}};
  rules::Rule other;
  other.name = "other";
  other.priority = 1;
  other.match.url_glob = "*";
  other.action.backends = {{tb->backend_ip(1), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), {css, other});

  // Find one css and one non-css object.
  std::string css_url;
  std::string jpg_url;
  for (const auto& o : tb->catalog->objects()) {
    if (css_url.empty() && o.url.ends_with(".css")) {
      css_url = o.url;
    }
    if (jpg_url.empty() && o.url.ends_with(".jpg")) {
      jpg_url = o.url;
    }
  }
  ASSERT_FALSE(css_url.empty());
  ASSERT_FALSE(jpg_url.empty());

  std::vector<FetchResult> results;
  bool done = false;
  tb->clients[0]->FetchSequence(tb->vip(), 80, {css_url, jpg_url, css_url}, {},
                                [&](std::vector<FetchResult> rs) {
                                  results = std::move(rs);
                                  done = true;
                                });
  tb->sim.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok);
  }
  EXPECT_EQ(tb->servers[0]->stats().requests, 2u);  // Both css requests.
  EXPECT_EQ(tb->servers[1]->stats().requests, 1u);  // The jpg request.
  std::uint64_t reswitches = 0;
  for (auto& inst : tb->instances) {
    reswitches += inst->stats().reswitches;
  }
  EXPECT_EQ(reswitches, 2u);  // css->jpg and jpg->css.
}

// --- Request mirroring (§5.2 extension). ---

TEST_F(YodaE2E, MirroredRequestReachesAllBackendsFirstResponseWins) {
  Build();
  rules::Rule r;
  r.name = "r-mirror";
  r.priority = 5;
  r.match.url_glob = "*";
  r.action.type = rules::ActionType::kMirror;
  r.action.backends = {{tb->backend_ip(0), 80, 1.0}, {tb->backend_ip(1), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), {r});

  const workload::WebObject& obj = tb->catalog->objects()[0];
  FetchResult result = FetchAndRun(obj.url);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, obj.size);  // Exactly one response body, intact.
  // Both backends served the mirrored request.
  EXPECT_EQ(tb->servers[0]->stats().requests, 1u);
  EXPECT_EQ(tb->servers[1]->stats().requests, 1u);
}

TEST_F(YodaE2E, MirrorWinnerIsTheFasterBackend) {
  Build();
  rules::Rule r;
  r.name = "r-mirror";
  r.priority = 5;
  r.match.url_glob = "*";
  r.action.type = rules::ActionType::kMirror;
  r.action.backends = {{tb->backend_ip(0), 80, 1.0}, {tb->backend_ip(1), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), {r});
  // Backend 0 (the primary) is pathologically slow; the mirror must win and
  // the client should see roughly the fast backend's latency.
  tb->servers[0]->set_processing_delay(sim::Sec(5));

  const workload::WebObject& obj = tb->catalog->objects()[1];
  FetchResult result = FetchAndRun(obj.url);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, obj.size);
  EXPECT_LT(result.latency, sim::Sec(3));  // Not gated on the slow primary.
}

TEST_F(YodaE2E, MirroringSurvivesRepeatedRequests) {
  Build();
  rules::Rule r;
  r.name = "r-mirror";
  r.priority = 5;
  r.match.url_glob = "*";
  r.action.type = rules::ActionType::kMirror;
  r.action.backends = {{tb->backend_ip(0), 80, 1.0}, {tb->backend_ip(1), 80, 1.0},
                       {tb->backend_ip(2), 80, 1.0}};
  tb->controller->UpdateVipRules(tb->vip(), {r});
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    tb->clients[static_cast<std::size_t>(i) % tb->clients.size()]->FetchObject(
        tb->vip(), 80, AnyUrl(), {}, [&done](const FetchResult& rr) {
          EXPECT_TRUE(rr.ok);
          ++done;
        });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 10);
  // Every backend saw every request (3 copies each x 10 requests).
  EXPECT_EQ(tb->servers[0]->stats().requests + tb->servers[1]->stats().requests +
                tb->servers[2]->stats().requests,
            30u);
}

TEST_F(YodaE2E, TwoVipsAreIsolated) {
  Build();
  // vip(1) routes to backends 3..5 only.
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(3, 3, "r-vip1"));
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    tb->clients[0]->FetchObject(tb->vip(1), 80, AnyUrl(), {}, [&done](const FetchResult& r) {
      EXPECT_TRUE(r.ok);
      ++done;
    });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(tb->servers[0]->stats().requests + tb->servers[1]->stats().requests +
                tb->servers[2]->stats().requests,
            0u);
  EXPECT_EQ(tb->servers[3]->stats().requests + tb->servers[4]->stats().requests +
                tb->servers[5]->stats().requests,
            10u);
}

TEST_F(YodaE2E, ClientRstTearsDownFlowState) {
  Build();
  // Begin a transfer, then inject a client RST mid-stream; the instance must
  // propagate it, drop local state and delete the TCPStore entries.
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  bool finished_ok = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {},
                              [&](const FetchResult& r) { finished_ok = r.ok; });
  tb->sim.RunUntil(sim::Msec(160));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  // Forge the client's RST (as if the user killed the tab).
  net::Packet rst;
  rst.src = tb->client_ip(0);
  rst.dst = tb->vip();
  rst.sport = 0;  // Find the live port from the instance's metering instead:
  // simplest: send RSTs for the whole ephemeral range the client used.
  // The client allocates sequentially from its base; probe a small window.
  const net::Port base = static_cast<net::Port>(
      10'000 + (kv::Mix64(tb->client_ip(0)) % 55) * 1'000);
  for (net::Port p = base; p < base + 4; ++p) {
    net::Packet r2;
    r2.src = tb->client_ip(0);
    r2.dst = tb->vip();
    r2.sport = p;
    r2.dport = 80;
    r2.flags = net::kRst;
    tb->network.Send(std::move(r2));
  }
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(12));
  EXPECT_EQ(tb->instances[static_cast<std::size_t>(owner)]->active_flows(), 0u);
  // TCPStore is empty once the teardown deletes both keys.
  tb->sim.Run();
  std::size_t items = 0;
  for (auto& s : tb->kv_servers) {
    items += s->item_count();
  }
  EXPECT_EQ(items, 0u);
}

TEST_F(YodaE2E, IdleFlowsAreGarbageCollected) {
  TestbedConfig cfg;
  cfg.instance_template.flow_idle_timeout = sim::Sec(5);
  cfg.instance_template.idle_scan_interval = sim::Sec(1);
  Build(cfg);
  // Kill ALL backends right after the SYN-ACK so the flow can never finish;
  // the client gives up (RSTs are blackholed), leaving orphan LB state.
  bool done = false;
  FetchOptions opts;
  opts.http_timeout = sim::Sec(3);
  tb->clients[0]->FetchObject(tb->vip(), 80, AnyUrl(), opts,
                              [&done](const FetchResult&) { done = true; });
  tb->sim.RunUntil(sim::Msec(120));
  for (int i = 0; i < tb->cfg.backends; ++i) {
    tb->FailBackend(i);
  }
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(30));
  EXPECT_TRUE(done);
  std::size_t flows = 0;
  for (auto& inst : tb->instances) {
    flows += inst->active_flows();
  }
  EXPECT_EQ(flows, 0u);  // Idle GC reclaimed the orphan.
}

TEST_F(YodaE2E, VipRemovalStopsTraffic) {
  Build();
  tb->controller->RemoveVip(tb->vip());
  FetchOptions opts;
  opts.http_timeout = sim::Sec(5);
  FetchResult r = FetchAndRun(AnyUrl(), opts);
  EXPECT_FALSE(r.ok);
}

TEST_F(YodaE2E, VipRemovalDrainsInFlightFlows) {
  Build();
  // A large object keeps the flow mid-tunneling when the VIP is withdrawn.
  const workload::WebObject* obj = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 100'000) {
      obj = &o;
      break;
    }
  }
  ASSERT_NE(obj, nullptr);
  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, obj->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(sim::Msec(150));
  ASSERT_FALSE(done);
  std::size_t in_flight = 0;
  for (auto& inst : tb->instances) {
    in_flight += inst->active_flows();
  }
  ASSERT_GT(in_flight, 0u);

  for (auto& inst : tb->instances) {
    inst->RemoveVip(tb->vip());
    // The drain is synchronous: flow state, sticky bindings and the per-VIP
    // counter cache die with the VIP, not at the next idle scan.
    EXPECT_EQ(inst->active_flows(), 0u);
    EXPECT_FALSE(inst->ServesVip(tb->vip()));
    EXPECT_EQ(inst->RuleCount(tb->vip()), 0);
    EXPECT_FALSE(inst->DrainTrafficCounters().contains(tb->vip()));
  }

  tb->sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);  // The client was explicitly reset, not stranded.

  // The drain is observable in the flight recorder as an explicit
  // kFlowReset with the kVipRemoved reason.
  bool saw_vip_removed_reset = false;
  tb->flight.ForEachFlow([&](const obs::FlowId&, const std::vector<obs::TraceEvent>& events) {
    for (const obs::TraceEvent& e : events) {
      if (e.type == obs::EventType::kFlowReset &&
          e.detail == static_cast<std::uint64_t>(obs::FlowResetReason::kVipRemoved)) {
        saw_vip_removed_reset = true;
      }
    }
  });
  EXPECT_TRUE(saw_vip_removed_reset);

  // And the reset path scrubbed TCPStore: no orphaned flow keys remain.
  std::size_t items = 0;
  for (auto& s : tb->kv_servers) {
    items += s->item_count();
  }
  EXPECT_EQ(items, 0u);
}

// Property sweep: kill the owning instance at many different offsets within
// the request lifetime; the flow must survive every window (connection
// phase, storage waits, tunneling, teardown).
class FailureTimingSweep : public ::testing::TestWithParam<int> {};

TEST_P(FailureTimingSweep, FlowSurvivesFailureAtAnyPoint) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Testbed tb(cfg);
  tb.DefineDefaultVipAndStart();
  const workload::WebObject* obj = nullptr;
  for (const auto& o : tb.catalog->objects()) {
    if (o.size > 100'000) {
      obj = &o;
      break;
    }
  }
  ASSERT_NE(obj, nullptr);
  workload::FetchResult result;
  bool done = false;
  tb.clients[0]->FetchObject(tb.vip(), 80, obj->url, {}, [&](const workload::FetchResult& r) {
    result = r;
    done = true;
  });
  const sim::Duration offset = sim::Msec(20) * GetParam();
  tb.sim.RunUntil(offset);
  int owner = -1;
  for (std::size_t i = 0; i < tb.instances.size(); ++i) {
    if (tb.instances[i]->active_flows() > 0 || tb.instances[i]->stats().flows_started > 0) {
      owner = static_cast<int>(i);
    }
  }
  if (owner >= 0 && !done) {
    tb.FailInstance(owner);
  }
  tb.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "offset=" << sim::ToMillis(offset)
                         << "ms timed_out=" << result.timed_out << " reset=" << result.reset;
  EXPECT_EQ(result.bytes, obj->size);
}

INSTANTIATE_TEST_SUITE_P(Offsets, FailureTimingSweep, ::testing::Range(1, 26));

TEST(YodaInstanceTraffic, DrainTrafficCountersAttributesPerVipAndClearsWindow) {
  // No controller monitor here: MonitorTick drains the same counters, which
  // would race with the assertions below.
  Testbed tb;
  tb.controller->DefineVip(tb.vip(0), 80, tb.EqualSplitRules(0, tb.cfg.backends));
  tb.controller->DefineVip(tb.vip(1), 80,
                           tb.EqualSplitRules(0, tb.cfg.backends, "r-vip2"));

  for (int v = 0; v < 2; ++v) {
    bool ok = false;
    tb.clients[static_cast<std::size_t>(v)]->FetchObject(
        tb.vip(v), 80, tb.catalog->objects()[0].url, {},
        [&ok](const FetchResult& r) { ok = r.ok; });
    tb.sim.Run();
    ASSERT_TRUE(ok) << "vip " << v;
  }

  // Each VIP's window holds exactly its own connection, with bytes metered.
  std::map<net::IpAddr, VipTraffic> total;
  for (auto& inst : tb.instances) {
    for (const auto& [vip, traffic] : inst->DrainTrafficCounters()) {
      total[vip].new_connections += traffic.new_connections;
      total[vip].bytes += traffic.bytes;
    }
  }
  ASSERT_TRUE(total.contains(tb.vip(0)));
  ASSERT_TRUE(total.contains(tb.vip(1)));
  EXPECT_EQ(total[tb.vip(0)].new_connections, 1u);
  EXPECT_EQ(total[tb.vip(1)].new_connections, 1u);
  EXPECT_GT(total[tb.vip(0)].bytes, 0u);
  EXPECT_GT(total[tb.vip(1)].bytes, 0u);

  // The drain emptied every window.
  for (auto& inst : tb.instances) {
    EXPECT_TRUE(inst->DrainTrafficCounters().empty());
  }

  // The cumulative registry counters are NOT windowed: they still hold the
  // totals after the drain.
  for (int v = 0; v < 2; ++v) {
    std::uint64_t registered = 0;
    for (auto& inst : tb.instances) {
      const obs::Labels labels{{"instance", obs::FormatIp(inst->ip())},
                               {"vip", obs::FormatIp(tb.vip(v))}};
      registered += tb.metrics.GetCounter("yoda.vip.new_connections", labels).value();
    }
    EXPECT_EQ(registered, 1u) << "vip " << v;
  }
}

// --- Failure-path hardening: takeover re-fetch and explicit reset. ---

TEST_F(YodaE2E, TakeoverRefetchRidesOutTransientKvSlowness) {
  // The TCPStore replicas answer, but too late: the first takeover lookup
  // times out. The survivor must re-fetch with backoff instead of resetting
  // the flow, and succeed once the slowness clears.
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.kv_client.op_timeout = sim::Msec(10);
  cfg.kv_client.max_retries = 0;  // Isolate the takeover-level retry.
  cfg.instance_template.takeover_retry_limit = 5;
  cfg.instance_template.takeover_retry_backoff = sim::Msec(20);
  Build(cfg);
  const workload::WebObject* big = nullptr;
  for (const auto& o : tb->catalog->objects()) {
    if (o.size > 150'000) {
      big = &o;
      break;
    }
  }
  ASSERT_NE(big, nullptr);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, big->url, {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  tb->sim.RunUntil(sim::Msec(160));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->active_flows() > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  for (int i = 0; i < tb->cfg.kv_servers; ++i) {
    tb->SlowKvServer(i, sim::Msec(100));  // Late answers: every Get times out.
  }

  // Step the sim until the survivor's first lookup has missed and re-armed,
  // then end the outage so a later attempt hits.
  auto total_retries = [&] {
    std::uint64_t n = 0;
    for (auto& inst : tb->instances) {
      n += inst->stats().takeover_retries;
    }
    return n;
  };
  while (total_retries() == 0 && tb->sim.now() < sim::Sec(5)) {
    tb->sim.RunUntil(tb->sim.now() + sim::Msec(10));
  }
  ASSERT_GT(total_retries(), 0u) << "takeover lookup never re-armed";
  for (int i = 0; i < tb->cfg.kv_servers; ++i) {
    tb->SlowKvServer(i, 0);
  }
  tb->sim.Run();

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok) << "timed_out=" << result.timed_out << " reset=" << result.reset;
  EXPECT_EQ(result.bytes, big->size);
  std::uint64_t takeovers = 0;
  std::uint64_t misses = 0;
  for (auto& inst : tb->instances) {
    takeovers += inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
    misses += inst->stats().takeover_misses;
  }
  EXPECT_GE(takeovers, 1u);
  EXPECT_EQ(misses, 0u);  // The retry budget absorbed the outage.
}

TEST_F(YodaE2E, TakeoverFinalMissResetsFlowInsteadOfBlackholing) {
  // The flow state is genuinely gone (TCPStore wiped while its owner is
  // dead). After the retry budget is spent the survivor must answer the
  // client's retransmissions with a RST — an explicit, prompt failure rather
  // than a silent drop that runs out the 30 s browser timer.
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  cfg.kv_client.op_timeout = sim::Msec(10);
  cfg.kv_client.max_retries = 0;
  cfg.instance_template.takeover_retry_limit = 1;
  cfg.instance_template.takeover_retry_backoff = sim::Msec(5);
  Build(cfg);

  FetchResult result;
  bool done = false;
  tb->clients[0]->FetchObject(tb->vip(), 80, AnyUrl(), {}, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  // Kill the owner after its SYN-ACK is out but before the HTTP request
  // lands (~100 ms): the unacked request keeps the client retransmitting,
  // which is what eventually reaches the survivor.
  tb->sim.RunUntil(sim::Msec(80));
  int owner = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->stats().flows_started > 0) {
      owner = static_cast<int>(i);
    }
  }
  ASSERT_GE(owner, 0);
  tb->FailInstance(owner);
  for (auto& s : tb->kv_servers) {
    s->Fail();  // Wipes contents; lookups now miss for good.
  }
  tb->sim.Run();

  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.reset) << "timed_out=" << result.timed_out;
  // The reset came well before the browser's 30 s HTTP timeout.
  EXPECT_LT(result.latency, sim::Sec(10));
  std::uint64_t misses = 0;
  std::uint64_t retries = 0;
  for (auto& inst : tb->instances) {
    misses += inst->stats().takeover_misses;
    retries += inst->stats().takeover_retries;
  }
  EXPECT_GE(misses, 1u);
  EXPECT_GE(retries, 1u);
  // The reset is in the flight-recorder trace with the takeover-miss reason.
  bool reset_traced = false;
  tb->flight.ForEachFlow([&](const obs::FlowId&, const std::vector<obs::TraceEvent>& events) {
    for (const obs::TraceEvent& ev : events) {
      if (ev.type == obs::EventType::kFlowReset &&
          ev.detail == static_cast<std::uint64_t>(obs::FlowResetReason::kTakeoverMiss)) {
        reset_traced = true;
      }
    }
  });
  EXPECT_TRUE(reset_traced);
}

}  // namespace
}  // namespace yoda
