// Controller tests: monitor, VIP lifecycle ordering, health propagation,
// elastic scaling and the many-to-many assignment path.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/workload/testbed.h"

namespace yoda {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

class ControllerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Testbed> tb;

  void Build(TestbedConfig cfg = {}) {
    cfg.build_catalog = false;  // Pure control-plane tests.
    tb = std::make_unique<Testbed>(cfg);
  }
};

TEST_F(ControllerTest, DefineVipInstallsRulesOnAllActiveInstances) {
  Build();
  tb->controller->DefineVip(tb->vip(), 80, tb->EqualSplitRules(0, 3));
  for (auto& inst : tb->instances) {
    EXPECT_TRUE(inst->ServesVip(tb->vip()));
    EXPECT_EQ(inst->RuleCount(tb->vip()), 1);
  }
  const auto* pool = tb->fabric.mux(0).PoolFor(tb->vip());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), tb->instances.size());
}

TEST_F(ControllerTest, RemoveVipUnmapsBeforeDroppingRules) {
  Build();
  tb->controller->DefineVip(tb->vip(), 80, tb->EqualSplitRules(0, 3));
  tb->controller->RemoveVip(tb->vip());
  EXPECT_FALSE(tb->network.IsAttached(tb->vip()));
  for (auto& inst : tb->instances) {
    EXPECT_FALSE(inst->ServesVip(tb->vip()));
  }
}

TEST_F(ControllerTest, UpdateRulesReplacesTables) {
  Build();
  tb->controller->DefineVip(tb->vip(), 80, tb->EqualSplitRules(0, 3));
  auto wider = tb->EqualSplitRules(0, 6);
  auto extra = tb->EqualSplitRules(0, 2, "r-extra", "*.css");
  wider.push_back(extra[0]);
  tb->controller->UpdateVipRules(tb->vip(), wider);
  for (auto& inst : tb->instances) {
    EXPECT_EQ(inst->RuleCount(tb->vip()), 2);
  }
}

TEST_F(ControllerTest, UpdateRulesForUnknownVipIsNoop) {
  Build();
  tb->controller->UpdateVipRules(tb->vip(3), tb->EqualSplitRules(0, 1));
  for (auto& inst : tb->instances) {
    EXPECT_FALSE(inst->ServesVip(tb->vip(3)));
  }
}

TEST_F(ControllerTest, MonitorDetectsInstanceFailureWithin600ms) {
  Build();
  tb->DefineDefaultVipAndStart();
  tb->FailInstance(1);
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(650));
  EXPECT_EQ(tb->controller->detected_failures(), 1);
  EXPECT_EQ(tb->controller->ActiveInstances().size(), tb->instances.size() - 1);
  const auto* pool = tb->fabric.mux(0).PoolFor(tb->vip());
  for (net::IpAddr ip : *pool) {
    EXPECT_NE(ip, tb->instance_ip(1));
  }
}

TEST_F(ControllerTest, MonitorTickIsIdempotentForSameFailure) {
  Build();
  tb->DefineDefaultVipAndStart();
  tb->FailInstance(0);
  tb->controller->MonitorTick();
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 1);
}

TEST_F(ControllerTest, BackendHealthPropagatesDownAndUp) {
  Build();
  tb->DefineDefaultVipAndStart();
  tb->FailBackend(2);
  tb->controller->MonitorTick();
  // Health is pushed into every instance's selection oracle: verify via a
  // selection that skips the dead backend (probabilistically exercised in
  // integration tests; here check the controller saw it).
  bool logged_fail = false;
  for (const auto& ev : tb->controller->events()) {
    logged_fail = logged_fail || ev.what.find("failed") != std::string::npos;
  }
  EXPECT_TRUE(logged_fail);
  tb->RecoverBackend(2);
  tb->controller->MonitorTick();
  bool logged_recover = false;
  for (const auto& ev : tb->controller->events()) {
    logged_recover = logged_recover || ev.what.find("recovered") != std::string::npos;
  }
  EXPECT_TRUE(logged_recover);
}

TEST_F(ControllerTest, LateInstanceReceivesExistingVips) {
  TestbedConfig cfg;
  cfg.spare_instances = 1;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(), 80, tb->EqualSplitRules(0, 3));
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(3, 3));
  YodaInstance* spare = tb->spares[0].get();
  EXPECT_FALSE(spare->ServesVip(tb->vip()));
  tb->controller->AddInstance(spare);
  EXPECT_TRUE(spare->ServesVip(tb->vip()));
  EXPECT_TRUE(spare->ServesVip(tb->vip(1)));
}

TEST_F(ControllerTest, AutoScaleConsumesSparesUnderSyntheticLoad) {
  TestbedConfig cfg;
  cfg.yoda_instances = 2;
  cfg.spare_instances = 2;
  cfg.controller.auto_scale = true;
  cfg.controller.scale_out_cpu = 0.5;
  cfg.controller.scale_out_step = 1;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  // Synthetically saturate the CPU model.
  for (auto& inst : tb->instances) {
    for (int i = 0; i < 100'000; ++i) {
      inst->cpu().ChargeConnection();
    }
  }
  tb->sim.RunUntil(sim::Msec(700));
  EXPECT_EQ(tb->controller->ActiveInstances().size(), 3u);
  tb->sim.RunUntil(tb->sim.now() + sim::Msec(700));
  // CPU windows were reset after scaling; no further scale-out.
  EXPECT_LE(tb->controller->ActiveInstances().size(), 4u);
}

TEST_F(ControllerTest, ManyToManyAssignsSubsetsAndProgramsPools) {
  TestbedConfig cfg;
  cfg.yoda_instances = 6;
  Build(cfg);
  // Three VIPs with different demands.
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(2, 2, "r1"));
  tb->controller->DefineVip(tb->vip(2), 80, tb->EqualSplitRules(4, 2, "r2"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {0.6, 3, 1};
  demand[tb->vip(1)] = {0.3, 2, 0};
  demand[tb->vip(2)] = {0.1, 1, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(1));  // Staggered pools converge.

  EXPECT_EQ(tb->controller->AssignedInstances(tb->vip(0)).size(), 3u);
  EXPECT_EQ(tb->controller->AssignedInstances(tb->vip(1)).size(), 2u);
  EXPECT_EQ(tb->controller->AssignedInstances(tb->vip(2)).size(), 1u);

  // Rules live only on assigned instances; pools match the assignment.
  for (int v = 0; v < 3; ++v) {
    const auto assigned = tb->controller->AssignedInstances(tb->vip(v));
    const std::set<net::IpAddr> assigned_set(assigned.begin(), assigned.end());
    int serving = 0;
    for (auto& inst : tb->instances) {
      if (inst->ServesVip(tb->vip(v))) {
        ++serving;
        EXPECT_TRUE(assigned_set.contains(inst->ip()));
      }
    }
    EXPECT_EQ(serving, static_cast<int>(assigned.size()));
    const auto* pool = tb->fabric.mux(tb->fabric.mux_count() - 1).PoolFor(tb->vip(v));
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(std::set<net::IpAddr>(pool->begin(), pool->end()), assigned_set);
  }
}

TEST_F(ControllerTest, ManyToManySecondRoundLimitsMigration) {
  TestbedConfig cfg;
  cfg.yoda_instances = 6;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(2, 2, "r1"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {0.5, 2, 0};
  demand[tb->vip(1)] = {0.4, 2, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
  const auto before0 = tb->controller->AssignedInstances(tb->vip(0));
  // Slightly different demand: assignment should barely move.
  demand[tb->vip(0)] = {0.55, 2, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
  const auto after0 = tb->controller->AssignedInstances(tb->vip(0));
  EXPECT_EQ(before0, after0);
}

TEST_F(ControllerTest, ManyToManyInfeasibleWhenDemandExceedsFleet) {
  TestbedConfig cfg;
  cfg.yoda_instances = 2;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {5.0, 2, 1};  // 5 instance-capacities over 2 instances.
  EXPECT_FALSE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
}

TEST_F(ControllerTest, FailureInManyToManyModeShrinksOnlyAffectedPools) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {0.4, 2, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(1));
  const auto assigned = tb->controller->AssignedInstances(tb->vip(0));
  ASSERT_EQ(assigned.size(), 2u);
  // Fail one assigned instance.
  int victim = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->ip() == assigned[0]) {
      victim = static_cast<int>(i);
    }
  }
  ASSERT_GE(victim, 0);
  const net::IpAddr dead = assigned[0];
  tb->FailInstance(victim);
  tb->controller->MonitorTick();
  // The dead instance is scrubbed from the assignment immediately, and the
  // repair reconcile tops the pool back up to its n_v = 2 replicas from the
  // survivors (the VIP was provisioned with zero failure headroom).
  const auto after = tb->controller->AssignedInstances(tb->vip(0));
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(std::count(after.begin(), after.end(), dead), 0);
  EXPECT_NE(std::find(after.begin(), after.end(), assigned[1]), after.end());
}

TEST_F(ControllerTest, InstanceKilledMidRolloutIsScrubbedAndRepaired) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {0.4, 2, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));

  // The staggered rollout is still in flight: kill an assigned instance NOW,
  // before the muxes converge and before the break phase runs.
  const auto assigned = tb->controller->AssignedInstances(tb->vip(0));
  ASSERT_EQ(assigned.size(), 2u);
  const net::IpAddr dead = assigned[0];
  int victim = -1;
  for (std::size_t i = 0; i < tb->instances.size(); ++i) {
    if (tb->instances[i]->ip() == dead) {
      victim = static_cast<int>(i);
    }
  }
  ASSERT_GE(victim, 0);
  tb->FailInstance(victim);
  tb->controller->MonitorTick();

  // The failure scrubs the dead instance from the desired assignment at once:
  // AssignedInstances must never hand it out again, and the repair reconcile
  // restores the VIP to its n_v = 2 replicas from the survivors.
  const auto after = tb->controller->AssignedInstances(tb->vip(0));
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(std::count(after.begin(), after.end(), dead), 0);

  // Let the interrupted rollout's stragglers and the repair rollout land.
  // Epoch gating makes the overtaken plan's late writes harmless.
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(2));
  const auto settled = tb->controller->AssignedInstances(tb->vip(0));
  ASSERT_EQ(settled.size(), 2u);
  EXPECT_EQ(std::count(settled.begin(), settled.end(), dead), 0);
  for (int m = 0; m < tb->fabric.mux_count(); ++m) {
    const auto* pool = tb->fabric.mux(m).PoolFor(tb->vip(0));
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(std::count(pool->begin(), pool->end(), dead), 0) << "mux " << m;
    EXPECT_EQ(std::set<net::IpAddr>(pool->begin(), pool->end()),
              std::set<net::IpAddr>(settled.begin(), settled.end()))
        << "mux " << m;
  }
  EXPECT_EQ(tb->controller->actuator().plans_in_flight(), 0);
}

TEST_F(ControllerTest, LiveReconfigurationFlowsThroughEpochedPlans) {
  TestbedConfig cfg;
  cfg.yoda_instances = 4;
  Build(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 2, "r0"));
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb->vip(0)] = {0.4, 2, 0};
  ASSERT_TRUE(tb->controller->ApplyManyToMany(demand, 1.0, 2000));
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(1));
  tb->FailInstance(0);
  tb->controller->MonitorTick();
  tb->sim.RunUntil(tb->sim.now() + sim::Sec(1));
  tb->controller->RemoveVip(tb->vip(0));

  // Every live reconfiguration above went through the actuator as an
  // epoch-stamped plan step — nothing touched the fabric out of band.
  const auto& journal = tb->controller->actuator().journal();
  ASSERT_FALSE(journal.empty());
  const std::uint64_t newest = tb->controller->state().epoch();
  std::set<std::uint64_t> epochs_seen;
  std::map<std::pair<std::uint64_t, net::IpAddr>, bool> broke;
  for (const ExecutedStep& e : journal) {
    EXPECT_GT(e.epoch, 0u);
    EXPECT_LE(e.epoch, newest);
    epochs_seen.insert(e.epoch);
    // Make-before-break within each (epoch, vip): once a break-phase step
    // ran, no make-phase step for the same pair may follow.
    const auto key = std::make_pair(e.epoch, e.step.vip);
    switch (e.step.kind) {
      case ExecStepKind::kRemovePoolMember:
      case ExecStepKind::kScrubRules:
      case ExecStepKind::kDetachVip:
        broke[key] = true;
        break;
      case ExecStepKind::kInstallRules:
      case ExecStepKind::kAddPoolMember:
      case ExecStepKind::kAttachVip:
        EXPECT_FALSE(broke[key])
            << ExecStepKindName(e.step.kind) << " after break in epoch " << e.epoch;
        break;
      default:
        break;
    }
  }
  // Distinct reconfigurations carried distinct epochs (define, rollout,
  // failure scrub + repair, removal).
  EXPECT_GE(epochs_seen.size(), 4u);
  EXPECT_GE(tb->metrics.GetCounter("controller.reconcile.plans").value(), 4u);
  EXPECT_EQ(tb->metrics.GetCounter("controller.reconcile.plans").value(),
            static_cast<std::uint64_t>(
                tb->flight.system_events().size() > 0
                    ? std::count_if(tb->flight.system_events().begin(),
                                    tb->flight.system_events().end(),
                                    [](const obs::TraceEvent& ev) {
                                      return ev.type == obs::EventType::kReconcilePlan;
                                    })
                    : 0));
}

TEST_F(ControllerTest, PeriodicAssignmentFollowsMeasuredTraffic) {
  TestbedConfig cfg;
  cfg.yoda_instances = 6;
  cfg.build_catalog = true;
  tb = std::make_unique<Testbed>(cfg);
  tb->controller->DefineVip(tb->vip(0), 80, tb->EqualSplitRules(0, 3, "r0"));
  tb->controller->DefineVip(tb->vip(1), 80, tb->EqualSplitRules(3, 3, "r1"));
  tb->controller->Start();
  Controller::PeriodicAssignmentConfig pcfg;
  pcfg.interval = sim::Sec(10);
  pcfg.traffic_capacity = 20.0;  // 20 new conns/s per instance.
  tb->controller->EnablePeriodicAssignment(pcfg);

  // Drive heavy traffic at vip(0) and a trickle at vip(1) for 25 s.
  sim::Rng rng(4);
  std::function<void(sim::Time, int, double)> drive = [&](sim::Time when, int vip_idx,
                                                          double rate) {
    if (when > sim::Sec(25)) {
      return;
    }
    tb->sim.At(when, [&, vip_idx, rate]() {
      tb->clients[0]->FetchObject(tb->vip(vip_idx), 80, tb->catalog->objects()[0].url, {},
                                  [](const workload::FetchResult&) {});
      drive(tb->sim.now() + sim::FromSeconds(rng.Exponential(1.0 / rate)), vip_idx, rate);
    });
  };
  drive(sim::Msec(1), 0, 60.0);  // 60 conns/s => n_v capped at the 6-instance fleet.
  drive(sim::Msec(2), 1, 2.0);   // 2 conns/s  => n_v = 1.

  // Inspect the assignment while traffic is flowing (a later idle round
  // would legitimately shrink everything back down).
  tb->sim.RunUntil(sim::Sec(21));
  EXPECT_GE(tb->controller->assignment_rounds(), 2);
  const auto hot = tb->controller->AssignedInstances(tb->vip(0));
  const auto cold = tb->controller->AssignedInstances(tb->vip(1));
  ASSERT_FALSE(hot.empty());
  ASSERT_FALSE(cold.empty());
  EXPECT_GT(hot.size(), cold.size());
  EXPECT_EQ(cold.size(), 1u);
  tb->sim.Run();
  // Idle rounds after the load ends consolidate back to few instances.
  EXPECT_LE(tb->controller->AssignedInstances(tb->vip(0)).size(), hot.size());
}

TEST_F(ControllerTest, EventsCarryTimestamps) {
  Build();
  tb->controller->DefineVip(tb->vip(), 80, tb->EqualSplitRules(0, 1));
  ASSERT_FALSE(tb->controller->events().empty());
  EXPECT_GE(tb->controller->events().back().when, 0);
  EXPECT_FALSE(tb->controller->events().back().what.empty());
}

// ---------------------------------------------------------------------------
// Health-check hysteresis, readmission and flap suppression.
// ---------------------------------------------------------------------------

TEST_F(ControllerTest, HysteresisKeepsInstancePooledThroughTransientMisses) {
  TestbedConfig cfg;
  cfg.controller.fail_after_misses = 3;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  const net::IpAddr ip = tb->instance_ip(1);

  // Unreachable but not dead: probes miss, the process is fine.
  tb->network.SetNodeDown(ip, true);
  tb->controller->MonitorTick();
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 0);
  EXPECT_EQ(tb->controller->ActiveInstances().size(), tb->instances.size());

  // Link heals before the third miss: the streak resets, nothing happened.
  tb->network.SetNodeDown(ip, false);
  tb->controller->MonitorTick();
  tb->network.SetNodeDown(ip, true);
  tb->controller->MonitorTick();
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 0);

  // Third CONSECUTIVE miss kills it.
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 1);
  EXPECT_EQ(tb->controller->ActiveInstances().size(), tb->instances.size() - 1);
}

TEST_F(ControllerTest, SuspectedInstancesLandInSystemEventLog) {
  TestbedConfig cfg;
  cfg.controller.fail_after_misses = 2;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  tb->network.SetNodeDown(tb->instance_ip(0), true);
  tb->controller->MonitorTick();
  bool suspected = false;
  for (const auto& ev : tb->flight.system_events()) {
    suspected = suspected || ev.type == obs::EventType::kInstanceSuspected;
  }
  EXPECT_TRUE(suspected);
}

TEST_F(ControllerTest, GraySynFilterDoesNotBlindTheMonitor) {
  Build();
  tb->DefineDefaultVipAndStart();
  const net::IpAddr ip = tb->instance_ip(0);
  // The classic gray failure: SYNs to the instance die, probes (kAck-shaped)
  // pass. The monitor must NOT remove it; detection is the data path's job.
  tb->faults->SetGray("syn-filter",
                      [ip](const net::Packet& p) {
                        return p.dst == ip && p.syn() && !p.ack_flag();
                      },
                      1.0);
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 0);
  // A partition on the probe path, by contrast, does cost probes.
  tb->faults->Partition(0, ip);
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->detected_failures(), 1);
}

TEST_F(ControllerTest, ReadmissionAfterConsecutiveHealthyProbes) {
  TestbedConfig cfg;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 2;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  const net::IpAddr ip = tb->instance_ip(2);

  tb->network.SetNodeDown(ip, true);
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->ActiveInstances().size(), tb->instances.size() - 1);
  ASSERT_EQ(tb->controller->SuspendedInstances().size(), 1u);

  tb->network.SetNodeDown(ip, false);
  tb->controller->MonitorTick();  // Healthy probe 1 of 2.
  EXPECT_EQ(tb->controller->readmissions(), 0);
  tb->controller->MonitorTick();  // Healthy probe 2: readmitted.
  EXPECT_EQ(tb->controller->readmissions(), 1);
  EXPECT_EQ(tb->controller->ActiveInstances().size(), tb->instances.size());
  EXPECT_TRUE(tb->controller->SuspendedInstances().empty());
  // Back in the muxes' VIP pool.
  const auto* pool = tb->fabric.mux(0).PoolFor(tb->vip());
  ASSERT_NE(pool, nullptr);
  bool pooled = false;
  for (net::IpAddr p : *pool) {
    pooled = pooled || p == ip;
  }
  EXPECT_TRUE(pooled);
  // The readmitted instance still serves the VIP's rules.
  EXPECT_TRUE(tb->instances[2]->ServesVip(tb->vip()));
}

TEST_F(ControllerTest, InterruptedHealthStreakDoesNotReadmit) {
  TestbedConfig cfg;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 3;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  const net::IpAddr ip = tb->instance_ip(0);
  tb->network.SetNodeDown(ip, true);
  tb->controller->MonitorTick();
  tb->network.SetNodeDown(ip, false);
  tb->controller->MonitorTick();
  tb->controller->MonitorTick();  // 2 of 3...
  tb->network.SetNodeDown(ip, true);
  tb->controller->MonitorTick();  // ...interrupted: streak resets.
  tb->network.SetNodeDown(ip, false);
  tb->controller->MonitorTick();
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->readmissions(), 0);
  tb->controller->MonitorTick();
  EXPECT_EQ(tb->controller->readmissions(), 1);
}

TEST_F(ControllerTest, FlapSuppressionDoublesRequiredStreakUpToCap) {
  TestbedConfig cfg;
  cfg.controller.readmit_instances = true;
  cfg.controller.readmit_after_successes = 2;
  cfg.controller.readmit_penalty_cap = 4;
  Build(cfg);
  tb->DefineDefaultVipAndStart();
  const net::IpAddr ip = tb->instance_ip(1);

  auto fail_once = [&]() {
    tb->network.SetNodeDown(ip, true);
    tb->controller->MonitorTick();
    tb->network.SetNodeDown(ip, false);
  };
  auto healthy_ticks = [&](int n) {
    for (int i = 0; i < n; ++i) {
      tb->controller->MonitorTick();
    }
  };

  fail_once();
  healthy_ticks(2);  // First readmission: base requirement.
  EXPECT_EQ(tb->controller->readmissions(), 1);

  fail_once();       // Flap: requirement doubles to 4.
  healthy_ticks(2);
  EXPECT_EQ(tb->controller->readmissions(), 1);
  healthy_ticks(2);
  EXPECT_EQ(tb->controller->readmissions(), 2);

  fail_once();       // Another flap: would be 8, capped at 4.
  healthy_ticks(4);
  EXPECT_EQ(tb->controller->readmissions(), 3);

  bool readmitted_event = false;
  for (const auto& ev : tb->flight.system_events()) {
    readmitted_event = readmitted_event || ev.type == obs::EventType::kInstanceReadmitted;
  }
  EXPECT_TRUE(readmitted_event);
}

}  // namespace
}  // namespace yoda
