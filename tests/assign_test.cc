// VIP-assignment tests: the Fig 7 model, the independent validator, the
// greedy heuristic against the exact branch-and-bound, and update planning.

#include <gtest/gtest.h>

#include "src/assign/exact_solver.h"
#include "src/assign/greedy_solver.h"
#include "src/assign/problem.h"
#include "src/assign/update_planner.h"
#include "src/assign/validator.h"
#include "src/sim/random.h"

namespace assign {
namespace {

VipSpec Vip(int id, double traffic, int rules, int replicas, int failures) {
  VipSpec v;
  v.id = id;
  v.traffic = traffic;
  v.rules = rules;
  v.replicas = replicas;
  v.failures = failures;
  return v;
}

Problem SmallProblem() {
  Problem p;
  p.traffic_capacity = 1.0;
  p.rule_capacity = 2000;
  p.max_instances = 16;
  p.vips = {Vip(0, 0.8, 300, 2, 1), Vip(1, 0.5, 400, 2, 0), Vip(2, 0.3, 200, 1, 0),
            Vip(3, 0.2, 100, 3, 1)};
  return p;
}

TEST(Problem, Totals) {
  Problem p = SmallProblem();
  EXPECT_NEAR(p.TotalTraffic(), 1.8, 1e-9);
  EXPECT_EQ(p.TotalRules(), 1000);
  EXPECT_FALSE(p.Summary().empty());
}

TEST(Problem, ShareAfterFailures) {
  EXPECT_DOUBLE_EQ(Vip(0, 1.0, 0, 4, 2).ShareAfterFailures(), 0.5);
  EXPECT_DOUBLE_EQ(Vip(0, 0.9, 0, 3, 0).ShareAfterFailures(), 0.3);
}

TEST(Problem, AllToAllAssignsEverythingEverywhere) {
  Problem p = SmallProblem();
  Assignment a = AllToAll(p, 5);
  EXPECT_EQ(a.UsedInstanceCount(), 5);
  for (const auto& insts : a.vip_instances) {
    EXPECT_EQ(insts.size(), 5u);
  }
  auto rules = a.InstanceRules(p);
  for (int r : rules) {
    EXPECT_EQ(r, p.TotalRules());
  }
}

TEST(Problem, MinInstancesByTraffic) {
  Problem p = SmallProblem();
  EXPECT_EQ(MinInstancesByTraffic(p), 2);  // ceil(1.8 / 1.0).
}

TEST(Validator, AcceptsFeasibleAssignment) {
  Problem p = SmallProblem();
  Assignment a;
  a.vip_instances = {{0, 1}, {2, 3}, {2}, {0, 1, 3}};
  auto r = Validate(p, a);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(Validator, CatchesReplicaCountViolation) {
  Problem p = SmallProblem();
  Assignment a;
  a.vip_instances = {{0}, {2, 3}, {2}, {0, 1, 3}};  // VIP 0 wants 2 replicas.
  auto r = Validate(p, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("Eq 3"), std::string::npos);
}

TEST(Validator, CatchesTrafficOverload) {
  Problem p;
  p.traffic_capacity = 1.0;
  p.vips = {Vip(0, 2.0, 10, 1, 0), Vip(1, 0.5, 10, 1, 0)};
  Assignment a;
  a.vip_instances = {{0}, {0}};
  auto r = Validate(p, a);
  EXPECT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations) {
    found = found || v.find("Eq 1") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validator, CatchesRuleOverflow) {
  Problem p;
  p.rule_capacity = 100;
  p.vips = {Vip(0, 0.1, 80, 1, 0), Vip(1, 0.1, 50, 1, 0)};
  Assignment a;
  a.vip_instances = {{0}, {0}};
  auto r = Validate(p, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("Eq 2"), std::string::npos);
}

TEST(Validator, CatchesDuplicatesAndRangeErrors) {
  Problem p = SmallProblem();
  Assignment a;
  a.vip_instances = {{0, 0}, {2, 99}, {2}, {0, 1, 3}};
  auto r = Validate(p, a);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.violations.size(), 2u);
}

TEST(Validator, CatchesUnsatisfiableFailureSpec) {
  Problem p;
  p.vips = {Vip(0, 0.1, 10, 2, 2)};  // f_v >= n_v.
  Assignment a;
  a.vip_instances = {{0, 1}};
  EXPECT_FALSE(Validate(p, a).ok);
}

TEST(MigratedFraction, CountsLostReplicaShares) {
  Problem p;
  p.vips = {Vip(0, 1.0, 10, 2, 0), Vip(1, 1.0, 10, 2, 0)};
  Assignment from;
  from.vip_instances = {{0, 1}, {2, 3}};
  Assignment to_same = from;
  EXPECT_DOUBLE_EQ(MigratedTrafficFraction(p, from, to_same), 0.0);
  Assignment to;
  to.vip_instances = {{0, 2}, {2, 3}};  // VIP 0 lost instance 1 (half its traffic).
  EXPECT_NEAR(MigratedTrafficFraction(p, from, to), 0.25, 1e-9);
}

TEST(TransientLoads, BudgetsMaxOfOldAndNewShares) {
  Problem p;
  p.vips = {Vip(0, 1.0, 10, 2, 0)};
  Assignment old_a;
  old_a.vip_instances = {{0, 1}};
  Assignment new_a;
  new_a.vip_instances = {{1, 2}};
  auto loads = TransientLoads(p, old_a, new_a);
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 0.5);  // Old only.
  EXPECT_DOUBLE_EQ(loads[1], 0.5);  // Both; max(0.5, 0.5).
  EXPECT_DOUBLE_EQ(loads[2], 0.5);  // New only.
}

TEST(GreedySolver, FeasibleOnSmallProblem) {
  Problem p = SmallProblem();
  GreedySolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.feasible) << result.note;
  auto check = Validate(p, result.assignment);
  EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations[0]);
}

TEST(GreedySolver, InfeasibleWhenRulesCannotFit) {
  Problem p;
  p.rule_capacity = 50;
  p.max_instances = 2;
  p.vips = {Vip(0, 0.1, 100, 1, 0)};  // More rules than any instance holds.
  GreedySolver solver;
  EXPECT_FALSE(solver.Solve(p).feasible);
}

TEST(GreedySolver, RejectsUnsatisfiableFailureSpec) {
  Problem p;
  p.vips = {Vip(0, 0.1, 10, 1, 1)};
  GreedySolver solver;
  EXPECT_FALSE(solver.Solve(p).feasible);
}

TEST(ExactSolver, MatchesHandComputedOptimum) {
  // Two VIPs, each 0.6 post-failure share: they cannot share one instance,
  // but each pair of replicas can interleave across 2 instances? No:
  // 0.6 + 0.6 > 1.0, so replicas must not co-locate -> 2 instances minimum.
  Problem p;
  p.traffic_capacity = 1.0;
  p.max_instances = 6;
  p.vips = {Vip(0, 0.6, 10, 1, 0), Vip(1, 0.6, 10, 1, 0)};
  ExactSolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.instances_used, 2);
}

TEST(ExactSolver, PacksWhenSharesFit) {
  Problem p;
  p.traffic_capacity = 1.0;
  p.max_instances = 6;
  p.vips = {Vip(0, 0.4, 10, 1, 0), Vip(1, 0.5, 10, 1, 0)};
  ExactSolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.instances_used, 1);
}

TEST(ExactSolver, RespectsReplicaAntiAffinity) {
  // One VIP, 3 replicas: replicas are distinct instances, so >= 3 used.
  Problem p;
  p.traffic_capacity = 1.0;
  p.max_instances = 8;
  p.vips = {Vip(0, 0.9, 10, 3, 1)};
  ExactSolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.instances_used, 3);
}

// Property: on random small problems, greedy is feasible whenever exact is,
// and within 2x of optimal instance count (typically equal or +1).
class GreedyVsExact : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsExact, GreedyNearOptimal) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Problem p;
  p.traffic_capacity = 1.0;
  p.rule_capacity = 1000;
  p.max_instances = 10;
  const int n = static_cast<int>(rng.UniformInt(2, 6));
  for (int i = 0; i < n; ++i) {
    const int replicas = static_cast<int>(rng.UniformInt(1, 3));
    const int failures = static_cast<int>(rng.UniformInt(0, replicas - 1));
    p.vips.push_back(Vip(i, 0.1 + rng.UniformDouble() * 0.7,
                         static_cast<int>(rng.UniformInt(10, 400)), replicas, failures));
  }
  ExactSolver exact(2'000'000);
  GreedySolver greedy;
  auto e = exact.Solve(p);
  auto g = greedy.Solve(p);
  ASSERT_EQ(e.feasible, g.feasible);
  if (!e.feasible) {
    return;
  }
  auto check = Validate(p, g.assignment);
  ASSERT_TRUE(check.ok) << check.violations[0];
  EXPECT_GE(g.instances_used, e.instances_used);
  EXPECT_LE(g.instances_used, e.instances_used + 2);
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, GreedyVsExact, ::testing::Range(1, 21));

TEST(ExactSolver, NodeBudgetExhaustionIsReported) {
  // A deliberately tight budget cannot prove optimality.
  sim::Rng rng(31);
  Problem p;
  p.traffic_capacity = 1.0;
  p.max_instances = 12;
  for (int i = 0; i < 8; ++i) {
    p.vips.push_back(Vip(i, 0.2 + rng.UniformDouble() * 0.5, 50, 2, 1));
  }
  ExactSolver tiny(50);
  auto result = tiny.Solve(p);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.nodes_explored, 51u);
}

TEST(GreedySolver, UpdateRoundPrefersOldPlacement) {
  Problem p = SmallProblem();
  GreedySolver solver;
  auto first = solver.Solve(p);
  ASSERT_TRUE(first.feasible);
  // Slightly perturb traffic; the new solution should barely migrate.
  for (auto& v : p.vips) {
    v.traffic *= 1.02;
  }
  p.migration_limit = 0.10;
  SolveOptions opts;
  opts.previous = &first.assignment;
  opts.limit_transient = true;
  opts.limit_migration = true;
  auto second = solver.Solve(p, opts);
  ASSERT_TRUE(second.feasible) << second.note;
  EXPECT_LE(MigratedTrafficFraction(p, first.assignment, second.assignment), 0.10 + 1e-9);
  auto check = ValidateUpdate(p, first.assignment, second.assignment);
  EXPECT_TRUE(check.ok) << (check.violations.empty() ? "" : check.violations[0]);
}

TEST(GreedySolver, RelaxesDeltaWhenInfeasible) {
  // Old assignment concentrates everything on instances that cannot hold the
  // grown traffic; heavy migration is unavoidable.
  Problem p;
  p.traffic_capacity = 1.0;
  p.rule_capacity = 2000;
  p.max_instances = 12;
  p.vips = {Vip(0, 0.3, 10, 1, 0), Vip(1, 0.3, 10, 1, 0), Vip(2, 0.3, 10, 1, 0)};
  GreedySolver solver;
  auto first = solver.Solve(p);
  ASSERT_TRUE(first.feasible);
  // Traffic triples: each VIP now needs its own instance.
  for (auto& v : p.vips) {
    v.traffic = 0.9;
  }
  p.migration_limit = 0.0;  // No migration allowed: must relax.
  SolveOptions opts;
  opts.previous = &first.assignment;
  opts.limit_transient = false;
  opts.limit_migration = true;
  auto second = solver.Solve(p, opts);
  ASSERT_TRUE(second.feasible) << second.note;
  EXPECT_GT(second.effective_migration_limit, 0.0);
}

TEST(UpdatePlanner, ReportsDeltasAndMigration) {
  Problem p;
  p.vips = {Vip(0, 1.0, 10, 2, 0), Vip(1, 0.4, 10, 1, 0)};
  Assignment old_a;
  old_a.vip_instances = {{0, 1}, {2}};
  Assignment new_a;
  new_a.vip_instances = {{1, 2}, {2}};
  auto plan = PlanUpdate(p, old_a, new_a);
  ASSERT_EQ(plan.deltas.size(), 1u);
  EXPECT_EQ(plan.deltas[0].vip_id, 0);
  EXPECT_EQ(plan.deltas[0].added_instances, std::vector<int>{2});
  EXPECT_EQ(plan.deltas[0].removed_instances, std::vector<int>{0});
  EXPECT_NEAR(plan.migrated_fraction, 0.5 / 1.4, 1e-9);
  EXPECT_EQ(plan.instances_before, 3);
  EXPECT_EQ(plan.instances_after, 2);
}

TEST(UpdatePlanner, FlagsTransientOverload) {
  Problem p;
  p.traffic_capacity = 1.0;
  p.vips = {Vip(0, 1.0, 10, 1, 0), Vip(1, 1.0, 10, 1, 0)};
  Assignment old_a;
  old_a.vip_instances = {{0}, {1}};
  Assignment new_a;
  new_a.vip_instances = {{1}, {0}};  // Swap: both instances transiently 2x.
  auto plan = PlanUpdate(p, old_a, new_a);
  EXPECT_EQ(plan.overloaded_instances.size(), 2u);
  EXPECT_TRUE(plan.pre_overloaded_instances.empty());
}

TEST(GreedySolver, ScalesToTraceSizedProblem) {
  sim::Rng rng(99);
  Problem p;
  p.traffic_capacity = 1.0;
  p.rule_capacity = 2000;
  p.max_instances = 0;  // Unbounded pool.
  for (int i = 0; i < 120; ++i) {
    const double traffic = 0.02 + rng.UniformDouble() * 1.5;
    const int replicas = std::max(1, static_cast<int>(4 * traffic));
    p.vips.push_back(Vip(i, traffic, static_cast<int>(rng.UniformInt(20, 1500)),
                         replicas, replicas / 2));
  }
  GreedySolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.feasible) << result.note;
  auto check = Validate(p, result.assignment);
  EXPECT_TRUE(check.ok) << check.violations[0];
  EXPECT_GE(result.instances_used, MinInstancesByTraffic(p));
}

}  // namespace
}  // namespace assign
