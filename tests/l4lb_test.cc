// L4 LB tests: rendezvous hashing, mux pools, SNAT pinning and non-atomic
// (staggered) mapping updates.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/l4lb/fabric.h"
#include "src/l4lb/mux.h"

namespace l4lb {
namespace {

net::FiveTuple Tuple(int i) {
  return net::FiveTuple{net::MakeIp(1, 2, 3, 4), net::MakeIp(10, 200, 0, 1),
                        static_cast<net::Port>(10'000 + i), 80};
}

std::vector<net::IpAddr> Pool(int n) {
  std::vector<net::IpAddr> pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back(net::MakeIp(10, 1, 0, static_cast<std::uint8_t>(i + 1)));
  }
  return pool;
}

TEST(Rendezvous, DeterministicAndStable) {
  auto pool = Pool(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(RendezvousPick(Tuple(i), pool), RendezvousPick(Tuple(i), pool));
  }
}

TEST(Rendezvous, SpreadsAcrossPool) {
  auto pool = Pool(8);
  std::map<net::IpAddr, int> counts;
  const int n = 8'000;
  for (int i = 0; i < n; ++i) {
    counts[RendezvousPick(Tuple(i), pool)] += 1;
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [ip, c] : counts) {
    EXPECT_GT(c, n / 8 / 2);
    EXPECT_LT(c, n / 8 * 2);
  }
}

TEST(Rendezvous, RemovalOnlyMovesVictimsFlows) {
  auto pool = Pool(8);
  std::map<int, net::IpAddr> before;
  for (int i = 0; i < 4000; ++i) {
    before[i] = RendezvousPick(Tuple(i), pool);
  }
  const net::IpAddr removed = pool[3];
  pool.erase(pool.begin() + 3);
  for (const auto& [i, owner] : before) {
    const net::IpAddr now = RendezvousPick(Tuple(i), pool);
    if (owner != removed) {
      EXPECT_EQ(now, owner) << "flow " << i << " moved though its instance survived";
    } else {
      EXPECT_NE(now, removed);
    }
  }
}

TEST(Rendezvous, EmptyPoolYieldsZero) {
  EXPECT_EQ(RendezvousPick(Tuple(0), {}), 0u);
}

TEST(Mux, RoutesByPoolAndDropsUnknownVip) {
  Mux mux(0);
  mux.SetPool(net::MakeIp(10, 200, 0, 1), Pool(4));
  net::Packet p;
  p.src = net::MakeIp(1, 2, 3, 4);
  p.dst = net::MakeIp(10, 200, 0, 1);
  p.sport = 10'000;
  p.dport = 80;
  auto target = mux.Route(p, std::nullopt);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(mux.stats().forwarded_ecmp, 1u);

  p.dst = net::MakeIp(10, 200, 0, 99);  // Unmapped VIP.
  EXPECT_FALSE(mux.Route(p, std::nullopt).has_value());
  EXPECT_EQ(mux.stats().dropped_no_pool, 1u);
}

TEST(Mux, SnatHitOverridesEcmp) {
  Mux mux(0);
  mux.SetPool(net::MakeIp(10, 200, 0, 1), Pool(4));
  net::Packet p;
  p.dst = net::MakeIp(10, 200, 0, 1);
  const net::IpAddr pinned = net::MakeIp(10, 1, 0, 9);
  auto target = mux.Route(p, pinned);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, pinned);
  EXPECT_EQ(mux.stats().forwarded_snat, 1u);
}

TEST(Mux, RemoveInstanceDrainsItFromAllPools) {
  Mux mux(0);
  auto pool = Pool(4);
  mux.SetPool(net::MakeIp(10, 200, 0, 1), pool);
  mux.SetPool(net::MakeIp(10, 200, 0, 2), pool);
  mux.RemoveInstance(pool[0]);
  for (int v = 1; v <= 2; ++v) {
    const auto* got = mux.PoolFor(net::MakeIp(10, 200, 0, static_cast<std::uint8_t>(v)));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->size(), 3u);
    for (net::IpAddr ip : *got) {
      EXPECT_NE(ip, pool[0]);
    }
  }
}

class FabricTest : public ::testing::Test {
 protected:
  class Sink : public net::Node {
   public:
    void HandlePacket(const net::Packet& p) override { got.push_back(p); }
    std::vector<net::Packet> got;
  };

  sim::Simulator simulator;
  net::Network network{&simulator, 5};
  L4Fabric fabric{&simulator, &network, 4};
  Sink instances[3];
  const net::IpAddr vip = net::MakeIp(10, 200, 0, 1);

  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      network.Attach(net::MakeIp(10, 1, 0, static_cast<std::uint8_t>(i + 1)), &instances[i]);
    }
    fabric.AttachVip(vip);
    fabric.SetVipPool(vip, Pool(3));
  }

  net::Packet ClientPacket(int flow) {
    net::Packet p;
    p.src = net::MakeIp(1, 2, 3, 4);
    p.dst = vip;
    p.sport = static_cast<net::Port>(10'000 + flow);
    p.dport = 80;
    return p;
  }
};

TEST_F(FabricTest, DeliversVipTrafficToExactlyOneInstance) {
  network.Send(ClientPacket(1));
  simulator.Run();
  int total = 0;
  for (const auto& inst : instances) {
    total += static_cast<int>(inst.got.size());
  }
  EXPECT_EQ(total, 1);
  EXPECT_EQ(fabric.stats().packets, 1u);
}

TEST_F(FabricTest, SameFlowAlwaysSameInstance) {
  for (int i = 0; i < 10; ++i) {
    network.Send(ClientPacket(7));
  }
  simulator.Run();
  int nonzero = 0;
  for (const auto& inst : instances) {
    if (!inst.got.empty()) {
      ++nonzero;
      EXPECT_EQ(inst.got.size(), 10u);
    }
  }
  EXPECT_EQ(nonzero, 1);
}

TEST_F(FabricTest, InnerHeaderPreservedThroughEncap) {
  network.Send(ClientPacket(1));
  simulator.Run();
  for (const auto& inst : instances) {
    for (const auto& p : inst.got) {
      EXPECT_EQ(p.dst, vip);
      EXPECT_NE(p.encap_dst, 0u);
    }
  }
}

TEST_F(FabricTest, SnatPinsReturnPathAndFailureClearsIt) {
  const net::IpAddr backend = net::MakeIp(10, 3, 0, 1);
  const net::FiveTuple server_side{backend, vip, 80, 10'001};
  const net::IpAddr owner = net::MakeIp(10, 1, 0, 2);
  fabric.RegisterSnat(server_side, owner);
  EXPECT_EQ(fabric.SnatOwner(server_side), owner);

  net::Packet ret;
  ret.src = backend;
  ret.dst = vip;
  ret.sport = 80;
  ret.dport = 10'001;
  network.Send(net::Packet(ret));
  simulator.Run();
  EXPECT_EQ(instances[1].got.size(), 1u);  // Pinned to owner 10.1.0.2.

  // Owner dies: pin cleared, return traffic re-ECMPs to a survivor.
  fabric.RemoveInstanceEverywhere(owner);
  EXPECT_FALSE(fabric.SnatOwner(server_side).has_value());
  network.SetNodeDown(owner, true);
  network.Send(std::move(ret));
  simulator.Run();
  EXPECT_EQ(instances[1].got.size(), 1u);  // Nothing new at the dead owner.
  EXPECT_EQ(instances[0].got.size() + instances[2].got.size(), 1u);
}

TEST_F(FabricTest, UnregisterSnatRestoresEcmp) {
  const net::FiveTuple t{net::MakeIp(10, 3, 0, 1), vip, 80, 10'002};
  fabric.RegisterSnat(t, net::MakeIp(10, 1, 0, 3));
  fabric.UnregisterSnat(t);
  EXPECT_FALSE(fabric.SnatOwner(t).has_value());
}

TEST_F(FabricTest, StaggeredUpdateConvergesOverTime) {
  // Shrink pool to instance 0 only, staggered across 4 muxes 100 ms apart.
  fabric.SetVipPoolStaggered(vip, {net::MakeIp(10, 1, 0, 1)}, sim::Msec(100));
  simulator.RunUntil(sim::Msec(1));
  // Mux 0 updated immediately; mux 3 not yet.
  EXPECT_EQ(fabric.mux(0).PoolFor(vip)->size(), 1u);
  EXPECT_EQ(fabric.mux(3).PoolFor(vip)->size(), 3u);
  simulator.RunUntil(sim::Msec(500));
  for (int m = 0; m < fabric.mux_count(); ++m) {
    EXPECT_EQ(fabric.mux(m).PoolFor(vip)->size(), 1u) << m;
  }
}

TEST_F(FabricTest, EmptyPoolDropsTraffic) {
  fabric.SetVipPool(vip, {});
  network.Send(ClientPacket(1));
  simulator.Run();
  EXPECT_EQ(fabric.stats().dropped, 1u);
}

}  // namespace
}  // namespace l4lb
