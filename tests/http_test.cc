// HTTP message and incremental-parser tests.

#include <gtest/gtest.h>

#include "src/http/message.h"
#include "src/http/parser.h"

namespace http {
namespace {

TEST(Message, SerializeRequestIncludesHostAndBody) {
  Request r = MakeGet("/index.html", "mysite.com");
  r.body = "payload";
  std::string wire = r.Serialize();
  EXPECT_NE(wire.find("GET /index.html HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("host: mysite.com\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 7\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "payload");
}

TEST(Message, HeaderLookupIsCaseInsensitive) {
  Request r;
  r.SetHeader("X-Custom-Header", "v1");
  EXPECT_EQ(r.Header("x-custom-header"), "v1");
  EXPECT_EQ(r.Header("X-CUSTOM-HEADER"), "v1");
  EXPECT_FALSE(r.Header("missing").has_value());
}

TEST(Message, CookieParsing) {
  Request r;
  r.SetHeader("cookie", "session=abc123; lang=en-GB;  theme=dark");
  auto cookies = r.Cookies();
  EXPECT_EQ(cookies["session"], "abc123");
  EXPECT_EQ(cookies["lang"], "en-GB");
  EXPECT_EQ(cookies["theme"], "dark");
  EXPECT_EQ(cookies.size(), 3u);
}

TEST(Message, CookiesAbsentWhenNoHeader) {
  Request r;
  EXPECT_TRUE(r.Cookies().empty());
}

TEST(Message, KeepAliveDefaults) {
  Request r11 = MakeGet("/", "h", "HTTP/1.1");
  EXPECT_TRUE(r11.KeepAlive());
  Request r10 = MakeGet("/", "h", "HTTP/1.0");
  EXPECT_FALSE(r10.KeepAlive());
  r10.SetHeader("connection", "keep-alive");
  EXPECT_TRUE(r10.KeepAlive());
  r11.SetHeader("connection", "close");
  EXPECT_FALSE(r11.KeepAlive());
}

TEST(Message, ResponseSerializeAndFactories) {
  Response ok = MakeOk("hello");
  std::string wire = ok.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 5\r\n"), std::string::npos);
  Response nf = MakeNotFound();
  EXPECT_EQ(nf.status, 404);
}

TEST(RequestParser, ParsesCompleteRequestAtOnce) {
  RequestParser p;
  ASSERT_EQ(p.Feed("GET /a.jpg HTTP/1.0\r\nHost: x.com\r\n\r\n"), ParseStatus::kComplete);
  Request r = p.TakeRequest();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.url, "/a.jpg");
  EXPECT_EQ(r.version, "HTTP/1.0");
  EXPECT_EQ(r.Header("host"), "x.com");
}

TEST(RequestParser, ByteAtATime) {
  RequestParser p;
  const std::string wire = "POST /form HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(p.Feed(std::string_view(&wire[i], 1)), ParseStatus::kNeedMore) << i;
  }
  ASSERT_EQ(p.Feed(std::string_view(&wire.back(), 1)), ParseStatus::kComplete);
  Request r = p.TakeRequest();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "abcd");
}

TEST(RequestParser, HaveHeadersBeforeBody) {
  RequestParser p;
  p.Feed("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_TRUE(p.HaveHeaders());
  EXPECT_EQ(p.status(), ParseStatus::kNeedMore);
  EXPECT_EQ(p.request().url, "/x");
  p.Feed("defghij");
  EXPECT_EQ(p.status(), ParseStatus::kComplete);
}

TEST(RequestParser, PipelinedRequestsQueue) {
  RequestParser p;
  ASSERT_EQ(p.Feed("GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n"), ParseStatus::kComplete);
  Request first = p.TakeRequest();
  EXPECT_EQ(first.url, "/1");
  EXPECT_EQ(p.status(), ParseStatus::kComplete);  // Second is already parsed.
  Request second = p.TakeRequest();
  EXPECT_EQ(second.url, "/2");
  EXPECT_EQ(p.status(), ParseStatus::kNeedMore);
}

TEST(RequestParser, MalformedRequestLine) {
  RequestParser p;
  EXPECT_EQ(p.Feed("BROKEN\r\n\r\n"), ParseStatus::kError);
  EXPECT_FALSE(p.error().empty());
}

TEST(RequestParser, MalformedHeaderLine) {
  RequestParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"), ParseStatus::kError);
}

TEST(RequestParser, BadContentLength) {
  RequestParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"), ParseStatus::kError);
}

TEST(RequestParser, ErrorStateIsSticky) {
  RequestParser p;
  p.Feed("BROKEN\r\n\r\n");
  EXPECT_EQ(p.Feed("GET / HTTP/1.1\r\n\r\n"), ParseStatus::kError);
}

TEST(ResponseParser, ParsesResponseWithBody) {
  ResponseParser p;
  ASSERT_EQ(p.Feed("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"),
            ParseStatus::kComplete);
  Response r = p.TakeResponse();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.reason, "OK");
  EXPECT_EQ(r.body, "hello");
}

TEST(ResponseParser, SplitAcrossSegments) {
  ResponseParser p;
  EXPECT_EQ(p.Feed("HTTP/1.0 404 Not"), ParseStatus::kNeedMore);
  EXPECT_EQ(p.Feed(" Found\r\nContent-Len"), ParseStatus::kNeedMore);
  EXPECT_EQ(p.Feed("gth: 3\r\n\r\nab"), ParseStatus::kNeedMore);
  EXPECT_EQ(p.Feed("c"), ParseStatus::kComplete);
  Response r = p.TakeResponse();
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.reason, "Not Found");
  EXPECT_EQ(r.body, "abc");
}

TEST(ResponseParser, MalformedStatusCode) {
  ResponseParser p;
  EXPECT_EQ(p.Feed("HTTP/1.1 two-hundred OK\r\n\r\n"), ParseStatus::kError);
}

TEST(ResponseParser, RoundTripWithSerializer) {
  Response out = MakeOk(std::string(5000, 'b'));
  out.SetHeader("content-type", "image/jpeg");
  ResponseParser p;
  ASSERT_EQ(p.Feed(out.Serialize()), ParseStatus::kComplete);
  Response in = p.TakeResponse();
  EXPECT_EQ(in.status, 200);
  EXPECT_EQ(in.body.size(), 5000u);
  EXPECT_EQ(in.Header("content-type"), "image/jpeg");
}

TEST(RequestParser, RoundTripWithSerializer) {
  Request out = MakeGet("/path/file.css?q=1", "site.org");
  out.SetHeader("accept-language", "en-GB");
  out.SetHeader("cookie", "sid=42");
  RequestParser p;
  ASSERT_EQ(p.Feed(out.Serialize()), ParseStatus::kComplete);
  Request in = p.TakeRequest();
  EXPECT_EQ(in.url, "/path/file.css?q=1");
  EXPECT_EQ(in.Header("accept-language"), "en-GB");
  EXPECT_EQ(in.Cookies()["sid"], "42");
}

// Property: any serialized request round-trips regardless of how the bytes
// are chunked on the wire.
class RequestChunkFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RequestChunkFuzz, ArbitraryChunkingRoundTrips) {
  const int seed = GetParam();
  Request out = MakeGet("/p/" + std::to_string(seed) + "/x.php?q=" + std::to_string(seed * 7),
                        "host" + std::to_string(seed) + ".example");
  out.SetHeader("cookie", "sid=u" + std::to_string(seed));
  out.body = std::string(static_cast<std::size_t>(seed * 13 % 97), 'b');
  const std::string wire = out.Serialize();

  RequestParser parser;
  std::size_t pos = 0;
  std::size_t step = 1 + static_cast<std::size_t>(seed % 7);
  while (pos < wire.size()) {
    const std::size_t n = std::min(step, wire.size() - pos);
    parser.Feed(std::string_view(wire).substr(pos, n));
    pos += n;
    step = step * 3 % 11 + 1;  // Vary chunk sizes deterministically.
  }
  ASSERT_EQ(parser.status(), ParseStatus::kComplete) << "seed " << seed;
  Request in = parser.TakeRequest();
  EXPECT_EQ(in.url, out.url);
  EXPECT_EQ(in.body, out.body);
  EXPECT_EQ(in.Header("host"), out.Header("host"));
  EXPECT_EQ(in.Cookies(), out.Cookies());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RequestChunkFuzz, ::testing::Range(1, 16));

TEST(ToLower, LowersAscii) {
  EXPECT_EQ(ToLower("AbC-XyZ"), "abc-xyz");
}

}  // namespace
}  // namespace http
