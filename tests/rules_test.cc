// Rule engine tests: glob matching, rule parsing, priority scan semantics,
// and the Table 3 policy compilers.

#include <gtest/gtest.h>

#include "src/rules/policy.h"
#include "src/rules/rule.h"
#include "src/rules/rule_table.h"

namespace rules {
namespace {

http::Request Req(const std::string& url) { return http::MakeGet(url, "mysite.com"); }

// ---------------------------------------------------------------------------
// GlobMatch (parameterized truth table).
// ---------------------------------------------------------------------------

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(GlobMatch(c.pattern, c.text), c.expect)
      << "pattern=" << c.pattern << " text=" << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Table, GlobMatchTest,
    ::testing::Values(
        GlobCase{"*.jpg", "/images/cat.jpg", true}, GlobCase{"*.jpg", "/images/cat.jpeg", false},
        GlobCase{"*.jpg", ".jpg", true}, GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"", "", true}, GlobCase{"", "x", false}, GlobCase{"abc", "abc", true},
        GlobCase{"abc", "abd", false}, GlobCase{"a?c", "abc", true},
        GlobCase{"a?c", "ac", false}, GlobCase{"/news/*", "/news/today", true},
        GlobCase{"/news/*", "/sports/today", false}, GlobCase{"*news*", "/a/news/b", true},
        GlobCase{"*.css", "/styles/site.css", true}, GlobCase{"**", "whatever", true},
        GlobCase{"a*b*c", "aXXbYYc", true}, GlobCase{"a*b*c", "aXXcYYb", false},
        GlobCase{"*.php", "/index.php", true}, GlobCase{"en-*", "en-GB", true}));

// ---------------------------------------------------------------------------
// Match.
// ---------------------------------------------------------------------------

TEST(Match, UrlGlob) {
  Match m;
  m.url_glob = "*.jpg";
  EXPECT_TRUE(m.Matches(Req("/x.jpg")));
  EXPECT_FALSE(m.Matches(Req("/x.css")));
}

TEST(Match, EmptyMatchIsWildcard) {
  Match m;
  EXPECT_TRUE(m.Matches(Req("/anything")));
}

TEST(Match, HostGlob) {
  Match m;
  m.host_glob = "*.mysite.com";
  http::Request r = http::MakeGet("/", "cdn.mysite.com");
  EXPECT_TRUE(m.Matches(r));
  http::Request r2 = http::MakeGet("/", "other.org");
  EXPECT_FALSE(m.Matches(r2));
}

TEST(Match, Method) {
  Match m;
  m.method = "POST";
  http::Request r = Req("/");
  EXPECT_FALSE(m.Matches(r));
  r.method = "POST";
  EXPECT_TRUE(m.Matches(r));
}

TEST(Match, CookiePresenceAndValue) {
  Match m;
  m.cookie_name = "session";
  http::Request r = Req("/");
  EXPECT_FALSE(m.Matches(r));
  r.SetHeader("cookie", "session=abc");
  EXPECT_TRUE(m.Matches(r));
  m.cookie_value_glob = "x*";
  EXPECT_FALSE(m.Matches(r));
  m.cookie_value_glob = "a*";
  EXPECT_TRUE(m.Matches(r));
}

TEST(Match, HeaderValueGlob) {
  Match m;
  m.header_name = "accept-language";
  m.header_value_glob = "en-GB*";
  http::Request r = Req("/");
  EXPECT_FALSE(m.Matches(r));
  r.SetHeader("Accept-Language", "en-GB,en;q=0.9");
  EXPECT_TRUE(m.Matches(r));
}

TEST(Match, ConjunctionOfFields) {
  Match m;
  m.url_glob = "*.php";
  m.method = "GET";
  http::Request r = Req("/a.php");
  EXPECT_TRUE(m.Matches(r));
  m.method = "PUT";
  EXPECT_FALSE(m.Matches(r));
}

// ---------------------------------------------------------------------------
// ParseRule.
// ---------------------------------------------------------------------------

TEST(ParseRule, WeightedSplit) {
  std::string err;
  auto r = ParseRule("name=r-jpg priority=3 url=*.jpg split=10.0.2.1:0.5,10.0.3.1:0.5", &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->name, "r-jpg");
  EXPECT_EQ(r->priority, 3);
  EXPECT_EQ(r->match.url_glob, "*.jpg");
  ASSERT_EQ(r->action.backends.size(), 2u);
  EXPECT_EQ(r->action.backends[0].ip, net::MakeIp(10, 0, 2, 1));
  EXPECT_DOUBLE_EQ(r->action.backends[0].weight, 0.5);
}

TEST(ParseRule, DefaultWeightIsOne) {
  auto r = ParseRule("name=r split=10.0.0.1");
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->action.backends[0].weight, 1.0);
}

TEST(ParseRule, StickyTable) {
  auto r = ParseRule("name=r-cookie priority=0 cookie=session table=session");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->action.type, ActionType::kStickyTable);
  EXPECT_EQ(r->action.sticky_cookie, "session");
  EXPECT_EQ(r->match.cookie_name, "session");
}

TEST(ParseRule, LeastLoaded) {
  auto r = ParseRule("name=r-least url=/api/* least=10.0.2.1,10.0.2.2");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->action.type, ActionType::kLeastLoaded);
  EXPECT_EQ(r->action.backends.size(), 2u);
}

TEST(ParseRule, Mirror) {
  auto r = ParseRule("name=r-mirror url=/api/* mirror=10.0.2.1,10.0.2.2");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->action.type, ActionType::kMirror);
  EXPECT_EQ(r->action.backends.size(), 2u);
}

TEST(ParseRule, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(ParseRule("priority=1 split=10.0.0.1", &err).has_value());  // No name.
  EXPECT_FALSE(ParseRule("name=r", &err).has_value());                     // No action.
  EXPECT_FALSE(ParseRule("name=r split=999.0.0.1", &err).has_value());     // Bad IP.
  EXPECT_FALSE(ParseRule("name=r priority=abc split=10.0.0.1", &err).has_value());
  EXPECT_FALSE(ParseRule("name=r bogus=1 split=10.0.0.1", &err).has_value());
  EXPECT_FALSE(ParseRule("name=r noequals split=10.0.0.1", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// RuleTable.
// ---------------------------------------------------------------------------

Backend B(int last, double weight = 1.0) {
  return Backend{net::MakeIp(10, 0, 2, static_cast<std::uint8_t>(last)), 80, weight};
}

Rule SplitRule(const std::string& name, int priority, const std::string& glob,
               std::vector<Backend> backends) {
  Rule r;
  r.name = name;
  r.priority = priority;
  r.match.url_glob = glob;
  r.action.type = ActionType::kWeightedSplit;
  r.action.backends = std::move(backends);
  return r;
}

class RuleTableTest : public ::testing::Test {
 protected:
  RuleTable table;
  sim::Rng rng{11};
  SelectionContext Ctx() {
    SelectionContext ctx;
    ctx.rng = &rng;
    ctx.sticky = &sticky_;
    return ctx;
  }
  StickyTable sticky_;
};

TEST_F(RuleTableTest, FirstMatchWinsInPriorityOrder) {
  table.Add(SplitRule("low", 1, "*", {B(1)}));
  table.Add(SplitRule("high", 5, "*.jpg", {B(2)}));
  auto sel = table.Select(Req("/a.jpg"), Ctx());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->rule_name, "high");
  EXPECT_EQ(sel->backend, B(2));
  auto sel2 = table.Select(Req("/a.css"), Ctx());
  ASSERT_TRUE(sel2.has_value());
  EXPECT_EQ(sel2->rule_name, "low");
}

TEST_F(RuleTableTest, EqualPriorityPreservesInsertionOrder) {
  table.Add(SplitRule("first", 3, "*", {B(1)}));
  table.Add(SplitRule("second", 3, "*", {B(2)}));
  auto sel = table.Select(Req("/"), Ctx());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->rule_name, "first");
}

TEST_F(RuleTableTest, RulesScannedCountsLinearScan) {
  for (int i = 0; i < 50; ++i) {
    table.Add(SplitRule("r" + std::to_string(i), 100 - i, "/never/*", {B(1)}));
  }
  table.Add(SplitRule("last", 0, "*", {B(2)}));
  auto sel = table.Select(Req("/x"), Ctx());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->rules_scanned, 51);
}

TEST_F(RuleTableTest, NoMatchReturnsNullopt) {
  table.Add(SplitRule("r", 1, "*.jpg", {B(1)}));
  EXPECT_FALSE(table.Select(Req("/a.css"), Ctx()).has_value());
}

TEST_F(RuleTableTest, WeightedSplitFollowsWeights) {
  table.Add(SplitRule("r", 1, "*", {B(1, 1.0), B(2, 3.0)}));
  int count_b2 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    auto sel = table.Select(Req("/"), Ctx());
    ASSERT_TRUE(sel.has_value());
    if (sel->backend == B(2)) {
      ++count_b2;
    }
  }
  EXPECT_NEAR(static_cast<double>(count_b2) / n, 0.75, 0.02);
}

TEST_F(RuleTableTest, ZeroWeightBackendNeverChosen) {
  table.Add(SplitRule("r", 1, "*", {B(1, 0.0), B(2, 1.0)}));
  for (int i = 0; i < 100; ++i) {
    auto sel = table.Select(Req("/"), Ctx());
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->backend, B(2));
  }
}

TEST_F(RuleTableTest, UnhealthyBackendsSkipped) {
  table.Add(SplitRule("r", 1, "*", {B(1), B(2)}));
  SelectionContext ctx = Ctx();
  ctx.is_healthy = [](const Backend& b) { return b.ip != net::MakeIp(10, 0, 2, 1); };
  for (int i = 0; i < 50; ++i) {
    auto sel = table.Select(Req("/"), ctx);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->backend, B(2));
  }
}

TEST_F(RuleTableTest, PrimaryBackupFallsThroughOnPrimaryFailure) {
  // Same match at two priorities (Table 3 rules 2-3).
  table.Add(SplitRule("primary", 3, "*.css", {B(1)}));
  table.Add(SplitRule("backup", 2, "*.css", {B(3), B(4)}));
  auto sel = table.Select(Req("/s.css"), Ctx());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->rule_name, "primary");
  SelectionContext ctx = Ctx();
  ctx.is_healthy = [](const Backend& b) { return b.ip != net::MakeIp(10, 0, 2, 1); };
  auto sel2 = table.Select(Req("/s.css"), ctx);
  ASSERT_TRUE(sel2.has_value());
  EXPECT_EQ(sel2->rule_name, "backup");
}

TEST_F(RuleTableTest, StickyTableRoutesBoundSessions) {
  Rule sticky_rule;
  sticky_rule.name = "sticky";
  sticky_rule.priority = 5;
  sticky_rule.match.cookie_name = "sid";
  sticky_rule.action.type = ActionType::kStickyTable;
  sticky_rule.action.sticky_cookie = "sid";
  table.Add(sticky_rule);
  table.Add(SplitRule("fallback", 1, "*", {B(1), B(2)}));

  http::Request r = Req("/");
  r.SetHeader("cookie", "sid=user42");
  // Unbound: falls through to the split.
  auto first = table.Select(r, Ctx());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->rule_name, "fallback");
  sticky_.Bind("user42", first->backend);
  // Bound: the sticky rule wins and returns the same backend.
  for (int i = 0; i < 10; ++i) {
    auto again = table.Select(r, Ctx());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->rule_name, "sticky");
    EXPECT_EQ(again->backend, first->backend);
  }
}

TEST_F(RuleTableTest, StickyIgnoredWithoutTable) {
  Rule sticky_rule;
  sticky_rule.name = "sticky";
  sticky_rule.priority = 5;
  sticky_rule.action.type = ActionType::kStickyTable;
  sticky_rule.action.sticky_cookie = "sid";
  table.Add(sticky_rule);
  SelectionContext ctx;
  ctx.rng = &rng;
  ctx.sticky = nullptr;
  http::Request r = Req("/");
  r.SetHeader("cookie", "sid=z");
  EXPECT_FALSE(table.Select(r, ctx).has_value());
}

TEST_F(RuleTableTest, LeastLoadedPicksColdestBackend) {
  Rule r;
  r.name = "least";
  r.priority = 1;
  r.action.type = ActionType::kLeastLoaded;
  r.action.backends = {B(1), B(2), B(3)};
  table.Add(r);
  SelectionContext ctx = Ctx();
  std::map<std::uint32_t, int> loads{{B(1).ip, 5}, {B(2).ip, 1}, {B(3).ip, 9}};
  ctx.load_of = [&loads](const Backend& b) { return loads[b.ip]; };
  auto sel = table.Select(Req("/"), ctx);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->backend, B(2));
}

TEST_F(RuleTableTest, MirrorSelectionListsSecondaryBackends) {
  Rule r;
  r.name = "mirror";
  r.priority = 1;
  r.action.type = ActionType::kMirror;
  r.action.backends = {B(1), B(2), B(3)};
  table.Add(r);
  auto sel = table.Select(Req("/"), Ctx());
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->backend, B(1));  // First healthy backend is primary.
  ASSERT_EQ(sel->mirrors.size(), 2u);
  EXPECT_EQ(sel->mirrors[0], B(2));
  EXPECT_EQ(sel->mirrors[1], B(3));
}

TEST_F(RuleTableTest, MirrorSkipsUnhealthyBackends) {
  Rule r;
  r.name = "mirror";
  r.priority = 1;
  r.action.type = ActionType::kMirror;
  r.action.backends = {B(1), B(2), B(3)};
  table.Add(r);
  SelectionContext ctx = Ctx();
  ctx.is_healthy = [](const Backend& b) { return b.ip != net::MakeIp(10, 0, 2, 1); };
  auto sel = table.Select(Req("/"), ctx);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->backend, B(2));
  ASSERT_EQ(sel->mirrors.size(), 1u);
  EXPECT_EQ(sel->mirrors[0], B(3));
}

TEST_F(RuleTableTest, RemoveByNameRemovesAllInstances) {
  table.Add(SplitRule("dup", 1, "*", {B(1)}));
  table.Add(SplitRule("dup", 2, "*", {B(2)}));
  table.Add(SplitRule("keep", 3, "*", {B(3)}));
  EXPECT_EQ(table.Remove("dup"), 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rules()[0].name, "keep");
}

TEST_F(RuleTableTest, ReplaceAllReordersByPriority) {
  std::vector<Rule> rs{SplitRule("a", 1, "*", {B(1)}), SplitRule("b", 9, "*", {B(2)}),
                       SplitRule("c", 5, "*", {B(3)})};
  table.ReplaceAll(rs);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.rules()[0].name, "b");
  EXPECT_EQ(table.rules()[1].name, "c");
  EXPECT_EQ(table.rules()[2].name, "a");
}

// ---------------------------------------------------------------------------
// Policy compilers.
// ---------------------------------------------------------------------------

TEST(Policy, WeightedSplitCompiles) {
  WeightedSplitPolicy p;
  p.name = "w";
  p.backends = {B(1, 2.0), B(2, 1.0)};
  auto rs = Compile(p);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].action.type, ActionType::kWeightedSplit);
  EXPECT_EQ(rs[0].action.backends.size(), 2u);
}

TEST(Policy, PrimaryBackupCompilesToTwoPriorities) {
  PrimaryBackupPolicy p;
  p.name = "pb";
  p.priority = 7;
  p.primaries = {B(1)};
  p.backups = {B(2), B(3)};
  auto rs = Compile(p);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].priority, 7);
  EXPECT_EQ(rs[1].priority, 6);
  EXPECT_EQ(rs[0].name, "pb-primary");
  EXPECT_EQ(rs[1].name, "pb-backup");
}

TEST(Policy, StickySessionCompilesStickyAboveFallback) {
  StickySessionPolicy p;
  p.name = "ss";
  p.priority = 2;
  p.cookie = "sid";
  p.fallback = {B(1)};
  auto rs = Compile(p);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].action.type, ActionType::kStickyTable);
  EXPECT_GT(rs[0].priority, rs[1].priority);
  EXPECT_EQ(rs[0].match.cookie_name, "sid");
}

TEST(Policy, LeastLoadedCompiles) {
  LeastLoadedPolicy p;
  p.name = "ll";
  p.backends = {B(1), B(2)};
  auto rs = Compile(p);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].action.type, ActionType::kLeastLoaded);
}

TEST(RuleToString, HumanReadable) {
  auto r = ParseRule("name=r priority=3 url=*.jpg split=10.0.2.1:0.5");
  ASSERT_TRUE(r.has_value());
  const std::string s = r->ToString();
  EXPECT_NE(s.find("r prio=3"), std::string::npos);
  EXPECT_NE(s.find("*.jpg"), std::string::npos);
}

}  // namespace
}  // namespace rules
