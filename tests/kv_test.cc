// TCPStore substrate tests: consistent hashing, the memcached-style server
// and the replicating client library.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/kv/hash_ring.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"

namespace kv {
namespace {

TEST(Hashing, Deterministic) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(HashRing, LookupConsistentAcrossCalls) {
  HashRing ring;
  ring.AddServer("s1");
  ring.AddServer("s2");
  ring.AddServer("s3");
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ring.Lookup(key), ring.Lookup(key));
  }
}

TEST(HashRing, KeysSpreadAcrossServers) {
  HashRing ring;
  for (int i = 0; i < 10; ++i) {
    ring.AddServer("server-" + std::to_string(i));
  }
  std::map<std::string, int> counts;
  const int keys = 10'000;
  for (int i = 0; i < keys; ++i) {
    counts[ring.Lookup("key-" + std::to_string(i))] += 1;
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [server, n] : counts) {
    EXPECT_GT(n, keys / 10 / 3) << server;  // No server starved badly.
    EXPECT_LT(n, keys / 10 * 3) << server;  // No server hogging.
  }
}

TEST(HashRing, RemovalOnlyMovesRemovedServersKeys) {
  HashRing ring;
  for (int i = 0; i < 8; ++i) {
    ring.AddServer("s" + std::to_string(i));
  }
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.Lookup(key);
  }
  ring.RemoveServer("s3");
  int moved_not_from_s3 = 0;
  for (const auto& [key, owner] : before) {
    const std::string now = ring.Lookup(key);
    if (owner != "s3") {
      if (now != owner) {
        ++moved_not_from_s3;
      }
    } else {
      EXPECT_NE(now, "s3");
    }
  }
  EXPECT_EQ(moved_not_from_s3, 0);  // Consistent hashing property.
}

TEST(HashRing, ReplicasAreDistinct) {
  HashRing ring;
  for (int i = 0; i < 6; ++i) {
    ring.AddServer("s" + std::to_string(i));
  }
  for (int i = 0; i < 500; ++i) {
    auto reps = ring.Replicas("k" + std::to_string(i), 3);
    ASSERT_EQ(reps.size(), 3u);
    std::set<std::string> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(HashRing, ReplicasCappedByServerCount) {
  HashRing ring;
  ring.AddServer("only");
  auto reps = ring.Replicas("k", 3);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0], "only");
}

TEST(HashRing, EmptyRingReturnsEmpty) {
  HashRing ring;
  EXPECT_EQ(ring.Lookup("k"), "");
  EXPECT_TRUE(ring.Replicas("k", 2).empty());
}

TEST(HashRing, DuplicateAddIsIdempotent) {
  HashRing ring;
  ring.AddServer("s");
  ring.AddServer("s");
  EXPECT_EQ(ring.server_count(), 1u);
  ring.RemoveServer("s");
  EXPECT_EQ(ring.server_count(), 0u);
  ring.RemoveServer("s");  // No crash.
}

// Property: for any fleet size, K=2 replica sets stay balanced and distinct.
class RingBalanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingBalanceSweep, ReplicaLoadStaysBalanced) {
  const int servers = GetParam();
  HashRing ring;
  for (int i = 0; i < servers; ++i) {
    ring.AddServer("kv-" + std::to_string(i));
  }
  std::map<std::string, int> load;
  const int keys = 6'000;
  for (int i = 0; i < keys; ++i) {
    for (const std::string& r : ring.Replicas("flow:" + std::to_string(i), 2)) {
      load[r] += 1;
    }
  }
  const double expected = 2.0 * keys / servers;
  for (const auto& [server, n] : load) {
    EXPECT_GT(n, expected * 0.5) << server;
    EXPECT_LT(n, expected * 1.6) << server;
  }
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, RingBalanceSweep, ::testing::Values(2, 3, 5, 8, 16, 32));

class KvServerTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  KvServer server{&simulator, "kv-0"};
};

TEST_F(KvServerTest, SetThenGet) {
  bool set_ok = false;
  std::optional<std::string> got;
  server.Set("k", "v", [&set_ok](bool ok) { set_ok = ok; });
  simulator.Run();
  EXPECT_TRUE(set_ok);
  server.Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v");
  EXPECT_EQ(server.stats().hits, 1u);
}

TEST_F(KvServerTest, GetMissingIsMiss) {
  std::optional<std::string> got = "sentinel";
  server.Get("nope", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(server.stats().misses, 1u);
}

TEST_F(KvServerTest, DeleteRemoves) {
  server.Set("k", "v", [](bool) {});
  simulator.Run();
  bool deleted = false;
  server.Delete("k", [&deleted](bool ok) { deleted = ok; });
  simulator.Run();
  EXPECT_TRUE(deleted);
  EXPECT_EQ(server.item_count(), 0u);
  bool deleted_again = true;
  server.Delete("k", [&deleted_again](bool ok) { deleted_again = ok; });
  simulator.Run();
  EXPECT_FALSE(deleted_again);
}

TEST_F(KvServerTest, OverwriteUpdatesValue) {
  server.Set("k", "v1", [](bool) {});
  server.Set("k", "v2", [](bool) {});
  simulator.Run();
  std::optional<std::string> got;
  server.Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v2");
  EXPECT_EQ(server.item_count(), 1u);
}

TEST(KvServerLru, EvictsLeastRecentlyUsed) {
  sim::Simulator simulator;
  KvServerConfig cfg;
  cfg.max_items = 3;
  KvServer server(&simulator, "kv", cfg);
  server.Set("a", "1", [](bool) {});
  server.Set("b", "2", [](bool) {});
  server.Set("c", "3", [](bool) {});
  simulator.Run();
  // Touch "a" so "b" becomes the LRU victim.
  server.Get("a", [](std::optional<std::string>) {});
  simulator.Run();
  server.Set("d", "4", [](bool) {});
  simulator.Run();
  EXPECT_EQ(server.stats().evictions, 1u);
  std::optional<std::string> b = std::nullopt;
  bool b_answered = false;
  server.Get("b", [&](std::optional<std::string> v) {
    b = std::move(v);
    b_answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(b_answered);
  EXPECT_FALSE(b.has_value());
}

TEST_F(KvServerTest, FailClearsContentsAndDropsOps) {
  server.Set("k", "v", [](bool) {});
  simulator.Run();
  server.Fail();
  EXPECT_EQ(server.item_count(), 0u);
  bool answered = false;
  server.Get("k", [&answered](std::optional<std::string>) { answered = true; });
  simulator.Run();
  EXPECT_FALSE(answered);
  EXPECT_EQ(server.stats().dropped_while_down, 1u);
  server.Recover();
  server.Set("k2", "v2", [](bool) {});
  simulator.Run();
  EXPECT_EQ(server.item_count(), 1u);
}

TEST_F(KvServerTest, QueueingDelaysOpsUnderLoad) {
  // 1000 ops submitted at t=0 with ~11 us service: completion spreads out.
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    server.Set("k" + std::to_string(i), "v", [&completed](bool) { ++completed; });
  }
  simulator.RunUntil(sim::Msec(1));
  EXPECT_LT(completed, 1000);
  simulator.Run();
  EXPECT_EQ(completed, 1000);
  EXPECT_GT(server.QueueDelayNow(), -1);  // API smoke.
}

TEST_F(KvServerTest, CpuUtilizationTracksLoad) {
  server.ResetCpuWindow(0);
  for (int i = 0; i < 10'000; ++i) {
    server.Set("k" + std::to_string(i), "v", [](bool) {});
  }
  simulator.Run();
  // 10K ops * 11 us = 110 ms busy; over the elapsed window it must be > 0.
  EXPECT_GT(server.CpuUtilization(simulator.now()), 0.5);
}

class ReplicatingClientTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  std::vector<std::unique_ptr<KvServer>> servers;
  std::unique_ptr<ReplicatingClient> client;

  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      servers.push_back(std::make_unique<KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    ReplicatingClientConfig cfg;
    cfg.replicas = 2;
    client = std::make_unique<ReplicatingClient>(&simulator, ptrs, cfg);
  }
};

TEST_F(ReplicatingClientTest, SetWritesToTwoServers) {
  bool ok = false;
  client->Set("flow-1", "state", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_TRUE(ok);
  int copies = 0;
  for (auto& s : servers) {
    copies += static_cast<int>(s->item_count());
  }
  EXPECT_EQ(copies, 2);
}

TEST_F(ReplicatingClientTest, GetAfterSet) {
  client->Set("k", "v", [](bool) {});
  simulator.Run();
  std::optional<std::string> got;
  client->Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v");
}

TEST_F(ReplicatingClientTest, GetMissAfterAllReplicasAnswer) {
  std::optional<std::string> got = "sentinel";
  bool answered = false;
  client->Get("missing", [&](std::optional<std::string> v) {
    got = std::move(v);
    answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(answered);
  EXPECT_FALSE(got.has_value());
}

TEST_F(ReplicatingClientTest, SurvivesOneReplicaFailure) {
  client->Set("flow", "precious", [](bool) {});
  simulator.Run();
  // Kill exactly the replicas' first server.
  auto replicas = client->ReplicasFor("flow");
  ASSERT_EQ(replicas.size(), 2u);
  replicas[0]->Fail();
  std::optional<std::string> got;
  client->Get("flow", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "precious");  // Second replica still has it.
}

TEST_F(ReplicatingClientTest, LosesDataWhenAllReplicasFail) {
  client->Set("flow", "gone", [](bool) {});
  simulator.Run();
  for (KvServer* s : client->ReplicasFor("flow")) {
    s->Fail();
  }
  std::optional<std::string> got = "sentinel";
  bool answered = false;
  client->Get("flow", [&](std::optional<std::string> v) {
    got = std::move(v);
    answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(answered);  // Timeout fired.
  EXPECT_FALSE(got.has_value());
}

TEST_F(ReplicatingClientTest, DeleteRemovesAllReplicas) {
  client->Set("k", "v", [](bool) {});
  simulator.Run();
  bool ok = false;
  client->Delete("k", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_TRUE(ok);
  for (auto& s : servers) {
    EXPECT_EQ(s->item_count(), 0u);
  }
}

TEST_F(ReplicatingClientTest, LatencyHistogramsPopulated) {
  for (int i = 0; i < 100; ++i) {
    client->Set("k" + std::to_string(i), "v", [](bool) {});
  }
  simulator.Run();
  EXPECT_EQ(client->stats().set_latency_us.count(), 100u);
  // Two network hops (~120 us each) plus ~11 us service.
  EXPECT_GT(client->stats().set_latency_us.Mean(), 200.0);
  EXPECT_LT(client->stats().set_latency_us.Mean(), 2'000.0);
}

TEST_F(ReplicatingClientTest, ReplicaChoiceIsStable) {
  auto a = client->ReplicasFor("some-key");
  auto b = client->ReplicasFor("some-key");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->id(), b[i]->id());
  }
}

// ---------------------------------------------------------------------------
// Degraded-mode hardening: slow replicas, retries, hedging, read repair.
// ---------------------------------------------------------------------------

TEST_F(KvServerTest, ResponseDelayDefersAnswerNotStoreState) {
  KvServer slow(&simulator, "slow");
  slow.set_response_delay(sim::Msec(10));
  slow.Set("k", "v", [](bool) {});
  simulator.RunUntil(sim::Msec(1));
  EXPECT_EQ(slow.item_count(), 1u);  // Mutation landed at op completion...
  sim::Time acked_at = -1;
  bool got_hit = false;
  slow.Get("k", [&](std::optional<std::string> v) { got_hit = v.has_value(); });
  slow.Set("k2", "v2", [&](bool) { acked_at = simulator.now(); });
  simulator.Run();
  EXPECT_TRUE(got_hit);
  EXPECT_GE(acked_at, sim::Msec(11));  // ...but the answer came back late.
}

class DegradedModeTest : public ReplicatingClientTest {
 protected:
  // Fresh client over the fixture's servers with hardened config.
  std::unique_ptr<ReplicatingClient> Make(ReplicatingClientConfig cfg) {
    std::vector<KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    cfg.replicas = 2;
    return std::make_unique<ReplicatingClient>(&simulator, ptrs, cfg);
  }

  // Runs one Get and returns (value, completion time).
  std::pair<std::optional<std::string>, sim::Time> GetAndRun(ReplicatingClient& c,
                                                             const std::string& key) {
    std::optional<std::string> got;
    sim::Time done_at = -1;
    const sim::Time start = simulator.now();
    c.Get(key, [&](std::optional<std::string> v) {
      got = std::move(v);
      done_at = simulator.now();
    });
    simulator.Run();
    return {got, done_at - start};
  }
};

TEST_F(DegradedModeTest, AllReplicasDownSetGetDeleteAllResolve) {
  client->Set("k", "v", [](bool) {});
  simulator.Run();
  for (auto& s : servers) {
    s->Fail();
  }
  bool set_done = false, set_ok = true;
  client->Set("k", "v2", [&](bool ok) {
    set_done = true;
    set_ok = ok;
  });
  simulator.Run();
  EXPECT_TRUE(set_done);  // op_timeout resolved it; no hang.
  EXPECT_FALSE(set_ok);

  bool get_done = false;
  std::optional<std::string> got = "sentinel";
  client->Get("k", [&](std::optional<std::string> v) {
    get_done = true;
    got = std::move(v);
  });
  simulator.Run();
  EXPECT_TRUE(get_done);
  EXPECT_FALSE(got.has_value());

  bool del_done = false, del_ok = true;
  client->Delete("k", [&](bool ok) {
    del_done = true;
    del_ok = ok;
  });
  simulator.Run();
  EXPECT_TRUE(del_done);
  EXPECT_FALSE(del_ok);
  // Every op left its full replica set unanswered.
  EXPECT_EQ(client->stats().replica_timeouts, 6u);
}

TEST_F(DegradedModeTest, RetriesAreBoundedAndCounted) {
  ReplicatingClientConfig cfg;
  cfg.max_retries = 2;
  cfg.retry_backoff = sim::Msec(2);
  auto hardened = Make(cfg);
  for (auto& s : servers) {
    s->Fail();
  }
  bool ok = true;
  hardened->Set("k", "v", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(hardened->stats().retries, 2u);  // Initial + 2 retries, then give up.
}

TEST_F(DegradedModeTest, RetryRecoversFromTransientOutage) {
  ReplicatingClientConfig cfg;
  cfg.max_retries = 3;
  cfg.retry_backoff = sim::Msec(5);
  auto hardened = Make(cfg);
  for (KvServer* s : hardened->ReplicasFor("flow")) {
    s->Fail();
  }
  // Replicas come back while the first attempt is still timing out.
  simulator.At(sim::Msec(30), [this]() {
    for (auto& s : servers) {
      s->Recover();
    }
  });
  bool ok = false;
  hardened->Set("flow", "state", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(hardened->stats().retries, 1u);
  EXPECT_EQ(hardened->ReplicasFor("flow")[0]->item_count(), 1u);
}

TEST_F(DegradedModeTest, UnanimousMissIsDefinitiveAndNotRetried) {
  ReplicatingClientConfig cfg;
  cfg.max_retries = 3;
  auto hardened = Make(cfg);
  auto [got, latency] = GetAndRun(*hardened, "never-written");
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(hardened->stats().retries, 0u);  // Miss != indefinite.
  EXPECT_LT(latency, sim::Msec(5));          // Answered, not timed out.
}

TEST_F(DegradedModeTest, HedgedReadCutsDeadReplicaLatencyVsTimeoutBaseline) {
  client->Set("flow", "precious", [](bool) {});
  simulator.Run();
  auto replicas = client->ReplicasFor("flow");
  replicas[0]->Fail();  // First-choice replica dead: the worst case for kSingle.

  ReplicatingClientConfig single;
  single.read_mode = ReadMode::kSingle;
  auto baseline = Make(single);
  auto [got_single, t_single] = GetAndRun(*baseline, "flow");
  EXPECT_EQ(got_single, "precious");
  // Timeout-only baseline burned the full op_timeout on the dead replica.
  EXPECT_GE(t_single, baseline->config().op_timeout);

  ReplicatingClientConfig hedged;
  hedged.read_mode = ReadMode::kHedged;
  hedged.hedge_delay = sim::Msec(5);
  auto fast = Make(hedged);
  auto [got_hedged, t_hedged] = GetAndRun(*fast, "flow");
  EXPECT_EQ(got_hedged, "precious");
  EXPECT_LT(t_hedged, sim::Msec(10));  // hedge_delay + round trip.
  EXPECT_LT(t_hedged * 4, t_single);
  EXPECT_EQ(fast->stats().hedged_gets, 1u);
  EXPECT_EQ(fast->stats().hedge_wins, 1u);
}

TEST_F(DegradedModeTest, HedgeNotLaunchedWhenPrimaryAnswersInTime) {
  client->Set("flow", "v", [](bool) {});
  simulator.Run();
  ReplicatingClientConfig hedged;
  hedged.read_mode = ReadMode::kHedged;
  hedged.hedge_delay = sim::Msec(5);
  auto fast = Make(hedged);
  auto [got, latency] = GetAndRun(*fast, "flow");
  EXPECT_EQ(got, "v");
  EXPECT_EQ(fast->stats().hedged_gets, 0u);  // Primary answered within 5 ms.
  EXPECT_EQ(fast->stats().hedge_wins, 0u);
}

TEST_F(DegradedModeTest, ReplicaTimeoutAttributedEvenWhenOpFinishesEarly) {
  client->Set("flow", "v", [](bool) {});
  simulator.Run();
  auto replicas = client->ReplicasFor("flow");
  // Slower than op_timeout: this replica answers, but only after the deadline.
  replicas[0]->set_response_delay(sim::Msec(80));

  auto [got, latency] = GetAndRun(*client, "flow");
  EXPECT_EQ(got, "v");                   // Fanout: the healthy replica won...
  EXPECT_LT(latency, sim::Msec(5));      // ...immediately.
  simulator.Run();
  EXPECT_EQ(client->stats().replica_timeouts, 1u);  // Slow one still attributed.

  // A replica slower than the fast one but inside op_timeout is NOT counted.
  replicas[0]->set_response_delay(sim::Msec(10));
  auto [got2, latency2] = GetAndRun(*client, "flow");
  EXPECT_EQ(got2, "v");
  simulator.Run();
  EXPECT_EQ(client->stats().replica_timeouts, 1u);
}

TEST_F(DegradedModeTest, ReadRepairHealsColdRestartedReplica) {
  ReplicatingClientConfig cfg;
  cfg.read_repair = true;
  auto healing = Make(cfg);
  healing->Set("flow", "precious", [](bool) {});
  simulator.Run();
  auto replicas = healing->ReplicasFor("flow");
  replicas[0]->Fail();     // Cold restart: contents gone...
  replicas[0]->Recover();  // ...but the server is back and answering.
  EXPECT_EQ(replicas[0]->item_count(), 0u);

  auto [got, latency] = GetAndRun(*healing, "flow");
  EXPECT_EQ(got, "precious");
  simulator.Run();  // Let the repair write land.
  EXPECT_EQ(healing->stats().read_repairs, 1u);
  EXPECT_EQ(replicas[0]->item_count(), 1u);  // Healed.

  // Re-read now hits on the healed replica too; no further repairs.
  auto [got2, latency2] = GetAndRun(*healing, "flow");
  EXPECT_EQ(got2, "precious");
  EXPECT_EQ(healing->stats().read_repairs, 1u);
}

// ---------------------------------------------------------------------------
// Compare-and-swap (the leader-lease substrate).
// ---------------------------------------------------------------------------

TEST_F(KvServerTest, CasCreatesOnlyWhenAbsent) {
  bool first = false;
  bool second = true;
  server.Cas("lease", std::nullopt, "holder=a", [&first](bool ok) { first = ok; });
  server.Cas("lease", std::nullopt, "holder=b", [&second](bool ok) { second = ok; });
  simulator.Run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);  // Key exists now; create-if-absent must fail.
  std::optional<std::string> got;
  server.Get("lease", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "holder=a");
}

TEST_F(KvServerTest, CasSwapsOnExactMatchOnly) {
  server.Set("lease", "holder=a", [](bool) {});
  simulator.Run();
  bool stale = true;
  bool fresh = false;
  server.Cas("lease", "holder=zzz", "holder=b", [&stale](bool ok) { stale = ok; });
  server.Cas("lease", "holder=a", "holder=c", [&fresh](bool ok) { fresh = ok; });
  simulator.Run();
  EXPECT_FALSE(stale);
  EXPECT_TRUE(fresh);
  std::optional<std::string> got;
  server.Get("lease", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "holder=c");
}

TEST_F(ReplicatingClientTest, CasContendersNeverBothWin) {
  // Two controllers race to create the same lease key. The win condition is
  // a strict majority of the CONFIGURED replica count (2-of-2 here), so at
  // most one contender can win — both losing is allowed, split wins are not.
  bool a_won = false;
  bool b_won = false;
  client->Cas("ctl/lease", std::nullopt, "holder=a", [&a_won](bool ok) { a_won = ok; });
  client->Cas("ctl/lease", std::nullopt, "holder=b", [&b_won](bool ok) { b_won = ok; });
  simulator.Run();
  EXPECT_FALSE(a_won && b_won);
  EXPECT_TRUE(a_won || b_won);  // Uncontested replicas: someone must win.
  // Post-win repair converged every replica on the winner's value.
  const std::string winner = a_won ? "holder=a" : "holder=b";
  std::optional<std::string> got;
  client->Get("ctl/lease", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, winner);
  for (KvServer* s : client->ReplicasFor("ctl/lease")) {
    std::optional<std::string> copy;
    s->Get("ctl/lease", [&copy](std::optional<std::string> v) { copy = std::move(v); });
    simulator.Run();
    EXPECT_EQ(copy, winner);
  }
}

TEST_F(ReplicatingClientTest, CasFailsWithoutMajority) {
  // With one of the two replicas down, a 2-of-2 majority is unreachable: the
  // CAS must fail (no lease handed out on a split ring) even though the
  // surviving replica accepted the write.
  client->ReplicasFor("ctl/lease")[1]->Fail();
  bool won = true;
  client->Cas("ctl/lease", std::nullopt, "holder=a", [&won](bool ok) { won = ok; });
  simulator.Run();
  EXPECT_FALSE(won);
}

}  // namespace
}  // namespace kv
