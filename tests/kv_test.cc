// TCPStore substrate tests: consistent hashing, the memcached-style server
// and the replicating client library.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/kv/hash_ring.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"

namespace kv {
namespace {

TEST(Hashing, Deterministic) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(HashRing, LookupConsistentAcrossCalls) {
  HashRing ring;
  ring.AddServer("s1");
  ring.AddServer("s2");
  ring.AddServer("s3");
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ring.Lookup(key), ring.Lookup(key));
  }
}

TEST(HashRing, KeysSpreadAcrossServers) {
  HashRing ring;
  for (int i = 0; i < 10; ++i) {
    ring.AddServer("server-" + std::to_string(i));
  }
  std::map<std::string, int> counts;
  const int keys = 10'000;
  for (int i = 0; i < keys; ++i) {
    counts[ring.Lookup("key-" + std::to_string(i))] += 1;
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [server, n] : counts) {
    EXPECT_GT(n, keys / 10 / 3) << server;  // No server starved badly.
    EXPECT_LT(n, keys / 10 * 3) << server;  // No server hogging.
  }
}

TEST(HashRing, RemovalOnlyMovesRemovedServersKeys) {
  HashRing ring;
  for (int i = 0; i < 8; ++i) {
    ring.AddServer("s" + std::to_string(i));
  }
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.Lookup(key);
  }
  ring.RemoveServer("s3");
  int moved_not_from_s3 = 0;
  for (const auto& [key, owner] : before) {
    const std::string now = ring.Lookup(key);
    if (owner != "s3") {
      if (now != owner) {
        ++moved_not_from_s3;
      }
    } else {
      EXPECT_NE(now, "s3");
    }
  }
  EXPECT_EQ(moved_not_from_s3, 0);  // Consistent hashing property.
}

TEST(HashRing, ReplicasAreDistinct) {
  HashRing ring;
  for (int i = 0; i < 6; ++i) {
    ring.AddServer("s" + std::to_string(i));
  }
  for (int i = 0; i < 500; ++i) {
    auto reps = ring.Replicas("k" + std::to_string(i), 3);
    ASSERT_EQ(reps.size(), 3u);
    std::set<std::string> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(HashRing, ReplicasCappedByServerCount) {
  HashRing ring;
  ring.AddServer("only");
  auto reps = ring.Replicas("k", 3);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0], "only");
}

TEST(HashRing, EmptyRingReturnsEmpty) {
  HashRing ring;
  EXPECT_EQ(ring.Lookup("k"), "");
  EXPECT_TRUE(ring.Replicas("k", 2).empty());
}

TEST(HashRing, DuplicateAddIsIdempotent) {
  HashRing ring;
  ring.AddServer("s");
  ring.AddServer("s");
  EXPECT_EQ(ring.server_count(), 1u);
  ring.RemoveServer("s");
  EXPECT_EQ(ring.server_count(), 0u);
  ring.RemoveServer("s");  // No crash.
}

// Property: for any fleet size, K=2 replica sets stay balanced and distinct.
class RingBalanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingBalanceSweep, ReplicaLoadStaysBalanced) {
  const int servers = GetParam();
  HashRing ring;
  for (int i = 0; i < servers; ++i) {
    ring.AddServer("kv-" + std::to_string(i));
  }
  std::map<std::string, int> load;
  const int keys = 6'000;
  for (int i = 0; i < keys; ++i) {
    for (const std::string& r : ring.Replicas("flow:" + std::to_string(i), 2)) {
      load[r] += 1;
    }
  }
  const double expected = 2.0 * keys / servers;
  for (const auto& [server, n] : load) {
    EXPECT_GT(n, expected * 0.5) << server;
    EXPECT_LT(n, expected * 1.6) << server;
  }
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, RingBalanceSweep, ::testing::Values(2, 3, 5, 8, 16, 32));

class KvServerTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  KvServer server{&simulator, "kv-0"};
};

TEST_F(KvServerTest, SetThenGet) {
  bool set_ok = false;
  std::optional<std::string> got;
  server.Set("k", "v", [&set_ok](bool ok) { set_ok = ok; });
  simulator.Run();
  EXPECT_TRUE(set_ok);
  server.Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v");
  EXPECT_EQ(server.stats().hits, 1u);
}

TEST_F(KvServerTest, GetMissingIsMiss) {
  std::optional<std::string> got = "sentinel";
  server.Get("nope", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(server.stats().misses, 1u);
}

TEST_F(KvServerTest, DeleteRemoves) {
  server.Set("k", "v", [](bool) {});
  simulator.Run();
  bool deleted = false;
  server.Delete("k", [&deleted](bool ok) { deleted = ok; });
  simulator.Run();
  EXPECT_TRUE(deleted);
  EXPECT_EQ(server.item_count(), 0u);
  bool deleted_again = true;
  server.Delete("k", [&deleted_again](bool ok) { deleted_again = ok; });
  simulator.Run();
  EXPECT_FALSE(deleted_again);
}

TEST_F(KvServerTest, OverwriteUpdatesValue) {
  server.Set("k", "v1", [](bool) {});
  server.Set("k", "v2", [](bool) {});
  simulator.Run();
  std::optional<std::string> got;
  server.Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v2");
  EXPECT_EQ(server.item_count(), 1u);
}

TEST(KvServerLru, EvictsLeastRecentlyUsed) {
  sim::Simulator simulator;
  KvServerConfig cfg;
  cfg.max_items = 3;
  KvServer server(&simulator, "kv", cfg);
  server.Set("a", "1", [](bool) {});
  server.Set("b", "2", [](bool) {});
  server.Set("c", "3", [](bool) {});
  simulator.Run();
  // Touch "a" so "b" becomes the LRU victim.
  server.Get("a", [](std::optional<std::string>) {});
  simulator.Run();
  server.Set("d", "4", [](bool) {});
  simulator.Run();
  EXPECT_EQ(server.stats().evictions, 1u);
  std::optional<std::string> b = std::nullopt;
  bool b_answered = false;
  server.Get("b", [&](std::optional<std::string> v) {
    b = std::move(v);
    b_answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(b_answered);
  EXPECT_FALSE(b.has_value());
}

TEST_F(KvServerTest, FailClearsContentsAndDropsOps) {
  server.Set("k", "v", [](bool) {});
  simulator.Run();
  server.Fail();
  EXPECT_EQ(server.item_count(), 0u);
  bool answered = false;
  server.Get("k", [&answered](std::optional<std::string>) { answered = true; });
  simulator.Run();
  EXPECT_FALSE(answered);
  EXPECT_EQ(server.stats().dropped_while_down, 1u);
  server.Recover();
  server.Set("k2", "v2", [](bool) {});
  simulator.Run();
  EXPECT_EQ(server.item_count(), 1u);
}

TEST_F(KvServerTest, QueueingDelaysOpsUnderLoad) {
  // 1000 ops submitted at t=0 with ~11 us service: completion spreads out.
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    server.Set("k" + std::to_string(i), "v", [&completed](bool) { ++completed; });
  }
  simulator.RunUntil(sim::Msec(1));
  EXPECT_LT(completed, 1000);
  simulator.Run();
  EXPECT_EQ(completed, 1000);
  EXPECT_GT(server.QueueDelayNow(), -1);  // API smoke.
}

TEST_F(KvServerTest, CpuUtilizationTracksLoad) {
  server.ResetCpuWindow(0);
  for (int i = 0; i < 10'000; ++i) {
    server.Set("k" + std::to_string(i), "v", [](bool) {});
  }
  simulator.Run();
  // 10K ops * 11 us = 110 ms busy; over the elapsed window it must be > 0.
  EXPECT_GT(server.CpuUtilization(simulator.now()), 0.5);
}

class ReplicatingClientTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  std::vector<std::unique_ptr<KvServer>> servers;
  std::unique_ptr<ReplicatingClient> client;

  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      servers.push_back(std::make_unique<KvServer>(&simulator, "kv-" + std::to_string(i)));
    }
    std::vector<KvServer*> ptrs;
    for (auto& s : servers) {
      ptrs.push_back(s.get());
    }
    ReplicatingClientConfig cfg;
    cfg.replicas = 2;
    client = std::make_unique<ReplicatingClient>(&simulator, ptrs, cfg);
  }
};

TEST_F(ReplicatingClientTest, SetWritesToTwoServers) {
  bool ok = false;
  client->Set("flow-1", "state", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_TRUE(ok);
  int copies = 0;
  for (auto& s : servers) {
    copies += static_cast<int>(s->item_count());
  }
  EXPECT_EQ(copies, 2);
}

TEST_F(ReplicatingClientTest, GetAfterSet) {
  client->Set("k", "v", [](bool) {});
  simulator.Run();
  std::optional<std::string> got;
  client->Get("k", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "v");
}

TEST_F(ReplicatingClientTest, GetMissAfterAllReplicasAnswer) {
  std::optional<std::string> got = "sentinel";
  bool answered = false;
  client->Get("missing", [&](std::optional<std::string> v) {
    got = std::move(v);
    answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(answered);
  EXPECT_FALSE(got.has_value());
}

TEST_F(ReplicatingClientTest, SurvivesOneReplicaFailure) {
  client->Set("flow", "precious", [](bool) {});
  simulator.Run();
  // Kill exactly the replicas' first server.
  auto replicas = client->ReplicasFor("flow");
  ASSERT_EQ(replicas.size(), 2u);
  replicas[0]->Fail();
  std::optional<std::string> got;
  client->Get("flow", [&got](std::optional<std::string> v) { got = std::move(v); });
  simulator.Run();
  EXPECT_EQ(got, "precious");  // Second replica still has it.
}

TEST_F(ReplicatingClientTest, LosesDataWhenAllReplicasFail) {
  client->Set("flow", "gone", [](bool) {});
  simulator.Run();
  for (KvServer* s : client->ReplicasFor("flow")) {
    s->Fail();
  }
  std::optional<std::string> got = "sentinel";
  bool answered = false;
  client->Get("flow", [&](std::optional<std::string> v) {
    got = std::move(v);
    answered = true;
  });
  simulator.Run();
  EXPECT_TRUE(answered);  // Timeout fired.
  EXPECT_FALSE(got.has_value());
}

TEST_F(ReplicatingClientTest, DeleteRemovesAllReplicas) {
  client->Set("k", "v", [](bool) {});
  simulator.Run();
  bool ok = false;
  client->Delete("k", [&ok](bool v) { ok = v; });
  simulator.Run();
  EXPECT_TRUE(ok);
  for (auto& s : servers) {
    EXPECT_EQ(s->item_count(), 0u);
  }
}

TEST_F(ReplicatingClientTest, LatencyHistogramsPopulated) {
  for (int i = 0; i < 100; ++i) {
    client->Set("k" + std::to_string(i), "v", [](bool) {});
  }
  simulator.Run();
  EXPECT_EQ(client->stats().set_latency_us.count(), 100u);
  // Two network hops (~120 us each) plus ~11 us service.
  EXPECT_GT(client->stats().set_latency_us.Mean(), 200.0);
  EXPECT_LT(client->stats().set_latency_us.Mean(), 2'000.0);
}

TEST_F(ReplicatingClientTest, ReplicaChoiceIsStable) {
  auto a = client->ReplicasFor("some-key");
  auto b = client->ReplicasFor("some-key");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->id(), b[i]->id());
  }
}

}  // namespace
}  // namespace kv
