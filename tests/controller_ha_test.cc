// Controller HA tests: leader election over the replicated KV ring, standby
// API gating, fencing of a deposed leader's stragglers at muxes AND
// instances, bounded actuator step retry with stall accounting, and the
// tentpole scenario — leader crash mid-rollout, standby restores the durable
// journal, resumes the in-flight plan without double-applying any step, and
// no VIP ever blacks out.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/control_journal.h"
#include "src/fault/chaos.h"
#include "src/workload/testbed.h"

namespace workload {
namespace {

using yoda::ChangeKind;
using yoda::Controller;
using yoda::ExecStepKind;

TestbedConfig HaConfig(int controllers = 2) {
  TestbedConfig cfg;
  cfg.build_catalog = false;  // Control-plane tests: no HTTP load.
  cfg.controller_ha = true;
  cfg.controllers = controllers;
  return cfg;
}

int IndexOf(Testbed& tb, Controller* c) {
  for (int i = 0; i < tb.controller_count(); ++i) {
    if (tb.ControllerAt(i) == c) {
      return i;
    }
  }
  return -1;
}

int CountActingLeaders(Testbed& tb) {
  int n = 0;
  for (int i = 0; i < tb.controller_count(); ++i) {
    if (!tb.ControllerAt(i)->crashed() && tb.ControllerAt(i)->ActingLeader()) {
      ++n;
    }
  }
  return n;
}

std::size_t CountSystemEvents(const obs::FlightRecorder& flight, obs::EventType type) {
  std::size_t n = 0;
  for (const obs::TraceEvent& ev : flight.system_events()) {
    if (ev.type == type) {
      ++n;
    }
  }
  return n;
}

TEST(ControllerHa, ElectionProducesExactlyOneLeader) {
  Testbed tb(HaConfig(3));
  tb.StartAllControllers();
  Controller* leader = tb.AwaitLeader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(CountActingLeaders(tb), 1);
  EXPECT_EQ(leader->fencing_token(), 1u);
  // Run on: the leader renews, nobody else ever acquires.
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(1));
  EXPECT_EQ(CountActingLeaders(tb), 1);
  EXPECT_EQ(tb.LeaderController(), leader);
  EXPECT_EQ(CountSystemEvents(tb.flight, obs::EventType::kLeaseAcquired), 1u);
  EXPECT_GT(CountSystemEvents(tb.flight, obs::EventType::kLeaseRenewed), 0u);
}

TEST(ControllerHa, StandbyIgnoresControlPlaneApi) {
  Testbed tb(HaConfig(2));
  tb.StartAllControllers();
  Controller* leader = tb.AwaitLeader();
  ASSERT_NE(leader, nullptr);
  Controller* standby = tb.ControllerAt(IndexOf(tb, leader) == 0 ? 1 : 0);
  ASSERT_FALSE(standby->ActingLeader());

  standby->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 2));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));
  EXPECT_FALSE(standby->state().HasVip(tb.vip()));
  EXPECT_EQ(tb.fabric.mux(0).PoolFor(tb.vip()), nullptr);

  leader->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 2));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));
  EXPECT_TRUE(leader->state().HasVip(tb.vip()));
  ASSERT_NE(tb.fabric.mux(0).PoolFor(tb.vip()), nullptr);
}

TEST(ControllerHa, LeaderMutationsAreJournaledDurably) {
  Testbed tb(HaConfig(2));
  tb.StartAllControllers();
  Controller* leader = tb.AwaitLeader();
  ASSERT_NE(leader, nullptr);
  leader->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 2));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(200));
  ASSERT_NE(leader->journal(), nullptr);
  EXPECT_GT(leader->journal()->stats().changes_logged, 0u);
  EXPECT_GT(leader->journal()->stats().plans_journaled, 0u);
  EXPECT_GT(leader->journal()->stats().applied_markers, 0u);

  // An independent journal client sees the persisted state.
  yoda::ControlJournal reader(&tb.sim, tb.ctl_kv_client.get(), {});
  yoda::RestoredControlPlane restored;
  bool done = false;
  reader.Restore([&](yoda::RestoredControlPlane r) {
    restored = std::move(r);
    done = true;
  });
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(200));
  ASSERT_TRUE(done);
  ASSERT_TRUE(restored.found);
  yoda::ControlState rebuilt(&tb.sim);
  rebuilt.LoadSnapshot(restored.epoch, restored.vips, restored.assignment);
  for (const yoda::DurableChange& c : restored.tail) {
    rebuilt.ApplyDurable(c);
  }
  EXPECT_TRUE(rebuilt.HasVip(tb.vip()));
  EXPECT_EQ(rebuilt.epoch(), leader->state().epoch());
  EXPECT_TRUE(restored.open_plans.empty());  // The define plan completed.
}

// Satellite: fencing regression — a deposed leader's stragglers are rejected
// at every layer even when stamped with a NEWER epoch than the mux watermark
// (fencing is checked before epochs: a stale token must never advance epoch
// state).
TEST(ControllerHa, DeposedLeaderWritesAreFencedAtMuxAndInstance) {
  Testbed tb(HaConfig(2));
  tb.StartAllControllers();
  Controller* first = tb.AwaitLeader();
  ASSERT_NE(first, nullptr);
  const std::uint64_t old_token = first->fencing_token();
  first->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 2));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));
  const std::vector<net::IpAddr> pool_before = *tb.fabric.mux(0).PoolFor(tb.vip());

  tb.CrashController(IndexOf(tb, first));
  Controller* second = tb.AwaitLeader(sim::Sec(2));
  ASSERT_NE(second, nullptr);
  ASSERT_NE(second, first);
  EXPECT_GT(second->fencing_token(), old_token);
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(300));  // Takeover resync lands.

  // The dead leader's straggler: a pool write with its old token and an
  // epoch far beyond anything the muxes have seen. Every mux must drop it.
  const std::uint64_t future_epoch = second->state().epoch() + 100;
  const std::uint64_t fenced_before = tb.fabric.mux(0).stats().fenced_writes;
  tb.fabric.ProgramPool(tb.vip(), {tb.instance_ip(0)}, future_epoch, /*per_mux_delay=*/0,
                        old_token);
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(50));
  for (int m = 0; m < tb.cfg.muxes; ++m) {
    EXPECT_GT(tb.fabric.mux(m).stats().fenced_writes, 0u) << "mux " << m;
  }
  EXPECT_GT(tb.fabric.mux(0).stats().fenced_writes, fenced_before);
  EXPECT_EQ(*tb.fabric.mux(0).PoolFor(tb.vip()), pool_before);  // Unchanged.

  // Instance-level straggler: install of a new VIP under the old token.
  yoda::YodaInstance* inst = tb.instances[0].get();
  EXPECT_FALSE(inst->InstallVip(tb.vip(1), 80, tb.EqualSplitRules(0, 1), old_token));
  EXPECT_FALSE(inst->ServesVip(tb.vip(1)));
  EXPECT_FALSE(inst->SetBackendHealth(tb.backend_ip(0), false, old_token));
  EXPECT_GT(inst->stats().fenced_writes, 0u);

  // The trace proves the drops: kFencedWrite carries (token << 32) | watermark.
  EXPECT_GT(CountSystemEvents(tb.flight, obs::EventType::kFencedWrite), 0u);

  // And the deposed leader's own API is inert after restart (still standby).
  tb.RestartController(IndexOf(tb, first));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(200));
  EXPECT_FALSE(first->ActingLeader());
  first->DefineVip(tb.vip(2), 80, tb.EqualSplitRules(0, 1));
  EXPECT_FALSE(first->state().HasVip(tb.vip(2)));
  EXPECT_EQ(CountActingLeaders(tb), 1);
}

// Satellite: bounded per-step retry. A registered-but-failed instance makes
// its kInstallRules step retry with backoff and then stall; the round is
// marked failed but the remaining steps still run.
TEST(ActuatorRetry, StalledStepFailsRoundButDoesNotWedgeIt) {
  TestbedConfig cfg;
  cfg.build_catalog = false;
  cfg.controller.max_step_retries = 2;
  cfg.controller.step_retry_backoff = sim::Msec(5);
  Testbed tb(cfg);
  tb.instances[2]->Fail();  // Registered with the actuator, currently dead.

  tb.controller->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 3));
  tb.sim.Run();  // Drain the backoff retries.

  EXPECT_EQ(tb.metrics.GetCounter("controller.reconcile.step_retries").value(), 2u);
  EXPECT_EQ(tb.metrics.GetCounter("controller.reconcile.step_stalled").value(), 1u);
  EXPECT_EQ(tb.metrics.GetCounter("controller.reconcile.rounds_failed").value(), 1u);
  EXPECT_GT(CountSystemEvents(tb.flight, obs::EventType::kReconcileStalled), 0u);
  // The healthy instances were configured despite the stall.
  EXPECT_TRUE(tb.instances[0]->ServesVip(tb.vip()));
  EXPECT_TRUE(tb.instances[1]->ServesVip(tb.vip()));
  EXPECT_FALSE(tb.instances[2]->ServesVip(tb.vip()));
  // The stalled step is journaled as replayed (skipped), not applied.
  bool saw_stall = false;
  for (const yoda::ExecutedStep& es : tb.controller->actuator().journal()) {
    if (es.step.kind == ExecStepKind::kInstallRules &&
        es.step.instance == tb.instance_ip(2)) {
      saw_stall = true;
      EXPECT_TRUE(es.replayed);
    }
  }
  EXPECT_TRUE(saw_stall);
}

TEST(ActuatorRetry, RecoveryDuringBackoffLetsTheRetrySucceed) {
  TestbedConfig cfg;
  cfg.build_catalog = false;
  cfg.controller.max_step_retries = 3;
  cfg.controller.step_retry_backoff = sim::Msec(5);
  Testbed tb(cfg);
  tb.instances[2]->Fail();
  tb.sim.After(sim::Msec(2), [&tb]() { tb.instances[2]->Recover(); });

  tb.controller->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 3));
  tb.sim.Run();

  EXPECT_GE(tb.metrics.GetCounter("controller.reconcile.step_retries").value(), 1u);
  EXPECT_EQ(tb.metrics.GetCounter("controller.reconcile.step_stalled").value(), 0u);
  EXPECT_EQ(tb.metrics.GetCounter("controller.reconcile.rounds_failed").value(), 0u);
  EXPECT_TRUE(tb.instances[2]->ServesVip(tb.vip()));
}

// ---------------------------------------------------------------------------
// Tentpole: leader crash mid-rollout; standby restores, resumes, completes.
// ---------------------------------------------------------------------------

// Ledgered effective steps (the kinds the replay ledger tracks, excluding
// barriers and backend health) applied by this actuator — the set that must
// be unique across the old and new leader for "no step applies twice".
std::multiset<std::tuple<std::uint64_t, int, net::IpAddr, net::IpAddr>> EffectiveSteps(
    const Controller& c) {
  std::multiset<std::tuple<std::uint64_t, int, net::IpAddr, net::IpAddr>> out;
  for (const yoda::ExecutedStep& es : c.actuator().journal()) {
    if (es.replayed || es.step.kind == ExecStepKind::kAwaitConvergence ||
        es.step.kind == ExecStepKind::kSetBackendHealth) {
      continue;
    }
    out.insert({es.epoch, static_cast<int>(es.step.kind), es.step.vip, es.step.instance});
  }
  return out;
}

TEST(ControllerHa, LeaderCrashMidRolloutIsResumedWithoutDoubleApply) {
  Testbed tb(HaConfig(2));
  tb.StartAllControllers();
  Controller* first = tb.AwaitLeader();
  ASSERT_NE(first, nullptr);
  first->DefineVip(tb.vip(0), 80, tb.EqualSplitRules(0, 3, "r0"));
  first->DefineVip(tb.vip(1), 80, tb.EqualSplitRules(3, 3, "r1"));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));

  // Round 1 establishes an assignment (add-only: no barrier, completes
  // synchronously). Round 2 shifts it — vip0 grows, vip1 shrinks — which
  // yields a genuine make/barrier/break plan: the make phase applies now,
  // the break phase is parked behind the mux-convergence barrier.
  std::map<net::IpAddr, Controller::VipDemand> demand;
  demand[tb.vip(0)] = {0.4, 2, 0};
  demand[tb.vip(1)] = {0.4, 2, 0};
  ASSERT_TRUE(first->ApplyManyToMany(demand, 1.0, 2000));
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(1));
  demand[tb.vip(0)] = {0.4, 3, 0};
  demand[tb.vip(1)] = {0.4, 1, 0};
  ASSERT_TRUE(first->ApplyManyToMany(demand, 1.0, 2000, /*migration_limit=*/1.0));
  const std::uint64_t rollout_epoch = first->state().epoch();
  ASSERT_GT(first->actuator().plans_in_flight(), 0);  // Break phase pending.

  // Kill the leader 10ms in: journal has the plan + make-phase markers, the
  // break phase dies with the leader.
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(10));
  tb.CrashController(IndexOf(tb, first));

  Controller* second = tb.AwaitLeader(sim::Sec(2));
  ASSERT_NE(second, nullptr);
  ASSERT_NE(second, first);
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(2));  // Restore + resume + settle.

  // The standby restored the durable state and resumed the open plan.
  ASSERT_NE(second->journal(), nullptr);
  EXPECT_GE(second->journal()->stats().restores, 1u);
  EXPECT_EQ(CountSystemEvents(tb.flight, obs::EventType::kPlanResumed), 1u);
  // The dead leader's parked barrier fired and disarmed itself.
  EXPECT_GT(CountSystemEvents(tb.flight, obs::EventType::kReconcileAbort), 0u);

  // Desired state carried over: the new leader sees the rollout's assignment.
  EXPECT_GE(second->state().epoch(), rollout_epoch);
  EXPECT_EQ(second->AssignedInstances(tb.vip(0)).size(), 3u);
  EXPECT_EQ(second->AssignedInstances(tb.vip(1)).size(), 1u);

  // Fleet converged to it: every mux pool equals the desired assignment.
  for (int v = 0; v < 2; ++v) {
    const auto assigned = second->AssignedInstances(tb.vip(v));
    const std::set<net::IpAddr> want(assigned.begin(), assigned.end());
    for (int m = 0; m < tb.cfg.muxes; ++m) {
      const auto* pool = tb.fabric.mux(m).PoolFor(tb.vip(v));
      ASSERT_NE(pool, nullptr) << "mux " << m << " vip " << v;
      EXPECT_EQ(std::set<net::IpAddr>(pool->begin(), pool->end()), want)
          << "mux " << m << " vip " << v;
    }
  }

  // No ledgered step applied twice across the failover: the union of both
  // leaders' effective steps has no duplicate (epoch, kind, vip, instance).
  auto steps = EffectiveSteps(*first);
  for (const auto& s : EffectiveSteps(*second)) {
    steps.insert(s);
  }
  for (const auto& s : steps) {
    EXPECT_EQ(steps.count(s), 1u)
        << "step applied twice: epoch " << std::get<0>(s) << " kind " << std::get<1>(s);
  }

  // No VIP ever blacked out across crash + failover + resumption.
  const fault::PoolContinuityReport continuity = fault::CheckPoolContinuity(tb.flight);
  EXPECT_TRUE(continuity.ok()) << continuity.violations.front();

  // Exactly one acting leader, holding a strictly newer token.
  EXPECT_EQ(CountActingLeaders(tb), 1);
  EXPECT_GT(second->fencing_token(), 1u);

  // The resumed plan completed durably: a fresh restore finds nothing open.
  yoda::ControlJournal reader(&tb.sim, tb.ctl_kv_client.get(), {});
  yoda::RestoredControlPlane restored;
  bool done = false;
  reader.Restore([&](yoda::RestoredControlPlane r) {
    restored = std::move(r);
    done = true;
  });
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(200));
  ASSERT_TRUE(done);
  EXPECT_TRUE(restored.open_plans.empty());
}

TEST(ControllerHa, CrashedLeaderRestartRejoinsAsStandbyAndCanLeadAgain) {
  Testbed tb(HaConfig(2));
  tb.StartAllControllers();
  Controller* first = tb.AwaitLeader();
  ASSERT_NE(first, nullptr);
  first->DefineVip(tb.vip(), 80, tb.EqualSplitRules(0, 2));
  tb.sim.RunUntil(tb.sim.now() + sim::Msec(100));

  tb.CrashController(IndexOf(tb, first));
  Controller* second = tb.AwaitLeader(sim::Sec(2));
  ASSERT_NE(second, nullptr);
  tb.RestartController(IndexOf(tb, first));
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(1));
  EXPECT_EQ(CountActingLeaders(tb), 1);  // Restart never splits the brain.

  // Second failover, back to the restarted replica: it restores the state it
  // originally authored (plus the interregnum's takeover changes).
  tb.CrashController(IndexOf(tb, second));
  Controller* third = tb.AwaitLeader(sim::Sec(2));
  ASSERT_EQ(third, first);
  tb.sim.RunUntil(tb.sim.now() + sim::Sec(1));
  EXPECT_TRUE(third->state().HasVip(tb.vip()));
  EXPECT_GT(third->fencing_token(), second->fencing_token());
  EXPECT_EQ(CountActingLeaders(tb), 1);
}

}  // namespace
}  // namespace workload
