#include "src/kv/hash_ring.h"

namespace kv {

std::uint64_t Mix64(std::uint64_t x) {
  // splitmix64 finaliser.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashBytes(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

void HashRing::AddServer(const std::string& id) {
  if (!servers_.insert(id).second) {
    return;
  }
  for (int v = 0; v < vnodes_; ++v) {
    ring_[HashBytes(id + "#" + std::to_string(v))] = id;
  }
}

void HashRing::RemoveServer(const std::string& id) {
  if (servers_.erase(id) == 0) {
    return;
  }
  for (int v = 0; v < vnodes_; ++v) {
    ring_.erase(HashBytes(id + "#" + std::to_string(v)));
  }
}

std::string HashRing::WalkFrom(std::uint64_t point,
                               const std::set<std::string>& exclude) const {
  if (ring_.empty() || exclude.size() >= servers_.size()) {
    return "";
  }
  auto it = ring_.lower_bound(point);
  for (std::size_t steps = 0; steps < ring_.size() * 2; ++steps) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (!exclude.contains(it->second)) {
      return it->second;
    }
    ++it;
  }
  return "";
}

std::string HashRing::Lookup(const std::string& key) const {
  return WalkFrom(HashBytes(key), {});
}

std::vector<std::string> HashRing::Replicas(const std::string& key, int k) const {
  std::vector<std::string> out;
  std::set<std::string> chosen;
  for (int i = 0; i < k && chosen.size() < servers_.size(); ++i) {
    std::uint64_t point = HashBytes(key + "@" + std::to_string(i));
    std::string server = WalkFrom(point, chosen);
    if (server.empty()) {
      break;
    }
    chosen.insert(server);
    out.push_back(server);
  }
  return out;
}

}  // namespace kv
