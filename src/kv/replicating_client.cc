#include "src/kv/replicating_client.h"

#include <utility>

#include "src/sim/sharded_sim.h"

namespace kv {
namespace {

// Book-keeping for one write (Set/Delete) attempt: fires `done` exactly once,
// after all replicas answered or the timeout fired.
struct WriteOp {
  int outstanding = 0;
  int acks = 0;
  bool finished = false;
};

void Bump(obs::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) {
    c->Add(n);
  }
}

}  // namespace

// One in-flight Get attempt across the key's replicas.
struct ReplicatingClient::GetOp {
  struct Slot {
    KvServer* server = nullptr;
    bool started = false;
    bool answered = false;
    bool hit = false;
    bool hedged = false;  // Launched by the hedge timer (not by a miss).
  };

  std::string key;
  std::vector<Slot> slots;
  int started = 0;
  int answered = 0;
  bool finished = false;
  bool timed_out = false;  // Some queried replica exhausted its op_timeout.
  std::optional<std::string> value;
  int winner = -1;
  std::function<void(std::optional<std::string>, bool indefinite)> done;

  int NextUnstarted() const {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].started) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

ReplicatingClient::ReplicatingClient(sim::Simulator* simulator, std::vector<KvServer*> servers,
                                     ReplicatingClientConfig config)
    : sim_(simulator), cfg_(config) {
  for (KvServer* s : servers) {
    ring_.AddServer(s->id());
    by_id_[s->id()] = s;
  }
  if (cfg_.registry != nullptr) {
    ctr_.gets = &cfg_.registry->GetCounter("kv.client.gets");
    ctr_.sets = &cfg_.registry->GetCounter("kv.client.sets");
    ctr_.deletes = &cfg_.registry->GetCounter("kv.client.deletes");
    ctr_.cas_ops = &cfg_.registry->GetCounter("kv.client.cas_ops");
    ctr_.cas_wins = &cfg_.registry->GetCounter("kv.client.cas_wins");
    ctr_.cas_repairs = &cfg_.registry->GetCounter("kv.client.cas_repairs");
    ctr_.replica_timeouts = &cfg_.registry->GetCounter("kv.client.replica_timeouts");
    ctr_.retries = &cfg_.registry->GetCounter("kv.client.retries");
    ctr_.hedged_gets = &cfg_.registry->GetCounter("kv.client.hedged_gets");
    ctr_.hedge_wins = &cfg_.registry->GetCounter("kv.client.hedge_wins");
    ctr_.read_repairs = &cfg_.registry->GetCounter("kv.client.read_repairs");
    ctr_.get_latency_us = &cfg_.registry->GetHistogram("kv.client.get_latency_us");
    ctr_.set_latency_us = &cfg_.registry->GetHistogram("kv.client.set_latency_us");
    ctr_.delete_latency_us = &cfg_.registry->GetHistogram("kv.client.delete_latency_us");
  }
}

std::vector<KvServer*> ReplicatingClient::ReplicasFor(const std::string& key) const {
  std::vector<KvServer*> out;
  for (const std::string& id : ring_.Replicas(key, cfg_.replicas)) {
    out.push_back(by_id_.at(id));
  }
  return out;
}

sim::Duration ReplicatingClient::BackoffFor(int attempt) const {
  sim::Duration d = cfg_.retry_backoff;
  for (int i = 0; i < attempt; ++i) {
    d *= 2;
  }
  return d;
}

void ReplicatingClient::CountReplicaTimeouts(std::uint64_t n) {
  if (n == 0) {
    return;
  }
  stats_.replica_timeouts += n;
  Bump(ctr_.replica_timeouts, n);
}

int ReplicatingClient::ShardOf(const KvServer* server) const {
  return cfg_.shard_of ? cfg_.shard_of(server) : cfg_.home_shard;
}

void ReplicatingClient::ToServer(KvServer* server, std::function<void()> fn) {
  if (cfg_.engine == nullptr) {
    sim_->After(cfg_.network_delay, std::move(fn));
    return;
  }
  // Issued from the home shard; `fn` executes where the replica lives.
  cfg_.engine->Post(ShardOf(server), sim_->now() + cfg_.network_delay, std::move(fn));
}

void ReplicatingClient::ToHome(KvServer* server, std::function<void()> fn) {
  if (cfg_.engine == nullptr) {
    sim_->After(cfg_.network_delay, std::move(fn));
    return;
  }
  // Issued while executing on the replica's shard, so the departure time is
  // read off THAT shard's clock — sim_ is the home simulator, whose clock
  // this thread must not touch mid-epoch.
  sim::Simulator& at_server = cfg_.engine->shard(ShardOf(server));
  cfg_.engine->Post(cfg_.home_shard, at_server.now() + cfg_.network_delay, std::move(fn));
}

// --- writes -----------------------------------------------------------------

void ReplicatingClient::SetAttempt(const std::string& key, const std::string& value,
                                   std::function<void(bool, bool)> done) {
  auto replicas = ReplicasFor(key);
  if (replicas.empty()) {
    done(false, false);
    return;
  }
  auto state = std::make_shared<WriteOp>();
  state->outstanding = static_cast<int>(replicas.size());
  auto finish = [state, done = std::move(done)](bool timed_out) {
    if (state->finished) {
      return;
    }
    state->finished = true;
    done(state->acks > 0, timed_out && state->acks == 0);
  };
  for (KvServer* server : replicas) {
    // Request travels one network delay; the ack travels one back. The op
    // state only ever mutates on the home shard (inside ToHome's landing).
    ToServer(server, [this, server, key, value, state, finish]() {
      server->Set(key, value, [this, server, state, finish](bool) {
        ToHome(server, [state, finish]() {
          ++state->acks;
          if (--state->outstanding == 0) {
            finish(false);
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [this, state, finish]() {
    // Attribution: replicas still silent when the deadline passed, whether or
    // not the op itself already completed off the others.
    CountReplicaTimeouts(static_cast<std::uint64_t>(state->outstanding > 0 ? state->outstanding : 0));
    finish(true);
  });
}

void ReplicatingClient::DeleteAttempt(const std::string& key,
                                      std::function<void(bool, bool)> done) {
  auto replicas = ReplicasFor(key);
  if (replicas.empty()) {
    done(false, false);
    return;
  }
  auto state = std::make_shared<WriteOp>();
  state->outstanding = static_cast<int>(replicas.size());
  // `acks` counts replicas that actually deleted something; a unanimous
  // "not found" is a definitive false, not grounds for a retry.
  auto finish = [state, done = std::move(done)](bool timed_out) {
    if (state->finished) {
      return;
    }
    state->finished = true;
    done(state->acks > 0, timed_out && state->acks == 0);
  };
  for (KvServer* server : replicas) {
    ToServer(server, [this, server, key, state, finish]() {
      server->Delete(key, [this, server, state, finish](bool ok) {
        ToHome(server, [state, finish, ok]() {
          if (ok) {
            ++state->acks;
          }
          if (--state->outstanding == 0) {
            finish(false);
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [this, state, finish]() {
    CountReplicaTimeouts(static_cast<std::uint64_t>(state->outstanding > 0 ? state->outstanding : 0));
    finish(true);
  });
}

void ReplicatingClient::RunSet(const std::string& key, const std::string& value, int attempt,
                               sim::Time start, AckCallback cb) {
  SetAttempt(key, value, [this, key, value, attempt, start, cb](bool ok, bool indefinite) {
    if (!ok && indefinite && attempt < cfg_.max_retries) {
      ++stats_.retries;
      Bump(ctr_.retries);
      sim_->After(BackoffFor(attempt), [this, key, value, attempt, start, cb]() {
        RunSet(key, value, attempt + 1, start, cb);
      });
      return;
    }
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.set_latency_us.Add(us);
    if (ctr_.set_latency_us != nullptr) {
      ctr_.set_latency_us->Add(us);
    }
    cb(ok);
  });
}

void ReplicatingClient::RunDelete(const std::string& key, int attempt, sim::Time start,
                                  AckCallback cb) {
  DeleteAttempt(key, [this, key, attempt, start, cb](bool ok, bool indefinite) {
    if (!ok && indefinite && attempt < cfg_.max_retries) {
      ++stats_.retries;
      Bump(ctr_.retries);
      sim_->After(BackoffFor(attempt), [this, key, attempt, start, cb]() {
        RunDelete(key, attempt + 1, start, cb);
      });
      return;
    }
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.delete_latency_us.Add(us);
    if (ctr_.delete_latency_us != nullptr) {
      ctr_.delete_latency_us->Add(us);
    }
    cb(ok);
  });
}

void ReplicatingClient::Set(const std::string& key, std::string value, AckCallback cb) {
  ++stats_.sets;
  Bump(ctr_.sets);
  RunSet(key, value, 0, sim_->now(), std::move(cb));
}

void ReplicatingClient::Delete(const std::string& key, AckCallback cb) {
  ++stats_.deletes;
  Bump(ctr_.deletes);
  RunDelete(key, 0, sim_->now(), std::move(cb));
}

void ReplicatingClient::Cas(const std::string& key, std::optional<std::string> expected,
                            std::string value, AckCallback cb) {
  ++stats_.cas_ops;
  Bump(ctr_.cas_ops);
  auto replicas = ReplicasFor(key);
  if (replicas.empty()) {
    cb(false);
    return;
  }
  // Per-replica outcome: answered + compare verdict. Majority is computed
  // over the CONFIGURED replica count, so silent (down/slow) replicas count
  // against the op — a CAS can only win while a majority is reachable.
  struct CasOp {
    int outstanding = 0;
    int acks = 0;
    bool finished = false;
    std::vector<bool> answered;
    std::vector<bool> ok;
  };
  auto state = std::make_shared<CasOp>();
  state->outstanding = static_cast<int>(replicas.size());
  state->answered.assign(replicas.size(), false);
  state->ok.assign(replicas.size(), false);
  const int majority = static_cast<int>(replicas.size()) / 2 + 1;
  auto finish = [this, state, replicas, key, value, majority, cb = std::move(cb)]() {
    if (state->finished) {
      return;
    }
    state->finished = true;
    const bool won = state->acks >= majority;
    if (won) {
      ++stats_.cas_wins;
      Bump(ctr_.cas_wins);
      // Heal replicas that answered with a conflict: the majority decided,
      // so the minority value (a previous contested CAS that won nowhere)
      // is overwritten with the winner.
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (state->answered[i] && !state->ok[i]) {
          ++stats_.cas_repairs;
          Bump(ctr_.cas_repairs);
          KvServer* server = replicas[i];
          ToServer(server,
                   [server, key, value]() { server->Set(key, value, [](bool) {}); });
        }
      }
    }
    cb(won);
  };
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    KvServer* server = replicas[i];
    ToServer(server, [this, server, key, expected, value, state, i, finish]() {
      server->Cas(key, expected, value, [this, server, state, i, finish](bool ok) {
        ToHome(server, [state, i, ok, finish]() {
          state->answered[i] = true;
          state->ok[i] = ok;
          if (ok) {
            ++state->acks;
          }
          if (--state->outstanding == 0) {
            finish();
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [this, state, finish]() {
    CountReplicaTimeouts(
        static_cast<std::uint64_t>(state->outstanding > 0 ? state->outstanding : 0));
    finish();
  });
}

// --- reads ------------------------------------------------------------------

void ReplicatingClient::ArmHedge(const std::shared_ptr<GetOp>& op) {
  sim_->After(cfg_.hedge_delay, [this, op]() {
    if (op->finished) {
      return;
    }
    const int next = op->NextUnstarted();
    if (next < 0) {
      return;
    }
    StartGetSlot(op, static_cast<std::size_t>(next), true);
    ArmHedge(op);
  });
}

void ReplicatingClient::StartGetSlot(const std::shared_ptr<GetOp>& op, std::size_t i,
                                     bool hedged) {
  GetOp::Slot& slot = op->slots[i];
  slot.started = true;
  slot.hedged = hedged;
  ++op->started;
  if (hedged) {
    ++stats_.hedged_gets;
    Bump(ctr_.hedged_gets);
  }
  if (cfg_.read_mode == ReadMode::kSingle) {
    // Sequential baseline: each replica gets the full op_timeout to itself.
    sim_->After(cfg_.op_timeout, [this, op, i]() {
      if (op->slots[i].answered) {
        return;
      }
      CountReplicaTimeouts(1);
      if (op->finished) {
        return;
      }
      op->timed_out = true;
      const int next = op->NextUnstarted();
      if (next >= 0) {
        StartGetSlot(op, static_cast<std::size_t>(next), false);
      } else {
        FinishGet(op);
      }
    });
  }
  // Capture the replica pointer directly: the op's slot fields keep mutating
  // on the home shard (hedge launches, answers) while this hop is in flight.
  KvServer* server = slot.server;
  ToServer(server, [this, server, op, i]() {
    server->Get(op->key, [this, server, op, i](std::optional<std::string> v) {
      ToHome(server, [this, op, i, v = std::move(v)]() {
        OnGetAnswer(op, i, std::move(v));
      });
    });
  });
}

void ReplicatingClient::OnGetAnswer(const std::shared_ptr<GetOp>& op, std::size_t i,
                                    std::optional<std::string> v) {
  GetOp::Slot& slot = op->slots[i];
  slot.answered = true;
  slot.hit = v.has_value();
  ++op->answered;
  if (op->finished) {
    return;  // Late answer; recorded only for timeout attribution.
  }
  if (v.has_value()) {
    op->value = std::move(v);
    op->winner = static_cast<int>(i);
    FinishGet(op);
    return;
  }
  // Definitive miss from this replica.
  if (cfg_.read_mode != ReadMode::kFanout) {
    const int next = op->NextUnstarted();
    if (next >= 0) {
      StartGetSlot(op, static_cast<std::size_t>(next), false);
      return;
    }
  }
  if (op->answered == op->started &&
      op->started == static_cast<int>(op->slots.size())) {
    FinishGet(op);  // Every replica answered; clean miss.
  }
}

void ReplicatingClient::FinishGet(const std::shared_ptr<GetOp>& op) {
  op->finished = true;
  if (op->value.has_value()) {
    if (op->winner >= 0 && op->slots[static_cast<std::size_t>(op->winner)].hedged) {
      ++stats_.hedge_wins;
      Bump(ctr_.hedge_wins);
    }
    if (cfg_.read_repair) {
      // Heal replicas that definitively missed (a silent replica may just be
      // down; writing at it would teach us nothing).
      for (GetOp::Slot& slot : op->slots) {
        if (slot.started && slot.answered && !slot.hit) {
          ++stats_.read_repairs;
          Bump(ctr_.read_repairs);
          KvServer* server = slot.server;
          ToServer(server, [server, key = op->key, value = *op->value]() {
            server->Set(key, value, [](bool) {});
          });
        }
      }
    }
  }
  op->done(op->value, !op->value.has_value() && op->timed_out);
}

void ReplicatingClient::GetAttempt(const std::string& key,
                                   std::function<void(std::optional<std::string>, bool)> done) {
  auto replicas = ReplicasFor(key);
  if (replicas.empty()) {
    done(std::nullopt, false);
    return;
  }
  auto op = std::make_shared<GetOp>();
  op->key = key;
  op->done = std::move(done);
  op->slots.reserve(replicas.size());
  for (KvServer* server : replicas) {
    op->slots.push_back(GetOp::Slot{server});
  }
  switch (cfg_.read_mode) {
    case ReadMode::kFanout:
      for (std::size_t i = 0; i < op->slots.size(); ++i) {
        StartGetSlot(op, i, false);
      }
      break;
    case ReadMode::kSingle:
      StartGetSlot(op, 0, false);  // Per-slot timeouts armed in StartGetSlot.
      return;
    case ReadMode::kHedged: {
      StartGetSlot(op, 0, false);
      // Hedge chain: every hedge_delay of overall silence launches one more
      // replica, until an answer arrives or the replicas run out.
      ArmHedge(op);
      break;
    }
  }
  // Shared deadline for the parallel modes (kSingle pays per slot instead).
  sim_->After(cfg_.op_timeout, [this, op]() {
    std::uint64_t silent = 0;
    for (const GetOp::Slot& slot : op->slots) {
      if (slot.started && !slot.answered) {
        ++silent;
      }
    }
    CountReplicaTimeouts(silent);
    if (!op->finished) {
      op->timed_out = true;
      FinishGet(op);
    }
  });
}

void ReplicatingClient::RunGet(const std::string& key, int attempt, sim::Time start,
                               GetCallback cb) {
  GetAttempt(key, [this, key, attempt, start, cb](std::optional<std::string> v,
                                                  bool indefinite) {
    if (!v.has_value() && indefinite && attempt < cfg_.max_retries) {
      ++stats_.retries;
      Bump(ctr_.retries);
      sim_->After(BackoffFor(attempt), [this, key, attempt, start, cb]() {
        RunGet(key, attempt + 1, start, cb);
      });
      return;
    }
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.get_latency_us.Add(us);
    if (ctr_.get_latency_us != nullptr) {
      ctr_.get_latency_us->Add(us);
    }
    cb(std::move(v));
  });
}

void ReplicatingClient::Get(const std::string& key, GetCallback cb) {
  ++stats_.gets;
  Bump(ctr_.gets);
  RunGet(key, 0, sim_->now(), std::move(cb));
}

}  // namespace kv
