#include "src/kv/replicating_client.h"

#include <utility>

namespace kv {
namespace {

// Book-keeping for one fan-out operation: fires `done` exactly once, after
// all replicas answered or the timeout fired.
struct FanOut {
  int outstanding = 0;
  int acks = 0;
  bool finished = false;
  std::optional<std::string> value;
};

}  // namespace

ReplicatingClient::ReplicatingClient(sim::Simulator* simulator, std::vector<KvServer*> servers,
                                     ReplicatingClientConfig config)
    : sim_(simulator), cfg_(config) {
  for (KvServer* s : servers) {
    ring_.AddServer(s->id());
    by_id_[s->id()] = s;
  }
  if (cfg_.registry != nullptr) {
    ctr_.gets = &cfg_.registry->GetCounter("kv.client.gets");
    ctr_.sets = &cfg_.registry->GetCounter("kv.client.sets");
    ctr_.deletes = &cfg_.registry->GetCounter("kv.client.deletes");
    ctr_.replica_timeouts = &cfg_.registry->GetCounter("kv.client.replica_timeouts");
    ctr_.get_latency_us = &cfg_.registry->GetHistogram("kv.client.get_latency_us");
    ctr_.set_latency_us = &cfg_.registry->GetHistogram("kv.client.set_latency_us");
    ctr_.delete_latency_us = &cfg_.registry->GetHistogram("kv.client.delete_latency_us");
  }
}

std::vector<KvServer*> ReplicatingClient::ReplicasFor(const std::string& key) const {
  std::vector<KvServer*> out;
  for (const std::string& id : ring_.Replicas(key, cfg_.replicas)) {
    out.push_back(by_id_.at(id));
  }
  return out;
}

void ReplicatingClient::Set(const std::string& key, std::string value, AckCallback cb) {
  ++stats_.sets;
  if (ctr_.sets != nullptr) {
    ctr_.sets->Inc();
  }
  const sim::Time start = sim_->now();
  auto replicas = ReplicasFor(key);
  auto state = std::make_shared<FanOut>();
  state->outstanding = static_cast<int>(replicas.size());
  auto finish = [this, state, start, cb](bool timed_out) {
    if (state->finished) {
      return;
    }
    if (timed_out) {
      ++stats_.replica_timeouts;
      if (ctr_.replica_timeouts != nullptr) {
        ctr_.replica_timeouts->Inc();
      }
    }
    state->finished = true;
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.set_latency_us.Add(us);
    if (ctr_.set_latency_us != nullptr) {
      ctr_.set_latency_us->Add(us);
    }
    cb(state->acks > 0);
  };
  for (KvServer* server : replicas) {
    // Request travels one network delay; the ack travels one back.
    sim_->After(cfg_.network_delay, [this, server, key, value, state, finish]() {
      server->Set(key, value, [this, state, finish](bool) {
        sim_->After(cfg_.network_delay, [state, finish]() {
          ++state->acks;
          if (--state->outstanding == 0) {
            finish(false);
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [state, finish]() {
    if (!state->finished && state->outstanding > 0) {
      finish(true);
    }
  });
  if (replicas.empty()) {
    cb(false);
  }
}

void ReplicatingClient::Get(const std::string& key, GetCallback cb) {
  ++stats_.gets;
  if (ctr_.gets != nullptr) {
    ctr_.gets->Inc();
  }
  const sim::Time start = sim_->now();
  auto replicas = ReplicasFor(key);
  auto state = std::make_shared<FanOut>();
  state->outstanding = static_cast<int>(replicas.size());
  auto finish = [this, state, start, cb](bool timed_out) {
    if (state->finished) {
      return;
    }
    if (timed_out) {
      ++stats_.replica_timeouts;
      if (ctr_.replica_timeouts != nullptr) {
        ctr_.replica_timeouts->Inc();
      }
    }
    state->finished = true;
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.get_latency_us.Add(us);
    if (ctr_.get_latency_us != nullptr) {
      ctr_.get_latency_us->Add(us);
    }
    cb(state->value);
  };
  for (KvServer* server : replicas) {
    sim_->After(cfg_.network_delay, [this, server, key, state, finish]() {
      server->Get(key, [this, state, finish](std::optional<std::string> v) {
        sim_->After(cfg_.network_delay, [state, finish, v = std::move(v)]() {
          --state->outstanding;
          if (v.has_value()) {
            state->value = std::move(v);
            finish(false);  // First hit wins.
          } else if (state->outstanding == 0) {
            finish(false);  // All replicas answered; miss.
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [state, finish]() {
    if (!state->finished) {
      finish(true);
    }
  });
  if (replicas.empty()) {
    cb(std::nullopt);
  }
}

void ReplicatingClient::Delete(const std::string& key, AckCallback cb) {
  ++stats_.deletes;
  if (ctr_.deletes != nullptr) {
    ctr_.deletes->Inc();
  }
  const sim::Time start = sim_->now();
  auto replicas = ReplicasFor(key);
  auto state = std::make_shared<FanOut>();
  state->outstanding = static_cast<int>(replicas.size());
  auto finish = [this, state, start, cb](bool timed_out) {
    if (state->finished) {
      return;
    }
    if (timed_out) {
      ++stats_.replica_timeouts;
      if (ctr_.replica_timeouts != nullptr) {
        ctr_.replica_timeouts->Inc();
      }
    }
    state->finished = true;
    const double us = sim::ToMicros(sim_->now() - start);
    stats_.delete_latency_us.Add(us);
    if (ctr_.delete_latency_us != nullptr) {
      ctr_.delete_latency_us->Add(us);
    }
    cb(state->acks > 0);
  };
  for (KvServer* server : replicas) {
    sim_->After(cfg_.network_delay, [this, server, key, state, finish]() {
      server->Delete(key, [this, state, finish](bool ok) {
        sim_->After(cfg_.network_delay, [state, finish, ok]() {
          if (ok) {
            ++state->acks;
          }
          if (--state->outstanding == 0) {
            finish(false);
          }
        });
      });
    });
  }
  sim_->After(cfg_.op_timeout, [state, finish]() {
    if (!state->finished && state->outstanding > 0) {
      finish(true);
    }
  });
  if (replicas.empty()) {
    cb(false);
  }
}

}  // namespace kv
