// Consistent-hash ring used by the TCPStore client library to pick, for each
// key, K distinct replica servers out of N (paper §6: "the Memcached client
// first determines the K servers among the total N servers using K different
// hash functions, and consistent hashing").

#ifndef SRC_KV_HASH_RING_H_
#define SRC_KV_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace kv {

// Stateless 64-bit string hash (FNV-1a finalised with splitmix64). Exposed so
// other components (L4 ECMP, Yoda ISN generation) share one audited hash.
std::uint64_t HashBytes(const std::string& s);
std::uint64_t Mix64(std::uint64_t x);

class HashRing {
 public:
  explicit HashRing(int vnodes_per_server = 128) : vnodes_(vnodes_per_server) {}

  void AddServer(const std::string& id);
  void RemoveServer(const std::string& id);
  bool HasServer(const std::string& id) const { return servers_.contains(id); }
  std::size_t server_count() const { return servers_.size(); }

  // Owner of a key under plain consistent hashing (first replica).
  std::string Lookup(const std::string& key) const;

  // K distinct replicas: replica i starts from hash_i(key) and walks the ring
  // until it finds a server not already chosen. Returns fewer than k ids only
  // when fewer than k servers exist.
  std::vector<std::string> Replicas(const std::string& key, int k) const;

 private:
  std::string WalkFrom(std::uint64_t point, const std::set<std::string>& exclude) const;

  int vnodes_;
  std::set<std::string> servers_;
  std::map<std::uint64_t, std::string> ring_;  // hash point -> server id.
};

}  // namespace kv

#endif  // SRC_KV_HASH_RING_H_
