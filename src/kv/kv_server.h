// Memcached-style in-memory key-value server with a single-queue CPU model.
//
// API is the memcached triple the paper relies on: set/get/delete. The server
// processes operations FIFO with a fixed per-op service time, which yields
// both the latency-vs-load curves of Fig 10 and the CPU-utilization curves of
// Fig 11. A failed server loses its contents (memcached has no persistence —
// that is exactly why TCPStore replicates client-side).

#ifndef SRC_KV_KV_SERVER_H_
#define SRC_KV_KV_SERVER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/sim/metrics.h"
#include "src/sim/placement.h"
#include "src/sim/simulator.h"

namespace kv {

struct KvServerConfig {
  // Per-operation CPU service time. Calibrated so one server saturates around
  // 80-90K ops/s (paper §7.1: 80K client req/s at 90% CPU).
  sim::Duration op_service_time = sim::Usec(11);
  // Max resident items before LRU eviction.
  std::size_t max_items = 4'000'000;
};

struct KvServerStats {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_conflicts = 0;  // CAS ops whose compare failed.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dropped_while_down = 0;
};

class KvServer {
 public:
  using GetCallback = std::function<void(std::optional<std::string>)>;
  using AckCallback = std::function<void(bool ok)>;

  KvServer(sim::Simulator* simulator, std::string id, KvServerConfig config = {});
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  const std::string& id() const { return id_; }

  // Asynchronous operations: the callback fires after queueing + service
  // time. While the server is down, operations are silently dropped (the
  // client library discovers this via its own timeout).
  void Get(const std::string& key, GetCallback cb);
  void Set(const std::string& key, std::string value, AckCallback cb);
  void Delete(const std::string& key, AckCallback cb);
  // Compare-and-set: writes `value` only if the current item equals
  // `expected` (nullopt = the key must be absent). ok=false on a compare
  // mismatch. Memcached's cas-token protocol, modeled on values directly —
  // the leader-lease protocol stores the full lease record per key.
  void Cas(const std::string& key, std::optional<std::string> expected, std::string value,
           AckCallback cb);

  // Crash / recover. Crashing clears the store (RAM contents are gone).
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  // Gray failure: the server keeps answering, but every response is delayed
  // by `d` on top of queueing + service time (models a replica with a sick
  // disk or a saturated NIC). 0 clears. The queue itself is unaffected, so
  // CPU accounting (Fig 11) stays truthful.
  void set_response_delay(sim::Duration d) { response_delay_ = d; }
  sim::Duration response_delay() const { return response_delay_; }

  std::size_t item_count() const { return items_.size(); }
  const KvServerStats& stats() const { return stats_; }

  // Placed testbeds bind this to the server's owning shard; the op entry
  // points (Get/Set/Delete/Cas, fail/recover) then assert in debug builds
  // that they execute on that shard.
  sim::ShardOwnershipAudit& audit() { return audit_; }

  // CPU accounting for Fig 11.
  double CpuUtilization(sim::Time now) const { return cpu_.Utilization(now); }
  void ResetCpuWindow(sim::Time now) { cpu_.Reset(now); }

  // Latency of the most recent op completion minus submission (exposed for
  // tests); operational latency measurement lives in the client.
  sim::Duration QueueDelayNow() const;

 private:
  sim::ShardOwnershipAudit audit_;

  // Returns the completion time for an op submitted now.
  sim::Time ScheduleOp();
  // Delivers a response now, or after response_delay_ when gray-slow.
  void Respond(std::function<void()> deliver);
  void Touch(const std::string& key);
  void EvictIfNeeded();

  sim::Simulator* sim_;
  std::string id_;
  KvServerConfig cfg_;
  bool failed_ = false;

  // Value + LRU position.
  struct Item {
    std::string value;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Item> items_;
  std::list<std::string> lru_;  // Front = most recently used.

  sim::Time busy_until_ = 0;
  sim::Duration response_delay_ = 0;
  sim::UtilizationTracker cpu_{1.0};
  KvServerStats stats_;
};

}  // namespace kv

#endif  // SRC_KV_KV_SERVER_H_
