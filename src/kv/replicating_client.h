// The modified memcached client library from the paper (§6, "TCPStore"):
// every key-value pair is stored on K servers chosen by K hash functions over
// a consistent-hash ring, operations are issued to all replicas in parallel,
// and long-lived connections are assumed (a fixed one-way network delay per
// op rather than per-connection handshakes).
//
// Completion semantics:
//   - Set/Delete: callback fires when every replica acked or timed out;
//     ok == at least one replica acked.
//   - Get: callback fires with the first hit; a miss is reported only after
//     all replicas answered (or timed out) without a hit.
//
// There is no re-replication on server failure (paper: "flows finish quicker
// than the replication latency").

#ifndef SRC_KV_REPLICATING_CLIENT_H_
#define SRC_KV_REPLICATING_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kv/hash_ring.h"
#include "src/obs/registry.h"
#include "src/kv/kv_server.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace kv {

struct ReplicatingClientConfig {
  int replicas = 2;
  // One-way client<->server network delay per op message (includes kernel
  // and library overheads; calibrated so one blocking set costs ~0.4 ms and
  // the two storage waits on Yoda's connection path total ~0.9 ms, Fig 9).
  sim::Duration network_delay = sim::Usec(200);
  // Deadline after which an unresponsive replica counts as failed.
  sim::Duration op_timeout = sim::Msec(50);
  // Optional metrics sink: mirrors op counts and latency histograms into
  // "kv.client.*" instruments.
  obs::Registry* registry = nullptr;
};

struct ClientOpStats {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t replica_timeouts = 0;
  sim::Histogram get_latency_us;
  sim::Histogram set_latency_us;
  sim::Histogram delete_latency_us;
};

class ReplicatingClient {
 public:
  using GetCallback = std::function<void(std::optional<std::string>)>;
  using AckCallback = std::function<void(bool ok)>;

  ReplicatingClient(sim::Simulator* simulator, std::vector<KvServer*> servers,
                    ReplicatingClientConfig config = {});
  ReplicatingClient(const ReplicatingClient&) = delete;
  ReplicatingClient& operator=(const ReplicatingClient&) = delete;

  void Set(const std::string& key, std::string value, AckCallback cb);
  void Get(const std::string& key, GetCallback cb);
  void Delete(const std::string& key, AckCallback cb);

  // Replica servers the ring selects for `key` (exposed for tests).
  std::vector<KvServer*> ReplicasFor(const std::string& key) const;

  ClientOpStats& stats() { return stats_; }
  const ReplicatingClientConfig& config() const { return cfg_; }

 private:
  // Registry mirrors of the stats struct (null without a registry).
  struct StatCounters {
    obs::Counter* gets = nullptr;
    obs::Counter* sets = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* replica_timeouts = nullptr;
    sim::Histogram* get_latency_us = nullptr;
    sim::Histogram* set_latency_us = nullptr;
    sim::Histogram* delete_latency_us = nullptr;
  };

  sim::Simulator* sim_;
  ReplicatingClientConfig cfg_;
  HashRing ring_;
  std::unordered_map<std::string, KvServer*> by_id_;
  StatCounters ctr_;
  ClientOpStats stats_;
};

}  // namespace kv

#endif  // SRC_KV_REPLICATING_CLIENT_H_
