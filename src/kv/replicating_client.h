// The modified memcached client library from the paper (§6, "TCPStore"):
// every key-value pair is stored on K servers chosen by K hash functions over
// a consistent-hash ring, operations are issued to all replicas in parallel,
// and long-lived connections are assumed (a fixed one-way network delay per
// op rather than per-connection handshakes).
//
// Completion semantics:
//   - Set/Delete: callback fires when every replica acked or timed out;
//     ok == at least one replica acked.
//   - Get: callback fires with the first hit; a miss is reported only after
//     all queried replicas answered (or timed out) without a hit.
//
// Degraded-mode hardening (off by default so the paper-faithful behavior is
// unchanged):
//   - Read modes: kFanout (paper default — all replicas in parallel),
//     kSingle (one replica at a time, advancing only on answer or full
//     op_timeout: the timeout-only baseline), kHedged (start one replica,
//     launch the next if no answer within hedge_delay — cuts the tail when a
//     replica is slow or dead without doubling steady-state load).
//   - Per-op retry with exponential backoff (max_retries > 0): an op that
//     ends with no definitive answer (no ack / timed-out miss) is re-issued
//     after retry_backoff, doubling per attempt.
//   - Read repair (read_repair = true): a Get hit re-installs the value on
//     replicas that answered "miss", healing a cold-restarted replica.
//
// There is no background re-replication on server failure (paper: "flows
// finish quicker than the replication latency"); read repair is the only —
// request-driven — healing path.

#ifndef SRC_KV_REPLICATING_CLIENT_H_
#define SRC_KV_REPLICATING_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kv/hash_ring.h"
#include "src/obs/registry.h"
#include "src/kv/kv_server.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace sim {
class ShardedSim;
}

namespace kv {

// How Get spreads load across the key's replicas.
enum class ReadMode : std::uint8_t {
  kFanout = 0,  // All replicas in parallel; first hit wins (paper behavior).
  kSingle = 1,  // Sequential; each replica gets the full op_timeout.
  kHedged = 2,  // Sequential, but the next replica starts after hedge_delay.
};

struct ReplicatingClientConfig {
  int replicas = 2;
  // One-way client<->server network delay per op message (includes kernel
  // and library overheads; calibrated so one blocking set costs ~0.4 ms and
  // the two storage waits on Yoda's connection path total ~0.9 ms, Fig 9).
  sim::Duration network_delay = sim::Usec(200);
  // Deadline after which an unresponsive replica counts as failed.
  sim::Duration op_timeout = sim::Msec(50);
  // Read spreading; see ReadMode.
  ReadMode read_mode = ReadMode::kFanout;
  // kHedged only: silence interval before the next replica is queried.
  sim::Duration hedge_delay = sim::Msec(5);
  // Re-issues per op after an indefinite outcome (0 = paper behavior).
  int max_retries = 0;
  // First retry delay; doubles per subsequent attempt.
  sim::Duration retry_backoff = sim::Msec(2);
  // Re-install a Get hit on replicas that answered "miss".
  bool read_repair = false;
  // Optional metrics sink: mirrors op counts and latency histograms into
  // "kv.client.*" instruments.
  obs::Registry* registry = nullptr;
  // --- intra-cell sharding (all three set together, or none) ---
  // When `engine` is set, each op message is a cross-shard hop: requests
  // execute on the replica's owning shard (per `shard_of`) and answers come
  // back to `home_shard` (the shard that owns this client and the component
  // embedding it), both timestamped now()+network_delay — which the epoch
  // window (<= network_delay) guarantees is never clamped. All op
  // bookkeeping (attempt state, timers, retries, stats) stays home-shard.
  // Unset, every hop is a plain same-sim After: byte-identical to the
  // pre-sharding build.
  sim::ShardedSim* engine = nullptr;
  int home_shard = 0;
  std::function<int(const KvServer*)> shard_of;
};

struct ClientOpStats {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_wins = 0;      // CAS ops that reached replica majority.
  std::uint64_t cas_repairs = 0;   // Diverged replicas overwritten after a win.
  // Replica attempts (not ops) still unanswered when their op_timeout
  // elapsed — per-replica attribution, counted even when the op itself
  // finished early off another replica.
  std::uint64_t replica_timeouts = 0;
  std::uint64_t retries = 0;       // Re-issued ops (any type).
  std::uint64_t hedged_gets = 0;   // Hedge legs actually launched.
  std::uint64_t hedge_wins = 0;    // Gets whose winning hit came from a hedge leg.
  std::uint64_t read_repairs = 0;  // Replicas healed by read repair.
  sim::Histogram get_latency_us;
  sim::Histogram set_latency_us;
  sim::Histogram delete_latency_us;
};

class ReplicatingClient {
 public:
  using GetCallback = std::function<void(std::optional<std::string>)>;
  using AckCallback = std::function<void(bool ok)>;

  ReplicatingClient(sim::Simulator* simulator, std::vector<KvServer*> servers,
                    ReplicatingClientConfig config = {});
  ReplicatingClient(const ReplicatingClient&) = delete;
  ReplicatingClient& operator=(const ReplicatingClient&) = delete;

  void Set(const std::string& key, std::string value, AckCallback cb);
  void Get(const std::string& key, GetCallback cb);
  void Delete(const std::string& key, AckCallback cb);
  // Replicated compare-and-set (leader-lease substrate): the CAS is issued to
  // every replica of `key` in parallel and SUCCEEDS only when a strict
  // majority of the configured replica count acked the compare — so with 2
  // replicas both must agree, and two contenders racing on the same key can
  // both lose but can never both win. After a win, replicas that answered
  // with a compare conflict (diverged under a previous contested CAS) are
  // force-overwritten with the winning value, restoring convergence. There is
  // no retry layer: lease acquisition retries at its own cadence.
  void Cas(const std::string& key, std::optional<std::string> expected, std::string value,
           AckCallback cb);

  // Replica servers the ring selects for `key` (exposed for tests).
  std::vector<KvServer*> ReplicasFor(const std::string& key) const;

  ClientOpStats& stats() { return stats_; }
  const ReplicatingClientConfig& config() const { return cfg_; }

 private:
  // One attempt = one round over the replicas. The bool pair is
  // (ok/hit, indefinite): `indefinite` means no replica gave a definitive
  // answer, which is what retries key on.
  void SetAttempt(const std::string& key, const std::string& value,
                  std::function<void(bool ok, bool indefinite)> done);
  void DeleteAttempt(const std::string& key,
                     std::function<void(bool ok, bool indefinite)> done);
  void GetAttempt(const std::string& key,
                  std::function<void(std::optional<std::string>, bool indefinite)> done);

  void RunSet(const std::string& key, const std::string& value, int attempt,
              sim::Time start, AckCallback cb);
  void RunDelete(const std::string& key, int attempt, sim::Time start, AckCallback cb);
  void RunGet(const std::string& key, int attempt, sim::Time start, GetCallback cb);

  // One in-flight Get attempt (defined in the .cc).
  struct GetOp;
  void StartGetSlot(const std::shared_ptr<GetOp>& op, std::size_t i, bool hedged);
  // Arms the next hedge launch; each firing re-arms itself until the op
  // finishes or replicas run out. Captures only `this` and the op, so it
  // cannot form an ownership cycle.
  void ArmHedge(const std::shared_ptr<GetOp>& op);
  void OnGetAnswer(const std::shared_ptr<GetOp>& op, std::size_t i,
                   std::optional<std::string> v);
  void FinishGet(const std::shared_ptr<GetOp>& op);

  sim::Duration BackoffFor(int attempt) const;
  void CountReplicaTimeouts(std::uint64_t n);

  // One op-message hop. ToServer: home -> the replica's owning shard (fn
  // then runs where the server lives, typically calling into it). ToHome:
  // the replica's shard -> home_shard (fn is the answer-side continuation;
  // must be invoked while executing on `server`'s shard). Legacy (no
  // engine): both are sim_->After(network_delay, fn).
  void ToServer(KvServer* server, std::function<void()> fn);
  void ToHome(KvServer* server, std::function<void()> fn);
  int ShardOf(const KvServer* server) const;

  // Registry mirrors of the stats struct (null without a registry).
  struct StatCounters {
    obs::Counter* gets = nullptr;
    obs::Counter* sets = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* cas_ops = nullptr;
    obs::Counter* cas_wins = nullptr;
    obs::Counter* cas_repairs = nullptr;
    obs::Counter* replica_timeouts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* hedged_gets = nullptr;
    obs::Counter* hedge_wins = nullptr;
    obs::Counter* read_repairs = nullptr;
    sim::Histogram* get_latency_us = nullptr;
    sim::Histogram* set_latency_us = nullptr;
    sim::Histogram* delete_latency_us = nullptr;
  };

  sim::Simulator* sim_;
  ReplicatingClientConfig cfg_;
  HashRing ring_;
  std::unordered_map<std::string, KvServer*> by_id_;
  StatCounters ctr_;
  ClientOpStats stats_;
};

}  // namespace kv

#endif  // SRC_KV_REPLICATING_CLIENT_H_
