#include "src/kv/kv_server.h"

#include <utility>

namespace kv {

KvServer::KvServer(sim::Simulator* simulator, std::string id, KvServerConfig config)
    : sim_(simulator), id_(std::move(id)), cfg_(config) {}

sim::Time KvServer::ScheduleOp() {
  const sim::Time now = sim_->now();
  const sim::Time start = busy_until_ > now ? busy_until_ : now;
  const sim::Time done = start + cfg_.op_service_time;
  busy_until_ = done;
  cpu_.AddBusy(cfg_.op_service_time);
  return done;
}

void KvServer::Respond(std::function<void()> deliver) {
  if (response_delay_ > 0) {
    // Gray failure: the op already executed (store mutated, CPU charged);
    // only the answer limps back late.
    sim_->After(response_delay_, std::move(deliver));
  } else {
    deliver();
  }
}

sim::Duration KvServer::QueueDelayNow() const {
  const sim::Time now = sim_->now();
  return busy_until_ > now ? busy_until_ - now : 0;
}

void KvServer::Touch(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    return;
  }
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
}

void KvServer::EvictIfNeeded() {
  while (items_.size() > cfg_.max_items && !lru_.empty()) {
    items_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void KvServer::Get(const std::string& key, GetCallback cb) {
  audit_.Check();
  if (failed_) {
    ++stats_.dropped_while_down;
    return;
  }
  ++stats_.gets;
  const sim::Time done = ScheduleOp();
  sim_->At(done, [this, key, cb = std::move(cb)]() {
    if (failed_) {
      return;  // Crashed while the op was queued: response is lost.
    }
    auto it = items_.find(key);
    if (it == items_.end()) {
      ++stats_.misses;
      Respond([cb = std::move(cb)]() { cb(std::nullopt); });
    } else {
      ++stats_.hits;
      Touch(key);
      Respond([cb = std::move(cb), value = it->second.value]() { cb(value); });
    }
  });
}

void KvServer::Set(const std::string& key, std::string value, AckCallback cb) {
  audit_.Check();
  if (failed_) {
    ++stats_.dropped_while_down;
    return;
  }
  ++stats_.sets;
  const sim::Time done = ScheduleOp();
  sim_->At(done, [this, key, value = std::move(value), cb = std::move(cb)]() mutable {
    if (failed_) {
      return;
    }
    auto it = items_.find(key);
    if (it == items_.end()) {
      lru_.push_front(key);
      items_[key] = Item{std::move(value), lru_.begin()};
      EvictIfNeeded();
    } else {
      it->second.value = std::move(value);
      Touch(key);
    }
    Respond([cb = std::move(cb)]() { cb(true); });
  });
}

void KvServer::Cas(const std::string& key, std::optional<std::string> expected,
                   std::string value, AckCallback cb) {
  audit_.Check();
  if (failed_) {
    ++stats_.dropped_while_down;
    return;
  }
  ++stats_.cas_ops;
  const sim::Time done = ScheduleOp();
  sim_->At(done, [this, key, expected = std::move(expected), value = std::move(value),
                  cb = std::move(cb)]() mutable {
    if (failed_) {
      return;
    }
    auto it = items_.find(key);
    const bool match = it == items_.end() ? !expected.has_value()
                                          : (expected.has_value() && it->second.value == *expected);
    if (!match) {
      ++stats_.cas_conflicts;
      Respond([cb = std::move(cb)]() { cb(false); });
      return;
    }
    if (it == items_.end()) {
      lru_.push_front(key);
      items_[key] = Item{std::move(value), lru_.begin()};
      EvictIfNeeded();
    } else {
      it->second.value = std::move(value);
      Touch(key);
    }
    Respond([cb = std::move(cb)]() { cb(true); });
  });
}

void KvServer::Delete(const std::string& key, AckCallback cb) {
  audit_.Check();
  if (failed_) {
    ++stats_.dropped_while_down;
    return;
  }
  ++stats_.deletes;
  const sim::Time done = ScheduleOp();
  sim_->At(done, [this, key, cb = std::move(cb)]() {
    if (failed_) {
      return;
    }
    auto it = items_.find(key);
    if (it != items_.end()) {
      lru_.erase(it->second.lru_pos);
      items_.erase(it);
      Respond([cb = std::move(cb)]() { cb(true); });
    } else {
      Respond([cb = std::move(cb)]() { cb(false); });
    }
  });
}

void KvServer::Fail() {
  audit_.Check();
  failed_ = true;
  items_.clear();
  lru_.clear();
  busy_until_ = sim_->now();
}

void KvServer::Recover() {
  audit_.Check();
  failed_ = false;
}

}  // namespace kv
