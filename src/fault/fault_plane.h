// Deterministic, scriptable fault-injection plane.
//
// The FaultPlane installs itself as the Network's fault observer and
// evaluates a set of live overlays against every delivery attempt, in order:
//
//   1. partitions   — bidirectional total cuts between two addresses;
//   2. link faults  — per-(a,b) loss probability and/or delay spike;
//   3. node faults  — loss/delay applied to any packet to or from an address;
//   4. gray rules   — drop only packets matching a predicate (e.g. only SYNs)
//                     with some probability: the "node looks healthy to
//                     pings, kills real traffic" failure class.
//
// Determinism contract: the plane draws exclusively from its OWN seeded Rng,
// and only when an overlay actually applies to the packet at hand. Installing
// a FaultPlane with no overlays therefore leaves a same-seed run bit-identical
// to a plane-less run (see net_test's determinism regression), and two runs
// with the same seed AND the same fault script replay the exact same fault
// timeline.
//
// Crash / restart / KV-slowness are not packet overlays — they mutate
// component state — so they route through handlers the testbed wires up
// (defaulting to bare Network down/up when unwired). Restart distinguishes
// warm (state intact — a healed partition) from cold (Node::OnColdRestart —
// a rebooted VM).
//
// Timed fault scripts are built with Schedule(): each event fires at an
// absolute simulated time as a daemon event (a pending fault never keeps the
// simulation alive). Every applied or cleared fault is mirrored into the
// flight recorder's system log (kFaultInjected / kFaultCleared) when a
// recorder is attached, so soak invariants can correlate flow timelines with
// the fault timeline.

#ifndef SRC_FAULT_FAULT_PLANE_H_
#define SRC_FAULT_FAULT_PLANE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/net/network.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace fault {

// detail payload of kFaultInjected / kFaultCleared system events.
enum class FaultKind : std::uint64_t {
  kLinkLoss = 1,
  kLinkDelay = 2,
  kNodeLoss = 3,
  kNodeDelay = 4,
  kPartition = 5,
  kGray = 6,
  kCrash = 7,
  kRestartWarm = 8,
  kRestartCold = 9,
  kKvSlow = 10,
};

const char* FaultKindName(FaultKind kind);

struct FaultPlaneConfig {
  // Optional: mirror inject/clear into the recorder's system-event log.
  obs::FlightRecorder* recorder = nullptr;
};

struct FaultPlaneStats {
  std::uint64_t dropped = 0;         // Packets dropped by overlays.
  std::uint64_t delayed = 0;         // Packets given extra delay.
  std::uint64_t events_applied = 0;  // Scheduled script events fired.
};

class FaultPlane : public net::FaultObserver {
 public:
  using PacketPredicate = std::function<bool(const net::Packet&)>;

  enum class RestartMode { kWarm, kCold };

  // Installs the plane as `network`'s fault observer. The plane must outlive
  // its installation (the testbed owns both).
  FaultPlane(sim::Simulator* simulator, net::Network* network, std::uint64_t seed,
             FaultPlaneConfig config = {});
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // --- packet overlays (immediate; p = 0 / d = 0 clears) --------------------
  // Symmetric per-link loss probability / extra delay between a and b.
  void SetLinkLoss(net::IpAddr a, net::IpAddr b, double p);
  void SetLinkDelay(net::IpAddr a, net::IpAddr b, sim::Duration d);
  // Loss / delay on every packet to or from `node`.
  void SetNodeLoss(net::IpAddr node, double p);
  void SetNodeDelay(net::IpAddr node, sim::Duration d);
  // Bidirectional total cut between a and b.
  void Partition(net::IpAddr a, net::IpAddr b);
  void Heal(net::IpAddr a, net::IpAddr b);
  // Gray failure: drop packets matching `pred` with probability `p`. Rules
  // are keyed by id (re-setting replaces) and evaluated in id order.
  void SetGray(const std::string& id, PacketPredicate pred, double p);
  void ClearGray(const std::string& id);

  // --- component faults (routed through testbed-wired handlers) -------------
  using CrashHandler = std::function<void(net::IpAddr)>;
  using RestartHandler = std::function<void(net::IpAddr, RestartMode)>;
  using KvSlowHandler = std::function<void(net::IpAddr, sim::Duration)>;
  void set_crash_handler(CrashHandler h) { crash_handler_ = std::move(h); }
  void set_restart_handler(RestartHandler h) { restart_handler_ = std::move(h); }
  void set_kv_slow_handler(KvSlowHandler h) { kv_slow_handler_ = std::move(h); }

  // Crash: component state is lost and the address blackholes.
  void CrashNode(net::IpAddr ip);
  // Restart a crashed node; kWarm keeps surviving state, kCold clears it.
  void RestartNode(net::IpAddr ip, RestartMode mode);
  // KV replica answers, but `response_delay` late. 0 clears.
  void SlowKv(net::IpAddr ip, sim::Duration response_delay);

  // --- timed fault scripts --------------------------------------------------
  // Runs `apply` against this plane at absolute simulated time `at`, as a
  // daemon event. Events fire in (time, insertion) order.
  void Schedule(sim::Time at, std::function<void(FaultPlane&)> apply);

  // FaultObserver: the per-delivery verdict, a virtual call with no closure.
  net::FaultVerdict OnSend(const net::Packet& packet, net::IpAddr route_dst) override {
    return Verdict(packet, route_dst);
  }

  // The verdict body (exposed for tests).
  net::FaultVerdict Verdict(const net::Packet& packet, net::IpAddr route_dst);

  sim::Rng& rng() { return rng_; }
  const FaultPlaneStats& stats() const { return stats_; }

 private:
  struct LinkFault {
    double loss = 0;
    sim::Duration delay = 0;
  };
  struct NodeFault {
    double loss = 0;
    sim::Duration delay = 0;
  };
  struct GrayRule {
    PacketPredicate pred;
    double p = 1.0;
  };

  static std::uint64_t LinkKey(net::IpAddr a, net::IpAddr b);
  void Note(net::IpAddr where, FaultKind kind, bool injected);

  sim::Simulator* sim_;
  net::Network* net_;
  FaultPlaneConfig cfg_;
  sim::Rng rng_;

  // std::map/set keep overlay evaluation order deterministic.
  std::set<std::uint64_t> partitions_;
  std::map<std::uint64_t, LinkFault> links_;
  std::map<net::IpAddr, NodeFault> node_faults_;
  std::map<std::string, GrayRule> grays_;

  CrashHandler crash_handler_;
  RestartHandler restart_handler_;
  KvSlowHandler kv_slow_handler_;

  FaultPlaneStats stats_;
};

}  // namespace fault

#endif  // SRC_FAULT_FAULT_PLANE_H_
