// Chaos-soak building blocks: randomized (but seed-deterministic) fault
// schedules, and post-hoc invariant checking over flight-recorder traces.
//
// RandomSchedule draws a whole fault timeline up front from the caller's Rng
// — every episode's kind, target, start and duration — and installs it on a
// FaultPlane via Schedule(). Because no draw happens at fire time, the same
// seed always produces the same timeline no matter how the simulation
// interleaves, which is what makes multi-seed soaks reproducible and
// bisectable.
//
// CheckSoakInvariants replays a FlightRecorder and verifies the properties
// the chaos soak asserts:
//   - event timestamps are monotone within each flow;
//   - every admitted flow reaches an explicit terminal event (kCleanup or
//     kFlowReset) — flows whose last-known instance crashed are exempt (their
//     state legitimately vanished with the VM);
//   - a flow's backend pin (kBackendPinned detail) only changes across an
//     intervening kReSwitch / kMirrorPromote — never silently mid-flow. Two
//     exceptions reset the check: a second kClientSyn (a retransmitted SYN
//     admitted by a survivor starts a new incarnation of the flow id), and a
//     takeover off a crashed instance (the pin may have died with the VM
//     before reaching the TCPStore, so the adopter re-runs selection).

#ifndef SRC_FAULT_CHAOS_H_
#define SRC_FAULT_CHAOS_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault_plane.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"

namespace fault {

struct ChaosOptions {
  // Injection window: episodes start in [window_start, window_end].
  sim::Time window_start = sim::Msec(50);
  sim::Time window_end = sim::Msec(400);
  // Number of fault episodes to draw.
  int episodes = 6;
  // Episode duration is uniform in [min_duration, max_duration].
  sim::Duration min_duration = sim::Msec(5);
  sim::Duration max_duration = sim::Msec(80);
  // Candidate targets. Empty lists disable the corresponding fault kinds.
  std::vector<net::IpAddr> instances;                        // crash/gray targets
  std::vector<net::IpAddr> kv_nodes;                         // slowness targets
  std::vector<std::pair<net::IpAddr, net::IpAddr>> links;    // loss/partition pairs
  bool allow_crash = true;  // Instance crashes (cold or warm restart after).
  // Controller HA: leader-kill episodes (crash + warm restart of a random
  // controller replica). Drawn AFTER the generic episode loop above, so
  // enabling them never perturbs an existing seed's draw sequence. A kill
  // may land on a standby — that is part of the chaos.
  std::vector<net::IpAddr> controllers;
  int leader_kills = 0;
};

// One drawn episode, for logging and debugging soak failures.
struct ChaosEpisode {
  sim::Time at = 0;
  sim::Time until = 0;
  FaultKind kind = FaultKind::kLinkLoss;
  net::IpAddr target = 0;
  std::string Describe() const;
};

// Draws `opts.episodes` fault episodes from `rng` and installs inject/clear
// pairs on `plane`. Returns the drawn timeline (in draw order).
std::vector<ChaosEpisode> RandomSchedule(FaultPlane& plane, sim::Rng& rng,
                                         const ChaosOptions& opts);

struct SoakExpectations {
  // Instances that crashed during the run; flows last seen there are exempt
  // from the must-terminate invariant.
  std::set<net::IpAddr> crashed;
};

struct SoakReport {
  std::vector<std::string> violations;
  std::size_t flows_checked = 0;
  std::size_t terminated = 0;    // Flows with an explicit terminal event.
  std::size_t exempted = 0;      // Non-terminated flows excused by a crash.
  std::size_t not_admitted = 0;  // Never reached an instance (SYN died en route);
                                 // the must-terminate invariant does not apply.
  // Controller HA: kLeaseAcquired events replayed from the system log. The
  // checker asserts each acquisition's fencing token is strictly greater
  // than every earlier one — i.e. at most one valid holder per token, ever.
  std::size_t lease_acquisitions = 0;
  bool ok() const { return violations.empty(); }
};

SoakReport CheckSoakInvariants(const obs::FlightRecorder& recorder,
                               const SoakExpectations& expectations);

// Pool-continuity check for make-before-break rollouts: replays the system
// event log (kPoolUpdate / kPoolMemberAdd / kPoolMemberRemove / kVipRemoved)
// and verifies that no VIP that ever had >= 1 mux-pool member drops to zero
// members while still attached to the fabric. An explicit empty kPoolUpdate
// is legitimate only as part of VIP teardown (a later kVipRemoved for the
// same VIP). Events carry the plan epoch in detail's high 32 bits; writes
// older than the newest epoch already replayed for a VIP are stragglers from
// an overtaken rollout — the muxes reject them, so the checker skips them
// (epoch 0 = legacy unversioned write, always applied).
struct PoolContinuityReport {
  std::vector<std::string> violations;
  std::size_t vips_checked = 0;
  std::size_t events_replayed = 0;
  std::size_t stale_skipped = 0;  // Straggler writes ignored by epoch gating.
  bool ok() const { return violations.empty(); }
};

PoolContinuityReport CheckPoolContinuity(const obs::FlightRecorder& recorder);

}  // namespace fault

#endif  // SRC_FAULT_CHAOS_H_
