#include "src/fault/fault_plane.h"

#include <utility>

namespace fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkLoss:
      return "LinkLoss";
    case FaultKind::kLinkDelay:
      return "LinkDelay";
    case FaultKind::kNodeLoss:
      return "NodeLoss";
    case FaultKind::kNodeDelay:
      return "NodeDelay";
    case FaultKind::kPartition:
      return "Partition";
    case FaultKind::kGray:
      return "Gray";
    case FaultKind::kCrash:
      return "Crash";
    case FaultKind::kRestartWarm:
      return "RestartWarm";
    case FaultKind::kRestartCold:
      return "RestartCold";
    case FaultKind::kKvSlow:
      return "KvSlow";
  }
  return "Unknown";
}

FaultPlane::FaultPlane(sim::Simulator* simulator, net::Network* network, std::uint64_t seed,
                       FaultPlaneConfig config)
    : sim_(simulator), net_(network), cfg_(config), rng_(seed) {
  net_->set_fault_observer(this);
}

std::uint64_t FaultPlane::LinkKey(net::IpAddr a, net::IpAddr b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void FaultPlane::Note(net::IpAddr where, FaultKind kind, bool injected) {
  if (cfg_.recorder == nullptr) {
    return;
  }
  cfg_.recorder->RecordSystem(
      sim_->now(),
      injected ? obs::EventType::kFaultInjected : obs::EventType::kFaultCleared, where,
      static_cast<std::uint64_t>(kind));
}

void FaultPlane::SetLinkLoss(net::IpAddr a, net::IpAddr b, double p) {
  LinkFault& f = links_[LinkKey(a, b)];
  f.loss = p;
  if (f.loss == 0 && f.delay == 0) {
    links_.erase(LinkKey(a, b));
  }
  Note(a, FaultKind::kLinkLoss, p > 0);
}

void FaultPlane::SetLinkDelay(net::IpAddr a, net::IpAddr b, sim::Duration d) {
  LinkFault& f = links_[LinkKey(a, b)];
  f.delay = d;
  if (f.loss == 0 && f.delay == 0) {
    links_.erase(LinkKey(a, b));
  }
  Note(a, FaultKind::kLinkDelay, d > 0);
}

void FaultPlane::SetNodeLoss(net::IpAddr node, double p) {
  NodeFault& f = node_faults_[node];
  f.loss = p;
  if (f.loss == 0 && f.delay == 0) {
    node_faults_.erase(node);
  }
  Note(node, FaultKind::kNodeLoss, p > 0);
}

void FaultPlane::SetNodeDelay(net::IpAddr node, sim::Duration d) {
  NodeFault& f = node_faults_[node];
  f.delay = d;
  if (f.loss == 0 && f.delay == 0) {
    node_faults_.erase(node);
  }
  Note(node, FaultKind::kNodeDelay, d > 0);
}

void FaultPlane::Partition(net::IpAddr a, net::IpAddr b) {
  partitions_.insert(LinkKey(a, b));
  Note(a, FaultKind::kPartition, true);
}

void FaultPlane::Heal(net::IpAddr a, net::IpAddr b) {
  partitions_.erase(LinkKey(a, b));
  Note(a, FaultKind::kPartition, false);
}

void FaultPlane::SetGray(const std::string& id, PacketPredicate pred, double p) {
  grays_[id] = GrayRule{std::move(pred), p};
  Note(0, FaultKind::kGray, true);
}

void FaultPlane::ClearGray(const std::string& id) {
  grays_.erase(id);
  Note(0, FaultKind::kGray, false);
}

void FaultPlane::CrashNode(net::IpAddr ip) {
  if (crash_handler_) {
    crash_handler_(ip);
  } else {
    net_->SetNodeDown(ip, true);
  }
  Note(ip, FaultKind::kCrash, true);
}

void FaultPlane::RestartNode(net::IpAddr ip, RestartMode mode) {
  if (restart_handler_) {
    restart_handler_(ip, mode);
  } else if (mode == RestartMode::kCold) {
    net_->RestartNode(ip);
  } else {
    net_->SetNodeDown(ip, false);
  }
  Note(ip, mode == RestartMode::kCold ? FaultKind::kRestartCold : FaultKind::kRestartWarm,
       true);
}

void FaultPlane::SlowKv(net::IpAddr ip, sim::Duration response_delay) {
  if (kv_slow_handler_) {
    kv_slow_handler_(ip, response_delay);
  }
  Note(ip, FaultKind::kKvSlow, response_delay > 0);
}

void FaultPlane::Schedule(sim::Time at, std::function<void(FaultPlane&)> apply) {
  sim_->At(
      at,
      [this, apply = std::move(apply)]() {
        apply(*this);
        ++stats_.events_applied;
      },
      /*daemon=*/true);
}

net::FaultVerdict FaultPlane::Verdict(const net::Packet& packet, net::IpAddr route_dst) {
  net::FaultVerdict v;
  const std::uint64_t link = LinkKey(packet.src, route_dst);
  // 1. Partitions: a total cut needs no randomness.
  if (partitions_.contains(link)) {
    ++stats_.dropped;
    v.drop = true;
    return v;
  }
  // 2. Link faults.
  if (auto it = links_.find(link); it != links_.end()) {
    if (it->second.loss > 0 && rng_.Bernoulli(it->second.loss)) {
      ++stats_.dropped;
      v.drop = true;
      return v;
    }
    v.extra_delay += it->second.delay;
  }
  // 3. Node faults: source first, then destination (skipped when equal), so
  // the draw order is fixed regardless of map iteration details.
  if (auto it = node_faults_.find(packet.src); it != node_faults_.end()) {
    if (it->second.loss > 0 && rng_.Bernoulli(it->second.loss)) {
      ++stats_.dropped;
      v.drop = true;
      return v;
    }
    v.extra_delay += it->second.delay;
  }
  if (route_dst != packet.src) {
    if (auto it = node_faults_.find(route_dst); it != node_faults_.end()) {
      if (it->second.loss > 0 && rng_.Bernoulli(it->second.loss)) {
        ++stats_.dropped;
        v.drop = true;
        return v;
      }
      v.extra_delay += it->second.delay;
    }
  }
  // 4. Gray rules, in id order.
  for (const auto& [id, rule] : grays_) {
    if (rule.pred && rule.pred(packet) && (rule.p >= 1.0 || rng_.Bernoulli(rule.p))) {
      ++stats_.dropped;
      v.drop = true;
      return v;
    }
  }
  if (v.extra_delay > 0) {
    ++stats_.delayed;
  }
  return v;
}

}  // namespace fault
