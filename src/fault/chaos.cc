#include "src/fault/chaos.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace fault {
namespace {

// Flow label for violation messages.
std::string FlowLabel(const obs::FlowId& id) {
  std::ostringstream os;
  os << net::IpToString(id.vip) << ':' << id.vip_port << '<'
     << net::IpToString(id.client_ip) << ':' << id.client_port;
  return os.str();
}

}  // namespace

std::string ChaosEpisode::Describe() const {
  std::ostringstream os;
  os << "t=[" << sim::ToMillis(at) << "ms," << sim::ToMillis(until) << "ms] "
     << FaultKindName(kind) << " @ " << net::IpToString(target);
  return os.str();
}

std::vector<ChaosEpisode> RandomSchedule(FaultPlane& plane, sim::Rng& rng,
                                         const ChaosOptions& opts) {
  // Kinds we can draw given the candidate lists.
  std::vector<FaultKind> kinds;
  if (!opts.links.empty()) {
    kinds.push_back(FaultKind::kLinkLoss);
    kinds.push_back(FaultKind::kPartition);
  }
  if (!opts.instances.empty()) {
    kinds.push_back(FaultKind::kNodeDelay);
    kinds.push_back(FaultKind::kGray);
    if (opts.allow_crash) {
      kinds.push_back(FaultKind::kCrash);
    }
  }
  if (!opts.kv_nodes.empty()) {
    kinds.push_back(FaultKind::kKvSlow);
  }

  std::vector<ChaosEpisode> episodes;
  // Crashed targets must not crash again before their restart fires.
  std::map<net::IpAddr, sim::Time> crash_busy_until;

  for (int i = 0; !kinds.empty() && i < opts.episodes; ++i) {
    ChaosEpisode ep;
    ep.kind = kinds[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    ep.at = opts.window_start +
            static_cast<sim::Time>(rng.UniformInt(
                0, static_cast<std::int64_t>(opts.window_end - opts.window_start)));
    ep.until = ep.at + opts.min_duration +
               static_cast<sim::Duration>(rng.UniformInt(
                   0, static_cast<std::int64_t>(opts.max_duration - opts.min_duration)));

    switch (ep.kind) {
      case FaultKind::kLinkLoss: {
        const auto& link = opts.links[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.links.size()) - 1))];
        const double p = 0.2 + 0.7 * rng.UniformDouble();
        ep.target = link.first;
        plane.Schedule(ep.at, [link, p](FaultPlane& fp) {
          fp.SetLinkLoss(link.first, link.second, p);
        });
        plane.Schedule(ep.until, [link](FaultPlane& fp) {
          fp.SetLinkLoss(link.first, link.second, 0);
        });
        break;
      }
      case FaultKind::kPartition: {
        const auto& link = opts.links[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.links.size()) - 1))];
        ep.target = link.first;
        plane.Schedule(ep.at, [link](FaultPlane& fp) {
          fp.Partition(link.first, link.second);
        });
        plane.Schedule(ep.until, [link](FaultPlane& fp) {
          fp.Heal(link.first, link.second);
        });
        break;
      }
      case FaultKind::kNodeDelay: {
        ep.target = opts.instances[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.instances.size()) - 1))];
        const sim::Duration d =
            sim::Msec(1) + static_cast<sim::Duration>(rng.UniformInt(0, sim::Msec(9)));
        const net::IpAddr t = ep.target;
        plane.Schedule(ep.at, [t, d](FaultPlane& fp) { fp.SetNodeDelay(t, d); });
        plane.Schedule(ep.until, [t](FaultPlane& fp) { fp.SetNodeDelay(t, 0); });
        break;
      }
      case FaultKind::kGray: {
        ep.target = opts.instances[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.instances.size()) - 1))];
        const double p = 0.6 + 0.4 * rng.UniformDouble();
        const net::IpAddr t = ep.target;
        const std::string id = "chaos-gray-" + std::to_string(i);
        // The classic gray failure: pure SYNs toward the instance die, while
        // established traffic (and kAck-shaped health probes) pass.
        auto pred = [t](const net::Packet& p) {
          return p.dst == t && p.syn() && !p.ack_flag();
        };
        plane.Schedule(ep.at, [id, pred, p](FaultPlane& fp) { fp.SetGray(id, pred, p); });
        plane.Schedule(ep.until, [id](FaultPlane& fp) { fp.ClearGray(id); });
        break;
      }
      case FaultKind::kCrash: {
        ep.target = opts.instances[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.instances.size()) - 1))];
        // No overlapping crash on the same target: shift past the pending
        // restart (a deterministic adjustment, no extra draws).
        const sim::Time busy = crash_busy_until[ep.target];
        if (ep.at <= busy) {
          const sim::Duration len = ep.until - ep.at;
          ep.at = busy + sim::Msec(1);
          ep.until = ep.at + len;
        }
        crash_busy_until[ep.target] = ep.until;
        const bool cold = rng.Bernoulli(0.5);
        const net::IpAddr t = ep.target;
        plane.Schedule(ep.at, [t](FaultPlane& fp) { fp.CrashNode(t); });
        plane.Schedule(ep.until, [t, cold](FaultPlane& fp) {
          fp.RestartNode(t, cold ? FaultPlane::RestartMode::kCold
                                 : FaultPlane::RestartMode::kWarm);
        });
        break;
      }
      case FaultKind::kKvSlow: {
        ep.target = opts.kv_nodes[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(opts.kv_nodes.size()) - 1))];
        const sim::Duration d =
            sim::Msec(2) + static_cast<sim::Duration>(rng.UniformInt(0, sim::Msec(18)));
        const net::IpAddr t = ep.target;
        plane.Schedule(ep.at, [t, d](FaultPlane& fp) { fp.SlowKv(t, d); });
        plane.Schedule(ep.until, [t](FaultPlane& fp) { fp.SlowKv(t, 0); });
        break;
      }
      default:
        break;
    }
    episodes.push_back(ep);
  }

  // Controller leader-kill episodes — drawn after (and independent of) the
  // generic loop so existing seeds replay byte-identically with HA off.
  for (int i = 0; i < opts.leader_kills && !opts.controllers.empty(); ++i) {
    ChaosEpisode ep;
    ep.kind = FaultKind::kCrash;
    ep.target = opts.controllers[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(opts.controllers.size()) - 1))];
    ep.at = opts.window_start +
            static_cast<sim::Time>(rng.UniformInt(
                0, static_cast<std::int64_t>(opts.window_end - opts.window_start)));
    ep.until = ep.at + opts.min_duration +
               static_cast<sim::Duration>(rng.UniformInt(
                   0, static_cast<std::int64_t>(opts.max_duration - opts.min_duration)));
    const sim::Time busy = crash_busy_until[ep.target];
    if (ep.at <= busy) {
      const sim::Duration len = ep.until - ep.at;
      ep.at = busy + sim::Msec(1);
      ep.until = ep.at + len;
    }
    crash_busy_until[ep.target] = ep.until;
    const net::IpAddr t = ep.target;
    plane.Schedule(ep.at, [t](FaultPlane& fp) { fp.CrashNode(t); });
    plane.Schedule(ep.until, [t](FaultPlane& fp) {
      fp.RestartNode(t, FaultPlane::RestartMode::kWarm);
    });
    episodes.push_back(ep);
  }
  return episodes;
}

SoakReport CheckSoakInvariants(const obs::FlightRecorder& recorder,
                               const SoakExpectations& expectations) {
  SoakReport report;
  recorder.ForEachFlow([&](const obs::FlowId& id, const std::vector<obs::TraceEvent>& events) {
    ++report.flows_checked;
    bool terminated = false;
    bool touched_crashed = false;
    bool admitted = false;
    sim::Time prev = 0;
    std::uint64_t pin = 0;
    net::IpAddr pin_where = 0;
    bool switch_since_pin = false;
    bool takeover_since_pin = false;
    for (const obs::TraceEvent& ev : events) {
      if (ev.at < prev) {
        report.violations.push_back("non-monotone timestamps in flow " + FlowLabel(id));
      }
      prev = ev.at;
      if (expectations.crashed.contains(ev.where)) {
        touched_crashed = true;
      }
      switch (ev.type) {
        case obs::EventType::kClientSyn:
          // A fresh SYN admission starts a new incarnation of this flow id
          // (e.g. a retransmitted SYN landing on a survivor after its first
          // owner died pre-SYN-ACK). Pin stability is per incarnation.
          pin = 0;
          switch_since_pin = false;
          admitted = true;
          break;
        case obs::EventType::kTakeoverClient:
        case obs::EventType::kTakeoverServer:
          takeover_since_pin = true;
          admitted = true;
          break;
        case obs::EventType::kCleanup:
        case obs::EventType::kFlowReset:
          terminated = true;
          break;
        case obs::EventType::kReSwitch:
        case obs::EventType::kMirrorPromote:
          switch_since_pin = true;
          break;
        case obs::EventType::kBackendPinned: {
          // A pin may move only across an explicit re-switch/promote, or when
          // the flow was taken over off a crashed instance — the pin may have
          // died with the VM before reaching the TCPStore, in which case the
          // adopter legitimately re-runs backend selection.
          const bool crash_repin =
              takeover_since_pin && expectations.crashed.contains(pin_where);
          if (pin != 0 && ev.detail != pin && !switch_since_pin && !crash_repin) {
            report.violations.push_back("backend pin changed without re-switch in flow " +
                                        FlowLabel(id));
          }
          pin = ev.detail;
          pin_where = ev.where;
          switch_since_pin = false;
          takeover_since_pin = false;
          break;
        }
        default:
          break;
      }
    }
    if (terminated) {
      ++report.terminated;
    } else if (!admitted) {
      ++report.not_admitted;  // Only mux-scope events: the SYN died en route.
    } else if (touched_crashed) {
      ++report.exempted;
    } else {
      report.violations.push_back("flow never terminated: " + FlowLabel(id));
    }
  });
  // Controller HA: lease-safety invariant. Acquisitions carry their fencing
  // token (detail); the CAS protocol must hand out strictly increasing
  // tokens, so a repeated or out-of-order token means two replicas held the
  // same lease generation — split brain.
  std::uint64_t last_token = 0;
  for (const obs::TraceEvent& ev : recorder.system_events()) {
    if (ev.type != obs::EventType::kLeaseAcquired) {
      continue;
    }
    ++report.lease_acquisitions;
    if (ev.detail <= last_token) {
      std::ostringstream os;
      os << "lease token " << ev.detail << " acquired by " << net::IpToString(ev.where)
         << " at " << sim::ToMillis(ev.at) << "ms does not exceed prior token "
         << last_token;
      report.violations.push_back(os.str());
    }
    last_token = ev.detail;
  }
  return report;
}

PoolContinuityReport CheckPoolContinuity(const obs::FlightRecorder& recorder) {
  PoolContinuityReport report;
  struct VipPool {
    long members = 0;            // Committed member count (adds late, removes early).
    bool ever_nonempty = false;  // The continuity obligation starts here.
    bool removed = false;        // kVipRemoved seen; obligation over.
    std::uint64_t epoch = 0;     // Newest plan epoch replayed (mux watermark).
    std::vector<std::string> pending;  // Empty reprograms awaiting teardown.
  };
  std::map<std::uint32_t, VipPool> pools;

  auto label = [](std::uint32_t vip, sim::Time at) {
    std::ostringstream os;
    os << net::IpToString(vip) << " at " << sim::ToMillis(at) << "ms";
    return os.str();
  };

  for (const obs::TraceEvent& ev : recorder.system_events()) {
    if (ev.type != obs::EventType::kPoolUpdate &&
        ev.type != obs::EventType::kPoolMemberAdd &&
        ev.type != obs::EventType::kPoolMemberRemove &&
        ev.type != obs::EventType::kVipRemoved) {
      continue;
    }
    VipPool& pool = pools[ev.where];
    if (ev.type == obs::EventType::kVipRemoved) {
      pool.removed = true;
      pool.pending.clear();  // The empty reprogram was teardown after all.
      continue;
    }
    const std::uint64_t epoch = ev.detail >> 32;
    if (epoch != 0 && epoch < pool.epoch) {
      ++report.stale_skipped;
      continue;
    }
    pool.epoch = std::max(pool.epoch, epoch);
    ++report.events_replayed;
    switch (ev.type) {
      case obs::EventType::kPoolUpdate:
        pool.members = static_cast<long>(ev.detail & 0xffffffffULL);
        if (pool.members > 0) {
          pool.ever_nonempty = true;
        } else if (pool.ever_nonempty && !pool.removed) {
          pool.pending.push_back("pool reprogrammed empty for vip " +
                                 label(ev.where, ev.at));
        }
        break;
      case obs::EventType::kPoolMemberAdd:
        ++pool.members;
        pool.ever_nonempty = true;
        break;
      case obs::EventType::kPoolMemberRemove:
        --pool.members;
        if (pool.members <= 0 && pool.ever_nonempty && !pool.removed) {
          report.violations.push_back("pool drained to zero mid-update for vip " +
                                      label(ev.where, ev.at));
        }
        break;
      default:
        break;
    }
  }
  for (auto& [vip, pool] : pools) {
    (void)vip;
    if (pool.ever_nonempty) {
      ++report.vips_checked;
    }
    // Empty reprograms never followed by a kVipRemoved are real blackouts.
    for (std::string& v : pool.pending) {
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

}  // namespace fault
