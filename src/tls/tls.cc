#include "src/tls/tls.h"

#include "src/kv/hash_ring.h"
#include "src/net/wire.h"

namespace tls {

std::string EncodeRecord(const Record& record) {
  net::ByteWriter w;
  w.U8(static_cast<std::uint8_t>(record.type));
  w.U32(static_cast<std::uint32_t>(record.payload.size()));
  w.Bytes(record.payload);
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

void RecordReader::Feed(std::string_view bytes) { buf_.append(bytes); }

std::optional<Record> RecordReader::Next() {
  if (buf_.size() < 5) {
    return std::nullopt;
  }
  const auto type = static_cast<std::uint8_t>(buf_[0]);
  const std::uint32_t len = (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[1])) << 24) |
                            (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[2])) << 16) |
                            (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[3])) << 8) |
                            static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[4]));
  if (buf_.size() < 5 + len) {
    return std::nullopt;
  }
  Record r;
  r.type = static_cast<RecordType>(type);
  r.payload = buf_.substr(5, len);
  buf_.erase(0, 5 + len);
  return r;
}

std::string ClientHello::Serialize() const {
  net::ByteWriter w;
  w.U64(client_random);
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

std::optional<ClientHello> ClientHello::Parse(const std::string& payload) {
  std::vector<std::uint8_t> buf(payload.begin(), payload.end());
  net::ByteReader r(buf);
  auto rand = r.U64();
  if (!rand || !r.AtEnd()) {
    return std::nullopt;
  }
  return ClientHello{*rand};
}

std::string ServerCertificate::Serialize() const {
  net::ByteWriter w;
  w.U64(server_random);
  w.Str(certificate);
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

std::optional<ServerCertificate> ServerCertificate::Parse(const std::string& payload) {
  std::vector<std::uint8_t> buf(payload.begin(), payload.end());
  net::ByteReader r(buf);
  auto rand = r.U64();
  auto cert = r.Str();
  if (!rand || !cert || !r.AtEnd()) {
    return std::nullopt;
  }
  ServerCertificate out;
  out.server_random = *rand;
  out.certificate = std::move(*cert);
  return out;
}

std::uint64_t DeriveServerRandom(const std::string& certificate, std::uint64_t client_random) {
  return kv::Mix64(kv::HashBytes(certificate) ^ client_random);
}

std::uint64_t DeriveSessionKey(std::uint64_t client_random, std::uint64_t server_random) {
  return kv::Mix64(client_random ^ kv::Mix64(server_random));
}

std::string SealTicket(std::uint64_t session_key, std::uint64_t service_key) {
  net::ByteWriter w;
  w.U64(session_key ^ kv::Mix64(service_key));
  w.U64(kv::Mix64(session_key ^ service_key));  // Integrity tag.
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

std::optional<std::uint64_t> OpenTicket(const std::string& ticket, std::uint64_t service_key) {
  std::vector<std::uint8_t> buf(ticket.begin(), ticket.end());
  net::ByteReader r(buf);
  auto sealed = r.U64();
  auto tag = r.U64();
  if (!sealed || !tag || !r.AtEnd()) {
    return std::nullopt;
  }
  const std::uint64_t key = *sealed ^ kv::Mix64(service_key);
  if (kv::Mix64(key ^ service_key) != *tag) {
    return std::nullopt;
  }
  return key;
}

std::string Crypt(std::uint64_t session_key, std::uint64_t stream_offset,
                  std::string_view data) {
  std::string out(data);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t pos = stream_offset + i;
    const std::uint64_t word = kv::Mix64(session_key ^ (pos / 8));
    const auto key_byte = static_cast<char>((word >> ((pos % 8) * 8)) & 0xff);
    out[i] = static_cast<char>(out[i] ^ key_byte);
  }
  return out;
}

std::string CipherStream::Process(std::string_view data) {
  std::string out = Crypt(key_, offset_, data);
  offset_ += data.size();
  return out;
}

}  // namespace tls
