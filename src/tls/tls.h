// TLS-lite: a miniature TLS stand-in for exercising Yoda's SSL termination
// (paper §5.2) with the properties that matter to the LB design:
//
//   - the LB holds the per-VIP certificate and answers the handshake;
//   - the handshake is *deterministic given the ClientHello*, so any Yoda
//     instance resends an identical certificate flight ("On failure during
//     certificate transfer, another YODA instance resends the entire
//     certificate") and derives the same session key;
//   - application data is framed in records and enciphered with the session
//     key, so reading the HTTP request requires terminating the session;
//   - the backend joins the session via a session-ticket record carrying the
//     key (sealed under a service key it shares with the LB fleet), after
//     which the LB tunnels the *encrypted* stream at L3 as usual.
//
// The "cipher" is a keystream XOR — this is a simulation of the protocol
// dance, not of cryptography.

#ifndef SRC_TLS_TLS_H_
#define SRC_TLS_TLS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tls {

enum class RecordType : std::uint8_t {
  kClientHello = 1,
  kServerCertificate = 2,
  kClientFinished = 3,
  kSessionTicket = 4,  // LB -> backend: join this session.
  kApplicationData = 5,
};

struct Record {
  RecordType type = RecordType::kApplicationData;
  std::string payload;
};

// Record framing: [type u8][length u32 BE][payload].
std::string EncodeRecord(const Record& record);

// Incremental record reader over a TCP byte stream.
class RecordReader {
 public:
  void Feed(std::string_view bytes);
  // Removes and returns the next complete record, if any.
  std::optional<Record> Next();

 private:
  std::string buf_;
};

// Handshake payloads.
struct ClientHello {
  std::uint64_t client_random = 0;
  std::string Serialize() const;
  static std::optional<ClientHello> Parse(const std::string& payload);
};

struct ServerCertificate {
  std::uint64_t server_random = 0;
  std::string certificate;  // The VIP's certificate blob.
  std::string Serialize() const;
  static std::optional<ServerCertificate> Parse(const std::string& payload);
};

// Key schedule: both sides derive the session key from the two randoms and
// the certificate. Deterministic server_random = f(cert, client_random)
// keeps every Yoda instance's handshake identical for a given client.
std::uint64_t DeriveServerRandom(const std::string& certificate, std::uint64_t client_random);
std::uint64_t DeriveSessionKey(std::uint64_t client_random, std::uint64_t server_random);

// Session ticket: the key sealed under the fleet's service key.
std::string SealTicket(std::uint64_t session_key, std::uint64_t service_key);
std::optional<std::uint64_t> OpenTicket(const std::string& ticket, std::uint64_t service_key);

// Keystream offset namespace for server->client data, so the two directions
// never reuse keystream.
constexpr std::uint64_t kServerDirectionOffset = 0x8000'0000'0000'0000ULL;

// Stream cipher keyed by the session key + direction. Symmetric:
// Crypt(Crypt(x)) == x for the same (key, offset).
std::string Crypt(std::uint64_t session_key, std::uint64_t stream_offset,
                  std::string_view data);

// A streaming encrypt/decrypt context that tracks its offset.
class CipherStream {
 public:
  explicit CipherStream(std::uint64_t session_key) : key_(session_key) {}
  std::string Process(std::string_view data);
  std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t key_;
  std::uint64_t offset_ = 0;
};

}  // namespace tls

#endif  // SRC_TLS_TLS_H_
