#include "src/assign/greedy_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "src/assign/validator.h"

namespace assign {
namespace {

constexpr double kEps = 1e-9;

// Mutable placement state shared by the greedy pass and the local search.
struct State {
  const Problem* p = nullptr;
  const Assignment* prev = nullptr;
  bool limit_transient = false;
  bool limit_migration = false;
  double migration_limit = 1.0;

  std::vector<double> load;       // Eq 1 LHS per instance.
  std::vector<int> rules;         // Eq 2 LHS per instance.
  std::vector<double> transient;  // Eq 4,5 LHS per instance.
  std::vector<bool> used;
  double total_traffic = 0;
  double migrated = 0;  // Traffic units migrated so far.

  // Per-VIP old data.
  std::vector<std::set<int>> old_sets;
  std::vector<double> old_share;

  void Init(const Problem& problem, const SolveOptions& opts, double mig_limit) {
    p = &problem;
    prev = opts.previous;
    limit_transient = opts.limit_transient && prev != nullptr;
    limit_migration = opts.limit_migration && prev != nullptr && mig_limit >= 0;
    migration_limit = mig_limit;
    total_traffic = problem.TotalTraffic();

    int cap = problem.max_instances > 0 ? problem.max_instances : 0;
    // With an unbounded instance pool we grow lazily; reserve a sane start.
    int start = cap > 0 ? cap : static_cast<int>(problem.vips.size()) + 8;
    load.assign(static_cast<std::size_t>(start), 0.0);
    rules.assign(static_cast<std::size_t>(start), 0);
    transient.assign(static_cast<std::size_t>(start), 0.0);
    used.assign(static_cast<std::size_t>(start), false);

    old_sets.assign(problem.vips.size(), {});
    old_share.assign(problem.vips.size(), 0.0);
    if (prev != nullptr) {
      for (std::size_t v = 0; v < problem.vips.size() && v < prev->vip_instances.size(); ++v) {
        old_sets[v].insert(prev->vip_instances[v].begin(), prev->vip_instances[v].end());
        if (!old_sets[v].empty()) {
          old_share[v] = problem.vips[v].traffic / static_cast<double>(old_sets[v].size());
          for (int y : old_sets[v]) {
            Grow(y);
            // Until re-assigned, the instance still carries the old share
            // during the transition window.
            transient[static_cast<std::size_t>(y)] += old_share[v];
          }
        }
      }
    }
  }

  void Grow(int y) {
    while (static_cast<int>(load.size()) <= y) {
      load.push_back(0);
      rules.push_back(0);
      transient.push_back(0);
      used.push_back(false);
    }
  }

  int InstanceUniverse() const {
    return p->max_instances > 0 ? p->max_instances : static_cast<int>(load.size()) + 1;
  }

  // Transient contribution of putting VIP v (new share `share`) on y.
  double TransientDelta(std::size_t v, int y, double new_share) const {
    const bool was_old = old_sets[v].contains(y);
    if (!was_old) {
      return new_share;
    }
    return std::max(old_share[v], new_share) - old_share[v];
  }

  bool Fits(std::size_t v, int y, double fail_share, double new_share) const {
    const auto yi = static_cast<std::size_t>(y);
    if (yi < load.size()) {
      if (load[yi] + fail_share > p->traffic_capacity + kEps) {
        return false;
      }
      if (rules[yi] + p->vips[v].rules > p->rule_capacity) {
        return false;
      }
      if (limit_transient &&
          transient[yi] + TransientDelta(v, y, new_share) > p->traffic_capacity + kEps) {
        return false;
      }
    }
    return true;
  }

  void Place(std::size_t v, int y, double fail_share, double new_share) {
    Grow(y);
    const auto yi = static_cast<std::size_t>(y);
    load[yi] += fail_share;
    rules[yi] += p->vips[v].rules;
    transient[yi] += TransientDelta(v, y, new_share);
    used[yi] = true;
  }

  void Unplace(std::size_t v, int y, double fail_share, double new_share) {
    const auto yi = static_cast<std::size_t>(y);
    load[yi] -= fail_share;
    rules[yi] -= p->vips[v].rules;
    transient[yi] -= TransientDelta(v, y, new_share);
  }
};

}  // namespace

SolveResult GreedySolver::SolveOnce(const Problem& problem, const SolveOptions& options,
                                    double migration_limit) const {
  State st;
  st.Init(problem, options, migration_limit);

  SolveResult result;
  result.assignment.vip_instances.assign(problem.vips.size(), {});

  // Hardest VIPs first: decreasing post-failure share, rules as tie-break.
  std::vector<std::size_t> order(problem.vips.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&problem](std::size_t a, std::size_t b) {
    const double sa = problem.vips[a].ShareAfterFailures();
    const double sb = problem.vips[b].ShareAfterFailures();
    if (sa != sb) {
      return sa > sb;
    }
    return problem.vips[a].rules > problem.vips[b].rules;
  });

  for (std::size_t v : order) {
    const VipSpec& vip = problem.vips[v];
    if (vip.failures >= vip.replicas) {
      result.note = "vip " + std::to_string(vip.id) + ": f_v >= n_v";
      return result;
    }
    const double fail_share = vip.ShareAfterFailures();
    const double new_share = vip.traffic / static_cast<double>(vip.replicas);
    std::vector<int>& chosen = result.assignment.vip_instances[v];

    for (int slot = 0; slot < vip.replicas; ++slot) {
      int best = -1;
      double best_key = -1;
      bool best_is_old = false;
      const int universe = st.InstanceUniverse();
      for (int y = 0; y < universe; ++y) {
        if (std::find(chosen.begin(), chosen.end(), y) != chosen.end()) {
          continue;
        }
        if (!st.Fits(v, y, fail_share, new_share)) {
          continue;
        }
        const bool is_old = st.old_sets[v].contains(y);
        const bool is_used = static_cast<std::size_t>(y) < st.used.size() &&
                             st.used[static_cast<std::size_t>(y)];
        // Preference: old instance (no migration) > already-used (packing) >
        // fresh. Within a class, best fit (highest current load).
        double key = (is_old ? 2e6 : 0) + (is_used ? 1e6 : 0) +
                     (static_cast<std::size_t>(y) < st.load.size()
                          ? st.load[static_cast<std::size_t>(y)]
                          : 0);
        if (key > best_key) {
          best_key = key;
          best = y;
          best_is_old = is_old;
        }
      }
      if (best < 0) {
        result.note = "vip " + std::to_string(vip.id) + ": no feasible instance for replica " +
                      std::to_string(slot);
        return result;  // Infeasible under this budget.
      }
      // Migration accounting: a replica placed off the old set migrates
      // old_share worth of connections (if the VIP had an old footprint).
      if (!best_is_old && !st.old_sets[v].empty()) {
        if (st.limit_migration &&
            st.migrated + st.old_share[v] > st.migration_limit * st.total_traffic + kEps) {
          result.note = "migration budget exhausted at vip " + std::to_string(vip.id);
          return result;
        }
        st.migrated += st.old_share[v];
      }
      st.Place(v, best, fail_share, new_share);
      chosen.push_back(best);
    }
    std::sort(chosen.begin(), chosen.end());
  }

  // Local search: repeatedly try to evacuate the least-loaded used instance.
  if (options.local_search) {
    bool improved = true;
    while (improved) {
      improved = false;
      // Collect used instances ordered by ascending load.
      std::vector<int> by_load;
      for (std::size_t y = 0; y < st.used.size(); ++y) {
        if (st.used[y]) {
          by_load.push_back(static_cast<int>(y));
        }
      }
      std::sort(by_load.begin(), by_load.end(), [&st](int a, int b) {
        return st.load[static_cast<std::size_t>(a)] < st.load[static_cast<std::size_t>(b)];
      });
      for (int victim : by_load) {
        // Tenants of the victim: (vip, slot) pairs.
        std::vector<std::size_t> tenants;
        for (std::size_t v = 0; v < result.assignment.vip_instances.size(); ++v) {
          const auto& insts = result.assignment.vip_instances[v];
          if (std::find(insts.begin(), insts.end(), victim) != insts.end()) {
            tenants.push_back(v);
          }
        }
        if (tenants.empty()) {
          st.used[static_cast<std::size_t>(victim)] = false;
          continue;
        }
        // Tentatively move every tenant elsewhere.
        struct Move {
          std::size_t v;
          int to;
          double fail_share;
          double new_share;
          bool migrates;
        };
        std::vector<Move> moves;
        bool all_moved = true;
        for (std::size_t v : tenants) {
          const VipSpec& vip = problem.vips[v];
          const double fail_share = vip.ShareAfterFailures();
          const double new_share = vip.traffic / static_cast<double>(vip.replicas);
          st.Unplace(v, victim, fail_share, new_share);
          auto& insts = result.assignment.vip_instances[v];
          insts.erase(std::find(insts.begin(), insts.end(), victim));

          int target = -1;
          double best_key = -1;
          for (std::size_t y = 0; y < st.used.size(); ++y) {
            const int yi = static_cast<int>(y);
            if (yi == victim || !st.used[y]) {
              continue;
            }
            if (std::find(insts.begin(), insts.end(), yi) != insts.end()) {
              continue;
            }
            if (!st.Fits(v, yi, fail_share, new_share)) {
              continue;
            }
            const bool migrates = !st.old_sets[v].contains(yi) && !st.old_sets[v].empty() &&
                                  st.old_sets[v].contains(victim);
            if (migrates && st.limit_migration &&
                st.migrated + st.old_share[v] > st.migration_limit * st.total_traffic + kEps) {
              continue;
            }
            double key = st.load[y];
            if (key > best_key) {
              best_key = key;
              target = yi;
            }
          }
          if (target < 0) {
            // Undo this tenant and abort the eviction.
            st.Place(v, victim, fail_share, new_share);
            insts.push_back(victim);
            std::sort(insts.begin(), insts.end());
            all_moved = false;
            break;
          }
          const bool migrates = !st.old_sets[v].contains(target) && !st.old_sets[v].empty() &&
                                st.old_sets[v].contains(victim);
          if (migrates) {
            st.migrated += st.old_share[v];
          }
          st.Place(v, target, fail_share, new_share);
          insts.push_back(target);
          std::sort(insts.begin(), insts.end());
          moves.push_back(Move{v, target, fail_share, new_share, migrates});
        }
        if (!all_moved) {
          // Roll back the successful moves of this eviction attempt.
          for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
            st.Unplace(it->v, it->to, it->fail_share, it->new_share);
            if (it->migrates) {
              st.migrated -= st.old_share[it->v];
            }
            auto& insts = result.assignment.vip_instances[it->v];
            insts.erase(std::find(insts.begin(), insts.end(), it->to));
            st.Place(it->v, victim, it->fail_share, it->new_share);
            insts.push_back(victim);
            std::sort(insts.begin(), insts.end());
          }
          continue;
        }
        st.used[static_cast<std::size_t>(victim)] = false;
        improved = true;
        break;  // Re-rank instances after a successful eviction.
      }
    }
  }

  result.feasible = true;
  result.instances_used = result.assignment.UsedInstanceCount();
  result.migrated_fraction = st.total_traffic > 0 ? st.migrated / st.total_traffic : 0;
  result.effective_migration_limit = st.limit_migration ? st.migration_limit : -1.0;
  return result;
}

SolveResult GreedySolver::Solve(const Problem& problem, const SolveOptions& options) const {
  const bool with_budget =
      options.limit_migration && options.previous != nullptr && problem.migration_limit >= 0;
  if (!with_budget) {
    return SolveOnce(problem, options, -1.0);
  }
  // Paper fallback: when delta is infeasible, relax in +10% increments.
  double delta = problem.migration_limit;
  SolveResult last;
  while (delta <= 1.0 + kEps) {
    last = SolveOnce(problem, options, delta);
    if (last.feasible) {
      return last;
    }
    delta += 0.10;
    last.note += " (relaxing delta to " + std::to_string(delta) + ")";
  }
  return last;
}

}  // namespace assign
