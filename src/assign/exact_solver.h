// Exact branch-and-bound solver for small assignment problems.
//
// Plays the role CPLEX plays in the paper: ground truth the heuristic is
// measured against. Exponential — use only for instances of roughly
// <= 10 VIPs x 8 instances (the tests do exactly that).

#ifndef SRC_ASSIGN_EXACT_SOLVER_H_
#define SRC_ASSIGN_EXACT_SOLVER_H_

#include <cstdint>

#include "src/assign/problem.h"

namespace assign {

struct ExactResult {
  bool feasible = false;
  // True if the search ran to completion (otherwise the answer is only an
  // upper bound because the node budget was exhausted).
  bool proven_optimal = false;
  Assignment assignment;
  int instances_used = 0;
  std::uint64_t nodes_explored = 0;
};

class ExactSolver {
 public:
  explicit ExactSolver(std::uint64_t node_budget = 5'000'000) : node_budget_(node_budget) {}

  ExactResult Solve(const Problem& problem) const;

 private:
  std::uint64_t node_budget_;
};

}  // namespace assign

#endif  // SRC_ASSIGN_EXACT_SOLVER_H_
