// Update planning between two assignment rounds (paper §4.5, Fig 16).
//
// Quantifies what a VIP-mapping change does to the running system: which
// (VIP, instance) pairs are added/removed, what fraction of flows migrate,
// and which instances are transiently overloaded while the muxes converge.

#ifndef SRC_ASSIGN_UPDATE_PLANNER_H_
#define SRC_ASSIGN_UPDATE_PLANNER_H_

#include <vector>

#include "src/assign/problem.h"

namespace assign {

struct VipDelta {
  int vip_id = 0;
  std::vector<int> added_instances;
  std::vector<int> removed_instances;
};

struct UpdatePlan {
  std::vector<VipDelta> deltas;
  // Fraction of total traffic whose flows migrate (Eq 6,7 LHS).
  double migrated_fraction = 0;
  // Instances whose transient (Eq 4,5) load exceeds capacity.
  std::vector<int> overloaded_instances;
  // Instances whose steady-state load already exceeded capacity before the
  // update (the paper notes YODA-limit's residual overloads were these).
  std::vector<int> pre_overloaded_instances;
  int instances_before = 0;
  int instances_after = 0;
};

UpdatePlan PlanUpdate(const Problem& p, const Assignment& old_assignment,
                      const Assignment& new_assignment);

}  // namespace assign

#endif  // SRC_ASSIGN_UPDATE_PLANNER_H_
