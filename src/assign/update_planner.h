// Update planning between two assignment rounds (paper §4.5, Fig 16).
//
// Quantifies what a VIP-mapping change does to the running system: which
// (VIP, instance) pairs are added/removed, what fraction of flows migrate,
// and which instances are transiently overloaded while the muxes converge —
// and linearizes the deltas into a make-before-break step sequence the
// control plane executes (rules + new pool members installed, muxes allowed
// to converge, only then old members removed and their rules scrubbed).

#ifndef SRC_ASSIGN_UPDATE_PLANNER_H_
#define SRC_ASSIGN_UPDATE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/assign/problem.h"

namespace assign {

struct VipDelta {
  int vip_id = 0;
  std::vector<int> added_instances;
  std::vector<int> removed_instances;
};

struct UpdatePlan {
  std::vector<VipDelta> deltas;
  // Fraction of total traffic whose flows migrate (Eq 6,7 LHS).
  double migrated_fraction = 0;
  // Instances whose transient (Eq 4,5) load exceeds capacity.
  std::vector<int> overloaded_instances;
  // Instances whose steady-state load already exceeded capacity before the
  // update (the paper notes YODA-limit's residual overloads were these).
  std::vector<int> pre_overloaded_instances;
  int instances_before = 0;
  int instances_after = 0;
};

UpdatePlan PlanUpdate(const Problem& p, const Assignment& old_assignment,
                      const Assignment& new_assignment);

// --- execution ordering (make-before-break) ---
//
// A delta only says WHAT changes; ExecutionOrder says in WHICH ORDER it is
// safe to apply while traffic flows. The contract:
//   1. kInstallRules always precedes kAddPoolMember for the same
//      (vip, instance): an instance never receives VIP traffic it has no
//      rules for (§5.2 ordering).
//   2. Every add step precedes the single kAwaitConvergence barrier, and
//      every remove step follows it: while the (non-atomic, staggered) mux
//      updates converge, old and new members both serve, so no mux ever
//      routes to an empty or rule-less pool.
//   3. kRemovePoolMember precedes kScrubRules for the same (vip, instance):
//      rules outlive the last mux that could still route to the member.

enum class PlanStepKind : std::uint8_t {
  kInstallRules,      // Push the VIP's rules onto instance.
  kAddPoolMember,     // Add (vip, instance) to every mux pool.
  kAwaitConvergence,  // Barrier: wait for the staggered mux updates to land.
  kRemovePoolMember,  // Remove (vip, instance) from every mux pool.
  kScrubRules,        // Drop the VIP's rules from instance.
};

struct PlanStep {
  PlanStepKind kind = PlanStepKind::kInstallRules;
  int vip_id = 0;    // 0 for kAwaitConvergence.
  int instance = 0;  // Instance index; 0 for kAwaitConvergence.
};

// Linearizes `plan` into the make-before-break order above. The barrier is
// emitted only when the plan has both adds and removes (a pure-add or
// pure-remove plan has no transient window to wait out).
std::vector<PlanStep> ExecutionOrder(const UpdatePlan& plan);

// True iff `steps` honours the ordering contract (used by property tests and
// the actuator's debug audit).
bool IsMakeBeforeBreak(const std::vector<PlanStep>& steps);

}  // namespace assign

#endif  // SRC_ASSIGN_UPDATE_PLANNER_H_
