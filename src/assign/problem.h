// VIP -> Yoda-instance assignment problem (paper §4.4, Table 2 / Fig 7).
//
//   minimize   number of Yoda instances used
//   subject to
//     Eq 1: per-instance traffic after any f_v failures fits capacity:
//           sum_{v on y} t_v / (n_v - f_v) <= T_y
//     Eq 2: per-instance rule memory: sum_{v on y} r_v <= R_y
//     Eq 3: VIP v is assigned to exactly n_v instances
//     Eq 4,5 (update round): transient traffic under the union of old and
//           new mappings fits capacity
//     Eq 6,7 (update round): fraction of connections migrated <= delta
//
// All solvers speak this Problem/Assignment vocabulary; the Validator checks
// any proposed Assignment against the constraints independently of how it
// was produced.

#ifndef SRC_ASSIGN_PROBLEM_H_
#define SRC_ASSIGN_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace assign {

struct VipSpec {
  int id = 0;
  double traffic = 0;  // t_v, in instance-capacity units (e.g. req/s).
  int rules = 0;       // r_v.
  int replicas = 1;    // n_v: number of instances this VIP must be on.
  int failures = 0;    // f_v = n_v * o_v: failures to tolerate without overload.

  // Per-instance traffic share once f_v replicas have failed.
  double ShareAfterFailures() const {
    const int survivors = replicas - failures;
    return traffic / static_cast<double>(survivors > 0 ? survivors : 1);
  }
};

struct Problem {
  std::vector<VipSpec> vips;
  int max_instances = 0;             // |Y|.
  double traffic_capacity = 1.0;     // T_y.
  int rule_capacity = 2000;          // R_y (paper: 2K rules for 5 ms target).
  // Migration budget for update rounds (Eq 6,7): max fraction of total
  // traffic whose flows may move between instances. <0 disables.
  double migration_limit = -1.0;

  double TotalTraffic() const;
  int TotalRules() const;
  std::string Summary() const;
};

// assignment[v] = sorted list of instance indices (0-based) hosting VIP v.
struct Assignment {
  std::vector<std::vector<int>> vip_instances;

  // Instances with at least one VIP.
  int UsedInstanceCount() const;
  std::vector<int> UsedInstances() const;

  // Per-instance post-failure traffic load (Eq 1 LHS).
  std::vector<double> InstanceLoads(const Problem& p) const;
  // Per-instance rule counts (Eq 2 LHS).
  std::vector<int> InstanceRules(const Problem& p) const;

  bool operator==(const Assignment& o) const { return vip_instances == o.vip_instances; }
};

// The all-to-all baseline (§4.4): every VIP on every one of `instances`
// instances. Used as the reference point in Fig 16(b,c).
Assignment AllToAll(const Problem& p, int instances);

// Fewest instances any scheme could use: total post-failure traffic divided
// by per-instance capacity (the paper's reference line in Fig 16(c)).
int MinInstancesByTraffic(const Problem& p);

}  // namespace assign

#endif  // SRC_ASSIGN_PROBLEM_H_
