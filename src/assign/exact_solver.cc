#include "src/assign/exact_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace assign {
namespace {

constexpr double kEps = 1e-9;

struct SearchState {
  const Problem* p = nullptr;
  std::uint64_t node_budget = 0;
  std::uint64_t nodes = 0;
  int best_count = 0;  // Best (smallest) used-instance count found.
  bool found = false;
  bool budget_exceeded = false;
  Assignment best;
  Assignment current;
  std::vector<double> load;
  std::vector<int> rules;
  std::vector<bool> used;
  std::vector<std::size_t> order;  // VIPs, hardest first.

  int UsedCount() const {
    return static_cast<int>(std::count(used.begin(), used.end(), true));
  }

  void ChooseReplicas(std::size_t oi, int slot, int min_next, std::vector<int>* chosen);
  void NextVip(std::size_t oi);
};

void SearchState::NextVip(std::size_t oi) {
  if (budget_exceeded) {
    return;
  }
  if (++nodes > node_budget) {
    budget_exceeded = true;
    return;
  }
  if (oi == order.size()) {
    const int count = UsedCount();
    if (!found || count < best_count) {
      found = true;
      best_count = count;
      best = current;
    }
    return;
  }
  if (found && UsedCount() >= best_count) {
    return;  // Prune: cannot improve.
  }
  std::vector<int> chosen;
  ChooseReplicas(oi, 0, 0, &chosen);
}

void SearchState::ChooseReplicas(std::size_t oi, int slot, int min_next,
                                 std::vector<int>* chosen) {
  if (budget_exceeded) {
    return;
  }
  const std::size_t v = order[oi];
  const VipSpec& vip = p->vips[v];
  if (slot == vip.replicas) {
    current.vip_instances[v] = *chosen;
    NextVip(oi + 1);
    current.vip_instances[v].clear();
    return;
  }
  const double fail_share = vip.ShareAfterFailures();
  // Symmetry breaking: replica indices increase, and a "fresh" instance may
  // only be the lowest-numbered unused one.
  int first_unused = -1;
  for (std::size_t y = 0; y < used.size(); ++y) {
    if (!used[y]) {
      first_unused = static_cast<int>(y);
      break;
    }
  }
  for (int y = min_next; y < static_cast<int>(used.size()); ++y) {
    const auto yi = static_cast<std::size_t>(y);
    if (!used[yi] && y != first_unused) {
      continue;  // All unused instances are interchangeable.
    }
    if (load[yi] + fail_share > p->traffic_capacity + kEps) {
      continue;
    }
    if (rules[yi] + vip.rules > p->rule_capacity) {
      continue;
    }
    const bool was_used = used[yi];
    if (!was_used && found && UsedCount() + 1 >= best_count) {
      continue;  // Opening another instance cannot beat the incumbent.
    }
    load[yi] += fail_share;
    rules[yi] += vip.rules;
    used[yi] = true;
    chosen->push_back(y);
    ChooseReplicas(oi, slot + 1, y + 1, chosen);
    chosen->pop_back();
    load[yi] -= fail_share;
    rules[yi] -= vip.rules;
    used[yi] = was_used;
  }
}

}  // namespace

ExactResult ExactSolver::Solve(const Problem& problem) const {
  ExactResult result;
  const int universe = problem.max_instances > 0
                           ? problem.max_instances
                           : static_cast<int>(problem.vips.size()) * 4 + 4;
  SearchState st;
  st.p = &problem;
  st.node_budget = node_budget_;
  st.load.assign(static_cast<std::size_t>(universe), 0.0);
  st.rules.assign(static_cast<std::size_t>(universe), 0);
  st.used.assign(static_cast<std::size_t>(universe), false);
  st.current.vip_instances.assign(problem.vips.size(), {});
  st.order.resize(problem.vips.size());
  std::iota(st.order.begin(), st.order.end(), 0);
  std::sort(st.order.begin(), st.order.end(), [&problem](std::size_t a, std::size_t b) {
    return problem.vips[a].ShareAfterFailures() > problem.vips[b].ShareAfterFailures();
  });
  for (const VipSpec& v : problem.vips) {
    if (v.failures >= v.replicas) {
      return result;  // Unsatisfiable.
    }
  }

  st.NextVip(0);

  result.feasible = st.found;
  result.proven_optimal = st.found && !st.budget_exceeded;
  result.nodes_explored = st.nodes;
  if (st.found) {
    result.assignment = st.best;
    result.instances_used = st.best_count;
  }
  return result;
}

}  // namespace assign
