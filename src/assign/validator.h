// Independent constraint checker for assignments (Eq 1-7 of Fig 7).
//
// Solvers are validated against this, never against themselves: every test
// and every bench run passes its solver output through the Validator.

#ifndef SRC_ASSIGN_VALIDATOR_H_
#define SRC_ASSIGN_VALIDATOR_H_

#include <string>
#include <vector>

#include "src/assign/problem.h"

namespace assign {

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> violations;

  void Violate(std::string msg) {
    ok = false;
    violations.push_back(std::move(msg));
  }
};

// Checks Eq 1 (post-failure traffic), Eq 2 (rules), Eq 3 (replica counts)
// and structural sanity (indices in range, no duplicate instance per VIP).
ValidationResult Validate(const Problem& p, const Assignment& a);

// Additionally checks the update-round constraints against `old_assignment`:
// Eq 4,5 (transient traffic: each instance carries max(old, new) share per
// VIP during the non-atomic switch) and Eq 6,7 (migrated traffic fraction
// <= p.migration_limit, when the limit is enabled).
ValidationResult ValidateUpdate(const Problem& p, const Assignment& old_assignment,
                                const Assignment& new_assignment);

// Fraction of total traffic whose flows migrate between instances when
// moving from `from` to `to` (the Eq 6,7 left-hand side). A VIP's traffic is
// assumed evenly spread over its old replicas; each replica it loses
// migrates t_v / n_v_old worth of connections.
double MigratedTrafficFraction(const Problem& p, const Assignment& from, const Assignment& to);

// Per-instance transient load during a non-atomic update: for each VIP the
// instance carries the max of its old and new share (Eq 4,5 LHS).
std::vector<double> TransientLoads(const Problem& p, const Assignment& old_assignment,
                                   const Assignment& new_assignment);

}  // namespace assign

#endif  // SRC_ASSIGN_VALIDATOR_H_
