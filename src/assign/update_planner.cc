#include "src/assign/update_planner.h"

#include <algorithm>
#include <set>

#include "src/assign/validator.h"

namespace assign {

UpdatePlan PlanUpdate(const Problem& p, const Assignment& old_assignment,
                      const Assignment& new_assignment) {
  UpdatePlan plan;
  plan.instances_before = old_assignment.UsedInstanceCount();
  plan.instances_after = new_assignment.UsedInstanceCount();

  for (std::size_t v = 0; v < p.vips.size(); ++v) {
    std::set<int> old_set;
    std::set<int> new_set;
    if (v < old_assignment.vip_instances.size()) {
      old_set.insert(old_assignment.vip_instances[v].begin(),
                     old_assignment.vip_instances[v].end());
    }
    if (v < new_assignment.vip_instances.size()) {
      new_set.insert(new_assignment.vip_instances[v].begin(),
                     new_assignment.vip_instances[v].end());
    }
    VipDelta delta;
    delta.vip_id = p.vips[v].id;
    std::set_difference(new_set.begin(), new_set.end(), old_set.begin(), old_set.end(),
                        std::back_inserter(delta.added_instances));
    std::set_difference(old_set.begin(), old_set.end(), new_set.begin(), new_set.end(),
                        std::back_inserter(delta.removed_instances));
    if (!delta.added_instances.empty() || !delta.removed_instances.empty()) {
      plan.deltas.push_back(std::move(delta));
    }
  }

  plan.migrated_fraction = MigratedTrafficFraction(p, old_assignment, new_assignment);

  const std::vector<double> transient = TransientLoads(p, old_assignment, new_assignment);
  for (std::size_t y = 0; y < transient.size(); ++y) {
    if (transient[y] > p.traffic_capacity + 1e-9) {
      plan.overloaded_instances.push_back(static_cast<int>(y));
    }
  }
  const std::vector<double> pre_loads = old_assignment.InstanceLoads(p);
  for (std::size_t y = 0; y < pre_loads.size(); ++y) {
    if (pre_loads[y] > p.traffic_capacity + 1e-9) {
      plan.pre_overloaded_instances.push_back(static_cast<int>(y));
    }
  }
  return plan;
}

}  // namespace assign
