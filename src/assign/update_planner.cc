#include "src/assign/update_planner.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/assign/validator.h"

namespace assign {

UpdatePlan PlanUpdate(const Problem& p, const Assignment& old_assignment,
                      const Assignment& new_assignment) {
  UpdatePlan plan;
  plan.instances_before = old_assignment.UsedInstanceCount();
  plan.instances_after = new_assignment.UsedInstanceCount();

  for (std::size_t v = 0; v < p.vips.size(); ++v) {
    std::set<int> old_set;
    std::set<int> new_set;
    if (v < old_assignment.vip_instances.size()) {
      old_set.insert(old_assignment.vip_instances[v].begin(),
                     old_assignment.vip_instances[v].end());
    }
    if (v < new_assignment.vip_instances.size()) {
      new_set.insert(new_assignment.vip_instances[v].begin(),
                     new_assignment.vip_instances[v].end());
    }
    VipDelta delta;
    delta.vip_id = p.vips[v].id;
    std::set_difference(new_set.begin(), new_set.end(), old_set.begin(), old_set.end(),
                        std::back_inserter(delta.added_instances));
    std::set_difference(old_set.begin(), old_set.end(), new_set.begin(), new_set.end(),
                        std::back_inserter(delta.removed_instances));
    if (!delta.added_instances.empty() || !delta.removed_instances.empty()) {
      plan.deltas.push_back(std::move(delta));
    }
  }

  plan.migrated_fraction = MigratedTrafficFraction(p, old_assignment, new_assignment);

  const std::vector<double> transient = TransientLoads(p, old_assignment, new_assignment);
  for (std::size_t y = 0; y < transient.size(); ++y) {
    if (transient[y] > p.traffic_capacity + 1e-9) {
      plan.overloaded_instances.push_back(static_cast<int>(y));
    }
  }
  const std::vector<double> pre_loads = old_assignment.InstanceLoads(p);
  for (std::size_t y = 0; y < pre_loads.size(); ++y) {
    if (pre_loads[y] > p.traffic_capacity + 1e-9) {
      plan.pre_overloaded_instances.push_back(static_cast<int>(y));
    }
  }
  return plan;
}

std::vector<PlanStep> ExecutionOrder(const UpdatePlan& plan) {
  std::vector<PlanStep> steps;
  bool any_add = false;
  bool any_remove = false;
  for (const VipDelta& d : plan.deltas) {
    any_add = any_add || !d.added_instances.empty();
    any_remove = any_remove || !d.removed_instances.empty();
  }
  // Make phase: rules land on an instance before any mux can route to it.
  for (const VipDelta& d : plan.deltas) {
    for (int y : d.added_instances) {
      steps.push_back({PlanStepKind::kInstallRules, d.vip_id, y});
      steps.push_back({PlanStepKind::kAddPoolMember, d.vip_id, y});
    }
  }
  if (any_add && any_remove) {
    steps.push_back({PlanStepKind::kAwaitConvergence, 0, 0});
  }
  // Break phase: old members leave the pools before their rules go.
  for (const VipDelta& d : plan.deltas) {
    for (int y : d.removed_instances) {
      steps.push_back({PlanStepKind::kRemovePoolMember, d.vip_id, y});
      steps.push_back({PlanStepKind::kScrubRules, d.vip_id, y});
    }
  }
  return steps;
}

bool IsMakeBeforeBreak(const std::vector<PlanStep>& steps) {
  bool any_add = false;
  bool any_remove = false;
  bool seen_barrier = false;
  // (vip, instance) pairs whose rules are installed / pools still reference.
  std::set<std::pair<int, int>> rules_installed;
  std::set<std::pair<int, int>> pooled;
  for (const PlanStep& s : steps) {
    const std::pair<int, int> key{s.vip_id, s.instance};
    switch (s.kind) {
      case PlanStepKind::kInstallRules:
        rules_installed.insert(key);
        any_add = true;
        break;
      case PlanStepKind::kAddPoolMember:
        if (seen_barrier || !rules_installed.contains(key)) {
          return false;  // Add after the barrier, or pooled before rules.
        }
        pooled.insert(key);
        any_add = true;
        break;
      case PlanStepKind::kAwaitConvergence:
        if (seen_barrier) {
          return false;  // At most one barrier.
        }
        seen_barrier = true;
        break;
      case PlanStepKind::kRemovePoolMember:
        if (any_add && !seen_barrier) {
          return false;  // Remove may not overlap the un-converged adds.
        }
        pooled.erase(key);
        any_remove = true;
        break;
      case PlanStepKind::kScrubRules:
        if (pooled.contains(key)) {
          return false;  // Scrubbing rules a pool still routes to.
        }
        any_remove = true;
        break;
    }
  }
  if (seen_barrier && !(any_add && any_remove)) {
    return false;  // A barrier with nothing to fence is malformed.
  }
  return true;
}

}  // namespace assign
