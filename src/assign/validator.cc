#include "src/assign/validator.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace assign {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

ValidationResult Validate(const Problem& p, const Assignment& a) {
  ValidationResult r;
  if (a.vip_instances.size() != p.vips.size()) {
    r.Violate("assignment has " + std::to_string(a.vip_instances.size()) + " VIP entries, want " +
              std::to_string(p.vips.size()));
    return r;
  }
  for (std::size_t v = 0; v < p.vips.size(); ++v) {
    const VipSpec& vip = p.vips[v];
    const auto& insts = a.vip_instances[v];
    std::set<int> uniq(insts.begin(), insts.end());
    if (uniq.size() != insts.size()) {
      r.Violate("vip " + std::to_string(vip.id) + ": duplicate instance assignment");
    }
    for (int y : insts) {
      if (y < 0 || (p.max_instances > 0 && y >= p.max_instances)) {
        r.Violate("vip " + std::to_string(vip.id) + ": instance index " + std::to_string(y) +
                  " out of range");
      }
    }
    if (static_cast<int>(insts.size()) != vip.replicas) {
      r.Violate("vip " + std::to_string(vip.id) + ": assigned to " +
                std::to_string(insts.size()) + " instances, n_v=" +
                std::to_string(vip.replicas) + " (Eq 3)");
    }
    if (vip.failures >= vip.replicas) {
      r.Violate("vip " + std::to_string(vip.id) + ": f_v >= n_v is unsatisfiable");
    }
  }

  const std::vector<double> loads = a.InstanceLoads(p);
  for (std::size_t y = 0; y < loads.size(); ++y) {
    if (loads[y] > p.traffic_capacity + kEps) {
      std::ostringstream os;
      os << "instance " << y << ": post-failure traffic " << loads[y] << " > T_y "
         << p.traffic_capacity << " (Eq 1)";
      r.Violate(os.str());
    }
  }
  const std::vector<int> rules = a.InstanceRules(p);
  for (std::size_t y = 0; y < rules.size(); ++y) {
    if (rules[y] > p.rule_capacity) {
      r.Violate("instance " + std::to_string(y) + ": rules " + std::to_string(rules[y]) +
                " > R_y " + std::to_string(p.rule_capacity) + " (Eq 2)");
    }
  }
  return r;
}

double MigratedTrafficFraction(const Problem& p, const Assignment& from, const Assignment& to) {
  double migrated = 0;
  double total = 0;
  for (std::size_t v = 0; v < p.vips.size() && v < from.vip_instances.size() &&
                          v < to.vip_instances.size();
       ++v) {
    const VipSpec& vip = p.vips[v];
    total += vip.traffic;
    const auto& old_insts = from.vip_instances[v];
    if (old_insts.empty()) {
      continue;
    }
    const std::set<int> new_set(to.vip_instances[v].begin(), to.vip_instances[v].end());
    int lost = 0;
    for (int y : old_insts) {
      if (!new_set.contains(y)) {
        ++lost;
      }
    }
    migrated += vip.traffic * static_cast<double>(lost) / static_cast<double>(old_insts.size());
  }
  return total > 0 ? migrated / total : 0;
}

std::vector<double> TransientLoads(const Problem& p, const Assignment& old_assignment,
                                   const Assignment& new_assignment) {
  int max_inst = 0;
  auto scan = [&max_inst](const Assignment& a) {
    for (const auto& insts : a.vip_instances) {
      for (int y : insts) {
        max_inst = std::max(max_inst, y + 1);
      }
    }
  };
  scan(old_assignment);
  scan(new_assignment);
  std::vector<double> loads(static_cast<std::size_t>(max_inst), 0.0);
  // During the non-atomic switch an instance can receive a VIP's traffic
  // under whichever mapping a not-yet-updated mux still holds, so it must
  // budget max(old nominal share, new nominal share) per VIP (Eq 4,5). The
  // nominal share is t_v / n_v — smaller than the post-failure share Eq 1
  // reserves, which is how the failure headroom absorbs the transient.
  for (std::size_t v = 0; v < p.vips.size(); ++v) {
    const double traffic = p.vips[v].traffic;
    std::set<int> old_set;
    std::set<int> new_set;
    if (v < old_assignment.vip_instances.size()) {
      old_set.insert(old_assignment.vip_instances[v].begin(),
                     old_assignment.vip_instances[v].end());
    }
    if (v < new_assignment.vip_instances.size()) {
      new_set.insert(new_assignment.vip_instances[v].begin(),
                     new_assignment.vip_instances[v].end());
    }
    const double old_share = old_set.empty() ? 0 : traffic / static_cast<double>(old_set.size());
    const double new_share = new_set.empty() ? 0 : traffic / static_cast<double>(new_set.size());
    std::set<int> union_set = old_set;
    union_set.insert(new_set.begin(), new_set.end());
    for (int y : union_set) {
      const double from_old = old_set.contains(y) ? old_share : 0;
      const double from_new = new_set.contains(y) ? new_share : 0;
      loads[static_cast<std::size_t>(y)] += std::max(from_old, from_new);
    }
  }
  return loads;
}

ValidationResult ValidateUpdate(const Problem& p, const Assignment& old_assignment,
                                const Assignment& new_assignment) {
  ValidationResult r = Validate(p, new_assignment);
  const std::vector<double> transient = TransientLoads(p, old_assignment, new_assignment);
  for (std::size_t y = 0; y < transient.size(); ++y) {
    if (transient[y] > p.traffic_capacity + kEps) {
      std::ostringstream os;
      os << "instance " << y << ": transient traffic " << transient[y] << " > T_y "
         << p.traffic_capacity << " (Eq 4,5)";
      r.Violate(os.str());
    }
  }
  if (p.migration_limit >= 0) {
    const double frac = MigratedTrafficFraction(p, old_assignment, new_assignment);
    if (frac > p.migration_limit + kEps) {
      std::ostringstream os;
      os << "migrated traffic fraction " << frac << " > delta " << p.migration_limit
         << " (Eq 6,7)";
      r.Violate(os.str());
    }
  }
  return r;
}

}  // namespace assign
