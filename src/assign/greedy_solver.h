// Heuristic solver for the VIP assignment ILP.
//
// The paper solves the ILP with CPLEX at a 10% optimality gap; this repo has
// no external solver, so we use first-fit-decreasing packing plus an eviction
// local search, which plays the same role (and is validated against the
// exact branch-and-bound solver on small instances in the tests).
//
// For update rounds (YODA-limit in Fig 16) the solver additionally honours
// the transient-traffic constraint (Eq 4,5) and a migration budget (Eq 6,7),
// relaxing delta in +10% steps when infeasible — exactly the fallback the
// paper describes ("we increased the limit by increments of 10%").

#ifndef SRC_ASSIGN_GREEDY_SOLVER_H_
#define SRC_ASSIGN_GREEDY_SOLVER_H_

#include <optional>
#include <string>

#include "src/assign/problem.h"

namespace assign {

struct SolveOptions {
  // Previous round's assignment; enables the update constraints.
  const Assignment* previous = nullptr;
  // Enforce Eq 4,5 (transient traffic) during placement. Only meaningful
  // with `previous`; YODA-no-limit runs with this off.
  bool limit_transient = false;
  // Enforce Eq 6,7 (migration budget p.migration_limit) during placement.
  bool limit_migration = false;
  // Run the instance-eviction local search after the greedy pass.
  bool local_search = true;
};

struct SolveResult {
  bool feasible = false;
  Assignment assignment;
  int instances_used = 0;
  // Migration budget actually used (after any relaxation), or -1 if unused.
  double effective_migration_limit = -1.0;
  double migrated_fraction = 0.0;
  std::string note;
};

class GreedySolver {
 public:
  SolveResult Solve(const Problem& problem, const SolveOptions& options = {}) const;

 private:
  SolveResult SolveOnce(const Problem& problem, const SolveOptions& options,
                        double migration_limit) const;
};

}  // namespace assign

#endif  // SRC_ASSIGN_GREEDY_SOLVER_H_
