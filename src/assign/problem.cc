#include "src/assign/problem.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace assign {

double Problem::TotalTraffic() const {
  return std::accumulate(vips.begin(), vips.end(), 0.0,
                         [](double acc, const VipSpec& v) { return acc + v.traffic; });
}

int Problem::TotalRules() const {
  return std::accumulate(vips.begin(), vips.end(), 0,
                         [](int acc, const VipSpec& v) { return acc + v.rules; });
}

std::string Problem::Summary() const {
  std::ostringstream os;
  os << vips.size() << " VIPs, total traffic " << TotalTraffic() << ", total rules "
     << TotalRules() << ", T_y=" << traffic_capacity << ", R_y=" << rule_capacity;
  return os.str();
}

int Assignment::UsedInstanceCount() const { return static_cast<int>(UsedInstances().size()); }

std::vector<int> Assignment::UsedInstances() const {
  std::vector<int> used;
  for (const auto& insts : vip_instances) {
    used.insert(used.end(), insts.begin(), insts.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

std::vector<double> Assignment::InstanceLoads(const Problem& p) const {
  int max_inst = 0;
  for (const auto& insts : vip_instances) {
    for (int y : insts) {
      max_inst = std::max(max_inst, y + 1);
    }
  }
  std::vector<double> loads(static_cast<std::size_t>(max_inst), 0.0);
  for (std::size_t v = 0; v < vip_instances.size(); ++v) {
    const double share = p.vips[v].ShareAfterFailures();
    for (int y : vip_instances[v]) {
      loads[static_cast<std::size_t>(y)] += share;
    }
  }
  return loads;
}

std::vector<int> Assignment::InstanceRules(const Problem& p) const {
  int max_inst = 0;
  for (const auto& insts : vip_instances) {
    for (int y : insts) {
      max_inst = std::max(max_inst, y + 1);
    }
  }
  std::vector<int> rules(static_cast<std::size_t>(max_inst), 0);
  for (std::size_t v = 0; v < vip_instances.size(); ++v) {
    for (int y : vip_instances[v]) {
      rules[static_cast<std::size_t>(y)] += p.vips[v].rules;
    }
  }
  return rules;
}

Assignment AllToAll(const Problem& p, int instances) {
  Assignment a;
  std::vector<int> all(static_cast<std::size_t>(instances));
  std::iota(all.begin(), all.end(), 0);
  a.vip_instances.assign(p.vips.size(), all);
  return a;
}

int MinInstancesByTraffic(const Problem& p) {
  double total = 0;
  for (const VipSpec& v : p.vips) {
    total += v.traffic;
  }
  return static_cast<int>(std::ceil(total / p.traffic_capacity));
}

}  // namespace assign
