#include "src/core/leader_lease.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace yoda {
namespace {

constexpr const char* kLeaseKey = "ctl/lease";

}  // namespace

std::string EncodeLease(const LeaseRecord& lease) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "holder=%u token=%" PRIu64 " expires=%" PRId64,
                lease.holder, lease.token, static_cast<std::int64_t>(lease.expires));
  return buf;
}

std::optional<LeaseRecord> ParseLease(const std::string& value) {
  LeaseRecord lease;
  std::uint32_t holder = 0;
  std::uint64_t token = 0;
  std::int64_t expires = 0;
  if (std::sscanf(value.c_str(), "holder=%u token=%" SCNu64 " expires=%" SCNd64, &holder,
                  &token, &expires) != 3) {
    return std::nullopt;
  }
  lease.holder = holder;
  lease.token = token;
  lease.expires = static_cast<sim::Time>(expires);
  return lease;
}

LeaderLease::LeaderLease(sim::Simulator* simulator, kv::ReplicatingClient* client,
                         LeaderLeaseConfig config,
                         std::function<void(std::uint64_t)> on_acquired,
                         std::function<void()> on_lost)
    : sim_(simulator),
      kv_(client),
      cfg_(config),
      on_acquired_(std::move(on_acquired)),
      on_lost_(std::move(on_lost)) {}

void LeaderLease::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++gen_;
  // First acquisition attempt is staggered per replica too, so simultaneously
  // booted standbys do not all CAS in the same instant and all lose.
  ArmNext(gen_, static_cast<sim::Duration>(cfg_.self % 5) * sim::Msec(1));
}

void LeaderLease::Stop() {
  running_ = false;
  ++gen_;  // Orphans every parked timer and in-flight KV callback.
  is_leader_ = false;
  token_ = 0;
  held_raw_.clear();
}

void LeaderLease::ArmNext(std::uint64_t gen, sim::Duration delay) {
  sim_->After(
      delay, [this, gen]() { Tick(gen); }, /*daemon=*/true);
}

void LeaderLease::Tick(std::uint64_t gen) {
  if (!running_ || gen != gen_) {
    return;
  }
  if (is_leader_) {
    Renew(gen);
    return;
  }
  kv_->Get(kLeaseKey, [this, gen](std::optional<std::string> raw) {
    if (!running_ || gen != gen_) {
      return;
    }
    TryAcquire(gen, std::move(raw));
  });
}

void LeaderLease::TryAcquire(std::uint64_t gen, std::optional<std::string> current_raw) {
  const std::optional<LeaseRecord> current =
      current_raw ? ParseLease(*current_raw) : std::nullopt;
  if (current && current->expires > sim_->now()) {
    // Somebody holds a live lease; poll again after it could have expired.
    const sim::Duration until = current->expires - sim_->now();
    const sim::Duration jitter = static_cast<sim::Duration>(cfg_.self % 5) * sim::Msec(3);
    ArmNext(gen, std::max(cfg_.acquire_interval, until) + jitter);
    return;
  }
  LeaseRecord next;
  next.holder = cfg_.self;
  next.token = (current ? current->token : 0) + 1;
  next.expires = sim_->now() + cfg_.ttl;
  std::string value = EncodeLease(next);
  kv_->Cas(kLeaseKey, std::move(current_raw), value,
           [this, gen, next, value](bool won) {
             if (!running_ || gen != gen_) {
               return;
             }
             if (!won) {
               const sim::Duration jitter =
                   static_cast<sim::Duration>(cfg_.self % 5) * sim::Msec(3);
               ArmNext(gen, cfg_.acquire_interval + jitter);
               return;
             }
             is_leader_ = true;
             token_ = next.token;
             held_raw_ = value;
             Note(obs::EventType::kLeaseAcquired, token_);
             if (on_acquired_) {
               on_acquired_(token_);
             }
             ArmNext(gen, cfg_.renew_interval);
           });
}

void LeaderLease::Renew(std::uint64_t gen) {
  LeaseRecord next;
  next.holder = cfg_.self;
  next.token = token_;  // Renewal never changes the fencing token.
  next.expires = sim_->now() + cfg_.ttl;
  std::string value = EncodeLease(next);
  kv_->Cas(kLeaseKey, held_raw_, value, [this, gen, value](bool renewed) {
    if (!running_ || gen != gen_) {
      return;
    }
    if (!renewed) {
      // Deposed, or cut off from a replica majority: either way we may no
      // longer act. Step down now and go back to contending.
      StepDown();
      ArmNext(gen, cfg_.acquire_interval);
      return;
    }
    held_raw_ = value;
    Note(obs::EventType::kLeaseRenewed, token_);
    ArmNext(gen, cfg_.renew_interval);
  });
}

void LeaderLease::StepDown() {
  const std::uint64_t lost = token_;
  is_leader_ = false;
  token_ = 0;
  held_raw_.clear();
  Note(obs::EventType::kLeaseLost, lost);
  if (on_lost_) {
    on_lost_();
  }
}

void LeaderLease::Note(obs::EventType type, std::uint64_t detail) {
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->RecordSystem(sim_->now(), type, cfg_.self, detail);
  }
}

}  // namespace yoda
