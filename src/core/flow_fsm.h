// Per-flow finite state machine for the L7 data-plane pipeline.
//
// One named phase replaces the implicit flag soup (`storage_a_done`,
// `server_syn_sent`, `established`, `lookup_pending`, `cleanup_scheduled`)
// that used to be scattered through the monolithic instance. The legal
// transition set is an explicit static table:
//
//     SynReceived ──storage-a──> SynAckSent ────header──> Selecting
//          │                      (non-TLS)                   │
//          └──storage-a──> TlsHandshake ──decrypted req──────>│
//                             (TLS VIP)                       v
//     TakeoverLookup ──adopt conn-phase──> SynAckSent    ServerSynSent
//          │                │ (TLS VIP)──> TlsHandshake       │ SYN-ACK
//          └──adopt tunneling─────────────┐                   v
//                                         v              StorageBWait
//        Established <──storage-b────────────────────────────┘
//          │      ^ └──HTTP/1.1 re-switch──> ServerSynSent
//          v      │
//       Draining  (mirror promote stays Established)
//
// plus `Closed` reachable from every phase (RST, reset, VIP removal, idle
// GC). Transitions are asserted: internal edges use `Transition` (aborts on
// a table violation), packet-driven edges use `TryTransition`, whose failure
// the pipeline routes to the explicit kFlowReset path instead of UB.

#ifndef SRC_CORE_FLOW_FSM_H_
#define SRC_CORE_FLOW_FSM_H_

#include <cassert>
#include <cstdint>

namespace yoda {

enum class FlowPhase : std::uint8_t {
  kSynReceived = 0,  // Client SYN captured; storage-a write in flight.
  kSynAckSent,       // storage-a acked, SYN-ACK out; assembling the header.
  kTlsHandshake,     // TLS VIP: deterministic handshake / decrypting request.
  kSelecting,        // Header complete; rule scan + selection delay running.
  kServerSynSent,    // VIP-sourced SYN emitted; awaiting server SYN-ACK.
  kStorageBWait,     // Server SYN-ACK in hand; storage-b write in flight.
  kEstablished,      // Tunneling active (storage-b acked, server ACKed).
  kDraining,         // Both FINs tunneled; delayed cleanup armed.
  kTakeoverLookup,   // Unknown-flow packet; TCPStore takeover lookup pending.
  kClosed,           // Terminal: local state dropped.
};

inline constexpr int kFlowPhaseCount = 10;

const char* FlowPhaseName(FlowPhase phase);

// True when `from -> to` is a legal edge of the static transition table.
bool FlowTransitionLegal(FlowPhase from, FlowPhase to);

class FlowFsm {
 public:
  explicit FlowFsm(FlowPhase initial = FlowPhase::kSynReceived) : phase_(initial) {}

  FlowPhase phase() const { return phase_; }

  // Packet-driven edge: moves and returns true when legal; leaves the phase
  // unchanged and returns false otherwise (the caller resets the flow).
  [[nodiscard]] bool TryTransition(FlowPhase to) {
    if (!FlowTransitionLegal(phase_, to)) {
      return false;
    }
    phase_ = to;
    return true;
  }

  // Internal edge already validated by construction: asserts legality.
  void Transition(FlowPhase to) {
    assert(FlowTransitionLegal(phase_, to));
    phase_ = to;
  }

  // --- derived predicates (the old implicit flags, now phase-backed) ---

  // storage-a landed: the flow's SYN state is (or was) in TCPStore.
  bool syn_state_stored() const {
    return phase_ != FlowPhase::kSynReceived && phase_ != FlowPhase::kTakeoverLookup;
  }
  // Still assembling the client header (TrySelect has not committed).
  bool awaiting_header() const {
    return phase_ == FlowPhase::kSynAckSent || phase_ == FlowPhase::kTlsHandshake;
  }
  // A backend has been selected (server leg exists or is being opened).
  bool selection_committed() const {
    switch (phase_) {
      case FlowPhase::kSelecting:
      case FlowPhase::kServerSynSent:
      case FlowPhase::kStorageBWait:
      case FlowPhase::kEstablished:
      case FlowPhase::kDraining:
        return true;
      default:
        return false;
    }
  }
  bool established() const {
    return phase_ == FlowPhase::kEstablished || phase_ == FlowPhase::kDraining;
  }
  bool lookup_pending() const { return phase_ == FlowPhase::kTakeoverLookup; }
  bool draining() const { return phase_ == FlowPhase::kDraining; }

 private:
  FlowPhase phase_;
};

}  // namespace yoda

#endif  // SRC_CORE_FLOW_FSM_H_
