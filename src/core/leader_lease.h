// LeaderLease: store-backed leader election for the controller replicas.
//
// The lease is a single key ("ctl/lease") in the replicated KV ring, mutated
// only through compare-and-set (ReplicatingClient::Cas, majority semantics).
// Its value carries three fields: the holder's ip, a fencing token, and an
// expiry timestamp. A contender may take the lease only when it is absent or
// expired, and MUST increment the fencing token when doing so; the holder
// renews by CAS-ing its own value forward (same token, later expiry). Because
// every transfer goes through a majority CAS, two controllers can never both
// hold valid leases with the same token, and because the token is monotone,
// the data plane (muxes, instances) can reject a deposed leader's straggling
// writes by watermark alone — see Mux::StaleToken.
//
// Failure philosophy (paper §4.4 spirit): safety over liveness. A holder
// whose renewal CAS fails — deposed OR merely cut off from a replica
// majority — steps down immediately and goes back to contending; a contender
// that cannot win keeps retrying on a per-ip staggered cadence. A stalled
// store therefore stalls reconfiguration, never forks it.

#ifndef SRC_CORE_LEADER_LEASE_H_
#define SRC_CORE_LEADER_LEASE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/kv/replicating_client.h"
#include "src/net/network.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace yoda {

// Parsed form of the lease value. Exposed for tests and ctl_dump.
struct LeaseRecord {
  net::IpAddr holder = 0;
  std::uint64_t token = 0;
  sim::Time expires = 0;
};

// "holder=<ip> token=<t> expires=<ns>" round-trip.
std::string EncodeLease(const LeaseRecord& lease);
std::optional<LeaseRecord> ParseLease(const std::string& value);

struct LeaderLeaseConfig {
  net::IpAddr self = 0;               // This controller replica's ip.
  sim::Duration ttl = sim::Msec(300);  // Lease validity from grant/renewal.
  sim::Duration renew_interval = sim::Msec(100);
  // Contender poll cadence while somebody else holds the lease. Each replica
  // adds a small ip-derived offset so contenders do not CAS in lockstep
  // (simultaneous contenders can ALL lose a majority CAS).
  sim::Duration acquire_interval = sim::Msec(50);
  obs::FlightRecorder* recorder = nullptr;  // kLeaseAcquired/Renewed/Lost.
};

class LeaderLease {
 public:
  // `on_acquired(token)` fires when this replica wins the lease;
  // `on_lost()` fires when a held lease could not be renewed (step-down).
  // Neither fires after Stop().
  LeaderLease(sim::Simulator* simulator, kv::ReplicatingClient* client,
              LeaderLeaseConfig config, std::function<void(std::uint64_t)> on_acquired,
              std::function<void()> on_lost);

  // Begins contending for the lease (idempotent).
  void Start();
  // Crash/shutdown: stop contending and renewing immediately. The lease (if
  // held) is left to expire on its own — exactly what a real crash does.
  void Stop();

  bool is_leader() const { return is_leader_; }
  std::uint64_t token() const { return token_; }

 private:
  void Tick(std::uint64_t gen);
  void ArmNext(std::uint64_t gen, sim::Duration delay);
  void TryAcquire(std::uint64_t gen, std::optional<std::string> current_raw);
  void Renew(std::uint64_t gen);
  void StepDown();
  void Note(obs::EventType type, std::uint64_t detail);

  sim::Simulator* sim_;
  kv::ReplicatingClient* kv_;
  LeaderLeaseConfig cfg_;
  std::function<void(std::uint64_t)> on_acquired_;
  std::function<void()> on_lost_;

  bool running_ = false;
  // Bumped by Start/Stop and step-down; parked callbacks from an earlier
  // generation (in-flight KV ops, armed timers) see the mismatch and die.
  std::uint64_t gen_ = 0;
  bool is_leader_ = false;
  std::uint64_t token_ = 0;
  std::string held_raw_;  // Exact value we last wrote (CAS expectation).
};

}  // namespace yoda

#endif  // SRC_CORE_LEADER_LEASE_H_
