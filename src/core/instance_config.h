// YodaInstance configuration, split into its own header so the pipeline
// stage engines can see the data-plane knobs without including the instance
// (which is wiring on top of them).

#ifndef SRC_CORE_INSTANCE_CONFIG_H_
#define SRC_CORE_INSTANCE_CONFIG_H_

#include <cstdint>

#include "src/core/cpu_model.h"
#include "src/net/packet.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/time.h"

namespace yoda {

struct YodaInstanceConfig {
  net::IpAddr ip = 0;
  CpuCosts cpu_costs = YodaUserSpaceCosts();
  double cores = 1.0;
  // Base latency of the rule scan (Fig 6 intercept); per-rule cost is in
  // CpuCosts::per_rule_scanned via the latency model below.
  sim::Duration rule_scan_base_delay = sim::Usec(300);
  sim::Duration rule_scan_per_rule_delay = sim::Nsec(900);
  // How long after both FINs a flow's state lingers before deletion.
  sim::Duration flow_cleanup_delay = sim::Sec(1);
  // Flows with no packets for this long are garbage-collected (handles
  // half-closed flows orphaned by takeovers that split the two directions
  // across instances). 0 disables.
  sim::Duration flow_idle_timeout = sim::Minutes(5);
  sim::Duration idle_scan_interval = sim::Sec(30);
  // Resend the server-side SYN if no SYN-ACK within this long.
  sim::Duration server_syn_timeout = sim::Sec(3);
  int server_syn_retries = 2;
  // A TCPStore miss during takeover is treated as recoverable (the replica
  // may be lagging or mid-restart): the lookup is re-issued up to this many
  // times with doubling backoff. Only after the final miss is the flow
  // explicitly reset toward the client (kFlowReset/kTakeoverMiss) instead of
  // silently dropped. 0 restores the drop-on-first-miss behavior.
  int takeover_retry_limit = 2;
  sim::Duration takeover_retry_backoff = sim::Msec(5);
  std::uint32_t mss = 1400;
  // Inspect client bytes on HTTP/1.1 connections and re-switch backends
  // between requests (§5.2).
  bool http11_reswitch = true;
  // Flow-table shard count (the partition seam for the future parallel
  // split; functionally invisible today).
  int flow_table_shards = 8;
  // Stateless fast path (per-VIP StoreMode::kStateless): fleet-wide key for
  // the signed SYN-cookie MAC — every instance must share it so any adopter
  // can verify a cookie minted elsewhere.
  std::uint64_t cookie_secret = 0x59eda11c00c1e5ecULL;
  // Write-behind takeover journal: how long dirty flow states may coalesce
  // before a batched flush to TCPStore. Bounds the takeover-visible staleness
  // window in stateless mode.
  sim::Duration journal_flush_interval = sim::Msec(5);
  // Observability sinks, normally the testbed-owned registry/recorder. A
  // null registry makes the instance keep a private one (counters still
  // work); a null recorder disables flow tracing.
  obs::Registry* registry = nullptr;
  obs::FlightRecorder* recorder = nullptr;
};

}  // namespace yoda

#endif  // SRC_CORE_INSTANCE_CONFIG_H_
