#include "src/core/yoda_instance.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace yoda {
namespace {

// True when this flow's client stream should be inspected for HTTP/1.1
// re-switching (keep-alive connections can carry requests for different
// backends, §5.2).
bool WantsInspection(const http::Request& req) { return req.KeepAlive(); }

}  // namespace

YodaInstance::YodaInstance(sim::Simulator* simulator, net::Network* network,
                           l4lb::L4Fabric* fabric, TcpStore* store, std::uint64_t seed,
                           YodaInstanceConfig config)
    : sim_(simulator),
      net_(network),
      fabric_(fabric),
      store_(store),
      rng_(seed),
      cfg_(config),
      cpu_(config.cpu_costs, config.cores) {
  registry_ = cfg_.registry;
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  recorder_ = cfg_.recorder;
  const obs::Labels labels{{"instance", obs::FormatIp(cfg_.ip)}};
  auto counter = [&](const char* name) { return &registry_->GetCounter(name, labels); };
  ctr_.flows_started = counter("yoda.flows_started");
  ctr_.flows_completed = counter("yoda.flows_completed");
  ctr_.takeovers_client_side = counter("yoda.takeovers_client_side");
  ctr_.takeovers_server_side = counter("yoda.takeovers_server_side");
  ctr_.takeover_misses = counter("yoda.takeover_misses");
  ctr_.takeover_retries = counter("yoda.takeover_retries");
  ctr_.packets_tunneled = counter("yoda.packets_tunneled");
  ctr_.reswitches = counter("yoda.reswitches");
  ctr_.rules_scanned_total = counter("yoda.rules_scanned_total");
  ctr_.selections = counter("yoda.selections");
  ctr_.no_backend_resets = counter("yoda.no_backend_resets");
  ctr_.dropped_unknown_vip = counter("yoda.dropped_unknown_vip");
  connection_phase_ms_ = &registry_->GetHistogram("yoda.connection_phase_ms", labels);
  net_->Attach(cfg_.ip, this);
  if (cfg_.flow_idle_timeout > 0) {
    ArmIdleScan();
  }
}

void YodaInstance::ArmIdleScan() {
  sim_->After(
      cfg_.idle_scan_interval,
      [this]() {
        IdleScan();
        ArmIdleScan();
      },
      /*daemon=*/true);
}

void YodaInstance::IdleScan() {
  if (failed_) {
    return;
  }
  std::vector<FlowKey> stale;
  for (const auto& [key, flow] : flows_) {
    if (!flow->lookup_pending && sim_->now() - flow->last_packet > cfg_.flow_idle_timeout) {
      stale.push_back(key);
    }
  }
  for (const FlowKey& key : stale) {
    CleanupFlow(key, /*remove_from_store=*/true);
  }
}

YodaInstance::~YodaInstance() = default;

YodaInstanceStats YodaInstance::stats() const {
  YodaInstanceStats s;
  s.flows_started = ctr_.flows_started->value();
  s.flows_completed = ctr_.flows_completed->value();
  s.takeovers_client_side = ctr_.takeovers_client_side->value();
  s.takeovers_server_side = ctr_.takeovers_server_side->value();
  s.takeover_misses = ctr_.takeover_misses->value();
  s.takeover_retries = ctr_.takeover_retries->value();
  s.packets_tunneled = ctr_.packets_tunneled->value();
  s.reswitches = ctr_.reswitches->value();
  s.rules_scanned_total = ctr_.rules_scanned_total->value();
  s.selections = ctr_.selections->value();
  s.no_backend_resets = ctr_.no_backend_resets->value();
  s.dropped_unknown_vip = ctr_.dropped_unknown_vip->value();
  return s;
}

YodaInstance::VipCounters& YodaInstance::VipCountersFor(net::IpAddr vip) {
  auto it = vip_counters_.find(vip);
  if (it == vip_counters_.end()) {
    const obs::Labels labels{{"instance", obs::FormatIp(cfg_.ip)},
                             {"vip", obs::FormatIp(vip)}};
    VipCounters c;
    c.new_connections = &registry_->GetCounter("yoda.vip.new_connections", labels);
    c.bytes = &registry_->GetCounter("yoda.vip.bytes", labels);
    it = vip_counters_.emplace(vip, c).first;
  }
  return it->second;
}

void YodaInstance::Trace(const FlowKey& key, obs::EventType type, std::uint64_t detail) {
  if (recorder_ != nullptr) {
    recorder_->Record(obs::FlowId{key.vip, key.vip_port, key.client_ip, key.client_port},
                      sim_->now(), type, cfg_.ip, detail);
  }
}

void YodaInstance::InstallVip(net::IpAddr vip, net::Port vip_port,
                              std::vector<rules::Rule> vip_rules) {
  VipState& state = vips_[vip];
  state.vip_port = vip_port;
  state.table.ReplaceAll(std::move(vip_rules));
  // The backend set only grows on rule updates: flows established under the
  // old policy keep their backend (§5.2), so packets from retired backends
  // must still classify as server-side traffic.
  for (const rules::Rule& r : state.table.rules()) {
    for (const rules::Backend& b : r.action.backends) {
      state.backends.insert(b.ip);
    }
  }
}

void YodaInstance::InstallVipTls(net::IpAddr vip, std::string certificate,
                                 std::uint64_t service_key) {
  vips_[vip].tls = VipTls{std::move(certificate), service_key};
}

void YodaInstance::RemoveVip(net::IpAddr vip) { vips_.erase(vip); }

int YodaInstance::RuleCount(net::IpAddr vip) const {
  auto it = vips_.find(vip);
  return it == vips_.end() ? 0 : static_cast<int>(it->second.table.size());
}

void YodaInstance::SetBackendHealth(net::IpAddr backend, bool healthy) {
  backend_health_[backend] = healthy;
}

void YodaInstance::Fail() {
  failed_ = true;
  flows_.clear();
  server_index_.clear();
  traffic_.clear();
  backend_load_.clear();
}

void YodaInstance::Recover() { failed_ = false; }

void YodaInstance::OnColdRestart() {
  Fail();
  Recover();
}

YodaInstance::VipState* YodaInstance::FindVip(net::IpAddr vip) {
  auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

YodaInstance::LocalFlow* YodaInstance::FindFlow(const FlowKey& key) {
  auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : it->second.get();
}

sim::Duration YodaInstance::RuleScanDelay(int rules_scanned) const {
  return cfg_.rule_scan_base_delay + cfg_.rule_scan_per_rule_delay * rules_scanned;
}

void YodaInstance::Emit(net::Packet p) { net_->Send(std::move(p)); }

void YodaInstance::EmitForwarded(net::Packet p) {
  cpu_.ChargePacket();
  ctr_.packets_tunneled->Inc();
  sim_->After(cfg_.cpu_costs.forward_delay, [this, p = std::move(p)]() mutable {
    if (!failed_) {
      net_->Send(std::move(p));
    }
  });
}

void YodaInstance::MeterVip(net::IpAddr vip, const net::Packet& p) {
  traffic_[vip].bytes += p.payload.size();
  VipCountersFor(vip).bytes->Add(p.payload.size());
}

std::map<net::IpAddr, VipTraffic> YodaInstance::DrainTrafficCounters() {
  std::map<net::IpAddr, VipTraffic> out(traffic_.begin(), traffic_.end());
  traffic_.clear();
  return out;
}

void YodaInstance::HandlePacket(const net::Packet& p) {
  if (failed_) {
    return;
  }
  VipState* vip = FindVip(p.dst);
  if (vip == nullptr) {
    ctr_.dropped_unknown_vip->Inc();
    return;
  }
  MeterVip(p.dst, p);
  if (p.dport == vip->vip_port) {
    LocalFlow* f = FindFlow(FlowKey{p.dst, p.dport, p.src, p.sport});
    if (f != nullptr) {
      f->last_packet = sim_->now();
    }
    HandleClientSide(p, *vip);
  } else if (server_index_.contains(p.tuple()) || vip->backends.contains(p.src)) {
    HandleServerSide(p, *vip);
  } else {
    ctr_.dropped_unknown_vip->Inc();
  }
}

// --------------------------------------------------------------------------
// Client side.
// --------------------------------------------------------------------------

void YodaInstance::HandleClientSide(const net::Packet& p, VipState& vip) {
  const FlowKey key{p.dst, p.dport, p.src, p.sport};
  LocalFlow* flow = FindFlow(key);

  if (p.syn() && !p.ack_flag()) {
    if (flow != nullptr && !flow->lookup_pending && flow->st.client_isn != p.seq) {
      // Same client ip:port with a different ISN: the client's ephemeral
      // port wrapped around and this is a brand-new connection. The old
      // flow is defunct; drop its state and start fresh.
      CleanupFlow(key, /*remove_from_store=*/true);
      flow = nullptr;
    }
    if (flow == nullptr) {
      StartNewFlow(p, vip);
    } else if (flow->storage_a_done) {
      SendSynAck(key, *flow);  // Retransmitted SYN: deterministic answer.
    }
    return;
  }

  if (flow == nullptr) {
    TakeoverClientSide(key, p);
    return;
  }
  if (flow->lookup_pending) {
    flow->stalled.push_back(p);
    return;
  }

  if (p.rst()) {
    if (flow->established) {
      net::Packet rst = p;
      rst.src = key.vip;
      rst.sport = key.client_port;
      rst.dst = flow->st.backend_ip;
      rst.dport = flow->st.backend_port;
      rst.seq = p.seq + flow->st.seq_delta_c2s;
      rst.ack = p.ack - flow->st.seq_delta_s2c;
      rst.encap_dst = 0;
      EmitForwarded(std::move(rst));
    }
    Trace(key, obs::EventType::kFlowReset,
          static_cast<std::uint64_t>(obs::FlowResetReason::kClientAbort));
    CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }

  if (flow->established) {
    TunnelFromClient(key, *flow, vip, p);
  } else {
    ClientConnectionPhase(key, *flow, vip, p);
  }
}

void YodaInstance::StartNewFlow(const net::Packet& syn, VipState& vip) {
  const FlowKey key{syn.dst, syn.dport, syn.src, syn.sport};
  auto flow = std::make_unique<LocalFlow>();
  flow->last_packet = sim_->now();
  flow->tls_active = vip.tls.has_value();
  flow->st.stage = FlowStage::kConnection;
  flow->st.client_ip = syn.src;
  flow->st.client_port = syn.sport;
  flow->st.vip = syn.dst;
  flow->st.vip_port = syn.dport;
  flow->st.client_isn = syn.seq;
  flow->st.lb_isn = DeterministicLbIsn(syn.dst, syn.dport, syn.src, syn.sport);
  flow->client_facing_nxt = flow->st.lb_isn + 1;
  flow->assembled_end = syn.seq + 1;
  flows_[key] = std::move(flow);
  ctr_.flows_started->Inc();
  traffic_[syn.dst].new_connections += 1;
  VipCountersFor(syn.dst).new_connections->Inc();
  Trace(key, obs::EventType::kClientSyn);
  cpu_.ChargeConnection();

  // storage-a: persist the SYN capture *before* answering (Fig 3).
  store_->StoreConnectionState(flows_[key]->st, [this, key](bool ok) {
    if (failed_) {
      return;
    }
    LocalFlow* f = FindFlow(key);
    if (f == nullptr || !ok) {
      return;
    }
    f->storage_a_done = true;
    SendSynAck(key, *f);
    // Process any client data that raced ahead of the storage ack.
    std::vector<net::Packet> stalled = std::move(f->stalled);
    f->stalled.clear();
    VipState* vip_state = FindVip(key.vip);
    for (const net::Packet& sp : stalled) {
      LocalFlow* ff = FindFlow(key);
      if (ff == nullptr || vip_state == nullptr) {
        break;
      }
      ClientConnectionPhase(key, *ff, *vip_state, sp);
    }
  });
  (void)vip;
}

void YodaInstance::SendSynAck(const FlowKey& key, const LocalFlow& flow) {
  net::Packet p;
  p.src = key.vip;
  p.sport = key.vip_port;
  p.dst = key.client_ip;
  p.dport = key.client_port;
  p.seq = flow.st.lb_isn;
  p.ack = flow.st.client_isn + 1;
  p.flags = net::kSyn | net::kAck;
  Trace(key, obs::EventType::kSynAckSent);
  Emit(std::move(p));
}

void YodaInstance::ClientConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                         const net::Packet& p) {
  if (!flow.storage_a_done) {
    flow.stalled.push_back(p);
    return;
  }
  if (p.fin()) {
    // Client aborted before the server connection existed.
    CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  if (!p.payload.empty()) {
    // Reassemble the header bytes in order; duplicates are ignored. Note: we
    // deliberately do NOT ACK (paper: the header fits the initial window, so
    // the client keeps retransmitting it until the *server's* ACK is
    // tunneled back — which is what makes connection-phase takeover work).
    if (net::SeqGt(p.seq + static_cast<std::uint32_t>(p.payload.size()), flow.assembled_end)) {
      flow.pending_segments[p.seq] = p.payload;
    }
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = flow.pending_segments.begin(); it != flow.pending_segments.end();) {
        const std::uint32_t seg_seq = it->first;
        const auto len = static_cast<std::uint32_t>(it->second.size());
        if (net::SeqLeq(seg_seq, flow.assembled_end) &&
            net::SeqGt(seg_seq + len, flow.assembled_end)) {
          const std::uint32_t skip = flow.assembled_end - seg_seq;
          flow.assembled.append(it->second.view().substr(skip));
          flow.assembled_end += len - skip;
          it = flow.pending_segments.erase(it);
          progressed = true;
        } else if (net::SeqLeq(seg_seq + len, flow.assembled_end)) {
          it = flow.pending_segments.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (flow.tls_active) {
      TlsConnectionPhase(key, flow, vip);
    } else {
      flow.parser = http::RequestParser();
      flow.parser.Feed(flow.assembled);
    }
  }
  if (flow.parser.HaveHeaders() && !flow.server_syn_sent) {
    TrySelectAndConnect(key, flow, vip);
  }
}

void YodaInstance::TlsConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip) {
  if (!vip.tls) {
    return;
  }
  // Feed only the new in-order bytes to the record reader.
  if (flow.assembled.size() > flow.tls_consumed) {
    flow.tls_reader.Feed(std::string_view(flow.assembled).substr(flow.tls_consumed));
    flow.tls_consumed = flow.assembled.size();
  }
  while (auto record = flow.tls_reader.Next()) {
    const auto record_len = static_cast<std::uint32_t>(5 + record->payload.size());
    switch (record->type) {
      case tls::RecordType::kClientHello: {
        auto hello = tls::ClientHello::Parse(record->payload);
        if (!hello) {
          break;
        }
        if (!flow.tls_ready) {
          flow.tls_client_random = hello->client_random;
          flow.tls_handshake_len += record_len;
        }
        // Answer (or re-answer: a retransmitted hello means the client never
        // saw the flight) with the deterministic certificate flight.
        SendCertificateFlight(key, flow, vip);
        break;
      }
      case tls::RecordType::kClientFinished: {
        if (!flow.tls_ready) {
          const std::uint64_t server_random =
              tls::DeriveServerRandom(vip.tls->certificate, flow.tls_client_random);
          flow.tls_session_key = tls::DeriveSessionKey(flow.tls_client_random, server_random);
          flow.tls_ready = true;
          flow.tls_handshake_len += record_len;
        }
        break;
      }
      case tls::RecordType::kApplicationData: {
        if (!flow.tls_ready) {
          break;  // Out-of-order junk; the handshake replay will fix it.
        }
        const std::string plaintext =
            tls::Crypt(flow.tls_session_key, flow.tls_cipher_offset, record->payload);
        flow.tls_cipher_offset += record->payload.size();
        flow.tls_plaintext += plaintext;
        flow.parser.Feed(plaintext);
        break;
      }
      default:
        break;
    }
  }
}

void YodaInstance::SendCertificateFlight(const FlowKey& key, LocalFlow& flow,
                                         const VipState& vip) {
  tls::ServerCertificate cert;
  cert.certificate = vip.tls->certificate;
  cert.server_random = tls::DeriveServerRandom(vip.tls->certificate, flow.tls_client_random);
  const std::string flight =
      tls::EncodeRecord({tls::RecordType::kServerCertificate, cert.Serialize()});
  flow.cert_flight_len = static_cast<std::uint32_t>(flight.size());
  flow.client_facing_nxt = flow.st.lb_isn + 1 + flow.cert_flight_len;
  cpu_.ChargeConnection();
  // Deterministic bytes at deterministic sequence numbers: a resend (by this
  // or any other instance) is byte-identical, and the client's TCP discards
  // duplicates. The hello is intentionally NOT ACKed — the client keeps it
  // retransmittable until the backend's ACKs (translated) cover it.
  std::uint32_t seq = flow.st.lb_isn + 1;
  std::size_t off = 0;
  while (off < flight.size()) {
    const std::size_t chunk = std::min<std::size_t>(cfg_.mss, flight.size() - off);
    net::Packet pkt;
    pkt.src = key.vip;
    pkt.sport = key.vip_port;
    pkt.dst = key.client_ip;
    pkt.dport = key.client_port;
    pkt.seq = seq;
    pkt.ack = flow.st.client_isn + 1;
    pkt.flags = net::kAck;
    pkt.payload = flight.substr(off, chunk);
    if (off + chunk >= flight.size()) {
      pkt.flags |= net::kPsh;
    }
    Emit(std::move(pkt));
    seq += static_cast<std::uint32_t>(chunk);
    off += chunk;
  }
}

std::optional<rules::Selection> YodaInstance::SelectBackend(VipState& vip,
                                                            const http::Request& req) {
  rules::SelectionContext ctx;
  ctx.rng = &rng_;
  ctx.sticky = &vip.sticky;
  ctx.is_healthy = [this](const rules::Backend& b) {
    auto it = backend_health_.find(b.ip);
    return it == backend_health_.end() || it->second;
  };
  ctx.load_of = [this](const rules::Backend& b) {
    auto it = backend_load_.find(b.ip);
    return it == backend_load_.end() ? 0 : it->second;
  };
  auto sel = vip.table.Select(req, ctx);
  if (sel) {
    ctr_.selections->Inc();
    ctr_.rules_scanned_total->Add(static_cast<std::uint64_t>(sel->rules_scanned));
    cpu_.ChargeRuleScan(sel->rules_scanned);
  }
  return sel;
}

void YodaInstance::BindStickyIfNeeded(VipState& vip, const http::Request& req,
                                      const rules::Backend& b) {
  for (const rules::Rule& r : vip.table.rules()) {
    if (r.action.type != rules::ActionType::kStickyTable) {
      continue;
    }
    if (!r.match.Matches(req)) {
      continue;
    }
    auto cookies = req.Cookies();
    auto it = cookies.find(r.action.sticky_cookie);
    if (it != cookies.end() && !vip.sticky.Find(it->second)) {
      vip.sticky.Bind(it->second, b);
    }
  }
}

void YodaInstance::TrySelectAndConnect(const FlowKey& key, LocalFlow& flow, VipState& vip) {
  flow.started = sim_->now();  // Fig 9 "Connection" measurement starts here.
  auto sel = SelectBackend(vip, flow.parser.request());
  if (!sel) {
    ctr_.no_backend_resets->Inc();
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.vip_port;
    rst.dst = key.client_ip;
    rst.dport = key.client_port;
    rst.seq = flow.st.lb_isn + 1;
    rst.ack = flow.assembled_end;
    rst.flags = net::kRst | net::kAck;
    Emit(std::move(rst));
    Trace(key, obs::EventType::kFlowReset,
          static_cast<std::uint64_t>(obs::FlowResetReason::kNoBackend));
    CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  Trace(key, obs::EventType::kBackendSelected,
        static_cast<std::uint64_t>(sel->rules_scanned));
  Trace(key, obs::EventType::kBackendPinned, sel->backend.ip);
  BindStickyIfNeeded(vip, flow.parser.request(), sel->backend);
  flow.st.backend_ip = sel->backend.ip;
  flow.st.backend_port = sel->backend.port;
  flow.server_syn_sent = true;
  backend_load_[sel->backend.ip] += 1;
  for (const rules::Backend& m : sel->mirrors) {
    flow.mirror_legs.push_back(LocalFlow::MirrorLeg{m.ip, m.port, false, 0});
  }

  // The rule scan and header handling add the Fig 6 / Fig 9 latency.
  const sim::Duration delay =
      cfg_.cpu_costs.connection_delay + RuleScanDelay(sel->rules_scanned);
  sim_->After(delay, [this, key]() {
    LocalFlow* f = FindFlow(key);
    if (f == nullptr || failed_) {
      return;
    }
    SendServerSyn(key, *f);
  });
}

void YodaInstance::SendServerSyn(const FlowKey& key, LocalFlow& flow) {
  // VIP-sourced SYN reusing the client's ISN (front-and-back indirection +
  // zero client->server sequence delta).
  net::Packet syn;
  syn.src = key.vip;
  syn.sport = key.client_port;
  syn.dst = flow.st.backend_ip;
  syn.dport = flow.st.backend_port;
  syn.seq = flow.st.client_isn;
  syn.flags = net::kSyn;
  // Return-path pin so the server's replies come back to this instance.
  const net::FiveTuple server_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                   key.client_port};
  fabric_->RegisterSnat(server_side, cfg_.ip);
  server_index_[server_side] = key;
  Emit(std::move(syn));
  ++flow.server_syn_attempts;
  Trace(key, obs::EventType::kServerSyn,
        static_cast<std::uint64_t>(flow.server_syn_attempts));
  if (flow.server_syn_attempts <= cfg_.server_syn_retries) {
    flow.server_syn_timer = sim_->After(cfg_.server_syn_timeout, [this, key]() {
      LocalFlow* f = FindFlow(key);
      if (f != nullptr && !f->established && !failed_) {
        SendServerSyn(key, *f);
      }
    });
  }
}

// --------------------------------------------------------------------------
// Server side.
// --------------------------------------------------------------------------

void YodaInstance::HandleServerSide(const net::Packet& p, VipState& vip) {
  auto idx = server_index_.find(p.tuple());
  if (idx == server_index_.end()) {
    TakeoverServerSide(p, vip);
    return;
  }
  const FlowKey key = idx->second;
  LocalFlow* flow = FindFlow(key);
  if (flow == nullptr) {
    server_index_.erase(idx);
    TakeoverServerSide(p, vip);
    return;
  }
  flow->last_packet = sim_->now();
  if (flow->lookup_pending) {
    flow->stalled.push_back(p);
    return;
  }
  // Mirror-leg traffic is handled outside the primary path. Once a winner
  // is promoted it IS the primary, so only undecided or losing legs match.
  if (!flow->mirror_legs.empty() &&
      !(flow->mirror_decided && p.src == flow->st.backend_ip &&
        p.sport == flow->st.backend_port) &&
      HandleMirrorPacket(key, *flow, p)) {
    return;
  }
  if (p.syn() && p.ack_flag()) {
    if (!flow->established) {
      OnServerSynAck(key, *flow, p);
    } else {
      // Duplicate SYN-ACK: re-ack at the current position.
      net::Packet ack;
      ack.src = key.vip;
      ack.sport = key.client_port;
      ack.dst = flow->st.backend_ip;
      ack.dport = flow->st.backend_port;
      ack.seq = flow->assembled_end + flow->st.seq_delta_c2s;
      ack.ack = flow->st.server_isn + 1;
      ack.flags = net::kAck;
      Emit(std::move(ack));
    }
    return;
  }
  if (p.rst()) {
    net::Packet rst = p;
    rst.src = key.vip;
    rst.sport = key.vip_port;
    rst.dst = key.client_ip;
    rst.dport = key.client_port;
    rst.seq = p.seq + flow->st.seq_delta_s2c;
    rst.ack = p.ack - flow->st.seq_delta_c2s;
    rst.encap_dst = 0;
    EmitForwarded(std::move(rst));
    CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  if (flow->established) {
    TunnelFromServer(key, *flow, p);
  }
}

void YodaInstance::OnServerSynAck(const FlowKey& key, LocalFlow& flow, const net::Packet& p) {
  flow.server_syn_timer.Cancel();
  flow.st.server_isn = p.seq;
  // The server's byte at server_isn+1 must appear to the client at
  // client_facing_nxt (== lb_isn+1 for the first leg; the current splice
  // point after an HTTP/1.1 re-switch).
  if (flow.client_facing_nxt == 0) {
    flow.client_facing_nxt = flow.st.lb_isn + 1;
  }
  flow.st.seq_delta_s2c = flow.client_facing_nxt - (p.seq + 1);  // mod 2^32.
  flow.st.seq_delta_c2s = 0;  // Client's (possibly rebased) ISN is reused.
  if (flow.tls_active) {
    // The server-side stream replaces Hello+Finished with the session
    // ticket; client appdata bytes shift by the difference.
    VipState* vip = FindVip(key.vip);
    if (vip != nullptr && vip->tls) {
      const std::string ticket = tls::EncodeRecord(
          {tls::RecordType::kSessionTicket,
           tls::SealTicket(flow.tls_session_key, vip->tls->service_key)});
      flow.st.seq_delta_c2s =
          static_cast<std::uint32_t>(ticket.size()) - flow.tls_handshake_len;
    }
  }
  flow.st.stage = FlowStage::kTunneling;
  cpu_.ChargeConnection();

  // storage-b: persist full state *before* ACKing the server (Fig 3), so a
  // crash after the ACK can always be recovered by another instance.
  store_->StoreTunnelingState(flow.st, [this, key](bool ok) {
    if (failed_) {
      return;
    }
    LocalFlow* f = FindFlow(key);
    if (f == nullptr || !ok) {
      return;
    }
    f->established = true;
    Trace(key, obs::EventType::kEstablished);
    const net::FiveTuple server_side{f->st.backend_ip, key.vip, f->st.backend_port,
                                     key.client_port};
    server_index_[server_side] = key;
    ForwardRequestToServer(key, *f);
    if (!f->mirror_legs.empty()) {
      LaunchMirrorLegs(key, *f);
    }
    ctr_.flows_completed->Inc();
  });
}

void YodaInstance::ForwardRequestToServer(const FlowKey& key, LocalFlow& flow) {
  Trace(key, obs::EventType::kRequestForwarded);
  if (flow.started != 0) {
    connection_phase_ms_->Add(sim::ToMillis(sim_->now() - flow.started));
    flow.started = 0;  // Count the initial leg once (not re-switches).
  }
  // Handshake-completing ACK, carrying the buffered client bytes (the HTTP
  // request), sequence-aligned with the client's own numbers. For TLS flows
  // the server-side stream is [session ticket][encrypted appdata verbatim].
  std::string tls_data;
  if (flow.tls_active) {
    VipState* vip = FindVip(key.vip);
    if (vip != nullptr && vip->tls) {
      tls_data = tls::EncodeRecord({tls::RecordType::kSessionTicket,
                                    tls::SealTicket(flow.tls_session_key,
                                                    vip->tls->service_key)});
      tls_data += flow.assembled.substr(flow.tls_handshake_len);
    }
  }
  // Note (TLS): a client retransmission that spans the handshake/appdata
  // boundary would, under the c2s delta, overlap the ticket's sequence range
  // at the server with stale bytes. This only matters if the ticket packet
  // itself was lost; a production implementation would retransmit its own
  // injected bytes. The simulator's LB->server hop is loss-free by default.
  const std::string& data = flow.tls_active ? tls_data : flow.assembled;
  std::uint32_t seq = flow.st.client_isn + 1;
  std::size_t off = 0;
  bool first = true;
  do {
    const std::size_t len = std::min<std::size_t>(cfg_.mss, data.size() - off);
    net::Packet pkt;
    pkt.src = key.vip;
    pkt.sport = key.client_port;
    pkt.dst = flow.st.backend_ip;
    pkt.dport = flow.st.backend_port;
    pkt.seq = seq;
    pkt.ack = flow.st.server_isn + 1;
    pkt.flags = net::kAck;
    pkt.payload = data.substr(off, len);
    if (off + len >= data.size()) {
      pkt.flags |= net::kPsh;
    }
    if (first) {
      Emit(std::move(pkt));  // The ACK itself is control traffic.
      first = false;
    } else {
      EmitForwarded(std::move(pkt));
    }
    seq += static_cast<std::uint32_t>(len);
    off += len;
  } while (off < data.size());

  // Initialise (or re-arm after a re-switch) HTTP/1.1 inspection state.
  // TLS flows tunnel ciphertext, so re-switch inspection is unavailable.
  if (cfg_.http11_reswitch && !flow.tls_active &&
      (flow.inspect_enabled ||
       (flow.parser.HaveHeaders() && WantsInspection(flow.parser.request())))) {
    flow.inspect_enabled = true;
    flow.inspect_next_seq = flow.st.client_isn + 1 +
                            static_cast<std::uint32_t>(flow.assembled.size());
    flow.request_start_seq = flow.inspect_next_seq;
    flow.pending_request.clear();
    flow.inspect_parser = http::RequestParser();
    flow.outstanding_requests = 1;
  } else {
    flow.inspect_next_seq = 0;  // Inspection disabled for this flow.
  }
}

// --------------------------------------------------------------------------
// Tunneling.
// --------------------------------------------------------------------------

void YodaInstance::TunnelFromClient(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                    const net::Packet& p) {
  if (cfg_.http11_reswitch && flow.inspect_next_seq != 0 && !p.payload.empty()) {
    InspectClientStream(key, flow, vip, p);
    // InspectClientStream forwards (possibly re-targeted) bytes itself.
    return;
  }
  net::Packet out = p;
  out.src = key.vip;
  out.sport = key.client_port;
  out.dst = flow.st.backend_ip;
  out.dport = flow.st.backend_port;
  out.seq = p.seq + flow.st.seq_delta_c2s;
  out.ack = p.ack - flow.st.seq_delta_s2c;
  out.encap_dst = 0;
  if (p.fin()) {
    flow.fin_from_client = true;
    Trace(key, obs::EventType::kFin, 0);
  }
  EmitForwarded(std::move(out));
  MaybeScheduleCleanup(key, flow);
}

void YodaInstance::InspectClientStream(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                       const net::Packet& p) {
  // In-order inspection: the current request's bytes are buffered from
  // request_start_seq and only forwarded once the request is complete and
  // routed — that is what makes switching the backend per request possible.
  const auto len = static_cast<std::uint32_t>(p.payload.size());
  if (net::SeqLt(p.seq, flow.inspect_next_seq) &&
      net::SeqLeq(p.seq + len, flow.inspect_next_seq)) {
    // Entirely old. Bytes belonging to the current server leg (at or above
    // its rebased ISN) are retransmissions the server should re-ack; tunnel
    // them. Bytes from a pre-re-switch leg were acked by the old server and
    // are dropped.
    if (net::SeqGeq(p.seq, flow.st.client_isn + 1) &&
        net::SeqLt(p.seq, flow.request_start_seq)) {
      net::Packet out = p;
      out.src = key.vip;
      out.sport = key.client_port;
      out.dst = flow.st.backend_ip;
      out.dport = flow.st.backend_port;
      out.seq = p.seq + flow.st.seq_delta_c2s;
      out.ack = p.ack - flow.st.seq_delta_s2c;
      out.encap_dst = 0;
      EmitForwarded(std::move(out));
    }
    return;
  }
  if (net::SeqGt(p.seq, flow.inspect_next_seq)) {
    flow.pending_segments[p.seq] = p.payload;  // Future data; hold.
    return;
  }
  // Consume this segment (trimming any old prefix) plus any now-contiguous
  // buffered segments.
  std::string fresh(p.payload.view().substr(flow.inspect_next_seq - p.seq));
  flow.inspect_next_seq += static_cast<std::uint32_t>(fresh.size());
  for (auto it = flow.pending_segments.begin(); it != flow.pending_segments.end();) {
    const std::uint32_t s = it->first;
    const auto l = static_cast<std::uint32_t>(it->second.size());
    if (net::SeqLeq(s, flow.inspect_next_seq) && net::SeqGt(s + l, flow.inspect_next_seq)) {
      fresh += it->second.view().substr(flow.inspect_next_seq - s);
      flow.inspect_next_seq = s + l;
      it = flow.pending_segments.erase(it);
    } else if (net::SeqLeq(s + l, flow.inspect_next_seq)) {
      it = flow.pending_segments.erase(it);
    } else {
      ++it;
    }
  }
  flow.pending_request += fresh;

  flow.inspect_parser.Feed(fresh);
  if (flow.inspect_parser.status() == http::ParseStatus::kComplete) {
    http::Request req = flow.inspect_parser.TakeRequest();
    auto sel = SelectBackend(vip, req);
    if (sel) {
      BindStickyIfNeeded(vip, req, sel->backend);
    }
    if (sel &&
        !(sel->backend.ip == flow.st.backend_ip &&
          sel->backend.port == flow.st.backend_port) &&
        flow.outstanding_requests == 0) {
      // Different backend and no response in flight: switch (§5.2). The
      // buffered request is replayed to the new server on establishment.
      ReSwitch(key, flow, vip, sel->backend);
      if (p.fin()) {
        flow.fin_from_client = true;  // FIN is relayed after the new leg.
      }
      return;
    }
    // Same backend (or response outstanding): forward the buffered request
    // on the current connection, sequence-aligned.
    std::uint32_t seq = flow.request_start_seq;
    std::size_t off = 0;
    while (off < flow.pending_request.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(cfg_.mss, flow.pending_request.size() - off);
      net::Packet out;
      out.src = key.vip;
      out.sport = key.client_port;
      out.dst = flow.st.backend_ip;
      out.dport = flow.st.backend_port;
      out.seq = seq + flow.st.seq_delta_c2s;
      out.ack = p.ack - flow.st.seq_delta_s2c;
      out.flags = net::kAck | net::kPsh;
      out.payload = flow.pending_request.substr(off, chunk);
      EmitForwarded(std::move(out));
      seq += static_cast<std::uint32_t>(chunk);
      off += chunk;
    }
    flow.outstanding_requests += 1;
    // Pipelined clients may have packed several requests into this batch;
    // they all go to the same backend (re-switch requires outstanding == 0).
    while (flow.inspect_parser.status() == http::ParseStatus::kComplete) {
      http::Request extra = flow.inspect_parser.TakeRequest();
      auto extra_sel = SelectBackend(vip, extra);
      if (extra_sel) {
        BindStickyIfNeeded(vip, extra, extra_sel->backend);
      }
      flow.outstanding_requests += 1;
      flow.st.pipeline_request_ends.push_back(flow.inspect_next_seq - flow.st.client_isn - 1);
    }
    flow.pending_request.clear();
    flow.request_start_seq = flow.inspect_next_seq;
    // Record the request boundary for pipelined-response ordering and update
    // TCPStore so a takeover instance knows the order (§5.2).
    flow.st.pipeline_request_ends.push_back(flow.inspect_next_seq - flow.st.client_isn - 1);
    store_->StoreTunnelingState(flow.st, [](bool) {});
  }
  if (p.fin()) {
    flow.fin_from_client = true;
    Trace(key, obs::EventType::kFin, 0);
    net::Packet fin;
    fin.src = key.vip;
    fin.sport = key.client_port;
    fin.dst = flow.st.backend_ip;
    fin.dport = flow.st.backend_port;
    fin.seq = flow.inspect_next_seq + flow.st.seq_delta_c2s;
    fin.ack = p.ack - flow.st.seq_delta_s2c;
    fin.flags = net::kFin | net::kAck;
    EmitForwarded(std::move(fin));
    MaybeScheduleCleanup(key, flow);
  }
}

void YodaInstance::ReSwitch(const FlowKey& key, LocalFlow& flow, VipState& vip,
                            const rules::Backend& new_backend) {
  ctr_.reswitches->Inc();
  Trace(key, obs::EventType::kReSwitch, new_backend.ip);
  // Close the old server connection and drop its return pin.
  const net::FiveTuple old_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                key.client_port};
  net::Packet rst;
  rst.src = key.vip;
  rst.sport = key.client_port;
  rst.dst = flow.st.backend_ip;
  rst.dport = flow.st.backend_port;
  rst.seq = flow.request_start_seq + flow.st.seq_delta_c2s;
  rst.flags = net::kRst;
  Emit(std::move(rst));
  fabric_->UnregisterSnat(old_side);
  server_index_.erase(old_side);
  const FlowState old_state = flow.st;
  store_->Remove(old_state, [](bool) {});

  backend_load_[flow.st.backend_ip] -= 1;
  backend_load_[new_backend.ip] += 1;

  // Re-enter the connection phase against the new backend, reusing the
  // normal plumbing: the buffered request becomes `assembled`, and the SYN's
  // ISN is rebased to (request start - 1) so the client->server sequence
  // delta stays zero on the new leg. The server->client delta is derived
  // from client_facing_nxt when the new SYN-ACK arrives.
  flow.st.backend_ip = new_backend.ip;
  flow.st.backend_port = new_backend.port;
  flow.st.client_isn = flow.request_start_seq - 1;
  flow.st.stage = FlowStage::kConnection;
  flow.established = false;
  flow.server_syn_sent = true;
  flow.server_syn_attempts = 0;
  flow.assembled = std::move(flow.pending_request);
  flow.pending_request.clear();
  flow.assembled_end = flow.inspect_next_seq;
  flow.st.pipeline_request_ends.clear();
  Trace(key, obs::EventType::kBackendPinned, new_backend.ip);
  SendServerSyn(key, flow);
  (void)vip;
}

void YodaInstance::TunnelFromServer(const FlowKey& key, LocalFlow& flow, const net::Packet& p) {
  if (!flow.mirror_legs.empty() && !flow.mirror_decided && !p.payload.empty()) {
    // The original primary answered first: it wins the mirror race.
    flow.mirror_decided = true;
    KillLosingLegs(key, flow, flow.st.backend_ip);
  }
  net::Packet out = p;
  out.src = key.vip;
  out.sport = key.vip_port;
  out.dst = key.client_ip;
  out.dport = key.client_port;
  out.seq = p.seq + flow.st.seq_delta_s2c;
  out.ack = p.ack - flow.st.seq_delta_c2s;
  out.encap_dst = 0;
  // Track the splice point for potential HTTP/1.1 re-switches.
  const std::uint32_t emitted_end =
      out.seq + static_cast<std::uint32_t>(p.payload.size()) + (p.fin() ? 1 : 0);
  if (net::SeqGt(emitted_end, flow.client_facing_nxt)) {
    flow.client_facing_nxt = emitted_end;
  }
  if (p.fin()) {
    flow.fin_from_server = true;
    Trace(key, obs::EventType::kFin, 1);
  }
  if (!p.payload.empty() && flow.outstanding_requests > 0) {
    // Track response completion for re-switch gating (cheap heuristic: a
    // PSH-terminated server burst ends one response).
    if (p.has(net::kPsh)) {
      flow.outstanding_requests -= 1;
      if (!flow.st.pipeline_request_ends.empty()) {
        flow.st.pipeline_request_ends.erase(flow.st.pipeline_request_ends.begin());
      }
    }
  }
  EmitForwarded(std::move(out));
  MaybeScheduleCleanup(key, flow);
}

// --------------------------------------------------------------------------
// Request mirroring (§5.2).
// --------------------------------------------------------------------------

void YodaInstance::LaunchMirrorLegs(const FlowKey& key, LocalFlow& flow) {
  for (LocalFlow::MirrorLeg& leg : flow.mirror_legs) {
    net::Packet syn;
    syn.src = key.vip;
    syn.sport = key.client_port;
    syn.dst = leg.ip;
    syn.dport = leg.port;
    syn.seq = flow.st.client_isn;
    syn.flags = net::kSyn;
    const net::FiveTuple leg_side{leg.ip, key.vip, leg.port, key.client_port};
    fabric_->RegisterSnat(leg_side, cfg_.ip);
    server_index_[leg_side] = key;
    Emit(std::move(syn));
    cpu_.ChargeConnection();
  }
}

bool YodaInstance::HandleMirrorPacket(const FlowKey& key, LocalFlow& flow,
                                      const net::Packet& p) {
  LocalFlow::MirrorLeg* leg = nullptr;
  for (LocalFlow::MirrorLeg& l : flow.mirror_legs) {
    if (l.ip == p.src && l.port == p.sport) {
      leg = &l;
    }
  }
  if (leg == nullptr) {
    return false;
  }
  if (flow.mirror_decided) {
    // A winner already serves the client; silence this leg.
    if (!p.rst()) {
      Emit(net::MakeRst(p));
    }
    return true;
  }
  if (p.syn() && p.ack_flag()) {
    // Complete this leg's handshake and replay the buffered request, exactly
    // like the primary's ForwardRequestToServer but with no storage write.
    leg->established = true;
    leg->server_isn = p.seq;
    const std::string& data = flow.assembled;
    std::uint32_t seq = flow.st.client_isn + 1;
    std::size_t off = 0;
    do {
      const std::size_t len = std::min<std::size_t>(cfg_.mss, data.size() - off);
      net::Packet pkt;
      pkt.src = key.vip;
      pkt.sport = key.client_port;
      pkt.dst = leg->ip;
      pkt.dport = leg->port;
      pkt.seq = seq;
      pkt.ack = leg->server_isn + 1;
      pkt.flags = net::kAck;
      pkt.payload = data.substr(off, len);
      if (off + len >= data.size()) {
        pkt.flags |= net::kPsh;
      }
      Emit(std::move(pkt));
      seq += static_cast<std::uint32_t>(len);
      off += len;
    } while (off < data.size());
    return true;
  }
  if (!p.payload.empty()) {
    // First response data: this leg wins the race (the paper tunnels the
    // first response and marks later ones for dropping).
    PromoteMirrorWinner(key, flow, *leg, p);
    return true;
  }
  return true;  // Bare ACKs from a still-racing leg.
}

void YodaInstance::PromoteMirrorWinner(const FlowKey& key, LocalFlow& flow,
                                       LocalFlow::MirrorLeg& leg,
                                       const net::Packet& first_data) {
  flow.mirror_decided = true;
  Trace(key, obs::EventType::kMirrorPromote, leg.ip);
  // The old primary loses: reset it and drop its pins before retargeting.
  {
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.client_port;
    rst.dst = flow.st.backend_ip;
    rst.dport = flow.st.backend_port;
    rst.seq = flow.st.client_isn + 1 + static_cast<std::uint32_t>(flow.assembled.size());
    rst.flags = net::kRst;
    Emit(std::move(rst));
    const net::FiveTuple old_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                  key.client_port};
    fabric_->UnregisterSnat(old_side);
    server_index_.erase(old_side);
  }
  // Retarget the flow at the winning mirror.
  flow.st.backend_ip = leg.ip;
  flow.st.backend_port = leg.port;
  flow.st.server_isn = leg.server_isn;
  flow.st.seq_delta_s2c = flow.client_facing_nxt - (leg.server_isn + 1);
  const net::FiveTuple winner_side{leg.ip, key.vip, leg.port, key.client_port};
  server_index_[winner_side] = key;
  Trace(key, obs::EventType::kBackendPinned, leg.ip);
  store_->StoreTunnelingState(flow.st, [](bool) {});
  KillLosingLegs(key, flow, leg.ip);
  TunnelFromServer(key, flow, first_data);
}

void YodaInstance::KillLosingLegs(const FlowKey& key, LocalFlow& flow, net::IpAddr winner_ip) {
  const std::uint32_t next_seq =
      flow.st.client_isn + 1 + static_cast<std::uint32_t>(flow.assembled.size());
  auto kill = [this, &key, next_seq](net::IpAddr ip, net::Port port) {
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.client_port;
    rst.dst = ip;
    rst.dport = port;
    rst.seq = next_seq;
    rst.flags = net::kRst;
    Emit(std::move(rst));
    const net::FiveTuple side{ip, key.vip, port, key.client_port};
    fabric_->UnregisterSnat(side);
    server_index_.erase(side);
  };
  for (LocalFlow::MirrorLeg& leg : flow.mirror_legs) {
    if (leg.ip != winner_ip) {
      kill(leg.ip, leg.port);
    }
  }
}

// --------------------------------------------------------------------------
// Takeover.
// --------------------------------------------------------------------------

void YodaInstance::TakeoverClientSide(const FlowKey& key, const net::Packet& p) {
  if (!p.ack_flag() && p.payload.empty() && !p.fin()) {
    return;  // Nothing recoverable.
  }
  auto flow = std::make_unique<LocalFlow>();
  flow->lookup_pending = true;
  flow->last_packet = sim_->now();
  flow->stalled.push_back(p);
  flows_[key] = std::move(flow);
  ClientTakeoverLookup(key, /*attempt=*/0);
}

void YodaInstance::ClientTakeoverLookup(const FlowKey& key, int attempt) {
  store_->LookupByClient(
      key.vip, key.vip_port, key.client_ip, key.client_port,
      [this, key, attempt](std::optional<FlowState> st) {
        if (failed_) {
          return;
        }
        LocalFlow* f = FindFlow(key);
        if (f == nullptr) {
          return;
        }
        if (!st) {
          // A miss may just mean a lagging or restarting replica: re-fetch
          // with doubling backoff before giving up on the flow.
          if (attempt < cfg_.takeover_retry_limit) {
            ctr_.takeover_retries->Inc();
            Trace(key, obs::EventType::kTakeoverRetry,
                  static_cast<std::uint64_t>(attempt + 1));
            sim::Duration backoff = cfg_.takeover_retry_backoff;
            for (int i = 0; i < attempt; ++i) {
              backoff *= 2;
            }
            sim_->After(backoff, [this, key, attempt]() {
              if (failed_) {
                return;
              }
              LocalFlow* f2 = FindFlow(key);
              if (f2 == nullptr || !f2->lookup_pending) {
                return;
              }
              ClientTakeoverLookup(key, attempt + 1);
            });
            return;
          }
          ctr_.takeover_misses->Inc();
          ResetFlowToClient(key, obs::FlowResetReason::kTakeoverMiss);
          return;
        }
        ctr_.takeovers_client_side->Inc();
        Trace(key, obs::EventType::kTakeoverClient);
        AdoptFlow(key, *st);
      });
}

void YodaInstance::ResetFlowToClient(const FlowKey& key, obs::FlowResetReason reason) {
  // An explicit RST beats a silent drop: the client learns immediately
  // instead of retransmitting into a void until its own timers expire.
  LocalFlow* f = FindFlow(key);
  net::Packet rst;
  rst.src = key.vip;
  rst.sport = key.vip_port;
  rst.dst = key.client_ip;
  rst.dport = key.client_port;
  rst.flags = net::kRst | net::kAck;
  if (f != nullptr && !f->stalled.empty()) {
    const net::Packet& last = f->stalled.back();
    rst.seq = last.ack;
    rst.ack = last.seq + last.SeqSpace();
  }
  Emit(std::move(rst));
  Trace(key, obs::EventType::kFlowReset, static_cast<std::uint64_t>(reason));
  flows_.erase(key);
}

void YodaInstance::TakeoverServerSide(const net::Packet& p, VipState& vip) {
  // Server-side identity: (backend=src, bport=sport, vip=dst, cport=dport);
  // the client key arrives with the flow state.
  ServerTakeoverLookup(p, /*attempt=*/0);
  (void)vip;
}

void YodaInstance::ServerTakeoverLookup(const net::Packet& p, int attempt) {
  store_->LookupByServer(
      p.src, p.sport, p.dst, p.dport, [this, p, attempt](std::optional<FlowState> st) {
        if (failed_) {
          return;
        }
        if (!st || st->stage != FlowStage::kTunneling) {
          // RSTs for unknown flows are not worth recovering (and answering
          // them with more RSTs would only make noise).
          if (!p.rst() && attempt < cfg_.takeover_retry_limit) {
            ctr_.takeover_retries->Inc();
            sim::Duration backoff = cfg_.takeover_retry_backoff;
            for (int i = 0; i < attempt; ++i) {
              backoff *= 2;
            }
            sim_->After(backoff, [this, p, attempt]() {
              if (!failed_) {
                ServerTakeoverLookup(p, attempt + 1);
              }
            });
            return;
          }
          ctr_.takeover_misses->Inc();
          if (!p.rst()) {
            // Final miss: reset the orphaned server leg so the backend does
            // not hold the connection open forever.
            net::Packet rst;
            rst.src = p.dst;
            rst.sport = p.dport;
            rst.dst = p.src;
            rst.dport = p.sport;
            rst.seq = p.ack;
            rst.flags = net::kRst;
            Emit(std::move(rst));
          }
          return;
        }
        ctr_.takeovers_server_side->Inc();
        const FlowKey key{st->vip, st->vip_port, st->client_ip, st->client_port};
        Trace(key, obs::EventType::kTakeoverServer);
        if (FindFlow(key) == nullptr) {
          AdoptFlow(key, *st);
        }
        LocalFlow* f = FindFlow(key);
        if (f != nullptr && f->established) {
          TunnelFromServer(key, *f, p);
        }
      });
}

void YodaInstance::AdoptFlow(const FlowKey& key, const FlowState& st) {
  LocalFlow* flow = FindFlow(key);
  if (flow == nullptr) {
    flows_[key] = std::make_unique<LocalFlow>();
    flow = flows_[key].get();
  }
  std::vector<net::Packet> stalled = std::move(flow->stalled);
  flow->stalled.clear();
  flow->lookup_pending = false;
  flow->last_packet = sim_->now();
  flow->st = st;
  flow->storage_a_done = true;
  flow->client_facing_nxt = st.lb_isn + 1;
  backend_load_[st.backend_ip] += st.stage == FlowStage::kTunneling ? 1 : 0;
  if (st.backend_ip != 0) {
    // The pin travelled with the flow state; re-assert it in the trace so
    // pin-stability checks see the adopter agreeing with the original.
    Trace(key, obs::EventType::kBackendPinned, st.backend_ip);
  }

  if (st.stage == FlowStage::kTunneling) {
    flow->established = true;
    flow->server_syn_sent = true;
    flow->inspect_next_seq = 0;  // Inspection state was lost; pass through.
    const net::FiveTuple server_side{st.backend_ip, st.vip, st.backend_port, st.client_port};
    server_index_[server_side] = key;
    // Re-pin the return path to this instance.
    fabric_->RegisterSnat(server_side, cfg_.ip);
  } else {
    // Connection phase: the client's un-ACKed header will be retransmitted
    // in full; rebuild the assembly state from the stored ISN (Fig 5a). For
    // TLS VIPs the deterministic handshake replays from the hello.
    flow->assembled_end = st.client_isn + 1;
    VipState* vip_state = FindVip(key.vip);
    flow->tls_active = vip_state != nullptr && vip_state->tls.has_value();
  }
  cpu_.ChargeConnection();

  VipState* vip = FindVip(key.vip);
  for (const net::Packet& p : stalled) {
    LocalFlow* f = FindFlow(key);
    if (f == nullptr || vip == nullptr) {
      break;
    }
    if (f->established) {
      TunnelFromClient(key, *f, *vip, p);
    } else {
      ClientConnectionPhase(key, *f, *vip, p);
    }
  }
}

// --------------------------------------------------------------------------
// Teardown.
// --------------------------------------------------------------------------

void YodaInstance::MaybeScheduleCleanup(const FlowKey& key, LocalFlow& flow) {
  if (!flow.fin_from_client || !flow.fin_from_server || flow.cleanup_scheduled) {
    return;
  }
  flow.cleanup_scheduled = true;
  sim_->After(cfg_.flow_cleanup_delay, [this, key]() {
    if (!failed_ && FindFlow(key) != nullptr) {
      CleanupFlow(key, /*remove_from_store=*/true);
    }
  });
}

void YodaInstance::CleanupFlow(const FlowKey& key, bool remove_from_store) {
  LocalFlow* flow = FindFlow(key);
  if (flow == nullptr) {
    return;
  }
  flow->server_syn_timer.Cancel();
  for (const LocalFlow::MirrorLeg& leg : flow->mirror_legs) {
    const net::FiveTuple leg_side{leg.ip, key.vip, leg.port, key.client_port};
    fabric_->UnregisterSnat(leg_side);
    server_index_.erase(leg_side);
  }
  if (flow->st.stage == FlowStage::kTunneling || flow->server_syn_sent) {
    const net::FiveTuple server_side{flow->st.backend_ip, key.vip, flow->st.backend_port,
                                     key.client_port};
    fabric_->UnregisterSnat(server_side);
    server_index_.erase(server_side);
    auto it = backend_load_.find(flow->st.backend_ip);
    if (it != backend_load_.end() && flow->established) {
      it->second = std::max(0, it->second - 1);
    }
  }
  if (remove_from_store && flow->storage_a_done) {
    store_->Remove(flow->st, [](bool) {});
  }
  Trace(key, obs::EventType::kCleanup);
  flows_.erase(key);
}

}  // namespace yoda
