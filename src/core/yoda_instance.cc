#include "src/core/yoda_instance.h"

#include <algorithm>
#include <utility>

namespace yoda {

YodaInstance::YodaInstance(sim::Simulator* simulator, net::Network* network,
                           l4lb::L4Fabric* fabric, TcpStore* store, std::uint64_t seed,
                           YodaInstanceConfig config)
    : sim_(simulator),
      net_(network),
      fabric_(fabric),
      rng_(seed),
      cfg_(config),
      cpu_(config.cpu_costs, config.cores),
      flow_table_(std::max(1, config.flow_table_shards)),
      store_session_(store, simulator),
      handshake_(&pipe_),
      dispatcher_(&pipe_),
      splice_(&pipe_),
      takeover_(&pipe_) {
  registry_ = cfg_.registry;
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  recorder_ = cfg_.recorder;
  const obs::Labels labels{{"instance", obs::FormatIp(cfg_.ip)}};
  auto counter = [&](const char* name) { return &registry_->GetCounter(name, labels); };
  ctr_.flows_started = counter("yoda.flows_started");
  ctr_.flows_completed = counter("yoda.flows_completed");
  ctr_.takeovers_client_side = counter("yoda.takeovers_client_side");
  ctr_.takeovers_server_side = counter("yoda.takeovers_server_side");
  ctr_.takeovers_cookie = counter("yoda.takeovers_cookie");
  ctr_.cookie_rejects = counter("yoda.cookie_rejects");
  ctr_.takeover_misses = counter("yoda.takeover_misses");
  ctr_.takeover_retries = counter("yoda.takeover_retries");
  ctr_.packets_tunneled = counter("yoda.packets_tunneled");
  ctr_.reswitches = counter("yoda.reswitches");
  ctr_.rules_scanned_total = counter("yoda.rules_scanned_total");
  ctr_.selections = counter("yoda.selections");
  ctr_.no_backend_resets = counter("yoda.no_backend_resets");
  ctr_.dropped_unknown_vip = counter("yoda.dropped_unknown_vip");
  ctr_.bad_transition_resets = counter("yoda.bad_transition_resets");
  fenced_writes_ctr_ = counter("yoda.fenced_writes");
  auto histogram = [&](const char* name) { return &registry_->GetHistogram(name, labels); };
  stage_.handshake_ms = histogram("yoda.stage.handshake_ms");
  stage_.dispatch_ms = histogram("yoda.stage.dispatch_ms");
  stage_.server_connect_ms = histogram("yoda.stage.server_connect_ms");
  stage_.store_ms = histogram("yoda.stage.store_ms");
  stage_.takeover_ms = histogram("yoda.stage.takeover_ms");
  stage_.connection_phase_ms = histogram("yoda.connection_phase_ms");
  store_session_.set_store_wait_histogram(stage_.store_ms);
  store_session_.set_journal_flush_depth_histogram(
      &registry_->GetHistogram("yoda.store.journal_flush_depth", labels));
  store_session_.set_liveness(&failed_);
  store_session_.set_journal_flush_interval(cfg_.journal_flush_interval);
  // Fig 10's "sets per request" plus the journal demotion counters, computed
  // from the session stats at export time.
  auto provider_gauge = [&](const char* name, std::function<double()> fn) {
    obs::Gauge& g = registry_->GetGauge(name, labels);
    g.SetProvider(std::move(fn));
    provider_gauges_.push_back(&g);
  };
  provider_gauge("yoda.store.sets_per_request", [this]() {
    const StoreSessionStats& st = store_session_.stats();
    const double flows = static_cast<double>(ctr_.flows_started->value());
    return static_cast<double>(st.ack_point_writes + st.sync_removes) /
           std::max(1.0, flows);
  });
  provider_gauge("yoda.store.journal_appends", [this]() {
    return static_cast<double>(store_session_.stats().journal_appends);
  });
  provider_gauge("yoda.store.journal_coalesced", [this]() {
    return static_cast<double>(store_session_.stats().journal_coalesced);
  });
  provider_gauge("yoda.store.journal_flushes", [this]() {
    return static_cast<double>(store_session_.stats().journal_flushes);
  });

  pipe_.sim = sim_;
  pipe_.net = net_;
  pipe_.fabric = fabric_;
  pipe_.store = &store_session_;
  pipe_.rng = &rng_;
  pipe_.cpu = &cpu_;
  pipe_.cfg = &cfg_;
  pipe_.self_ip = cfg_.ip;
  pipe_.failed = &failed_;
  pipe_.flows = &flow_table_;
  pipe_.vips = &vips_;
  pipe_.backend_health = &backend_health_;
  pipe_.backend_load = &backend_load_;
  pipe_.recorder = recorder_;
  pipe_.ctr = &ctr_;
  pipe_.stage = &stage_;
  pipe_.handshake = &handshake_;
  pipe_.dispatcher = &dispatcher_;
  pipe_.splice = &splice_;
  pipe_.takeover = &takeover_;
  pipe_.count_new_connection = [this](net::IpAddr vip) {
    traffic_[vip].new_connections += 1;
    VipCountersFor(vip).new_connections->Inc();
  };

  net_->Attach(cfg_.ip, this);
  if (cfg_.flow_idle_timeout > 0) {
    ArmIdleScan();
  }
}

YodaInstance::~YodaInstance() {
  for (obs::Gauge* g : provider_gauges_) {
    g->Set(g->value());  // Freeze: the provider captures `this`.
  }
}

void YodaInstance::ArmIdleScan() {
  sim_->After(
      cfg_.idle_scan_interval,
      [this]() {
        IdleScan();
        ArmIdleScan();
      },
      /*daemon=*/true);
}

void YodaInstance::IdleScan() {
  if (failed_ || cfg_.flow_idle_timeout <= 0) {
    return;
  }
  const sim::Time now = sim_->now();
  const sim::Time deadline =
      now > cfg_.flow_idle_timeout ? now - cfg_.flow_idle_timeout : 0;
  for (const FlowKey& key : flow_table_.CollectIdle(deadline)) {
    pipe_.CleanupFlow(key, /*remove_from_store=*/true);
  }
}

YodaInstanceStats YodaInstance::stats() const {
  YodaInstanceStats s;
  s.flows_started = ctr_.flows_started->value();
  s.flows_completed = ctr_.flows_completed->value();
  s.takeovers_client_side = ctr_.takeovers_client_side->value();
  s.takeovers_server_side = ctr_.takeovers_server_side->value();
  s.takeovers_cookie = ctr_.takeovers_cookie->value();
  s.cookie_rejects = ctr_.cookie_rejects->value();
  s.takeover_misses = ctr_.takeover_misses->value();
  s.takeover_retries = ctr_.takeover_retries->value();
  s.packets_tunneled = ctr_.packets_tunneled->value();
  s.reswitches = ctr_.reswitches->value();
  s.rules_scanned_total = ctr_.rules_scanned_total->value();
  s.selections = ctr_.selections->value();
  s.no_backend_resets = ctr_.no_backend_resets->value();
  s.dropped_unknown_vip = ctr_.dropped_unknown_vip->value();
  s.bad_transition_resets = ctr_.bad_transition_resets->value();
  s.fenced_writes = fenced_writes_ctr_->value();
  return s;
}

YodaInstance::VipCounters& YodaInstance::VipCountersFor(net::IpAddr vip) {
  auto it = vip_counters_.find(vip);
  if (it == vip_counters_.end()) {
    const obs::Labels labels{{"instance", obs::FormatIp(cfg_.ip)},
                             {"vip", obs::FormatIp(vip)}};
    VipCounters c;
    c.new_connections = &registry_->GetCounter("yoda.vip.new_connections", labels);
    c.bytes = &registry_->GetCounter("yoda.vip.bytes", labels);
    it = vip_counters_.emplace(vip, c).first;
  }
  return it->second;
}

bool YodaInstance::StaleControlToken(std::uint64_t token) {
  if (token == 0) {
    return false;  // Unfenced writes always apply (single-controller mode).
  }
  if (token < control_token_) {
    fenced_writes_ctr_->Inc();
    if (recorder_ != nullptr) {
      recorder_->RecordSystem(sim_->now(), obs::EventType::kFencedWrite, cfg_.ip,
                              (token << 32) | (control_token_ & 0xffffffffULL));
    }
    return true;  // A deposed leader's write; the fleet has moved on.
  }
  control_token_ = token;
  return false;
}

bool YodaInstance::InstallVip(net::IpAddr vip, net::Port vip_port,
                              std::vector<rules::Rule> vip_rules, std::uint64_t token) {
  audit_.Check();
  if (StaleControlToken(token)) {
    return false;
  }
  VipState& state = vips_[vip];
  state.vip_port = vip_port;
  state.table.ReplaceAll(std::move(vip_rules));
  // The backend set only grows on rule updates: flows established under the
  // old policy keep their backend (§5.2), so packets from retired backends
  // must still classify as server-side traffic.
  for (const rules::Rule& r : state.table.rules()) {
    for (const rules::Backend& b : r.action.backends) {
      state.backends.insert(b.ip);
    }
  }
  return true;
}

void YodaInstance::InstallVipTls(net::IpAddr vip, std::string certificate,
                                 std::uint64_t service_key) {
  vips_[vip].tls = VipTls{std::move(certificate), service_key};
}

bool YodaInstance::RemoveVip(net::IpAddr vip, std::uint64_t token) {
  audit_.Check();
  if (StaleControlToken(token)) {
    return false;
  }
  // Drain before withdrawing: every in-flight flow gets an explicit RST
  // (and its TCPStore keys removed) instead of silently leaking until the
  // idle GC. Sticky bindings and the rule table die with the VipState.
  for (const FlowKey& key : flow_table_.CollectVip(vip)) {
    pipe_.ResetFlowToClient(key, obs::FlowResetReason::kVipRemoved);
  }
  vips_.erase(vip);
  traffic_.erase(vip);
  vip_counters_.erase(vip);
  return true;
}

int YodaInstance::RuleCount(net::IpAddr vip) const {
  auto it = vips_.find(vip);
  return it == vips_.end() ? 0 : static_cast<int>(it->second.table.size());
}

bool YodaInstance::SetBackendHealth(net::IpAddr backend, bool healthy, std::uint64_t token) {
  audit_.Check();
  if (StaleControlToken(token)) {
    return false;
  }
  backend_health_[backend] = healthy;
  return true;
}

bool YodaInstance::SetStoreMode(net::IpAddr vip, StoreMode mode, std::uint64_t epoch,
                                std::uint64_t token) {
  audit_.Check();
  if (StaleControlToken(token)) {
    return false;
  }
  VipState* state = FindVip(vip);
  if (state == nullptr) {
    return false;
  }
  state->store_mode = mode;
  state->store_epoch = epoch;
  if (recorder_ != nullptr) {
    recorder_->RecordSystem(sim_->now(), obs::EventType::kStoreModeSet, vip,
                            (static_cast<std::uint64_t>(mode) << 32) |
                                (epoch & 0xffffffffULL));
  }
  return true;
}

void YodaInstance::Fail() {
  audit_.Check();
  failed_ = true;
  flow_table_.Clear();
  traffic_.clear();
  backend_load_.clear();
  // Unflushed journal entries die with the instance: whoever adopts the flow
  // either reconstructs it from the cookie or finds the last flushed state.
  store_session_.DropJournal();
}

void YodaInstance::Recover() {
  audit_.Check();
  failed_ = false;
}

void YodaInstance::OnColdRestart() {
  Fail();
  Recover();
}

VipState* YodaInstance::FindVip(net::IpAddr vip) {
  auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

void YodaInstance::MeterVip(net::IpAddr vip, const net::Packet& p) {
  traffic_[vip].bytes += p.payload.size();
  VipCountersFor(vip).bytes->Add(p.payload.size());
}

std::map<net::IpAddr, VipTraffic> YodaInstance::DrainTrafficCounters() {
  std::map<net::IpAddr, VipTraffic> out(traffic_.begin(), traffic_.end());
  traffic_.clear();
  return out;
}

void YodaInstance::HandlePacket(const net::Packet& p) {
  audit_.Check();
  if (failed_) {
    return;
  }
  VipState* vip = FindVip(p.dst);
  if (vip == nullptr) {
    ctr_.dropped_unknown_vip->Inc();
    return;
  }
  MeterVip(p.dst, p);
  if (p.dport == vip->vip_port) {
    LocalFlow* f = flow_table_.Find(FlowKey{p.dst, p.dport, p.src, p.sport});
    if (f != nullptr) {
      f->last_packet = sim_->now();
    }
    HandleClientSide(p, *vip);
  } else if (flow_table_.HasServer(p.tuple()) || vip->backends.contains(p.src)) {
    HandleServerSide(p, *vip);
  } else {
    ctr_.dropped_unknown_vip->Inc();
  }
}

void YodaInstance::HandleClientSide(const net::Packet& p, VipState& vip) {
  const FlowKey key{p.dst, p.dport, p.src, p.sport};

  if (p.syn() && !p.ack_flag()) {
    handshake_.OnClientSyn(p, vip);
    return;
  }

  LocalFlow* flow = flow_table_.Find(key);
  if (flow == nullptr) {
    takeover_.TakeoverClientSide(key, p);
    return;
  }
  if (flow->lookup_pending()) {
    flow->stalled.push_back(p);
    return;
  }

  if (p.rst()) {
    if (flow->established()) {
      net::Packet rst = p;
      rst.src = key.vip;
      rst.sport = key.client_port;
      rst.dst = flow->st.backend_ip;
      rst.dport = flow->st.backend_port;
      rst.seq = p.seq + flow->st.seq_delta_c2s;
      rst.ack = p.ack - flow->st.seq_delta_s2c;
      rst.encap_dst = 0;
      pipe_.EmitForwarded(std::move(rst));
    }
    pipe_.Trace(key, obs::EventType::kFlowReset,
                static_cast<std::uint64_t>(obs::FlowResetReason::kClientAbort));
    pipe_.CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }

  if (flow->established()) {
    splice_.TunnelFromClient(key, *flow, vip, p);
  } else {
    dispatcher_.OnClientData(key, *flow, vip, p);
  }
}

void YodaInstance::HandleServerSide(const net::Packet& p, VipState& vip) {
  const FlowKey* bound = flow_table_.FindServer(p.tuple());
  if (bound == nullptr) {
    takeover_.TakeoverServerSide(p, vip);
    return;
  }
  const FlowKey key = *bound;
  LocalFlow* flow = flow_table_.Find(key);
  if (flow == nullptr) {
    flow_table_.UnbindServer(p.tuple());
    takeover_.TakeoverServerSide(p, vip);
    return;
  }
  flow->last_packet = sim_->now();
  if (flow->lookup_pending()) {
    flow->stalled.push_back(p);
    return;
  }
  // Mirror-leg traffic is handled outside the primary path. Once a winner
  // is promoted it IS the primary, so only undecided or losing legs match.
  if (!flow->mirror_legs.empty() &&
      !(flow->mirror_decided && p.src == flow->st.backend_ip &&
        p.sport == flow->st.backend_port) &&
      splice_.HandleMirrorPacket(key, *flow, p)) {
    return;
  }
  if (p.syn() && p.ack_flag()) {
    if (!flow->established()) {
      handshake_.OnServerSynAck(key, *flow, p);
    } else {
      // Duplicate SYN-ACK: re-ack at the current position.
      net::Packet ack;
      ack.src = key.vip;
      ack.sport = key.client_port;
      ack.dst = flow->st.backend_ip;
      ack.dport = flow->st.backend_port;
      ack.seq = flow->assembled_end + flow->st.seq_delta_c2s;
      ack.ack = flow->st.server_isn + 1;
      ack.flags = net::kAck;
      pipe_.Emit(std::move(ack));
    }
    return;
  }
  if (p.rst()) {
    net::Packet rst = p;
    rst.src = key.vip;
    rst.sport = key.vip_port;
    rst.dst = key.client_ip;
    rst.dport = key.client_port;
    rst.seq = p.seq + flow->st.seq_delta_s2c;
    rst.ack = p.ack - flow->st.seq_delta_c2s;
    rst.encap_dst = 0;
    pipe_.EmitForwarded(std::move(rst));
    pipe_.CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  if (flow->established()) {
    splice_.TunnelFromServer(key, *flow, p);
  }
}

}  // namespace yoda
