#include "src/core/controller.h"

#include <algorithm>

namespace yoda {

Controller::Controller(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
                       ControllerConfig config)
    : sim_(simulator),
      fabric_(fabric),
      cfg_(config),
      state_(simulator, config.recorder),
      monitor_(network, HealthMonitorConfig{config.fail_after_misses, config.readmit_instances,
                                            config.readmit_after_successes,
                                            config.readmit_penalty_cap}),
      scaler_(AutoScalerConfig{config.scale_out_cpu, config.scale_out_step,
                               config.scale_out_ticks}),
      actuator_(simulator, fabric, &state_,
                FleetActuatorConfig{config.mux_stagger, config.registry, config.recorder}) {
  if (cfg_.registry != nullptr) {
    monitor_ticks_ctr_ = &cfg_.registry->GetCounter("controller.monitor_ticks");
    detected_failures_ctr_ = &cfg_.registry->GetCounter("controller.detected_failures");
    spares_activated_ctr_ = &cfg_.registry->GetCounter("controller.spares_activated");
  }
}

void Controller::Log(const std::string& what) { events_.push_back({sim_->now(), what}); }

void Controller::SystemEvent(obs::EventType type, std::uint32_t where, std::uint64_t detail) {
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->RecordSystem(sim_->now(), type, where, detail);
  }
}

void Controller::ExecutePlan(const ExecPlan& plan) {
  if (!plan.steps.empty()) {
    actuator_.Execute(plan);
  }
}

std::vector<std::pair<net::IpAddr, bool>> Controller::BackendHealthList() const {
  std::vector<std::pair<net::IpAddr, bool>> health;
  health.reserve(monitor_.backends().size());
  for (net::IpAddr b : monitor_.backends()) {
    health.emplace_back(b, monitor_.IsBackendUp(b));
  }
  return health;
}

void Controller::AddInstance(YodaInstance* instance) {
  monitor_.AddActive(instance);
  actuator_.RegisterInstance(instance);
  if (!state_.vips().empty()) {
    // Late-added instances catch up on every desired VIP's rules + health.
    const std::uint64_t epoch =
        state_.NoteInstance(ChangeKind::kInstanceAdmitted, instance->ip());
    ExecutePlan(BuildCatchUpPlan(state_, epoch, instance->ip(), BackendHealthList(),
                                 /*repool=*/false, monitor_.ActiveIps()));
  }
}

void Controller::AddSpareInstance(YodaInstance* instance) {
  spares_.push_back(instance);
  actuator_.RegisterInstance(instance);
}

void Controller::AddKvServer(kv::KvServer* server) { kv_servers_.push_back(server); }

void Controller::AddBackend(net::IpAddr backend) { monitor_.AddBackend(backend); }

void Controller::DefineVip(net::IpAddr vip, net::Port vip_port,
                           std::vector<rules::Rule> vip_rules) {
  const std::size_t n_rules = vip_rules.size();
  const std::uint64_t epoch = state_.DefineVip(vip, vip_port, std::move(vip_rules));
  ExecutePlan(BuildDefineVipPlan(state_, epoch, vip, monitor_.ActiveIps()));
  Log("define vip " + net::IpToString(vip) + " (" + std::to_string(n_rules) + " rules)");
}

void Controller::RemoveVip(net::IpAddr vip) {
  const std::uint64_t epoch = state_.RemoveVip(vip);
  ExecutePlan(BuildRemoveVipPlan(epoch, vip, monitor_.ActiveIps()));
  Log("remove vip " + net::IpToString(vip));
}

void Controller::UpdateVipRules(net::IpAddr vip, std::vector<rules::Rule> vip_rules) {
  if (!state_.HasVip(vip)) {
    return;
  }
  const std::uint64_t epoch = state_.UpdateRules(vip, std::move(vip_rules));
  ExecutePlan(BuildRuleUpdatePlan(state_, epoch, vip, monitor_.ActiveIps()));
  Log("update rules for vip " + net::IpToString(vip));
}

void Controller::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Daemon events: the monitor must not keep the simulation alive on its own.
  ArmMonitor();
}

void Controller::ArmMonitor() {
  sim_->After(
      cfg_.monitor_interval,
      [this]() {
        MonitorTick();
        ArmMonitor();
      },
      /*daemon=*/true);
}

void Controller::MonitorTick() {
  if (monitor_ticks_ctr_ != nullptr) {
    monitor_ticks_ctr_->Inc();
  }
  for (const HealthTransition& t : monitor_.Tick()) {
    ApplyTransition(t);
  }
  if (cfg_.auto_scale) {
    RunAutoScale();
  }
}

void Controller::ApplyTransition(const HealthTransition& t) {
  switch (t.kind) {
    case HealthTransition::Kind::kInstanceSuspected:
      SystemEvent(obs::EventType::kInstanceSuspected, t.addr,
                  static_cast<std::uint64_t>(t.detail));
      Log("yoda instance " + net::IpToString(t.addr) + " suspected (miss " +
          std::to_string(t.detail) + "/" + std::to_string(cfg_.fail_after_misses) +
          "); still pooled");
      break;
    case HealthTransition::Kind::kInstanceFailed:
      HandleInstanceFailure(t);
      break;
    case HealthTransition::Kind::kInstanceReadmitted:
      HandleReadmission(t);
      break;
    case HealthTransition::Kind::kBackendDown:
    case HealthTransition::Kind::kBackendUp: {
      const bool up = t.kind == HealthTransition::Kind::kBackendUp;
      SystemEvent(up ? obs::EventType::kBackendUp : obs::EventType::kBackendDown, t.addr);
      ExecutePlan(BuildBackendHealthPlan(state_.epoch(), t.addr, up, monitor_.ActiveIps()));
      Log(std::string("backend ") + net::IpToString(t.addr) + (up ? " recovered" : " failed"));
      break;
    }
  }
}

void Controller::HandleInstanceFailure(const HealthTransition& t) {
  if (detected_failures_ctr_ != nullptr) {
    detected_failures_ctr_->Inc();
  }
  SystemEvent(obs::EventType::kInstanceDown, t.addr);
  Log("yoda instance " + net::IpToString(t.addr) + " failed; removed from L4 mappings");
  // Desired state first: scrub the dead instance from every assignment so
  // AssignedInstances() never reports it, then evict it from the fabric and
  // reassert the (scrubbed) pools. Unstaggered — a pooled dead member is
  // blackholed traffic.
  state_.NoteInstance(ChangeKind::kInstanceFailed, t.addr);
  state_.ScrubInstance(t.addr);
  ExecutePlan(BuildEvictPlan(state_, state_.epoch(), t.addr, monitor_.ActiveIps()));
  scaler_.ResetHysteresis();
  RepairHeadroom();
}

void Controller::HandleReadmission(const HealthTransition& t) {
  const std::uint64_t epoch = state_.NoteInstance(ChangeKind::kInstanceAdmitted, t.addr);
  ExecutePlan(BuildCatchUpPlan(state_, epoch, t.addr, BackendHealthList(),
                               /*repool=*/true, monitor_.ActiveIps()));
  SystemEvent(obs::EventType::kInstanceReadmitted, t.addr);
  Log("yoda instance " + net::IpToString(t.addr) + " readmitted after " +
      std::to_string(t.detail) + " healthy probes");
}

void Controller::RepairHeadroom() {
  if (engine_.UnderHeadroom(state_).empty()) {
    return;
  }
  AssignmentEngine::FleetRound repair = engine_.PlanRepair(state_, monitor_.active());
  if (!repair.round.feasible) {
    return;
  }
  const std::uint64_t epoch = state_.SetAssignments(repair.pools);
  ExecutePlan(BuildRolloutPlan(epoch, repair.round.steps, repair.instance_order,
                               "repair failure headroom"));
  Log("repaired failure headroom for " + std::to_string(repair.pools.size()) + " vip(s)");
}

void Controller::RunAutoScale() {
  const int n = scaler_.Tick(monitor_.active(), static_cast<int>(spares_.size()), sim_->now());
  if (n == 0) {
    return;
  }
  for (int k = 0; k < n; ++k) {
    YodaInstance* spare = spares_.back();
    spares_.pop_back();
    monitor_.AddActive(spare);
    const std::uint64_t epoch = state_.NoteInstance(ChangeKind::kInstanceAdmitted, spare->ip());
    ExecutePlan(BuildCatchUpPlan(state_, epoch, spare->ip(), BackendHealthList(),
                                 /*repool=*/false, monitor_.ActiveIps()));
    SystemEvent(obs::EventType::kSpareActivated, spare->ip());
    if (spares_activated_ctr_ != nullptr) {
      spares_activated_ctr_->Inc();
    }
    Log("activated spare instance " + net::IpToString(spare->ip()));
  }
  ExecutePlan(BuildPoolSyncPlan(state_, state_.epoch(), monitor_.ActiveIps(),
                                /*staggered=*/true, "scale-out pool sync"));
  for (YodaInstance* i : monitor_.active()) {
    i->cpu().ResetWindow(sim_->now());
  }
}

std::vector<net::IpAddr> Controller::AssignedInstances(net::IpAddr vip) const {
  const std::vector<net::IpAddr>* pool = state_.DesiredPool(vip);
  return pool == nullptr ? std::vector<net::IpAddr>{} : *pool;
}

bool Controller::ApplyManyToMany(const std::map<net::IpAddr, VipDemand>& demand,
                                 double traffic_capacity, int rule_capacity,
                                 double migration_limit) {
  AssignmentRoundConfig round_cfg{traffic_capacity, rule_capacity, migration_limit};
  AssignmentEngine::FleetRound fr =
      engine_.PlanFleetRound(state_, monitor_.active(), demand, round_cfg);
  if (!fr.round.feasible) {
    Log("many-to-many assignment infeasible: " + fr.round.note);
    return false;
  }
  const std::uint64_t epoch = state_.SetAssignments(fr.pools);
  ExecutePlan(BuildRolloutPlan(epoch, fr.round.steps, fr.instance_order,
                               "assignment rollout"));
  Log("applied many-to-many assignment (" + std::to_string(fr.round.result.instances_used) +
      " instances, migrated " +
      sim::FormatDouble(100 * fr.round.result.migrated_fraction, 1) + "% of traffic)");
  return true;
}

void Controller::EnablePeriodicAssignment(PeriodicAssignmentConfig config) {
  periodic_ = config;
  ArmAssignmentRound();
}

void Controller::ArmAssignmentRound() {
  sim_->After(
      periodic_->interval,
      [this]() {
        AssignmentRoundFromCounters();
        ArmAssignmentRound();
      },
      /*daemon=*/true);
}

void Controller::RunAssignmentRoundNow() {
  if (!periodic_) {
    periodic_ = PeriodicAssignmentConfig{};
  }
  AssignmentRoundFromCounters();
}

void Controller::AssignmentRoundFromCounters() {
  if (!periodic_ || state_.vips().empty() || monitor_.active().empty()) {
    return;
  }
  DemandDerivationConfig dcfg{periodic_->traffic_capacity, periodic_->replication_factor,
                              periodic_->oversubscription};
  const std::map<net::IpAddr, VipDemand> demand = AssignmentEngine::DemandFromCounters(
      state_, monitor_.active(), sim::ToSeconds(periodic_->interval), dcfg);
  if (ApplyManyToMany(demand, periodic_->traffic_capacity, periodic_->rule_capacity,
                      periodic_->migration_limit)) {
    ++assignment_rounds_;
  }
}

}  // namespace yoda
