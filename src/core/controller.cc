#include "src/core/controller.h"

#include <algorithm>
#include <utility>

namespace yoda {

FleetActuatorConfig Controller::ActuatorConfigFor(Controller* self,
                                                  const ControllerConfig& config) {
  FleetActuatorConfig out;
  out.mux_stagger = config.mux_stagger;
  out.registry = config.registry;
  out.recorder = config.recorder;
  out.max_step_retries = config.max_step_retries;
  out.step_retry_backoff = config.step_retry_backoff;
  out.run_on_instance = config.run_on_instance;
  out.instance_down = config.instance_down;
  if (config.ha.enabled) {
    out.token_valid = [self](std::uint64_t token) {
      return !self->crashed_ && self->lease_ != nullptr && self->lease_->is_leader() &&
             token == self->lease_->token();
    };
    out.on_step_applied = [self](const ExecPlan& plan, const ExecStep& step) {
      if (plan.plan_id != 0 && self->ActingLeader()) {
        self->journal_->PutApplied(plan, step);
      }
    };
    out.on_plan_done = [self](const ExecPlan& plan, bool /*ok*/) {
      if (plan.plan_id != 0 && self->ActingLeader()) {
        self->journal_->PutDone(plan);
      }
    };
  }
  return out;
}

Controller::Controller(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
                       ControllerConfig config)
    : sim_(simulator),
      fabric_(fabric),
      cfg_(config),
      state_(simulator, config.recorder),
      monitor_(network, HealthMonitorConfig{config.fail_after_misses, config.readmit_instances,
                                            config.readmit_after_successes,
                                            config.readmit_penalty_cap,
                                            config.probe_network_only}),
      scaler_(AutoScalerConfig{config.scale_out_cpu, config.scale_out_step,
                               config.scale_out_ticks}),
      actuator_(simulator, fabric, &state_, ActuatorConfigFor(this, config)) {
  if (cfg_.registry != nullptr) {
    monitor_ticks_ctr_ = &cfg_.registry->GetCounter("controller.monitor_ticks");
    detected_failures_ctr_ = &cfg_.registry->GetCounter("controller.detected_failures");
    spares_activated_ctr_ = &cfg_.registry->GetCounter("controller.spares_activated");
  }
  if (cfg_.ha.enabled) {
    journal_ = std::make_unique<ControlJournal>(
        sim_, cfg_.ha.store, ControlJournalConfig{cfg_.ha.snapshot_every, cfg_.registry});
    state_.SetChangeSink([this](const DurableChange& change) {
      // Only the acting leader journals: a standby's ControlState never
      // mutates (the public API is leader-gated), and the restore path
      // applies changes without firing the sink — but guard anyway so a
      // deposed replica's stragglers never scribble on the journal.
      if (ActingLeader()) {
        journal_->OnChange(state_, change);
      }
    });
    LeaderLeaseConfig lease_cfg;
    lease_cfg.self = cfg_.ha.self;
    lease_cfg.ttl = cfg_.ha.lease_ttl;
    lease_cfg.renew_interval = cfg_.ha.lease_renew;
    lease_cfg.acquire_interval = cfg_.ha.lease_acquire;
    lease_cfg.recorder = cfg_.recorder;
    lease_ = std::make_unique<LeaderLease>(
        sim_, cfg_.ha.store, lease_cfg,
        [this](std::uint64_t token) { OnLeaderAcquired(token); },
        [this]() { OnLeaderLost(); });
  }
}

bool Controller::ActingLeader() const {
  return !cfg_.ha.enabled || (!crashed_ && lease_ != nullptr && lease_->is_leader());
}

void Controller::Log(const std::string& what) { events_.push_back({sim_->now(), what}); }

void Controller::SystemEvent(obs::EventType type, std::uint32_t where, std::uint64_t detail) {
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->RecordSystem(sim_->now(), type, where, detail);
  }
}

void Controller::ExecutePlan(ExecPlan plan) {
  if (plan.steps.empty()) {
    return;
  }
  if (cfg_.ha.enabled && ActingLeader()) {
    plan.fencing_token = lease_->token();
    plan.plan_id = journal_->NextPlanId();
    journal_->PutPlan(plan);
  }
  actuator_.Execute(plan);
}

std::vector<std::pair<net::IpAddr, bool>> Controller::BackendHealthList() const {
  std::vector<std::pair<net::IpAddr, bool>> health;
  health.reserve(monitor_.backends().size());
  for (net::IpAddr b : monitor_.backends()) {
    health.emplace_back(b, monitor_.IsBackendUp(b));
  }
  return health;
}

void Controller::AddInstance(YodaInstance* instance) {
  monitor_.AddActive(instance);
  actuator_.RegisterInstance(instance);
  if (!state_.vips().empty() && ActingLeader()) {
    // Late-added instances catch up on every desired VIP's rules + health.
    const std::uint64_t epoch =
        state_.NoteInstance(ChangeKind::kInstanceAdmitted, instance->ip());
    ExecutePlan(BuildCatchUpPlan(state_, epoch, instance->ip(), BackendHealthList(),
                                 /*repool=*/false, monitor_.ActiveIps()));
  }
}

void Controller::AddSpareInstance(YodaInstance* instance) {
  spares_.push_back(instance);
  actuator_.RegisterInstance(instance);
}

void Controller::AddKvServer(kv::KvServer* server) { kv_servers_.push_back(server); }

void Controller::AddBackend(net::IpAddr backend) { monitor_.AddBackend(backend); }

void Controller::DefineVip(net::IpAddr vip, net::Port vip_port,
                           std::vector<rules::Rule> vip_rules) {
  if (!ActingLeader()) {
    return;
  }
  const std::size_t n_rules = vip_rules.size();
  const std::uint64_t epoch = state_.DefineVip(vip, vip_port, std::move(vip_rules));
  ExecutePlan(BuildDefineVipPlan(state_, epoch, vip, monitor_.ActiveIps()));
  Log("define vip " + net::IpToString(vip) + " (" + std::to_string(n_rules) + " rules)");
}

void Controller::RemoveVip(net::IpAddr vip) {
  if (!ActingLeader()) {
    return;
  }
  const std::uint64_t epoch = state_.RemoveVip(vip);
  ExecutePlan(BuildRemoveVipPlan(epoch, vip, monitor_.ActiveIps()));
  Log("remove vip " + net::IpToString(vip));
}

void Controller::UpdateVipRules(net::IpAddr vip, std::vector<rules::Rule> vip_rules) {
  if (!ActingLeader() || !state_.HasVip(vip)) {
    return;
  }
  const std::uint64_t epoch = state_.UpdateRules(vip, std::move(vip_rules));
  ExecutePlan(BuildRuleUpdatePlan(state_, epoch, vip, monitor_.ActiveIps()));
  Log("update rules for vip " + net::IpToString(vip));
}

void Controller::SetStoreMode(net::IpAddr vip, StoreMode mode) {
  if (!ActingLeader() || !state_.HasVip(vip)) {
    return;
  }
  const std::uint64_t epoch = state_.SetStoreMode(vip, mode);
  ExecutePlan(BuildStoreModePlan(state_, epoch, vip, mode, monitor_.ActiveIps()));
  Log(std::string("store mode ") + StoreModeName(mode) + " for vip " + net::IpToString(vip));
}

void Controller::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (cfg_.ha.enabled) {
    // HA: contend for the lease; the monitor arms on first acquisition so a
    // standby never probes-and-evicts a fleet it does not lead.
    lease_->Start();
    return;
  }
  // Daemon events: the monitor must not keep the simulation alive on its own.
  monitor_armed_ = true;
  ArmMonitor();
}

void Controller::ArmMonitor() {
  sim_->After(
      cfg_.monitor_interval,
      [this]() {
        MonitorTick();
        ArmMonitor();
      },
      /*daemon=*/true);
}

void Controller::MonitorTick() {
  if (!ActingLeader()) {
    return;
  }
  if (monitor_ticks_ctr_ != nullptr) {
    monitor_ticks_ctr_->Inc();
  }
  for (const HealthTransition& t : monitor_.Tick()) {
    ApplyTransition(t);
  }
  if (cfg_.auto_scale) {
    RunAutoScale();
  }
}

void Controller::ApplyTransition(const HealthTransition& t) {
  switch (t.kind) {
    case HealthTransition::Kind::kInstanceSuspected:
      SystemEvent(obs::EventType::kInstanceSuspected, t.addr,
                  static_cast<std::uint64_t>(t.detail));
      Log("yoda instance " + net::IpToString(t.addr) + " suspected (miss " +
          std::to_string(t.detail) + "/" + std::to_string(cfg_.fail_after_misses) +
          "); still pooled");
      break;
    case HealthTransition::Kind::kInstanceFailed:
      HandleInstanceFailure(t);
      break;
    case HealthTransition::Kind::kInstanceReadmitted:
      HandleReadmission(t);
      break;
    case HealthTransition::Kind::kBackendDown:
    case HealthTransition::Kind::kBackendUp: {
      const bool up = t.kind == HealthTransition::Kind::kBackendUp;
      SystemEvent(up ? obs::EventType::kBackendUp : obs::EventType::kBackendDown, t.addr);
      ExecutePlan(BuildBackendHealthPlan(state_.epoch(), t.addr, up, monitor_.ActiveIps()));
      Log(std::string("backend ") + net::IpToString(t.addr) + (up ? " recovered" : " failed"));
      break;
    }
  }
}

void Controller::HandleInstanceFailure(const HealthTransition& t) {
  if (detected_failures_ctr_ != nullptr) {
    detected_failures_ctr_->Inc();
  }
  SystemEvent(obs::EventType::kInstanceDown, t.addr);
  Log("yoda instance " + net::IpToString(t.addr) + " failed; removed from L4 mappings");
  // Desired state first: scrub the dead instance from every assignment so
  // AssignedInstances() never reports it, then evict it from the fabric and
  // reassert the (scrubbed) pools. Unstaggered — a pooled dead member is
  // blackholed traffic.
  state_.NoteInstance(ChangeKind::kInstanceFailed, t.addr);
  state_.ScrubInstance(t.addr);
  ExecutePlan(BuildEvictPlan(state_, state_.epoch(), t.addr, monitor_.ActiveIps()));
  scaler_.ResetHysteresis();
  RepairHeadroom();
}

void Controller::HandleReadmission(const HealthTransition& t) {
  const std::uint64_t epoch = state_.NoteInstance(ChangeKind::kInstanceAdmitted, t.addr);
  ExecutePlan(BuildCatchUpPlan(state_, epoch, t.addr, BackendHealthList(),
                               /*repool=*/true, monitor_.ActiveIps()));
  SystemEvent(obs::EventType::kInstanceReadmitted, t.addr);
  Log("yoda instance " + net::IpToString(t.addr) + " readmitted after " +
      std::to_string(t.detail) + " healthy probes");
}

void Controller::RepairHeadroom() {
  if (engine_.UnderHeadroom(state_).empty()) {
    return;
  }
  AssignmentEngine::FleetRound repair = engine_.PlanRepair(state_, monitor_.active());
  if (!repair.round.feasible) {
    return;
  }
  const std::uint64_t epoch = state_.SetAssignments(repair.pools);
  ExecutePlan(BuildRolloutPlan(epoch, repair.round.steps, repair.instance_order,
                               "repair failure headroom"));
  Log("repaired failure headroom for " + std::to_string(repair.pools.size()) + " vip(s)");
}

void Controller::RunAutoScale() {
  const int n = scaler_.Tick(monitor_.active(), static_cast<int>(spares_.size()), sim_->now());
  if (n == 0) {
    return;
  }
  for (int k = 0; k < n; ++k) {
    YodaInstance* spare = spares_.back();
    spares_.pop_back();
    monitor_.AddActive(spare);
    const std::uint64_t epoch = state_.NoteInstance(ChangeKind::kInstanceAdmitted, spare->ip());
    ExecutePlan(BuildCatchUpPlan(state_, epoch, spare->ip(), BackendHealthList(),
                                 /*repool=*/false, monitor_.ActiveIps()));
    SystemEvent(obs::EventType::kSpareActivated, spare->ip());
    if (spares_activated_ctr_ != nullptr) {
      spares_activated_ctr_->Inc();
    }
    Log("activated spare instance " + net::IpToString(spare->ip()));
  }
  ExecutePlan(BuildPoolSyncPlan(state_, state_.epoch(), monitor_.ActiveIps(),
                                /*staggered=*/true, "scale-out pool sync"));
  for (YodaInstance* i : monitor_.active()) {
    i->cpu().ResetWindow(sim_->now());
  }
}

std::vector<net::IpAddr> Controller::AssignedInstances(net::IpAddr vip) const {
  const std::vector<net::IpAddr>* pool = state_.DesiredPool(vip);
  return pool == nullptr ? std::vector<net::IpAddr>{} : *pool;
}

bool Controller::ApplyManyToMany(const std::map<net::IpAddr, VipDemand>& demand,
                                 double traffic_capacity, int rule_capacity,
                                 double migration_limit) {
  if (!ActingLeader()) {
    return false;
  }
  AssignmentRoundConfig round_cfg{traffic_capacity, rule_capacity, migration_limit};
  AssignmentEngine::FleetRound fr =
      engine_.PlanFleetRound(state_, monitor_.active(), demand, round_cfg);
  if (!fr.round.feasible) {
    Log("many-to-many assignment infeasible: " + fr.round.note);
    return false;
  }
  const std::uint64_t epoch = state_.SetAssignments(fr.pools);
  ExecutePlan(BuildRolloutPlan(epoch, fr.round.steps, fr.instance_order,
                               "assignment rollout"));
  Log("applied many-to-many assignment (" + std::to_string(fr.round.result.instances_used) +
      " instances, migrated " +
      sim::FormatDouble(100 * fr.round.result.migrated_fraction, 1) + "% of traffic)");
  return true;
}

void Controller::EnablePeriodicAssignment(PeriodicAssignmentConfig config) {
  periodic_ = config;
  ArmAssignmentRound();
}

void Controller::ArmAssignmentRound() {
  sim_->After(
      periodic_->interval,
      [this]() {
        AssignmentRoundFromCounters();
        ArmAssignmentRound();
      },
      /*daemon=*/true);
}

void Controller::RunAssignmentRoundNow() {
  if (!periodic_) {
    periodic_ = PeriodicAssignmentConfig{};
  }
  AssignmentRoundFromCounters();
}

void Controller::AssignmentRoundFromCounters() {
  if (!ActingLeader() || !periodic_ || state_.vips().empty() || monitor_.active().empty()) {
    return;
  }
  DemandDerivationConfig dcfg{periodic_->traffic_capacity, periodic_->replication_factor,
                              periodic_->oversubscription};
  const std::map<net::IpAddr, VipDemand> demand = AssignmentEngine::DemandFromCounters(
      state_, monitor_.active(), sim::ToSeconds(periodic_->interval), dcfg);
  if (ApplyManyToMany(demand, periodic_->traffic_capacity, periodic_->rule_capacity,
                      periodic_->migration_limit)) {
    ++assignment_rounds_;
  }
}

// --- controller HA ---

void Controller::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  if (lease_ != nullptr) {
    lease_->Stop();  // Stops renewing; the lease expires on its own.
  }
  Log("controller crashed");
}

void Controller::Restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  Log("controller restarted (standby)");
  if (cfg_.ha.enabled && started_) {
    lease_->Start();  // Re-enter the contest; state re-adopts on acquisition.
  }
}

void Controller::OnLeaderAcquired(std::uint64_t token) {
  Log("acquired leader lease (token " + std::to_string(token) + ")");
  // Recover whatever the previous leader journaled before taking any action.
  // The lease may lapse while the async restore walks the store: the adopt
  // callback re-checks that this replica still holds THIS token.
  journal_->Restore([this, token](RestoredControlPlane restored) {
    if (crashed_ || lease_ == nullptr || !lease_->is_leader() || lease_->token() != token) {
      return;  // Deposed (or crashed) mid-restore; the next leader re-runs it.
    }
    AdoptRestored(restored, token);
  });
}

void Controller::OnLeaderLost() {
  // The gates (ActingLeader) and the actuator's token_valid hook do the real
  // work; losing the lease only needs to be visible.
  Log("lost leader lease");
}

void Controller::AdoptRestored(const RestoredControlPlane& restored, std::uint64_t token) {
  if (restored.found) {
    // Snapshot first, then the changelog tail — ApplyDurable replays each
    // change's state effect and re-emits its changelog record at the
    // ORIGINAL epoch/timestamp, so a restored changelog reads like the live
    // one did.
    state_.LoadSnapshot(restored.epoch, restored.vips, restored.assignment);
    for (const DurableChange& change : restored.tail) {
      state_.ApplyDurable(change);
    }
    journal_->AdoptRestored(restored);
    state_.NoteInstance(ChangeKind::kRestored, cfg_.ha.self);
    Log("restored control state at epoch " + std::to_string(state_.epoch()) + " (" +
        std::to_string(restored.vips.size()) + " vip(s), " +
        std::to_string(restored.tail.size()) + " tail change(s), " +
        std::to_string(restored.open_plans.size()) + " open plan(s))");
    for (const RestoredPlan& open : restored.open_plans) {
      ResumePlan(open, token);
    }
  }
  const std::uint64_t epoch = state_.NoteInstance(ChangeKind::kLeaderElected, cfg_.ha.self);
  if (!state_.vips().empty()) {
    // Safety net for the dead leader's unjournaled trailing writes: reassert
    // desired state fleet-wide at a fresh epoch under OUR token. Resumed
    // plans above run at their ORIGINAL (older) epochs, so this resync's
    // writes overtake any stale resumed tail at the muxes.
    ExecutePlan(BuildLeaderTakeoverPlan(state_, epoch, monitor_.ActiveIps()));
    Log("leader takeover resync at epoch " + std::to_string(epoch));
  }
  if (!monitor_armed_) {
    monitor_armed_ = true;
    ArmMonitor();
  }
}

void Controller::ResumePlan(const RestoredPlan& restored, std::uint64_t token) {
  ExecPlan plan = restored.plan;
  std::uint64_t already = 0;
  for (const ExecStep& step : plan.steps) {
    if (restored.applied.count(ControlJournal::StepKey(step)) != 0) {
      // Seed the replay ledger: the dead leader journaled this step as
      // applied, so the resumed run skips it — no step applies twice.
      actuator_.MarkApplied(plan.epoch, step);
      ++already;
    }
  }
  // Re-stamp under OUR lease (the fleet has fenced the dead leader's token);
  // epoch and plan id are preserved — it is the SAME plan, finishing.
  plan.fencing_token = token;
  SystemEvent(obs::EventType::kPlanResumed, static_cast<std::uint32_t>(plan.epoch),
              (already << 32) | (plan.plan_id & 0xffffffffULL));
  journal_->PutPlan(plan);
  actuator_.Execute(plan);
  Log("resumed plan " + std::to_string(plan.plan_id) + " (epoch " +
      std::to_string(plan.epoch) + ", " + std::to_string(already) + "/" +
      std::to_string(plan.steps.size()) + " steps already applied): " + plan.reason);
}

}  // namespace yoda
