#include "src/core/controller.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace yoda {

Controller::Controller(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
                       ControllerConfig config)
    : sim_(simulator), net_(network), fabric_(fabric), cfg_(config) {
  if (cfg_.registry != nullptr) {
    monitor_ticks_ctr_ = &cfg_.registry->GetCounter("controller.monitor_ticks");
    detected_failures_ctr_ = &cfg_.registry->GetCounter("controller.detected_failures");
    rule_updates_ctr_ = &cfg_.registry->GetCounter("controller.rule_updates");
    pool_updates_ctr_ = &cfg_.registry->GetCounter("controller.pool_updates");
    spares_activated_ctr_ = &cfg_.registry->GetCounter("controller.spares_activated");
  }
}

void Controller::Log(const std::string& what) { events_.push_back({sim_->now(), what}); }

void Controller::SystemEvent(obs::EventType type, std::uint32_t where, std::uint64_t detail) {
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->RecordSystem(sim_->now(), type, where, detail);
  }
}

void Controller::AddInstance(YodaInstance* instance) {
  active_.push_back(instance);
  // Late-added instances receive every VIP's rules.
  for (const auto& [vip, entry] : vips_) {
    instance->InstallVip(vip, entry.port, entry.rules);
    for (const auto& [b, up] : backend_up_) {
      instance->SetBackendHealth(b, up);
    }
  }
}

void Controller::AddSpareInstance(YodaInstance* instance) { spares_.push_back(instance); }

void Controller::AddKvServer(kv::KvServer* server) { kv_servers_.push_back(server); }

void Controller::AddBackend(net::IpAddr backend) {
  backends_.push_back(backend);
  backend_up_[backend] = true;
}

std::vector<net::IpAddr> Controller::ActiveIps() const {
  std::vector<net::IpAddr> ips;
  ips.reserve(active_.size());
  for (YodaInstance* i : active_) {
    ips.push_back(i->ip());
  }
  return ips;
}

void Controller::DefineVip(net::IpAddr vip, net::Port vip_port,
                           std::vector<rules::Rule> vip_rules) {
  vips_[vip] = VipEntry{vip_port, vip_rules};
  // §5.2 VIP addition: rules first, then the L4 mapping, so no instance ever
  // receives VIP traffic it has no rules for.
  for (YodaInstance* i : active_) {
    i->InstallVip(vip, vip_port, vip_rules);
  }
  SystemEvent(obs::EventType::kRuleUpdate, vip, vip_rules.size());
  if (rule_updates_ctr_ != nullptr) {
    rule_updates_ctr_->Inc();
  }
  fabric_->AttachVip(vip);
  fabric_->SetVipPool(vip, ActiveIps());
  SystemEvent(obs::EventType::kPoolUpdate, vip, active_.size());
  if (pool_updates_ctr_ != nullptr) {
    pool_updates_ctr_->Inc();
  }
  Log("define vip " + net::IpToString(vip) + " (" + std::to_string(vip_rules.size()) +
      " rules)");
}

void Controller::RemoveVip(net::IpAddr vip) {
  // Reverse order of addition: unmap first, then drop rules.
  fabric_->SetVipPool(vip, {});
  fabric_->DetachVip(vip);
  for (YodaInstance* i : active_) {
    i->RemoveVip(vip);
  }
  vips_.erase(vip);
  Log("remove vip " + net::IpToString(vip));
}

void Controller::UpdateVipRules(net::IpAddr vip, std::vector<rules::Rule> vip_rules) {
  auto it = vips_.find(vip);
  if (it == vips_.end()) {
    return;
  }
  it->second.rules = vip_rules;
  for (YodaInstance* i : active_) {
    i->InstallVip(vip, it->second.port, vip_rules);
  }
  SystemEvent(obs::EventType::kRuleUpdate, vip, vip_rules.size());
  if (rule_updates_ctr_ != nullptr) {
    rule_updates_ctr_->Inc();
  }
  Log("update rules for vip " + net::IpToString(vip));
}

void Controller::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Self-rescheduling monitor loop.
  // Daemon events: the monitor must not keep the simulation alive on its own.
  ArmMonitor();
}

void Controller::ArmMonitor() {
  sim_->After(
      cfg_.monitor_interval,
      [this]() {
        MonitorTick();
        ArmMonitor();
      },
      /*daemon=*/true);
}

void Controller::MonitorTick() {
  if (monitor_ticks_ctr_ != nullptr) {
    monitor_ticks_ctr_->Inc();
  }
  // Yoda instances: the monitor's ping is a ProbePath probe (so fault-plane
  // partitions and loss overlays cost it probes, but gray SYN-filters do
  // not), folded through per-instance hysteresis.
  std::vector<YodaInstance*> failed;
  for (YodaInstance* i : active_) {
    HealthState& hs = health_[i->ip()];
    if (ProbeInstance(i)) {
      hs.miss_streak = 0;
      continue;
    }
    ++hs.miss_streak;
    if (hs.miss_streak >= cfg_.fail_after_misses) {
      failed.push_back(i);
    } else {
      SystemEvent(obs::EventType::kInstanceSuspected, i->ip(),
                  static_cast<std::uint64_t>(hs.miss_streak));
      Log("yoda instance " + net::IpToString(i->ip()) + " suspected (miss " +
          std::to_string(hs.miss_streak) + "/" + std::to_string(cfg_.fail_after_misses) +
          "); still pooled");
    }
  }
  for (YodaInstance* i : failed) {
    HandleInstanceFailure(i);
  }

  // Suspended instances: count healthy probes toward readmission.
  if (cfg_.readmit_instances) {
    for (auto it = suspended_.begin(); it != suspended_.end();) {
      YodaInstance* i = *it;
      HealthState& hs = health_[i->ip()];
      if (!ProbeInstance(i)) {
        hs.success_streak = 0;
        ++it;
        continue;
      }
      ++hs.success_streak;
      if (hs.success_streak < hs.required_successes) {
        ++it;
        continue;
      }
      it = suspended_.erase(it);
      hs.miss_streak = 0;
      hs.success_streak = 0;
      AddInstance(i);  // Reinstalls every VIP's rules + backend health.
      ReprogramAllPools(/*staggered=*/false);
      ++readmissions_;
      SystemEvent(obs::EventType::kInstanceReadmitted, i->ip());
      Log("yoda instance " + net::IpToString(i->ip()) + " readmitted after " +
          std::to_string(hs.required_successes) + " healthy probes");
    }
  }

  // Backend servers: health propagated to every instance's selection oracle.
  for (net::IpAddr b : backends_) {
    const bool up = !net_->IsDown(b);
    if (backend_up_[b] != up) {
      backend_up_[b] = up;
      SystemEvent(up ? obs::EventType::kBackendUp : obs::EventType::kBackendDown, b);
      for (YodaInstance* i : active_) {
        i->SetBackendHealth(b, up);
      }
      Log(std::string("backend ") + net::IpToString(b) + (up ? " recovered" : " failed"));
    }
  }

  // Elastic scaling on mean CPU utilization (§7.3).
  if (cfg_.auto_scale && !active_.empty()) {
    double total = 0;
    for (YodaInstance* i : active_) {
      total += i->cpu().Utilization(sim_->now());
    }
    const double mean = total / static_cast<double>(active_.size());
    if (mean > cfg_.scale_out_cpu) {
      ++over_threshold_ticks_;
    } else {
      over_threshold_ticks_ = 0;
    }
    if (over_threshold_ticks_ >= cfg_.scale_out_ticks && !spares_.empty()) {
      over_threshold_ticks_ = 0;
      for (int k = 0; k < cfg_.scale_out_step && !spares_.empty(); ++k) {
        ActivateSpare();
      }
      ReprogramAllPools(/*staggered=*/true);
      for (YodaInstance* i : active_) {
        i->cpu().ResetWindow(sim_->now());
      }
    }
  }
}

bool Controller::ProbeInstance(YodaInstance* instance) const {
  return !instance->failed() && net_->ProbePath(/*src=*/0, instance->ip());
}

void Controller::HandleInstanceFailure(YodaInstance* instance) {
  ++detected_failures_;
  if (detected_failures_ctr_ != nullptr) {
    detected_failures_ctr_->Inc();
  }
  SystemEvent(obs::EventType::kInstanceDown, instance->ip());
  Log("yoda instance " + net::IpToString(instance->ip()) + " failed; removed from L4 mappings");
  // Remove from every VIP pool on every mux and clear its SNAT pins: the
  // fabric immediately re-ECMPs its traffic over the survivors.
  fabric_->RemoveInstanceEverywhere(instance->ip());
  active_.erase(std::remove(active_.begin(), active_.end(), instance), active_.end());
  ReprogramAllPools(/*staggered=*/false);
  over_threshold_ticks_ = 0;
  if (cfg_.readmit_instances) {
    HealthState& hs = health_[instance->ip()];
    hs.miss_streak = 0;
    hs.success_streak = 0;
    // Flap suppression: a repeat offender must prove itself for longer.
    if (hs.required_successes > 0) {
      ++hs.flaps;
    }
    int required = cfg_.readmit_after_successes;
    for (int f = 0; f < hs.flaps && required < cfg_.readmit_penalty_cap; ++f) {
      required *= 2;
    }
    hs.required_successes = std::min(required, cfg_.readmit_penalty_cap);
    suspended_.push_back(instance);
  }
}

void Controller::ActivateSpare() {
  YodaInstance* spare = spares_.back();
  spares_.pop_back();
  AddInstance(spare);
  SystemEvent(obs::EventType::kSpareActivated, spare->ip());
  if (spares_activated_ctr_ != nullptr) {
    spares_activated_ctr_->Inc();
  }
  Log("activated spare instance " + net::IpToString(spare->ip()));
}

std::vector<net::IpAddr> Controller::AssignedInstances(net::IpAddr vip) const {
  auto it = assignment_.find(vip);
  return it == assignment_.end() ? std::vector<net::IpAddr>{} : it->second;
}

bool Controller::ApplyManyToMany(const std::map<net::IpAddr, VipDemand>& demand,
                                 double traffic_capacity, int rule_capacity,
                                 double migration_limit) {
  // Build the Fig 7 problem over the currently active instances. Row order
  // is the sorted VIP address order so consecutive rounds line up for the
  // Eq 4-7 update constraints.
  if (active_.empty()) {
    return false;
  }
  assign::Problem problem;
  problem.traffic_capacity = traffic_capacity;
  problem.rule_capacity = rule_capacity;
  problem.migration_limit = migration_limit;
  problem.max_instances = static_cast<int>(active_.size());
  std::vector<net::IpAddr> vip_order;
  for (const auto& [vip, entry] : vips_) {
    auto dit = demand.find(vip);
    const VipDemand d = dit == demand.end() ? VipDemand{} : dit->second;
    assign::VipSpec spec;
    spec.id = static_cast<int>(vip);
    spec.traffic = d.traffic;
    spec.rules = static_cast<int>(entry.rules.size());
    spec.replicas = std::min(d.replicas, static_cast<int>(active_.size()));
    // When the fleet caps the replica count, the failure headroom scales
    // down proportionally (keeping the requested o_v = f_v/n_v ratio).
    spec.failures = d.replicas > 0 ? spec.replicas * d.failures / d.replicas : 0;
    spec.failures = std::min(spec.failures, spec.replicas - 1);
    // Shed residual headroom rather than declare the round infeasible.
    while (spec.failures > 0 && spec.ShareAfterFailures() > traffic_capacity) {
      --spec.failures;
    }
    problem.vips.push_back(spec);
    vip_order.push_back(vip);
  }

  assign::GreedySolver solver;
  assign::SolveOptions opts;
  if (have_solution_ && last_solution_vips_ == vip_order) {
    opts.previous = &last_solution_;
    opts.limit_transient = true;
    opts.limit_migration = true;
  }
  auto result = solver.Solve(problem, opts);
  if (!result.feasible) {
    Log("many-to-many assignment infeasible: " + result.note + " [" + problem.Summary() +
        "]");
    return false;
  }

  // Install rules on assigned instances, drop from the rest, program pools.
  for (std::size_t v = 0; v < vip_order.size(); ++v) {
    const net::IpAddr vip = vip_order[v];
    const auto& entry = vips_[vip];
    std::set<int> assigned(result.assignment.vip_instances[v].begin(),
                           result.assignment.vip_instances[v].end());
    std::vector<net::IpAddr> pool;
    for (std::size_t y = 0; y < active_.size(); ++y) {
      if (assigned.contains(static_cast<int>(y))) {
        active_[y]->InstallVip(vip, entry.port, entry.rules);
        pool.push_back(active_[y]->ip());
      } else if (active_[y]->ServesVip(vip)) {
        active_[y]->RemoveVip(vip);
      }
    }
    assignment_[vip] = pool;
    fabric_->SetVipPoolStaggered(vip, pool, cfg_.mux_stagger);
    SystemEvent(obs::EventType::kPoolUpdate, vip, pool.size());
    if (pool_updates_ctr_ != nullptr) {
      pool_updates_ctr_->Inc();
    }
  }
  last_solution_ = std::move(result.assignment);
  last_solution_vips_ = std::move(vip_order);
  have_solution_ = true;
  Log("applied many-to-many assignment (" + std::to_string(result.instances_used) +
      " instances, migrated " +
      sim::FormatDouble(100 * result.migrated_fraction, 1) + "% of traffic)");
  return true;
}

void Controller::EnablePeriodicAssignment(PeriodicAssignmentConfig config) {
  periodic_ = config;
  ArmAssignmentRound();
}

void Controller::ArmAssignmentRound() {
  sim_->After(
      periodic_->interval,
      [this]() {
        AssignmentRoundFromCounters();
        ArmAssignmentRound();
      },
      /*daemon=*/true);
}

void Controller::RunAssignmentRoundNow() {
  if (!periodic_) {
    periodic_ = PeriodicAssignmentConfig{};
  }
  AssignmentRoundFromCounters();
}

void Controller::AssignmentRoundFromCounters() {
  if (!periodic_ || vips_.empty() || active_.empty()) {
    return;
  }
  // Aggregate per-VIP demand from every instance's counters (new
  // connections per second over the interval).
  std::map<net::IpAddr, double> conn_rate;
  for (YodaInstance* inst : active_) {
    for (const auto& [vip, traffic] : inst->DrainTrafficCounters()) {
      conn_rate[vip] += static_cast<double>(traffic.new_connections);
    }
  }
  const double seconds = sim::ToSeconds(periodic_->interval);
  std::map<net::IpAddr, VipDemand> demand;
  for (const auto& [vip, entry] : vips_) {
    VipDemand d;
    auto it = conn_rate.find(vip);
    const double rate = it == conn_rate.end() ? 0.0 : it->second / seconds;
    d.traffic = std::max(rate, 0.01 * periodic_->traffic_capacity);
    const int wanted = static_cast<int>(
        std::ceil(periodic_->replication_factor * d.traffic / periodic_->traffic_capacity));
    d.replicas = std::max(1, wanted);
    d.failures = static_cast<int>(d.replicas * periodic_->oversubscription);
    if (d.failures >= d.replicas) {
      d.failures = d.replicas - 1;
    }
    demand[vip] = d;
  }
  if (ApplyManyToMany(demand, periodic_->traffic_capacity, periodic_->rule_capacity,
                      periodic_->migration_limit)) {
    ++assignment_rounds_;
  }
}

void Controller::ReprogramAllPools(bool staggered) {
  const std::vector<net::IpAddr> all = ActiveIps();
  const std::set<net::IpAddr> alive(all.begin(), all.end());
  for (const auto& [vip, entry] : vips_) {
    std::vector<net::IpAddr> ips;
    auto ait = assignment_.find(vip);
    if (ait != assignment_.end()) {
      // Many-to-many mode: keep the assigned subset, pruned of dead
      // instances (the next assignment round restores the replica count).
      for (net::IpAddr ip : ait->second) {
        if (alive.contains(ip)) {
          ips.push_back(ip);
        }
      }
      ait->second = ips;
    } else {
      ips = all;
    }
    if (staggered) {
      fabric_->SetVipPoolStaggered(vip, ips, cfg_.mux_stagger);
    } else {
      fabric_->SetVipPool(vip, ips);
    }
    SystemEvent(obs::EventType::kPoolUpdate, vip, ips.size());
    if (pool_updates_ctr_ != nullptr) {
      pool_updates_ctr_->Inc();
    }
  }
}

}  // namespace yoda
