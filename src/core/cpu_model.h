// CPU and processing-delay model for L7 LB instances.
//
// The paper's prototype is a user-space Python packet driver; HAProxy does
// kernel TCP splicing. We model both with the same structure and different
// constants, calibrated to §7.1:
//   - Yoda saturates one VM at ~12K small-req/s, HAProxy reaches 46% there
//     (user/kernel copy costs roughly 2x CPU);
//   - for 2 MB flows Yoda hits 80% at 90K pkts/s;
//   - Fig 9 per-request latency: connection 10.4 ms (Yoda) vs 8 ms (HAProxy),
//     LB packet processing 8.2 ms vs 5.23 ms.
//
// Each instance accrues `busy` CPU time per event; utilization is busy time
// over a measurement window. Forwarded packets are additionally delayed by a
// per-packet processing latency (the user-space copy penalty).

#ifndef SRC_CORE_CPU_MODEL_H_
#define SRC_CORE_CPU_MODEL_H_

#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace yoda {

struct CpuCosts {
  // CPU time charged per connection handled (handshakes, header parse,
  // TCPStore marshalling).
  sim::Duration per_connection = sim::Usec(40);
  // CPU time charged per forwarded/tunneled packet.
  sim::Duration per_packet = sim::Usec(5);
  // Extra CPU per rule scanned during backend selection.
  sim::Duration per_rule_scanned = sim::Nsec(900);
  // Latency added to every forwarded packet (queueing/copies).
  sim::Duration forward_delay = sim::Usec(680);
  // Extra one-time latency in the connection phase (header handling).
  sim::Duration connection_delay = sim::Msec(2);
};

// Calibrated constants (§7.1): the user-space Yoda driver and HAProxy.
CpuCosts YodaUserSpaceCosts();
CpuCosts HaproxyKernelCosts();

class CpuModel {
 public:
  explicit CpuModel(CpuCosts costs, double cores = 1.0)
      : costs_(costs), tracker_(cores) {}

  void ChargeConnection() { tracker_.AddBusy(costs_.per_connection); }
  void ChargePacket() { tracker_.AddBusy(costs_.per_packet); }
  void ChargeRuleScan(int rules_scanned) {
    tracker_.AddBusy(costs_.per_rule_scanned * rules_scanned);
  }

  double Utilization(sim::Time now) const { return tracker_.Utilization(now); }
  void ResetWindow(sim::Time now) { tracker_.Reset(now); }

  const CpuCosts& costs() const { return costs_; }

 private:
  CpuCosts costs_;
  sim::UtilizationTracker tracker_;
};

}  // namespace yoda

#endif  // SRC_CORE_CPU_MODEL_H_
