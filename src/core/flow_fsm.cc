#include "src/core/flow_fsm.h"

namespace yoda {
namespace {

constexpr int Idx(FlowPhase p) { return static_cast<int>(p); }

// Static transition table; row = from, column = to. kClosed is reachable
// from every live phase (reset, RST, VIP removal, idle GC) and terminal.
constexpr bool BuildEdge(FlowPhase from, FlowPhase to) {
  if (from != FlowPhase::kClosed && to == FlowPhase::kClosed) {
    return true;
  }
  switch (from) {
    case FlowPhase::kSynReceived:
      return to == FlowPhase::kSynAckSent || to == FlowPhase::kTlsHandshake;
    case FlowPhase::kSynAckSent:
      return to == FlowPhase::kSelecting;
    case FlowPhase::kTlsHandshake:
      return to == FlowPhase::kSelecting;
    case FlowPhase::kSelecting:
      return to == FlowPhase::kServerSynSent;
    case FlowPhase::kServerSynSent:
      return to == FlowPhase::kStorageBWait;
    case FlowPhase::kStorageBWait:
      return to == FlowPhase::kEstablished;
    case FlowPhase::kEstablished:
      // kServerSynSent: HTTP/1.1 re-switch re-opens the server leg.
      return to == FlowPhase::kDraining || to == FlowPhase::kServerSynSent;
    case FlowPhase::kDraining:
      return false;
    case FlowPhase::kTakeoverLookup:
      // Adoption lands in tunneling (kEstablished) or back in the
      // connection phase (kSynAckSent / kTlsHandshake for TLS VIPs).
      return to == FlowPhase::kEstablished || to == FlowPhase::kSynAckSent ||
             to == FlowPhase::kTlsHandshake;
    case FlowPhase::kClosed:
      return false;
  }
  return false;
}

struct TransitionTable {
  bool legal[kFlowPhaseCount][kFlowPhaseCount] = {};
};

constexpr TransitionTable BuildTable() {
  TransitionTable t;
  for (int from = 0; from < kFlowPhaseCount; ++from) {
    for (int to = 0; to < kFlowPhaseCount; ++to) {
      t.legal[from][to] =
          BuildEdge(static_cast<FlowPhase>(from), static_cast<FlowPhase>(to));
    }
  }
  return t;
}

constexpr TransitionTable kTable = BuildTable();

}  // namespace

bool FlowTransitionLegal(FlowPhase from, FlowPhase to) {
  return kTable.legal[Idx(from)][Idx(to)];
}

const char* FlowPhaseName(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::kSynReceived:
      return "SynReceived";
    case FlowPhase::kSynAckSent:
      return "SynAckSent";
    case FlowPhase::kTlsHandshake:
      return "TlsHandshake";
    case FlowPhase::kSelecting:
      return "Selecting";
    case FlowPhase::kServerSynSent:
      return "ServerSynSent";
    case FlowPhase::kStorageBWait:
      return "StorageBWait";
    case FlowPhase::kEstablished:
      return "Established";
    case FlowPhase::kDraining:
      return "Draining";
    case FlowPhase::kTakeoverLookup:
      return "TakeoverLookup";
    case FlowPhase::kClosed:
      return "Closed";
  }
  return "?";
}

}  // namespace yoda
