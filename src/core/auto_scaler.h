// AutoScaler: the elastic-scaling policy (§7.3) as a pure decision component
// of the reconciliation pipeline. It watches mean active-fleet CPU each
// monitor tick, applies the over-threshold hysteresis, and answers "how many
// spares should be activated now" — the Controller turns a non-zero answer
// into catch-up + pool-sync plans for the FleetActuator, so scale-out flows
// through the same epoch-stamped plan path as every other reconfiguration.

#ifndef SRC_CORE_AUTO_SCALER_H_
#define SRC_CORE_AUTO_SCALER_H_

#include <vector>

#include "src/core/yoda_instance.h"
#include "src/sim/time.h"

namespace yoda {

struct AutoScalerConfig {
  double scale_out_cpu = 0.75;  // Mean utilization that triggers scale-out.
  int scale_out_step = 3;       // Instances added per trigger.
  // Consecutive over-threshold monitor ticks required before scaling
  // (hysteresis against transient spikes).
  int scale_out_ticks = 1;
};

class AutoScaler {
 public:
  explicit AutoScaler(AutoScalerConfig config) : cfg_(config) {}

  // One monitor-tick observation. Returns how many spares to activate now
  // (0 = hold). The caller is expected to reset the instances' CPU windows
  // after acting so the next decision sees post-scale load.
  int Tick(const std::vector<YodaInstance*>& active, int spares_available, sim::Time now);

  // Failure path: a fleet change invalidates the streak.
  void ResetHysteresis() { over_threshold_ticks_ = 0; }
  int over_threshold_ticks() const { return over_threshold_ticks_; }

 private:
  AutoScalerConfig cfg_;
  int over_threshold_ticks_ = 0;
};

}  // namespace yoda

#endif  // SRC_CORE_AUTO_SCALER_H_
