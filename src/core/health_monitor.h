// HealthMonitor: the actual-state observer of the reconciliation control
// plane. It owns the active/suspended fleet lists, probes Yoda instances
// (Network::ProbePath, so gray SYN-filters do not blind it but partitions
// cost it probes) and backend servers, and folds probe results through the
// hysteresis / readmission / flap-suppression state machine from PR 2.
//
// It deliberately does NOT touch instances or the fabric: each Tick() returns
// the health TRANSITIONS it observed, and the reconciler (Controller) turns
// those into epoch-stamped UpdatePlans for the FleetActuator.

#ifndef SRC_CORE_HEALTH_MONITOR_H_
#define SRC_CORE_HEALTH_MONITOR_H_

#include <map>
#include <vector>

#include "src/core/yoda_instance.h"
#include "src/net/network.h"

namespace yoda {

struct HealthMonitorConfig {
  // An instance is declared dead only after this many CONSECUTIVE missed
  // probes (1 = paper behavior: first miss kills).
  int fail_after_misses = 1;
  // When enabled, a removed instance is parked as "suspended" and readmitted
  // after this many consecutive healthy probes.
  bool readmit_instances = false;
  int readmit_after_successes = 2;
  // Flap suppression: every failure after a readmission doubles the healthy
  // streak required next time, capped here.
  int readmit_penalty_cap = 8;
  // Intra-cell sharding: probe ONLY via the network (ProbePath consults the
  // shard-replicated down flags), never by reading instance->failed() — the
  // instance object lives on another shard and its fields must not be read
  // from the controller's. Off by default: the legacy short-circuit saves a
  // probe and is byte-identical to the pre-sharding build.
  bool probe_network_only = false;
};

struct HealthTransition {
  enum class Kind {
    kInstanceFailed,     // Declared dead; already moved out of active().
    kInstanceSuspected,  // Missed a probe but still within hysteresis.
    kInstanceReadmitted, // Healthy streak met; already moved back to active().
    kBackendDown,
    kBackendUp,
  };
  Kind kind = Kind::kInstanceFailed;
  YodaInstance* instance = nullptr;  // Instance transitions.
  net::IpAddr addr = 0;              // Instance ip or backend ip.
  int detail = 0;                    // Miss streak / required successes.
};

class HealthMonitor {
 public:
  HealthMonitor(net::Network* network, HealthMonitorConfig config)
      : net_(network), cfg_(config) {}

  void AddActive(YodaInstance* instance) { active_.push_back(instance); }
  void AddBackend(net::IpAddr backend) {
    backends_.push_back(backend);
    backend_up_[backend] = true;
  }

  // One monitor pass: probes actives (fail path), suspended (readmit path)
  // and backends, mutates the fleet lists, and returns every transition in
  // deterministic (list) order.
  std::vector<HealthTransition> Tick();

  const std::vector<YodaInstance*>& active() const { return active_; }
  const std::vector<YodaInstance*>& suspended() const { return suspended_; }
  const std::vector<net::IpAddr>& backends() const { return backends_; }
  bool IsBackendUp(net::IpAddr backend) const;
  std::vector<net::IpAddr> ActiveIps() const;
  int detected_failures() const { return detected_failures_; }
  int readmissions() const { return readmissions_; }

 private:
  struct HealthState {
    int miss_streak = 0;
    int success_streak = 0;
    int flaps = 0;  // Failures observed after at least one readmission.
    int required_successes = 0;
  };

  bool ProbeInstance(const YodaInstance* instance) const;
  void OnDeclaredDead(YodaInstance* instance);

  net::Network* net_;
  HealthMonitorConfig cfg_;
  std::vector<YodaInstance*> active_;
  std::vector<YodaInstance*> suspended_;
  std::vector<net::IpAddr> backends_;
  std::map<net::IpAddr, bool> backend_up_;
  std::map<net::IpAddr, HealthState> health_;
  int detected_failures_ = 0;
  int readmissions_ = 0;
};

}  // namespace yoda

#endif  // SRC_CORE_HEALTH_MONITOR_H_
