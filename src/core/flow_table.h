// FlowTable: the instance's flow-state store, split out of YodaInstance.
//
// Owns the LocalFlow lifecycle — lookup, insert, idle collection, erase —
// keyed by the client-side FlowKey, plus the server-tuple reverse index that
// classifies return traffic. The key hash partitions flows into N shards:
// the simulator is single-threaded today, so sharding buys nothing yet, but
// the ROADMAP's parallel split needs a stable, load-balanced partition
// function to hand each shard to a worker — ShardOf is that seam, and the
// shard-distribution unit test is its guard.

#ifndef SRC_CORE_FLOW_TABLE_H_
#define SRC_CORE_FLOW_TABLE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/local_flow.h"
#include "src/net/packet.h"
#include "src/sim/time.h"

namespace yoda {

class FlowTable {
 public:
  static constexpr int kDefaultShards = 8;

  explicit FlowTable(int shards = kDefaultShards);
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  // The shard a key belongs to: upper hash bits, so shard choice is
  // independent of each shard map's own bucket indexing (which uses the
  // lower bits).
  static int ShardOf(const FlowKey& key, int shard_count) {
    return static_cast<int>((FlowKeyHash{}(key) >> 17) % static_cast<std::size_t>(shard_count));
  }
  int ShardOf(const FlowKey& key) const { return ShardOf(key, shard_count()); }

  LocalFlow* Find(const FlowKey& key);
  // Inserts (replacing any existing entry) and returns the stored flow.
  LocalFlow& Insert(const FlowKey& key, std::unique_ptr<LocalFlow> flow);
  void Erase(const FlowKey& key);

  std::size_t size() const;
  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::size_t shard_size(int shard) const { return shards_[static_cast<std::size_t>(shard)].size(); }

  // Visits every flow (shard-major, deterministic for a fixed insert
  // history within one run).
  void ForEach(const std::function<void(const FlowKey&, LocalFlow&)>& fn);

  // Keys with no packets since `idle_deadline` that are not waiting on a
  // takeover lookup — the idle-scan GC set.
  std::vector<FlowKey> CollectIdle(sim::Time idle_deadline) const;
  // Every key belonging to `vip` (VIP teardown drain).
  std::vector<FlowKey> CollectVip(net::IpAddr vip) const;

  // --- server-side reverse index (return-path classification) ---
  void BindServer(const net::FiveTuple& tuple, const FlowKey& key);
  void UnbindServer(const net::FiveTuple& tuple);
  // Null when the tuple is unknown (takeover candidate).
  const FlowKey* FindServer(const net::FiveTuple& tuple) const;
  bool HasServer(const net::FiveTuple& tuple) const;
  std::size_t server_index_size() const { return server_index_.size(); }

  // Drops all flows and index entries (instance crash).
  void Clear();

 private:
  using Shard = std::unordered_map<FlowKey, std::unique_ptr<LocalFlow>, FlowKeyHash>;
  std::vector<Shard> shards_;
  std::size_t size_ = 0;
  std::unordered_map<net::FiveTuple, FlowKey, net::FiveTupleHash> server_index_;
};

}  // namespace yoda

#endif  // SRC_CORE_FLOW_TABLE_H_
