// TCPStore facade (paper §4.3, §6): the typed flow-state API Yoda instances
// use, layered on the replicating memcached client.
//
// StoreConnectionState (storage-a in Fig 3) writes the client key only;
// StoreTunnelingState (storage-b) writes the full state under the client key
// and the server-side reverse mapping — the write the instance must complete
// *before* ACKing the server SYN-ACK, so no acknowledged state can be lost.

#ifndef SRC_CORE_TCP_STORE_H_
#define SRC_CORE_TCP_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/core/flow_state.h"
#include "src/kv/replicating_client.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace yoda {

struct TcpStoreStats {
  std::uint64_t connection_writes = 0;
  std::uint64_t tunneling_writes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_hits = 0;
  std::uint64_t deletes = 0;
};

class TcpStore {
 public:
  using Ack = std::function<void(bool ok)>;
  using Lookup = std::function<void(std::optional<FlowState>)>;

  // `simulator`/`recorder` enable per-flow storage trace events
  // (kStorageAWrite*, kStorageBWrite*, kStoreLookup*); `registry` mirrors
  // the stats struct into "tcpstore.*" counters. All three are optional.
  explicit TcpStore(kv::ReplicatingClient* client, sim::Simulator* simulator = nullptr,
                    obs::FlightRecorder* recorder = nullptr,
                    obs::Registry* registry = nullptr);
  TcpStore(const TcpStore&) = delete;
  TcpStore& operator=(const TcpStore&) = delete;

  // storage-a: persist the connection-phase state (client SYN capture).
  void StoreConnectionState(const FlowState& state, Ack done);

  // storage-b: persist the full tunneling state plus the server-side reverse
  // key. `done` fires once both writes are acknowledged.
  void StoreTunnelingState(const FlowState& state, Ack done);

  // Lookup by client-side identity.
  void LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                      net::Port client_port, Lookup done);

  // Lookup by server-side identity (return-path takeover): resolves the
  // reverse mapping, then the flow state. Two gets.
  void LookupByServer(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                      net::Port client_port, Lookup done);

  // Flow teardown: removes the client key and (if tunneling) the server key.
  void Remove(const FlowState& state, Ack done);

  const TcpStoreStats& stats() const { return stats_; }
  kv::ReplicatingClient* client() { return client_; }

 private:
  // Registry mirrors of the stats struct (null without a registry).
  struct StatCounters {
    obs::Counter* connection_writes = nullptr;
    obs::Counter* tunneling_writes = nullptr;
    obs::Counter* lookups = nullptr;
    obs::Counter* lookup_hits = nullptr;
    obs::Counter* deletes = nullptr;
  };

  void Trace(const obs::FlowId& flow, obs::EventType type, std::uint64_t detail = 0);
  static obs::FlowId FlowIdOf(const FlowState& state) {
    return obs::FlowId{state.vip, state.vip_port, state.client_ip, state.client_port};
  }

  kv::ReplicatingClient* client_;
  sim::Simulator* sim_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  StatCounters ctr_;
  TcpStoreStats stats_;
};

}  // namespace yoda

#endif  // SRC_CORE_TCP_STORE_H_
