// L7Dispatcher: the request-routing stage (paper §4.1, §5.2).
//
// Consumes the client byte stream once the handshake stage has stored the
// SYN state: reassembles the header, runs the rule scan, binds sticky
// cookies, selects (and charges) the backend, forwards the buffered request
// after establishment, and — for keep-alive HTTP/1.1 connections — inspects
// subsequent requests to re-switch backends mid-connection.

#ifndef SRC_CORE_L7_DISPATCHER_H_
#define SRC_CORE_L7_DISPATCHER_H_

#include <optional>

#include "src/core/pipeline.h"
#include "src/http/parser.h"
#include "src/rules/rule_table.h"

namespace yoda {

class L7Dispatcher {
 public:
  explicit L7Dispatcher(PipelineContext* ctx) : ctx_(ctx) {}

  // Connection-phase client bytes: reassemble, parse, and fire the backend
  // selection once the header is complete.
  void OnClientData(const FlowKey& key, LocalFlow& flow, VipState& vip, const net::Packet& p);

  // Header complete: rule scan + selection, then the delayed server SYN.
  void TrySelectAndConnect(const FlowKey& key, LocalFlow& flow, VipState& vip);

  // Established: emit the handshake-completing ACK carrying the buffered
  // request (sequence-aligned), and arm HTTP/1.1 inspection.
  void ForwardRequestToServer(const FlowKey& key, LocalFlow& flow);

  // Tunneled client bytes on an inspected connection: buffer per request,
  // re-route each complete request, possibly re-switching the backend.
  void InspectClientStream(const FlowKey& key, LocalFlow& flow, VipState& vip,
                           const net::Packet& p);

  // Tear down the current server leg and re-enter the connection phase
  // against `new_backend`, splicing its stream at client_facing_nxt (§5.2).
  void ReSwitch(const FlowKey& key, LocalFlow& flow, VipState& vip,
                const rules::Backend& new_backend);

  std::optional<rules::Selection> SelectBackend(VipState& vip, const http::Request& req);
  void BindStickyIfNeeded(VipState& vip, const http::Request& req, const rules::Backend& b);
  sim::Duration RuleScanDelay(int rules_scanned) const;

 private:
  PipelineContext* ctx_;
};

}  // namespace yoda

#endif  // SRC_CORE_L7_DISPATCHER_H_
