// Per-flow and per-VIP data-plane state shared by the pipeline stages.
//
// `LocalFlow` is the instance-local working state of one client connection:
// the replicated `FlowState` core, the FSM phase, the connection-phase
// reassembly buffers, TLS handshake scratch, HTTP/1.1 inspection cursors and
// mirror-leg bookkeeping. `VipState` is everything installed per VIP (rule
// table, sticky bindings, backend set, optional TLS material). Both used to
// be private nested types of the YodaInstance god class; the pipeline stage
// engines (handshake, dispatch, splice, takeover) now operate on them
// through FlowTable and PipelineContext instead of instance internals.

#ifndef SRC_CORE_LOCAL_FLOW_H_
#define SRC_CORE_LOCAL_FLOW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/flow_fsm.h"
#include "src/core/flow_state.h"
#include "src/http/parser.h"
#include "src/kv/hash_ring.h"
#include "src/net/packet.h"
#include "src/net/payload.h"
#include "src/rules/rule_table.h"
#include "src/sim/simulator.h"
#include "src/tls/tls.h"

namespace yoda {

// Client-side flow identity.
struct FlowKey {
  net::IpAddr vip = 0;
  net::Port vip_port = 0;
  net::IpAddr client_ip = 0;
  net::Port client_port = 0;
  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    return kv::Mix64((static_cast<std::uint64_t>(k.vip) << 32) ^ k.client_ip) ^
           kv::Mix64((static_cast<std::uint64_t>(k.vip_port) << 16) ^ k.client_port);
  }
};

// SSL termination material for one VIP (§5.2).
struct VipTls {
  std::string certificate;
  std::uint64_t service_key = 0;
};

// Everything installed on an instance for one VIP.
struct VipState {
  net::Port vip_port = 80;
  rules::RuleTable table;
  rules::StickyTable sticky;
  std::set<net::IpAddr> backends;  // For classifying server-side packets.
  std::optional<VipTls> tls;       // SSL termination (§5.2).
  // Stateless fast path policy: how flows on this VIP persist their state.
  // Installed by the controller through epoch-tagged plan steps; existing
  // flows keep the mode they latched at creation (make-before-break).
  StoreMode store_mode = StoreMode::kStateful;
  std::uint64_t store_epoch = 0;  // Install epoch; low 8 bits gate cookies.
};

struct LocalFlow {
  explicit LocalFlow(FlowPhase initial = FlowPhase::kSynReceived) : fsm(initial) {}

  FlowState st;
  FlowFsm fsm;
  sim::Time started = 0;      // Selection start (Fig 9 instrumentation).
  sim::Time last_packet = 0;  // For idle GC.
  // Stage-boundary timestamps for the per-stage latency histograms.
  sim::Time syn_time = 0;            // Client SYN arrival (0 for adopted flows).
  sim::Time server_syn_time = 0;     // First server SYN emitted.
  sim::Time takeover_start = 0;      // Orphan packet arrival (takeover path).
  // Connection phase: client byte-stream reassembly (seq -> payload).
  // Payload values share the client's segment buffers (no deep copies).
  std::map<std::uint32_t, net::Payload> pending_segments;
  std::uint32_t assembled_end = 0;  // Next expected client seq.
  std::string assembled;            // In-order client bytes (the header).
  http::RequestParser parser;
  int server_syn_attempts = 0;
  sim::TimerHandle server_syn_timer;
  // HTTP/1.1 inspection of the client stream for re-switching. Request
  // bytes are buffered from request_start_seq until the request is
  // complete and routed; only then are they forwarded.
  bool inspect_enabled = false;
  http::RequestParser inspect_parser;
  std::uint32_t inspect_next_seq = 0;   // Next client seq to consume.
  std::uint32_t request_start_seq = 0;  // Where the in-progress request began.
  std::string pending_request;          // Its bytes so far.
  int outstanding_requests = 0;
  // Highest client-facing sequence we have emitted toward the client + 1;
  // a re-switched backend's stream is spliced in at this position.
  std::uint32_t client_facing_nxt = 0;
  // Request mirroring (§5.2, "sending the same request to multiple
  // servers"): shadow legs racing the primary; the first responder wins.
  struct MirrorLeg {
    net::IpAddr ip = 0;
    net::Port port = 80;
    bool established = false;
    std::uint32_t server_isn = 0;
  };
  std::vector<MirrorLeg> mirror_legs;
  bool mirror_decided = false;  // A winner has produced response data.

  // SSL termination state (connection phase only; tunneling is oblivious).
  bool tls_active = false;
  tls::RecordReader tls_reader;
  std::size_t tls_consumed = 0;        // assembled bytes already fed.
  bool tls_ready = false;              // Session key derived.
  std::uint64_t tls_client_random = 0;
  std::uint64_t tls_session_key = 0;
  std::uint32_t tls_handshake_len = 0;  // Hello+Finished bytes (client side).
  std::uint64_t tls_cipher_offset = 0;  // Decryption offset into appdata.
  std::string tls_plaintext;            // Decrypted request bytes.
  std::uint32_t cert_flight_len = 0;
  // Teardown tracking (two independent directions; the phase moves to
  // kDraining only once both are set).
  bool fin_from_client = false;
  bool fin_from_server = false;
  // Packets that arrived during an in-flight storage op.
  std::vector<net::Packet> stalled;

  // Store mode latched at flow creation (a mid-run per-VIP flip only affects
  // flows created after the install).
  StoreMode store_mode = StoreMode::kStateful;
  // Set when this flow was adopted via takeover. Adopted stateless flows
  // tear down through the synchronous remove path: the original owner may
  // have flushed the state to the store before crashing, and only a real
  // delete guarantees the key cannot go stale there.
  bool adopted = false;
  // Latest signed SYN-cookie token minted for this flow (0 in stateful mode);
  // stamped on every client-bound packet so the client's TCP echoes it back.
  std::uint64_t cookie = 0;

  // Phase-backed views of the old implicit flags.
  FlowPhase phase() const { return fsm.phase(); }
  bool established() const { return fsm.established(); }
  bool lookup_pending() const { return fsm.lookup_pending(); }
};

}  // namespace yoda

#endif  // SRC_CORE_LOCAL_FLOW_H_
