#include "src/core/splice_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/core/l7_dispatcher.h"

namespace yoda {

void SpliceEngine::TunnelFromClient(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                    const net::Packet& p) {
  if (ctx_->cfg->http11_reswitch && flow.inspect_next_seq != 0 && !p.payload.empty()) {
    ctx_->dispatcher->InspectClientStream(key, flow, vip, p);
    // InspectClientStream forwards (possibly re-targeted) bytes itself.
    return;
  }
  net::Packet out = p;
  out.src = key.vip;
  out.sport = key.client_port;
  out.dst = flow.st.backend_ip;
  out.dport = flow.st.backend_port;
  out.seq = p.seq + flow.st.seq_delta_c2s;
  out.ack = p.ack - flow.st.seq_delta_s2c;
  out.encap_dst = 0;
  out.cookie = 0;  // The client's echoed token is not for the backend.
  if (p.fin()) {
    flow.fin_from_client = true;
    ctx_->Trace(key, obs::EventType::kFin, 0);
  }
  ctx_->EmitForwarded(std::move(out));
  MaybeScheduleCleanup(key, flow);
}

void SpliceEngine::TunnelFromServer(const FlowKey& key, LocalFlow& flow, const net::Packet& p) {
  if (!flow.mirror_legs.empty() && !flow.mirror_decided && !p.payload.empty()) {
    // The original primary answered first: it wins the mirror race.
    flow.mirror_decided = true;
    KillLosingLegs(key, flow, flow.st.backend_ip);
  }
  net::Packet out = p;
  out.src = key.vip;
  out.sport = key.vip_port;
  out.dst = key.client_ip;
  out.dport = key.client_port;
  out.seq = p.seq + flow.st.seq_delta_s2c;
  out.ack = p.ack - flow.st.seq_delta_c2s;
  out.encap_dst = 0;
  // Re-stamp the flow's signed token on the tunneled segment: the client's
  // TCP echoes the newest one back, keeping the recoverable claims (backend,
  // splice delta) current on the wire. 0 (stateful) erases any stray echo.
  out.cookie = flow.cookie;
  // Track the splice point for potential HTTP/1.1 re-switches.
  const std::uint32_t emitted_end =
      out.seq + static_cast<std::uint32_t>(p.payload.size()) + (p.fin() ? 1 : 0);
  if (net::SeqGt(emitted_end, flow.client_facing_nxt)) {
    flow.client_facing_nxt = emitted_end;
  }
  if (p.fin()) {
    flow.fin_from_server = true;
    ctx_->Trace(key, obs::EventType::kFin, 1);
  }
  if (!p.payload.empty() && flow.outstanding_requests > 0) {
    // Track response completion for re-switch gating (cheap heuristic: a
    // PSH-terminated server burst ends one response).
    if (p.has(net::kPsh)) {
      flow.outstanding_requests -= 1;
      if (!flow.st.pipeline_request_ends.empty()) {
        flow.st.pipeline_request_ends.erase(flow.st.pipeline_request_ends.begin());
      }
    }
  }
  ctx_->EmitForwarded(std::move(out));
  MaybeScheduleCleanup(key, flow);
}

void SpliceEngine::LaunchMirrorLegs(const FlowKey& key, LocalFlow& flow) {
  for (LocalFlow::MirrorLeg& leg : flow.mirror_legs) {
    net::Packet syn;
    syn.src = key.vip;
    syn.sport = key.client_port;
    syn.dst = leg.ip;
    syn.dport = leg.port;
    syn.seq = flow.st.client_isn;
    syn.flags = net::kSyn;
    const net::FiveTuple leg_side{leg.ip, key.vip, leg.port, key.client_port};
    ctx_->fabric->RegisterSnat(leg_side, ctx_->self_ip);
    ctx_->flows->BindServer(leg_side, key);
    ctx_->Emit(std::move(syn));
    ctx_->cpu->ChargeConnection();
  }
}

bool SpliceEngine::HandleMirrorPacket(const FlowKey& key, LocalFlow& flow,
                                      const net::Packet& p) {
  LocalFlow::MirrorLeg* leg = nullptr;
  for (LocalFlow::MirrorLeg& l : flow.mirror_legs) {
    if (l.ip == p.src && l.port == p.sport) {
      leg = &l;
    }
  }
  if (leg == nullptr) {
    return false;
  }
  if (flow.mirror_decided) {
    // A winner already serves the client; silence this leg.
    if (!p.rst()) {
      ctx_->Emit(net::MakeRst(p));
    }
    return true;
  }
  if (p.syn() && p.ack_flag()) {
    // Complete this leg's handshake and replay the buffered request, exactly
    // like the primary's ForwardRequestToServer but with no storage write.
    leg->established = true;
    leg->server_isn = p.seq;
    const std::string& data = flow.assembled;
    std::uint32_t seq = flow.st.client_isn + 1;
    std::size_t off = 0;
    do {
      const std::size_t len = std::min<std::size_t>(ctx_->cfg->mss, data.size() - off);
      net::Packet pkt;
      pkt.src = key.vip;
      pkt.sport = key.client_port;
      pkt.dst = leg->ip;
      pkt.dport = leg->port;
      pkt.seq = seq;
      pkt.ack = leg->server_isn + 1;
      pkt.flags = net::kAck;
      pkt.payload = data.substr(off, len);
      if (off + len >= data.size()) {
        pkt.flags |= net::kPsh;
      }
      ctx_->Emit(std::move(pkt));
      seq += static_cast<std::uint32_t>(len);
      off += len;
    } while (off < data.size());
    return true;
  }
  if (!p.payload.empty()) {
    // First response data: this leg wins the race (the paper tunnels the
    // first response and marks later ones for dropping).
    PromoteMirrorWinner(key, flow, *leg, p);
    return true;
  }
  return true;  // Bare ACKs from a still-racing leg.
}

void SpliceEngine::PromoteMirrorWinner(const FlowKey& key, LocalFlow& flow,
                                       LocalFlow::MirrorLeg& leg,
                                       const net::Packet& first_data) {
  flow.mirror_decided = true;
  ctx_->Trace(key, obs::EventType::kMirrorPromote, leg.ip);
  // The old primary loses: reset it and drop its pins before retargeting.
  {
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.client_port;
    rst.dst = flow.st.backend_ip;
    rst.dport = flow.st.backend_port;
    rst.seq = flow.st.client_isn + 1 + static_cast<std::uint32_t>(flow.assembled.size());
    rst.flags = net::kRst;
    ctx_->Emit(std::move(rst));
    const net::FiveTuple old_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                  key.client_port};
    ctx_->fabric->UnregisterSnat(old_side);
    ctx_->flows->UnbindServer(old_side);
  }
  // Retarget the flow at the winning mirror.
  flow.st.backend_ip = leg.ip;
  flow.st.backend_port = leg.port;
  flow.st.server_isn = leg.server_isn;
  flow.st.seq_delta_s2c = flow.client_facing_nxt - (leg.server_isn + 1);
  const net::FiveTuple winner_side{leg.ip, key.vip, leg.port, key.client_port};
  ctx_->flows->BindServer(winner_side, key);
  ctx_->Trace(key, obs::EventType::kBackendPinned, leg.ip);
  // The old token's claims are now wrong; re-mint (the new delta usually
  // stays codable — mirror legs reuse the client ISN, so seq_delta_c2s is 0).
  ctx_->RefreshCookie(key, flow);
  // Non-gating state update: the retarget rides the write-behind path.
  ctx_->store->Refresh(flow.st, flow.store_mode);
  KillLosingLegs(key, flow, leg.ip);
  TunnelFromServer(key, flow, first_data);
}

void SpliceEngine::KillLosingLegs(const FlowKey& key, LocalFlow& flow, net::IpAddr winner_ip) {
  const std::uint32_t next_seq =
      flow.st.client_isn + 1 + static_cast<std::uint32_t>(flow.assembled.size());
  auto kill = [this, &key, next_seq](net::IpAddr ip, net::Port port) {
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.client_port;
    rst.dst = ip;
    rst.dport = port;
    rst.seq = next_seq;
    rst.flags = net::kRst;
    ctx_->Emit(std::move(rst));
    const net::FiveTuple side{ip, key.vip, port, key.client_port};
    ctx_->fabric->UnregisterSnat(side);
    ctx_->flows->UnbindServer(side);
  };
  for (LocalFlow::MirrorLeg& leg : flow.mirror_legs) {
    if (leg.ip != winner_ip) {
      kill(leg.ip, leg.port);
    }
  }
}

void SpliceEngine::MaybeScheduleCleanup(const FlowKey& key, LocalFlow& flow) {
  if (!flow.fin_from_client || !flow.fin_from_server ||
      flow.phase() != FlowPhase::kEstablished) {
    return;
  }
  flow.fsm.Transition(FlowPhase::kDraining);
  ctx_->sim->After(ctx_->cfg->flow_cleanup_delay, [this, key]() {
    if (ctx_->alive() && ctx_->flows->Find(key) != nullptr) {
      ctx_->CleanupFlow(key, /*remove_from_store=*/true);
    }
  });
}

}  // namespace yoda
