#include "src/core/cpu_model.h"

namespace yoda {

CpuCosts YodaUserSpaceCosts() {
  CpuCosts c;
  // ~12K small req/s saturating one VM: a small request costs roughly
  // per_connection + ~12 packets * per_packet ~= 83 us of CPU.
  c.per_connection = sim::Usec(35);
  c.per_packet = sim::Usec(4);
  c.per_rule_scanned = sim::Nsec(900);
  // Fig 9: ~8.2 ms of LB processing spread over a ~12-packet exchange.
  c.forward_delay = sim::Usec(680);
  // Fig 9: connection phase 10.4 ms measured on the prototype (user-space
  // Python header handling + raw-packet TX + storage wait).
  c.connection_delay = sim::Usec(8'700);
  return c;
}

CpuCosts HaproxyKernelCosts() {
  CpuCosts c;
  // 46% utilization at 12K req/s: ~38 us CPU per small request.
  c.per_connection = sim::Usec(16);
  c.per_packet = sim::Usec(1900) / 1000;  // 1.9 us.
  c.per_rule_scanned = sim::Nsec(900);    // Same linear-scan classifier.
  // Fig 9: 5.23 ms of proxy processing per exchange.
  c.forward_delay = sim::Usec(435);
  // Fig 9: ~8 ms to establish the backend connection under load.
  c.connection_delay = sim::Usec(7'200);
  return c;
}

}  // namespace yoda
