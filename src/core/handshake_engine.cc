#include "src/core/handshake_engine.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/l7_dispatcher.h"
#include "src/core/splice_engine.h"
#include "src/tls/tls.h"

namespace yoda {

void HandshakeEngine::OnClientSyn(const net::Packet& syn, VipState& vip) {
  const FlowKey key{syn.dst, syn.dport, syn.src, syn.sport};
  LocalFlow* flow = ctx_->flows->Find(key);
  if (flow != nullptr && !flow->lookup_pending() && flow->st.client_isn != syn.seq) {
    // Same client ip:port with a different ISN: the client's ephemeral
    // port wrapped around and this is a brand-new connection. The old
    // flow is defunct; drop its state and start fresh.
    ctx_->CleanupFlow(key, /*remove_from_store=*/true);
    flow = nullptr;
  }
  if (flow == nullptr) {
    StartNewFlow(syn, vip);
  } else if (flow->fsm.syn_state_stored()) {
    SendSynAck(key, *flow);  // Retransmitted SYN: deterministic answer.
  }
}

void HandshakeEngine::StartNewFlow(const net::Packet& syn, VipState& vip) {
  const FlowKey key{syn.dst, syn.dport, syn.src, syn.sport};
  auto fresh = std::make_unique<LocalFlow>(FlowPhase::kSynReceived);
  fresh->last_packet = ctx_->sim->now();
  fresh->syn_time = ctx_->sim->now();
  fresh->tls_active = vip.tls.has_value();
  fresh->st.stage = FlowStage::kConnection;
  fresh->st.client_ip = syn.src;
  fresh->st.client_port = syn.sport;
  fresh->st.vip = syn.dst;
  fresh->st.vip_port = syn.dport;
  fresh->st.client_isn = syn.seq;
  fresh->st.lb_isn = DeterministicLbIsn(syn.dst, syn.dport, syn.src, syn.sport);
  fresh->client_facing_nxt = fresh->st.lb_isn + 1;
  fresh->assembled_end = syn.seq + 1;
  fresh->store_mode = vip.store_mode;  // Latched for the flow's lifetime.
  LocalFlow& flow = ctx_->flows->Insert(key, std::move(fresh));
  ctx_->RefreshCookie(key, flow);
  ctx_->ctr->flows_started->Inc();
  if (ctx_->count_new_connection) {
    ctx_->count_new_connection(key.vip);
  }
  ctx_->Trace(key, obs::EventType::kClientSyn);
  ctx_->cpu->ChargeConnection();

  // storage-a: persist the SYN capture *before* answering (Fig 3). In
  // stateless mode the cookie carries the capture instead — the write
  // demotes to a journal entry and the completion fires inline, so the
  // SYN-ACK goes out with zero synchronous store writes.
  ctx_->store->WriteSynState(flow.st, flow.store_mode, [this, key](bool ok) {
    if (!ctx_->alive()) {
      return;
    }
    LocalFlow* f = ctx_->flows->Find(key);
    if (f == nullptr || !ok) {
      return;
    }
    f->fsm.Transition(f->tls_active ? FlowPhase::kTlsHandshake : FlowPhase::kSynAckSent);
    if (ctx_->stage->handshake_ms != nullptr && f->syn_time != 0) {
      ctx_->stage->handshake_ms->Add(sim::ToMillis(ctx_->sim->now() - f->syn_time));
    }
    SendSynAck(key, *f);
    // Process any client data that raced ahead of the storage ack.
    std::vector<net::Packet> stalled = std::move(f->stalled);
    f->stalled.clear();
    VipState* vip_state = ctx_->FindVip(key.vip);
    for (const net::Packet& sp : stalled) {
      LocalFlow* ff = ctx_->flows->Find(key);
      if (ff == nullptr || vip_state == nullptr) {
        break;
      }
      ctx_->dispatcher->OnClientData(key, *ff, *vip_state, sp);
    }
  });
}

void HandshakeEngine::SendSynAck(const FlowKey& key, const LocalFlow& flow) {
  net::Packet p;
  p.src = key.vip;
  p.sport = key.vip_port;
  p.dst = key.client_ip;
  p.dport = key.client_port;
  p.seq = flow.st.lb_isn;
  p.ack = flow.st.client_isn + 1;
  p.flags = net::kSyn | net::kAck;
  p.cookie = flow.cookie;  // Signed SYN-cookie token (0 in stateful mode).
  ctx_->Trace(key, obs::EventType::kSynAckSent);
  ctx_->Emit(std::move(p));
}

void HandshakeEngine::TlsConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip) {
  if (!vip.tls) {
    return;
  }
  // Feed only the new in-order bytes to the record reader.
  if (flow.assembled.size() > flow.tls_consumed) {
    flow.tls_reader.Feed(std::string_view(flow.assembled).substr(flow.tls_consumed));
    flow.tls_consumed = flow.assembled.size();
  }
  while (auto record = flow.tls_reader.Next()) {
    const auto record_len = static_cast<std::uint32_t>(5 + record->payload.size());
    switch (record->type) {
      case tls::RecordType::kClientHello: {
        auto hello = tls::ClientHello::Parse(record->payload);
        if (!hello) {
          break;
        }
        if (!flow.tls_ready) {
          flow.tls_client_random = hello->client_random;
          flow.tls_handshake_len += record_len;
        }
        // Answer (or re-answer: a retransmitted hello means the client never
        // saw the flight) with the deterministic certificate flight.
        SendCertificateFlight(key, flow, vip);
        break;
      }
      case tls::RecordType::kClientFinished: {
        if (!flow.tls_ready) {
          const std::uint64_t server_random =
              tls::DeriveServerRandom(vip.tls->certificate, flow.tls_client_random);
          flow.tls_session_key = tls::DeriveSessionKey(flow.tls_client_random, server_random);
          flow.tls_ready = true;
          flow.tls_handshake_len += record_len;
        }
        break;
      }
      case tls::RecordType::kApplicationData: {
        if (!flow.tls_ready) {
          break;  // Out-of-order junk; the handshake replay will fix it.
        }
        const std::string plaintext =
            tls::Crypt(flow.tls_session_key, flow.tls_cipher_offset, record->payload);
        flow.tls_cipher_offset += record->payload.size();
        flow.tls_plaintext += plaintext;
        flow.parser.Feed(plaintext);
        break;
      }
      default:
        break;
    }
  }
}

void HandshakeEngine::SendCertificateFlight(const FlowKey& key, LocalFlow& flow,
                                            const VipState& vip) {
  tls::ServerCertificate cert;
  cert.certificate = vip.tls->certificate;
  cert.server_random = tls::DeriveServerRandom(vip.tls->certificate, flow.tls_client_random);
  const std::string flight =
      tls::EncodeRecord({tls::RecordType::kServerCertificate, cert.Serialize()});
  flow.cert_flight_len = static_cast<std::uint32_t>(flight.size());
  flow.client_facing_nxt = flow.st.lb_isn + 1 + flow.cert_flight_len;
  ctx_->cpu->ChargeConnection();
  // Deterministic bytes at deterministic sequence numbers: a resend (by this
  // or any other instance) is byte-identical, and the client's TCP discards
  // duplicates. The hello is intentionally NOT ACKed — the client keeps it
  // retransmittable until the backend's ACKs (translated) cover it.
  std::uint32_t seq = flow.st.lb_isn + 1;
  std::size_t off = 0;
  while (off < flight.size()) {
    const std::size_t chunk = std::min<std::size_t>(ctx_->cfg->mss, flight.size() - off);
    net::Packet pkt;
    pkt.src = key.vip;
    pkt.sport = key.vip_port;
    pkt.dst = key.client_ip;
    pkt.dport = key.client_port;
    pkt.seq = seq;
    pkt.ack = flow.st.client_isn + 1;
    pkt.flags = net::kAck;
    pkt.cookie = flow.cookie;
    pkt.payload = flight.substr(off, chunk);
    if (off + chunk >= flight.size()) {
      pkt.flags |= net::kPsh;
    }
    ctx_->Emit(std::move(pkt));
    seq += static_cast<std::uint32_t>(chunk);
    off += chunk;
  }
}

void HandshakeEngine::SendServerSyn(const FlowKey& key, LocalFlow& flow) {
  // First SYN of a leg moves the FSM (from kSelecting, or from kEstablished
  // on an HTTP/1.1 re-switch); timer-driven retries stay in kServerSynSent.
  if (flow.phase() != FlowPhase::kServerSynSent) {
    flow.fsm.Transition(FlowPhase::kServerSynSent);
  }
  // VIP-sourced SYN reusing the client's ISN (front-and-back indirection +
  // zero client->server sequence delta).
  net::Packet syn;
  syn.src = key.vip;
  syn.sport = key.client_port;
  syn.dst = flow.st.backend_ip;
  syn.dport = flow.st.backend_port;
  syn.seq = flow.st.client_isn;
  syn.flags = net::kSyn;
  // Return-path pin so the server's replies come back to this instance.
  const net::FiveTuple server_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                   key.client_port};
  ctx_->fabric->RegisterSnat(server_side, ctx_->self_ip);
  ctx_->flows->BindServer(server_side, key);
  ctx_->Emit(std::move(syn));
  ++flow.server_syn_attempts;
  if (flow.server_syn_attempts == 1) {
    flow.server_syn_time = ctx_->sim->now();
    if (ctx_->stage->dispatch_ms != nullptr && flow.started != 0) {
      ctx_->stage->dispatch_ms->Add(sim::ToMillis(ctx_->sim->now() - flow.started));
    }
  }
  ctx_->Trace(key, obs::EventType::kServerSyn,
              static_cast<std::uint64_t>(flow.server_syn_attempts));
  if (flow.server_syn_attempts <= ctx_->cfg->server_syn_retries) {
    flow.server_syn_timer = ctx_->sim->After(ctx_->cfg->server_syn_timeout, [this, key]() {
      LocalFlow* f = ctx_->flows->Find(key);
      if (f != nullptr && f->phase() == FlowPhase::kServerSynSent && ctx_->alive()) {
        SendServerSyn(key, *f);
      }
    });
  }
}

void HandshakeEngine::OnServerSynAck(const FlowKey& key, LocalFlow& flow,
                                     const net::Packet& p) {
  flow.server_syn_timer.Cancel();
  if (flow.phase() == FlowPhase::kServerSynSent) {
    flow.fsm.Transition(FlowPhase::kStorageBWait);
  } else if (flow.phase() != FlowPhase::kStorageBWait) {
    // A SYN-ACK in any other phase is not a legal edge (e.g. a stale leg
    // answering after a re-switch un-pinned it): reset explicitly.
    if (!ctx_->Advance(key, flow, FlowPhase::kStorageBWait)) {
      return;
    }
  }
  // A duplicate SYN-ACK while the storage-b write is in flight re-runs the
  // derivation below (idempotent); the establishment callback fires once.
  flow.st.server_isn = p.seq;
  // The server's byte at server_isn+1 must appear to the client at
  // client_facing_nxt (== lb_isn+1 for the first leg; the current splice
  // point after an HTTP/1.1 re-switch).
  if (flow.client_facing_nxt == 0) {
    flow.client_facing_nxt = flow.st.lb_isn + 1;
  }
  flow.st.seq_delta_s2c = flow.client_facing_nxt - (p.seq + 1);  // mod 2^32.
  flow.st.seq_delta_c2s = 0;  // Client's (possibly rebased) ISN is reused.
  if (flow.tls_active) {
    // The server-side stream replaces Hello+Finished with the session
    // ticket; client appdata bytes shift by the difference.
    VipState* vip = ctx_->FindVip(key.vip);
    if (vip != nullptr && vip->tls) {
      const std::string ticket = tls::EncodeRecord(
          {tls::RecordType::kSessionTicket,
           tls::SealTicket(flow.tls_session_key, vip->tls->service_key)});
      flow.st.seq_delta_c2s =
          static_cast<std::uint32_t>(ticket.size()) - flow.tls_handshake_len;
    }
  }
  flow.st.stage = FlowStage::kTunneling;
  ctx_->cpu->ChargeConnection();
  // Stateless mode: the tunneling claims (backend, splice delta) are now
  // final for this leg — mint the v2 cookie the client will echo.
  ctx_->RefreshCookie(key, flow);

  // storage-b: persist full state *before* ACKing the server (Fig 3), so a
  // crash after the ACK can always be recovered by another instance. In
  // stateless mode the cookie is that recovery path; the journal entry is a
  // write-behind fallback and the completion fires inline.
  ctx_->store->WriteEstablishedState(flow.st, flow.store_mode, [this, key](bool ok) {
    if (!ctx_->alive()) {
      return;
    }
    LocalFlow* f = ctx_->flows->Find(key);
    if (f == nullptr || !ok || f->established()) {
      return;
    }
    f->fsm.Transition(FlowPhase::kEstablished);
    if (ctx_->stage->server_connect_ms != nullptr && f->server_syn_time != 0) {
      ctx_->stage->server_connect_ms->Add(sim::ToMillis(ctx_->sim->now() - f->server_syn_time));
      f->server_syn_time = 0;
    }
    ctx_->Trace(key, obs::EventType::kEstablished);
    const net::FiveTuple server_side{f->st.backend_ip, key.vip, f->st.backend_port,
                                     key.client_port};
    ctx_->flows->BindServer(server_side, key);
    ctx_->dispatcher->ForwardRequestToServer(key, *f);
    if (!f->mirror_legs.empty()) {
      ctx_->splice->LaunchMirrorLegs(key, *f);
    }
    ctx_->ctr->flows_completed->Inc();
  });
}

}  // namespace yoda
