#include "src/core/control_state.h"

#include <algorithm>

namespace yoda {

const char* ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kVipDefined:
      return "VipDefined";
    case ChangeKind::kVipRemoved:
      return "VipRemoved";
    case ChangeKind::kRulesUpdated:
      return "RulesUpdated";
    case ChangeKind::kAssignmentSet:
      return "AssignmentSet";
    case ChangeKind::kAssignmentCleared:
      return "AssignmentCleared";
    case ChangeKind::kInstanceScrubbed:
      return "InstanceScrubbed";
    case ChangeKind::kInstanceFailed:
      return "InstanceFailed";
    case ChangeKind::kInstanceAdmitted:
      return "InstanceAdmitted";
  }
  return "Unknown";
}

void ControlState::LogRecord(ChangeKind kind, net::IpAddr subject, std::uint64_t detail) {
  changelog_.push_back({epoch_, sim_->now(), kind, subject, detail});
  if (recorder_ != nullptr) {
    // detail packs (change kind << 32) | epoch so a trace alone suffices to
    // rebuild the changelog (tools/ctl_dump).
    recorder_->RecordSystem(sim_->now(), obs::EventType::kConfigChange, subject,
                            (static_cast<std::uint64_t>(kind) << 32) |
                                (epoch_ & 0xffffffffULL));
  }
}

std::uint64_t ControlState::Bump(ChangeKind kind, net::IpAddr subject, std::uint64_t detail) {
  ++epoch_;
  LogRecord(kind, subject, detail);
  return epoch_;
}

std::uint64_t ControlState::DefineVip(net::IpAddr vip, net::Port port,
                                      std::vector<rules::Rule> rules) {
  const std::uint64_t detail = rules.size();
  vips_[vip] = VipDesired{port, std::move(rules)};
  return Bump(ChangeKind::kVipDefined, vip, detail);
}

std::uint64_t ControlState::RemoveVip(net::IpAddr vip) {
  vips_.erase(vip);
  assignment_.erase(vip);
  return Bump(ChangeKind::kVipRemoved, vip, 0);
}

std::uint64_t ControlState::UpdateRules(net::IpAddr vip, std::vector<rules::Rule> rules) {
  auto it = vips_.find(vip);
  if (it == vips_.end()) {
    return epoch_;
  }
  const std::uint64_t detail = rules.size();
  it->second.rules = std::move(rules);
  return Bump(ChangeKind::kRulesUpdated, vip, detail);
}

std::uint64_t ControlState::SetAssignments(
    const std::map<net::IpAddr, std::vector<net::IpAddr>>& pools) {
  ++epoch_;
  for (const auto& [vip, pool] : pools) {
    assignment_[vip] = pool;
    LogRecord(ChangeKind::kAssignmentSet, vip, pool.size());
  }
  return epoch_;
}

std::vector<net::IpAddr> ControlState::ScrubInstance(net::IpAddr instance) {
  std::vector<net::IpAddr> affected;
  for (auto& [vip, pool] : assignment_) {
    auto it = std::find(pool.begin(), pool.end(), instance);
    if (it != pool.end()) {
      pool.erase(it);
      affected.push_back(vip);
    }
  }
  if (!affected.empty()) {
    ++epoch_;
    LogRecord(ChangeKind::kInstanceScrubbed, instance, affected.size());
  }
  return affected;
}

std::uint64_t ControlState::NoteInstance(ChangeKind kind, net::IpAddr instance) {
  return Bump(kind, instance, 0);
}

const ControlState::VipDesired* ControlState::Desired(net::IpAddr vip) const {
  auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

const std::vector<net::IpAddr>* ControlState::DesiredPool(net::IpAddr vip) const {
  auto it = assignment_.find(vip);
  return it == assignment_.end() ? nullptr : &it->second;
}

bool ControlState::PoolContains(net::IpAddr vip, net::IpAddr instance) const {
  auto it = assignment_.find(vip);
  if (it == assignment_.end()) {
    return true;  // All-to-all: desired everywhere.
  }
  return std::find(it->second.begin(), it->second.end(), instance) != it->second.end();
}

}  // namespace yoda
