#include "src/core/control_state.h"

#include <algorithm>

namespace yoda {

const char* ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kVipDefined:
      return "VipDefined";
    case ChangeKind::kVipRemoved:
      return "VipRemoved";
    case ChangeKind::kRulesUpdated:
      return "RulesUpdated";
    case ChangeKind::kAssignmentSet:
      return "AssignmentSet";
    case ChangeKind::kAssignmentCleared:
      return "AssignmentCleared";
    case ChangeKind::kInstanceScrubbed:
      return "InstanceScrubbed";
    case ChangeKind::kInstanceFailed:
      return "InstanceFailed";
    case ChangeKind::kInstanceAdmitted:
      return "InstanceAdmitted";
    case ChangeKind::kRestored:
      return "Restored";
    case ChangeKind::kLeaderElected:
      return "LeaderElected";
    case ChangeKind::kStoreModeSet:
      return "StoreModeSet";
  }
  return "Unknown";
}

void ControlState::LogRecord(ChangeKind kind, net::IpAddr subject, std::uint64_t detail) {
  changelog_.push_back({epoch_, sim_->now(), kind, subject, detail});
  if (recorder_ != nullptr) {
    // detail packs (change kind << 32) | epoch so a trace alone suffices to
    // rebuild the changelog (tools/ctl_dump).
    recorder_->RecordSystem(sim_->now(), obs::EventType::kConfigChange, subject,
                            (static_cast<std::uint64_t>(kind) << 32) |
                                (epoch_ & 0xffffffffULL));
  }
}

std::uint64_t ControlState::Bump(ChangeKind kind, net::IpAddr subject, std::uint64_t detail) {
  ++epoch_;
  LogRecord(kind, subject, detail);
  return epoch_;
}

void ControlState::EmitDurable(ChangeKind kind, net::IpAddr subject, std::uint64_t detail,
                               net::Port port, const std::vector<rules::Rule>* rules,
                               const std::map<net::IpAddr, std::vector<net::IpAddr>>* pools) {
  if (!sink_) {
    return;
  }
  DurableChange change;
  change.epoch = epoch_;
  change.at = sim_->now();
  change.kind = kind;
  change.subject = subject;
  change.detail = detail;
  change.port = port;
  if (rules != nullptr) {
    change.rules = *rules;
  }
  if (pools != nullptr) {
    change.pools = *pools;
  }
  sink_(change);
}

std::uint64_t ControlState::DefineVip(net::IpAddr vip, net::Port port,
                                      std::vector<rules::Rule> rules) {
  const std::uint64_t detail = rules.size();
  vips_[vip] = VipDesired{port, std::move(rules)};
  Bump(ChangeKind::kVipDefined, vip, detail);
  EmitDurable(ChangeKind::kVipDefined, vip, detail, port, &vips_[vip].rules);
  return epoch_;
}

std::uint64_t ControlState::RemoveVip(net::IpAddr vip) {
  vips_.erase(vip);
  assignment_.erase(vip);
  Bump(ChangeKind::kVipRemoved, vip, 0);
  EmitDurable(ChangeKind::kVipRemoved, vip, 0);
  return epoch_;
}

std::uint64_t ControlState::UpdateRules(net::IpAddr vip, std::vector<rules::Rule> rules) {
  auto it = vips_.find(vip);
  if (it == vips_.end()) {
    return epoch_;
  }
  const std::uint64_t detail = rules.size();
  it->second.rules = std::move(rules);
  Bump(ChangeKind::kRulesUpdated, vip, detail);
  EmitDurable(ChangeKind::kRulesUpdated, vip, detail, it->second.port, &it->second.rules);
  return epoch_;
}

std::uint64_t ControlState::SetAssignments(
    const std::map<net::IpAddr, std::vector<net::IpAddr>>& pools) {
  ++epoch_;
  for (const auto& [vip, pool] : pools) {
    assignment_[vip] = pool;
    LogRecord(ChangeKind::kAssignmentSet, vip, pool.size());
  }
  // One durable entry for the whole round (one mutation = one epoch); the
  // subject slot is meaningless for a multi-VIP change.
  EmitDurable(ChangeKind::kAssignmentSet, 0, pools.size(), 0, nullptr, &pools);
  return epoch_;
}

std::vector<net::IpAddr> ControlState::ScrubInstance(net::IpAddr instance) {
  std::vector<net::IpAddr> affected;
  for (auto& [vip, pool] : assignment_) {
    auto it = std::find(pool.begin(), pool.end(), instance);
    if (it != pool.end()) {
      pool.erase(it);
      affected.push_back(vip);
    }
  }
  if (!affected.empty()) {
    ++epoch_;
    LogRecord(ChangeKind::kInstanceScrubbed, instance, affected.size());
    EmitDurable(ChangeKind::kInstanceScrubbed, instance, affected.size());
  }
  return affected;
}

std::uint64_t ControlState::NoteInstance(ChangeKind kind, net::IpAddr instance) {
  Bump(kind, instance, 0);
  EmitDurable(kind, instance, 0);
  return epoch_;
}

std::uint64_t ControlState::SetStoreMode(net::IpAddr vip, StoreMode mode) {
  auto it = vips_.find(vip);
  if (it == vips_.end()) {
    return epoch_;
  }
  it->second.store_mode = mode;
  Bump(ChangeKind::kStoreModeSet, vip, static_cast<std::uint64_t>(mode));
  it->second.store_mode_epoch = epoch_;  // The install epoch = cookie epoch.
  EmitDurable(ChangeKind::kStoreModeSet, vip, static_cast<std::uint64_t>(mode));
  return epoch_;
}

void ControlState::LoadSnapshot(std::uint64_t epoch, std::map<net::IpAddr, VipDesired> vips,
                                std::map<net::IpAddr, std::vector<net::IpAddr>> assignment) {
  epoch_ = epoch;
  vips_ = std::move(vips);
  assignment_ = std::move(assignment);
}

void ControlState::ApplyDurable(const DurableChange& change) {
  // Reproduce the live mutation's state effects and changelog records at the
  // ORIGINAL epoch/timestamp, with no recorder or sink side effects: replayed
  // history must not be re-journaled or re-traced.
  epoch_ = change.epoch;
  switch (change.kind) {
    case ChangeKind::kVipDefined:
      vips_[change.subject] = VipDesired{change.port, change.rules};
      break;
    case ChangeKind::kVipRemoved:
      vips_.erase(change.subject);
      assignment_.erase(change.subject);
      break;
    case ChangeKind::kRulesUpdated:
      if (auto it = vips_.find(change.subject); it != vips_.end()) {
        it->second.rules = change.rules;
      }
      break;
    case ChangeKind::kAssignmentSet:
      for (const auto& [vip, pool] : change.pools) {
        assignment_[vip] = pool;
        changelog_.push_back({change.epoch, change.at, change.kind, vip, pool.size()});
      }
      return;  // Per-VIP records already appended (mirrors the live path).
    case ChangeKind::kAssignmentCleared:
      assignment_.erase(change.subject);
      break;
    case ChangeKind::kInstanceScrubbed:
      for (auto& [vip, pool] : assignment_) {
        pool.erase(std::remove(pool.begin(), pool.end(), change.subject), pool.end());
      }
      break;
    case ChangeKind::kStoreModeSet:
      if (auto it = vips_.find(change.subject); it != vips_.end()) {
        it->second.store_mode = static_cast<StoreMode>(change.detail);
        it->second.store_mode_epoch = change.epoch;
      }
      break;
    case ChangeKind::kInstanceFailed:
    case ChangeKind::kInstanceAdmitted:
    case ChangeKind::kRestored:
    case ChangeKind::kLeaderElected:
      break;  // Membership/lifecycle markers: epoch + changelog only.
  }
  changelog_.push_back({change.epoch, change.at, change.kind, change.subject, change.detail});
}

const ControlState::VipDesired* ControlState::Desired(net::IpAddr vip) const {
  auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

const std::vector<net::IpAddr>* ControlState::DesiredPool(net::IpAddr vip) const {
  auto it = assignment_.find(vip);
  return it == assignment_.end() ? nullptr : &it->second;
}

bool ControlState::PoolContains(net::IpAddr vip, net::IpAddr instance) const {
  auto it = assignment_.find(vip);
  if (it == assignment_.end()) {
    return true;  // All-to-all: desired everywhere.
  }
  return std::find(it->second.begin(), it->second.end(), instance) != it->second.end();
}

}  // namespace yoda
