// ControlState: the epoch-stamped desired configuration of the control plane.
//
// The reconciliation architecture (paper §4.5 + §5.2, mirroring the
// control/data split of Concury and the desired-state model argued by the
// stateful-LB literature) separates WHAT the fleet should look like from HOW
// it gets there:
//
//   ControlState   — desired VIPs, rules, VIP->instance assignment (this
//                    file). Every mutation bumps a monotone epoch and appends
//                    a changelog record; the flight recorder mirrors each
//                    record as a kConfigChange system event so a trace can
//                    replay the configuration history.
//   HealthMonitor  — actual-state observer (probes, hysteresis).
//   AssignmentEngine — computes desired-state changes as explicit UpdatePlans.
//   FleetActuator  — the only code that pushes desired state at instances and
//                    the L4 fabric, as idempotent epoch-tagged steps.
//
// An absent assignment entry means "all-to-all": the VIP is desired on every
// active instance (bootstrap mode, before any assignment round).

#ifndef SRC_CORE_CONTROL_STATE_H_
#define SRC_CORE_CONTROL_STATE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/flow_state.h"
#include "src/net/network.h"
#include "src/obs/trace.h"
#include "src/rules/rule.h"
#include "src/sim/simulator.h"

namespace yoda {

enum class ChangeKind : std::uint8_t {
  kVipDefined,         // subject=vip, detail=rule count.
  kVipRemoved,         // subject=vip.
  kRulesUpdated,       // subject=vip, detail=rule count.
  kAssignmentSet,      // subject=vip, detail=desired pool size.
  kAssignmentCleared,  // subject=vip (back to all-to-all).
  kInstanceScrubbed,   // subject=instance, detail=# assignments it left.
  kInstanceFailed,     // subject=instance (fleet membership, not assignment).
  kInstanceAdmitted,   // subject=instance (added, activated or readmitted).
  kRestored,           // subject=controller ip; state rebuilt from the journal.
  kLeaderElected,      // subject=controller ip; this replica now leads.
  kStoreModeSet,       // subject=vip, detail=StoreMode (stateless fast path).
};

const char* ChangeKindName(ChangeKind kind);

struct ChangeRecord {
  std::uint64_t epoch = 0;
  sim::Time at = 0;
  ChangeKind kind = ChangeKind::kVipDefined;
  net::IpAddr subject = 0;
  std::uint64_t detail = 0;
};

// One mutation with its FULL payload — exactly what must survive a
// controller crash. Unlike ChangeRecord (a changelog line), replaying a
// DurableChange against a ControlState reproduces the mutation bit-for-bit:
// kVipDefined/kRulesUpdated carry the rule set, kAssignmentSet carries the
// whole round's pools (one mutation = one epoch = one journal entry, even
// when the round touched many VIPs). The ControlJournal serializes these
// into the replicated KV ring as the changelog tail.
struct DurableChange {
  std::uint64_t epoch = 0;
  sim::Time at = 0;
  ChangeKind kind = ChangeKind::kVipDefined;
  net::IpAddr subject = 0;
  std::uint64_t detail = 0;
  net::Port port = 0;                                      // kVipDefined.
  std::vector<rules::Rule> rules;                          // kVipDefined/kRulesUpdated.
  std::map<net::IpAddr, std::vector<net::IpAddr>> pools;   // kAssignmentSet.
};

class ControlState {
 public:
  explicit ControlState(sim::Simulator* simulator, obs::FlightRecorder* recorder = nullptr)
      : sim_(simulator), recorder_(recorder) {}

  struct VipDesired {
    net::Port port = 80;
    std::vector<rules::Rule> rules;
    // Per-flow store contract: the paper's synchronous ACK-point writes or
    // the cookie-derived stateless fast path. `store_mode_epoch` is the
    // epoch of the install that set the mode — it becomes the VIP's cookie
    // epoch on the instances, so tokens minted under an older policy are
    // rejected as stale after a flip.
    StoreMode store_mode = StoreMode::kStateful;
    std::uint64_t store_mode_epoch = 0;
  };

  // --- mutations (each bumps the epoch once and logs the change) ---
  std::uint64_t DefineVip(net::IpAddr vip, net::Port port, std::vector<rules::Rule> rules);
  std::uint64_t RemoveVip(net::IpAddr vip);
  std::uint64_t UpdateRules(net::IpAddr vip, std::vector<rules::Rule> rules);
  // Replaces the desired assignment of every VIP in `pools` (one epoch for
  // the whole round, one changelog record per VIP).
  std::uint64_t SetAssignments(const std::map<net::IpAddr, std::vector<net::IpAddr>>& pools);
  // Failure path: removes `instance` from every desired pool. Returns the
  // VIPs whose pools shrank. Bumps the epoch only if anything changed.
  std::vector<net::IpAddr> ScrubInstance(net::IpAddr instance);
  // Fleet membership change (failure / admission / readmission). Bumps the
  // epoch so plans reacting to the SAME instance flapping twice carry
  // distinct epochs and are not swallowed by the actuator's replay ledger.
  std::uint64_t NoteInstance(ChangeKind kind, net::IpAddr instance);
  // Flips the VIP's per-flow store contract; the new epoch becomes the
  // cookie install epoch (VipDesired::store_mode_epoch). No-op epoch-wise
  // when the VIP is undefined.
  std::uint64_t SetStoreMode(net::IpAddr vip, StoreMode mode);

  // --- durability (controller HA) ---
  // Sink invoked once per MUTATION (not per changelog record) with the full
  // payload, after the state and changelog were updated. The journal hooks
  // in here; unset (default) keeps the single-controller path byte-identical.
  using ChangeSink = std::function<void(const DurableChange&)>;
  void SetChangeSink(ChangeSink sink) { sink_ = std::move(sink); }

  // Restore path. LoadSnapshot replaces the whole state (epoch, desired VIPs,
  // assignment) without changelog records, recorder mirroring or sink calls;
  // ApplyDurable replays one journaled mutation, reproducing exactly the
  // changelog records the live mutation wrote (original epoch and timestamp)
  // but again without recorder/sink side effects — a restored controller
  // must not re-journal or re-trace history that already happened.
  void LoadSnapshot(std::uint64_t epoch, std::map<net::IpAddr, VipDesired> vips,
                    std::map<net::IpAddr, std::vector<net::IpAddr>> assignment);
  void ApplyDurable(const DurableChange& change);

  // Snapshot accessors (journal serialization).
  const std::map<net::IpAddr, std::vector<net::IpAddr>>& assignment() const {
    return assignment_;
  }

  // --- queries ---
  std::uint64_t epoch() const { return epoch_; }
  bool HasVip(net::IpAddr vip) const { return vips_.contains(vip); }
  const std::map<net::IpAddr, VipDesired>& vips() const { return vips_; }
  const VipDesired* Desired(net::IpAddr vip) const;
  // Desired pool, or nullptr when the VIP is in all-to-all mode.
  const std::vector<net::IpAddr>* DesiredPool(net::IpAddr vip) const;
  // True when `instance` is desired to serve `vip` (all-to-all counts as
  // "desired everywhere"). Used by the actuator's stale-scrub guard.
  bool PoolContains(net::IpAddr vip, net::IpAddr instance) const;
  const std::vector<ChangeRecord>& changelog() const { return changelog_; }

 private:
  std::uint64_t Bump(ChangeKind kind, net::IpAddr subject, std::uint64_t detail);
  void LogRecord(ChangeKind kind, net::IpAddr subject, std::uint64_t detail);
  // Builds the DurableChange for the mutation just applied and feeds the
  // sink (no-op without one).
  void EmitDurable(ChangeKind kind, net::IpAddr subject, std::uint64_t detail,
                   net::Port port = 0, const std::vector<rules::Rule>* rules = nullptr,
                   const std::map<net::IpAddr, std::vector<net::IpAddr>>* pools = nullptr);

  sim::Simulator* sim_;
  obs::FlightRecorder* recorder_;
  ChangeSink sink_;
  std::uint64_t epoch_ = 0;
  std::map<net::IpAddr, VipDesired> vips_;
  std::map<net::IpAddr, std::vector<net::IpAddr>> assignment_;
  std::vector<ChangeRecord> changelog_;
};

}  // namespace yoda

#endif  // SRC_CORE_CONTROL_STATE_H_
