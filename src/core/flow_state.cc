#include "src/core/flow_state.h"

#include <sstream>

#include "src/kv/hash_ring.h"
#include "src/net/wire.h"

namespace yoda {
namespace {

constexpr std::uint8_t kCodecVersion = 1;

}  // namespace

std::string FlowState::Serialize() const {
  net::ByteWriter w;
  w.U8(kCodecVersion);
  w.U8(static_cast<std::uint8_t>(stage));
  w.U32(client_ip);
  w.U16(client_port);
  w.U32(vip);
  w.U16(vip_port);
  w.U32(client_isn);
  w.U32(lb_isn);
  w.U32(backend_ip);
  w.U16(backend_port);
  w.U32(server_isn);
  w.U32(seq_delta_s2c);
  w.U32(seq_delta_c2s);
  w.U32(static_cast<std::uint32_t>(pipeline_request_ends.size()));
  for (std::uint32_t off : pipeline_request_ends) {
    w.U32(off);
  }
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

std::optional<FlowState> FlowState::Parse(const std::string& bytes) {
  std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
  net::ByteReader r(buf);
  auto version = r.U8();
  if (!version || *version != kCodecVersion) {
    return std::nullopt;
  }
  FlowState s;
  auto stage_raw = r.U8();
  auto client_ip = r.U32();
  auto client_port = r.U16();
  auto vip = r.U32();
  auto vip_port = r.U16();
  auto client_isn = r.U32();
  auto lb_isn = r.U32();
  auto backend_ip = r.U32();
  auto backend_port = r.U16();
  auto server_isn = r.U32();
  auto d_s2c = r.U32();
  auto d_c2s = r.U32();
  auto count = r.U32();
  if (!stage_raw || !client_ip || !client_port || !vip || !vip_port || !client_isn || !lb_isn ||
      !backend_ip || !backend_port || !server_isn || !d_s2c || !d_c2s || !count ||
      *stage_raw > 1) {
    return std::nullopt;
  }
  s.stage = static_cast<FlowStage>(*stage_raw);
  s.client_ip = *client_ip;
  s.client_port = *client_port;
  s.vip = *vip;
  s.vip_port = *vip_port;
  s.client_isn = *client_isn;
  s.lb_isn = *lb_isn;
  s.backend_ip = *backend_ip;
  s.backend_port = *backend_port;
  s.server_isn = *server_isn;
  s.seq_delta_s2c = *d_s2c;
  s.seq_delta_c2s = *d_c2s;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto off = r.U32();
    if (!off) {
      return std::nullopt;
    }
    s.pipeline_request_ends.push_back(*off);
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return s;
}

bool FlowState::operator==(const FlowState& o) const {
  return stage == o.stage && client_ip == o.client_ip && client_port == o.client_port &&
         vip == o.vip && vip_port == o.vip_port && client_isn == o.client_isn &&
         lb_isn == o.lb_isn && backend_ip == o.backend_ip && backend_port == o.backend_port &&
         server_isn == o.server_isn && seq_delta_s2c == o.seq_delta_s2c &&
         seq_delta_c2s == o.seq_delta_c2s && pipeline_request_ends == o.pipeline_request_ends;
}

std::string FlowState::ToString() const {
  std::ostringstream os;
  os << (stage == FlowStage::kConnection ? "CONN" : "TUNNEL") << " client="
     << net::IpToString(client_ip) << ":" << client_port << " vip=" << net::IpToString(vip) << ":"
     << vip_port << " backend=" << net::IpToString(backend_ip) << ":" << backend_port
     << " isns(c/lb/s)=" << client_isn << "/" << lb_isn << "/" << server_isn;
  return os.str();
}

std::string ClientFlowKey(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                          net::Port client_port) {
  return "c:" + std::to_string(vip) + ":" + std::to_string(vip_port) + ":" +
         std::to_string(client_ip) + ":" + std::to_string(client_port);
}

std::string ServerFlowKey(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                          net::Port client_port) {
  return "s:" + std::to_string(backend_ip) + ":" + std::to_string(backend_port) + ":" +
         std::to_string(vip) + ":" + std::to_string(client_port);
}

std::uint32_t DeterministicLbIsn(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                                 net::Port client_port) {
  std::uint64_t h = kv::Mix64((static_cast<std::uint64_t>(client_ip) << 32) ^
                              (static_cast<std::uint64_t>(client_port) << 16) ^ vip_port);
  h = kv::Mix64(h ^ vip);
  return static_cast<std::uint32_t>(h);
}

const char* StoreModeName(StoreMode mode) {
  return mode == StoreMode::kStateless ? "stateless" : "stateful";
}

namespace {

// 49-bit claim body (everything under the MAC field).
std::uint64_t CookieBody(const CookieClaims& c) {
  return (static_cast<std::uint64_t>(c.tunneling ? 1 : 0) << 48) |
         (static_cast<std::uint64_t>(c.store_epoch) << 40) |
         (static_cast<std::uint64_t>(c.backend_id) << 32) | c.offset;
}

// 15-bit keyed MAC over (flow identity, claim body, secret). The lowest MAC
// bit is forced to 1 so a well-formed cookie can never collide with the
// "no token" value 0.
std::uint64_t CookieMac(std::uint64_t body, net::IpAddr vip, net::Port vip_port,
                        net::IpAddr client_ip, net::Port client_port, std::uint64_t secret) {
  std::uint64_t h = kv::Mix64(secret ^ (static_cast<std::uint64_t>(client_ip) << 32) ^
                              (static_cast<std::uint64_t>(client_port) << 16) ^ vip_port);
  h = kv::Mix64(h ^ vip);
  h = kv::Mix64(h ^ body);
  return (h >> 49) | 1;
}

}  // namespace

std::uint64_t EncodeCookie(const CookieClaims& claims, net::IpAddr vip, net::Port vip_port,
                           net::IpAddr client_ip, net::Port client_port, std::uint64_t secret) {
  const std::uint64_t body = CookieBody(claims);
  return (CookieMac(body, vip, vip_port, client_ip, client_port, secret) << 49) | body;
}

std::uint64_t MintFlowCookie(const FlowState& st, std::uint8_t store_epoch,
                             std::uint64_t secret) {
  CookieClaims claims;
  claims.store_epoch = store_epoch;
  if (st.stage == FlowStage::kConnection) {
    claims.tunneling = false;
    claims.offset = st.client_isn;
  } else {
    claims.tunneling = true;
    if (st.seq_delta_c2s == 0) {
      claims.backend_id = static_cast<std::uint8_t>(st.backend_ip & 0xff);
      claims.offset = st.seq_delta_s2c;
    }
    // else: journal-pinned token (backend id 0, offset 0).
  }
  return EncodeCookie(claims, st.vip, st.vip_port, st.client_ip, st.client_port, secret);
}

std::optional<FlowState> FlowStateFromCookie(const CookieClaims& claims, net::IpAddr vip,
                                             net::Port vip_port, net::IpAddr client_ip,
                                             net::Port client_port,
                                             const std::set<net::IpAddr>& backends,
                                             net::Port backend_port) {
  FlowState st;
  st.client_ip = client_ip;
  st.client_port = client_port;
  st.vip = vip;
  st.vip_port = vip_port;
  st.lb_isn = DeterministicLbIsn(vip, vip_port, client_ip, client_port);
  if (!claims.tunneling) {
    st.stage = FlowStage::kConnection;
    st.client_isn = claims.offset;
    return st;
  }
  if (claims.backend_id == 0) {
    return std::nullopt;  // Journal-pinned: the cookie disclaims the state.
  }
  net::IpAddr backend = 0;
  for (net::IpAddr b : backends) {
    if ((b & 0xff) == claims.backend_id) {
      backend = b;
      break;
    }
  }
  if (backend == 0) {
    return std::nullopt;  // Claimed backend left the pool; journal decides.
  }
  st.stage = FlowStage::kTunneling;
  st.backend_ip = backend;
  st.backend_port = backend_port;
  st.seq_delta_s2c = claims.offset;
  st.seq_delta_c2s = 0;
  // Codable flows have client_facing_nxt == lb_isn + 1, so the server ISN
  // falls out of the delta. The client ISN is not carried (and not needed
  // once tunneling: the client->server direction translates by zero).
  st.server_isn = st.lb_isn - claims.offset;
  return st;
}

CookieVerdict DecodeCookie(std::uint64_t cookie, net::IpAddr vip, net::Port vip_port,
                           net::IpAddr client_ip, net::Port client_port, std::uint64_t secret,
                           std::uint8_t expected_epoch, CookieClaims* out) {
  const std::uint64_t body = cookie & ((std::uint64_t{1} << 49) - 1);
  const std::uint64_t mac = cookie >> 49;
  if (mac != CookieMac(body, vip, vip_port, client_ip, client_port, secret)) {
    return CookieVerdict::kBadMac;
  }
  CookieClaims c;
  c.tunneling = ((body >> 48) & 1) != 0;
  c.store_epoch = static_cast<std::uint8_t>((body >> 40) & 0xff);
  c.backend_id = static_cast<std::uint8_t>((body >> 32) & 0xff);
  c.offset = static_cast<std::uint32_t>(body & 0xffffffffu);
  if (c.store_epoch != expected_epoch) {
    return CookieVerdict::kStaleEpoch;
  }
  if (out != nullptr) {
    *out = c;
  }
  return CookieVerdict::kOk;
}

}  // namespace yoda
