// Per-flow state decoupled from Yoda instances (paper §3, §4.3).
//
// This is exactly the state another instance needs to adopt a flow:
// the two endpoints, the three initial sequence numbers (client ISN, the
// deterministic LB-side ISN, the server ISN), the selected backend, and the
// pipeline order for HTTP/1.1. It serializes to a compact binary value kept
// in TCPStore under two keys:
//   client key  "c:<vip>:<vport>:<cip>:<cport>"      (client-side packets)
//   server key  "s:<backend>:<bport>:<vip>:<cport>"  (server-side packets,
//       which do not carry the client IP, map back to the client key)

#ifndef SRC_CORE_FLOW_STATE_H_
#define SRC_CORE_FLOW_STATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace yoda {

enum class FlowStage : std::uint8_t {
  // storage-a done: client SYN captured, SYN-ACK sent, awaiting HTTP header
  // or server handshake.
  kConnection = 0,
  // storage-b done: server connected, pure L3 tunneling from here on.
  kTunneling = 1,
};

struct FlowState {
  FlowStage stage = FlowStage::kConnection;

  net::IpAddr client_ip = 0;
  net::Port client_port = 0;
  net::IpAddr vip = 0;
  net::Port vip_port = 0;

  std::uint32_t client_isn = 0;  // Client SYN sequence number.
  std::uint32_t lb_isn = 0;      // Our SYN-ACK ISN (hash-derived, stored for audit).

  // Valid once stage == kTunneling.
  net::IpAddr backend_ip = 0;
  net::Port backend_port = 0;
  std::uint32_t server_isn = 0;

  // Sequence-translation deltas for the server<->client direction. The
  // client->server direction needs none in the initial connection (Yoda
  // reuses the client ISN toward the server); after an HTTP/1.1 re-switch to
  // a different backend both deltas can be non-zero.
  std::uint32_t seq_delta_s2c = 0;  // server seq + delta -> client-facing seq.
  std::uint32_t seq_delta_c2s = 0;  // client seq + delta -> server-facing seq.

  // HTTP/1.1 pipelining: client-stream offsets (relative to client_isn+1) at
  // which each outstanding request ends, in arrival order, so a takeover
  // instance can keep responses in order.
  std::vector<std::uint32_t> pipeline_request_ends;

  std::string Serialize() const;
  static std::optional<FlowState> Parse(const std::string& bytes);

  bool operator==(const FlowState& o) const;
  std::string ToString() const;
};

// TCPStore keys.
std::string ClientFlowKey(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                          net::Port client_port);
std::string ServerFlowKey(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                          net::Port client_port);

// The deterministic SYN-ACK ISN (paper §4.1): every Yoda instance derives the
// same ISN for a given client ip:port (plus VIP, so distinct services get
// distinct sequence spaces), so no SYN-ACK state needs storing.
std::uint32_t DeterministicLbIsn(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                                 net::Port client_port);

}  // namespace yoda

#endif  // SRC_CORE_FLOW_STATE_H_
