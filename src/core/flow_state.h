// Per-flow state decoupled from Yoda instances (paper §3, §4.3).
//
// This is exactly the state another instance needs to adopt a flow:
// the two endpoints, the three initial sequence numbers (client ISN, the
// deterministic LB-side ISN, the server ISN), the selected backend, and the
// pipeline order for HTTP/1.1. It serializes to a compact binary value kept
// in TCPStore under two keys:
//   client key  "c:<vip>:<vport>:<cip>:<cport>"      (client-side packets)
//   server key  "s:<backend>:<bport>:<vip>:<cport>"  (server-side packets,
//       which do not carry the client IP, map back to the client key)

#ifndef SRC_CORE_FLOW_STATE_H_
#define SRC_CORE_FLOW_STATE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace yoda {

enum class FlowStage : std::uint8_t {
  // storage-a done: client SYN captured, SYN-ACK sent, awaiting HTTP header
  // or server handshake.
  kConnection = 0,
  // storage-b done: server connected, pure L3 tunneling from here on.
  kTunneling = 1,
};

struct FlowState {
  FlowStage stage = FlowStage::kConnection;

  net::IpAddr client_ip = 0;
  net::Port client_port = 0;
  net::IpAddr vip = 0;
  net::Port vip_port = 0;

  std::uint32_t client_isn = 0;  // Client SYN sequence number.
  std::uint32_t lb_isn = 0;      // Our SYN-ACK ISN (hash-derived, stored for audit).

  // Valid once stage == kTunneling.
  net::IpAddr backend_ip = 0;
  net::Port backend_port = 0;
  std::uint32_t server_isn = 0;

  // Sequence-translation deltas for the server<->client direction. The
  // client->server direction needs none in the initial connection (Yoda
  // reuses the client ISN toward the server); after an HTTP/1.1 re-switch to
  // a different backend both deltas can be non-zero.
  std::uint32_t seq_delta_s2c = 0;  // server seq + delta -> client-facing seq.
  std::uint32_t seq_delta_c2s = 0;  // client seq + delta -> server-facing seq.

  // HTTP/1.1 pipelining: client-stream offsets (relative to client_isn+1) at
  // which each outstanding request ends, in arrival order, so a takeover
  // instance can keep responses in order.
  std::vector<std::uint32_t> pipeline_request_ends;

  std::string Serialize() const;
  static std::optional<FlowState> Parse(const std::string& bytes);

  bool operator==(const FlowState& o) const;
  std::string ToString() const;
};

// TCPStore keys.
std::string ClientFlowKey(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                          net::Port client_port);
std::string ServerFlowKey(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                          net::Port client_port);

// The deterministic SYN-ACK ISN (paper §4.1): every Yoda instance derives the
// same ISN for a given client ip:port (plus VIP, so distinct services get
// distinct sequence spaces), so no SYN-ACK state needs storing.
std::uint32_t DeterministicLbIsn(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                                 net::Port client_port);

// --- Stateless fast path: signed SYN-cookie flow tokens ---------------------
//
// Per-VIP store-mode policy. kStateful is the paper's contract (three
// synchronous replicated sets per request, Fig 3). kStateless derives the
// common-case flow state from a signed cookie carried by the packets
// themselves and demotes the ACK-point writes to a write-behind takeover
// journal (zero synchronous store writes on the fast path).
enum class StoreMode : std::uint8_t {
  kStateful = 0,
  kStateless = 1,
};

const char* StoreModeName(StoreMode mode);

// The claims packed into the 64-bit cookie (the SYN-cookie ISN extended
// through the timestamp-option echo). Layout, high to low:
//
//   [63..49] hmac      15-bit keyed MAC over (flow identity, claims, secret);
//                      lowest MAC bit forced to 1 so a valid cookie is never 0
//   [48]     phase     0 = connection (offset = client ISN),
//                      1 = tunneling  (offset = server->client seq delta)
//   [47..40] epoch     low 8 bits of the VIP's store-mode install epoch
//   [39..32] backend   backend id (last IP octet; 0 in connection phase)
//   [31..0]  offset    phase-dependent 32-bit sequence claim
//
// In the tunneling phase the full FlowState is recoverable for flows the
// cookie can describe (seq_delta_c2s == 0, i.e. no TLS rebasing or
// re-switch): backend from the id, seq_delta_s2c from the offset, lb_isn from
// DeterministicLbIsn, server_isn = lb_isn - seq_delta_s2c.
struct CookieClaims {
  bool tunneling = false;
  std::uint8_t store_epoch = 0;
  std::uint8_t backend_id = 0;
  std::uint32_t offset = 0;
};

std::uint64_t EncodeCookie(const CookieClaims& claims, net::IpAddr vip, net::Port vip_port,
                           net::IpAddr client_ip, net::Port client_port, std::uint64_t secret);

enum class CookieVerdict : std::uint8_t {
  kOk = 0,
  kBadMac = 1,      // Forged, corrupted, or keyed with a different secret.
  kStaleEpoch = 2,  // Minted before the VIP's current store-mode install.
};

// Verifies `cookie` against the flow identity and `expected_epoch` (low 8
// bits of the VIP's store-mode install epoch) and unpacks the claims into
// `out` on success. A cookie of 0 (no token) is kBadMac.
CookieVerdict DecodeCookie(std::uint64_t cookie, net::IpAddr vip, net::Port vip_port,
                           net::IpAddr client_ip, net::Port client_port, std::uint64_t secret,
                           std::uint8_t expected_epoch, CookieClaims* out);

// Mints the current cookie for `st`. Connection stage encodes the client
// ISN; tunneling encodes (backend id, seq_delta_s2c) when the flow is
// cookie-codable (seq_delta_c2s == 0, i.e. no TLS rebasing or re-switch
// displacement) and otherwise a signed "journal-pinned" token (backend id 0)
// that tells any adopter to skip reconstruction and go straight to the
// journal — overriding whatever older, now-wrong token the client echoes.
std::uint64_t MintFlowCookie(const FlowState& st, std::uint8_t store_epoch,
                             std::uint64_t secret);

// Rebuilds an adoptable FlowState from verified tunneling-phase claims and
// the flow identity. Returns nullopt for journal-pinned tokens (backend id
// 0) or when no backend in `backends` matches the claimed id.
std::optional<FlowState> FlowStateFromCookie(const CookieClaims& claims, net::IpAddr vip,
                                             net::Port vip_port, net::IpAddr client_ip,
                                             net::Port client_port,
                                             const std::set<net::IpAddr>& backends,
                                             net::Port backend_port);

}  // namespace yoda

#endif  // SRC_CORE_FLOW_STATE_H_
