// SpliceEngine: the tunneling stage (paper Fig 4) plus request mirroring.
//
// Established flows are pure L3/L4 header surgery: addresses are rewritten
// so both ends only ever see the VIP, the client->server direction needs no
// sequence translation (same ISN), and the server->client direction shifts
// by the stored delta. The engine also runs the mirror-leg race (§5.2,
// first responder wins) and arms the delayed cleanup once both FINs have
// been tunneled (kEstablished -> kDraining).

#ifndef SRC_CORE_SPLICE_ENGINE_H_
#define SRC_CORE_SPLICE_ENGINE_H_

#include "src/core/pipeline.h"

namespace yoda {

class SpliceEngine {
 public:
  explicit SpliceEngine(PipelineContext* ctx) : ctx_(ctx) {}

  // Client->server direction; diverts to the dispatcher's stream inspection
  // when HTTP/1.1 re-switching is armed for the flow.
  void TunnelFromClient(const FlowKey& key, LocalFlow& flow, VipState& vip,
                        const net::Packet& p);
  // Server->client direction; tracks the splice point and response
  // completion for re-switch gating.
  void TunnelFromServer(const FlowKey& key, LocalFlow& flow, const net::Packet& p);

  // Request mirroring (§5.2): shadow legs racing the primary.
  void LaunchMirrorLegs(const FlowKey& key, LocalFlow& flow);
  // Returns true if the packet was consumed as mirror-leg traffic.
  bool HandleMirrorPacket(const FlowKey& key, LocalFlow& flow, const net::Packet& p);
  void PromoteMirrorWinner(const FlowKey& key, LocalFlow& flow, LocalFlow::MirrorLeg& leg,
                           const net::Packet& first_data);
  void KillLosingLegs(const FlowKey& key, LocalFlow& flow, net::IpAddr winner_ip);

  // Moves the flow to kDraining and arms the delayed cleanup once both
  // directions have FINed.
  void MaybeScheduleCleanup(const FlowKey& key, LocalFlow& flow);

 private:
  PipelineContext* ctx_;
};

}  // namespace yoda

#endif  // SRC_CORE_SPLICE_ENGINE_H_
