#include "src/core/tcp_store.h"

#include <memory>

namespace yoda {

void TcpStore::StoreConnectionState(const FlowState& state, Ack done) {
  ++stats_.connection_writes;
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  client_->Set(key, state.Serialize(), std::move(done));
}

void TcpStore::StoreTunnelingState(const FlowState& state, Ack done) {
  ++stats_.tunneling_writes;
  const std::string ckey =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  const std::string skey =
      ServerFlowKey(state.backend_ip, state.backend_port, state.vip, state.client_port);
  auto pending = std::make_shared<int>(2);
  auto ok_all = std::make_shared<bool>(true);
  auto join = [pending, ok_all, done = std::move(done)](bool ok) {
    *ok_all = *ok_all && ok;
    if (--*pending == 0) {
      done(*ok_all);
    }
  };
  client_->Set(ckey, state.Serialize(), join);
  client_->Set(skey, ckey, join);
}

void TcpStore::LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                              net::Port client_port, Lookup done) {
  ++stats_.lookups;
  const std::string key = ClientFlowKey(vip, vip_port, client_ip, client_port);
  client_->Get(key, [this, done = std::move(done)](std::optional<std::string> v) {
    if (!v) {
      done(std::nullopt);
      return;
    }
    auto state = FlowState::Parse(*v);
    if (state) {
      ++stats_.lookup_hits;
    }
    done(state);
  });
}

void TcpStore::LookupByServer(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                              net::Port client_port, Lookup done) {
  ++stats_.lookups;
  const std::string skey = ServerFlowKey(backend_ip, backend_port, vip, client_port);
  client_->Get(skey, [this, done = std::move(done)](std::optional<std::string> ckey) {
    if (!ckey) {
      done(std::nullopt);
      return;
    }
    client_->Get(*ckey, [this, done](std::optional<std::string> v) {
      if (!v) {
        done(std::nullopt);
        return;
      }
      auto state = FlowState::Parse(*v);
      if (state) {
        ++stats_.lookup_hits;
      }
      done(state);
    });
  });
}

void TcpStore::Remove(const FlowState& state, Ack done) {
  ++stats_.deletes;
  const std::string ckey =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  if (state.stage != FlowStage::kTunneling) {
    client_->Delete(ckey, std::move(done));
    return;
  }
  const std::string skey =
      ServerFlowKey(state.backend_ip, state.backend_port, state.vip, state.client_port);
  auto pending = std::make_shared<int>(2);
  auto join = [pending, done = std::move(done)](bool) {
    if (--*pending == 0) {
      done(true);
    }
  };
  client_->Delete(ckey, join);
  client_->Delete(skey, join);
}

}  // namespace yoda
