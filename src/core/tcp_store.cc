#include "src/core/tcp_store.h"

#include <memory>
#include <utility>

namespace yoda {

TcpStore::TcpStore(kv::ReplicatingClient* client, sim::Simulator* simulator,
                   obs::FlightRecorder* recorder, obs::Registry* registry)
    : client_(client), sim_(simulator), recorder_(recorder) {
  if (registry != nullptr) {
    ctr_.connection_writes = &registry->GetCounter("tcpstore.connection_writes");
    ctr_.tunneling_writes = &registry->GetCounter("tcpstore.tunneling_writes");
    ctr_.lookups = &registry->GetCounter("tcpstore.lookups");
    ctr_.lookup_hits = &registry->GetCounter("tcpstore.lookup_hits");
    ctr_.deletes = &registry->GetCounter("tcpstore.deletes");
  }
}

void TcpStore::Trace(const obs::FlowId& flow, obs::EventType type, std::uint64_t detail) {
  if (recorder_ != nullptr && sim_ != nullptr) {
    recorder_->Record(flow, sim_->now(), type, /*where=*/0, detail);
  }
}

void TcpStore::StoreConnectionState(const FlowState& state, Ack done) {
  ++stats_.connection_writes;
  if (ctr_.connection_writes != nullptr) {
    ctr_.connection_writes->Inc();
  }
  const obs::FlowId flow = FlowIdOf(state);
  Trace(flow, obs::EventType::kStorageAWriteStart);
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  client_->Set(key, state.Serialize(),
               [this, flow, done = std::move(done)](bool ok) {
                 Trace(flow, obs::EventType::kStorageAWriteDone, ok ? 1 : 0);
                 done(ok);
               });
}

void TcpStore::StoreTunnelingState(const FlowState& state, Ack done) {
  ++stats_.tunneling_writes;
  if (ctr_.tunneling_writes != nullptr) {
    ctr_.tunneling_writes->Inc();
  }
  const obs::FlowId flow = FlowIdOf(state);
  Trace(flow, obs::EventType::kStorageBWriteStart);
  const std::string ckey =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  const std::string skey =
      ServerFlowKey(state.backend_ip, state.backend_port, state.vip, state.client_port);
  auto pending = std::make_shared<int>(2);
  auto ok_all = std::make_shared<bool>(true);
  auto join = [this, flow, pending, ok_all, done = std::move(done)](bool ok) {
    *ok_all = *ok_all && ok;
    if (--*pending == 0) {
      Trace(flow, obs::EventType::kStorageBWriteDone, *ok_all ? 1 : 0);
      done(*ok_all);
    }
  };
  client_->Set(ckey, state.Serialize(), join);
  client_->Set(skey, ckey, join);
}

void TcpStore::LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                              net::Port client_port, Lookup done) {
  ++stats_.lookups;
  if (ctr_.lookups != nullptr) {
    ctr_.lookups->Inc();
  }
  const obs::FlowId flow{vip, vip_port, client_ip, client_port};
  Trace(flow, obs::EventType::kStoreLookupStart);
  const std::string key = ClientFlowKey(vip, vip_port, client_ip, client_port);
  client_->Get(key, [this, flow, done = std::move(done)](std::optional<std::string> v) {
    if (!v) {
      Trace(flow, obs::EventType::kStoreLookupDone, 0);
      done(std::nullopt);
      return;
    }
    auto state = FlowState::Parse(*v);
    if (state) {
      ++stats_.lookup_hits;
      if (ctr_.lookup_hits != nullptr) {
        ctr_.lookup_hits->Inc();
      }
    }
    Trace(flow, obs::EventType::kStoreLookupDone, state ? 1 : 0);
    done(state);
  });
}

void TcpStore::LookupByServer(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                              net::Port client_port, Lookup done) {
  ++stats_.lookups;
  if (ctr_.lookups != nullptr) {
    ctr_.lookups->Inc();
  }
  // No client-side FlowId until the reverse mapping resolves, so only the
  // lookup completion is traced (against the recovered flow).
  const std::string skey = ServerFlowKey(backend_ip, backend_port, vip, client_port);
  client_->Get(skey, [this, done = std::move(done)](std::optional<std::string> ckey) {
    if (!ckey) {
      done(std::nullopt);
      return;
    }
    client_->Get(*ckey, [this, done](std::optional<std::string> v) {
      if (!v) {
        done(std::nullopt);
        return;
      }
      auto state = FlowState::Parse(*v);
      if (state) {
        ++stats_.lookup_hits;
        if (ctr_.lookup_hits != nullptr) {
          ctr_.lookup_hits->Inc();
        }
        Trace(FlowIdOf(*state), obs::EventType::kStoreLookupDone, 1);
      }
      done(state);
    });
  });
}

void TcpStore::Remove(const FlowState& state, Ack done) {
  ++stats_.deletes;
  if (ctr_.deletes != nullptr) {
    ctr_.deletes->Inc();
  }
  const std::string ckey =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  if (state.stage != FlowStage::kTunneling) {
    client_->Delete(ckey, std::move(done));
    return;
  }
  const std::string skey =
      ServerFlowKey(state.backend_ip, state.backend_port, state.vip, state.client_port);
  auto pending = std::make_shared<int>(2);
  auto join = [pending, done = std::move(done)](bool) {
    if (--*pending == 0) {
      done(true);
    }
  };
  client_->Delete(ckey, join);
  client_->Delete(skey, join);
}

}  // namespace yoda
