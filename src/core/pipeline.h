// The staged L7 data-plane pipeline (paper §4–§5), decomposed from the old
// YodaInstance god class.
//
// Stages are separate engines, each owning one slice of the paper's design:
//
//   HandshakeEngine  SYN capture + deterministic SYN-ACK, the TLS
//                    certificate flight, the server-side handshake and the
//                    two ACK-point storage writes (Fig 3).
//   L7Dispatcher     client header assembly, rule scan, sticky binding,
//                    backend selection, request forwarding and HTTP/1.1
//                    re-switching (§5.2).
//   SpliceEngine     sequence-translation tunneling in both directions
//                    (Fig 4) and request-mirroring legs (§5.2).
//   TakeoverEngine   client-/server-side TCPStore lookups, mid-stream
//                    adoption and the explicit-reset miss path (Fig 5).
//
// Engines never reach into YodaInstance: everything they share travels in
// the PipelineContext below — the flow table, the store session, the fabric,
// config, counters, stage histograms, and the other engines (a stage hands a
// flow to the next stage through the context). YodaInstance shrinks to
// wiring + packet demux on top of this.

#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/core/cpu_model.h"
#include "src/core/flow_table.h"
#include "src/core/instance_config.h"
#include "src/core/local_flow.h"
#include "src/core/store_session.h"
#include "src/l4lb/fabric.h"
#include "src/net/network.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace yoda {

class HandshakeEngine;
class L7Dispatcher;
class SpliceEngine;
class TakeoverEngine;

// Registry-backed counters (resolved once at wiring; hot paths bump
// pointers, never build label strings).
struct PipelineCounters {
  obs::Counter* flows_started = nullptr;
  obs::Counter* flows_completed = nullptr;
  obs::Counter* takeovers_client_side = nullptr;
  obs::Counter* takeovers_server_side = nullptr;
  obs::Counter* takeovers_cookie = nullptr;  // Adoptions served by the cookie alone.
  obs::Counter* cookie_rejects = nullptr;    // Forged/stale tokens bounced.
  obs::Counter* takeover_misses = nullptr;
  obs::Counter* takeover_retries = nullptr;
  obs::Counter* packets_tunneled = nullptr;
  obs::Counter* reswitches = nullptr;
  obs::Counter* rules_scanned_total = nullptr;
  obs::Counter* selections = nullptr;
  obs::Counter* no_backend_resets = nullptr;
  obs::Counter* dropped_unknown_vip = nullptr;
  obs::Counter* bad_transition_resets = nullptr;
};

// One histogram per pipeline stage, recorded at stage boundaries (the
// source for bench_fig09's latency breakdown).
struct PipelineStageMetrics {
  sim::Histogram* handshake_ms = nullptr;       // SYN -> SYN-ACK emitted.
  sim::Histogram* dispatch_ms = nullptr;        // Header done -> server SYN.
  sim::Histogram* server_connect_ms = nullptr;  // Server SYN -> established.
  sim::Histogram* store_ms = nullptr;           // Per-flow blocking waits (a+b).
  sim::Histogram* takeover_ms = nullptr;        // Orphan packet -> adopted.
  sim::Histogram* connection_phase_ms = nullptr;  // Selection -> forwarded (Fig 9).
};

// The narrow view of one instance the stage engines operate through.
struct PipelineContext {
  sim::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  l4lb::L4Fabric* fabric = nullptr;
  StoreSession* store = nullptr;
  sim::Rng* rng = nullptr;
  CpuModel* cpu = nullptr;
  const YodaInstanceConfig* cfg = nullptr;
  net::IpAddr self_ip = 0;
  const bool* failed = nullptr;  // Instance liveness (crash drops callbacks).

  FlowTable* flows = nullptr;
  std::unordered_map<net::IpAddr, VipState>* vips = nullptr;
  std::unordered_map<net::IpAddr, bool>* backend_health = nullptr;
  std::unordered_map<net::IpAddr, int>* backend_load = nullptr;

  obs::FlightRecorder* recorder = nullptr;  // Null disables flow tracing.
  PipelineCounters* ctr = nullptr;
  PipelineStageMetrics* stage = nullptr;

  // Stage engines (wired once; stages hand flows to each other through
  // these instead of reaching back into the instance).
  HandshakeEngine* handshake = nullptr;
  L7Dispatcher* dispatcher = nullptr;
  SpliceEngine* splice = nullptr;
  TakeoverEngine* takeover = nullptr;

  // Meters a brand-new connection on `vip` (controller traffic window plus
  // the per-VIP registry counter); wired by the instance, which owns both.
  std::function<void(net::IpAddr)> count_new_connection;

  bool alive() const { return failed == nullptr || !*failed; }
  VipState* FindVip(net::IpAddr vip) {
    auto it = vips->find(vip);
    return it == vips->end() ? nullptr : &it->second;
  }

  // Appends a flight-recorder event for `key` (no-op without a recorder).
  void Trace(const FlowKey& key, obs::EventType type, std::uint64_t detail = 0);

  // Re-mints the flow's signed cookie from its current FlowState (stateless
  // flows only; returns 0 and clears nothing in stateful mode). Call after
  // any mutation of the recoverable claims (backend, splice deltas).
  std::uint64_t RefreshCookie(const FlowKey& key, LocalFlow& flow);

  // The store mode teardown must use for `flow` (adopted stateless flows
  // delete synchronously; see LocalFlow::adopted).
  StoreMode RemovalMode(const LocalFlow& flow) const {
    return flow.store_mode == StoreMode::kStateless && !flow.adopted
               ? StoreMode::kStateless
               : StoreMode::kStateful;
  }

  void Emit(net::Packet p);           // Raw send (control packets).
  void EmitForwarded(net::Packet p);  // Adds forward delay + CPU charge.

  // FSM advance for packet-driven edges: true when the transition is legal;
  // an illegal edge resets the flow (kFlowReset/kBadTransition) and returns
  // false — the caller must stop touching the (now deleted) flow.
  [[nodiscard]] bool Advance(const FlowKey& key, LocalFlow& flow, FlowPhase to);

  // Explicit RST toward the client; removes all local flow state.
  void ResetFlowToClient(const FlowKey& key, obs::FlowResetReason reason);

  // Drops every trace of the flow: timers, mirror pins, SNAT registrations,
  // backend-load accounting and (optionally) the TCPStore keys.
  void CleanupFlow(const FlowKey& key, bool remove_from_store);
};

}  // namespace yoda

#endif  // SRC_CORE_PIPELINE_H_
