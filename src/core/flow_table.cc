#include "src/core/flow_table.h"

#include <cassert>
#include <utility>

namespace yoda {

FlowTable::FlowTable(int shards) {
  assert(shards > 0);
  shards_.resize(static_cast<std::size_t>(shards));
}

LocalFlow* FlowTable::Find(const FlowKey& key) {
  Shard& shard = shards_[static_cast<std::size_t>(ShardOf(key))];
  auto it = shard.find(key);
  return it == shard.end() ? nullptr : it->second.get();
}

LocalFlow& FlowTable::Insert(const FlowKey& key, std::unique_ptr<LocalFlow> flow) {
  Shard& shard = shards_[static_cast<std::size_t>(ShardOf(key))];
  auto [it, inserted] = shard.insert_or_assign(key, std::move(flow));
  if (inserted) {
    ++size_;
  }
  return *it->second;
}

void FlowTable::Erase(const FlowKey& key) {
  Shard& shard = shards_[static_cast<std::size_t>(ShardOf(key))];
  if (shard.erase(key) > 0) {
    --size_;
  }
}

std::size_t FlowTable::size() const { return size_; }

void FlowTable::ForEach(const std::function<void(const FlowKey&, LocalFlow&)>& fn) {
  for (Shard& shard : shards_) {
    for (auto& [key, flow] : shard) {
      fn(key, *flow);
    }
  }
}

std::vector<FlowKey> FlowTable::CollectIdle(sim::Time idle_deadline) const {
  std::vector<FlowKey> out;
  for (const Shard& shard : shards_) {
    for (const auto& [key, flow] : shard) {
      if (!flow->lookup_pending() && flow->last_packet < idle_deadline) {
        out.push_back(key);
      }
    }
  }
  return out;
}

std::vector<FlowKey> FlowTable::CollectVip(net::IpAddr vip) const {
  std::vector<FlowKey> out;
  for (const Shard& shard : shards_) {
    for (const auto& [key, flow] : shard) {
      if (key.vip == vip) {
        out.push_back(key);
      }
    }
  }
  return out;
}

void FlowTable::BindServer(const net::FiveTuple& tuple, const FlowKey& key) {
  server_index_[tuple] = key;
}

void FlowTable::UnbindServer(const net::FiveTuple& tuple) { server_index_.erase(tuple); }

const FlowKey* FlowTable::FindServer(const net::FiveTuple& tuple) const {
  auto it = server_index_.find(tuple);
  return it == server_index_.end() ? nullptr : &it->second;
}

bool FlowTable::HasServer(const net::FiveTuple& tuple) const {
  return server_index_.contains(tuple);
}

void FlowTable::Clear() {
  for (Shard& shard : shards_) {
    shard.clear();
  }
  size_ = 0;
  server_index_.clear();
}

}  // namespace yoda
