#include "src/core/control_journal.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace yoda {
namespace {

// Percent-escaping over a conservative passlist, so every serialized string
// is free of the journal's own delimiters (spaces, newlines, ':', ',').
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '_' || c == '.' || c == '/' || c == '*' || c == '?') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out.push_back(static_cast<char>(std::strtoul(s.substr(i + 1, 2).c_str(), nullptr, 16)));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// nullopt <-> "-" ("-" itself escapes to "%2d", so the forms never collide).
std::string EncodeOpt(const std::optional<std::string>& v) {
  return v ? Escape(*v) : "-";
}

std::optional<std::string> DecodeOpt(const std::string& v) {
  if (v == "-") {
    return std::nullopt;
  }
  return Unescape(v);
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    out.push_back(tok);
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      out.push_back(line);
    }
  }
  return out;
}

// key=value tokens -> map; later duplicates win (never produced).
std::map<std::string, std::string> KvFields(const std::vector<std::string>& toks) {
  std::map<std::string, std::string> out;
  for (const std::string& t : toks) {
    const std::size_t eq = t.find('=');
    if (eq != std::string::npos) {
      out[t.substr(0, eq)] = t.substr(eq + 1);
    }
  }
  return out;
}

bool FieldU64(const std::map<std::string, std::string>& f, const char* key,
              std::uint64_t* out) {
  auto it = f.find(key);
  if (it == f.end()) {
    return false;
  }
  *out = std::strtoull(it->second.c_str(), nullptr, 10);
  return true;
}

std::string EncodeBackends(const std::vector<rules::Backend>& backends) {
  if (backends.empty()) {
    return "-";
  }
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < backends.size(); ++i) {
    // %.17g round-trips every double exactly.
    std::snprintf(buf, sizeof(buf), "%s%u:%u:%.17g", i == 0 ? "" : ",", backends[i].ip,
                  backends[i].port, backends[i].weight);
    out += buf;
  }
  return out;
}

std::vector<rules::Backend> DecodeBackends(const std::string& s) {
  std::vector<rules::Backend> out;
  if (s == "-") {
    return out;
  }
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    rules::Backend b;
    unsigned ip = 0;
    unsigned port = 0;
    double weight = 1.0;
    if (std::sscanf(item.c_str(), "%u:%u:%lg", &ip, &port, &weight) >= 2) {
      b.ip = ip;
      b.port = static_cast<net::Port>(port);
      b.weight = weight;
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace

std::string ControlJournal::StepKey(const ExecStep& step) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u", static_cast<unsigned>(step.kind), step.vip,
                step.instance);
  return buf;
}

std::string ControlJournal::EncodeRule(const rules::Rule& rule) {
  std::ostringstream out;
  out << "name=" << Escape(rule.name) << " prio=" << rule.priority
      << " url=" << EncodeOpt(rule.match.url_glob) << " host=" << EncodeOpt(rule.match.host_glob)
      << " method=" << EncodeOpt(rule.match.method)
      << " cname=" << EncodeOpt(rule.match.cookie_name)
      << " cval=" << EncodeOpt(rule.match.cookie_value_glob)
      << " hname=" << EncodeOpt(rule.match.header_name)
      << " hval=" << EncodeOpt(rule.match.header_value_glob)
      << " atype=" << static_cast<int>(rule.action.type)
      << " sticky=" << Escape(rule.action.sticky_cookie)
      << " backends=" << EncodeBackends(rule.action.backends);
  return out.str();
}

std::optional<rules::Rule> ControlJournal::DecodeRule(const std::string& line) {
  const auto f = KvFields(SplitWs(line));
  rules::Rule rule;
  auto need = [&](const char* key) -> std::optional<std::string> {
    auto it = f.find(key);
    if (it == f.end()) {
      return std::nullopt;
    }
    return it->second;
  };
  const auto name = need("name");
  const auto prio = need("prio");
  const auto atype = need("atype");
  const auto backends = need("backends");
  if (!name || !prio || !atype || !backends) {
    return std::nullopt;
  }
  auto opt = [&](const char* key) -> std::optional<std::string> {
    auto it = f.find(key);
    return it == f.end() ? std::nullopt : DecodeOpt(it->second);
  };
  rule.name = Unescape(*name);
  rule.priority = std::atoi(prio->c_str());
  rule.match.url_glob = opt("url");
  rule.match.host_glob = opt("host");
  rule.match.method = opt("method");
  rule.match.cookie_name = opt("cname");
  rule.match.cookie_value_glob = opt("cval");
  rule.match.header_name = opt("hname");
  rule.match.header_value_glob = opt("hval");
  rule.action.type = static_cast<rules::ActionType>(std::atoi(atype->c_str()));
  if (auto it = f.find("sticky"); it != f.end()) {
    rule.action.sticky_cookie = Unescape(it->second);
  }
  rule.action.backends = DecodeBackends(*backends);
  return rule;
}

std::string ControlJournal::EncodeChange(const DurableChange& change) {
  std::ostringstream out;
  out << "epoch=" << change.epoch << " at=" << change.at
      << " kind=" << static_cast<int>(change.kind) << " subject=" << change.subject
      << " detail=" << change.detail << " port=" << change.port
      << " nrules=" << change.rules.size() << " npools=" << change.pools.size() << "\n";
  for (const rules::Rule& rule : change.rules) {
    out << "R " << EncodeRule(rule) << "\n";
  }
  for (const auto& [vip, pool] : change.pools) {
    out << "P " << vip;
    for (net::IpAddr ip : pool) {
      out << " " << ip;
    }
    out << "\n";
  }
  return out.str();
}

std::optional<DurableChange> ControlJournal::DecodeChange(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return std::nullopt;
  }
  const auto f = KvFields(SplitWs(lines[0]));
  DurableChange change;
  std::uint64_t kind = 0;
  std::uint64_t subject = 0;
  std::uint64_t at = 0;
  std::uint64_t port = 0;
  if (!FieldU64(f, "epoch", &change.epoch) || !FieldU64(f, "at", &at) ||
      !FieldU64(f, "kind", &kind) || !FieldU64(f, "subject", &subject) ||
      !FieldU64(f, "detail", &change.detail) || !FieldU64(f, "port", &port)) {
    return std::nullopt;
  }
  change.at = static_cast<sim::Time>(at);
  change.kind = static_cast<ChangeKind>(kind);
  change.subject = static_cast<net::IpAddr>(subject);
  change.port = static_cast<net::Port>(port);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].rfind("R ", 0) == 0) {
      if (auto rule = DecodeRule(lines[i].substr(2))) {
        change.rules.push_back(std::move(*rule));
      }
    } else if (lines[i].rfind("P ", 0) == 0) {
      const std::vector<std::string> toks = SplitWs(lines[i].substr(2));
      if (toks.empty()) {
        continue;
      }
      const net::IpAddr vip =
          static_cast<net::IpAddr>(std::strtoull(toks[0].c_str(), nullptr, 10));
      std::vector<net::IpAddr>& pool = change.pools[vip];
      for (std::size_t j = 1; j < toks.size(); ++j) {
        pool.push_back(static_cast<net::IpAddr>(std::strtoull(toks[j].c_str(), nullptr, 10)));
      }
    }
  }
  return change;
}

std::string ControlJournal::EncodeSnapshot(const ControlState& state) {
  std::ostringstream out;
  out << "epoch=" << state.epoch() << "\n";
  for (const auto& [vip, desired] : state.vips()) {
    out << "V " << vip << " " << desired.port << " " << desired.rules.size() << " "
        << static_cast<int>(desired.store_mode) << " " << desired.store_mode_epoch << "\n";
    for (const rules::Rule& rule : desired.rules) {
      out << "R " << EncodeRule(rule) << "\n";
    }
  }
  for (const auto& [vip, pool] : state.assignment()) {
    out << "A " << vip;
    for (net::IpAddr ip : pool) {
      out << " " << ip;
    }
    out << "\n";
  }
  return out.str();
}

bool ControlJournal::DecodeSnapshot(const std::string& text, RestoredControlPlane* out) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return false;
  }
  const auto f = KvFields(SplitWs(lines[0]));
  if (!FieldU64(f, "epoch", &out->epoch)) {
    return false;
  }
  net::IpAddr current_vip = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("V ", 0) == 0) {
      const std::vector<std::string> toks = SplitWs(line.substr(2));
      if (toks.size() < 2) {
        return false;
      }
      current_vip = static_cast<net::IpAddr>(std::strtoull(toks[0].c_str(), nullptr, 10));
      ControlState::VipDesired desired;
      desired.port =
          static_cast<net::Port>(std::strtoull(toks[1].c_str(), nullptr, 10));
      // Store-mode fields are optional (snapshots written before the
      // stateless fast path existed decode as kStateful).
      if (toks.size() >= 5) {
        desired.store_mode =
            static_cast<StoreMode>(std::strtoull(toks[3].c_str(), nullptr, 10));
        desired.store_mode_epoch = std::strtoull(toks[4].c_str(), nullptr, 10);
      }
      out->vips[current_vip] = std::move(desired);
    } else if (line.rfind("R ", 0) == 0) {
      if (auto rule = DecodeRule(line.substr(2))) {
        out->vips[current_vip].rules.push_back(std::move(*rule));
      }
    } else if (line.rfind("A ", 0) == 0) {
      const std::vector<std::string> toks = SplitWs(line.substr(2));
      if (toks.empty()) {
        continue;
      }
      const net::IpAddr vip =
          static_cast<net::IpAddr>(std::strtoull(toks[0].c_str(), nullptr, 10));
      std::vector<net::IpAddr>& pool = out->assignment[vip];
      for (std::size_t j = 1; j < toks.size(); ++j) {
        pool.push_back(static_cast<net::IpAddr>(std::strtoull(toks[j].c_str(), nullptr, 10)));
      }
    }
  }
  return true;
}

std::string ControlJournal::EncodePlan(const ExecPlan& plan) {
  std::ostringstream out;
  out << "epoch=" << plan.epoch << " id=" << plan.plan_id << " token=" << plan.fencing_token
      << " staggered=" << (plan.staggered ? 1 : 0) << " nsteps=" << plan.steps.size()
      << " reason=" << Escape(plan.reason) << "\n";
  for (const ExecStep& step : plan.steps) {
    out << "S " << static_cast<int>(step.kind) << " " << step.vip << " " << step.instance
        << " " << (step.healthy ? 1 : 0);
    if (step.pool.empty()) {
      out << " -";
    } else {
      out << " ";
      for (std::size_t i = 0; i < step.pool.size(); ++i) {
        out << (i == 0 ? "" : ",") << step.pool[i];
      }
    }
    out << "\n";
  }
  return out.str();
}

std::optional<ExecPlan> ControlJournal::DecodePlan(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return std::nullopt;
  }
  const auto f = KvFields(SplitWs(lines[0]));
  ExecPlan plan;
  std::uint64_t staggered = 0;
  if (!FieldU64(f, "epoch", &plan.epoch) || !FieldU64(f, "id", &plan.plan_id) ||
      !FieldU64(f, "token", &plan.fencing_token) || !FieldU64(f, "staggered", &staggered)) {
    return std::nullopt;
  }
  plan.staggered = staggered != 0;
  if (auto it = f.find("reason"); it != f.end()) {
    plan.reason = Unescape(it->second);
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].rfind("S ", 0) != 0) {
      continue;
    }
    const std::vector<std::string> toks = SplitWs(lines[i].substr(2));
    if (toks.size() < 5) {
      return std::nullopt;
    }
    ExecStep step;
    step.kind = static_cast<ExecStepKind>(std::atoi(toks[0].c_str()));
    step.vip = static_cast<net::IpAddr>(std::strtoull(toks[1].c_str(), nullptr, 10));
    step.instance = static_cast<net::IpAddr>(std::strtoull(toks[2].c_str(), nullptr, 10));
    step.healthy = toks[3] != "0";
    if (toks[4] != "-") {
      std::istringstream in(toks[4]);
      std::string item;
      while (std::getline(in, item, ',')) {
        step.pool.push_back(static_cast<net::IpAddr>(std::strtoull(item.c_str(), nullptr, 10)));
      }
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

ControlJournal::ControlJournal(sim::Simulator* simulator, kv::ReplicatingClient* client,
                               ControlJournalConfig config)
    : sim_(simulator), kv_(client), cfg_(config) {
  if (cfg_.registry != nullptr) {
    changes_ctr_ = &cfg_.registry->GetCounter("ctl.journal.changes");
    snapshots_ctr_ = &cfg_.registry->GetCounter("ctl.journal.snapshots");
  }
}

void ControlJournal::OnChange(const ControlState& state, const DurableChange& change) {
  ++stats_.changes_logged;
  if (changes_ctr_ != nullptr) {
    changes_ctr_->Inc();
  }
  kv_->Set("ctl/log/" + std::to_string(change.epoch), EncodeChange(change), [](bool) {});
  if (++changes_since_snapshot_ >= cfg_.snapshot_every) {
    changes_since_snapshot_ = 0;
    ++stats_.snapshots_written;
    if (snapshots_ctr_ != nullptr) {
      snapshots_ctr_->Inc();
    }
    kv_->Set("ctl/snapshot", EncodeSnapshot(state), [](bool) {});
  }
}

std::uint64_t ControlJournal::NextPlanId() {
  ++plan_seq_;
  kv_->Set("ctl/plan_seq", std::to_string(plan_seq_), [](bool) {});
  return plan_seq_;
}

void ControlJournal::WriteOpenList() {
  std::string list;
  for (std::uint64_t id : open_) {
    if (!list.empty()) {
      list += " ";
    }
    list += std::to_string(id);
  }
  kv_->Set("ctl/plans_open", list, [](bool) {});
}

void ControlJournal::PutPlan(const ExecPlan& plan) {
  ++stats_.plans_journaled;
  open_.insert(plan.plan_id);
  kv_->Set("ctl/plan/" + std::to_string(plan.plan_id), EncodePlan(plan), [](bool) {});
  WriteOpenList();
}

void ControlJournal::PutApplied(const ExecPlan& plan, const ExecStep& step) {
  ++stats_.applied_markers;
  kv_->Set("ctl/applied/" + std::to_string(plan.plan_id) + "/" + StepKey(step), "1",
           [](bool) {});
}

void ControlJournal::PutDone(const ExecPlan& plan) {
  open_.erase(plan.plan_id);
  WriteOpenList();
  // The plan and its markers are left behind: superseded keys are harmless
  // (a restore only walks plans on the open list) and bounded by plan churn.
}

void ControlJournal::AdoptRestored(const RestoredControlPlane& restored) {
  plan_seq_ = restored.plan_seq;
  open_.clear();
  for (const RestoredPlan& p : restored.open_plans) {
    open_.insert(p.plan.plan_id);
    plan_seq_ = std::max(plan_seq_, p.plan.plan_id);
  }
}

// --- restore chain ---

struct ControlJournal::RestoreCtx {
  RestoredControlPlane out;
  std::function<void(RestoredControlPlane)> done;
  std::vector<std::uint64_t> open_ids;
};

void ControlJournal::Restore(std::function<void(RestoredControlPlane)> done) {
  ++stats_.restores;
  auto ctx = std::make_shared<RestoreCtx>();
  ctx->done = std::move(done);
  kv_->Get("ctl/snapshot", [this, ctx](std::optional<std::string> raw) {
    if (raw && DecodeSnapshot(*raw, &ctx->out)) {
      ctx->out.found = true;
    }
    RestoreLogEntry(ctx, ctx->out.epoch + 1);
  });
}

void ControlJournal::RestoreLogEntry(std::shared_ptr<RestoreCtx> ctx, std::uint64_t epoch) {
  kv_->Get("ctl/log/" + std::to_string(epoch),
           [this, ctx, epoch](std::optional<std::string> raw) {
             std::optional<DurableChange> change =
                 raw ? DecodeChange(*raw) : std::nullopt;
             if (!change) {
               // First miss ends the tail: replay stops at the last epoch
               // whose log write fully landed, never across a gap.
               RestorePlanSeq(ctx);
               return;
             }
             ctx->out.found = true;
             ctx->out.tail.push_back(std::move(*change));
             RestoreLogEntry(ctx, epoch + 1);
           });
}

void ControlJournal::RestorePlanSeq(std::shared_ptr<RestoreCtx> ctx) {
  kv_->Get("ctl/plan_seq", [this, ctx](std::optional<std::string> raw) {
    if (raw) {
      ctx->out.plan_seq = std::strtoull(raw->c_str(), nullptr, 10);
    }
    RestoreOpenList(ctx);
  });
}

void ControlJournal::RestoreOpenList(std::shared_ptr<RestoreCtx> ctx) {
  kv_->Get("ctl/plans_open", [this, ctx](std::optional<std::string> raw) {
    if (raw) {
      for (const std::string& tok : SplitWs(*raw)) {
        ctx->open_ids.push_back(std::strtoull(tok.c_str(), nullptr, 10));
      }
    }
    RestorePlan(ctx, 0);
  });
}

void ControlJournal::RestorePlan(std::shared_ptr<RestoreCtx> ctx, std::size_t idx) {
  if (idx >= ctx->open_ids.size()) {
    FinishRestore(ctx);
    return;
  }
  kv_->Get("ctl/plan/" + std::to_string(ctx->open_ids[idx]),
           [this, ctx, idx](std::optional<std::string> raw) {
             std::optional<ExecPlan> plan = raw ? DecodePlan(*raw) : std::nullopt;
             if (!plan) {
               // The open-list write outran the plan body (or the body was
               // lost): nothing to resume for this id.
               RestorePlan(ctx, idx + 1);
               return;
             }
             ctx->out.open_plans.push_back({std::move(*plan), {}});
             RestoreMarkers(ctx, ctx->out.open_plans.size() - 1, 0);
           });
}

void ControlJournal::RestoreMarkers(std::shared_ptr<RestoreCtx> ctx, std::size_t idx,
                                    std::size_t step_idx) {
  RestoredPlan& rp = ctx->out.open_plans[idx];
  // Advance to the next ledgered step (health writes and barriers have no
  // applied markers).
  while (step_idx < rp.plan.steps.size() &&
         (rp.plan.steps[step_idx].kind == ExecStepKind::kSetBackendHealth ||
          rp.plan.steps[step_idx].kind == ExecStepKind::kAwaitConvergence)) {
    ++step_idx;
  }
  if (step_idx >= rp.plan.steps.size()) {
    // Find this plan's position in open_ids to continue the outer walk.
    std::size_t next_open = 0;
    for (std::size_t i = 0; i < ctx->open_ids.size(); ++i) {
      if (ctx->open_ids[i] == rp.plan.plan_id) {
        next_open = i + 1;
        break;
      }
    }
    RestorePlan(ctx, next_open);
    return;
  }
  const std::string key = "ctl/applied/" + std::to_string(rp.plan.plan_id) + "/" +
                          StepKey(rp.plan.steps[step_idx]);
  const std::string step_key = StepKey(rp.plan.steps[step_idx]);
  kv_->Get(key, [this, ctx, idx, step_idx, step_key](std::optional<std::string> raw) {
    if (raw) {
      ctx->out.open_plans[idx].applied.insert(step_key);
    }
    RestoreMarkers(ctx, idx, step_idx + 1);
  });
}

void ControlJournal::FinishRestore(std::shared_ptr<RestoreCtx> ctx) {
  if (ctx->out.plan_seq != 0 || !ctx->out.open_plans.empty()) {
    ctx->out.found = true;
  }
  ctx->done(std::move(ctx->out));
}

}  // namespace yoda
