#include "src/core/takeover_engine.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/core/l7_dispatcher.h"
#include "src/core/splice_engine.h"

namespace yoda {

void TakeoverEngine::TakeoverClientSide(const FlowKey& key, const net::Packet& p) {
  if (!p.ack_flag() && p.payload.empty() && !p.fin()) {
    return;  // Nothing recoverable.
  }
  auto flow = std::make_unique<LocalFlow>(FlowPhase::kTakeoverLookup);
  flow->last_packet = ctx_->sim->now();
  flow->takeover_start = ctx_->sim->now();
  flow->stalled.push_back(p);
  ctx_->flows->Insert(key, std::move(flow));
  // Fallback ladder: (1) reconstruct from the packet's signed cookie —
  // zero store round-trips; (2) the write-behind journal in TCPStore, with
  // the existing bounded re-fetch riding out the flush interval; (3) final
  // miss resets the flow explicitly.
  if (TryCookieAdopt(key, p)) {
    return;
  }
  ClientTakeoverLookup(key, /*attempt=*/0);
}

bool TakeoverEngine::TryCookieAdopt(const FlowKey& key, const net::Packet& p) {
  VipState* vip = ctx_->FindVip(key.vip);
  if (vip == nullptr || vip->store_mode != StoreMode::kStateless || p.cookie == 0) {
    return false;
  }
  CookieClaims claims;
  const CookieVerdict verdict =
      DecodeCookie(p.cookie, key.vip, key.vip_port, key.client_ip, key.client_port,
                   ctx_->cfg->cookie_secret,
                   static_cast<std::uint8_t>(vip->store_epoch & 0xff), &claims);
  if (verdict != CookieVerdict::kOk) {
    ctx_->ctr->cookie_rejects->Inc();
    ctx_->Trace(key, obs::EventType::kCookieReject,
                static_cast<std::uint64_t>(verdict));
    return false;  // Forged or minted under an older install: journal decides.
  }
  const std::optional<FlowState> st = FlowStateFromCookie(
      claims, key.vip, key.vip_port, key.client_ip, key.client_port, vip->backends,
      /*backend_port=*/80);
  if (!st) {
    return false;  // Journal-pinned token or claimed backend left the pool.
  }
  ctx_->ctr->takeovers_cookie->Inc();
  ctx_->ctr->takeovers_client_side->Inc();
  ctx_->Trace(key, obs::EventType::kCookieAdopt, st->backend_ip);
  ctx_->Trace(key, obs::EventType::kTakeoverClient);
  LocalFlow* f = ctx_->flows->Find(key);
  if (f != nullptr) {
    f->store_mode = StoreMode::kStateless;
    f->cookie = p.cookie;  // The claims still hold; keep echoing them.
  }
  AdoptFlow(key, *st);
  return true;
}

void TakeoverEngine::ClientTakeoverLookup(const FlowKey& key, int attempt) {
  ctx_->store->LookupByClient(
      key.vip, key.vip_port, key.client_ip, key.client_port,
      [this, key, attempt](std::optional<FlowState> st) {
        if (!ctx_->alive()) {
          return;
        }
        LocalFlow* f = ctx_->flows->Find(key);
        if (f == nullptr) {
          return;
        }
        if (!st) {
          // A miss may just mean a lagging or restarting replica: re-fetch
          // with doubling backoff before giving up on the flow.
          if (attempt < ctx_->cfg->takeover_retry_limit) {
            ctx_->ctr->takeover_retries->Inc();
            ctx_->Trace(key, obs::EventType::kTakeoverRetry,
                        static_cast<std::uint64_t>(attempt + 1));
            sim::Duration backoff = ctx_->cfg->takeover_retry_backoff;
            for (int i = 0; i < attempt; ++i) {
              backoff *= 2;
            }
            ctx_->sim->After(backoff, [this, key, attempt]() {
              if (!ctx_->alive()) {
                return;
              }
              LocalFlow* f2 = ctx_->flows->Find(key);
              if (f2 == nullptr || !f2->lookup_pending()) {
                return;
              }
              ClientTakeoverLookup(key, attempt + 1);
            });
            return;
          }
          ctx_->ctr->takeover_misses->Inc();
          ctx_->ResetFlowToClient(key, obs::FlowResetReason::kTakeoverMiss);
          return;
        }
        ctx_->ctr->takeovers_client_side->Inc();
        ctx_->Trace(key, obs::EventType::kTakeoverClient);
        AdoptFlow(key, *st);
      });
}

void TakeoverEngine::TakeoverServerSide(const net::Packet& p, VipState& vip) {
  // Server-side identity: (backend=src, bport=sport, vip=dst, cport=dport);
  // the client key arrives with the flow state.
  ServerTakeoverLookup(p, /*attempt=*/0);
  (void)vip;
}

void TakeoverEngine::ServerTakeoverLookup(const net::Packet& p, int attempt) {
  ctx_->store->LookupByServer(
      p.src, p.sport, p.dst, p.dport, [this, p, attempt](std::optional<FlowState> st) {
        if (!ctx_->alive()) {
          return;
        }
        if (!st || st->stage != FlowStage::kTunneling) {
          // RSTs for unknown flows are not worth recovering (and answering
          // them with more RSTs would only make noise).
          if (!p.rst() && attempt < ctx_->cfg->takeover_retry_limit) {
            ctx_->ctr->takeover_retries->Inc();
            sim::Duration backoff = ctx_->cfg->takeover_retry_backoff;
            for (int i = 0; i < attempt; ++i) {
              backoff *= 2;
            }
            ctx_->sim->After(backoff, [this, p, attempt]() {
              if (!ctx_->alive()) {
                return;
              }
              // A client-side adoption (cookie or journal) may have bound
              // the reverse tuple while we backed off — deliver locally
              // instead of re-querying the store.
              const FlowKey* bound = ctx_->flows->FindServer(p.tuple());
              if (bound != nullptr) {
                const FlowKey key = *bound;
                LocalFlow* f = ctx_->flows->Find(key);
                if (f != nullptr && f->established()) {
                  ctx_->splice->TunnelFromServer(key, *f, p);
                  return;
                }
              }
              ServerTakeoverLookup(p, attempt + 1);
            });
            return;
          }
          ctx_->ctr->takeover_misses->Inc();
          if (!p.rst()) {
            // Final miss: reset the orphaned server leg so the backend does
            // not hold the connection open forever.
            net::Packet rst;
            rst.src = p.dst;
            rst.sport = p.dport;
            rst.dst = p.src;
            rst.dport = p.sport;
            rst.seq = p.ack;
            rst.flags = net::kRst;
            ctx_->Emit(std::move(rst));
          }
          return;
        }
        ctx_->ctr->takeovers_server_side->Inc();
        const FlowKey key{st->vip, st->vip_port, st->client_ip, st->client_port};
        ctx_->Trace(key, obs::EventType::kTakeoverServer);
        if (ctx_->flows->Find(key) == nullptr) {
          AdoptFlow(key, *st);
        }
        LocalFlow* f = ctx_->flows->Find(key);
        if (f != nullptr && f->established()) {
          ctx_->splice->TunnelFromServer(key, *f, p);
        }
      });
}

void TakeoverEngine::AdoptFlow(const FlowKey& key, const FlowState& st) {
  LocalFlow* flow = ctx_->flows->Find(key);
  if (flow == nullptr) {
    flow = &ctx_->flows->Insert(key, std::make_unique<LocalFlow>(FlowPhase::kTakeoverLookup));
  }
  std::vector<net::Packet> stalled = std::move(flow->stalled);
  flow->stalled.clear();
  flow->last_packet = ctx_->sim->now();
  flow->adopted = true;  // Teardown uses the synchronous remove path.
  flow->st = st;
  flow->client_facing_nxt = st.lb_isn + 1;
  (*ctx_->backend_load)[st.backend_ip] += st.stage == FlowStage::kTunneling ? 1 : 0;
  if (st.backend_ip != 0) {
    // The pin travelled with the flow state; re-assert it in the trace so
    // pin-stability checks see the adopter agreeing with the original.
    ctx_->Trace(key, obs::EventType::kBackendPinned, st.backend_ip);
  }

  if (st.stage == FlowStage::kTunneling) {
    flow->fsm.Transition(FlowPhase::kEstablished);  // Takeover-entry edge.
    flow->inspect_next_seq = 0;  // Inspection state was lost; pass through.
    const net::FiveTuple server_side{st.backend_ip, st.vip, st.backend_port, st.client_port};
    ctx_->flows->BindServer(server_side, key);
    // Re-pin the return path to this instance.
    ctx_->fabric->RegisterSnat(server_side, ctx_->self_ip);
  } else {
    // Connection phase: the client's un-ACKed header will be retransmitted
    // in full; rebuild the assembly state from the stored ISN (Fig 5a). For
    // TLS VIPs the deterministic handshake replays from the hello.
    flow->assembled_end = st.client_isn + 1;
    VipState* vip_state = ctx_->FindVip(key.vip);
    flow->tls_active = vip_state != nullptr && vip_state->tls.has_value();
    flow->fsm.Transition(flow->tls_active ? FlowPhase::kTlsHandshake
                                          : FlowPhase::kSynAckSent);
  }
  if (ctx_->stage->takeover_ms != nullptr && flow->takeover_start != 0) {
    ctx_->stage->takeover_ms->Add(sim::ToMillis(ctx_->sim->now() - flow->takeover_start));
    flow->takeover_start = 0;
  }
  ctx_->cpu->ChargeConnection();

  VipState* vip = ctx_->FindVip(key.vip);
  for (const net::Packet& p : stalled) {
    LocalFlow* f = ctx_->flows->Find(key);
    if (f == nullptr || vip == nullptr) {
      break;
    }
    if (f->established()) {
      ctx_->splice->TunnelFromClient(key, *f, *vip, p);
    } else {
      ctx_->dispatcher->OnClientData(key, *f, *vip, p);
    }
  }
}

}  // namespace yoda
