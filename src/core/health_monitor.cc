#include "src/core/health_monitor.h"

#include <algorithm>

namespace yoda {

bool HealthMonitor::ProbeInstance(const YodaInstance* instance) const {
  if (!cfg_.probe_network_only && instance->failed()) {
    return false;
  }
  return net_->ProbePath(/*src=*/0, instance->ip());
}

bool HealthMonitor::IsBackendUp(net::IpAddr backend) const {
  auto it = backend_up_.find(backend);
  return it == backend_up_.end() || it->second;
}

std::vector<net::IpAddr> HealthMonitor::ActiveIps() const {
  std::vector<net::IpAddr> ips;
  ips.reserve(active_.size());
  for (const YodaInstance* i : active_) {
    ips.push_back(i->ip());
  }
  return ips;
}

void HealthMonitor::OnDeclaredDead(YodaInstance* instance) {
  ++detected_failures_;
  active_.erase(std::remove(active_.begin(), active_.end(), instance), active_.end());
  if (!cfg_.readmit_instances) {
    return;  // Paper semantics: removed forever.
  }
  HealthState& hs = health_[instance->ip()];
  hs.miss_streak = 0;
  hs.success_streak = 0;
  // Flap suppression: a repeat offender must prove itself for longer.
  if (hs.required_successes > 0) {
    ++hs.flaps;
  }
  int required = cfg_.readmit_after_successes;
  for (int f = 0; f < hs.flaps && required < cfg_.readmit_penalty_cap; ++f) {
    required *= 2;
  }
  hs.required_successes = std::min(required, cfg_.readmit_penalty_cap);
  suspended_.push_back(instance);
}

std::vector<HealthTransition> HealthMonitor::Tick() {
  std::vector<HealthTransition> out;

  // Active instances: misses accumulate toward declaration.
  std::vector<YodaInstance*> failed;
  for (YodaInstance* i : active_) {
    HealthState& hs = health_[i->ip()];
    if (ProbeInstance(i)) {
      hs.miss_streak = 0;
      continue;
    }
    ++hs.miss_streak;
    if (hs.miss_streak >= cfg_.fail_after_misses) {
      failed.push_back(i);
    } else {
      out.push_back({HealthTransition::Kind::kInstanceSuspected, i, i->ip(), hs.miss_streak});
    }
  }
  for (YodaInstance* i : failed) {
    OnDeclaredDead(i);
    out.push_back({HealthTransition::Kind::kInstanceFailed, i, i->ip(), 0});
  }

  // Suspended instances: healthy probes accumulate toward readmission.
  if (cfg_.readmit_instances) {
    for (auto it = suspended_.begin(); it != suspended_.end();) {
      YodaInstance* i = *it;
      HealthState& hs = health_[i->ip()];
      if (!ProbeInstance(i)) {
        hs.success_streak = 0;
        ++it;
        continue;
      }
      ++hs.success_streak;
      if (hs.success_streak < hs.required_successes) {
        ++it;
        continue;
      }
      it = suspended_.erase(it);
      const int required = hs.required_successes;
      hs.miss_streak = 0;
      hs.success_streak = 0;
      active_.push_back(i);
      ++readmissions_;
      out.push_back({HealthTransition::Kind::kInstanceReadmitted, i, i->ip(), required});
    }
  }

  // Backend servers: edge-triggered health flips.
  for (net::IpAddr b : backends_) {
    const bool up = !net_->IsDown(b);
    if (backend_up_[b] != up) {
      backend_up_[b] = up;
      out.push_back({up ? HealthTransition::Kind::kBackendUp
                        : HealthTransition::Kind::kBackendDown,
                     nullptr, b, 0});
    }
  }
  return out;
}

}  // namespace yoda
