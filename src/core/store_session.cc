#include "src/core/store_session.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace yoda {

StoreSession::StoreSession(TcpStore* store, sim::Simulator* sim,
                           sim::Histogram* store_wait_ms)
    : store_(store), sim_(sim), store_wait_ms_(store_wait_ms) {}

StoreSession::Ack StoreSession::TimedAck(Ack done) {
  ++stats_.ack_point_writes;
  if (sim_ == nullptr || store_wait_ms_ == nullptr) {
    return done;
  }
  const sim::Time start = sim_->now();
  return [this, start, done = std::move(done)](bool ok) {
    store_wait_ms_->Add(sim::ToMillis(sim_->now() - start));
    done(ok);
  };
}

void StoreSession::WriteSynState(const FlowState& state, StoreMode mode, Ack done) {
  if (mode == StoreMode::kStateless) {
    Journal(state, /*remove=*/false);
    done(true);  // The cookie gates progress; the store never does.
    return;
  }
  store_->StoreConnectionState(state, TimedAck(std::move(done)));
}

void StoreSession::WriteEstablishedState(const FlowState& state, StoreMode mode, Ack done) {
  if (mode == StoreMode::kStateless) {
    Journal(state, /*remove=*/false);
    done(true);
    return;
  }
  store_->StoreTunnelingState(state, TimedAck(std::move(done)));
}

void StoreSession::Refresh(const FlowState& state, StoreMode mode) {
  ++stats_.refreshes;
  if (mode == StoreMode::kStateless) {
    Journal(state, /*remove=*/false);
    return;
  }
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  auto it = refreshes_.find(key);
  if (it != refreshes_.end()) {
    // A write for this flow is already on the wire: remember only the
    // newest state and send it when the in-flight op completes.
    it->second.queued = state;
    ++stats_.refreshes_coalesced;
    return;
  }
  refreshes_.emplace(key, PendingRefresh{});
  IssueRefresh(key, state);
}

void StoreSession::IssueRefresh(const std::string& key, const FlowState& state) {
  store_->StoreTunnelingState(state, [this, key](bool /*ok*/) {
    auto it = refreshes_.find(key);
    if (it == refreshes_.end()) {
      return;  // Removed mid-flight (teardown).
    }
    if (it->second.queued.has_value()) {
      const FlowState next = *std::exchange(it->second.queued, std::nullopt);
      IssueRefresh(key, next);
      return;
    }
    refreshes_.erase(it);
  });
}

void StoreSession::Remove(const FlowState& state, StoreMode mode) {
  ++stats_.removes;
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  // A queued (not yet issued) refresh must never land after the delete.
  refreshes_.erase(key);
  if (mode == StoreMode::kStateless) {
    if (!flushed_.contains(key)) {
      // The flow's state never left this instance: nothing to delete.
      journal_.erase(key);
      return;
    }
    Journal(state, /*remove=*/true);
    return;
  }
  ++stats_.sync_removes;
  store_->Remove(state, [](bool) {});
}

void StoreSession::Journal(const FlowState& state, bool remove) {
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  ++stats_.journal_appends;
  auto it = journal_.find(key);
  if (it != journal_.end()) {
    ++stats_.journal_coalesced;
    it->second.state = state;
    it->second.remove = remove;
  } else {
    journal_.emplace(key, JournalEntry{state, remove});
  }
  ArmJournalTimer();
}

void StoreSession::ArmJournalTimer() {
  if (journal_timer_armed_ || sim_ == nullptr) {
    return;
  }
  journal_timer_armed_ = true;
  journal_timer_ = sim_->After(journal_flush_interval_, [this]() {
    journal_timer_armed_ = false;
    if (!alive()) {
      return;  // A crashed instance's journal dies with it.
    }
    FlushJournalNow();
  });
}

void StoreSession::FlushJournalNow() {
  if (journal_.empty() || !alive()) {
    return;
  }
  // Drain in sorted key order so the flush's store traffic is independent of
  // hash-map iteration order (trace-digest determinism across runs).
  std::vector<std::string> keys;
  keys.reserve(journal_.size());
  for (const auto& [key, entry] : journal_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  ++stats_.journal_flushes;
  if (journal_depth_hist_ != nullptr) {
    journal_depth_hist_->Add(static_cast<double>(keys.size()));
  }
  for (const std::string& key : keys) {
    auto it = journal_.find(key);
    JournalEntry entry = std::move(it->second);
    journal_.erase(it);
    ++stats_.journal_entries_flushed;
    if (entry.remove) {
      flushed_.erase(key);
      store_->Remove(entry.state, [](bool) {});
      continue;
    }
    flushed_.insert(key);
    if (entry.state.stage == FlowStage::kTunneling) {
      store_->StoreTunnelingState(entry.state, [](bool) {});
    } else {
      store_->StoreConnectionState(entry.state, [](bool) {});
    }
  }
}

void StoreSession::LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                                  net::Port client_port, Lookup done) {
  store_->LookupByClient(vip, vip_port, client_ip, client_port, std::move(done));
}

void StoreSession::LookupByServer(net::IpAddr backend_ip, net::Port backend_port,
                                  net::IpAddr vip, net::Port client_port, Lookup done) {
  store_->LookupByServer(backend_ip, backend_port, vip, client_port, std::move(done));
}

}  // namespace yoda
