#include "src/core/store_session.h"

#include <utility>

namespace yoda {

StoreSession::StoreSession(TcpStore* store, sim::Simulator* sim,
                           sim::Histogram* store_wait_ms)
    : store_(store), sim_(sim), store_wait_ms_(store_wait_ms) {}

StoreSession::Ack StoreSession::TimedAck(Ack done) {
  ++stats_.ack_point_writes;
  if (sim_ == nullptr || store_wait_ms_ == nullptr) {
    return done;
  }
  const sim::Time start = sim_->now();
  return [this, start, done = std::move(done)](bool ok) {
    store_wait_ms_->Add(sim::ToMillis(sim_->now() - start));
    done(ok);
  };
}

void StoreSession::WriteSynState(const FlowState& state, Ack done) {
  store_->StoreConnectionState(state, TimedAck(std::move(done)));
}

void StoreSession::WriteEstablishedState(const FlowState& state, Ack done) {
  store_->StoreTunnelingState(state, TimedAck(std::move(done)));
}

void StoreSession::Refresh(const FlowState& state) {
  ++stats_.refreshes;
  const std::string key =
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port);
  auto it = refreshes_.find(key);
  if (it != refreshes_.end()) {
    // A write for this flow is already on the wire: remember only the
    // newest state and send it when the in-flight op completes.
    it->second.queued = state;
    ++stats_.refreshes_coalesced;
    return;
  }
  refreshes_.emplace(key, PendingRefresh{});
  IssueRefresh(key, state);
}

void StoreSession::IssueRefresh(const std::string& key, const FlowState& state) {
  store_->StoreTunnelingState(state, [this, key](bool /*ok*/) {
    auto it = refreshes_.find(key);
    if (it == refreshes_.end()) {
      return;  // Removed mid-flight (teardown).
    }
    if (it->second.queued.has_value()) {
      const FlowState next = *std::exchange(it->second.queued, std::nullopt);
      IssueRefresh(key, next);
      return;
    }
    refreshes_.erase(it);
  });
}

void StoreSession::Remove(const FlowState& state) {
  ++stats_.removes;
  // A queued (not yet issued) refresh must never land after the delete.
  refreshes_.erase(
      ClientFlowKey(state.vip, state.vip_port, state.client_ip, state.client_port));
  store_->Remove(state, [](bool) {});
}

void StoreSession::LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                                  net::Port client_port, Lookup done) {
  store_->LookupByClient(vip, vip_port, client_ip, client_port, std::move(done));
}

void StoreSession::LookupByServer(net::IpAddr backend_ip, net::Port backend_port,
                                  net::IpAddr vip, net::Port client_port, Lookup done) {
  store_->LookupByServer(backend_ip, backend_port, vip, client_port, std::move(done));
}

}  // namespace yoda
