#include "src/core/fleet_actuator.h"

#include <algorithm>
#include <utility>

namespace yoda {

const char* ExecStepKindName(ExecStepKind kind) {
  switch (kind) {
    case ExecStepKind::kAttachVip:
      return "AttachVip";
    case ExecStepKind::kInstallRules:
      return "InstallRules";
    case ExecStepKind::kAddPoolMember:
      return "AddPoolMember";
    case ExecStepKind::kProgramPool:
      return "ProgramPool";
    case ExecStepKind::kSetBackendHealth:
      return "SetBackendHealth";
    case ExecStepKind::kAwaitConvergence:
      return "AwaitConvergence";
    case ExecStepKind::kRemovePoolMember:
      return "RemovePoolMember";
    case ExecStepKind::kScrubRules:
      return "ScrubRules";
    case ExecStepKind::kDetachVip:
      return "DetachVip";
    case ExecStepKind::kEvictInstance:
      return "EvictInstance";
    case ExecStepKind::kSetStoreMode:
      return "SetStoreMode";
  }
  return "Unknown";
}

FleetActuator::FleetActuator(sim::Simulator* simulator, l4lb::L4Fabric* fabric,
                             const ControlState* state, FleetActuatorConfig config)
    : sim_(simulator), fabric_(fabric), state_(state), cfg_(config) {
  if (cfg_.registry != nullptr) {
    plans_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.plans");
    steps_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.steps");
    replayed_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.replayed_steps");
    converge_waits_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.convergence_waits");
    rule_updates_ctr_ = &cfg_.registry->GetCounter("controller.rule_updates");
    pool_updates_ctr_ = &cfg_.registry->GetCounter("controller.pool_updates");
    step_retries_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.step_retries");
    step_stalled_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.step_stalled");
    rounds_failed_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.rounds_failed");
    aborted_ctr_ = &cfg_.registry->GetCounter("controller.reconcile.aborted_plans");
  }
}

void FleetActuator::RegisterInstance(YodaInstance* instance) {
  instances_[instance->ip()] = instance;
}

YodaInstance* FleetActuator::InstanceByIp(net::IpAddr ip) const {
  auto it = instances_.find(ip);
  return it == instances_.end() ? nullptr : it->second;
}

void FleetActuator::Record(obs::EventType type, std::uint32_t where, std::uint64_t detail) {
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->RecordSystem(sim_->now(), type, where, detail);
  }
}

void FleetActuator::Execute(const ExecPlan& plan) {
  ++plans_in_flight_;
  if (plans_ctr_ != nullptr) {
    plans_ctr_->Inc();
  }
  Record(obs::EventType::kReconcilePlan, static_cast<std::uint32_t>(plan.epoch),
         plan.steps.size());
  RunSteps(plan, 0, /*attempt=*/0, /*failed=*/false);
}

void FleetActuator::MarkApplied(std::uint64_t epoch, const ExecStep& step) {
  if (step.kind == ExecStepKind::kSetBackendHealth ||
      step.kind == ExecStepKind::kAwaitConvergence) {
    return;  // Never ledgered; nothing to seed.
  }
  applied_.insert(std::make_tuple(epoch, static_cast<std::uint8_t>(step.kind), step.vip,
                                  step.instance));
}

void FleetActuator::RunSteps(const ExecPlan& plan, std::size_t first, int attempt,
                             bool failed) {
  // Fenced plans re-check their token at every (re)entry: this closure may be
  // a parked barrier resumption scheduled by a leader that has since crashed
  // or been deposed — the sim never cancels events, so it disarms here. The
  // receivers' own fencing is the backstop for writes already in flight.
  if (plan.fencing_token != 0 && cfg_.token_valid && !cfg_.token_valid(plan.fencing_token)) {
    --plans_in_flight_;
    if (aborted_ctr_ != nullptr) {
      aborted_ctr_->Inc();
    }
    Record(obs::EventType::kReconcileAbort, static_cast<std::uint32_t>(plan.epoch),
           plan.steps.size() - first);
    return;
  }
  for (std::size_t i = first; i < plan.steps.size(); ++i) {
    const ExecStep& step = plan.steps[i];
    if (step.kind != ExecStepKind::kAwaitConvergence) {
      const int att = i == first ? attempt : 0;
      if (Apply(plan, step) == ApplyResult::kRetry) {
        if (att < cfg_.max_step_retries) {
          if (step_retries_ctr_ != nullptr) {
            step_retries_ctr_->Inc();
          }
          const sim::Duration backoff =
              cfg_.step_retry_backoff * (static_cast<sim::Duration>(1) << att);
          const std::size_t idx = i;
          sim_->After(backoff,
                      [this, plan, idx, att, failed] { RunSteps(plan, idx, att + 1, failed); });
          return;
        }
        // Retries exhausted: the step is stalled. Skip it, mark the round
        // failed, and keep going — a permanently dead target must not wedge
        // the rest of the rollout (the monitor's evict plan supersedes it).
        failed = true;
        journal_.push_back({plan.epoch, sim_->now(), step, /*replayed=*/true});
        if (step_stalled_ctr_ != nullptr) {
          step_stalled_ctr_->Inc();
        }
        Record(obs::EventType::kReconcileStalled, static_cast<std::uint32_t>(step.vip),
               (static_cast<std::uint64_t>(step.kind) << 32) |
                   (step.instance & 0xffffffffULL));
      }
      continue;
    }
    journal_.push_back({plan.epoch, sim_->now(), step, /*replayed=*/false});
    Record(obs::EventType::kReconcileStep, static_cast<std::uint32_t>(step.vip),
           static_cast<std::uint64_t>(ExecStepKind::kAwaitConvergence) << 32);
    // Unstaggered plans apply atomically: the barrier is immediately satisfied.
    if (!plan.staggered) {
      continue;
    }
    if (converge_waits_ctr_ != nullptr) {
      converge_waits_ctr_->Inc();
    }
    // Resume one stagger period after the LAST mux applied the make phase, so
    // the break phase can never race the tail of the staggered adds.
    const sim::Duration delay =
        fabric_->ConvergenceDelay(cfg_.mux_stagger) + cfg_.mux_stagger;
    const std::size_t next = i + 1;
    sim_->After(delay, [this, plan, next, failed] { RunSteps(plan, next, 0, failed); });
    return;
  }
  --plans_in_flight_;
  if (failed && rounds_failed_ctr_ != nullptr) {
    rounds_failed_ctr_->Inc();
  }
  Record(obs::EventType::kReconcileDone, static_cast<std::uint32_t>(plan.epoch),
         plan.steps.size());
  if (cfg_.on_plan_done) {
    cfg_.on_plan_done(plan, !failed);
  }
}

FleetActuator::ApplyResult FleetActuator::Apply(const ExecPlan& plan, const ExecStep& step) {
  // Retry probe BEFORE the ledger insert: a step we are about to re-schedule
  // must not be marked applied (the later attempt would be swallowed as a
  // replay). Only instance-targeted state writes are retryable — pool/fabric
  // writes cannot fail in this model.
  if (cfg_.max_step_retries > 0 &&
      (step.kind == ExecStepKind::kInstallRules ||
       step.kind == ExecStepKind::kSetBackendHealth ||
       step.kind == ExecStepKind::kScrubRules ||
       step.kind == ExecStepKind::kSetStoreMode)) {
    YodaInstance* inst = InstanceByIp(step.instance);
    if (inst != nullptr &&
        (cfg_.instance_down ? cfg_.instance_down(inst) : inst->failed())) {
      return ApplyResult::kRetry;
    }
  }
  // For kSetBackendHealth `vip` carries the backend address; either way the
  // (epoch, kind, vip, instance) tuple identifies the step. Health writes are
  // exempt from the replay ledger: they are idempotent by value and the SAME
  // backend may legitimately flip several times within one epoch.
  const auto key = std::make_tuple(plan.epoch, static_cast<std::uint8_t>(step.kind),
                                   step.vip, step.instance);
  if (step.kind != ExecStepKind::kSetBackendHealth && !applied_.insert(key).second) {
    journal_.push_back({plan.epoch, sim_->now(), step, /*replayed=*/true});
    if (replayed_ctr_ != nullptr) {
      replayed_ctr_->Inc();
    }
    return ApplyResult::kDone;
  }
  if (step.kind != ExecStepKind::kSetBackendHealth && cfg_.on_step_applied) {
    cfg_.on_step_applied(plan, step);
  }
  const sim::Duration stagger = plan.staggered ? cfg_.mux_stagger : 0;
  const std::uint64_t token = plan.fencing_token;
  bool effective = true;
  switch (step.kind) {
    case ExecStepKind::kAttachVip:
      fabric_->AttachVip(step.vip);
      break;
    case ExecStepKind::kInstallRules: {
      YodaInstance* inst = InstanceByIp(step.instance);
      const ControlState::VipDesired* desired = state_->Desired(step.vip);
      if (inst == nullptr || desired == nullptr) {
        effective = false;  // VIP removed (or instance gone) since planning.
        break;
      }
      if (cfg_.run_on_instance) {
        cfg_.run_on_instance(inst, [inst, vip = step.vip, port = desired->port,
                                    rules = desired->rules, token]() {
          inst->InstallVip(vip, port, rules, token);
        });
      } else {
        inst->InstallVip(step.vip, desired->port, desired->rules, token);
      }
      if (rule_updates_ctr_ != nullptr) {
        rule_updates_ctr_->Inc();
      }
      Record(obs::EventType::kRuleUpdate, static_cast<std::uint32_t>(step.vip),
             desired->rules.size());
      break;
    }
    case ExecStepKind::kAddPoolMember: {
      fabric_->AddPoolMember(step.vip, step.instance, plan.epoch, stagger, token);
      if (pool_updates_ctr_ != nullptr) {
        pool_updates_ctr_->Inc();
      }
      // The member is serving everywhere only once the LAST mux applied it.
      const sim::Duration converged = fabric_->ConvergenceDelay(stagger);
      const net::IpAddr vip = step.vip;
      const std::uint64_t detail =
          (plan.epoch << 32) | (step.instance & 0xffffffffULL);
      if (converged == 0) {
        Record(obs::EventType::kPoolMemberAdd, static_cast<std::uint32_t>(vip), detail);
      } else {
        sim_->After(converged, [this, vip, detail] {
          Record(obs::EventType::kPoolMemberAdd, static_cast<std::uint32_t>(vip), detail);
        });
      }
      break;
    }
    case ExecStepKind::kProgramPool:
      fabric_->ProgramPool(step.vip, step.pool, plan.epoch, stagger, token);
      if (pool_updates_ctr_ != nullptr) {
        pool_updates_ctr_->Inc();
      }
      Record(obs::EventType::kPoolUpdate, static_cast<std::uint32_t>(step.vip),
             (plan.epoch << 32) | (step.pool.size() & 0xffffffffULL));
      break;
    case ExecStepKind::kSetBackendHealth: {
      YodaInstance* inst = InstanceByIp(step.instance);
      if (inst == nullptr) {
        effective = false;
        break;
      }
      if (cfg_.run_on_instance) {
        cfg_.run_on_instance(inst, [inst, backend = step.vip, healthy = step.healthy,
                                    token]() {
          inst->SetBackendHealth(backend, healthy, token);
        });
      } else {
        inst->SetBackendHealth(/*backend=*/step.vip, step.healthy, token);
      }
      break;
    }
    case ExecStepKind::kAwaitConvergence:
      break;  // Handled by RunSteps.
    case ExecStepKind::kRemovePoolMember:
      fabric_->RemovePoolMember(step.vip, step.instance, plan.epoch, stagger, token);
      if (pool_updates_ctr_ != nullptr) {
        pool_updates_ctr_->Inc();
      }
      // The member stops serving as soon as the FIRST mux drops it.
      Record(obs::EventType::kPoolMemberRemove, static_cast<std::uint32_t>(step.vip),
             (plan.epoch << 32) | (step.instance & 0xffffffffULL));
      break;
    case ExecStepKind::kScrubRules: {
      // Stale-scrub guard: if the CURRENT desired state wants this instance
      // in the VIP's pool again (a later epoch re-added it while this plan's
      // break phase was waiting out convergence), the scrub must not run.
      if (state_->HasVip(step.vip) && state_->PoolContains(step.vip, step.instance)) {
        effective = false;
        break;
      }
      YodaInstance* inst = InstanceByIp(step.instance);
      if (inst == nullptr) {
        effective = false;
        break;
      }
      if (cfg_.run_on_instance) {
        cfg_.run_on_instance(inst,
                             [inst, vip = step.vip, token]() { inst->RemoveVip(vip, token); });
      } else {
        inst->RemoveVip(step.vip, token);
      }
      break;
    }
    case ExecStepKind::kDetachVip:
      fabric_->DetachVip(step.vip);
      Record(obs::EventType::kVipRemoved, static_cast<std::uint32_t>(step.vip), 0);
      break;
    case ExecStepKind::kEvictInstance:
      fabric_->RemoveInstanceEverywhere(step.instance);
      break;
    case ExecStepKind::kSetStoreMode: {
      const bool stateless = step.healthy;  // Reused as the mode flag.
      if (step.instance == 0) {
        // Mux side of the flip: runs after the barrier, so every pool
        // member has already switched.
        fabric_->SetStoreMode(step.vip, stateless, plan.epoch, stagger, token);
        break;
      }
      YodaInstance* inst = InstanceByIp(step.instance);
      if (inst == nullptr) {
        effective = false;
        break;
      }
      const StoreMode mode = stateless ? StoreMode::kStateless : StoreMode::kStateful;
      if (cfg_.run_on_instance) {
        cfg_.run_on_instance(inst,
                             [inst, vip = step.vip, mode, epoch = plan.epoch, token]() {
                               inst->SetStoreMode(vip, mode, epoch, token);
                             });
      } else {
        inst->SetStoreMode(step.vip, mode, plan.epoch, token);
      }
      break;
    }
  }
  journal_.push_back({plan.epoch, sim_->now(), step, /*replayed=*/!effective});
  if (steps_ctr_ != nullptr) {
    steps_ctr_->Inc();
  }
  Record(obs::EventType::kReconcileStep, static_cast<std::uint32_t>(step.vip),
         (static_cast<std::uint64_t>(step.kind) << 32) |
             (step.instance & 0xffffffffULL));
  return ApplyResult::kDone;
}

// --- plan builders ---

ExecPlan BuildDefineVipPlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                            const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch, "define vip", /*staggered=*/false, {}};
  // §5.2 order: rules first, so no mux can route to an instance that would
  // drop the connection for lack of rules.
  const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
  const std::vector<net::IpAddr>& members = pool != nullptr ? *pool : active_ips;
  for (net::IpAddr ip : members) {
    plan.steps.push_back({ExecStepKind::kInstallRules, vip, ip});
  }
  plan.steps.push_back({ExecStepKind::kAttachVip, vip});
  plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true, members});
  return plan;
}

ExecPlan BuildRemoveVipPlan(std::uint64_t epoch, net::IpAddr vip,
                            const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch, "remove vip", /*staggered=*/false, {}};
  // Reverse order: stop routing first, then drain instance state.
  plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true, {}});
  plan.steps.push_back({ExecStepKind::kDetachVip, vip});
  for (net::IpAddr ip : active_ips) {
    plan.steps.push_back({ExecStepKind::kScrubRules, vip, ip});
  }
  return plan;
}

ExecPlan BuildRuleUpdatePlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                             const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch, "update rules", /*staggered=*/false, {}};
  const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
  const std::vector<net::IpAddr>& targets = pool != nullptr ? *pool : active_ips;
  for (net::IpAddr ip : targets) {
    plan.steps.push_back({ExecStepKind::kInstallRules, vip, ip});
  }
  return plan;
}

ExecPlan BuildCatchUpPlan(const ControlState& state, std::uint64_t epoch,
                          net::IpAddr instance,
                          const std::vector<std::pair<net::IpAddr, bool>>& backend_health,
                          bool repool, const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch, "catch-up", /*staggered=*/false, {}};
  for (const auto& [vip, desired] : state.vips()) {
    (void)desired;
    if (state.PoolContains(vip, instance)) {
      plan.steps.push_back({ExecStepKind::kInstallRules, vip, instance});
    }
  }
  for (const auto& [backend, up] : backend_health) {
    plan.steps.push_back({ExecStepKind::kSetBackendHealth, backend, instance, up});
  }
  if (repool) {
    for (const auto& [vip, desired] : state.vips()) {
      (void)desired;
      const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
      plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true,
                            pool != nullptr ? *pool : active_ips});
    }
  }
  return plan;
}

ExecPlan BuildPoolSyncPlan(const ControlState& state, std::uint64_t epoch,
                           const std::vector<net::IpAddr>& active_ips, bool staggered,
                           const std::string& reason) {
  ExecPlan plan{epoch, reason, staggered, {}};
  for (const auto& [vip, desired] : state.vips()) {
    (void)desired;
    const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
    plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true,
                          pool != nullptr ? *pool : active_ips});
  }
  return plan;
}

ExecPlan BuildEvictPlan(const ControlState& state, std::uint64_t epoch, net::IpAddr dead,
                        const std::vector<net::IpAddr>& active_ips) {
  // Unstaggered: every tick a dead member stays pooled is blackholed traffic.
  ExecPlan plan{epoch, "evict failed instance", /*staggered=*/false, {}};
  plan.steps.push_back({ExecStepKind::kEvictInstance, 0, dead});
  for (const auto& [vip, desired] : state.vips()) {
    (void)desired;
    const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
    plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true,
                          pool != nullptr ? *pool : active_ips});
  }
  return plan;
}

ExecPlan BuildBackendHealthPlan(std::uint64_t epoch, net::IpAddr backend, bool healthy,
                                const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch, healthy ? "backend up" : "backend down", /*staggered=*/false, {}};
  for (net::IpAddr ip : active_ips) {
    plan.steps.push_back({ExecStepKind::kSetBackendHealth, backend, ip, healthy});
  }
  return plan;
}

ExecPlan BuildLeaderTakeoverPlan(const ControlState& state, std::uint64_t epoch,
                                 const std::vector<net::IpAddr>& active_ips) {
  // Unstaggered: the fleet may be serving from pools a dead leader half
  // updated; converging it immediately beats a staggered window.
  ExecPlan plan{epoch, "leader takeover resync", /*staggered=*/false, {}};
  for (const auto& [vip, desired] : state.vips()) {
    (void)desired;
    const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
    const std::vector<net::IpAddr>& members = pool != nullptr ? *pool : active_ips;
    // Make-before-break even here: rules land before the pool write, so a
    // mux can never route to a member that lacks them.
    for (net::IpAddr ip : members) {
      plan.steps.push_back({ExecStepKind::kInstallRules, vip, ip});
    }
    plan.steps.push_back({ExecStepKind::kAttachVip, vip});
    plan.steps.push_back({ExecStepKind::kProgramPool, vip, 0, true, members});
  }
  return plan;
}

ExecPlan BuildStoreModePlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                            StoreMode mode, const std::vector<net::IpAddr>& active_ips) {
  ExecPlan plan{epoch,
                mode == StoreMode::kStateless ? "store mode to stateless"
                                              : "store mode to stateful",
                /*staggered=*/true,
                {}};
  const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
  const std::vector<net::IpAddr>& members = pool != nullptr ? *pool : active_ips;
  const bool stateless = mode == StoreMode::kStateless;
  for (net::IpAddr ip : members) {
    plan.steps.push_back({ExecStepKind::kSetStoreMode, vip, ip, stateless});
  }
  plan.steps.push_back({ExecStepKind::kAwaitConvergence, 0, 0});
  plan.steps.push_back({ExecStepKind::kSetStoreMode, vip, 0, stateless});
  return plan;
}

ExecPlan BuildRolloutPlan(std::uint64_t epoch, const std::vector<assign::PlanStep>& steps,
                          const std::vector<net::IpAddr>& instance_order,
                          const std::string& reason) {
  ExecPlan plan{epoch, reason, /*staggered=*/true, {}};
  for (const assign::PlanStep& s : steps) {
    const net::IpAddr vip = static_cast<net::IpAddr>(s.vip_id);
    const net::IpAddr inst =
        s.instance >= 0 && s.instance < static_cast<int>(instance_order.size())
            ? instance_order[static_cast<std::size_t>(s.instance)]
            : 0;
    switch (s.kind) {
      case assign::PlanStepKind::kInstallRules:
        plan.steps.push_back({ExecStepKind::kInstallRules, vip, inst});
        break;
      case assign::PlanStepKind::kAddPoolMember:
        plan.steps.push_back({ExecStepKind::kAddPoolMember, vip, inst});
        break;
      case assign::PlanStepKind::kAwaitConvergence:
        plan.steps.push_back({ExecStepKind::kAwaitConvergence, 0, 0});
        break;
      case assign::PlanStepKind::kRemovePoolMember:
        plan.steps.push_back({ExecStepKind::kRemovePoolMember, vip, inst});
        break;
      case assign::PlanStepKind::kScrubRules:
        plan.steps.push_back({ExecStepKind::kScrubRules, vip, inst});
        break;
    }
  }
  return plan;
}

}  // namespace yoda
