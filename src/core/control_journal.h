// ControlJournal: durable controller state in the replicated KV ring.
//
// The control plane's own store is the same TCPStore fabric the data plane
// uses for flow state (paper §6) — the controller is just another client of
// the replicated memcached ring. The journal persists three things:
//
//   ctl/snapshot          periodic full ControlState snapshot (epoch, desired
//                         VIPs with their rule sets, assignment).
//   ctl/log/<epoch>       changelog tail: one DurableChange per epoch (every
//                         ControlState mutation bumps the epoch exactly once,
//                         so the epoch doubles as the log sequence number).
//   ctl/plan_seq          monotone plan-id counter.
//   ctl/plans_open        space-separated ids of plans whose break phase has
//                         not completed (the crash-resume work list).
//   ctl/plan/<id>         the serialized ExecPlan.
//   ctl/applied/<id>/<k>  one marker per ledgered step already applied — the
//                         resumed plan re-runs only the remainder, so no step
//                         ever applies twice across a leader failover.
//
// Restore walks snapshot -> log tail (sequential Gets until the first miss:
// a lost log write truncates the tail but can never leave a gap-spanning,
// inconsistent prefix) -> plan_seq -> open plans -> applied markers, all
// asynchronously through the replicating client, and hands the caller a
// RestoredControlPlane to adopt.
//
// Writes are fire-and-forget (the KV servers are FIFO, so order holds); a
// write lost to a crashed replica costs at most the tail of history, which
// the new leader's takeover resync plan re-derives from desired state.

#ifndef SRC_CORE_CONTROL_JOURNAL_H_
#define SRC_CORE_CONTROL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/control_state.h"
#include "src/core/fleet_actuator.h"
#include "src/kv/replicating_client.h"
#include "src/obs/registry.h"

namespace yoda {

// One open plan as recovered from the store.
struct RestoredPlan {
  ExecPlan plan;
  // StepKey()s of the steps the dead leader already applied.
  std::set<std::string> applied;
};

// Everything a standby needs to adopt the crashed leader's control plane.
struct RestoredControlPlane {
  bool found = false;  // False: empty store (fresh cluster) — start cold.
  std::uint64_t epoch = 0;
  std::map<net::IpAddr, ControlState::VipDesired> vips;
  std::map<net::IpAddr, std::vector<net::IpAddr>> assignment;
  std::vector<DurableChange> tail;  // Changes after the snapshot, in order.
  std::uint64_t plan_seq = 0;
  std::vector<RestoredPlan> open_plans;  // In plan-id order.
};

struct ControlJournalStats {
  std::uint64_t changes_logged = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t plans_journaled = 0;
  std::uint64_t applied_markers = 0;
  std::uint64_t restores = 0;
};

struct ControlJournalConfig {
  // Snapshot cadence: a full snapshot every N journaled changes bounds the
  // log tail a restore must replay.
  int snapshot_every = 8;
  obs::Registry* registry = nullptr;
};

class ControlJournal {
 public:
  ControlJournal(sim::Simulator* simulator, kv::ReplicatingClient* client,
                 ControlJournalConfig config = {});

  // --- write path (live leader) ---
  // Journal one mutation; also rolls the snapshot every snapshot_every calls.
  void OnChange(const ControlState& state, const DurableChange& change);
  // Allocates the next plan id and persists the counter.
  std::uint64_t NextPlanId();
  void PutPlan(const ExecPlan& plan);
  void PutApplied(const ExecPlan& plan, const ExecStep& step);
  void PutDone(const ExecPlan& plan);

  // --- restore path (new leader) ---
  void Restore(std::function<void(RestoredControlPlane)> done);
  // Adopts the recovered id space so this journal's PutPlan/PutDone continue
  // the dead leader's sequence (ids never repeat, open-list stays coherent).
  void AdoptRestored(const RestoredControlPlane& restored);

  const ControlJournalStats& stats() const { return stats_; }

  // --- serializers (exposed for tests and ctl_dump) ---
  static std::string StepKey(const ExecStep& step);
  static std::string EncodeRule(const rules::Rule& rule);
  static std::optional<rules::Rule> DecodeRule(const std::string& line);
  static std::string EncodeChange(const DurableChange& change);
  static std::optional<DurableChange> DecodeChange(const std::string& text);
  static std::string EncodeSnapshot(const ControlState& state);
  static bool DecodeSnapshot(const std::string& text, RestoredControlPlane* out);
  static std::string EncodePlan(const ExecPlan& plan);
  static std::optional<ExecPlan> DecodePlan(const std::string& text);

 private:
  struct RestoreCtx;

  void RestoreLogEntry(std::shared_ptr<RestoreCtx> ctx, std::uint64_t epoch);
  void RestorePlanSeq(std::shared_ptr<RestoreCtx> ctx);
  void RestoreOpenList(std::shared_ptr<RestoreCtx> ctx);
  void RestorePlan(std::shared_ptr<RestoreCtx> ctx, std::size_t idx);
  void RestoreMarkers(std::shared_ptr<RestoreCtx> ctx, std::size_t idx,
                      std::size_t step_idx);
  void FinishRestore(std::shared_ptr<RestoreCtx> ctx);

  void WriteOpenList();

  sim::Simulator* sim_;
  kv::ReplicatingClient* kv_;
  ControlJournalConfig cfg_;
  int changes_since_snapshot_ = 0;
  std::uint64_t plan_seq_ = 0;
  std::set<std::uint64_t> open_;  // In-memory authoritative open-plan set.
  ControlJournalStats stats_;
  obs::Counter* changes_ctr_ = nullptr;
  obs::Counter* snapshots_ctr_ = nullptr;
};

}  // namespace yoda

#endif  // SRC_CORE_CONTROL_JOURNAL_H_
